// Package cpa is the public facade of this repository: a from-scratch Go
// implementation of "Computing Crowd Consensus with Partial Agreement"
// (Nguyen et al., ICDE 2018) — Bayesian nonparametric aggregation of
// multi-label ("partial agreement") crowdsourcing answers.
//
// # Quick start
//
//	ds, _ := cpa.NewDataset("tags", numItems, numWorkers, numLabels)
//	_ = ds.Add(item, worker, cpa.Labels(1, 4))   // one answer per worker/item
//	model := cpa.New(cpa.Options{Seed: 1})
//	consensus, err := model.Aggregate(ds)        // one label set per item
//
// Streaming ingestion, the baseline aggregators (MV, EM/Dawid–Skene, BCC,
// cBCC), the crowd simulator, the evaluation metrics and the experiment
// harness are re-exported below; the implementing packages live under
// internal/ (see DESIGN.md for the architecture and paper mapping).
package cpa

import (
	"cpa/internal/answers"
	"cpa/internal/baselines"
	"cpa/internal/core"
	"cpa/internal/datasets"
	"cpa/internal/labelset"
	"cpa/internal/metrics"
	"cpa/internal/simulate"
)

// LabelSet is a set of label indices (a worker's answer, or a consensus).
type LabelSet = labelset.Set

// Labels builds a LabelSet from label indices.
func Labels(labels ...int) LabelSet { return labelset.Of(labels...) }

// Dataset is the sparse answer matrix plus evaluation ground truth.
type Dataset = answers.Dataset

// Answer is one worker's label set for one item.
type Answer = answers.Answer

// NewDataset allocates an empty dataset with the given dimensions.
func NewDataset(name string, numItems, numWorkers, numLabels int) (*Dataset, error) {
	return answers.NewDataset(name, numItems, numWorkers, numLabels)
}

// ReadJSON / ReadCSV decode datasets written by Dataset.WriteJSON/WriteCSV.
var (
	ReadJSON = answers.ReadJSON
	ReadCSV  = answers.ReadCSV
)

// Aggregator is the common interface of every answer-aggregation method in
// this repository.
type Aggregator = baselines.Aggregator

// Options configures the CPA model; the zero value selects the defaults
// used throughout the paper reproduction (see core.DefaultConfig).
type Options = core.Config

// Model is the CPA posterior: fit it with Fit/FitStream/PartialFit, then
// Predict. Most callers should use New(...).Aggregate instead.
type Model = core.Model

// NewModel allocates a CPA model for explicit streaming use.
func NewModel(opts Options, numItems, numWorkers, numLabels int) (*Model, error) {
	return core.NewModel(opts, numItems, numWorkers, numLabels)
}

// New returns the batch (offline, Algorithm 1) CPA aggregator.
func New(opts Options) *core.Aggregator { return core.NewAggregator(opts) }

// NewOnline returns the streaming (single-pass SVI, Algorithm 2) CPA
// aggregator.
func NewOnline(opts Options) *core.Aggregator { return core.NewOnlineAggregator(opts) }

// Baseline aggregators from the paper's evaluation (§5.1).
var (
	// NewMajorityVote returns the per-label majority-voting baseline.
	NewMajorityVote = baselines.NewMajorityVote
	// NewDawidSkene returns the EM (Dawid–Skene) baseline.
	NewDawidSkene = baselines.NewDawidSkene
	// NewBCC returns the Bayesian classifier combination baseline.
	NewBCC = baselines.NewBCC
	// NewCBCC returns the community-BCC baseline.
	NewCBCC = baselines.NewCBCC
)

// PR is a set-based precision/recall pair averaged over items.
type PR = metrics.PR

// Evaluate scores predictions against the dataset's ground truth.
func Evaluate(ds *Dataset, predicted []LabelSet) (PR, error) {
	return metrics.Evaluate(ds, predicted)
}

// SimulateConfig parameterises the crowd simulator that substitutes for the
// paper's CrowdFlower datasets (DESIGN.md D4).
type SimulateConfig = simulate.Config

// SimulateMetadata records the latent generation state (worker archetypes,
// label clusters, item archetypes).
type SimulateMetadata = simulate.Metadata

// Simulate generates a synthetic crowdsourcing dataset.
func Simulate(cfg SimulateConfig) (*Dataset, *SimulateMetadata, error) {
	return simulate.Generate(cfg)
}

// DefaultWorkerMix returns the worker-population mix used by the dataset
// profiles (25% spammers, honest remainder split reliable/normal/sloppy).
func DefaultWorkerMix() simulate.Mix { return simulate.DefaultMix() }

// LoadProfile generates one of the paper's five evaluation datasets (image,
// topic, aspect, entity, movie) at the given scale (1 = Table 3 sizes).
func LoadProfile(name string, scale float64, seed int64) (*Dataset, *SimulateMetadata, error) {
	return datasets.Load(name, scale, seed)
}

// ProfileNames lists the five Table 3 dataset profiles.
func ProfileNames() []string { return datasets.Names() }
