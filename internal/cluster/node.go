package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"cpa/internal/serve"
)

// Node is one cluster member: a full cpaserve registry (the jobs it owns as
// primary) plus the follower replicas it hosts for jobs owned elsewhere.
// Its HTTP surface is the cpaserve API extended with the replication
// control endpoints the router drives:
//
//	POST   /v1/replicate/{id}          start (or restart) following {"source": url}
//	GET    /v1/replicate/{id}          one replica's shipping state
//	DELETE /v1/replicate/{id}          stop following and discard the staging
//	POST   /v1/replicate/{id}/promote  adopt the replica as primary
//	                                   {"epoch":N,"min_bytes":B,"checkpoint":bool}
//
// Consensus and stats reads on follower jobs are answered from the
// replica's applied snapshot, so any caught-up node can serve reads.
type Node struct {
	name    string
	dataDir string
	reg     *serve.Registry
	srv     *serve.Server
	mux     *http.ServeMux
	client  *http.Client

	mu        sync.Mutex
	followers map[string]*follower
}

// NewNode opens a cluster node over a persistent data directory (required:
// replication is journal shipping; there is nothing to ship without one).
func NewNode(name, dataDir string, cfg serve.Config) (*Node, error) {
	if dataDir == "" {
		return nil, fmt.Errorf("cluster: node %q needs a data dir", name)
	}
	cfg.Dir = dataDir
	reg, err := serve.Open(cfg)
	if err != nil {
		return nil, err
	}
	n := &Node{
		name:    name,
		dataDir: dataDir,
		reg:     reg,
		srv:     serve.NewServer(reg),
		mux:     http.NewServeMux(),
		client:  &http.Client{Timeout: 30 * time.Second},
	}
	n.mux.HandleFunc("POST /v1/replicate/{id}", n.handleReplicate)
	n.mux.HandleFunc("GET /v1/replicate/{id}", n.handleReplicaStats)
	n.mux.HandleFunc("DELETE /v1/replicate/{id}", n.handleReplicaStop)
	n.mux.HandleFunc("POST /v1/replicate/{id}/promote", n.handlePromote)
	// Reads resolve follower replicas when the registry doesn't own the job.
	n.mux.HandleFunc("GET /v1/jobs/{id}/consensus", n.handleConsensus)
	n.mux.HandleFunc("GET /statsz", n.handleStatsz)
	n.mux.Handle("/", n.srv)
	return n, nil
}

// Name returns the node's cluster name.
func (n *Node) Name() string { return n.name }

// Registry exposes the node's serve registry (tests and the loadgen
// harness reach through it for journal paths and crash simulation).
func (n *Node) Registry() *serve.Registry { return n.reg }

// JournalPath returns the on-disk journal of a job this node owns.
func (n *Node) JournalPath(jobID string) string {
	return serve.JournalPath(n.dataDir, jobID)
}

func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) { n.mux.ServeHTTP(w, r) }

// Crash simulates a node kill for tests: every owned job stops cold (no
// drain, no checkpoint, journal dropped without close) and every follower
// stops shipping. The node is unusable afterwards.
func (n *Node) Crash() {
	n.reg.CrashAll()
	n.mu.Lock()
	followers := n.followers
	n.followers = nil
	n.mu.Unlock()
	for _, fo := range followers {
		fo.shutdown()
	}
}

// Close shuts the node down cleanly.
func (n *Node) Close() error {
	n.mu.Lock()
	followers := n.followers
	n.followers = nil
	n.mu.Unlock()
	for _, fo := range followers {
		fo.shutdown()
	}
	return n.reg.Close()
}

// replicaDir is the staging tree for follower state, deliberately outside
// the registry's jobs tree so recovery never adopts a half-shipped replica
// as a live job; promotion renames the staging into the jobs tree.
func (n *Node) replicaDir(jobID string) string {
	return filepath.Join(n.dataDir, "replicas", jobID)
}

// Follow starts (or restarts, after a failover re-points the shard)
// replication of jobID from the given source node URL.
func (n *Node) Follow(jobID, source string) error {
	if _, owned := n.reg.Get(jobID); owned {
		return fmt.Errorf("cluster: node %q already owns job %q", n.name, jobID)
	}
	fo, err := startFollower(jobID, source, n.replicaDir(jobID), n.client)
	if err != nil {
		return err
	}
	n.mu.Lock()
	prev := n.followers[jobID]
	if n.followers == nil {
		n.followers = make(map[string]*follower)
	}
	n.followers[jobID] = fo
	n.mu.Unlock()
	if prev != nil {
		prev.shutdown()
	}
	return nil
}

func (n *Node) getFollower(jobID string) (*follower, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	fo, ok := n.followers[jobID]
	return fo, ok
}

// PromoteReplica turns a hosted follower into the job's primary at the
// given epoch: drain the shipped suffix to minBytes (the fenced primary's
// final durable length on planned handoff; the replica's own offset on
// failover, where nothing more can arrive), optionally fetch the source's
// checkpoint to skip replaying the whole journal, stamp the promotion
// epoch, rename the staging into the jobs tree, and adopt it through the
// standard recovery path. The adopted job's state is bit-for-bit what
// replaying the shipped journal yields.
func (n *Node) PromoteReplica(jobID string, epoch, minBytes int64, fetchCheckpoint bool, drainTimeout time.Duration) (serve.JobStats, error) {
	var zero serve.JobStats
	fo, ok := n.getFollower(jobID)
	if !ok {
		return zero, fmt.Errorf("cluster: node %q hosts no replica of %q", n.name, jobID)
	}
	if err := fo.drainTo(minBytes, drainTimeout); err != nil {
		return zero, err
	}
	fo.shutdown()
	n.mu.Lock()
	delete(n.followers, jobID)
	n.mu.Unlock()

	if fetchCheckpoint {
		if err := n.fetchCheckpoint(fo, jobID); err != nil {
			return zero, err
		}
	}
	if err := serve.WriteEpochState(fo.dir, epoch, false); err != nil {
		return zero, err
	}
	jobsDir := filepath.Join(n.dataDir, "jobs")
	if err := os.MkdirAll(jobsDir, 0o755); err != nil {
		return zero, fmt.Errorf("cluster: preparing jobs dir: %w", err)
	}
	if err := os.Rename(fo.dir, filepath.Join(jobsDir, jobID)); err != nil {
		return zero, fmt.Errorf("cluster: installing promoted replica: %w", err)
	}
	job, err := n.reg.AdoptJob(jobID)
	if err != nil {
		return zero, err
	}
	return job.Stats(), nil
}

// fetchCheckpoint pulls the source's latest model checkpoint into the
// staging dir. A source without a checkpoint yet (404) is fine — adoption
// replays the journal from scratch.
func (n *Node) fetchCheckpoint(fo *follower, jobID string) error {
	resp, err := n.client.Get(fo.source + "/v1/jobs/" + jobID + "/checkpoint")
	if err != nil {
		return fmt.Errorf("cluster: fetching checkpoint: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil
	}
	if resp.StatusCode != http.StatusOK {
		return readAPIError(resp)
	}
	f, err := os.Create(filepath.Join(fo.dir, serve.CheckpointFileName))
	if err != nil {
		return err
	}
	if _, err := f.ReadFrom(resp.Body); err != nil {
		f.Close()
		return fmt.Errorf("cluster: staging checkpoint: %w", err)
	}
	return f.Close()
}

// ---------------------------------------------------------------------------
// HTTP handlers
// ---------------------------------------------------------------------------

type replicateRequest struct {
	Source string `json:"source"`
}

type promoteRequest struct {
	Epoch      int64 `json:"epoch"`
	MinBytes   int64 `json:"min_bytes"`
	Checkpoint bool  `json:"checkpoint"`
}

func (n *Node) handleReplicate(w http.ResponseWriter, r *http.Request) {
	var req replicateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Source == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad replicate body: %v", err))
		return
	}
	if err := n.Follow(r.PathValue("id"), req.Source); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	fo, _ := n.getFollower(r.PathValue("id"))
	writeJSON(w, http.StatusCreated, fo.stats())
}

func (n *Node) handleReplicaStats(w http.ResponseWriter, r *http.Request) {
	fo, ok := n.getFollower(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no replica of %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, fo.stats())
}

func (n *Node) handleReplicaStop(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	n.mu.Lock()
	fo, ok := n.followers[id]
	if ok {
		delete(n.followers, id)
	}
	n.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no replica of %q", id))
		return
	}
	fo.shutdown()
	os.RemoveAll(fo.dir)
	w.WriteHeader(http.StatusNoContent)
}

func (n *Node) handlePromote(w http.ResponseWriter, r *http.Request) {
	var req promoteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad promote body: %v", err))
		return
	}
	stats, err := n.PromoteReplica(r.PathValue("id"), req.Epoch, req.MinBytes, req.Checkpoint, 30*time.Second)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, stats)
}

// handleConsensus serves a job's consensus from the registry when this node
// owns it, else from a hosted replica's applied snapshot.
func (n *Node) handleConsensus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, owned := n.reg.Get(id); owned {
		n.srv.ServeHTTP(w, r)
		return
	}
	fo, ok := n.getFollower(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("job %q: not found", id))
		return
	}
	writeJSON(w, http.StatusOK, fo.ap.Snapshot())
}

// NodeStats is the node /statsz shape: the owned jobs' serving stats plus
// every hosted replica's shipping state (per-job replication lag).
type NodeStats struct {
	Node     string           `json:"node"`
	Jobs     []serve.JobStats `json:"jobs"`
	Replicas []ReplicaStats   `json:"replicas"`
}

func (n *Node) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	st := NodeStats{Node: n.name, Replicas: []ReplicaStats{}}
	for _, j := range n.reg.Jobs() {
		st.Jobs = append(st.Jobs, j.Stats())
	}
	n.mu.Lock()
	followers := make([]*follower, 0, len(n.followers))
	for _, fo := range n.followers {
		followers = append(followers, fo)
	}
	n.mu.Unlock()
	for _, fo := range followers {
		st.Replicas = append(st.Replicas, fo.stats())
	}
	writeJSON(w, http.StatusOK, st)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
