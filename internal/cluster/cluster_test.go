package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"cpa/internal/answers"
	"cpa/internal/core"
	"cpa/internal/datasets"
	"cpa/internal/serve"
)

// ---------------------------------------------------------------------------
// In-process cluster harness
// ---------------------------------------------------------------------------

type testNode struct {
	node *Node
	ts   *httptest.Server
	dir  string
	cfg  serve.Config
}

type testCluster struct {
	t      *testing.T
	nodes  map[string]*testNode
	router *Router
	rts    *httptest.Server
	client *http.Client
}

// newTestCluster builds nodes and a router per the shard layout, all
// in-process over httptest.
func newTestCluster(t *testing.T, shards []ShardSpec) *testCluster {
	t.Helper()
	cfg := serve.Config{BatchWait: time.Millisecond, SaveEvery: 4}
	tc := &testCluster{t: t, nodes: make(map[string]*testNode), client: &http.Client{Timeout: 60 * time.Second}}
	names := map[string]bool{}
	for _, sh := range shards {
		names[sh.Primary] = true
		for _, f := range sh.Followers {
			names[f] = true
		}
	}
	spec := MapSpec{Nodes: map[string]string{}, Shards: shards}
	for name := range names {
		dir := t.TempDir()
		n, err := NewNode(name, dir, cfg)
		if err != nil {
			t.Fatalf("node %s: %v", name, err)
		}
		ts := httptest.NewServer(n)
		tc.nodes[name] = &testNode{node: n, ts: ts, dir: dir, cfg: cfg}
		spec.Nodes[name] = ts.URL
	}
	rt, err := NewRouter(spec)
	if err != nil {
		t.Fatal(err)
	}
	tc.router = rt
	tc.rts = httptest.NewServer(rt)
	t.Cleanup(func() {
		tc.rts.Close()
		for _, tn := range tc.nodes {
			tn.ts.Close()
			tn.node.Close()
		}
	})
	return tc
}

// crash hard-kills a node: jobs stop cold, HTTP goes away.
func (tc *testCluster) crash(name string) {
	tn := tc.nodes[name]
	tn.node.Crash()
	tn.ts.CloseClientConnections()
	tn.ts.Close()
}

// revive restarts a crashed node over its surviving data directory on a
// fresh address and tells the router.
func (tc *testCluster) revive(name string) {
	tc.t.Helper()
	tn := tc.nodes[name]
	n, err := NewNode(name, tn.dir, tn.cfg)
	if err != nil {
		tc.t.Fatalf("reviving %s: %v", name, err)
	}
	tn.node = n
	tn.ts = httptest.NewServer(n)
	if err := tc.router.SetNodeURL(name, tn.ts.URL); err != nil {
		tc.t.Fatal(err)
	}
	if err := tc.router.NodeReturned(name); err != nil {
		tc.t.Fatal(err)
	}
}

func (tc *testCluster) createJob(id string, ds *answers.Dataset, seed int64) {
	tc.t.Helper()
	body, err := json.Marshal(serve.CreateJobRequest{
		ID: id, Items: ds.NumItems, Workers: ds.NumWorkers, Labels: ds.NumLabels,
		Model: core.Config{Seed: seed, BatchSize: 64},
	})
	if err != nil {
		tc.t.Fatal(err)
	}
	resp, err := tc.client.Post(tc.rts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		tc.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		raw, _ := io.ReadAll(resp.Body)
		tc.t.Fatalf("create %s: status %d: %s", id, resp.StatusCode, raw)
	}
}

// sendChunk posts one NDJSON chunk through the router and returns the HTTP
// status (0 on transport error).
func (tc *testCluster) sendChunk(id string, chunk []answers.Answer) int {
	tc.t.Helper()
	var body bytes.Buffer
	for _, a := range chunk {
		line, err := answers.MarshalAnswerJSON(a)
		if err != nil {
			tc.t.Fatal(err)
		}
		body.Write(line)
		body.WriteByte('\n')
	}
	resp, err := tc.client.Post(tc.rts.URL+"/v1/jobs/"+id+"/answers", "application/x-ndjson", &body)
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

// mustSend acks a chunk, retrying through transient backpressure.
func (tc *testCluster) mustSend(id string, chunk []answers.Answer) {
	tc.t.Helper()
	for attempt := 0; attempt < 50; attempt++ {
		switch status := tc.sendChunk(id, chunk); status {
		case http.StatusAccepted:
			return
		case http.StatusTooManyRequests:
			time.Sleep(10 * time.Millisecond)
		default:
			tc.t.Fatalf("send chunk to %s: status %d", id, status)
		}
	}
	tc.t.Fatalf("chunk to %s never acked", id)
}

func (tc *testCluster) consensus(id, replica string) (*serve.Snapshot, int) {
	tc.t.Helper()
	url := tc.rts.URL + "/v1/jobs/" + id + "/consensus"
	if replica != "" {
		url += "?replica=" + replica
	}
	resp, err := tc.client.Get(url)
	if err != nil {
		tc.t.Fatalf("GET consensus: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, resp.StatusCode
	}
	var snap serve.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		tc.t.Fatalf("decoding consensus: %v", err)
	}
	return &snap, resp.StatusCode
}

// quiesce waits until the job's primary has fitted and published everything
// and every follower has applied the primary's full durable journal.
func (tc *testCluster) quiesce(id string) serve.JobStats {
	tc.t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st serve.JobStats
		err := getJSON(tc.client, tc.rts.URL+"/v1/jobs/"+id, &st)
		if err == nil && st.Error == "" &&
			st.FittedAnswers == st.IngestedAnswers && int64(st.SnapshotRound) == st.FitRounds {
			if tc.followersCaughtUp(id, st.JournalBytes) {
				return st
			}
		}
		if time.Now().After(deadline) {
			tc.t.Fatalf("job %s never quiesced (stats %+v, err %v)", id, st, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (tc *testCluster) followersCaughtUp(id string, target int64) bool {
	info := tc.router.Info()
	job, ok := info.Jobs[id]
	if !ok {
		return false
	}
	for _, f := range job.Followers {
		var st ReplicaStats
		if err := getJSON(tc.client, tc.nodes[f].ts.URL+"/v1/replicate/"+id, &st); err != nil {
			return false
		}
		if st.AppliedBytes < target {
			return false
		}
	}
	return true
}

// sameSnapshot asserts bit-identical published consensus (CreatedAt and
// the encoding cache excluded — they are per-process).
func sameSnapshot(t *testing.T, want, got *serve.Snapshot) {
	t.Helper()
	if got.Round != want.Round || got.Answers != want.Answers {
		t.Fatalf("snapshot at round=%d answers=%d, want round=%d answers=%d",
			got.Round, got.Answers, want.Round, want.Answers)
	}
	if !reflect.DeepEqual(got.Consensus, want.Consensus) {
		for i := range want.Consensus {
			if i < len(got.Consensus) && !reflect.DeepEqual(got.Consensus[i], want.Consensus[i]) {
				t.Fatalf("item %d diverged:\nwant %+v\ngot  %+v", i, want.Consensus[i], got.Consensus[i])
			}
		}
		t.Fatalf("consensus diverged")
	}
}

// replayOwnerJournal rebuilds the owner's journal through a fresh Applier —
// the strongest served-equals-replay form for a promoted owner.
func replayOwnerJournal(t *testing.T, tc *testCluster, id string) *serve.Snapshot {
	t.Helper()
	info := tc.router.Info()
	owner := info.Jobs[id].Primary
	tn := tc.nodes[owner]
	job, ok := tn.node.Registry().Get(id)
	if !ok {
		t.Fatalf("owner %s does not hold job %s", owner, id)
	}
	ap, err := serve.NewApplier(job.Spec())
	if err != nil {
		t.Fatal(err)
	}
	if err := serve.ReadJournal(tn.node.JournalPath(id), ap.Apply); err != nil {
		t.Fatalf("replaying owner journal: %v", err)
	}
	return ap.Snapshot()
}

// countAnswers keys a multiset of answers for acked-durable containment.
func countAnswers(list []answers.Answer) map[string]int {
	m := make(map[string]int, len(list))
	for _, a := range list {
		m[fmt.Sprintf("%d|%d|%v", a.Item, a.Worker, a.Labels.Slice())] += 1
	}
	return m
}

func testDataset(t *testing.T, scale float64, seed int64) *answers.Dataset {
	t.Helper()
	ds, _, err := datasets.Load("image", scale, seed)
	if err != nil {
		t.Fatalf("loading profile: %v", err)
	}
	return ds
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

func TestShardForStableAndSpread(t *testing.T) {
	hits := make([]int, 4)
	for i := 0; i < 400; i++ {
		id := fmt.Sprintf("job-%d", i)
		s := ShardFor(id, 4)
		if s2 := ShardFor(id, 4); s2 != s {
			t.Fatalf("ShardFor not deterministic: %d vs %d", s, s2)
		}
		hits[s]++
	}
	for s, n := range hits {
		if n == 0 {
			t.Fatalf("shard %d got no jobs in 400 placements: %v", s, hits)
		}
	}
	// Growing the shard count must only move jobs onto the new shard.
	for i := 0; i < 400; i++ {
		id := fmt.Sprintf("job-%d", i)
		before, after := ShardFor(id, 4), ShardFor(id, 5)
		if before != after && after != 4 {
			t.Fatalf("job %s moved %d→%d when shard 4 was added", id, before, after)
		}
	}
}

// TestReplicationBitIdentical is the tentpole acceptance test at cluster
// level: a follower tailing the primary's journal serves — through the
// router — the exact consensus the primary serves, at quiesce.
func TestReplicationBitIdentical(t *testing.T) {
	tc := newTestCluster(t, []ShardSpec{{Primary: "a", Followers: []string{"b"}}})
	ds := testDataset(t, 0.04, 21)
	tc.createJob("rep", ds, 21)
	all := ds.Answers()
	for start := 0; start < len(all); start += 48 {
		tc.mustSend("rep", all[start:min(start+48, len(all))])
	}
	tc.quiesce("rep")

	primarySnap, status := tc.consensus("rep", "")
	if status != http.StatusOK {
		t.Fatalf("primary consensus: status %d", status)
	}
	if primarySnap.Answers != len(all) {
		t.Fatalf("primary snapshot covers %d answers, want %d", primarySnap.Answers, len(all))
	}
	followerSnap, status := tc.consensus("rep", "b")
	if status != http.StatusOK {
		t.Fatalf("follower consensus: status %d", status)
	}
	sameSnapshot(t, primarySnap, followerSnap)

	// The node /statsz exposes the replication lag satellite field.
	var ns NodeStats
	if err := getJSON(tc.client, tc.nodes["b"].ts.URL+"/statsz", &ns); err != nil {
		t.Fatal(err)
	}
	if len(ns.Replicas) != 1 || ns.Replicas[0].ID != "rep" {
		t.Fatalf("follower statsz replicas = %+v", ns.Replicas)
	}
	if ns.Replicas[0].LagBytes != 0 {
		t.Fatalf("lag at quiesce = %d, want 0", ns.Replicas[0].LagBytes)
	}
}

// TestFailoverPromotesMostCaughtUp kills the primary mid-stream and checks
// the acceptance criteria: no acked answer lost (all acked answers are in
// the promoted owner's journal), and the served consensus is exactly the
// replay of that journal.
func TestFailoverPromotesMostCaughtUp(t *testing.T) {
	tc := newTestCluster(t, []ShardSpec{{Primary: "a", Followers: []string{"b"}}})
	ds := testDataset(t, 0.04, 23)
	tc.createJob("fo", ds, 23)
	all := ds.Answers()
	var acked []answers.Answer

	half := len(all) / 2
	for start := 0; start < half; start += 48 {
		chunk := all[start:min(start+48, half)]
		tc.mustSend("fo", chunk)
		acked = append(acked, chunk...)
	}
	tc.crash("a")

	// The next write fails over and reports 502; the client-side retry then
	// lands on the promoted follower.
	sent := false
	for attempt := 0; attempt < 50 && !sent; attempt++ {
		chunk := all[half:min(half+48, len(all))]
		switch status := tc.sendChunk("fo", chunk); status {
		case http.StatusAccepted:
			acked = append(acked, chunk...)
			sent = true
		case http.StatusBadGateway, http.StatusTooManyRequests, 0:
			time.Sleep(10 * time.Millisecond)
		default:
			t.Fatalf("post-crash send: status %d", status)
		}
	}
	if !sent {
		t.Fatal("ingestion never recovered after primary crash")
	}
	for start := half + 48; start < len(all); start += 48 {
		chunk := all[start:min(start+48, len(all))]
		tc.mustSend("fo", chunk)
		acked = append(acked, chunk...)
	}

	info := tc.router.Info()
	job := info.Jobs["fo"]
	if job.Primary != "b" || job.Epoch != 1 {
		t.Fatalf("after failover: primary=%s epoch=%d, want b/1", job.Primary, job.Epoch)
	}
	tc.quiesce("fo")

	// Acked-durable: every acked answer appears in the promoted owner's
	// journal (≥ its acked multiplicity — a racing resend may double-land).
	var journaled []answers.Answer
	if err := serve.ReadJournal(tc.nodes["b"].node.JournalPath("fo"), func(e serve.JournalEntry) error {
		if e.Answer != nil {
			journaled = append(journaled, *e.Answer)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	have := countAnswers(journaled)
	for key, n := range countAnswers(acked) {
		if have[key] < n {
			t.Fatalf("acked answer %s: %d acked but %d journaled on promoted owner", key, n, have[key])
		}
	}

	// Served-equals-replay on the promoted owner, through the router.
	snap, status := tc.consensus("fo", "")
	if status != http.StatusOK {
		t.Fatalf("consensus after failover: status %d", status)
	}
	sameSnapshot(t, replayOwnerJournal(t, tc, "fo"), snap)
}

// TestPlannedHandoff transfers ownership under live ingestion: every write
// succeeds (the gate parks them during the transfer), no acked answer is
// lost, the old primary is fenced, and its stale replica path is refused by
// the router.
func TestPlannedHandoff(t *testing.T) {
	tc := newTestCluster(t, []ShardSpec{{Primary: "a", Followers: []string{"b"}}})
	ds := testDataset(t, 0.04, 29)
	tc.createJob("ho", ds, 29)
	all := ds.Answers()

	// Live ingestion in the background while the handoff runs.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for start := 0; start < len(all); start += 48 {
			tc.mustSend("ho", all[start:min(start+48, len(all))])
		}
	}()
	time.Sleep(30 * time.Millisecond) // let some chunks land pre-handoff
	if err := tc.router.Handoff("ho", "b"); err != nil {
		t.Fatalf("handoff: %v", err)
	}
	<-done

	info := tc.router.Info()
	job := info.Jobs["ho"]
	if job.Primary != "b" || job.Epoch != 1 {
		t.Fatalf("after handoff: primary=%s epoch=%d, want b/1", job.Primary, job.Epoch)
	}
	tc.quiesce("ho")

	// All answers landed despite the mid-stream ownership change.
	var st serve.JobStats
	if err := getJSON(tc.client, tc.rts.URL+"/v1/jobs/ho", &st); err != nil {
		t.Fatal(err)
	}
	if st.IngestedAnswers != int64(len(all)) {
		t.Fatalf("owner ingested %d answers, want %d", st.IngestedAnswers, len(all))
	}
	snap, status := tc.consensus("ho", "")
	if status != http.StatusOK {
		t.Fatalf("consensus after handoff: status %d", status)
	}
	sameSnapshot(t, replayOwnerJournal(t, tc, "ho"), snap)

	// The deposed primary 409s direct ingestion...
	resp, err := tc.client.Post(tc.nodes["a"].ts.URL+"/v1/jobs/ho/answers", "application/json",
		bytes.NewReader([]byte(`{"answers":[{"i":0,"u":0,"x":[0]}]}`)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("deposed primary ingest: status %d, want 409", resp.StatusCode)
	}
	// ...and its stale snapshots are unreachable through the router.
	if _, status := tc.consensus("ho", "a"); status != http.StatusConflict {
		t.Fatalf("read from deposed ex-primary: status %d, want 409", status)
	}
}

// TestReturnedPrimaryIsFenced revives a killed ex-primary (which recovers
// its journal and would happily serve writes at the stale epoch) and checks
// the router fences it: direct ingestion 409s, and router-stamped writes
// keep flowing to the real owner.
func TestReturnedPrimaryIsFenced(t *testing.T) {
	tc := newTestCluster(t, []ShardSpec{{Primary: "a", Followers: []string{"b"}}})
	ds := testDataset(t, 0.02, 31)
	tc.createJob("zf", ds, 31)
	all := ds.Answers()
	for start := 0; start < len(all)/2; start += 48 {
		tc.mustSend("zf", all[start:min(start+48, len(all)/2)])
	}
	tc.crash("a")
	if err := tc.router.FailoverJob("zf"); err != nil {
		t.Fatalf("failover: %v", err)
	}
	tc.revive("a") // recovery + NodeReturned fencing

	resp, err := tc.client.Post(tc.nodes["a"].ts.URL+"/v1/jobs/zf/answers", "application/json",
		bytes.NewReader([]byte(`{"answers":[{"i":0,"u":0,"x":[0]}]}`)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("revived ex-primary accepted direct ingest: status %d, want 409", resp.StatusCode)
	}

	// The cluster keeps serving writes and reads through the new owner.
	tc.mustSend("zf", all[len(all)/2:min(len(all)/2+48, len(all))])
	tc.quiesce("zf")
	if _, status := tc.consensus("zf", ""); status != http.StatusOK {
		t.Fatalf("consensus via router: status %d", status)
	}
}
