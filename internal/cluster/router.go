package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"cpa/internal/serve"
)

// Router owns the cluster map and fronts every client interaction:
//
//   - Writes go to the job's shard primary, stamped with the current
//     ownership epoch, and are acked only once at least one follower has
//     applied past the batch's journal offset (the replication barrier) —
//     so promotion of the most-caught-up follower can never lose an acked
//     answer, even on kill -9.
//   - Reads go to the primary, or — with ?replica=node — to a follower the
//     router verifies is current (member of the live replica set, applied
//     past the ack watermark); deposed or stale nodes are refused, never
//     silently served.
//   - Failover promotes the most-caught-up follower under the job's write
//     gate; planned handoff fences the primary, quiesces it, drains the
//     target to the final journal offset and promotes — the gate holds
//     client writes (briefly) instead of failing them.
//
//	POST /v1/jobs                       create (placed by rendezvous hashing)
//	POST /v1/jobs/{id}/answers          ingest via the shard primary
//	GET  /v1/jobs/{id}                  stats from the primary
//	GET  /v1/jobs/{id}/consensus        consensus (?replica=node for a follower)
//	GET  /v1/jobs/{id}/items/{item}     one item, from the primary
//	POST /v1/cluster/handoff            {"job":id,"to":node} planned handoff
//	GET  /clusterz                      cluster map introspection
//	GET  /statsz                        per-job replication lag, live
//	GET  /healthz                       liveness
type Router struct {
	client *http.Client // proxy + control traffic
	probe  *http.Client // short-timeout liveness checks

	mu     sync.Mutex
	nodes  map[string]*nodeState
	shards []ShardSpec // current shard-level layout for new placements
	jobs   map[string]*jobRoute
	mux    *http.ServeMux
}

type nodeState struct {
	url  string
	down bool
}

// jobRoute is one job's live routing state. The gate serialises the write
// path against ownership changes: ingests hold it shared, failover and
// handoff hold it exclusively, so an ownership change observes no in-flight
// writes and new writes observe the new owner.
type jobRoute struct {
	id        string
	shard     int
	primary   string
	followers []string
	epoch     int64
	acked     int64 // replication ack watermark (journal bytes)
	gate      sync.RWMutex
}

// Timeouts of the router's distributed steps.
const (
	barrierTimeout = 30 * time.Second // follower catch-up before a write acks
	quiesceTimeout = 30 * time.Second // fenced primary draining its queue
	drainTimeout   = 30 * time.Second // promotion target draining the suffix
)

// NewRouter builds a router over a validated topology.
func NewRouter(spec MapSpec) (*Router, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rt := &Router{
		client: &http.Client{Timeout: 60 * time.Second},
		probe:  &http.Client{Timeout: 2 * time.Second},
		nodes:  make(map[string]*nodeState, len(spec.Nodes)),
		shards: append([]ShardSpec(nil), spec.Shards...),
		jobs:   make(map[string]*jobRoute),
		mux:    http.NewServeMux(),
	}
	for name, url := range spec.Nodes {
		rt.nodes[name] = &nodeState{url: url}
	}
	rt.mux.HandleFunc("POST /v1/jobs", rt.handleCreateJob)
	rt.mux.HandleFunc("GET /v1/jobs", rt.handleListJobs)
	rt.mux.HandleFunc("GET /v1/jobs/{id}", rt.handleJobStats)
	rt.mux.HandleFunc("POST /v1/jobs/{id}/answers", rt.handleIngest)
	rt.mux.HandleFunc("GET /v1/jobs/{id}/consensus", rt.handleConsensus)
	rt.mux.HandleFunc("GET /v1/jobs/{id}/items/{item}", rt.handleItem)
	rt.mux.HandleFunc("POST /v1/cluster/handoff", rt.handleHandoff)
	rt.mux.HandleFunc("GET /clusterz", rt.handleClusterz)
	rt.mux.HandleFunc("GET /statsz", rt.handleStatsz)
	rt.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
	})
	return rt, nil
}

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// SetNodeURL re-points a node name (a restarted node listening on a new
// address). Test and operator hook.
func (rt *Router) SetNodeURL(name, url string) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	ns, ok := rt.nodes[name]
	if !ok {
		return fmt.Errorf("cluster: unknown node %q", name)
	}
	ns.url = url
	return nil
}

func (rt *Router) nodeURL(name string) (string, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	ns, ok := rt.nodes[name]
	if !ok {
		return "", fmt.Errorf("cluster: unknown node %q", name)
	}
	return ns.url, nil
}

func (rt *Router) job(id string) (*jobRoute, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	route, ok := rt.jobs[id]
	return route, ok
}

// routeView snapshots a route's mutable fields under the router lock.
func (rt *Router) routeView(route *jobRoute) (primary, primaryURL string, followers []string, epoch, acked int64) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	primary = route.primary
	if ns, ok := rt.nodes[primary]; ok {
		primaryURL = ns.url
	}
	followers = append([]string(nil), route.followers...)
	return primary, primaryURL, followers, route.epoch, route.acked
}

// ---------------------------------------------------------------------------
// Create & placement
// ---------------------------------------------------------------------------

func (rt *Router) handleCreateJob(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %v", err))
		return
	}
	var probe struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &probe); err != nil || probe.ID == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("create body needs an id"))
		return
	}
	stats, status, err := rt.CreateJob(probe.ID, body)
	if err != nil {
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusCreated, stats)
}

// CreateJob places a job on its rendezvous shard, creates it on the shard
// primary (rawBody is the client's CreateJobRequest, forwarded verbatim)
// and starts replication on every shard follower.
func (rt *Router) CreateJob(id string, rawBody []byte) (serve.JobStats, int, error) {
	var zero serve.JobStats
	rt.mu.Lock()
	if _, exists := rt.jobs[id]; exists {
		rt.mu.Unlock()
		return zero, http.StatusConflict, fmt.Errorf("job %q already routed", id)
	}
	shard := ShardFor(id, len(rt.shards))
	sh := rt.shards[shard]
	primaryURL := rt.nodes[sh.Primary].url
	rt.mu.Unlock()

	resp, err := rt.client.Post(primaryURL+"/v1/jobs", "application/json", bytes.NewReader(rawBody))
	if err != nil {
		return zero, http.StatusBadGateway, fmt.Errorf("creating on %s: %w", sh.Primary, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		apiErr := readAPIError(resp)
		return zero, resp.StatusCode, apiErr
	}
	var stats serve.JobStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return zero, http.StatusBadGateway, fmt.Errorf("decoding create response: %w", err)
	}
	for _, f := range sh.Followers {
		fURL, err := rt.nodeURL(f)
		if err == nil {
			err = postJSON(rt.client, fURL+"/v1/replicate/"+id, replicateRequest{Source: primaryURL}, nil)
		}
		if err != nil {
			return zero, http.StatusBadGateway,
				fmt.Errorf("starting replication of %q on %s: %w", id, f, err)
		}
	}
	rt.mu.Lock()
	rt.jobs[id] = &jobRoute{
		id: id, shard: shard,
		primary:   sh.Primary,
		followers: append([]string(nil), sh.Followers...),
	}
	rt.mu.Unlock()
	return stats, http.StatusCreated, nil
}

// ---------------------------------------------------------------------------
// Writes: proxy + replication barrier
// ---------------------------------------------------------------------------

func (rt *Router) handleIngest(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	route, ok := rt.job(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("job %q: not routed", id))
		return
	}
	route.gate.RLock()
	primary, primaryURL, followers, epoch, _ := rt.routeView(route)

	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		primaryURL+"/v1/jobs/"+id+"/answers", http.MaxBytesReader(w, r.Body, 32<<20))
	if err != nil {
		route.gate.RUnlock()
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	req.Header.Set("Content-Type", r.Header.Get("Content-Type"))
	req.Header.Set("X-CPA-Epoch", fmt.Sprintf("%d", epoch))
	resp, err := rt.client.Do(req)
	if err != nil {
		// The primary is unreachable. Release the shared gate (failover
		// takes it exclusively), promote the most-caught-up follower, and
		// let the client retry against the new owner — the router does NOT
		// retry itself: the dead primary may have journaled and shipped the
		// batch before dying, and a blind replay would double-ingest it.
		route.gate.RUnlock()
		if ferr := rt.FailoverJob(id); ferr != nil {
			writeError(w, http.StatusBadGateway,
				fmt.Errorf("primary %s unreachable (%v); failover failed: %v", primary, err, ferr))
			return
		}
		writeError(w, http.StatusBadGateway,
			fmt.Errorf("primary %s unreachable (%v); failed over, retry", primary, err))
		return
	}
	defer route.gate.RUnlock()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		forwardResponse(w, resp)
		return
	}
	var ack serve.IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		writeError(w, http.StatusBadGateway, fmt.Errorf("decoding ingest ack: %w", err))
		return
	}
	// Replication barrier: don't ack the client until some follower has
	// applied past this batch's journal end. Promotion always picks the
	// most-caught-up follower, so one follower at the offset is enough for
	// the acked-durable guarantee to survive a primary kill.
	if len(followers) > 0 {
		if err := rt.awaitReplication(id, followers, ack.JournalBytes); err != nil {
			writeError(w, http.StatusGatewayTimeout, err)
			return
		}
	}
	rt.mu.Lock()
	if ack.JournalBytes > route.acked {
		route.acked = ack.JournalBytes
	}
	rt.mu.Unlock()
	writeJSON(w, http.StatusAccepted, ack)
}

// awaitReplication polls the followers until the max applied offset reaches
// target.
func (rt *Router) awaitReplication(id string, followers []string, target int64) error {
	deadline := time.Now().Add(barrierTimeout)
	for {
		best := int64(-1)
		for _, f := range followers {
			fURL, err := rt.nodeURL(f)
			if err != nil {
				continue
			}
			var st ReplicaStats
			if err := getJSON(rt.client, fURL+"/v1/replicate/"+id, &st); err != nil {
				continue
			}
			if st.AppliedBytes > best {
				best = st.AppliedBytes
			}
		}
		if best >= target {
			return nil
		}
		if !time.Now().Before(deadline) {
			return fmt.Errorf("replication barrier: no follower of %q reached offset %d (best %d)", id, target, best)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// ---------------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------------

func (rt *Router) handleConsensus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	route, ok := rt.job(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("job %q: not routed", id))
		return
	}
	primary, primaryURL, followers, _, acked := rt.routeView(route)
	target, targetURL := primary, primaryURL
	if replica := r.URL.Query().Get("replica"); replica != "" && replica != primary {
		// Explicit replica reads are verified, never best-effort: the node
		// must be in the job's live replica set (a deposed ex-primary is
		// not, so its stale snapshots are unservable through the router) and
		// must have applied past the ack watermark.
		if !contains(followers, replica) {
			writeError(w, http.StatusConflict,
				fmt.Errorf("node %q is not a current replica of %q", replica, id))
			return
		}
		fURL, err := rt.nodeURL(replica)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		var st ReplicaStats
		if err := getJSON(rt.client, fURL+"/v1/replicate/"+id, &st); err != nil {
			writeError(w, http.StatusBadGateway, fmt.Errorf("replica %q: %v", replica, err))
			return
		}
		if st.Wedged || st.AppliedBytes < acked {
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("replica %q behind (applied %d < acked %d) %s", replica, st.AppliedBytes, acked, st.Error))
			return
		}
		target, targetURL = replica, fURL
	}
	resp, err := rt.client.Get(targetURL + "/v1/jobs/" + id + "/consensus")
	if err != nil {
		writeError(w, http.StatusBadGateway, fmt.Errorf("reading consensus from %s: %v", target, err))
		return
	}
	defer resp.Body.Close()
	forwardResponse(w, resp)
}

func (rt *Router) handleItem(w http.ResponseWriter, r *http.Request) {
	rt.proxyPrimary(w, r, "/items/"+r.PathValue("item"))
}

func (rt *Router) handleJobStats(w http.ResponseWriter, r *http.Request) {
	rt.proxyPrimary(w, r, "")
}

func (rt *Router) proxyPrimary(w http.ResponseWriter, r *http.Request, suffix string) {
	id := r.PathValue("id")
	route, ok := rt.job(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("job %q: not routed", id))
		return
	}
	primary, primaryURL, _, _, _ := rt.routeView(route)
	resp, err := rt.client.Get(primaryURL + "/v1/jobs/" + id + suffix)
	if err != nil {
		writeError(w, http.StatusBadGateway, fmt.Errorf("primary %s: %v", primary, err))
		return
	}
	defer resp.Body.Close()
	forwardResponse(w, resp)
}

func (rt *Router) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	rt.mu.Lock()
	ids := make([]string, 0, len(rt.jobs))
	for id := range rt.jobs {
		ids = append(ids, id)
	}
	rt.mu.Unlock()
	sort.Strings(ids)
	writeJSON(w, http.StatusOK, map[string]any{"jobs": ids})
}

// ---------------------------------------------------------------------------
// Failover
// ---------------------------------------------------------------------------

// FailoverJob promotes the most-caught-up follower of a job whose primary
// is unreachable. No-op (nil) if the primary answers a liveness probe by
// the time the write gate is held — a racing failover already fixed it, or
// the outage was transient.
func (rt *Router) FailoverJob(id string) error {
	route, ok := rt.job(id)
	if !ok {
		return fmt.Errorf("cluster: job %q not routed", id)
	}
	route.gate.Lock()
	defer route.gate.Unlock()

	primary, primaryURL, followers, epoch, _ := rt.routeView(route)
	if err := getJSON(rt.probe, primaryURL+"/healthz", nil); err == nil {
		return nil
	}
	if len(followers) == 0 {
		return fmt.Errorf("cluster: job %q has no followers to promote", id)
	}

	// Pick the most-caught-up follower. Every acked write waited for some
	// follower to pass its offset, so the max is ≥ every ack watermark.
	winner, winnerURL, best := "", "", int64(-1)
	for _, f := range followers {
		fURL, err := rt.nodeURL(f)
		if err != nil {
			continue
		}
		var st ReplicaStats
		if err := getJSON(rt.client, fURL+"/v1/replicate/"+id, &st); err != nil {
			continue
		}
		// A transient source-fetch error is expected here — the source just
		// died. Only a wedged replica (failed apply) is unpromotable.
		if st.Wedged {
			continue
		}
		if st.AppliedBytes > best {
			winner, winnerURL, best = f, fURL, st.AppliedBytes
		}
	}
	if winner == "" {
		return fmt.Errorf("cluster: job %q: no reachable follower to promote", id)
	}
	newEpoch := epoch + 1
	var stats serve.JobStats
	if err := postJSON(rt.client, winnerURL+"/v1/replicate/"+id+"/promote",
		promoteRequest{Epoch: newEpoch, MinBytes: best, Checkpoint: false}, &stats); err != nil {
		return fmt.Errorf("cluster: promoting %s for %q: %w", winner, id, err)
	}

	rest := remove(followers, winner)
	rt.mu.Lock()
	route.primary = winner
	route.followers = rest
	route.epoch = newEpoch
	if ns, ok := rt.nodes[primary]; ok {
		ns.down = true
	}
	// New jobs must not be placed on the dead node either.
	for i := range rt.shards {
		if rt.shards[i].Primary == primary {
			rt.shards[i].Primary = winner
			rt.shards[i].Followers = remove(rt.shards[i].Followers, winner)
		}
	}
	rt.mu.Unlock()

	// Surviving followers were tailing the dead node; restart them against
	// the new primary (their journal is a prefix of the new primary's, but
	// resumption is from scratch — correctness first). Best effort: a
	// follower that cannot re-point just stays behind and fails barrier
	// checks until an operator intervenes.
	for _, f := range rest {
		if fURL, err := rt.nodeURL(f); err == nil {
			_ = postJSON(rt.client, fURL+"/v1/replicate/"+id, replicateRequest{Source: winnerURL}, nil)
		}
	}
	return nil
}

// NodeReturned marks a node reachable again and fences every job it might
// still hold a stale primary copy of: a node that died as primary and
// recovered its on-disk jobs would otherwise come back writable at the old
// epoch, and a client talking to it directly could get answers acked that
// the cluster never replicates. After fencing, its ingestion returns 409.
func (rt *Router) NodeReturned(name string) error {
	url, err := rt.nodeURL(name)
	if err != nil {
		return err
	}
	rt.mu.Lock()
	rt.nodes[name].down = false
	type fenceTarget struct {
		id    string
		epoch int64
	}
	var targets []fenceTarget
	for id, route := range rt.jobs {
		if route.primary != name {
			targets = append(targets, fenceTarget{id, route.epoch})
		}
	}
	rt.mu.Unlock()
	for _, t := range targets {
		// 404s (the node never hosted the job) are fine; so is any other
		// failure — the epoch stamp already fences router-proxied writes,
		// this closes the direct-client side channel.
		_ = postJSON(rt.client, url+"/v1/jobs/"+t.id+"/fence", map[string]int64{"epoch": t.epoch}, nil)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Planned handoff
// ---------------------------------------------------------------------------

type handoffRequest struct {
	Job string `json:"job"`
	To  string `json:"to"`
}

func (rt *Router) handleHandoff(w http.ResponseWriter, r *http.Request) {
	var req handoffRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad handoff body: %v", err))
		return
	}
	if err := rt.Handoff(req.Job, req.To); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "job": req.Job, "primary": req.To})
}

// Handoff transfers a job's ownership to one of its current followers with
// zero write loss and zero downtime beyond the gate hold:
//
//  1. take the job's write gate (new ingests park, in-flight ones finish);
//  2. fence the old primary at epoch+1 — stragglers hitting it directly
//     now get 409;
//  3. wait for the fenced primary to quiesce (queue drained, last round
//     published) and read its final journal length;
//  4. have the target drain the shipped suffix to exactly that length,
//     fetch the primary's checkpoint, and adopt the journal via the
//     standard recovery path at epoch+1;
//  5. swap the map and release the gate — parked writes proceed against
//     the new primary, stamped with the new epoch.
//
// No acked answer can be lost: every ack happened either before the gate
// (its bytes are below the final length the target drained to) or after
// the swap (it went to the new primary).
func (rt *Router) Handoff(id, target string) error {
	route, ok := rt.job(id)
	if !ok {
		return fmt.Errorf("cluster: job %q not routed", id)
	}
	route.gate.Lock()
	defer route.gate.Unlock()

	primary, primaryURL, followers, epoch, _ := rt.routeView(route)
	if target == primary {
		return nil
	}
	if !contains(followers, target) {
		return fmt.Errorf("cluster: %q is not a follower of %q", target, id)
	}
	targetURL, err := rt.nodeURL(target)
	if err != nil {
		return err
	}
	newEpoch := epoch + 1
	if err := postJSON(rt.client, primaryURL+"/v1/jobs/"+id+"/fence",
		map[string]int64{"epoch": newEpoch}, nil); err != nil {
		return fmt.Errorf("cluster: fencing %s: %w", primary, err)
	}
	finalBytes, err := rt.quiescePrimary(primaryURL, id)
	if err != nil {
		// Roll the fence back: the old primary resumes ownership at the new
		// epoch rather than leaving the job write-dead.
		_ = postJSON(rt.client, primaryURL+"/v1/jobs/"+id+"/promote", map[string]int64{"epoch": newEpoch}, nil)
		rt.mu.Lock()
		route.epoch = newEpoch
		rt.mu.Unlock()
		return err
	}
	var stats serve.JobStats
	if err := postJSON(rt.client, targetURL+"/v1/replicate/"+id+"/promote",
		promoteRequest{Epoch: newEpoch, MinBytes: finalBytes, Checkpoint: true}, &stats); err != nil {
		_ = postJSON(rt.client, primaryURL+"/v1/jobs/"+id+"/promote", map[string]int64{"epoch": newEpoch}, nil)
		rt.mu.Lock()
		route.epoch = newEpoch
		rt.mu.Unlock()
		return fmt.Errorf("cluster: promoting %s for %q: %w", target, id, err)
	}
	rt.mu.Lock()
	route.primary = target
	route.followers = remove(followers, target)
	route.epoch = newEpoch
	for i := range rt.shards {
		if rt.shards[i].Primary == primary {
			rt.shards[i].Primary = target
			rt.shards[i].Followers = remove(rt.shards[i].Followers, target)
		}
	}
	rt.mu.Unlock()
	// Re-point the remaining followers at the new primary (from-scratch
	// restart, same rationale as failover).
	for _, f := range remove(followers, target) {
		if fURL, err := rt.nodeURL(f); err == nil {
			_ = postJSON(rt.client, fURL+"/v1/replicate/"+id, replicateRequest{Source: targetURL}, nil)
		}
	}
	return nil
}

// quiescePrimary waits until a fenced primary has fitted everything it
// ingested and published the final round, then returns its durable journal
// length — nothing can append after that point: ingestion is fenced and the
// fitter has no pending work left to mark.
func (rt *Router) quiescePrimary(primaryURL, id string) (int64, error) {
	deadline := time.Now().Add(quiesceTimeout)
	for {
		var st serve.JobStats
		if err := getJSON(rt.client, primaryURL+"/v1/jobs/"+id, &st); err != nil {
			return 0, fmt.Errorf("cluster: quiescing %q: %w", id, err)
		}
		if st.Error != "" {
			return 0, fmt.Errorf("cluster: quiescing %q: job failed: %s", id, st.Error)
		}
		if st.FittedAnswers == st.IngestedAnswers && int64(st.SnapshotRound) == st.FitRounds {
			return st.JournalBytes, nil
		}
		if !time.Now().Before(deadline) {
			return 0, fmt.Errorf("cluster: %q did not quiesce (fitted %d of %d)", id, st.FittedAnswers, st.IngestedAnswers)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

// ClusterInfo is the /clusterz shape.
type ClusterInfo struct {
	Nodes  map[string]NodeInfo `json:"nodes"`
	Shards []ShardSpec         `json:"shards"`
	Jobs   map[string]JobInfo  `json:"jobs"`
}

// NodeInfo is one node's entry in /clusterz.
type NodeInfo struct {
	URL  string `json:"url"`
	Down bool   `json:"down,omitempty"`
}

// JobInfo is one job's routing entry in /clusterz.
type JobInfo struct {
	Shard      int      `json:"shard"`
	Primary    string   `json:"primary"`
	Followers  []string `json:"followers"`
	Epoch      int64    `json:"epoch"`
	AckedBytes int64    `json:"acked_bytes"`
}

// Info snapshots the cluster map.
func (rt *Router) Info() ClusterInfo {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	info := ClusterInfo{
		Nodes:  make(map[string]NodeInfo, len(rt.nodes)),
		Shards: append([]ShardSpec(nil), rt.shards...),
		Jobs:   make(map[string]JobInfo, len(rt.jobs)),
	}
	for name, ns := range rt.nodes {
		info.Nodes[name] = NodeInfo{URL: ns.url, Down: ns.down}
	}
	for id, route := range rt.jobs {
		info.Jobs[id] = JobInfo{
			Shard:      route.shard,
			Primary:    route.primary,
			Followers:  append([]string(nil), route.followers...),
			Epoch:      route.epoch,
			AckedBytes: route.acked,
		}
	}
	return info
}

func (rt *Router) handleClusterz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, rt.Info())
}

// RouterJobStats is one job's replication view in the router /statsz:
// the primary's serving stats next to every follower's shipping state.
type RouterJobStats struct {
	ID       string          `json:"id"`
	Primary  string          `json:"primary"`
	Epoch    int64           `json:"epoch"`
	Stats    *serve.JobStats `json:"stats,omitempty"`
	Replicas []RouterReplica `json:"replicas"`
	Error    string          `json:"error,omitempty"`
}

// RouterReplica pairs a follower node name with its replication state.
type RouterReplica struct {
	Node string `json:"node"`
	ReplicaStats
}

func (rt *Router) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	rt.mu.Lock()
	ids := make([]string, 0, len(rt.jobs))
	for id := range rt.jobs {
		ids = append(ids, id)
	}
	rt.mu.Unlock()
	sort.Strings(ids)
	out := make([]RouterJobStats, 0, len(ids))
	for _, id := range ids {
		route, ok := rt.job(id)
		if !ok {
			continue
		}
		primary, primaryURL, followers, epoch, _ := rt.routeView(route)
		js := RouterJobStats{ID: id, Primary: primary, Epoch: epoch, Replicas: []RouterReplica{}}
		var st serve.JobStats
		if err := getJSON(rt.client, primaryURL+"/v1/jobs/"+id, &st); err != nil {
			js.Error = err.Error()
		} else {
			js.Stats = &st
		}
		for _, f := range followers {
			fURL, err := rt.nodeURL(f)
			if err != nil {
				continue
			}
			var rs ReplicaStats
			if err := getJSON(rt.client, fURL+"/v1/replicate/"+id, &rs); err != nil {
				rs = ReplicaStats{ID: id, Error: err.Error()}
			}
			js.Replicas = append(js.Replicas, RouterReplica{Node: f, ReplicaStats: rs})
		}
		out = append(out, js)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

// ---------------------------------------------------------------------------
// Small helpers
// ---------------------------------------------------------------------------

func forwardResponse(w http.ResponseWriter, resp *http.Response) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

func remove(list []string, s string) []string {
	out := make([]string, 0, len(list))
	for _, v := range list {
		if v != s {
			out = append(out, v)
		}
	}
	return out
}
