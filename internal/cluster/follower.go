package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"cpa/internal/serve"
)

// tailWaitMS is the long-poll window a follower asks the primary to park
// for when it is at the tail; tailRetryBackoff paces retries when the
// source is unreachable (it may be dead — the router decides).
const (
	tailWaitMS       = 500
	tailRetryBackoff = 50 * time.Millisecond
)

// follower replicates one job by tailing its primary's journal endpoint:
// every shipped chunk is appended verbatim to a local journal file (so the
// local file is byte-for-byte a suffix of the primary's stream — plus
// possibly a torn tail when the stream died mid-record, which adoption
// truncates) and every complete line is applied through a serve.Applier,
// giving the follower a live, bit-identical snapshot chain to serve reads
// from. The staged directory (spec + journal + epoch, checkpoints as
// needed) is what promotion renames into the registry's jobs tree for
// AdoptJob.
//
// Offsets are tracked in the journal's global (never-truncated)
// coordinates: the local file may begin with a base header line (framing,
// not stream content) when the source's journal prefix was compacted away,
// and base/hdrLen translate between the local file and the global stream.
type follower struct {
	jobID  string
	source string // primary node base URL
	dir    string // staging dir (node's replicas tree)
	client *http.Client
	spec   serve.JobSpec

	mu          sync.Mutex
	ap          *serve.Applier
	file        *os.File
	base        serve.JournalBase // global position where the local file's stream content starts
	hdrLen      int64             // bytes of base-header framing at the local file's start (0 when none)
	shipped     int64             // local file bytes received and written
	applied     int64             // local file bytes covered by complete, applied lines
	appliedRecs int64             // stream records applied locally (excludes the base header)
	buf         []byte            // trailing partial line (shipped − applied bytes)
	wantBase    bool              // next tail request must carry ?base=1 (post-resync)
	srcDurable  int64             // primary's durable global length at last contact
	srcEpoch    int64
	srcDeposed  bool
	lastErr     string
	applyBroken bool // a record failed to apply; replication is wedged

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// startFollower resumes or stages the replica directory and starts the tail
// loop. Prior staging is resumed when it is still valid for the (possibly
// re-pointed) source — the applier is rebuilt by replaying the staged
// journal and shipping continues from its own durable offset instead of
// byte 0, so a failover or handoff does not re-ship a long journal from
// scratch. Resume is safe across a re-point: promotion only ever installs
// the most-advanced replica, so every other replica's staged bytes are a
// prefix of the new primary's stream. Staging that cannot be resumed (no
// prior state, a changed spec, a corrupt file) is discarded and rebuilt
// from scratch.
func startFollower(jobID, source, dir string, client *http.Client) (*follower, error) {
	var spec serve.JobSpec
	if err := getJSON(client, source+"/v1/jobs/"+jobID+"/spec", &spec); err != nil {
		return nil, fmt.Errorf("cluster: fetching spec for %q from %s: %w", jobID, source, err)
	}
	fo := &follower{
		jobID: jobID, source: source, dir: dir, client: client, spec: spec,
		stop: make(chan struct{}), done: make(chan struct{}),
	}
	if err := fo.resumeStaged(); err != nil {
		if err := fo.stageFresh(); err != nil {
			return nil, err
		}
	}
	go fo.loop()
	return fo, nil
}

// resumeStaged rebuilds the follower from a prior staging of the same job:
// verify the staged spec still matches the source's, replay the staged
// journal's complete-line prefix through a fresh applier (seeded from the
// staged base checkpoint when the journal opens with a base header), drop
// any torn tail, and continue appending where the staging left off.
func (fo *follower) resumeStaged() error {
	raw, err := os.ReadFile(filepath.Join(fo.dir, serve.SpecFileName))
	if err != nil {
		return err
	}
	var staged serve.JobSpec
	if err := json.Unmarshal(raw, &staged); err != nil {
		return fmt.Errorf("cluster: staged spec for %q: %w", fo.jobID, err)
	}
	want, _ := json.Marshal(fo.spec)
	got, _ := json.Marshal(staged)
	if !bytes.Equal(want, got) {
		return fmt.Errorf("cluster: staged spec for %q differs from source's", fo.jobID)
	}
	journalPath := filepath.Join(fo.dir, serve.JournalFileName)
	hasBase, err := journalStartsWithBase(journalPath)
	if err != nil {
		return err
	}
	if hasBase {
		bf, err := os.Open(filepath.Join(fo.dir, serve.BaseCheckpointFileName))
		if err != nil {
			return fmt.Errorf("cluster: staged journal for %q has a base header but no base checkpoint: %w", fo.jobID, err)
		}
		fo.ap, err = serve.NewApplierFrom(fo.spec, bf)
		bf.Close()
		if err != nil {
			return err
		}
	} else {
		if fo.ap, err = serve.NewApplier(fo.spec); err != nil {
			return err
		}
	}

	jf, err := os.Open(journalPath)
	if err != nil {
		return err
	}
	r := bufio.NewReaderSize(jf, 1<<20)
	chunk := make([]byte, 1<<20)
	for {
		n, rerr := r.Read(chunk)
		if n > 0 {
			fo.shipped += int64(n)
			fo.buf = append(fo.buf, chunk[:n]...)
			if aerr := fo.applyBuf(); aerr != nil {
				jf.Close()
				return aerr
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			jf.Close()
			return rerr
		}
	}
	jf.Close()

	// Drop the torn tail (a crash mid-ship leaves a partial last line) and
	// reopen for appending at the applied boundary.
	fo.buf = nil
	fo.shipped = fo.applied
	f, err := os.OpenFile(journalPath, os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := f.Truncate(fo.applied); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Seek(fo.applied, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	fo.file = f
	// Re-stamp the staging deposed: a crash mid-adoption must never bring
	// this replica up as a writable primary the cluster never elected.
	if err := serve.WriteEpochState(fo.dir, 0, true); err != nil {
		fo.file.Close()
		return err
	}
	return nil
}

// journalStartsWithBase reports whether the staged journal's first line is a
// base header (in which case replay must seed from the base checkpoint). An
// empty or headerless-torn file is simply headerless.
func journalStartsWithBase(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	line, err := bufio.NewReaderSize(f, 64<<10).ReadBytes('\n')
	if err != nil { // empty file or torn first line: nothing replayable
		return false, nil
	}
	e, err := serve.DecodeJournalLine(bytes.TrimSuffix(line, []byte("\n")))
	if err != nil {
		return false, err
	}
	return e.Base != nil, nil
}

// stageFresh discards any prior staging and builds the replica directory
// from scratch: source spec, fenced epoch record, empty journal, cold
// applier. Also the live reset path when a re-pointed source turns out to
// be behind the staged offset (nothing beyond its durable length can be
// trusted to match).
func (fo *follower) stageFresh() error {
	if err := os.RemoveAll(fo.dir); err != nil {
		return fmt.Errorf("cluster: clearing replica dir: %w", err)
	}
	if err := os.MkdirAll(fo.dir, 0o755); err != nil {
		return fmt.Errorf("cluster: creating replica dir: %w", err)
	}
	rawSpec, err := json.MarshalIndent(fo.spec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(fo.dir, serve.SpecFileName), rawSpec, 0o644); err != nil {
		return fmt.Errorf("cluster: staging spec: %w", err)
	}
	// Stage the directory deposed: if the node crashes with the staging
	// half-adopted, recovery must not bring the replica up as a writable
	// primary the cluster never elected.
	if err := serve.WriteEpochState(fo.dir, 0, true); err != nil {
		return fmt.Errorf("cluster: staging epoch: %w", err)
	}
	ap, err := serve.NewApplier(fo.spec)
	if err != nil {
		return fmt.Errorf("cluster: building applier for %q: %w", fo.jobID, err)
	}
	f, err := os.OpenFile(filepath.Join(fo.dir, serve.JournalFileName),
		os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("cluster: staging journal: %w", err)
	}
	fo.mu.Lock()
	old := fo.file
	fo.ap, fo.file = ap, f
	fo.base, fo.hdrLen = serve.JournalBase{}, 0
	fo.shipped, fo.applied, fo.appliedRecs = 0, 0, 0
	fo.buf, fo.wantBase, fo.applyBroken = nil, false, false
	fo.mu.Unlock()
	if old != nil {
		old.Close()
	}
	return nil
}

func (fo *follower) loop() {
	defer close(fo.done)
	for {
		select {
		case <-fo.stop:
			return
		default:
		}
		if err := fo.shipOnce(tailWaitMS); err != nil {
			fo.mu.Lock()
			fo.lastErr = err.Error()
			broken := fo.applyBroken
			fo.mu.Unlock()
			if broken {
				return
			}
			select {
			case <-fo.stop:
				return
			case <-time.After(tailRetryBackoff):
			}
		}
	}
}

// globalShipped returns the follower's shipped offset in global journal
// coordinates. Callers must hold fo.mu.
func (fo *follower) globalShipped() int64 { return fo.base.Bytes + fo.shipped - fo.hdrLen }

// shipOnce performs one tail request from the current shipped offset,
// persists whatever arrives, and applies the complete lines. A 410 response
// (the requested offset predates the source's compacted journal) triggers
// the resync handshake; a from-beyond-durable rejection (the staged offset
// overruns a re-pointed, less advanced source) restages from scratch.
func (fo *follower) shipOnce(waitMS int) error {
	fo.mu.Lock()
	from := fo.globalShipped()
	wantBase := fo.wantBase
	fo.mu.Unlock()
	url := fmt.Sprintf("%s/v1/jobs/%s/journal?from=%d&wait_ms=%d", fo.source, fo.jobID, from, waitMS)
	if wantBase {
		url += "&base=1"
	}
	resp, err := fo.client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		baseBytes, perr := strconv.ParseInt(resp.Header.Get("X-CPA-Journal-Base"), 10, 64)
		apiErr := readAPIError(resp)
		if perr != nil || baseBytes <= from {
			return apiErr
		}
		if rerr := fo.resync(baseBytes); rerr != nil {
			return fmt.Errorf("cluster: resyncing %q past truncated journal: %w", fo.jobID, rerr)
		}
		return nil
	case http.StatusBadRequest:
		apiErr := readAPIError(resp)
		if from > 0 {
			if rerr := fo.stageFresh(); rerr != nil {
				return rerr
			}
		}
		return apiErr
	default:
		return readAPIError(resp)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, (8<<20)+(1<<20)))
	if err != nil {
		return err
	}
	durable, _ := strconv.ParseInt(resp.Header.Get("X-CPA-Journal-Durable"), 10, 64)
	epoch, _ := strconv.ParseInt(resp.Header.Get("X-CPA-Epoch"), 10, 64)
	deposed := resp.Header.Get("X-CPA-Deposed") == "1"

	if len(body) > 0 {
		// Persist first, apply second: a crash between the two replays the
		// persisted lines on resume or adoption, so apply-after-persist can
		// never lose a record the local file claims to have.
		if _, err := fo.file.Write(body); err != nil {
			return fmt.Errorf("cluster: writing shipped chunk: %w", err)
		}
	}
	fo.mu.Lock()
	defer fo.mu.Unlock()
	fo.srcDurable, fo.srcEpoch, fo.srcDeposed = durable, epoch, deposed
	if len(body) == 0 {
		fo.lastErr = ""
		return nil
	}
	fo.shipped += int64(len(body))
	fo.buf = append(fo.buf, body...)
	if err := fo.applyBuf(); err != nil {
		return err
	}
	if wantBase && fo.hdrLen > 0 {
		fo.wantBase = false
	}
	fo.lastErr = ""
	return nil
}

// applyBuf drains complete lines from the reassembly buffer through the
// applier, advancing the applied offsets. The base header line — legal only
// at local offset 0 — records the file's global framing instead of counting
// as a stream record. Callers must hold fo.mu (or own the follower
// exclusively, as resume does before the loop starts).
func (fo *follower) applyBuf() error {
	for {
		idx := bytes.IndexByte(fo.buf, '\n')
		if idx < 0 {
			return nil
		}
		line := fo.buf[:idx]
		if len(bytes.TrimSpace(line)) > 0 {
			e, err := serve.DecodeJournalLine(line)
			if err == nil && e.Base != nil {
				if fo.applied != 0 || fo.hdrLen != 0 {
					err = fmt.Errorf("journal base header at offset %d (want 0)", fo.applied)
				} else {
					fo.hdrLen = int64(idx + 1)
					fo.base = *e.Base
				}
			}
			if err == nil {
				err = fo.ap.Apply(e)
			}
			if err != nil {
				// A shipped record that fails to decode or apply wedges the
				// replica permanently: skipping it would silently fork the
				// follower's state from the primary's.
				fo.applyBroken = true
				return fmt.Errorf("cluster: applying shipped record for %q: %w", fo.jobID, err)
			}
			if e.Base == nil {
				fo.appliedRecs++
			}
		}
		fo.applied += int64(idx + 1)
		fo.buf = fo.buf[idx+1:]
	}
}

// resync re-anchors the follower past a truncated source journal: fetch the
// base checkpoint (the primary's own model at the truncation boundary),
// rebuild the applier from it, reset the local journal, and arrange for the
// next tail request to fetch from the base with the header line included.
// Replaying the retained suffix on top of the checkpoint yields exactly the
// state a from-zero replay of the untruncated journal would have.
func (fo *follower) resync(baseBytes int64) error {
	resp, err := fo.client.Get(fo.source + "/v1/jobs/" + fo.jobID + "/checkpoint?base=1")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return readAPIError(resp)
	}
	basePath := filepath.Join(fo.dir, serve.BaseCheckpointFileName)
	tmp := basePath + ".tmp"
	bf, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := bf.ReadFrom(resp.Body); err != nil {
		bf.Close()
		return fmt.Errorf("cluster: staging base checkpoint: %w", err)
	}
	if err := bf.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, basePath); err != nil {
		return err
	}
	sf, err := os.Open(basePath)
	if err != nil {
		return err
	}
	ap, err := serve.NewApplierFrom(fo.spec, sf)
	sf.Close()
	if err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(fo.dir, serve.JournalFileName),
		os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	fo.mu.Lock()
	old := fo.file
	fo.ap, fo.file = ap, f
	// Recs/Ans/Fits stay zero until the base header line arrives and fills
	// them in; Bytes anchors the very next request's ?from.
	fo.base, fo.hdrLen = serve.JournalBase{Bytes: baseBytes}, 0
	fo.shipped, fo.applied, fo.appliedRecs = 0, 0, 0
	fo.buf, fo.wantBase = nil, true
	fo.mu.Unlock()
	if old != nil {
		old.Close()
	}
	return nil
}

// shutdown stops the tail loop and closes the staged journal file.
func (fo *follower) shutdown() {
	fo.stopOnce.Do(func() { close(fo.stop) })
	<-fo.done
	fo.file.Close()
}

// drainTo waits until the applied offset (global coordinates) reaches min —
// tailing continues in the background loop — or the timeout expires.
// Promotion after a primary death passes the follower's own offset (nothing
// more can arrive); planned handoff passes the fenced primary's final
// durable length.
func (fo *follower) drainTo(min int64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		fo.mu.Lock()
		applied := fo.base.Bytes + fo.applied - fo.hdrLen
		broken, lastErr := fo.applyBroken, fo.lastErr
		fo.mu.Unlock()
		if broken {
			return fmt.Errorf("cluster: replica %q wedged: %s", fo.jobID, lastErr)
		}
		if applied >= min {
			return nil
		}
		if !time.Now().Before(deadline) {
			return fmt.Errorf("cluster: replica %q drained to %d of %d before timeout (last error: %s)",
				fo.jobID, applied, min, lastErr)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// ReplicaStats is the JSON shape of one follower's replication state (the
// node /statsz and /v1/replicate/{id} responses). Byte and record offsets
// are in the journal's global (never-truncated) coordinates, so they stay
// continuous across source-side compactions; BaseBytes is where the
// follower's locally staged suffix begins (0 when it holds the stream from
// the start). LagBytes is the journal offset delta to the primary's durable
// length as of last contact.
type ReplicaStats struct {
	ID             string `json:"id"`
	Source         string `json:"source"`
	ShippedBytes   int64  `json:"shipped_bytes"`
	AppliedBytes   int64  `json:"applied_bytes"`
	AppliedRecords int64  `json:"applied_records"`
	BaseBytes      int64  `json:"base_bytes,omitempty"`
	SourceDurable  int64  `json:"source_durable_bytes"`
	LagBytes       int64  `json:"lag_bytes"`
	SourceEpoch    int64  `json:"source_epoch"`
	SourceDeposed  bool   `json:"source_deposed,omitempty"`
	SnapshotRound  int    `json:"snapshot_round"`
	// Error is the last tail/apply error. A source-fetch error is
	// transient (and expected while the primary is down); Wedged means a
	// shipped record failed to apply and the replica must not be promoted.
	Error  string `json:"error,omitempty"`
	Wedged bool   `json:"wedged,omitempty"`
}

func (fo *follower) stats() ReplicaStats {
	fo.mu.Lock()
	defer fo.mu.Unlock()
	applied := fo.base.Bytes + fo.applied - fo.hdrLen
	lag := fo.srcDurable - applied
	if lag < 0 {
		lag = 0
	}
	return ReplicaStats{
		ID:             fo.jobID,
		Source:         fo.source,
		ShippedBytes:   fo.globalShipped(),
		AppliedBytes:   applied,
		AppliedRecords: fo.base.Recs + fo.appliedRecs,
		BaseBytes:      fo.base.Bytes,
		SourceDurable:  fo.srcDurable,
		LagBytes:       lag,
		SourceEpoch:    fo.srcEpoch,
		SourceDeposed:  fo.srcDeposed,
		SnapshotRound:  fo.ap.Snapshot().Round,
		Error:          fo.lastErr,
		Wedged:         fo.applyBroken,
	}
}
