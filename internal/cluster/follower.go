package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"cpa/internal/serve"
)

// tailWaitMS is the long-poll window a follower asks the primary to park
// for when it is at the tail; tailRetryBackoff paces retries when the
// source is unreachable (it may be dead — the router decides).
const (
	tailWaitMS       = 500
	tailRetryBackoff = 50 * time.Millisecond
)

// follower replicates one job by tailing its primary's journal endpoint:
// every shipped chunk is appended verbatim to a local journal file (so the
// local file is byte-for-byte a prefix of the primary's — plus possibly a
// torn tail when the stream died mid-record, which adoption truncates) and
// every complete line is applied through a serve.Applier, giving the
// follower a live, bit-identical snapshot chain to serve reads from. The
// staged directory (spec + journal + epoch, checkpoint on handoff) is what
// promotion renames into the registry's jobs tree for AdoptJob.
type follower struct {
	jobID  string
	source string // primary node base URL
	dir    string // staging dir (node's replicas tree)
	client *http.Client
	ap     *serve.Applier
	file   *os.File

	mu          sync.Mutex
	shipped     int64  // bytes received and written locally
	applied     int64  // bytes covered by complete, applied lines
	appliedRecs int64  // complete records applied
	buf         []byte // trailing partial line (shipped − applied bytes)
	srcDurable  int64  // primary's durable length at last contact
	srcEpoch    int64
	srcDeposed  bool
	lastErr     string
	applyBroken bool // a record failed to apply; replication is wedged

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// startFollower stages the replica directory (spec fetched from the source,
// fenced epoch record, empty journal) and starts the tail loop. Any prior
// staging at dir is discarded: replication restarts from offset 0, which is
// always correct — the shipped stream is the journal itself.
func startFollower(jobID, source, dir string, client *http.Client) (*follower, error) {
	var spec serve.JobSpec
	if err := getJSON(client, source+"/v1/jobs/"+jobID+"/spec", &spec); err != nil {
		return nil, fmt.Errorf("cluster: fetching spec for %q from %s: %w", jobID, source, err)
	}
	if err := os.RemoveAll(dir); err != nil {
		return nil, fmt.Errorf("cluster: clearing replica dir: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: creating replica dir: %w", err)
	}
	rawSpec, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, serve.SpecFileName), rawSpec, 0o644); err != nil {
		return nil, fmt.Errorf("cluster: staging spec: %w", err)
	}
	// Stage the directory deposed: if the node crashes with the staging
	// half-adopted, recovery must not bring the replica up as a writable
	// primary the cluster never elected.
	if err := serve.WriteEpochState(dir, 0, true); err != nil {
		return nil, fmt.Errorf("cluster: staging epoch: %w", err)
	}
	ap, err := serve.NewApplier(spec)
	if err != nil {
		return nil, fmt.Errorf("cluster: building applier for %q: %w", jobID, err)
	}
	f, err := os.OpenFile(filepath.Join(dir, serve.JournalFileName),
		os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cluster: staging journal: %w", err)
	}
	fo := &follower{
		jobID: jobID, source: source, dir: dir, client: client,
		ap: ap, file: f,
		stop: make(chan struct{}), done: make(chan struct{}),
	}
	go fo.loop()
	return fo, nil
}

func (fo *follower) loop() {
	defer close(fo.done)
	for {
		select {
		case <-fo.stop:
			return
		default:
		}
		if err := fo.shipOnce(tailWaitMS); err != nil {
			fo.mu.Lock()
			fo.lastErr = err.Error()
			broken := fo.applyBroken
			fo.mu.Unlock()
			if broken {
				return
			}
			select {
			case <-fo.stop:
				return
			case <-time.After(tailRetryBackoff):
			}
		}
	}
}

// shipOnce performs one tail request from the current shipped offset,
// persists whatever arrives, and applies the complete lines.
func (fo *follower) shipOnce(waitMS int) error {
	fo.mu.Lock()
	from := fo.shipped
	fo.mu.Unlock()
	url := fmt.Sprintf("%s/v1/jobs/%s/journal?from=%d&wait_ms=%d", fo.source, fo.jobID, from, waitMS)
	resp, err := fo.client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return readAPIError(resp)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, (8<<20)+(1<<20)))
	if err != nil {
		return err
	}
	durable, _ := strconv.ParseInt(resp.Header.Get("X-CPA-Journal-Durable"), 10, 64)
	epoch, _ := strconv.ParseInt(resp.Header.Get("X-CPA-Epoch"), 10, 64)
	deposed := resp.Header.Get("X-CPA-Deposed") == "1"

	if len(body) > 0 {
		// Persist first, apply second: a crash between the two replays the
		// persisted lines on adoption, so apply-after-persist can never lose
		// a record the local file claims to have.
		if _, err := fo.file.Write(body); err != nil {
			return fmt.Errorf("cluster: writing shipped chunk: %w", err)
		}
	}
	fo.mu.Lock()
	defer fo.mu.Unlock()
	fo.srcDurable, fo.srcEpoch, fo.srcDeposed = durable, epoch, deposed
	if len(body) == 0 {
		fo.lastErr = ""
		return nil
	}
	fo.shipped += int64(len(body))
	fo.buf = append(fo.buf, body...)
	for {
		idx := bytes.IndexByte(fo.buf, '\n')
		if idx < 0 {
			break
		}
		line := fo.buf[:idx]
		if len(bytes.TrimSpace(line)) > 0 {
			e, err := serve.DecodeJournalLine(line)
			if err == nil {
				err = fo.ap.Apply(e)
			}
			if err != nil {
				// A shipped record that fails to decode or apply wedges the
				// replica permanently: skipping it would silently fork the
				// follower's state from the primary's.
				fo.applyBroken = true
				return fmt.Errorf("cluster: applying shipped record for %q: %w", fo.jobID, err)
			}
			fo.appliedRecs++
		}
		fo.applied += int64(idx + 1)
		fo.buf = fo.buf[idx+1:]
	}
	fo.lastErr = ""
	return nil
}

// shutdown stops the tail loop and closes the staged journal file.
func (fo *follower) shutdown() {
	fo.stopOnce.Do(func() { close(fo.stop) })
	<-fo.done
	fo.file.Close()
}

// drainTo waits until the applied offset reaches min — tailing continues in
// the background loop — or the timeout expires. Promotion after a primary
// death passes the follower's own offset (nothing more can arrive); planned
// handoff passes the fenced primary's final durable length.
func (fo *follower) drainTo(min int64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		fo.mu.Lock()
		applied, broken, lastErr := fo.applied, fo.applyBroken, fo.lastErr
		fo.mu.Unlock()
		if broken {
			return fmt.Errorf("cluster: replica %q wedged: %s", fo.jobID, lastErr)
		}
		if applied >= min {
			return nil
		}
		if !time.Now().Before(deadline) {
			return fmt.Errorf("cluster: replica %q drained to %d of %d before timeout (last error: %s)",
				fo.jobID, applied, min, lastErr)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// ReplicaStats is the JSON shape of one follower's replication state (the
// node /statsz and /v1/replicate/{id} responses). LagBytes is the journal
// offset delta to the primary's durable length as of last contact.
type ReplicaStats struct {
	ID             string `json:"id"`
	Source         string `json:"source"`
	ShippedBytes   int64  `json:"shipped_bytes"`
	AppliedBytes   int64  `json:"applied_bytes"`
	AppliedRecords int64  `json:"applied_records"`
	SourceDurable  int64  `json:"source_durable_bytes"`
	LagBytes       int64  `json:"lag_bytes"`
	SourceEpoch    int64  `json:"source_epoch"`
	SourceDeposed  bool   `json:"source_deposed,omitempty"`
	SnapshotRound  int    `json:"snapshot_round"`
	// Error is the last tail/apply error. A source-fetch error is
	// transient (and expected while the primary is down); Wedged means a
	// shipped record failed to apply and the replica must not be promoted.
	Error  string `json:"error,omitempty"`
	Wedged bool   `json:"wedged,omitempty"`
}

func (fo *follower) stats() ReplicaStats {
	fo.mu.Lock()
	defer fo.mu.Unlock()
	lag := fo.srcDurable - fo.applied
	if lag < 0 {
		lag = 0
	}
	return ReplicaStats{
		ID:             fo.jobID,
		Source:         fo.source,
		ShippedBytes:   fo.shipped,
		AppliedBytes:   fo.applied,
		AppliedRecords: fo.appliedRecs,
		SourceDurable:  fo.srcDurable,
		LagBytes:       lag,
		SourceEpoch:    fo.srcEpoch,
		SourceDeposed:  fo.srcDeposed,
		SnapshotRound:  fo.ap.Snapshot().Round,
		Error:          fo.lastErr,
		Wedged:         fo.applyBroken,
	}
}
