package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// maxErrBody bounds how much of an error response is read back into a Go
// error message.
const maxErrBody = 8 << 10

// apiError carries a non-2xx upstream status so callers (the router's
// proxy paths) can forward it instead of flattening everything to 502.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string { return fmt.Sprintf("upstream %d: %s", e.Status, e.Msg) }

// readAPIError drains a non-2xx response into an *apiError, decoding the
// serve error envelope when present.
func readAPIError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrBody))
	var env struct {
		Error string `json:"error"`
	}
	msg := string(bytes.TrimSpace(raw))
	if json.Unmarshal(raw, &env) == nil && env.Error != "" {
		msg = env.Error
	}
	return &apiError{Status: resp.StatusCode, Msg: msg}
}

// getJSON fetches url and decodes the JSON response into out (out may be
// nil to discard the body).
func getJSON(c *http.Client, url string, out any) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return readAPIError(resp)
	}
	if out == nil {
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// postJSON posts in (JSON-encoded, nil for an empty object) to url and
// decodes the response into out (nil to discard).
func postJSON(c *http.Client, url string, in, out any) error {
	body := []byte("{}")
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return err
		}
	}
	resp, err := c.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return readAPIError(resp)
	}
	if out == nil {
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
