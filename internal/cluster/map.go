// Package cluster turns single-process cpaserve nodes into a sharded,
// replicated deployment: a router owns the cluster map (job → shard via
// rendezvous hashing, shard → primary + followers), followers tail the
// primary's journal over HTTP and apply it through the serve replay path
// (bit-identical state), and ownership epochs fence deposed primaries so
// failover and planned handoff never lose an acked answer. DESIGN.md §11
// describes the protocol.
package cluster

import (
	"fmt"
	"hash/fnv"
)

// ShardSpec names one shard's replica set: the node that owns the write
// path and the nodes that tail its journals.
type ShardSpec struct {
	Primary   string   `json:"primary"`
	Followers []string `json:"followers"`
}

// MapSpec is the bootstrap topology the router is configured with: the node
// roster (name → base URL) and the shard layout. Per-job deviations
// (failover promotions, handoffs) are tracked by the router on top.
type MapSpec struct {
	Nodes  map[string]string `json:"nodes"`
	Shards []ShardSpec       `json:"shards"`
}

// Validate checks the topology references only known nodes.
func (m MapSpec) Validate() error {
	if len(m.Shards) == 0 {
		return fmt.Errorf("cluster: no shards configured")
	}
	for i, sh := range m.Shards {
		if _, ok := m.Nodes[sh.Primary]; !ok {
			return fmt.Errorf("cluster: shard %d primary %q not in node roster", i, sh.Primary)
		}
		for _, f := range sh.Followers {
			if _, ok := m.Nodes[f]; !ok {
				return fmt.Errorf("cluster: shard %d follower %q not in node roster", i, f)
			}
			if f == sh.Primary {
				return fmt.Errorf("cluster: shard %d lists %q as both primary and follower", i, f)
			}
		}
	}
	return nil
}

// ShardFor places a job on a shard by rendezvous (highest-random-weight)
// hashing: hash (job, shard) for every shard and take the argmax. Unlike
// mod-N placement, adding or removing one shard reassigns only the jobs
// that land on it, and the choice needs no coordination — any router
// instance computes the same owner from the same shard count.
func ShardFor(jobID string, numShards int) int {
	best, bestScore := 0, uint64(0)
	for s := 0; s < numShards; s++ {
		h := fnv.New64a()
		fmt.Fprintf(h, "%s#%d", jobID, s)
		if score := h.Sum64(); s == 0 || score > bestScore {
			best, bestScore = s, score
		}
	}
	return best
}
