package baselines

import (
	"testing"

	"cpa/internal/answers"
	"cpa/internal/datasets"
	"cpa/internal/labelset"
	"cpa/internal/metrics"
)

// table1Dataset builds the paper's Table 1 motivating example: five workers
// label four pictures with subsets of {sky=0, plane=1, sun=2, water=3,
// tree=4} (shifted to 0-based labels).
func table1Dataset(t testing.TB) *answers.Dataset {
	t.Helper()
	d, err := answers.NewDataset("table1", 4, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Rows from Table 1 with labels shifted down by one.
	rows := []struct {
		item, worker int
		labels       []int
	}{
		{0, 0, []int{3, 4}}, {0, 1, []int{3, 4}}, {0, 2, []int{3}}, {0, 3, []int{0}}, {0, 4, []int{4}},
		{1, 0, []int{1, 2}}, {1, 1, []int{0, 3}}, {1, 2, []int{3}}, {1, 3, []int{1}}, {1, 4, []int{2, 3}},
		{2, 0, []int{0, 1}}, {2, 1, []int{3}}, {2, 2, []int{3}}, {2, 3, []int{2}}, {2, 4, []int{3, 4}},
		{3, 0, []int{0, 1}}, {3, 1, []int{1, 2}}, {3, 2, []int{3}}, {3, 3, []int{3}}, {3, 4, []int{0, 1, 2}},
	}
	for _, r := range rows {
		if err := d.Add(r.item, r.worker, labelset.FromSlice(r.labels)); err != nil {
			t.Fatal(err)
		}
	}
	truth := [][]int{{4}, {2, 3}, {3, 4}, {0, 1, 2}}
	for i, tr := range truth {
		if err := d.SetTruth(i, labelset.FromSlice(tr)); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestMajorityVoteMatchesPaperTable1(t *testing.T) {
	d := table1Dataset(t)
	mv := NewMajorityVote()
	if mv.Name() != "MV" {
		t.Errorf("Name = %q", mv.Name())
	}
	pred, err := mv.Aggregate(d)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Majority column (1-based {4,5},{4},{4},{2} -> 0-based).
	want := []labelset.Set{
		labelset.Of(3, 4),
		labelset.Of(3),
		labelset.Of(3),
		labelset.Of(1),
	}
	for i := range want {
		if !pred[i].Equal(want[i]) {
			t.Errorf("item %d: MV = %v, want %v", i, pred[i], want[i])
		}
	}
}

func TestValidateErrors(t *testing.T) {
	if _, err := NewMajorityVote().Aggregate(nil); err == nil {
		t.Error("nil dataset should fail")
	}
	empty, _ := answers.NewDataset("empty", 1, 1, 1)
	for _, agg := range []Aggregator{NewMajorityVote(), NewDawidSkene(), NewBCC(), NewCBCC()} {
		if _, err := agg.Aggregate(empty); err == nil {
			t.Errorf("%s: empty dataset should fail", agg.Name())
		}
	}
}

func TestMVFallbackNeverEmpty(t *testing.T) {
	// Three workers, total disagreement: no label reaches majority, but the
	// consensus must still pick the top-voted label rather than ∅.
	d, _ := answers.NewDataset("split", 1, 3, 4)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(d.Add(0, 0, labelset.Of(0)))
	must(d.Add(0, 1, labelset.Of(1)))
	must(d.Add(0, 2, labelset.Of(2)))
	pred, err := NewMajorityVote().Aggregate(d)
	if err != nil {
		t.Fatal(err)
	}
	if pred[0].IsEmpty() {
		t.Error("MV must fall back to the top-voted label")
	}
	if pred[0].Len() != 1 {
		t.Errorf("fallback should add exactly one label, got %v", pred[0])
	}
}

func TestNames(t *testing.T) {
	if NewDawidSkene().Name() != "EM" {
		t.Error("DS name")
	}
	if NewBCC().Name() != "BCC" {
		t.Error("BCC name")
	}
	if NewCBCC().Name() != "cBCC" {
		t.Error("cBCC name")
	}
	custom := NewDawidSkeneWithConfig("EM-strict", EMConfig{MaxIter: 5})
	if custom.Name() != "EM-strict" {
		t.Error("custom name")
	}
}

// simulatedBenchmark aggregates with the given method on a small simulated
// image-profile dataset and returns P/R.
func simulatedBenchmark(t testing.TB, agg Aggregator) metrics.PR {
	t.Helper()
	ds, _, err := datasets.Load("image", 0.08, 13)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := agg.Aggregate(ds)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := metrics.Evaluate(ds, pred)
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func TestDawidSkeneBeatsMVOnRecall(t *testing.T) {
	mv := simulatedBenchmark(t, NewMajorityVote())
	em := simulatedBenchmark(t, NewDawidSkene())
	t.Logf("MV=%v EM=%v", mv, em)
	// EM's worker weighting should recover clearly more truth labels than
	// threshold majority voting on data with sloppy workers and spammers.
	if em.Recall < mv.Recall {
		t.Errorf("EM recall %.3f below MV %.3f", em.Recall, mv.Recall)
	}
	if em.F1() < mv.F1()-0.02 {
		t.Errorf("EM F1 %.3f clearly below MV %.3f", em.F1(), mv.F1())
	}
}

func TestBCCAndCBCCQuality(t *testing.T) {
	em := simulatedBenchmark(t, NewDawidSkene())
	bcc := simulatedBenchmark(t, NewBCC())
	cbcc := simulatedBenchmark(t, NewCBCC())
	t.Logf("EM=%v BCC=%v cBCC=%v", em, bcc, cbcc)
	// The Bayesian variants must stay in the same quality regime as EM
	// (paper Table 4 shows cBCC >= EM on all datasets).
	if bcc.F1() < em.F1()-0.05 {
		t.Errorf("BCC F1 %.3f far below EM %.3f", bcc.F1(), em.F1())
	}
	if cbcc.F1() < em.F1()-0.05 {
		t.Errorf("cBCC F1 %.3f far below EM %.3f", cbcc.F1(), em.F1())
	}
}

func TestCBCCExposesCommunities(t *testing.T) {
	ds, _, err := datasets.Load("movie", 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCBCCWithConfig(CBCCConfig{Communities: 4, MaxIter: 10})
	if c.Communities() != nil {
		t.Error("communities should be nil before aggregation")
	}
	if _, err := c.Aggregate(ds); err != nil {
		t.Fatal(err)
	}
	resp := c.Communities()
	if len(resp) != ds.NumWorkers {
		t.Fatalf("responsibilities for %d workers, want %d", len(resp), ds.NumWorkers)
	}
	for u, row := range resp {
		if len(row) != 4 {
			t.Fatalf("worker %d has %d communities", u, len(row))
		}
		sum := 0.0
		for _, r := range row {
			if r < 0 || r > 1 {
				t.Fatalf("worker %d responsibility out of range: %v", u, row)
			}
			sum += r
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("worker %d responsibilities sum to %g", u, sum)
		}
	}
}

func TestCBCCSeparatesSpammersFromReliable(t *testing.T) {
	ds, meta, err := datasets.Load("image", 0.08, 21)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCBCCWithConfig(CBCCConfig{Communities: 4, MaxIter: 25})
	if _, err := c.Aggregate(ds); err != nil {
		t.Fatal(err)
	}
	resp := c.Communities()
	// Hard-assign workers to argmax community and check reliable workers
	// and uniform spammers do not predominantly share one community.
	assign := make([]int, len(resp))
	for u, row := range resp {
		best, bestV := 0, row[0]
		for m, v := range row {
			if v > bestV {
				best, bestV = m, v
			}
		}
		assign[u] = best
	}
	counts := map[bool]map[int]int{true: {}, false: {}}
	for u := range assign {
		wt := meta.WorkerTypes[u]
		if wt == 0 { // reliable
			counts[true][assign[u]]++
		}
		if wt.IsSpammer() {
			counts[false][assign[u]]++
		}
	}
	top := func(m map[int]int) (int, float64) {
		bestK, bestV, total := -1, 0, 0
		for k, v := range m {
			total += v
			if v > bestV {
				bestK, bestV = k, v
			}
		}
		if total == 0 {
			return -1, 0
		}
		return bestK, float64(bestV) / float64(total)
	}
	relTop, relFrac := top(counts[true])
	spamTop, _ := top(counts[false])
	t.Logf("reliable-top=%d (%.2f) spam-top=%d", relTop, relFrac, spamTop)
	if relFrac > 0.5 && relTop == spamTop {
		t.Error("reliable workers and spammers collapse into the same dominant community")
	}
}

func TestDeterministicAggregation(t *testing.T) {
	ds, _, err := datasets.Load("topic", 0.08, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, mk := range []func() Aggregator{
		func() Aggregator { return NewMajorityVote() },
		func() Aggregator { return NewDawidSkene() },
		func() Aggregator { return NewBCC() },
		func() Aggregator { return NewCBCC() },
	} {
		a1, err := mk().Aggregate(ds)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := mk().Aggregate(ds)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a1 {
			if !a1[i].Equal(a2[i]) {
				t.Fatalf("%s not deterministic at item %d", mk().Name(), i)
			}
		}
	}
}

func TestPerfectWorkersGivePerfectAnswers(t *testing.T) {
	// Three perfectly honest workers: every method must recover the truth.
	d, _ := answers.NewDataset("perfect", 10, 3, 6)
	for i := 0; i < 10; i++ {
		truth := labelset.Of(i%6, (i+1)%6)
		if err := d.SetTruth(i, truth); err != nil {
			t.Fatal(err)
		}
		for u := 0; u < 3; u++ {
			if err := d.Add(i, u, truth.Clone()); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, agg := range []Aggregator{NewMajorityVote(), NewDawidSkene(), NewBCC(), NewCBCC()} {
		pred, err := agg.Aggregate(d)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := metrics.Evaluate(d, pred)
		if err != nil {
			t.Fatal(err)
		}
		if pr.Precision < 0.999 || pr.Recall < 0.999 {
			t.Errorf("%s on perfect data: %v", agg.Name(), pr)
		}
	}
}

func BenchmarkMajorityVote(b *testing.B) {
	ds, _, err := datasets.Load("image", 0.1, 1)
	if err != nil {
		b.Fatal(err)
	}
	mv := NewMajorityVote()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mv.Aggregate(ds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDawidSkene(b *testing.B) {
	ds, _, err := datasets.Load("image", 0.1, 1)
	if err != nil {
		b.Fatal(err)
	}
	em := NewDawidSkene()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := em.Aggregate(ds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCBCC(b *testing.B) {
	ds, _, err := datasets.Load("image", 0.1, 1)
	if err != nil {
		b.Fatal(err)
	}
	c := NewCBCC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Aggregate(ds); err != nil {
			b.Fatal(err)
		}
	}
}
