package baselines

import (
	"math"

	"cpa/internal/answers"
	"cpa/internal/labelset"
	"cpa/internal/mat"
	"cpa/internal/mathx"
)

// EMConfig tunes the Dawid–Skene EM baseline and its Bayesian (BCC)
// variant. Zero values pick the documented defaults.
type EMConfig struct {
	// MaxIter bounds EM iterations per label. Default 50.
	MaxIter int
	// Tol is the convergence threshold on the max change of truth
	// posteriors between iterations. Default 1e-4.
	Tol float64
	// SensPrior/SpecPrior are Beta(a,b) pseudo-counts for the worker
	// confusion parameters. The plain EM baseline uses a weak symmetric
	// (1,1); BCC uses informative priors favouring better-than-chance
	// workers. Fields: {A, B}.
	SensPrior [2]float64
	SpecPrior [2]float64
	// TruthPrior is the Beta prior on per-label prevalence. Default (1,1).
	TruthPrior [2]float64
}

func (c *EMConfig) fillDefaults() {
	if c.MaxIter == 0 {
		c.MaxIter = 50
	}
	if c.Tol == 0 {
		c.Tol = 1e-4
	}
	if c.SensPrior == ([2]float64{}) {
		c.SensPrior = [2]float64{1, 1}
	}
	if c.SpecPrior == ([2]float64{}) {
		c.SpecPrior = [2]float64{1, 1}
	}
	if c.TruthPrior == ([2]float64{}) {
		c.TruthPrior = [2]float64{1, 1}
	}
}

// DawidSkene is the EM baseline [Dawid & Skene 1979; Ipeirotis et al. 2010]
// on the per-label binary reduction: each label is an independent binary
// truth-inference problem in which each worker has a sensitivity and a
// specificity estimated by expectation-maximisation.
type DawidSkene struct {
	cfg  EMConfig
	name string
}

// NewDawidSkene returns the plain EM baseline.
func NewDawidSkene() *DawidSkene {
	return &DawidSkene{name: "EM"}
}

// NewBCC returns the Bayesian classifier combination baseline [Kim &
// Ghahramani 2012]: Dawid–Skene MAP-EM under informative Beta priors that
// regularise sparse workers toward a mildly-better-than-chance prior belief.
func NewBCC() *DawidSkene {
	return &DawidSkene{
		name: "BCC",
		cfg: EMConfig{
			SensPrior: [2]float64{3.5, 1.5},
			SpecPrior: [2]float64{4.5, 1.5},
		},
	}
}

// NewDawidSkeneWithConfig returns an EM aggregator with explicit settings.
func NewDawidSkeneWithConfig(name string, cfg EMConfig) *DawidSkene {
	return &DawidSkene{name: name, cfg: cfg}
}

// Name implements Aggregator.
func (d *DawidSkene) Name() string { return d.name }

// labelInstance gathers the binary observations of one label across items:
// for every item whose universe contains the label, the answering workers
// and their votes.
type labelInstance struct {
	items   []int   // dataset item ids
	workers [][]int // per instance item: answering workers
	votes   [][]bool
}

// buildInstances groups the tallies by label.
func buildInstances(ds *answers.Dataset, tallies []itemVotes) map[int]*labelInstance {
	instances := make(map[int]*labelInstance)
	for i := range tallies {
		iv := &tallies[i]
		for k, c := range iv.universe {
			inst := instances[c]
			if inst == nil {
				inst = &labelInstance{}
				instances[c] = inst
			}
			inst.items = append(inst.items, i)
			inst.workers = append(inst.workers, iv.workers)
			inst.votes = append(inst.votes, iv.votes[k])
		}
	}
	return instances
}

// Aggregate implements Aggregator.
func (d *DawidSkene) Aggregate(ds *answers.Dataset) ([]labelset.Set, error) {
	if err := validate(ds); err != nil {
		return nil, err
	}
	cfg := d.cfg
	cfg.fillDefaults()
	tallies := tallyVotes(ds)
	instances := buildInstances(ds, tallies)

	prob := make([][]float64, len(tallies))
	for i := range tallies {
		prob[i] = make([]float64, len(tallies[i].universe))
	}
	for c, inst := range instances {
		post := runBinaryEM(inst, cfg)
		for n, item := range inst.items {
			k := tallies[item].pos[c]
			prob[item][k] = post[n]
		}
	}
	return thresholdPredict(ds, tallies, prob), nil
}

// runBinaryEM runs Dawid–Skene EM for a single label and returns the
// per-instance-item posterior of the label being truly present. Workers are
// remapped to a dense index over the workers that actually voted on this
// label's items, so per-iteration work scales with the instance, not the
// full population.
func runBinaryEM(inst *labelInstance, cfg EMConfig) []float64 {
	n := len(inst.items)
	post := make([]float64, n)
	// Dense worker remap.
	remap := make(map[int]int)
	dense := make([][]int, n)
	for j := 0; j < n; j++ {
		dense[j] = make([]int, len(inst.workers[j]))
		for a, u := range inst.workers[j] {
			du, ok := remap[u]
			if !ok {
				du = len(remap)
				remap[u] = du
			}
			dense[j][a] = du
		}
	}
	w := len(remap)

	// Initialise truth posteriors from the vote fraction (standard DS
	// initialisation).
	for j := 0; j < n; j++ {
		pos := 0
		for _, v := range inst.votes[j] {
			if v {
				pos++
			}
		}
		post[j] = (float64(pos) + 0.5) / (float64(len(inst.votes[j])) + 1)
	}

	// Per-worker confusion on the dense internal/mat layer: one row per
	// remapped worker, columns [sensitivity, specificity] for the rates and
	// [sensNum, sensDen, specNum, specDen] for the M-step count
	// accumulators — one contiguous block each instead of six parallel
	// slices.
	const (
		colSens = 0
		colSpec = 1
	)
	const (
		colSensNum = 0
		colSensDen = 1
		colSpecNum = 2
		colSpecDen = 3
	)
	rates := mat.New(w, 2)
	counts := mat.New(w, 4)
	prev := make([]float64, n)
	for iter := 0; iter < cfg.MaxIter; iter++ {
		copy(prev, post)
		// M-step: per-worker sensitivity/specificity with Beta pseudo-counts.
		counts.Zero()
		prevalenceNum, prevalenceDen := cfg.TruthPrior[0], cfg.TruthPrior[0]+cfg.TruthPrior[1]
		for j := 0; j < n; j++ {
			q := post[j]
			prevalenceNum += q
			prevalenceDen++
			for a, u := range dense[j] {
				row := counts.Row(u)
				if inst.votes[j][a] {
					row[colSensNum] += q
				} else {
					row[colSpecNum] += 1 - q
				}
				row[colSensDen] += q
				row[colSpecDen] += 1 - q
			}
		}
		for u := 0; u < w; u++ {
			cRow, rRow := counts.Row(u), rates.Row(u)
			rRow[colSens] = (cRow[colSensNum] + cfg.SensPrior[0]) / (cRow[colSensDen] + cfg.SensPrior[0] + cfg.SensPrior[1])
			rRow[colSpec] = (cRow[colSpecNum] + cfg.SpecPrior[0]) / (cRow[colSpecDen] + cfg.SpecPrior[0] + cfg.SpecPrior[1])
		}
		prevalence := prevalenceNum / prevalenceDen

		// E-step: truth posteriors in log space.
		logPrev := math.Log(prevalence) - math.Log(1-prevalence)
		for j := 0; j < n; j++ {
			logOdds := logPrev
			for a, u := range dense[j] {
				row := rates.Row(u)
				if inst.votes[j][a] {
					logOdds += math.Log(row[colSens]) - math.Log(1-row[colSpec])
				} else {
					logOdds += math.Log(1-row[colSens]) - math.Log(row[colSpec])
				}
			}
			post[j] = 1 / (1 + math.Exp(-mathx.Clamp(logOdds, -500, 500)))
		}
		if mathx.MaxAbsDiff(post, prev) < cfg.Tol {
			break
		}
	}
	return post
}
