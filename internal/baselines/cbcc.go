package baselines

import (
	"math"
	"math/rand"
	"sort"

	"cpa/internal/answers"
	"cpa/internal/labelset"
	"cpa/internal/mat"
	"cpa/internal/mathx"
)

// CBCCConfig tunes the community-BCC baseline.
type CBCCConfig struct {
	// Communities is the number of worker communities K. Default 5 (the
	// worker-type count the literature reports). cBCC, unlike CPA, needs K
	// fixed in advance — which is exactly the limitation the paper's R4
	// calls out.
	Communities int
	// MaxIter bounds the EM iterations. Default 40.
	MaxIter int
	// Tol is the convergence threshold on truth posteriors. Default 1e-4.
	Tol float64
	// SensPrior/SpecPrior are Beta pseudo-counts on community confusion.
	SensPrior [2]float64
	SpecPrior [2]float64
	// Seed drives the symmetry-breaking jitter of the community
	// initialisation.
	Seed int64
}

func (c *CBCCConfig) fillDefaults() {
	if c.Communities == 0 {
		c.Communities = 5
	}
	if c.MaxIter == 0 {
		c.MaxIter = 40
	}
	if c.Tol == 0 {
		c.Tol = 1e-4
	}
	if c.SensPrior == ([2]float64{}) {
		c.SensPrior = [2]float64{2, 1}
	}
	if c.SpecPrior == ([2]float64{}) {
		c.SpecPrior = [2]float64{3, 1}
	}
}

// CBCC is the community-based Bayesian classifier combination baseline
// [Venanzi et al. 2014; Moreno et al. 2015]: workers belong to latent
// communities that share per-label sensitivity/specificity parameters, and
// community membership is inferred jointly across every label — unlike the
// per-label EM/BCC reduction, information about a worker flows between
// labels through its community. Inference is mean-field EM on dense
// internal/mat parameter blocks.
type CBCC struct {
	cfg      CBCCConfig
	lastResp *mat.Dense
}

// NewCBCC returns a cBCC aggregator with default settings.
func NewCBCC() *CBCC { return &CBCC{} }

// NewCBCCWithConfig returns a cBCC aggregator with explicit settings.
func NewCBCCWithConfig(cfg CBCCConfig) *CBCC { return &CBCC{cfg: cfg} }

// Name implements Aggregator.
func (*CBCC) Name() string { return "cBCC" }

// Communities exposes the final soft community assignment of the last
// Aggregate call (row per worker, column per community), converted from the
// dense internal storage at this boundary. It is nil before the first call.
// Used by the community-detection experiments.
func (c *CBCC) Communities() [][]float64 {
	if c.lastResp == nil {
		return nil
	}
	out := make([][]float64, c.lastResp.Rows())
	for u := range out {
		out[u] = append([]float64(nil), c.lastResp.Row(u)...)
	}
	return out
}

var _ Aggregator = (*CBCC)(nil)

type cbccState struct {
	cfg     CBCCConfig
	ds      *answers.Dataset
	tallies []itemVotes
	// resp: U×M responsibilities of community m for worker u.
	resp *mat.Dense
	// loglik: U×M scratch for the community E-step.
	loglik *mat.Dense
	// weight[m]: community mixing proportions.
	weight []float64
	// sens, spec: M×C community confusion per label.
	sens, spec *mat.Dense
	// Confusion count accumulators of the M-step, M×C each.
	sensNum, sensDen, specNum, specDen *mat.Dense
	// post[i][k]: truth posterior for tallies[i].universe[k] (ragged:
	// per-item label universes differ in size).
	post [][]float64
	// prevalence[c]: per-label prior.
	prevalence []float64
}

// Aggregate implements Aggregator.
func (c *CBCC) Aggregate(ds *answers.Dataset) ([]labelset.Set, error) {
	if err := validate(ds); err != nil {
		return nil, err
	}
	cfg := c.cfg
	cfg.fillDefaults()
	st := &cbccState{cfg: cfg, ds: ds, tallies: tallyVotes(ds)}
	st.init()
	prevPost := make([][]float64, len(st.post))
	for i := range st.post {
		prevPost[i] = make([]float64, len(st.post[i]))
	}
	for iter := 0; iter < cfg.MaxIter; iter++ {
		for i := range st.post {
			copy(prevPost[i], st.post[i])
		}
		st.mStep()
		st.eStepCommunities()
		st.eStepTruth()
		maxDiff := 0.0
		for i := range st.post {
			if len(st.post[i]) == 0 {
				continue
			}
			if d := mathx.MaxAbsDiff(st.post[i], prevPost[i]); d > maxDiff {
				maxDiff = d
			}
		}
		if maxDiff < cfg.Tol {
			break
		}
	}
	c.lastResp = st.resp
	return thresholdPredict(ds, st.tallies, st.post), nil
}

// init seeds truth posteriors with vote fractions and communities by
// quantiles of each worker's agreement with the plain majority vote, plus a
// small deterministic jitter to break ties.
func (st *cbccState) init() {
	ds, cfg := st.ds, st.cfg
	st.post = make([][]float64, len(st.tallies))
	for i := range st.tallies {
		iv := &st.tallies[i]
		st.post[i] = make([]float64, len(iv.universe))
		n := float64(len(iv.workers))
		for k := range iv.universe {
			pos := 0
			for _, v := range iv.votes[k] {
				if v {
					pos++
				}
			}
			st.post[i][k] = (float64(pos) + 0.5) / (n + 1)
		}
	}

	// Worker agreement with the majority opinion, used to order workers
	// into initial community buckets.
	agreement := make([]float64, ds.NumWorkers)
	counts := make([]int, ds.NumWorkers)
	for i := range st.tallies {
		iv := &st.tallies[i]
		for k := range iv.universe {
			majority := st.post[i][k] > 0.5
			for a, u := range iv.workers {
				if iv.votes[k][a] == majority {
					agreement[u]++
				}
				counts[u]++
			}
		}
	}
	type wa struct {
		u int
		a float64
	}
	order := make([]wa, 0, ds.NumWorkers)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	for u := 0; u < ds.NumWorkers; u++ {
		score := 0.5
		if counts[u] > 0 {
			score = agreement[u] / float64(counts[u])
		}
		order = append(order, wa{u, score + 1e-6*rng.Float64()})
	}
	sort.Slice(order, func(a, b int) bool { return order[a].a < order[b].a })

	st.resp = mat.New(ds.NumWorkers, cfg.Communities)
	for rank, w := range order {
		m := rank * cfg.Communities / len(order)
		row := st.resp.Row(w.u)
		for j := range row {
			row[j] = 0.1 / float64(cfg.Communities)
		}
		row[m] += 0.9
		mathx.NormalizeInPlace(row)
	}
	st.loglik = mat.New(ds.NumWorkers, cfg.Communities)
	st.weight = make([]float64, cfg.Communities)
	st.sens = mat.New(cfg.Communities, ds.NumLabels)
	st.spec = mat.New(cfg.Communities, ds.NumLabels)
	st.sensNum = mat.New(cfg.Communities, ds.NumLabels)
	st.sensDen = mat.New(cfg.Communities, ds.NumLabels)
	st.specNum = mat.New(cfg.Communities, ds.NumLabels)
	st.specDen = mat.New(cfg.Communities, ds.NumLabels)
	st.prevalence = make([]float64, ds.NumLabels)
}

// mStep re-estimates community weights, per-community confusion and label
// prevalence from the current soft assignments.
func (st *cbccState) mStep() {
	ds, cfg := st.ds, st.cfg
	M := cfg.Communities
	st.sensNum.Zero()
	st.sensDen.Zero()
	st.specNum.Zero()
	st.specDen.Zero()
	prevNum := make([]float64, ds.NumLabels)
	prevDen := make([]float64, ds.NumLabels)

	C := ds.NumLabels
	sensNum, sensDen := st.sensNum.Data(), st.sensDen.Data()
	specNum, specDen := st.specNum.Data(), st.specDen.Data()
	for i := range st.tallies {
		iv := &st.tallies[i]
		for k, c := range iv.universe {
			q := st.post[i][k]
			prevNum[c] += q
			prevDen[c]++
			for a, u := range iv.workers {
				vote := iv.votes[k][a]
				respRow := st.resp.Row(u)
				for m := 0; m < M; m++ {
					r := respRow[m]
					idx := m*C + c
					sensDen[idx] += r * q
					specDen[idx] += r * (1 - q)
					if vote {
						sensNum[idx] += r * q
					} else {
						specNum[idx] += r * (1 - q)
					}
				}
			}
		}
	}
	for m := 0; m < M; m++ {
		sens, spec := st.sens.Row(m), st.spec.Row(m)
		sNum, sDen := st.sensNum.Row(m), st.sensDen.Row(m)
		pNum, pDen := st.specNum.Row(m), st.specDen.Row(m)
		for c := 0; c < ds.NumLabels; c++ {
			sens[c] = (sNum[c] + cfg.SensPrior[0]) / (sDen[c] + cfg.SensPrior[0] + cfg.SensPrior[1])
			spec[c] = (pNum[c] + cfg.SpecPrior[0]) / (pDen[c] + cfg.SpecPrior[0] + cfg.SpecPrior[1])
		}
	}
	for c := 0; c < ds.NumLabels; c++ {
		st.prevalence[c] = (prevNum[c] + 1) / (prevDen[c] + 2)
	}
	colSum := make([]float64, M)
	mathx.Fill(colSum, 1) // Dirichlet(1,...,1) pseudo-count
	st.resp.ColSumsInto(colSum, nil)
	copy(st.weight, colSum)
	mathx.NormalizeInPlace(st.weight)
}

// eStepCommunities recomputes the soft community assignment of every worker
// from the expected log likelihood of its votes under each community.
func (st *cbccState) eStepCommunities() {
	ds, cfg := st.ds, st.cfg
	M := cfg.Communities
	for u := 0; u < ds.NumWorkers; u++ {
		row := st.loglik.Row(u)
		for m := 0; m < M; m++ {
			row[m] = math.Log(st.weight[m])
		}
	}
	for i := range st.tallies {
		iv := &st.tallies[i]
		for k, c := range iv.universe {
			q := st.post[i][k]
			for a, u := range iv.workers {
				vote := iv.votes[k][a]
				row := st.loglik.Row(u)
				for m := 0; m < M; m++ {
					sens, spec := st.sens.At(m, c), st.spec.At(m, c)
					if vote {
						row[m] += q*math.Log(sens) + (1-q)*math.Log(1-spec)
					} else {
						row[m] += q*math.Log(1-sens) + (1-q)*math.Log(spec)
					}
				}
			}
		}
	}
	for u := 0; u < ds.NumWorkers; u++ {
		st.loglik.SoftmaxRow(u)
	}
	st.resp.CopyFrom(st.loglik)
}

// eStepTruth recomputes truth posteriors under the expected community
// assignment.
func (st *cbccState) eStepTruth() {
	M := st.cfg.Communities
	for i := range st.tallies {
		iv := &st.tallies[i]
		for k, c := range iv.universe {
			logOdds := math.Log(st.prevalence[c]) - math.Log(1-st.prevalence[c])
			for a, u := range iv.workers {
				vote := iv.votes[k][a]
				respRow := st.resp.Row(u)
				for m := 0; m < M; m++ {
					r := respRow[m]
					sens, spec := st.sens.At(m, c), st.spec.At(m, c)
					if vote {
						logOdds += r * (math.Log(sens) - math.Log(1-spec))
					} else {
						logOdds += r * (math.Log(1-sens) - math.Log(spec))
					}
				}
			}
			st.post[i][k] = 1 / (1 + math.Exp(-mathx.Clamp(logOdds, -500, 500)))
		}
	}
}
