package baselines

import (
	"math"
	"math/rand"
	"sort"

	"cpa/internal/answers"
	"cpa/internal/labelset"
	"cpa/internal/mathx"
)

// CBCCConfig tunes the community-BCC baseline.
type CBCCConfig struct {
	// Communities is the number of worker communities K. Default 5 (the
	// worker-type count the literature reports). cBCC, unlike CPA, needs K
	// fixed in advance — which is exactly the limitation the paper's R4
	// calls out.
	Communities int
	// MaxIter bounds the EM iterations. Default 40.
	MaxIter int
	// Tol is the convergence threshold on truth posteriors. Default 1e-4.
	Tol float64
	// SensPrior/SpecPrior are Beta pseudo-counts on community confusion.
	SensPrior [2]float64
	SpecPrior [2]float64
	// Seed drives the symmetry-breaking jitter of the community
	// initialisation.
	Seed int64
}

func (c *CBCCConfig) fillDefaults() {
	if c.Communities == 0 {
		c.Communities = 5
	}
	if c.MaxIter == 0 {
		c.MaxIter = 40
	}
	if c.Tol == 0 {
		c.Tol = 1e-4
	}
	if c.SensPrior == ([2]float64{}) {
		c.SensPrior = [2]float64{2, 1}
	}
	if c.SpecPrior == ([2]float64{}) {
		c.SpecPrior = [2]float64{3, 1}
	}
}

// CBCC is the community-based Bayesian classifier combination baseline
// [Venanzi et al. 2014; Moreno et al. 2015]: workers belong to latent
// communities that share per-label sensitivity/specificity parameters, and
// community membership is inferred jointly across every label — unlike the
// per-label EM/BCC reduction, information about a worker flows between
// labels through its community. Inference is mean-field EM.
type CBCC struct {
	cfg      CBCCConfig
	lastResp [][]float64
}

// NewCBCC returns a cBCC aggregator with default settings.
func NewCBCC() *CBCC { return &CBCC{} }

// NewCBCCWithConfig returns a cBCC aggregator with explicit settings.
func NewCBCCWithConfig(cfg CBCCConfig) *CBCC { return &CBCC{cfg: cfg} }

// Name implements Aggregator.
func (*CBCC) Name() string { return "cBCC" }

// Communities exposes the final soft community assignment of the last
// Aggregate call (row per worker, column per community). It is nil before
// the first call. Used by the community-detection experiments.
func (c *CBCC) Communities() [][]float64 { return c.lastResp }

var _ Aggregator = (*CBCC)(nil)

type cbccState struct {
	cfg     CBCCConfig
	ds      *answers.Dataset
	tallies []itemVotes
	// resp[u][m]: responsibility of community m for worker u.
	resp [][]float64
	// weight[m]: community mixing proportions.
	weight []float64
	// sens[m][c], spec[m][c]: community confusion per label.
	sens, spec [][]float64
	// post[i][k]: truth posterior for tallies[i].universe[k].
	post [][]float64
	// prevalence[c]: per-label prior.
	prevalence []float64
}

// Aggregate implements Aggregator.
func (c *CBCC) Aggregate(ds *answers.Dataset) ([]labelset.Set, error) {
	if err := validate(ds); err != nil {
		return nil, err
	}
	cfg := c.cfg
	cfg.fillDefaults()
	st := &cbccState{cfg: cfg, ds: ds, tallies: tallyVotes(ds)}
	st.init()
	prevPost := make([][]float64, len(st.post))
	for i := range st.post {
		prevPost[i] = make([]float64, len(st.post[i]))
	}
	for iter := 0; iter < cfg.MaxIter; iter++ {
		for i := range st.post {
			copy(prevPost[i], st.post[i])
		}
		st.mStep()
		st.eStepCommunities()
		st.eStepTruth()
		maxDiff := 0.0
		for i := range st.post {
			if len(st.post[i]) == 0 {
				continue
			}
			if d := mathx.MaxAbsDiff(st.post[i], prevPost[i]); d > maxDiff {
				maxDiff = d
			}
		}
		if maxDiff < cfg.Tol {
			break
		}
	}
	c.lastResp = st.resp
	return thresholdPredict(ds, st.tallies, st.post), nil
}

// init seeds truth posteriors with vote fractions and communities by
// quantiles of each worker's agreement with the plain majority vote, plus a
// small deterministic jitter to break ties.
func (st *cbccState) init() {
	ds, cfg := st.ds, st.cfg
	st.post = make([][]float64, len(st.tallies))
	for i := range st.tallies {
		iv := &st.tallies[i]
		st.post[i] = make([]float64, len(iv.universe))
		n := float64(len(iv.workers))
		for k := range iv.universe {
			pos := 0
			for _, v := range iv.votes[k] {
				if v {
					pos++
				}
			}
			st.post[i][k] = (float64(pos) + 0.5) / (n + 1)
		}
	}

	// Worker agreement with the majority opinion, used to order workers
	// into initial community buckets.
	agreement := make([]float64, ds.NumWorkers)
	counts := make([]int, ds.NumWorkers)
	for i := range st.tallies {
		iv := &st.tallies[i]
		for k := range iv.universe {
			majority := st.post[i][k] > 0.5
			for a, u := range iv.workers {
				if iv.votes[k][a] == majority {
					agreement[u]++
				}
				counts[u]++
			}
		}
	}
	type wa struct {
		u int
		a float64
	}
	order := make([]wa, 0, ds.NumWorkers)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	for u := 0; u < ds.NumWorkers; u++ {
		score := 0.5
		if counts[u] > 0 {
			score = agreement[u] / float64(counts[u])
		}
		order = append(order, wa{u, score + 1e-6*rng.Float64()})
	}
	sort.Slice(order, func(a, b int) bool { return order[a].a < order[b].a })

	st.resp = make([][]float64, ds.NumWorkers)
	for rank, w := range order {
		m := rank * cfg.Communities / len(order)
		row := make([]float64, cfg.Communities)
		for j := range row {
			row[j] = 0.1 / float64(cfg.Communities)
		}
		row[m] += 0.9
		mathx.NormalizeInPlace(row)
		st.resp[w.u] = row
	}
	st.weight = make([]float64, cfg.Communities)
	st.sens = make([][]float64, cfg.Communities)
	st.spec = make([][]float64, cfg.Communities)
	for m := 0; m < cfg.Communities; m++ {
		st.sens[m] = make([]float64, ds.NumLabels)
		st.spec[m] = make([]float64, ds.NumLabels)
	}
	st.prevalence = make([]float64, ds.NumLabels)
}

// mStep re-estimates community weights, per-community confusion and label
// prevalence from the current soft assignments.
func (st *cbccState) mStep() {
	ds, cfg := st.ds, st.cfg
	M := cfg.Communities
	sensNum := make([][]float64, M)
	sensDen := make([][]float64, M)
	specNum := make([][]float64, M)
	specDen := make([][]float64, M)
	for m := 0; m < M; m++ {
		sensNum[m] = make([]float64, ds.NumLabels)
		sensDen[m] = make([]float64, ds.NumLabels)
		specNum[m] = make([]float64, ds.NumLabels)
		specDen[m] = make([]float64, ds.NumLabels)
	}
	prevNum := make([]float64, ds.NumLabels)
	prevDen := make([]float64, ds.NumLabels)

	for i := range st.tallies {
		iv := &st.tallies[i]
		for k, c := range iv.universe {
			q := st.post[i][k]
			prevNum[c] += q
			prevDen[c]++
			for a, u := range iv.workers {
				vote := iv.votes[k][a]
				for m := 0; m < M; m++ {
					r := st.resp[u][m]
					sensDen[m][c] += r * q
					specDen[m][c] += r * (1 - q)
					if vote {
						sensNum[m][c] += r * q
					} else {
						specNum[m][c] += r * (1 - q)
					}
				}
			}
		}
	}
	for m := 0; m < M; m++ {
		for c := 0; c < ds.NumLabels; c++ {
			st.sens[m][c] = (sensNum[m][c] + cfg.SensPrior[0]) / (sensDen[m][c] + cfg.SensPrior[0] + cfg.SensPrior[1])
			st.spec[m][c] = (specNum[m][c] + cfg.SpecPrior[0]) / (specDen[m][c] + cfg.SpecPrior[0] + cfg.SpecPrior[1])
		}
	}
	for c := 0; c < ds.NumLabels; c++ {
		st.prevalence[c] = (prevNum[c] + 1) / (prevDen[c] + 2)
	}
	for m := 0; m < M; m++ {
		sum := 1.0 // Dirichlet(1,...,1) pseudo-count
		for u := range st.resp {
			sum += st.resp[u][m]
		}
		st.weight[m] = sum
	}
	mathx.NormalizeInPlace(st.weight)
}

// eStepCommunities recomputes the soft community assignment of every worker
// from the expected log likelihood of its votes under each community.
func (st *cbccState) eStepCommunities() {
	ds, cfg := st.ds, st.cfg
	M := cfg.Communities
	loglik := make([][]float64, ds.NumWorkers)
	for u := range loglik {
		row := make([]float64, M)
		for m := 0; m < M; m++ {
			row[m] = math.Log(st.weight[m])
		}
		loglik[u] = row
	}
	for i := range st.tallies {
		iv := &st.tallies[i]
		for k, c := range iv.universe {
			q := st.post[i][k]
			for a, u := range iv.workers {
				vote := iv.votes[k][a]
				for m := 0; m < M; m++ {
					var ll float64
					if vote {
						ll = q*math.Log(st.sens[m][c]) + (1-q)*math.Log(1-st.spec[m][c])
					} else {
						ll = q*math.Log(1-st.sens[m][c]) + (1-q)*math.Log(st.spec[m][c])
					}
					loglik[u][m] += ll
				}
			}
		}
	}
	for u := range loglik {
		mathx.SoftmaxInPlace(loglik[u])
		st.resp[u] = loglik[u]
	}
}

// eStepTruth recomputes truth posteriors under the expected community
// assignment.
func (st *cbccState) eStepTruth() {
	M := st.cfg.Communities
	for i := range st.tallies {
		iv := &st.tallies[i]
		for k, c := range iv.universe {
			logOdds := math.Log(st.prevalence[c]) - math.Log(1-st.prevalence[c])
			for a, u := range iv.workers {
				vote := iv.votes[k][a]
				for m := 0; m < M; m++ {
					r := st.resp[u][m]
					if vote {
						logOdds += r * (math.Log(st.sens[m][c]) - math.Log(1-st.spec[m][c]))
					} else {
						logOdds += r * (math.Log(1-st.sens[m][c]) - math.Log(st.spec[m][c]))
					}
				}
			}
			st.post[i][k] = 1 / (1 + math.Exp(-mathx.Clamp(logOdds, -500, 500)))
		}
	}
}
