// Package baselines implements the state-of-the-art answer aggregators the
// paper compares CPA against (§5.1 "Baselines"):
//
//   - MV: per-label majority voting, the standard multi-label treatment of
//     Nowak & Rüger / Deng et al.
//   - EM: Dawid–Skene expectation-maximisation with per-worker confusion,
//     run on the per-label binary reduction of the multi-label task.
//   - BCC: Bayesian classifier combination — Dawid–Skene with Beta priors on
//     worker confusion and truth prevalence (MAP-EM inference).
//   - cBCC: community BCC — workers share confusion parameters through
//     latent communities, estimated jointly across all labels.
//
// All baselines follow the paper's reduction: "we regard the multi-label
// problem as several instances of a single-label problem (each worker giving
// a Boolean answer for a given label)" with a 0.5 acceptance threshold. The
// per-item label universe is the set of labels that received at least one
// vote on that item: labels nobody proposed cannot be accepted by any of
// these methods (they consider labels independently), so restricting the
// computation to voted labels is exact and keeps the reduction tractable for
// large vocabularies.
package baselines

import (
	"errors"
	"fmt"

	"cpa/internal/answers"
	"cpa/internal/labelset"
)

// ErrInput reports an aggregation call on an unusable dataset.
var ErrInput = errors.New("baselines: invalid input")

// Aggregator is the common interface of all answer-aggregation methods in
// this repository (baselines here, CPA in internal/core).
type Aggregator interface {
	// Name identifies the method in reports ("MV", "EM", "cBCC", ...).
	Name() string
	// Aggregate consumes a dataset and returns one predicted label set per
	// item (length ds.NumItems).
	Aggregate(ds *answers.Dataset) ([]labelset.Set, error)
}

// itemVotes is the per-item vote tally: the label universe L_i (labels with
// at least one vote) and, per universe label, which answers voted for it.
type itemVotes struct {
	universe []int // sorted label ids with >= 1 vote
	pos      map[int]int
	// votes[k][j] reports whether answer j on this item voted for
	// universe[k].
	votes [][]bool
	// workers[j] is the worker of answer j, in ds.ForItem order.
	workers []int
}

// tallyVotes builds the per-item structures shared by every baseline.
func tallyVotes(ds *answers.Dataset) []itemVotes {
	out := make([]itemVotes, ds.NumItems)
	for i := 0; i < ds.NumItems; i++ {
		iv := &out[i]
		iv.pos = make(map[int]int)
		ds.ForItem(i, func(a answers.Answer) {
			iv.workers = append(iv.workers, a.Worker)
			a.Labels.Range(func(c int) bool {
				if _, ok := iv.pos[c]; !ok {
					iv.pos[c] = len(iv.universe)
					iv.universe = append(iv.universe, c)
				}
				return true
			})
		})
		iv.votes = make([][]bool, len(iv.universe))
		for k := range iv.votes {
			iv.votes[k] = make([]bool, len(iv.workers))
		}
		j := 0
		ds.ForItem(i, func(a answers.Answer) {
			for k, c := range iv.universe {
				iv.votes[k][j] = a.Labels.Contains(c)
			}
			j++
		})
	}
	return out
}

func validate(ds *answers.Dataset) error {
	if ds == nil {
		return fmt.Errorf("%w: nil dataset", ErrInput)
	}
	if ds.NumAnswers() == 0 {
		return fmt.Errorf("%w: dataset %q has no answers", ErrInput, ds.Name)
	}
	return nil
}

// thresholdPredict converts per-item per-universe-label acceptance
// probabilities into label sets with the paper's 0.5 rule, falling back to
// the highest-probability label when nothing reaches the threshold (items
// were answered, so an empty consensus is never the intended output).
func thresholdPredict(ds *answers.Dataset, tallies []itemVotes, prob [][]float64) []labelset.Set {
	pred := make([]labelset.Set, ds.NumItems)
	for i := range tallies {
		s := labelset.New(ds.NumLabels)
		best, bestP := -1, 0.0
		for k, c := range tallies[i].universe {
			p := prob[i][k]
			if p > 0.5 {
				s.Add(c)
			}
			if p > bestP {
				best, bestP = c, p
			}
		}
		if s.IsEmpty() && best >= 0 {
			s.Add(best)
		}
		pred[i] = s
	}
	return pred
}

// MajorityVote is the MV baseline: accept a label when more than half of the
// item's answerers voted for it.
type MajorityVote struct{}

// NewMajorityVote returns the MV aggregator.
func NewMajorityVote() *MajorityVote { return &MajorityVote{} }

// Name implements Aggregator.
func (*MajorityVote) Name() string { return "MV" }

// Aggregate implements Aggregator.
func (*MajorityVote) Aggregate(ds *answers.Dataset) ([]labelset.Set, error) {
	if err := validate(ds); err != nil {
		return nil, err
	}
	tallies := tallyVotes(ds)
	prob := make([][]float64, len(tallies))
	for i := range tallies {
		iv := &tallies[i]
		prob[i] = make([]float64, len(iv.universe))
		n := float64(len(iv.workers))
		for k := range iv.universe {
			count := 0
			for _, v := range iv.votes[k] {
				if v {
					count++
				}
			}
			if n > 0 {
				prob[i][k] = float64(count) / n
			}
		}
	}
	return thresholdPredict(ds, tallies, prob), nil
}
