package labelset

import (
	"encoding/json"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestZeroValueUsable(t *testing.T) {
	var s Set
	if !s.IsEmpty() || s.Len() != 0 || s.Contains(0) {
		t.Error("zero value should be an empty set")
	}
	s.Add(130)
	if !s.Contains(130) || s.Len() != 1 {
		t.Error("Add on zero value failed")
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(100)
	for _, c := range []int{0, 1, 63, 64, 65, 99} {
		s.Add(c)
	}
	if s.Len() != 6 {
		t.Fatalf("Len = %d, want 6", s.Len())
	}
	for _, c := range []int{0, 1, 63, 64, 65, 99} {
		if !s.Contains(c) {
			t.Errorf("missing %d", c)
		}
	}
	if s.Contains(2) || s.Contains(100) || s.Contains(-1) {
		t.Error("spurious membership")
	}
	s.Remove(63)
	s.Remove(1000) // out of range: no-op
	s.Remove(-5)   // negative: no-op
	if s.Contains(63) || s.Len() != 5 {
		t.Error("Remove failed")
	}
	// Idempotent add.
	s.Add(0)
	if s.Len() != 5 {
		t.Error("double Add changed cardinality")
	}
}

func TestAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add(-1) should panic")
		}
	}()
	var s Set
	s.Add(-1)
}

func TestSliceSortedAndRoundTrip(t *testing.T) {
	in := []int{7, 3, 200, 64, 0}
	s := FromSlice(in)
	got := s.Slice()
	want := append([]int(nil), in...)
	sort.Ints(want)
	if len(got) != len(want) {
		t.Fatalf("Slice = %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Slice = %v, want %v", got, want)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	s := Of(1, 2, 3, 4, 5)
	seen := 0
	s.Range(func(c int) bool {
		seen++
		return seen < 3
	})
	if seen != 3 {
		t.Errorf("Range visited %d, want 3", seen)
	}
}

func TestSetAlgebra(t *testing.T) {
	a := Of(1, 2, 3)
	b := Of(3, 4, 200)
	if got := a.Union(b); got.Len() != 5 || !got.Contains(200) || !got.Contains(1) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); got.Len() != 1 || !got.Contains(3) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b); got.Len() != 2 || got.Contains(3) {
		t.Errorf("Minus = %v", got)
	}
	if got := a.IntersectLen(b); got != 1 {
		t.Errorf("IntersectLen = %d", got)
	}
	if !a.SubsetOf(a.Union(b)) {
		t.Error("a should be subset of a∪b")
	}
	if a.SubsetOf(b) {
		t.Error("a is not a subset of b")
	}
	if Of().SubsetOf(a) != true {
		t.Error("empty set is subset of anything")
	}
}

func TestEqualAcrossWidths(t *testing.T) {
	a := Of(1)
	b := New(512)
	b.Add(1)
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("Equal must ignore trailing zero words")
	}
	b.Add(300)
	if a.Equal(b) {
		t.Error("sets differ")
	}
}

func TestJaccard(t *testing.T) {
	a := Of(1, 2)
	b := Of(2, 3)
	if got := a.Jaccard(b); got != 1.0/3 {
		t.Errorf("Jaccard = %g", got)
	}
	if got := (Set{}).Jaccard(Set{}); got != 1 {
		t.Errorf("empty Jaccard = %g, want 1", got)
	}
	if got := a.Jaccard(Set{}); got != 0 {
		t.Errorf("Jaccard with empty = %g, want 0", got)
	}
}

func TestMax(t *testing.T) {
	if (Set{}).Max() != -1 {
		t.Error("empty Max should be -1")
	}
	if got := Of(3, 130, 64).Max(); got != 130 {
		t.Errorf("Max = %d", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Of(1, 2)
	b := a.Clone()
	b.Add(3)
	if a.Contains(3) {
		t.Error("Clone must be independent")
	}
	empty := (Set{}).Clone()
	if !empty.IsEmpty() {
		t.Error("clone of empty should be empty")
	}
}

func TestString(t *testing.T) {
	if got := Of(5, 4).String(); got != "{4,5}" {
		t.Errorf("String = %q", got)
	}
	if got := (Set{}).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := Of(0, 7, 129)
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "[0,7,129]" {
		t.Errorf("marshal = %s", data)
	}
	var out Set
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !in.Equal(out) {
		t.Errorf("round trip lost data: %v vs %v", in, out)
	}
	// Empty and null forms.
	var e Set
	if err := json.Unmarshal([]byte("[]"), &e); err != nil || !e.IsEmpty() {
		t.Errorf("[] should decode to empty set (err=%v)", err)
	}
	if err := json.Unmarshal([]byte("null"), &e); err != nil || !e.IsEmpty() {
		t.Errorf("null should decode to empty set (err=%v)", err)
	}
	if err := json.Unmarshal([]byte(`[1,"x"]`), &e); err == nil {
		t.Error("garbage member should fail")
	}
	if err := json.Unmarshal([]byte(`[-3]`), &e); err == nil {
		t.Error("negative member should fail")
	}
	if err := json.Unmarshal([]byte(`{}`), &e); err == nil {
		t.Error("non-array should fail")
	}
}

func TestAppendToNoAlloc(t *testing.T) {
	s := Of(1, 2, 3, 4, 5, 6, 7, 8)
	buf := make([]int, 0, 8)
	allocs := testing.AllocsPerRun(100, func() {
		buf = s.AppendTo(buf[:0])
	})
	if allocs != 0 {
		t.Errorf("AppendTo allocated %v times per run", allocs)
	}
}

func TestPropertyAlgebraLaws(t *testing.T) {
	gen := func(seed int64) Set {
		rng := rand.New(rand.NewSource(seed))
		s := Set{}
		n := rng.Intn(20)
		for i := 0; i < n; i++ {
			s.Add(rng.Intn(256))
		}
		return s
	}
	f := func(sa, sb, sc int64) bool {
		a, b, c := gen(sa), gen(sb), gen(sc)
		// Commutativity.
		if !a.Union(b).Equal(b.Union(a)) || !a.Intersect(b).Equal(b.Intersect(a)) {
			return false
		}
		// Associativity of union.
		if !a.Union(b).Union(c).Equal(a.Union(b.Union(c))) {
			return false
		}
		// Distributivity: a ∩ (b ∪ c) = (a∩b) ∪ (a∩c).
		if !a.Intersect(b.Union(c)).Equal(a.Intersect(b).Union(a.Intersect(c))) {
			return false
		}
		// De Morgan within universe of a: a \ (b ∪ c) = (a\b) ∩ (a\c).
		if !a.Minus(b.Union(c)).Equal(a.Minus(b).Intersect(a.Minus(c))) {
			return false
		}
		// Cardinality inclusion-exclusion.
		if a.Union(b).Len() != a.Len()+b.Len()-a.IntersectLen(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyJSONRoundTrip(t *testing.T) {
	f := func(members []uint16) bool {
		s := Set{}
		for _, m := range members {
			s.Add(int(m % 1024))
		}
		data, err := json.Marshal(s)
		if err != nil {
			return false
		}
		var out Set
		if err := json.Unmarshal(data, &out); err != nil {
			return false
		}
		return s.Equal(out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkContains(b *testing.B) {
	s := Of(1, 64, 300)
	for i := 0; i < b.N; i++ {
		_ = s.Contains(i & 511)
	}
}

func BenchmarkIntersectLen(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := New(1024), New(1024)
	for i := 0; i < 100; i++ {
		x.Add(rng.Intn(1024))
		y.Add(rng.Intn(1024))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.IntersectLen(y)
	}
}
