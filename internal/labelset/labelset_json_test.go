package labelset

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestAppendJSONMatchesMarshal pins AppendJSON (the journal codec's building
// block) to MarshalJSON across shapes: empty, dense, sparse, multi-word, and
// sets with trailing zero words from Remove.
func TestAppendJSONMatchesMarshal(t *testing.T) {
	shrunk := Of(1, 300)
	shrunk.Remove(300) // leaves trailing zero words in the backing slice
	sets := []Set{
		{},
		Of(0),
		Of(1, 4, 5),
		Of(63, 64, 65),
		Of(1023),
		shrunk,
	}
	dense := New(0)
	for c := 0; c < 500; c++ {
		dense.Add(c)
	}
	sets = append(sets, dense)
	for _, s := range sets {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		got := s.AppendJSON(nil)
		if !bytes.Equal(got, want) {
			t.Errorf("AppendJSON %s = %s, MarshalJSON %s", s, got, want)
		}
		// And both must round-trip through UnmarshalJSON.
		var back Set
		if err := back.UnmarshalJSON(got); err != nil {
			t.Fatalf("round-trip %s: %v", got, err)
		}
		if !back.Equal(s) {
			t.Errorf("round-trip %s -> %s", s, back)
		}
	}
}

// TestFromWords checks trailing-zero trimming matches Add construction and
// that ownership transfers (no aliasing past the trimmed length).
func TestFromWords(t *testing.T) {
	if s := FromWords(nil); !s.IsEmpty() {
		t.Errorf("FromWords(nil) not empty: %s", s)
	}
	if s := FromWords([]uint64{0, 0, 0}); !s.IsEmpty() {
		t.Errorf("all-zero words not empty: %s", s)
	}
	s := FromWords([]uint64{1 << 3, 0, 1 << 2, 0, 0})
	if want := Of(3, 130); !s.Equal(want) {
		t.Errorf("FromWords = %s, want %s", s, want)
	}
	// The canonical width must match incremental construction, or Equal-width
	// fast paths and encoders would see phantom top words.
	if got, want := s.AppendJSON(nil), Of(3, 130).AppendJSON(nil); !bytes.Equal(got, want) {
		t.Errorf("FromWords encoding %s, Add encoding %s", got, want)
	}
}

// TestArenaMake checks arena-backed sets are value-correct, trim trailing
// zeros, survive block rollover, and never clobber a neighbour when a set
// grows after allocation.
func TestArenaMake(t *testing.T) {
	var a Arena
	if s := a.Make([]uint64{0, 0}); !s.IsEmpty() {
		t.Errorf("zero words not empty: %s", s)
	}
	var sets []Set
	var wants [][]uint64
	for i := 0; i < 4*arenaBlock; i++ { // force several block rollovers
		words := []uint64{uint64(i + 1), uint64(i % 3)}
		sets = append(sets, a.Make(words))
		wants = append(wants, words)
	}
	for i, s := range sets {
		want := FromWords(append([]uint64(nil), wants[i]...))
		if !s.Equal(want) {
			t.Fatalf("set %d corrupted: %s, want %s", i, s, want)
		}
	}
	// Growing one arena set past its width must reallocate, not overwrite
	// the next set's words in the shared block.
	first := a.Make([]uint64{1})
	second := a.Make([]uint64{2})
	first.Add(100)
	if !second.Equal(FromWords([]uint64{2})) {
		t.Fatalf("growing a neighbour clobbered an arena set: %s", second)
	}
	if !first.Contains(0) || !first.Contains(100) {
		t.Fatalf("grown arena set lost members: %s", first)
	}
	// Oversized request: wider than a block still works.
	big := make([]uint64, arenaBlock+3)
	big[arenaBlock+2] = 1
	if s := a.Make(big); s.Max() != (arenaBlock+2)*64 {
		t.Fatalf("oversized arena set max = %d", s.Max())
	}
}
