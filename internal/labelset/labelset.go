// Package labelset provides the compact set-of-labels representation used
// across the answer matrix, the simulator and the inference engines. Labels
// are small non-negative integers (indices into a label vocabulary), so a
// bitset over uint64 words gives O(1) membership, cheap unions and
// intersections, and an allocation-free iteration path for the hot loops of
// variational inference.
package labelset

import (
	"fmt"
	"math/bits"
	"sort"
	"strconv"
	"strings"
)

const wordBits = 64

// Set is a set of label indices backed by a bitset. The zero value is an
// empty set ready for use. Sets grow automatically on Add; all binary
// operations accept operands of different widths.
type Set struct {
	words []uint64
}

// New returns an empty set with capacity hint for labels in [0, n).
func New(n int) Set {
	if n <= 0 {
		return Set{}
	}
	return Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromSlice builds a set from label indices. Negative labels panic: labels
// are vocabulary indices and a negative one is a programming error.
func FromSlice(labels []int) Set {
	s := Set{}
	for _, c := range labels {
		s.Add(c)
	}
	return s
}

// Of is a variadic convenience constructor: Of(1, 4, 5).
func Of(labels ...int) Set { return FromSlice(labels) }

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	if len(s.words) == 0 {
		return Set{}
	}
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return Set{words: w}
}

func (s *Set) ensure(word int) {
	for len(s.words) <= word {
		s.words = append(s.words, 0)
	}
}

// Clear removes every member, retaining the backing storage so the set can
// be refilled without allocating (the consensus-signature caches rebuild
// per-item sets every refresh).
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Add inserts label c.
func (s *Set) Add(c int) {
	if c < 0 {
		panic(fmt.Sprintf("labelset: negative label %d", c))
	}
	w := c / wordBits
	s.ensure(w)
	s.words[w] |= 1 << uint(c%wordBits)
}

// Remove deletes label c if present.
func (s *Set) Remove(c int) {
	if c < 0 {
		return
	}
	w := c / wordBits
	if w < len(s.words) {
		s.words[w] &^= 1 << uint(c%wordBits)
	}
}

// Contains reports whether label c is in the set.
func (s Set) Contains(c int) bool {
	if c < 0 {
		return false
	}
	w := c / wordBits
	return w < len(s.words) && s.words[w]&(1<<uint(c%wordBits)) != 0
}

// Len returns the cardinality of the set.
func (s Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsEmpty reports whether the set has no members.
func (s Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Slice returns the members in increasing order. The result is freshly
// allocated; use AppendTo to reuse a buffer in hot loops.
func (s Set) Slice() []int {
	return s.AppendTo(make([]int, 0, s.Len()))
}

// AppendTo appends the members in increasing order to dst and returns the
// extended slice. It performs no allocation when dst has sufficient capacity,
// which the inference loops rely on.
func (s Set) AppendTo(dst []int) []int {
	for wi, w := range s.words {
		base := wi * wordBits
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			dst = append(dst, base+tz)
			w &^= 1 << uint(tz)
		}
	}
	return dst
}

// Range calls fn for each member in increasing order, stopping early if fn
// returns false.
func (s Set) Range(fn func(c int) bool) {
	for wi, w := range s.words {
		base := wi * wordBits
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			if !fn(base + tz) {
				return
			}
			w &^= 1 << uint(tz)
		}
	}
}

// Union returns s ∪ o as a new set.
func (s Set) Union(o Set) Set {
	n := len(s.words)
	if len(o.words) > n {
		n = len(o.words)
	}
	out := Set{words: make([]uint64, n)}
	copy(out.words, s.words)
	for i, w := range o.words {
		out.words[i] |= w
	}
	return out
}

// Intersect returns s ∩ o as a new set.
func (s Set) Intersect(o Set) Set {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	out := Set{words: make([]uint64, n)}
	for i := 0; i < n; i++ {
		out.words[i] = s.words[i] & o.words[i]
	}
	return out
}

// Minus returns s \ o as a new set.
func (s Set) Minus(o Set) Set {
	out := s.Clone()
	n := len(out.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		out.words[i] &^= o.words[i]
	}
	return out
}

// IntersectLen returns |s ∩ o| without materialising the intersection. This
// is the inner loop of set-based precision/recall.
func (s Set) IntersectLen(o Set) int {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	count := 0
	for i := 0; i < n; i++ {
		count += bits.OnesCount64(s.words[i] & o.words[i])
	}
	return count
}

// Equal reports whether the two sets have identical members.
func (s Set) Equal(o Set) bool {
	long, short := s.words, o.words
	if len(short) > len(long) {
		long, short = short, long
	}
	for i, w := range short {
		if long[i] != w {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every member of s is in o.
func (s Set) SubsetOf(o Set) bool {
	for i, w := range s.words {
		var ow uint64
		if i < len(o.words) {
			ow = o.words[i]
		}
		if w&^ow != 0 {
			return false
		}
	}
	return true
}

// Jaccard returns |s∩o| / |s∪o|, defining the similarity of two empty sets
// as 1 (identical answers).
func (s Set) Jaccard(o Set) float64 {
	inter := s.IntersectLen(o)
	union := s.Len() + o.Len() - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Max returns the largest member, or -1 for the empty set.
func (s Set) Max() int {
	for wi := len(s.words) - 1; wi >= 0; wi-- {
		if w := s.words[wi]; w != 0 {
			return wi*wordBits + 63 - bits.LeadingZeros64(w)
		}
	}
	return -1
}

// String renders the set as "{1,4,5}" with members sorted ascending, which
// matches the paper's Table 1 notation.
func (s Set) String() string {
	members := s.Slice()
	sort.Ints(members)
	var b strings.Builder
	b.WriteByte('{')
	for i, c := range members {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(c))
	}
	b.WriteByte('}')
	return b.String()
}

// AppendJSON appends the set's canonical JSON encoding — a sorted array of
// label indices, e.g. [1,4,5] — to dst and returns the extended slice. The
// bytes are exactly MarshalJSON's output; the serving journal's
// zero-allocation encoder builds answer lines with it.
func (s Set) AppendJSON(dst []byte) []byte {
	dst = append(dst, '[')
	first := true
	for wi, w := range s.words {
		base := wi * wordBits
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			if !first {
				dst = append(dst, ',')
			}
			first = false
			dst = strconv.AppendInt(dst, int64(base+tz), 10)
			w &^= 1 << uint(tz)
		}
	}
	return append(dst, ']')
}

// MarshalJSON encodes the set as a sorted JSON array of label indices.
func (s Set) MarshalJSON() ([]byte, error) {
	return s.AppendJSON(make([]byte, 0, 2+4*s.Len())), nil
}

// FromWords builds a set over the given backing words (bit b of words[w] is
// label 64*w+b), taking ownership of the slice. Trailing zero words are
// trimmed so the representation matches incremental Add construction.
func FromWords(words []uint64) Set {
	n := len(words)
	for n > 0 && words[n-1] == 0 {
		n--
	}
	if n == 0 {
		return Set{}
	}
	return Set{words: words[:n:n]}
}

// Arena bump-allocates Set backing words in large blocks, amortising the
// per-set heap object on bulk decode paths (one NDJSON ingest request
// decodes hundreds of sets). Sets built from an arena alias its blocks and
// stay valid for the arena's whole lifetime; an arena must not be recycled
// while any Set built from it is still reachable, so bulk decoders allocate
// one per request and let the GC reclaim it together with the sets. The
// zero value is ready for use.
type Arena struct {
	block []uint64
}

// arenaBlock is the word count of one arena block (4 KiB).
const arenaBlock = 512

// Make builds a Set whose members are the set bits of words, copied into
// the arena. Trailing zero words are trimmed so the representation matches
// incremental Add construction (no dead top words).
func (a *Arena) Make(words []uint64) Set {
	n := len(words)
	for n > 0 && words[n-1] == 0 {
		n--
	}
	if n == 0 {
		return Set{}
	}
	if len(a.block)+n > cap(a.block) {
		size := arenaBlock
		if n > size {
			size = n
		}
		a.block = make([]uint64, 0, size)
	}
	start := len(a.block)
	a.block = a.block[:start+n]
	// Full slice expression: a Set that later grows (Add past its width)
	// reallocates instead of clobbering a neighbour's arena words.
	dst := a.block[start : start+n : start+n]
	copy(dst, words[:n])
	return Set{words: dst}
}

// UnmarshalJSON decodes a JSON array of label indices.
func (s *Set) UnmarshalJSON(data []byte) error {
	trimmed := strings.TrimSpace(string(data))
	if trimmed == "null" {
		*s = Set{}
		return nil
	}
	if len(trimmed) < 2 || trimmed[0] != '[' || trimmed[len(trimmed)-1] != ']' {
		return fmt.Errorf("labelset: invalid JSON set %q", trimmed)
	}
	inner := strings.TrimSpace(trimmed[1 : len(trimmed)-1])
	*s = Set{}
	if inner == "" {
		return nil
	}
	for _, part := range strings.Split(inner, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("labelset: invalid member %q: %w", part, err)
		}
		if v < 0 {
			return fmt.Errorf("labelset: negative member %d", v)
		}
		s.Add(v)
	}
	return nil
}
