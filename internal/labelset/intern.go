package labelset

import (
	"encoding/binary"
	"fmt"
)

// Interner assigns a stable small integer id to every distinct label set it
// sees. Partial-agreement crowds reuse a small universe of answer sets
// heavily, so interning lets the inference engines key per-set caches (the
// score panels of internal/core) by id and replace per-answer label slices
// with a 4-byte reference into one shared canonical table.
//
// Ids are dense, assigned in first-seen order, and never change: the table
// is append-only. For every id the Interner keeps both the canonical sorted
// member slice (the exact slice the old per-answer []int carried, shared by
// every reference to the set) and the bitset itself for O(1) membership
// tests in the consensus-counting loops.
//
// An Interner is owned by a single goroutine for writes (Intern); the
// lookup side (Canon, Contains, Count) is safe for concurrent readers as
// long as no Intern call runs at the same time — the discipline under which
// the inference shards operate (interning happens only at ingestion, a
// serial phase).
type Interner struct {
	ids    map[string]int32
	canon  [][]int // id → sorted members; shared, never mutated
	sets   []Set   // id → bitset for O(1) membership
	counts []int32 // id → how many times the set was interned
	keyBuf []byte  // scratch for map keys (single-writer)

	// Arenas backing the canonical slices and bitset words: new sets carve
	// capacity-clamped views out of large blocks instead of allocating per
	// set, so interning a long tail of distinct sets stays O(1) allocations
	// amortised. Blocks are abandoned (still referenced by their views) when
	// full; clones start fresh arenas (Clone) so they never append into
	// blocks shared with the source.
	intArena  []int
	wordArena []uint64
}

// NewInterner returns an empty table.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]int32)}
}

// Len returns the number of distinct sets interned so far.
func (in *Interner) Len() int { return len(in.canon) }

// key serialises the set's occupied words into the reusable scratch buffer.
// Trailing zero words are dropped so sets that differ only in bitset width
// key identically.
func (in *Interner) key(s Set) []byte {
	words := s.words
	for len(words) > 0 && words[len(words)-1] == 0 {
		words = words[:len(words)-1]
	}
	buf := in.keyBuf[:0]
	for _, w := range words {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	in.keyBuf = buf
	return buf
}

// Intern returns the id of s, assigning the next id on first sight. The
// empty set interns like any other (id'd once). Steady-state repeats are
// allocation-free; new sets cost one map-key allocation plus amortised
// arena growth.
func (in *Interner) Intern(s Set) int32 {
	k := in.key(s)
	if id, ok := in.ids[string(k)]; ok {
		in.counts[id]++
		return id
	}
	id := int32(len(in.canon))
	in.ids[string(k)] = id
	in.canon = append(in.canon, in.arenaSlice(s))
	in.sets = append(in.sets, in.arenaSet(k))
	in.counts = append(in.counts, 1)
	return id
}

// arenaSlice materialises s's sorted members as a capacity-clamped view
// into the int arena.
func (in *Interner) arenaSlice(s Set) []int {
	n := s.Len()
	start := len(in.intArena)
	if cap(in.intArena)-start < n {
		blk := 4096
		if n > blk {
			blk = n
		}
		in.intArena = make([]int, 0, blk)
		start = 0
	}
	in.intArena = s.AppendTo(in.intArena)
	return in.intArena[start:len(in.intArena):len(in.intArena)]
}

// arenaSet materialises the set's occupied words (the map key bytes, which
// key() already trimmed) as a bitset over a capacity-clamped word-arena
// view.
func (in *Interner) arenaSet(key []byte) Set {
	n := len(key) / 8
	start := len(in.wordArena)
	if cap(in.wordArena)-start < n {
		blk := 1024
		if n > blk {
			blk = n
		}
		in.wordArena = make([]uint64, 0, blk)
		start = 0
	}
	for i := 0; i < n; i++ {
		in.wordArena = append(in.wordArena, binary.LittleEndian.Uint64(key[i*8:]))
	}
	return Set{words: in.wordArena[start:len(in.wordArena):len(in.wordArena)]}
}

// InternSlice interns the set with the given sorted members (the
// persistence-restore path). It panics on negative members like Set.Add.
func (in *Interner) InternSlice(xs []int) int32 {
	return in.Intern(FromSlice(xs))
}

// Canon returns the canonical sorted member slice of the interned set.
// Callers must not mutate it: the slice is shared by every reference.
func (in *Interner) Canon(id int32) []int { return in.canon[id] }

// Contains reports whether label c is a member of the interned set — the
// O(1) replacement for a binary search over the canonical slice.
func (in *Interner) Contains(id int32, c int) bool { return in.sets[id].Contains(c) }

// At returns the interned set's bitset. Callers must treat it as read-only.
func (in *Interner) At(id int32) Set { return in.sets[id] }

// Count returns how many times the set has been interned — the reuse factor
// that cache-admission policies key on.
func (in *Interner) Count(id int32) int32 { return in.counts[id] }

// Clone returns an interner that shares the immutable canonical slices and
// bitsets with the receiver but can accept new sets independently: ids
// assigned by either side after the clone do not leak into the other.
func (in *Interner) Clone() *Interner {
	out := &Interner{
		ids:    make(map[string]int32, len(in.ids)),
		canon:  in.canon[:len(in.canon):len(in.canon)],
		sets:   in.sets[:len(in.sets):len(in.sets)],
		counts: append([]int32(nil), in.counts...),
		// Fresh arenas: the clone must never append into blocks whose tails
		// the source may still be handing out.
	}
	for k, v := range in.ids {
		out.ids[k] = v
	}
	return out
}

// String renders a small table summary for diagnostics.
func (in *Interner) String() string {
	return fmt.Sprintf("labelset.Interner{%d sets}", len(in.canon))
}
