package labelset

import (
	"testing"
)

func TestInternerAssignsStableIds(t *testing.T) {
	in := NewInterner()
	a := in.Intern(Of(1, 4, 5))
	b := in.Intern(Of(0))
	if a == b {
		t.Fatalf("distinct sets share id %d", a)
	}
	if got := in.Intern(Of(5, 4, 1)); got != a {
		t.Errorf("re-interning {1,4,5} gave id %d, want %d", got, a)
	}
	if got := in.Len(); got != 2 {
		t.Errorf("Len() = %d, want 2", got)
	}
	if got := in.Count(a); got != 2 {
		t.Errorf("Count(a) = %d, want 2", got)
	}
	if got := in.Count(b); got != 1 {
		t.Errorf("Count(b) = %d, want 1", got)
	}
}

func TestInternerCanonAndContains(t *testing.T) {
	in := NewInterner()
	id := in.Intern(Of(7, 2, 64, 3))
	canon := in.Canon(id)
	want := []int{2, 3, 7, 64}
	if len(canon) != len(want) {
		t.Fatalf("canon %v, want %v", canon, want)
	}
	for i, c := range want {
		if canon[i] != c {
			t.Fatalf("canon %v, want %v", canon, want)
		}
		if !in.Contains(id, c) {
			t.Errorf("Contains(%d) = false, want true", c)
		}
	}
	for _, c := range []int{0, 1, 4, 63, 65, 128, -1} {
		if in.Contains(id, c) {
			t.Errorf("Contains(%d) = true, want false", c)
		}
	}
}

// TestInternerWidthInsensitive pins that a set whose bitset carries trailing
// zero words (e.g. after Remove) interns identically to its narrow twin.
func TestInternerWidthInsensitive(t *testing.T) {
	in := NewInterner()
	narrow := Of(3)
	wide := Of(3, 200)
	wide.Remove(200)
	a := in.Intern(narrow)
	if b := in.Intern(wide); b != a {
		t.Fatalf("width-differing equal sets got ids %d and %d", a, b)
	}
	if in.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", in.Len())
	}
}

func TestInternerEmptySet(t *testing.T) {
	in := NewInterner()
	id := in.Intern(Set{})
	if got := in.Intern(New(64)); got != id {
		t.Errorf("empty sets intern to ids %d and %d", id, got)
	}
	if len(in.Canon(id)) != 0 {
		t.Errorf("canon of empty set = %v", in.Canon(id))
	}
}

// TestInternerCloneDiverges pins the clone discipline the model relies on:
// shared history, independent growth.
func TestInternerCloneDiverges(t *testing.T) {
	in := NewInterner()
	a := in.Intern(Of(1))
	cl := in.Clone()
	if got := cl.Intern(Of(1)); got != a {
		t.Fatalf("clone lost existing id: %d vs %d", got, a)
	}
	// Divergent appends on both sides must not corrupt each other.
	x := in.Intern(Of(2))
	y := cl.Intern(Of(3))
	if x != y {
		t.Fatalf("expected both sides to assign the same next id, got %d and %d", x, y)
	}
	if got := in.Canon(x); len(got) != 1 || got[0] != 2 {
		t.Errorf("source canon(%d) = %v, want [2]", x, got)
	}
	if got := cl.Canon(y); len(got) != 1 || got[0] != 3 {
		t.Errorf("clone canon(%d) = %v, want [3]", y, got)
	}
}

func TestInternSliceMatchesIntern(t *testing.T) {
	in := NewInterner()
	a := in.Intern(Of(9, 1))
	if b := in.InternSlice([]int{1, 9}); b != a {
		t.Errorf("InternSlice gave %d, want %d", b, a)
	}
}

func TestInternSteadyStateAllocFree(t *testing.T) {
	in := NewInterner()
	s := Of(1, 5, 9)
	in.Intern(s)
	allocs := testing.AllocsPerRun(100, func() { in.Intern(s) })
	if allocs > 0 {
		t.Errorf("steady-state Intern allocates %.1f times per call", allocs)
	}
}
