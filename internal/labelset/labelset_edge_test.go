package labelset

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestSingletonUniverse exercises the full Set surface on the smallest
// vocabulary (one label), where off-by-ones around word 0 would show.
func TestSingletonUniverse(t *testing.T) {
	s := New(1)
	if !s.IsEmpty() || s.Len() != 0 || s.Max() != -1 {
		t.Fatalf("fresh singleton-universe set not empty: %v", s)
	}
	s.Add(0)
	if s.Len() != 1 || !s.Contains(0) || s.Max() != 0 {
		t.Fatalf("singleton add failed: %v", s)
	}
	if !s.Equal(Of(0)) || !s.SubsetOf(Of(0)) || !Of(0).SubsetOf(s) {
		t.Fatalf("singleton equality/subset failed: %v", s)
	}
	if got := s.Jaccard(Of(0)); got != 1 {
		t.Fatalf("self-Jaccard %v", got)
	}
	s.Remove(0)
	if !s.IsEmpty() {
		t.Fatalf("remove left residue: %v", s)
	}
}

// TestZeroValueBinaryOps runs every binary operation with a zero-value Set
// on each side — widths differ (0 words vs n words), which the operations
// must absorb.
func TestZeroValueBinaryOps(t *testing.T) {
	var zero Set
	wide := Of(0, 70, 130) // three words

	if got := zero.Union(wide); !got.Equal(wide) {
		t.Errorf("∅ ∪ wide = %v", got)
	}
	if got := wide.Union(zero); !got.Equal(wide) {
		t.Errorf("wide ∪ ∅ = %v", got)
	}
	if got := zero.Intersect(wide); !got.IsEmpty() {
		t.Errorf("∅ ∩ wide = %v", got)
	}
	if got := wide.Intersect(zero); !got.IsEmpty() {
		t.Errorf("wide ∩ ∅ = %v", got)
	}
	if got := wide.Minus(zero); !got.Equal(wide) {
		t.Errorf("wide \\ ∅ = %v", got)
	}
	if got := zero.Minus(wide); !got.IsEmpty() {
		t.Errorf("∅ \\ wide = %v", got)
	}
	if got := zero.IntersectLen(wide); got != 0 {
		t.Errorf("|∅ ∩ wide| = %d", got)
	}
	if !zero.SubsetOf(wide) {
		t.Error("∅ not a subset of wide")
	}
	if wide.SubsetOf(zero) {
		t.Error("wide a subset of ∅")
	}
	if !zero.Equal(Set{}) {
		t.Error("two zero sets not equal")
	}
	if got := zero.Jaccard(Set{}); got != 1 {
		t.Errorf("Jaccard(∅,∅) = %v, want 1 (identical answers)", got)
	}
	if got := zero.Jaccard(wide); got != 0 {
		t.Errorf("Jaccard(∅,wide) = %v", got)
	}
}

// TestRemoveBeyondWidth pins that Remove of labels past the backing array
// (and negative labels) is a no-op, never a panic or a grow.
func TestRemoveBeyondWidth(t *testing.T) {
	s := Of(3)
	s.Remove(1000)
	s.Remove(-5)
	if !s.Equal(Of(3)) {
		t.Fatalf("remove-beyond-width mutated the set: %v", s)
	}
	var zero Set
	zero.Remove(0) // no backing words at all
	if !zero.IsEmpty() {
		t.Fatal("remove on the zero value grew it")
	}
}

// TestContainsBeyondWidth pins membership tests past the backing array.
func TestContainsBeyondWidth(t *testing.T) {
	s := Of(2)
	for _, c := range []int{-1, 64, 1 << 20} {
		if s.Contains(c) {
			t.Errorf("Contains(%d) true on %v", c, s)
		}
	}
}

// TestMinusNarrowerOperand pins Minus when the subtrahend has fewer words
// than the receiver (the loop must stop at the shorter width).
func TestMinusNarrowerOperand(t *testing.T) {
	wide := Of(1, 100, 200)
	if got := wide.Minus(Of(1)); !got.Equal(Of(100, 200)) {
		t.Fatalf("wide \\ {1} = %v", got)
	}
	if got := Of(1).Minus(wide); !got.IsEmpty() {
		t.Fatalf("{1} \\ wide = %v", got)
	}
}

// TestEqualTrailingZeroWords pins equality across widths where the longer
// set's extra words are all zero (a set shrunk by Remove).
func TestEqualTrailingZeroWords(t *testing.T) {
	a := Of(1, 200)
	a.Remove(200) // leaves zeroed high words behind
	b := Of(1)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatalf("equality ignores trailing zero words: %v vs %v", a, b)
	}
	if !a.SubsetOf(b) {
		t.Fatal("subset must ignore trailing zero words")
	}
	if a.Len() != 1 || a.Max() != 1 {
		t.Fatalf("Len/Max after shrink: %d/%d", a.Len(), a.Max())
	}
}

// TestOfEmptyVariadic pins the empty constructors.
func TestOfEmptyVariadic(t *testing.T) {
	if s := Of(); !s.IsEmpty() {
		t.Fatalf("Of() = %v", s)
	}
	if s := FromSlice(nil); !s.IsEmpty() {
		t.Fatalf("FromSlice(nil) = %v", s)
	}
	if s := New(0); !s.IsEmpty() || s.Max() != -1 {
		t.Fatalf("New(0) = %v", s)
	}
	if s := New(-3); !s.IsEmpty() {
		t.Fatalf("New(-3) = %v", s)
	}
}

// TestWordBoundaryMembers sweeps members that straddle the 64-bit word
// boundaries, where shift arithmetic bugs live.
func TestWordBoundaryMembers(t *testing.T) {
	members := []int{0, 63, 64, 127, 128}
	s := FromSlice(members)
	if got := s.Slice(); !reflect.DeepEqual(got, members) {
		t.Fatalf("Slice() = %v, want %v", got, members)
	}
	if s.Len() != len(members) || s.Max() != 128 {
		t.Fatalf("Len=%d Max=%d", s.Len(), s.Max())
	}
	want := map[int]bool{}
	for _, c := range members {
		want[c] = true
	}
	for c := 0; c <= 130; c++ {
		if s.Contains(c) != want[c] {
			t.Errorf("Contains(%d) = %v, want %v", c, s.Contains(c), want[c])
		}
	}
}

// TestUnmarshalJSONRejectsGarbage is the table of malformed JSON set
// encodings the codec must reject (and the whitespace forms it must not).
func TestUnmarshalJSONRejectsGarbage(t *testing.T) {
	bad := []string{
		`{"a":1}`, `"1,2"`, `12`, `[1,`, `[1,"two"]`, `[1,-2]`, `[1.5]`, `[,]`,
	}
	for _, raw := range bad {
		var s Set
		if err := json.Unmarshal([]byte(raw), &s); err == nil {
			t.Errorf("accepted %q as %v", raw, s)
		}
	}
	good := map[string][]int{
		`[]`:          nil,
		` [ 1 , 3 ] `: {1, 3},
		"null":        nil,
		"[2]":         {2},
		"\n[0,64]\t":  {0, 64},
	}
	for raw, want := range good {
		var s Set
		if err := json.Unmarshal([]byte(raw), &s); err != nil {
			t.Errorf("rejected %q: %v", raw, err)
			continue
		}
		if !s.Equal(FromSlice(want)) {
			t.Errorf("%q decoded to %v, want %v", raw, s, FromSlice(want))
		}
	}
}
