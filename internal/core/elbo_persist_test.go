package core

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"cpa/internal/datasets"
)

func TestELBOIsFiniteAndImprovesWithTraining(t *testing.T) {
	ds, _, err := datasets.Load("movie", 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 1, MaxIter: 1}
	early, err := NewModel(cfg, ds.NumItems, ds.NumWorkers, ds.NumLabels)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := early.Fit(ds); err != nil {
		t.Fatal(err)
	}
	earlyELBO := early.ELBO()

	cfg.MaxIter = 30
	late, err := NewModel(cfg, ds.NumItems, ds.NumWorkers, ds.NumLabels)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := late.Fit(ds); err != nil {
		t.Fatal(err)
	}
	lateELBO := late.ELBO()

	if math.IsNaN(earlyELBO) || math.IsInf(earlyELBO, 0) {
		t.Fatalf("early ELBO not finite: %v", earlyELBO)
	}
	if math.IsNaN(lateELBO) || math.IsInf(lateELBO, 0) {
		t.Fatalf("late ELBO not finite: %v", lateELBO)
	}
	t.Logf("ELBO after 1 iter: %.1f, after 30: %.1f", earlyELBO, lateELBO)
	// Annealing makes strict per-iteration monotonicity unavailable, but a
	// converged run must not sit below the one-iteration posterior by a
	// material margin.
	if lateELBO < earlyELBO-0.01*math.Abs(earlyELBO) {
		t.Errorf("ELBO regressed with training: %.1f -> %.1f", earlyELBO, lateELBO)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ds, _, err := datasets.Load("movie", 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(Config{Seed: 2}, ds.NumItems, ds.NumWorkers, ds.NumLabels)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	want, err := m.Predict()
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Fitted() {
		t.Error("restored model should be fitted")
	}
	got, err := restored.Predict()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !want[i].Equal(got[i]) {
			t.Fatalf("restored prediction differs at item %d: %v vs %v", i, got[i], want[i])
		}
	}
	// Restored accessors agree with the original.
	for u := 0; u < ds.NumWorkers; u += 7 {
		if m.WorkerCommunity(u) != restored.WorkerCommunity(u) {
			t.Errorf("worker %d community differs after restore", u)
		}
		if math.Abs(m.WorkerReliability(u)-restored.WorkerReliability(u)) > 1e-12 {
			t.Errorf("worker %d reliability differs after restore", u)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Error("garbage input should fail")
	}
}

func TestSaveLoadSupportsContinuedStreaming(t *testing.T) {
	ds, _, err := datasets.Load("movie", 0.2, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 4, BatchSize: 200}
	m, err := NewModel(cfg, ds.NumItems, ds.NumWorkers, ds.NumLabels)
	if err != nil {
		t.Fatal(err)
	}
	batches := ds.Batches(cfg.BatchSize)
	half := len(batches) / 2
	for _, b := range batches[:half] {
		if err := m.PartialFit(b.Answers); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The SVI population-scaling counters must survive the round trip:
	// without them, post-restore global steps scale suffstats by ~0 and
	// collapse the restored posterior toward the prior.
	if restored.seenItems != m.seenItems || restored.seenWorkers != m.seenWorkers {
		t.Fatalf("restored seen counts (%d items, %d workers) != original (%d, %d)",
			restored.seenItems, restored.seenWorkers, m.seenItems, m.seenWorkers)
	}
	// Continue streaming on the restored model; it must accept batches and
	// end in a usable state. (Answers before the save are not re-shipped,
	// so predictions differ from an uninterrupted run — the posterior
	// carries them through the globals instead.)
	for _, b := range batches[half:] {
		if err := restored.PartialFit(b.Answers); err != nil {
			t.Fatal(err)
		}
	}
	restored.FinalizeOnline()
	pred, err := restored.Predict()
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, p := range pred {
		if !p.IsEmpty() {
			nonEmpty++
		}
	}
	if nonEmpty < ds.NumItems/2 {
		t.Errorf("restored+continued model predicts too few items: %d/%d", nonEmpty, ds.NumItems)
	}
}

// TestSaveLoadResumesBitForBit is the strict version of continued
// streaming: a model saved mid-stream and restored (as cpaserve's crash
// recovery does) must produce bit-identical posteriors to the uninterrupted
// model when both consume the identical remaining batches. The arrival
// order is shuffled: per-worker answer lists then interleave items, which
// is exactly what a persist format in arrival-independent order gets wrong
// (float reductions re-order), and streaming accumulators (two-coin counts,
// ω-blended worker stats) must survive the round trip.
func TestSaveLoadResumesBitForBit(t *testing.T) {
	base, _, err := datasets.Load("movie", 0.2, 9)
	if err != nil {
		t.Fatal(err)
	}
	ds := base.Shuffled(rand.New(rand.NewSource(9)))
	cfg := Config{Seed: 4, BatchSize: 150, Parallelism: 2}
	m, err := NewModel(cfg, ds.NumItems, ds.NumWorkers, ds.NumLabels)
	if err != nil {
		t.Fatal(err)
	}
	batches := ds.Batches(cfg.BatchSize)
	split := len(batches)/2 + 1 // arbitrary mid-stream point
	for _, b := range batches[:split] {
		if err := m.PartialFit(b.Answers); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[split:] {
		if err := m.PartialFit(b.Answers); err != nil {
			t.Fatal(err)
		}
		if err := restored.PartialFit(b.Answers); err != nil {
			t.Fatal(err)
		}
	}
	want, err := m.ConsensusView()
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.ConsensusView()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Items {
		if !reflect.DeepEqual(want.Items[i], got.Items[i]) {
			t.Fatalf("item %d diverged after save/load resume:\nuninterrupted %+v\nrestored      %+v",
				i, want.Items[i], got.Items[i])
		}
	}
}

// TestSaveLoadKeepsRevealedTruth pins test-question persistence: truths
// revealed to the model before a mid-stream save must still be pinned by
// the restored model's imputation.
func TestSaveLoadKeepsRevealedTruth(t *testing.T) {
	ds, _, err := datasets.Load("movie", 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := ds.Reveal(i); err != nil {
			t.Fatal(err)
		}
	}
	cfg := Config{Seed: 2, BatchSize: 400}
	m, err := NewModel(cfg, ds.NumItems, ds.NumWorkers, ds.NumLabels)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.FitStream(ds); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(restored.revealedTruth, m.revealedTruth) {
		t.Fatalf("revealed truths did not survive save/load:\nwant %v\ngot  %v",
			m.revealedTruth[:12], restored.revealedTruth[:12])
	}
	revealed := 0
	for _, truth := range restored.revealedTruth {
		if truth != nil {
			revealed++
		}
	}
	if revealed != 10 {
		t.Fatalf("restored model pins %d revealed items, want 10", revealed)
	}
}
