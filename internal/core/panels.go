package core

import (
	"sync"

	"cpa/internal/mathx"
)

// Label-set score panels.
//
// Every score kernel's data term depends on an answer only through its
// label set: E[ln p(x_iu | ψ_tm)] = Σ_{c∈x_iu} E[ln ψ_tmc]. Interning label
// sets (labelset.Interner) therefore lets the model cache, per distinct
// set, the full T×M panel S[t·M+m] = Σ_{c∈set} elogPsi[t][m][c] — after
// which the inference inner loops stop gathering |set| strided entries per
// (answer, t, m) and become contiguous row AXPYs / dots over the panel.
//
// Two cache families exist:
//
//   - The sum-panel cache over elogPsi (panelCache, a Model field). Panels
//     are valid per expectation generation: refreshExpectations bumps
//     Model.expGen, and scorePanel refuses to serve a slot whose build
//     generation differs — a stale panel can never be read, even if a
//     caller forgets the ensure step. Builds happen at serial sync points,
//     demand-driven: the batch engine brings every admitted set current
//     before a full pass (ensureScorePanels), while the SVI engine brings
//     only the round's label sets current (ensureScorePanelsFor) — a
//     PartialFit round scores just its mini-batch, so rebuilding the whole
//     universe each round would cost O(distinct sets), not O(batch).
//
//   - Product panels over a posterior-mean or MAP cube (prodCache, in
//     workScratch): P[t·M+m] = Π_{c∈set} max(cube[t][m][c], 1e-12), used by
//     the data-log-lik diagnostic and the §3.4 prediction weights. The cube
//     changes per call, so these are rebuilt by buildProductPanels at each
//     call site and valid only until the next build.
//
// Bit-exactness: panels accumulate over the canonical sorted member slice
// in order — exactly answerScore's (and the legacy product loops')
// float-operation order — so a kernel reading a panel produces the same
// bits as the scalar fallback it replaces. Cache admission is therefore
// value-transparent: any set without a panel (below the reuse threshold,
// over the memory budget, or cache disabled) takes the scalar path and
// yields identical results, just slower. The panelsDisabled test hook
// exploits this to pin enabled ≡ disabled equivalence.
const (
	// panelBudgetFloats bounds each cache's backing array (64 MB of
	// float64s). Sets beyond the budget fall back to the scalar path.
	panelBudgetFloats = (64 << 20) / 8
	// sumPanelMinCount gates sum-panel admission by reuse, on both engines:
	// a cached slot is rebuilt every expectation generation whether or not
	// its answers are rescored that often, so it must amortise against
	// several fallback walks. Low-reuse sets don't get slots — but they no
	// longer pay the scalar gather price either: the score kernels run the
	// fused gather-sum kernels straight off the transposed cube
	// (scratchOffs), identical bits, no persistent memory. Measured across
	// the bench profiles, admitting singletons (threshold 1) loses to the
	// fused path: the per-generation rebuild of thousands of one-shot
	// slots plus the cache-thrash of a panels working set outweighs the
	// build it saves.
	sumPanelMinCount = 3
	// prodPanelMinCount keeps the reuse gate for product panels: unlike sum
	// panels (read by two score kernels per occurrence), a product panel is
	// read once per occurrence, so a count-1 set's build (|set|·T·M
	// multiplies via mathx.MulStridedFloor) costs exactly the fallback walk
	// it would replace and saves nothing.
	prodPanelMinCount = 2
)

// panelCache is the generation-guarded sum-panel cache over elogPsi.
type panelCache struct {
	slot    []int32   // set id → slot index, -1 when not admitted
	ids     []int32   // slot → set id
	gens    []uint64  // slot → expGen its contents were built from
	buf     []float64 // slot-major [slots][T·M] panels
	slots   int
	scratch []int32 // stale-slot worklist reused across builds
	// psiT is a column-major copy of the elogPsi body — psiT[c·TM+r] =
	// elogPsi[r·C+c] — rebuilt once per expectation generation (psiTGen)
	// when panels need filling. It turns each panel fill from |set|
	// stride-C gather passes over the cube into |set| contiguous vector
	// adds; the transpose itself is one O(TM·C) pass, amortised across
	// every set built that generation.
	psiT     []float64
	psiTGen  uint64
	disabled bool // test hook: force every kernel onto the scalar path
}

// panelScratchPool recycles the score kernels' per-call gather-offset
// scratch (scratchOffs/poolOffs) across goroutines, sweeps, and models —
// the buffers carry no model state, so one package pool serves all. Kept
// out of panelCache so Model stays trivially copyable (Clone's c := *m).
var panelScratchPool sync.Pool

// admit assigns a slot to set id if it has none and the budget allows.
func (p *panelCache) admit(id int32, maxSlots int) {
	for int(id) >= len(p.slot) {
		p.slot = append(p.slot, -1)
	}
	if p.slot[id] >= 0 || p.slots >= maxSlots {
		return
	}
	p.slot[id] = int32(p.slots)
	p.ids = append(p.ids, id)
	p.gens = append(p.gens, 0) // generation 0 is never current (expGen ≥ 1)
	p.slots++
}

// ensureScorePanels brings every admitted (and admissible) set's panel up
// to date with the current expectations — the batch-engine sync point,
// called before a full pass over the stored answers. Admission is gated by
// reuse (sumPanelMinCount). Must run serially; afterwards scorePanel is
// safe for concurrent readers. Fills shard per slot — disjoint writes, so
// results are identical for every Parallelism.
func (m *Model) ensureScorePanels() {
	p := &m.panels
	if p.disabled {
		return
	}
	maxSlots := panelBudgetFloats / (m.T * m.M)
	n := m.intern.Len()
	for id := 0; id < n && p.slots < maxSlots; id++ {
		if m.intern.Count(int32(id)) >= sumPanelMinCount {
			p.admit(int32(id), maxSlots)
		}
	}
	m.buildStalePanels()
}

// ensureScorePanelsFor is the SVI sync point: it admits and refreshes
// panels only for the given round's answers, keeping per-round panel work
// O(batch) regardless of how many distinct sets the stream has seen.
// Panels of sets outside the round stay at their old generation and simply
// fall back to the scalar path if read before their next refresh.
func (m *Model) ensureScorePanelsFor(tuples []batchAns) {
	p := &m.panels
	if p.disabled {
		return
	}
	maxSlots := panelBudgetFloats / (m.T * m.M)
	stale := p.scratch[:0]
	for _, ba := range tuples {
		// Same reuse gate as the batch path: a panel built this round is
		// stale by the next (expectations refresh every round), so it must
		// amortise within the round — across repeats of the set in this
		// batch and the two local passes.
		if m.intern.Count(ba.set) >= sumPanelMinCount {
			p.admit(ba.set, maxSlots)
		}
		if int(ba.set) >= len(p.slot) {
			continue
		}
		if s := p.slot[ba.set]; s >= 0 && p.gens[s] != m.expGen {
			stale = append(stale, s)
			p.gens[s] = m.expGen // also dedupes repeats within the round
		}
	}
	p.scratch = stale
	m.buildPanelSlots(stale)
}

// buildStalePanels refills every admitted slot whose build generation is
// behind the current expectations — the batch-engine worklist, where the
// following pass reads every stored answer.
func (m *Model) buildStalePanels() {
	p := &m.panels
	stale := p.scratch[:0]
	for s := 0; s < p.slots; s++ {
		if p.gens[s] != m.expGen {
			stale = append(stale, int32(s))
			p.gens[s] = m.expGen
		}
	}
	p.scratch = stale
	m.buildPanelSlots(stale)
}

// buildPanelSlots fills the listed slots from the current expectations, in
// parallel (disjoint writes — identical results for every Parallelism).
// Callers have already stamped the slots' generations.
func (m *Model) buildPanelSlots(slots []int32) {
	m.ensurePsiT()
	if len(slots) == 0 {
		return
	}
	p := &m.panels
	p.buf = growFloats(p.buf, p.slots*(m.T*m.M))
	m.parallelFor(len(slots), func(lo, hi int) {
		for k := lo; k < hi; k++ {
			m.fillScorePanel(int(slots[k]))
		}
	})
}

// ensurePsiT brings the transposed cube current with the expectations.
// Called from the serial ensure* sync points (directly and via
// buildPanelSlots), so the parallel panel fills and the score kernels'
// gather-sum fallbacks always read a current psiT; scratchOffs still
// checks the generation to stay safe outside that window.
func (m *Model) ensurePsiT() {
	p := &m.panels
	if p.disabled || p.psiTGen == m.expGen {
		return
	}
	m.transposePsi()
	p.psiTGen = m.expGen
}

// transposePsi refreshes the column-major elogPsi copy the panel fills
// read. Serial (called from the serial sync points before the parallel
// fill); values are copied verbatim, so downstream sums see exactly the
// cube's bits.
func (m *Model) transposePsi() {
	p := &m.panels
	TM := m.T * m.M
	C := m.numLabels
	psi := m.elogPsi.Data()
	p.psiT = growFloats(p.psiT, TM*C)
	for r := 0; r < TM; r++ {
		row := psi[r*C : (r+1)*C]
		for c, v := range row {
			p.psiT[c*TM+r] = v
		}
	}
}

// fillScorePanel computes slot s's panel: for every row r of the elogPsi
// cube, the sum over the set's canonical members in canonical order (the
// answerScore order — the bit-exactness contract). The fill reads the
// transposed cube (psiT, refreshed by buildPanelSlots): one contiguous
// vector-add pass per member, so dst[r] accumulates the members in exactly
// the canonical order answerScore uses — the loop interchange moves zero
// bits, it only turns the inner loop into a full-width kernel.
func (m *Model) fillScorePanel(s int) {
	p := &m.panels
	TM := m.T * m.M
	canon := m.intern.Canon(p.ids[s])
	dst := p.buf[s*TM : (s+1)*TM]
	mathx.Fill(dst, 0)
	for _, c := range canon {
		mathx.AddStrided(dst, p.psiT[c*TM:(c+1)*TM], 1)
	}
}

// scorePanel returns the set's T×M sum panel, or nil when the set has no
// current-generation panel (not admitted, over budget, stale generation, or
// cache disabled) — the caller then takes the scalar answerScore path,
// which produces identical bits.
func (m *Model) scorePanel(id int32) []float64 {
	p := &m.panels
	if p.disabled || int(id) >= len(p.slot) {
		return nil
	}
	s := p.slot[id]
	if s < 0 || p.gens[s] != m.expGen {
		return nil
	}
	TM := m.T * m.M
	return p.buf[int(s)*TM : (int(s)+1)*TM]
}

// scratchOffs hands the score kernels a pool-recycled n-length offset
// slice for the fused gather-sum kernels (mathx.AxpyGatherSum /
// FlooredDotGatherSum) when the transposed cube is current. Sets without a
// cached slot (below the reuse threshold or over budget) then still run
// full-width vector kernels: the gather kernel reads the set's |offs|
// contiguous psiT runs directly — one fused pass, no intermediate panel
// row — in the canonical member order, so the bits match both the cached
// panel and the scalar fallback. Returns nil when the cache is disabled
// (the truly-scalar test hook) or psiT is stale (kernel call outside the
// ensure window); the caller then takes the scalar path.
func (m *Model) scratchOffs(scratch **panelScratch, n int) []int {
	p := &m.panels
	if p.disabled || p.psiTGen != m.expGen {
		return nil
	}
	return m.poolOffs(scratch, n)
}

// poolOffs is scratchOffs without the generation/disabled gate, for callers
// that gather from their own call-scoped transposed cube (dataLogLik's
// psiMeanT) rather than the panels' elogPsi transpose — those reads are
// always current by construction, so no gate applies.
func (m *Model) poolOffs(scratch **panelScratch, n int) []int {
	if *scratch == nil {
		s, _ := panelScratchPool.Get().(*panelScratch)
		if s == nil {
			s = new(panelScratch)
		}
		*scratch = s
	}
	s := *scratch
	if cap(s.offs) < n {
		s.offs = make([]int, n)
	}
	return s.offs[:n]
}

// panelScratch is the pool unit for scratchOffs: pooling the container
// (not the slice) keeps Get/Put allocation-free in steady state. groups is
// the companion survivor-group worklist (mathx.FloorGroups) scorePhiRefs
// computes once per answer and reuses across all T cluster reductions.
type panelScratch struct {
	offs   []int
	groups []int32
}

// putScratchPanel returns a scratch panel to the pool; nil-safe so callers
// can release unconditionally.
func (m *Model) putScratchPanel(scratch *panelScratch) {
	if scratch != nil {
		panelScratchPool.Put(scratch)
	}
}

// growFloats resizes buf to n entries, preserving the existing prefix and
// doubling the backing array so amortised growth stays O(1) per entry.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		newCap := 2 * cap(buf)
		if newCap < n {
			newCap = n
		}
		nb := make([]float64, n, newCap)
		copy(nb, buf)
		return nb
	}
	return buf[:n]
}

// prodCache caches per-set product panels against a caller-supplied cube.
// It lives in workScratch: per model, single-writer, rebuilt per call site.
type prodCache struct {
	slot  []int32
	ids   []int32
	buf   []float64
	slots int
}

// panel returns the set's product panel from the latest build, or nil.
func (pc *prodCache) panel(id int32, TM int) []float64 {
	if int(id) >= len(pc.slot) {
		return nil
	}
	s := pc.slot[id]
	if s < 0 {
		return nil
	}
	return pc.buf[int(s)*TM : (int(s)+1)*TM]
}

// buildProductPanels fills the scratch product-panel cache against cube, a
// (T·M)×C row-major matrix body (posterior-mean ψ̄ for the log-lik
// diagnostic, ψ^MAP for prediction): panel[r] = Π_{c∈set} max(cube[r·C+c],
// 1e-12), multiplied in canonical order — the legacy per-answer product
// order. Returns nil when the cache is disabled. Must be called from a
// serial sync point; the returned cache is read-only until the next build.
func (m *Model) buildProductPanels(cube []float64) *prodCache {
	if m.panels.disabled {
		return nil
	}
	pc := &m.ws.prod
	TM := m.T * m.M
	C := m.numLabels
	maxSlots := panelBudgetFloats / TM
	n := m.intern.Len()
	for len(pc.slot) < n {
		pc.slot = append(pc.slot, -1)
	}
	for id := 0; id < n && pc.slots < maxSlots; id++ {
		if pc.slot[id] >= 0 || m.intern.Count(int32(id)) < prodPanelMinCount {
			continue
		}
		pc.slot[id] = int32(pc.slots)
		pc.ids = append(pc.ids, int32(id))
		pc.slots++
	}
	pc.buf = growFloats(pc.buf, pc.slots*TM)
	// The cube differs between calls, so every slot refills every build.
	// Same loop interchange as fillScorePanel: each dst[r] multiplies the
	// floored members in canonical order, one strided kernel pass per
	// member — bit-identical to the legacy per-row product loop.
	m.parallelFor(pc.slots, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			canon := m.intern.Canon(pc.ids[s])
			dst := pc.buf[s*TM : (s+1)*TM]
			mathx.Fill(dst, 1)
			for _, c := range canon {
				mathx.MulStridedFloor(dst, cube[c:], C, 1e-12)
			}
		}
	})
	return pc
}
