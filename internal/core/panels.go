package core

// Label-set score panels.
//
// Every score kernel's data term depends on an answer only through its
// label set: E[ln p(x_iu | ψ_tm)] = Σ_{c∈x_iu} E[ln ψ_tmc]. Interning label
// sets (labelset.Interner) therefore lets the model cache, per distinct
// set, the full T×M panel S[t·M+m] = Σ_{c∈set} elogPsi[t][m][c] — after
// which the inference inner loops stop gathering |set| strided entries per
// (answer, t, m) and become contiguous row AXPYs / dots over the panel.
//
// Two cache families exist:
//
//   - The sum-panel cache over elogPsi (panelCache, a Model field). Panels
//     are valid per expectation generation: refreshExpectations bumps
//     Model.expGen, and scorePanel refuses to serve a slot whose build
//     generation differs — a stale panel can never be read, even if a
//     caller forgets the ensure step. Builds happen at serial sync points,
//     demand-driven: the batch engine brings every admitted set current
//     before a full pass (ensureScorePanels), while the SVI engine brings
//     only the round's label sets current (ensureScorePanelsFor) — a
//     PartialFit round scores just its mini-batch, so rebuilding the whole
//     universe each round would cost O(distinct sets), not O(batch).
//
//   - Product panels over a posterior-mean or MAP cube (prodCache, in
//     workScratch): P[t·M+m] = Π_{c∈set} max(cube[t][m][c], 1e-12), used by
//     the data-log-lik diagnostic and the §3.4 prediction weights. The cube
//     changes per call, so these are rebuilt by buildProductPanels at each
//     call site and valid only until the next build.
//
// Bit-exactness: panels accumulate over the canonical sorted member slice
// in order — exactly answerScore's (and the legacy product loops')
// float-operation order — so a kernel reading a panel produces the same
// bits as the scalar fallback it replaces. Cache admission is therefore
// value-transparent: any set without a panel (below the reuse threshold,
// over the memory budget, or cache disabled) takes the scalar path and
// yields identical results, just slower. The panelsDisabled test hook
// exploits this to pin enabled ≡ disabled equivalence.
const (
	// panelBudgetFloats bounds each cache's backing array (64 MB of
	// float64s). Sets beyond the budget fall back to the scalar path.
	panelBudgetFloats = (64 << 20) / 8
	// sumPanelMinCount gates sum-panel admission by reuse, on both engines:
	// a panel build costs a full T·M·|set| walk with no responsibility
	// floors, so it pays off against the floored scalar loops only once
	// several answers share the set (within a batch iteration, or within a
	// streaming round — a round's panels are stale by the next round, so
	// they too must amortise inside the round that builds them). Low-reuse
	// sets stay on the scalar path permanently, by design.
	sumPanelMinCount = 3
	// prodPanelMinCount is the same gate for product panels (read once per
	// answer per call, so they need a repeat to amortise).
	prodPanelMinCount = 2
)

// panelCache is the generation-guarded sum-panel cache over elogPsi.
type panelCache struct {
	slot     []int32   // set id → slot index, -1 when not admitted
	ids      []int32   // slot → set id
	gens     []uint64  // slot → expGen its contents were built from
	buf      []float64 // slot-major [slots][T·M] panels
	slots    int
	scratch  []int32 // stale-slot worklist reused across builds
	disabled bool    // test hook: force every kernel onto the scalar path
}

// admit assigns a slot to set id if it has none and the budget allows.
func (p *panelCache) admit(id int32, maxSlots int) {
	for int(id) >= len(p.slot) {
		p.slot = append(p.slot, -1)
	}
	if p.slot[id] >= 0 || p.slots >= maxSlots {
		return
	}
	p.slot[id] = int32(p.slots)
	p.ids = append(p.ids, id)
	p.gens = append(p.gens, 0) // generation 0 is never current (expGen ≥ 1)
	p.slots++
}

// ensureScorePanels brings every admitted (and admissible) set's panel up
// to date with the current expectations — the batch-engine sync point,
// called before a full pass over the stored answers. Admission is gated by
// reuse (sumPanelMinCount). Must run serially; afterwards scorePanel is
// safe for concurrent readers. Fills shard per slot — disjoint writes, so
// results are identical for every Parallelism.
func (m *Model) ensureScorePanels() {
	p := &m.panels
	if p.disabled {
		return
	}
	maxSlots := panelBudgetFloats / (m.T * m.M)
	n := m.intern.Len()
	for id := 0; id < n && p.slots < maxSlots; id++ {
		if m.intern.Count(int32(id)) >= sumPanelMinCount {
			p.admit(int32(id), maxSlots)
		}
	}
	m.buildStalePanels()
}

// ensureScorePanelsFor is the SVI sync point: it admits and refreshes
// panels only for the given round's answers, keeping per-round panel work
// O(batch) regardless of how many distinct sets the stream has seen.
// Panels of sets outside the round stay at their old generation and simply
// fall back to the scalar path if read before their next refresh.
func (m *Model) ensureScorePanelsFor(tuples []batchAns) {
	p := &m.panels
	if p.disabled {
		return
	}
	maxSlots := panelBudgetFloats / (m.T * m.M)
	stale := p.scratch[:0]
	for _, ba := range tuples {
		// Same reuse gate as the batch path: a panel built this round is
		// stale by the next (expectations refresh every round), so it must
		// amortise within the round — across repeats of the set in this
		// batch and the two local passes.
		if m.intern.Count(ba.set) >= sumPanelMinCount {
			p.admit(ba.set, maxSlots)
		}
		if int(ba.set) >= len(p.slot) {
			continue
		}
		if s := p.slot[ba.set]; s >= 0 && p.gens[s] != m.expGen {
			stale = append(stale, s)
			p.gens[s] = m.expGen // also dedupes repeats within the round
		}
	}
	p.scratch = stale
	m.buildPanelSlots(stale)
}

// buildStalePanels refills every admitted slot whose build generation is
// behind the current expectations — the batch-engine worklist, where the
// following pass reads every stored answer.
func (m *Model) buildStalePanels() {
	p := &m.panels
	stale := p.scratch[:0]
	for s := 0; s < p.slots; s++ {
		if p.gens[s] != m.expGen {
			stale = append(stale, int32(s))
			p.gens[s] = m.expGen
		}
	}
	p.scratch = stale
	m.buildPanelSlots(stale)
}

// buildPanelSlots fills the listed slots from the current expectations, in
// parallel (disjoint writes — identical results for every Parallelism).
// Callers have already stamped the slots' generations.
func (m *Model) buildPanelSlots(slots []int32) {
	if len(slots) == 0 {
		return
	}
	p := &m.panels
	p.buf = growFloats(p.buf, p.slots*(m.T*m.M))
	m.parallelFor(len(slots), func(lo, hi int) {
		for k := lo; k < hi; k++ {
			m.fillScorePanel(int(slots[k]))
		}
	})
}

// fillScorePanel computes slot s's panel: for every row r of the elogPsi
// cube, the sum over the set's canonical members in canonical order (the
// answerScore order — the bit-exactness contract).
func (m *Model) fillScorePanel(s int) {
	p := &m.panels
	TM := m.T * m.M
	canon := m.intern.Canon(p.ids[s])
	dst := p.buf[s*TM : (s+1)*TM]
	for r := 0; r < TM; r++ {
		row := m.elogPsi.Row(r)
		sum := 0.0
		for _, c := range canon {
			sum += row[c]
		}
		dst[r] = sum
	}
}

// scorePanel returns the set's T×M sum panel, or nil when the set has no
// current-generation panel (not admitted, over budget, stale generation, or
// cache disabled) — the caller then takes the scalar answerScore path,
// which produces identical bits.
func (m *Model) scorePanel(id int32) []float64 {
	p := &m.panels
	if p.disabled || int(id) >= len(p.slot) {
		return nil
	}
	s := p.slot[id]
	if s < 0 || p.gens[s] != m.expGen {
		return nil
	}
	TM := m.T * m.M
	return p.buf[int(s)*TM : (int(s)+1)*TM]
}

// growFloats resizes buf to n entries, preserving the existing prefix and
// doubling the backing array so amortised growth stays O(1) per entry.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		newCap := 2 * cap(buf)
		if newCap < n {
			newCap = n
		}
		nb := make([]float64, n, newCap)
		copy(nb, buf)
		return nb
	}
	return buf[:n]
}

// prodCache caches per-set product panels against a caller-supplied cube.
// It lives in workScratch: per model, single-writer, rebuilt per call site.
type prodCache struct {
	slot  []int32
	ids   []int32
	buf   []float64
	slots int
}

// panel returns the set's product panel from the latest build, or nil.
func (pc *prodCache) panel(id int32, TM int) []float64 {
	if int(id) >= len(pc.slot) {
		return nil
	}
	s := pc.slot[id]
	if s < 0 {
		return nil
	}
	return pc.buf[int(s)*TM : (int(s)+1)*TM]
}

// buildProductPanels fills the scratch product-panel cache against cube, a
// (T·M)×C row-major matrix body (posterior-mean ψ̄ for the log-lik
// diagnostic, ψ^MAP for prediction): panel[r] = Π_{c∈set} max(cube[r·C+c],
// 1e-12), multiplied in canonical order — the legacy per-answer product
// order. Returns nil when the cache is disabled. Must be called from a
// serial sync point; the returned cache is read-only until the next build.
func (m *Model) buildProductPanels(cube []float64) *prodCache {
	if m.panels.disabled {
		return nil
	}
	pc := &m.ws.prod
	TM := m.T * m.M
	C := m.numLabels
	maxSlots := panelBudgetFloats / TM
	n := m.intern.Len()
	for len(pc.slot) < n {
		pc.slot = append(pc.slot, -1)
	}
	for id := 0; id < n && pc.slots < maxSlots; id++ {
		if pc.slot[id] >= 0 || m.intern.Count(int32(id)) < prodPanelMinCount {
			continue
		}
		pc.slot[id] = int32(pc.slots)
		pc.ids = append(pc.ids, int32(id))
		pc.slots++
	}
	pc.buf = growFloats(pc.buf, pc.slots*TM)
	// The cube differs between calls, so every slot refills every build.
	m.parallelFor(pc.slots, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			canon := m.intern.Canon(pc.ids[s])
			dst := pc.buf[s*TM : (s+1)*TM]
			for r := 0; r < TM; r++ {
				row := cube[r*C : (r+1)*C]
				p := 1.0
				for _, c := range canon {
					v := row[c]
					if v < 1e-12 {
						v = 1e-12
					}
					p *= v
				}
				dst[r] = p
			}
		}
	})
	return pc
}
