package core

import (
	"math"
	"testing"

	"cpa/internal/datasets"
)

// TestParallelFitRaceAndDeterminism exercises every sharded code path —
// the local responsibility updates, the λ/ζ suffstat accumulators, the
// reliability/two-coin reduction, the parallel truth imputation, and the
// data-log-lik reduction — with Parallelism 4 so `go test -race` patrols
// the Algorithm 3 map shards (CI runs the whole suite under -race). It
// also asserts the documented determinism contract: repeated runs with the
// same Parallelism produce bit-identical posteriors.
func TestParallelFitRaceAndDeterminism(t *testing.T) {
	ds, _, err := datasets.Load("image", 0.04, 11)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Model {
		m, err := NewModel(Config{Seed: 3, Parallelism: 4, MaxIter: 6}, ds.NumItems, ds.NumWorkers, ds.NumLabels)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Fit(ds); err != nil {
			t.Fatal(err)
		}
		return m
	}
	m1 := run()
	m2 := run()
	if d := m1.kappa.MaxAbsDiff(m2.kappa); d != 0 {
		t.Errorf("parallel Fit non-deterministic: kappa diff %v", d)
	}
	if d := m1.lambda.MaxAbsDiff(m2.lambda); d != 0 {
		t.Errorf("parallel Fit non-deterministic: lambda diff %v", d)
	}
	if _, err := m1.Predict(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelFitStreamRace runs the SVI path with Parallelism 4 under the
// same race patrol: the sharded stochastic row updates write disjoint
// responsibility rows while reading the shared expectation caches.
func TestParallelFitStreamRace(t *testing.T) {
	ds, _, err := datasets.Load("image", 0.04, 13)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(Config{Seed: 5, Parallelism: 4, BatchSize: 64}, ds.NumItems, ds.NumWorkers, ds.NumLabels)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := m.FitStream(ds)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Iterations == 0 {
		t.Fatal("no batches consumed")
	}
	if d := stats.FinalDelta(); math.IsNaN(d) || math.IsInf(d, 0) {
		t.Fatalf("final delta %v", d)
	}
	pred, err := m.Predict()
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) != ds.NumItems {
		t.Fatalf("got %d predictions, want %d", len(pred), ds.NumItems)
	}
}
