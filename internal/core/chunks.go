package core

// Chunked append-only answer storage. The per-worker and per-item answer
// reference lists are the model's largest state: they grow with the stream,
// and the serving layer snapshots the model once per SVI round, so a deep
// copy per clone makes snapshot publication O(total answers) and a
// long-lived job O(N²/B) in aggregate (ROADMAP perf item).
//
// ansList stores its elements in fixed-capacity chunks with an append-only
// discipline: once written, an element is never mutated, and filled chunks
// are frozen. A clone therefore shares the source's storage structurally —
// copying only slice headers, capacity-clamped so the clone's own appends
// can never write into shared backing — making Clone O(lists), independent
// of the stream length. The source may keep appending after a share: it only
// writes slots at indices the share's headers cannot reach.

// ansChunkCap is the chunk size. Chunks grow organically (append doubling)
// up to this capacity and are then frozen, so short lists pay no
// preallocation and long lists amortise to one frozen chunk per
// ansChunkCap answers.
const ansChunkCap = 64

// ansList is an append-only list of ansRef in chunks: `full` holds frozen
// chunks of exactly ansChunkCap elements, `tail` the growing final chunk.
type ansList struct {
	full [][]ansRef
	tail []ansRef
}

// Len returns the number of stored references.
func (l *ansList) Len() int { return len(l.full)*ansChunkCap + len(l.tail) }

// empty reports whether the list holds no references.
func (l *ansList) empty() bool { return len(l.full) == 0 && len(l.tail) == 0 }

// append adds one reference, freezing the tail chunk when it fills.
func (l *ansList) append(ar ansRef) {
	l.tail = append(l.tail, ar)
	if len(l.tail) == ansChunkCap {
		l.full = append(l.full, l.tail)
		l.tail = nil
	}
}

// reset rebinds the list to empty storage. It must never truncate in place:
// clones may still be reading the old chunks.
func (l *ansList) reset() { l.full, l.tail = nil, nil }

// at returns the k-th reference in append order.
func (l *ansList) at(k int) ansRef {
	if c := k / ansChunkCap; c < len(l.full) {
		return l.full[c][k%ansChunkCap]
	}
	return l.tail[k-len(l.full)*ansChunkCap]
}

// segs returns the number of contiguous segments to iterate; seg returns
// each in order. The idiom for the hot loops is
//
//	for s, n := 0, l.segs(); s < n; s++ {
//	    for _, ar := range l.seg(s) { ... }
//	}
//
// which visits references in exact append order with no closure overhead.
func (l *ansList) segs() int {
	if len(l.tail) == 0 {
		return len(l.full)
	}
	return len(l.full) + 1
}

func (l *ansList) seg(s int) []ansRef {
	if s < len(l.full) {
		return l.full[s]
	}
	return l.tail
}

// each visits every reference in append order — the convenience form for
// cold paths (persistence, dataset loading, seeding).
func (l *ansList) each(fn func(ar ansRef)) {
	for s, n := 0, l.segs(); s < n; s++ {
		for _, ar := range l.seg(s) {
			fn(ar)
		}
	}
}

// shareClone returns a structurally shared copy: frozen chunks and the tail
// are shared by capacity-clamped header copies, so the clone is O(1) and
// immune to the source's future appends (those land in slots beyond the
// clamped headers), while the clone's own appends reallocate instead of
// writing shared backing.
func (l *ansList) shareClone() ansList {
	return ansList{
		full: l.full[:len(l.full):len(l.full)],
		tail: l.tail[:len(l.tail):len(l.tail)],
	}
}
