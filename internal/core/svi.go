package core

import (
	"fmt"
	"math"

	"cpa/internal/answers"
	"cpa/internal/mathx"
)

// FitStream trains the model online (paper §4.1, Algorithm 2): the dataset's
// arrival-ordered answers are consumed once, in mini-batches of
// Config.BatchSize, with natural-gradient updates under the learning rate
// ω_b = (1+b)^{-ForgettingRate}. Revealed truths are registered before
// streaming (test questions are known up front in the paper's setting).
//
// After the stream is consumed, the online-prediction posterior of §4.1 is
// prepared: one local pass refreshes the responsibilities and imputations
// from the final global parameters (no additional training epochs — each
// answer still contributes to the globals exactly once).
func (m *Model) FitStream(ds *answers.Dataset) (*TrainStats, error) {
	if ds == nil || ds.NumAnswers() == 0 {
		return nil, fmt.Errorf("%w: empty dataset", ErrConfig)
	}
	if ds.NumItems != m.numItems || ds.NumWorkers != m.numWorkers || ds.NumLabels != m.numLabels {
		return nil, fmt.Errorf("%w: dataset dims %d/%d/%d do not match model %d/%d/%d", ErrConfig,
			ds.NumItems, ds.NumWorkers, ds.NumLabels, m.numItems, m.numWorkers, m.numLabels)
	}
	for i := 0; i < m.numItems; i++ {
		if truth, ok := ds.Revealed(i); ok {
			m.revealedTruth[i] = truth.Slice()
		}
	}
	stats := &TrainStats{}
	for _, b := range ds.Batches(m.cfg.BatchSize) {
		if err := m.PartialFit(b.Answers); err != nil {
			return nil, err
		}
		stats.Iterations++
		stats.Deltas = append(stats.Deltas, m.lastBatchDelta)
	}
	m.FinalizeOnline()
	return stats, nil
}

// PartialFit performs one stochastic variational inference step on a batch
// of newly arrived answers (paper Algorithm 2). The model accumulates the
// answers (needed for prediction and for scaling the stochastic gradients)
// but every update in this call costs O(batch), not O(data): local
// responsibilities move along batch-only evidence with the canonical
// geometric blend, and global parameters along the scaled natural gradient.
func (m *Model) PartialFit(batch []answers.Answer) error {
	if len(batch) == 0 {
		return nil
	}
	// Validate and ingest, tracking the touched workers and items.
	batchByWorker := make(map[int][]ansRef)
	batchByItem := make(map[int][]ansRef)
	for _, a := range batch {
		if a.Item < 0 || a.Item >= m.numItems || a.Worker < 0 || a.Worker >= m.numWorkers {
			return fmt.Errorf("%w: answer (%d,%d) out of range", ErrConfig, a.Item, a.Worker)
		}
		if a.Labels.IsEmpty() {
			return fmt.Errorf("%w: empty answer for item %d worker %d", ErrConfig, a.Item, a.Worker)
		}
		if mx := a.Labels.Max(); mx >= m.numLabels {
			return fmt.Errorf("%w: label %d out of range", ErrConfig, mx)
		}
		m.ingest(a)
		xs := a.Labels.Slice()
		batchByWorker[a.Worker] = append(batchByWorker[a.Worker], ansRef{other: a.Item, labels: xs})
		batchByItem[a.Item] = append(batchByItem[a.Item], ansRef{other: a.Worker, labels: xs})
	}
	workers := sortedKeys(batchByWorker)
	items := sortedKeys(batchByItem)
	m.extendVoted(items)

	// Learning rate ω_b = (1+b)^{-r}.
	m.batchIndex++
	omega := math.Pow(1+float64(m.batchIndex), -m.cfg.ForgettingRate)

	// Local step, workers: stochastic Eq. 2 from batch evidence, scaled to
	// the worker's full answer volume, geometric blend with weight ω
	// (first-touch rows take the fresh estimate directly). The per-worker
	// and per-item loops run on the Algorithm 3 map shards — each writes
	// only its own responsibility row.
	shardDeltas := make([]float64, m.shardCount(len(workers))+m.shardCount(len(items)))
	if !m.cfg.DisableCommunities {
		m.parallelForShards(len(workers), m.shardCount(len(workers)), func(shard, lo, hi int) {
			fresh := make([]float64, m.M)
			old := make([]float64, m.M)
			maxD := 0.0
			for wi := lo; wi < hi; wi++ {
				u := workers[wi]
				refs := batchByWorker[u]
				scale := float64(len(m.perWorker[u])) / float64(len(refs))
				m.stochasticKappa(u, refs, scale, fresh)
				row := m.kappa[u*m.M : (u+1)*m.M]
				copy(old, row)
				first := len(m.perWorker[u]) == len(refs)
				blendRows(row, fresh, omega, first)
				if d := mathx.MaxAbsDiff(old, row); d > maxD {
					maxD = d
				}
			}
			shardDeltas[shard] = maxD
		})
	}
	// Imputed truth for the touched items under the current worker model.
	m.imputeTruth(items)
	// Local step, items: stochastic cluster responsibilities, same blending
	// (the paper's µ-space natural gradient, Eqs. 15–17, 20).
	if !m.cfg.DisableClusters {
		off := m.shardCount(len(workers))
		m.parallelForShards(len(items), m.shardCount(len(items)), func(shard, lo, hi int) {
			fresh := make([]float64, m.T)
			old := make([]float64, m.T)
			maxD := 0.0
			for ii := lo; ii < hi; ii++ {
				i := items[ii]
				refs := batchByItem[i]
				scale := float64(len(m.perItem[i])) / float64(len(refs))
				m.stochasticPhi(i, refs, scale, fresh)
				row := m.phi[i*m.T : (i+1)*m.T]
				copy(old, row)
				first := len(m.perItem[i]) == len(refs)
				blendRows(row, fresh, omega, first)
				if d := mathx.MaxAbsDiff(old, row); d > maxD {
					maxD = d
				}
			}
			shardDeltas[off+shard] = maxD
		})
	}
	maxDelta := 0.0
	for _, d := range shardDeltas {
		if d > maxDelta {
			maxDelta = d
		}
	}

	// Global step: natural-gradient targets from the batch scaled to the
	// population seen so far, blended with weight ω (Eqs. 9–14, 18–19).
	m.sviGlobalStep(batch, items, workers, omega)
	// Worker-model statistics from the batch, blended into the running
	// accumulators (ratios are scale-free, so raw batch counts suffice).
	m.sviWorkerModelStep(items, omega)
	m.refreshExpectations()
	m.lastBatchDelta = maxDelta
	m.fitted = true
	m.streamFitted = true
	return nil
}

// FinalizeOnline prepares the online-prediction posterior (§4.1): one local
// pass over the stored answers recomputes the responsibilities from the
// final global parameters, then the worker-model/imputation fixed point is
// iterated a few times (each a cheap O(answers) pass — no further global
// training). Safe to call repeatedly; a no-op before any PartialFit.
func (m *Model) FinalizeOnline() {
	if !m.streamFitted {
		return
	}
	m.temp = 1
	m.updateLocal()
	for pass := 0; pass < 3; pass++ {
		m.updateReliability()
		m.imputeTruth(nil)
	}
}

// stochasticKappa computes a fresh κ row for worker u from only its batch
// answers, with the data term scaled to the worker's full volume.
func (m *Model) stochasticKappa(u int, refs []ansRef, scale float64, dst []float64) {
	M, T := m.M, m.T
	copy(dst, m.elogPi)
	for _, ar := range refs {
		phiRow := m.phi[ar.other*T : (ar.other+1)*T]
		for t := 0; t < T; t++ {
			pt := phiRow[t]
			if pt < 1e-8 {
				continue
			}
			for mm := 0; mm < M; mm++ {
				dst[mm] += scale * pt * m.answerScore(t, mm, ar.labels)
			}
		}
	}
	mathx.SoftmaxInPlace(dst)
}

// stochasticPhi computes a fresh ϕ row for item i from its batch answers
// (scaled) plus the truth-emission term, mirroring updatePhiRow.
func (m *Model) stochasticPhi(i int, refs []ansRef, scale float64, dst []float64) {
	M, T, C := m.M, m.T, m.numLabels
	copy(dst, m.elogTau)
	if truth := m.revealedTruth[i]; truth != nil {
		for t := 0; t < T; t++ {
			s := 0.0
			for _, c := range truth {
				s += m.elogPhi[t*C+c]
			}
			dst[t] += s
		}
	} else if !m.cfg.GroundTruthOnly {
		voted := m.votedList[i]
		vals := m.yhatVals[i]
		for t := 0; t < T; t++ {
			s := 0.0
			for k, c := range voted {
				if v := vals[k]; v > 1e-8 {
					s += v * m.elogPhi[t*C+c]
				}
			}
			dst[t] += s
		}
	}
	if !m.cfg.LiteralPhiUpdate {
		for _, ar := range refs {
			kappaRow := m.kappa[ar.other*M : (ar.other+1)*M]
			for t := 0; t < T; t++ {
				s := 0.0
				for mm := 0; mm < M; mm++ {
					km := kappaRow[mm]
					if km < 1e-8 {
						continue
					}
					s += km * m.answerScore(t, mm, ar.labels)
				}
				dst[t] += scale * s
			}
		}
	}
	mathx.SoftmaxInPlace(dst)
}

// blendRows overwrites row with the geometric blend row^(1−ω)·fresh^ω
// (normalised), or with fresh directly on first touch.
func blendRows(row, fresh []float64, omega float64, first bool) {
	if first {
		copy(row, fresh)
		return
	}
	for j := range row {
		row[j] = math.Pow(math.Max(row[j], 1e-12), 1-omega) *
			math.Pow(math.Max(fresh[j], 1e-12), omega)
	}
	mathx.NormalizeInPlace(row)
}

// sviGlobalStep forms the intermediate estimates λ̂, ζ̂, ρ̂, υ̂ that the
// batch's sufficient statistics would imply if the whole stream looked like
// this batch (scale factors N/|batch|), then blends them into the current
// parameters with the learning rate: θ ← (1−ω)θ + ω·θ̂. This is the
// canonical SVI step of Hoffman et al. and coincides with the paper's
// natural-gradient Eqs. (9)–(14) aggregated per Eqs. (18)–(19).
func (m *Model) sviGlobalStep(batch []answers.Answer, items, workers []int, omega float64) {
	M, T, C := m.M, m.T, m.numLabels

	// --- λ̂ from the batch answers (Eq. 9 / 18).
	scaleA := float64(m.numAns) / float64(len(batch))
	lhat := m.lambdaScratch(1, T*M*C)[0]
	for k := range lhat {
		lhat[k] = 0
	}
	var buf []int
	for _, a := range batch {
		xs := a.Labels.AppendTo(buf[:0])
		buf = xs
		phiRow := m.phi[a.Item*T : (a.Item+1)*T]
		kappaRow := m.kappa[a.Worker*M : (a.Worker+1)*M]
		for t := 0; t < T; t++ {
			pt := phiRow[t]
			if pt < 1e-8 {
				continue
			}
			for mm := 0; mm < M; mm++ {
				w := pt * kappaRow[mm]
				if w < 1e-10 {
					continue
				}
				base := (t*M + mm) * C
				for _, c := range xs {
					lhat[base+c] += w
				}
			}
		}
	}
	for k := range m.lambda {
		target := m.cfg.GammaPrior + scaleA*lhat[k]
		m.lambda[k] = (1-omega)*m.lambda[k] + omega*target
	}

	// --- ζ̂ from the batch items' (imputed) truth (Eq. 10 / 18).
	seenItems := 0
	for i := 0; i < m.numItems; i++ {
		if len(m.perItem[i]) > 0 {
			seenItems++
		}
	}
	scaleI := float64(seenItems) / float64(len(items))
	zhat := make([]float64, T*C)
	for _, i := range items {
		phiRow := m.phi[i*T : (i+1)*T]
		truth := m.revealedTruth[i]
		if truth == nil && m.cfg.GroundTruthOnly {
			continue
		}
		for t := 0; t < T; t++ {
			pt := phiRow[t]
			if pt < 1e-8 {
				continue
			}
			base := t * C
			if truth != nil {
				for _, c := range truth {
					zhat[base+c] += pt
				}
				continue
			}
			for k, c := range m.votedList[i] {
				if v := m.yhatVals[i][k]; v > 1e-8 {
					zhat[base+c] += pt * v
				}
			}
		}
	}
	for k := range m.zeta {
		target := m.cfg.EtaPrior + scaleI*zhat[k]
		m.zeta[k] = (1-omega)*m.zeta[k] + omega*target
	}

	// --- ρ̂ from the batch workers (Eqs. 11–12 / 19).
	if M > 1 && !m.cfg.DisableCommunities {
		seenWorkers := 0
		for u := 0; u < m.numWorkers; u++ {
			if len(m.perWorker[u]) > 0 {
				seenWorkers++
			}
		}
		scaleU := float64(seenWorkers) / float64(len(workers))
		colSum := make([]float64, M)
		for _, u := range workers {
			for mm := 0; mm < M; mm++ {
				colSum[mm] += m.kappa[u*M+mm]
			}
		}
		suffix := 0.0
		for mm := M - 1; mm >= 0; mm-- {
			if mm < M-1 {
				r1 := 1 + scaleU*colSum[mm]
				r2 := m.cfg.Alpha + scaleU*suffix
				m.rho1[mm] = (1-omega)*m.rho1[mm] + omega*r1
				m.rho2[mm] = (1-omega)*m.rho2[mm] + omega*r2
			}
			suffix += colSum[mm]
		}
	}

	// --- υ̂ from the batch items (Eqs. 13–14 / 19).
	if T > 1 && !m.cfg.DisableClusters {
		colSum := make([]float64, T)
		for _, i := range items {
			for t := 0; t < T; t++ {
				colSum[t] += m.phi[i*T+t]
			}
		}
		suffix := 0.0
		for t := T - 1; t >= 0; t-- {
			if t < T-1 {
				u1 := 1 + scaleI*colSum[t]
				u2 := m.cfg.Epsilon + scaleI*suffix
				m.ups1[t] = (1-omega)*m.ups1[t] + omega*u1
				m.ups2[t] = (1-omega)*m.ups2[t] + omega*u2
			}
			suffix += colSum[t]
		}
	}
}

// sviWorkerModelStep updates the community two-coin rates and reliabilities
// from the batch items only, blending batch counts into running accumulators
// with weight ω (the rates are ratios, so no population scaling is needed).
func (m *Model) sviWorkerModelStep(items []int, omega float64) {
	M := m.M
	if m.runTP == nil {
		m.runTP = make([]float64, M)
		m.runTPD = make([]float64, M)
		m.runFP = make([]float64, M)
		m.runFPD = make([]float64, M)
		m.runAgree = make([]float64, M)
		m.runAgreeD = make([]float64, M)
		m.runPrevN = make([]float64, m.numLabels)
		m.runPrevD = make([]float64, m.numLabels)
	}
	tpNum := make([]float64, M)
	tpDen := make([]float64, M)
	fpNum := make([]float64, M)
	fpDen := make([]float64, M)
	agreeNum := make([]float64, M)
	agreeDen := make([]float64, M)
	prevNum := make([]float64, m.numLabels)
	prevDen := make([]float64, m.numLabels)

	member := make(map[int]bool)
	for _, i := range items {
		voted := m.votedList[i]
		vals := m.yhatVals[i]
		for k, c := range voted {
			prevNum[c] += vals[k]
			prevDen[c]++
		}
		for k := range member {
			delete(member, k)
		}
		bestK, bestV := -1, 0.0
		sigLen := 0
		for k, c := range voted {
			if vals[k] > 0.5 {
				member[c] = true
				sigLen++
			}
			if vals[k] > bestV {
				bestK, bestV = k, vals[k]
			}
		}
		if sigLen == 0 && bestK >= 0 {
			member[voted[bestK]] = true
			sigLen = 1
		}
		for _, ar := range m.perItem[i] {
			u := ar.other
			inter := 0
			for _, c := range ar.labels {
				if member[c] {
					inter++
				}
			}
			union := len(ar.labels) + sigLen - inter
			agreement := 1.0
			if union > 0 {
				agreement = float64(inter) / float64(union)
			}
			for _, c := range voted {
				pos := member[c]
				j := searchInts(ar.labels, c)
				vote := j < len(ar.labels) && ar.labels[j] == c
				// Per-worker counts accumulate across the stream (each
				// answer contributes once).
				if pos {
					m.tpDenU[u]++
					if vote {
						m.tpNumU[u]++
					}
				} else {
					m.fpDenU[u]++
					if vote {
						m.fpNumU[u]++
					}
				}
				for mm := 0; mm < M; mm++ {
					k := m.kappa[u*M+mm]
					if k < 1e-8 {
						continue
					}
					if pos {
						tpDen[mm] += k
						if vote {
							tpNum[mm] += k
						}
					} else {
						fpDen[mm] += k
						if vote {
							fpNum[mm] += k
						}
					}
				}
			}
			for mm := 0; mm < M; mm++ {
				k := m.kappa[u*M+mm]
				if k < 1e-8 {
					continue
				}
				agreeNum[mm] += k * agreement
				agreeDen[mm] += k
			}
		}
	}
	for mm := 0; mm < M; mm++ {
		m.runTP[mm] = (1-omega)*m.runTP[mm] + omega*tpNum[mm]
		m.runTPD[mm] = (1-omega)*m.runTPD[mm] + omega*tpDen[mm]
		m.runFP[mm] = (1-omega)*m.runFP[mm] + omega*fpNum[mm]
		m.runFPD[mm] = (1-omega)*m.runFPD[mm] + omega*fpDen[mm]
		m.runAgree[mm] = (1-omega)*m.runAgree[mm] + omega*agreeNum[mm]
		m.runAgreeD[mm] = (1-omega)*m.runAgreeD[mm] + omega*agreeDen[mm]
	}
	for c := 0; c < m.numLabels; c++ {
		m.runPrevN[c] = (1-omega)*m.runPrevN[c] + omega*prevNum[c]
		m.runPrevD[c] = (1-omega)*m.runPrevD[c] + omega*prevDen[c]
		m.labelPrev[c] = (m.runPrevN[c] + 0.5) / (m.runPrevD[c] + 2)
	}
	m.deriveWorkerModel(m.runTP, m.runTPD, m.runFP, m.runFPD, m.runAgree, m.runAgreeD)
}

func sortedKeys[V any](set map[int]V) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sortInts(out)
	return out
}

// sortInts is an insertion sort adequate for the short per-batch key lists;
// it avoids pulling package sort into a hot path with interface conversions.
func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// extendVoted merges newly voted labels of the given items into the
// voted-label lists, preserving existing imputed values.
func (m *Model) extendVoted(items []int) {
	for _, i := range items {
		need := map[int]bool{}
		for _, c := range m.votedList[i] {
			need[c] = false
		}
		for _, ar := range m.perItem[i] {
			for _, c := range ar.labels {
				if _, ok := need[c]; !ok {
					need[c] = true
				}
			}
		}
		for _, c := range m.revealedTruth[i] {
			if _, ok := need[c]; !ok {
				need[c] = true
			}
		}
		added := false
		for _, isNew := range need {
			if isNew {
				added = true
				break
			}
		}
		if !added {
			continue
		}
		old := m.votedList[i]
		oldVals := m.yhatVals[i]
		merged := make([]int, 0, len(need))
		for c := range need {
			merged = append(merged, c)
		}
		sortInts(merged)
		vals := make([]float64, len(merged))
		for k, c := range merged {
			if j := searchInts(old, c); j < len(old) && old[j] == c {
				vals[k] = oldVals[j]
			}
		}
		m.votedList[i] = merged
		m.yhatVals[i] = vals
	}
}
