package core

import (
	"fmt"
	"math"
	"sort"

	"cpa/internal/answers"
	"cpa/internal/mat"
	"cpa/internal/mathx"
)

// FitStream trains the model online (paper §4.1, Algorithm 2): the dataset's
// arrival-ordered answers are consumed once, in mini-batches of
// Config.BatchSize, with natural-gradient updates under the learning rate
// ω_b = (1+b)^{-ForgettingRate}. Revealed truths are registered before
// streaming (test questions are known up front in the paper's setting).
//
// After the stream is consumed, the online-prediction posterior of §4.1 is
// prepared: one local pass refreshes the responsibilities and imputations
// from the final global parameters (no additional training epochs — each
// answer still contributes to the globals exactly once).
func (m *Model) FitStream(ds *answers.Dataset) (*TrainStats, error) {
	if ds == nil || ds.NumAnswers() == 0 {
		return nil, fmt.Errorf("%w: empty dataset", ErrConfig)
	}
	if ds.NumItems != m.numItems || ds.NumWorkers != m.numWorkers || ds.NumLabels != m.numLabels {
		return nil, fmt.Errorf("%w: dataset dims %d/%d/%d do not match model %d/%d/%d", ErrConfig,
			ds.NumItems, ds.NumWorkers, ds.NumLabels, m.numItems, m.numWorkers, m.numLabels)
	}
	for i := 0; i < m.numItems; i++ {
		if truth, ok := ds.Revealed(i); ok {
			m.revealedTruth[i] = truth.Slice()
		}
	}
	stats := &TrainStats{}
	for _, b := range ds.Batches(m.cfg.BatchSize) {
		if err := m.PartialFit(b.Answers); err != nil {
			return nil, err
		}
		stats.Iterations++
		stats.Deltas = append(stats.Deltas, m.lastBatchDelta)
	}
	m.FinalizeOnline()
	return stats, nil
}

// PartialFit performs one stochastic variational inference step on a batch
// of newly arrived answers (paper Algorithm 2). The model accumulates the
// answers (needed for prediction and for scaling the stochastic gradients)
// but every update in this call costs O(batch), not O(data): local
// responsibilities move along batch-only evidence with the canonical
// geometric blend, and global parameters along the scaled natural gradient.
// Every score, suffstat, and blending kernel is shared with the batch path
// (see kernels.go); Algorithm 2 differs from Algorithm 1 only in the answer
// subsets, population scaling, and the learning rate ω.
func (m *Model) PartialFit(batch []answers.Answer) error {
	if len(batch) == 0 {
		return nil
	}
	// Validate and ingest, tracking the touched workers and items.
	batchByWorker := make(map[int][]ansRef)
	batchByItem := make(map[int][]ansRef)
	for _, a := range batch {
		if a.Item < 0 || a.Item >= m.numItems || a.Worker < 0 || a.Worker >= m.numWorkers {
			return fmt.Errorf("%w: answer (%d,%d) out of range", ErrConfig, a.Item, a.Worker)
		}
		if a.Labels.IsEmpty() {
			return fmt.Errorf("%w: empty answer for item %d worker %d", ErrConfig, a.Item, a.Worker)
		}
		if mx := a.Labels.Max(); mx >= m.numLabels {
			return fmt.Errorf("%w: label %d out of range", ErrConfig, mx)
		}
		m.ingest(a)
		xs := a.Labels.Slice()
		batchByWorker[a.Worker] = append(batchByWorker[a.Worker], ansRef{other: a.Item, labels: xs})
		batchByItem[a.Item] = append(batchByItem[a.Item], ansRef{other: a.Worker, labels: xs})
	}
	workers := sortedKeys(batchByWorker)
	items := sortedKeys(batchByItem)
	m.extendVoted(items)
	// Record the touched items for the incremental snapshot publisher
	// (publish.go): dirty items accumulate until the next takeDirtySorted.
	for _, i := range items {
		if !m.dirtyFlags[i] {
			m.dirtyFlags[i] = true
			m.dirtyItems = append(m.dirtyItems, i)
		}
	}

	// Learning rate ω_b = (1+b)^{-r}.
	m.batchIndex++
	omega := math.Pow(1+float64(m.batchIndex), -m.cfg.ForgettingRate)

	// Local step, workers: stochastic Eq. 2 from batch evidence, scaled to
	// the worker's full answer volume, geometric blend with weight ω
	// (first-touch rows take the fresh estimate directly). The per-worker
	// and per-item loops run on the Algorithm 3 map shards — each writes
	// only its own responsibility row.
	shardDeltas := make([]float64, m.shardCount(len(workers))+m.shardCount(len(items)))
	if !m.cfg.DisableCommunities {
		mat.ParallelFor(len(workers), m.shardCount(len(workers)), func(shard, lo, hi int) {
			fresh := make([]float64, m.M)
			old := make([]float64, m.M)
			maxD := 0.0
			for wi := lo; wi < hi; wi++ {
				u := workers[wi]
				refs := batchByWorker[u]
				scale := float64(m.perWorker[u].Len()) / float64(len(refs))
				m.scoreKappaBatch(refs, scale, fresh)
				mathx.SoftmaxInPlace(fresh)
				row := m.kappa.Row(u)
				copy(old, row)
				first := m.perWorker[u].Len() == len(refs)
				blendRows(row, fresh, omega, first)
				if d := mathx.MaxAbsDiff(old, row); d > maxD {
					maxD = d
				}
			}
			shardDeltas[shard] = maxD
		})
	}
	// Imputed truth for the touched items under the current worker model.
	m.imputeTruth(items)
	// Local step, items: stochastic cluster responsibilities, same blending
	// (the paper's µ-space natural gradient, Eqs. 15–17, 20).
	if !m.cfg.DisableClusters {
		off := m.shardCount(len(workers))
		mat.ParallelFor(len(items), m.shardCount(len(items)), func(shard, lo, hi int) {
			fresh := make([]float64, m.T)
			old := make([]float64, m.T)
			maxD := 0.0
			for ii := lo; ii < hi; ii++ {
				i := items[ii]
				refs := batchByItem[i]
				scale := float64(m.perItem[i].Len()) / float64(len(refs))
				m.scorePhiBatch(i, refs, scale, fresh)
				mathx.SoftmaxInPlace(fresh)
				row := m.phi.Row(i)
				copy(old, row)
				first := m.perItem[i].Len() == len(refs)
				blendRows(row, fresh, omega, first)
				if d := mathx.MaxAbsDiff(old, row); d > maxD {
					maxD = d
				}
			}
			shardDeltas[off+shard] = maxD
		})
	}
	maxDelta := 0.0
	for _, d := range shardDeltas {
		if d > maxDelta {
			maxDelta = d
		}
	}

	// Global step: natural-gradient targets from the batch scaled to the
	// population seen so far, blended with weight ω (Eqs. 9–14, 18–19).
	m.sviGlobalStep(batch, items, workers, omega)
	// Worker-model statistics from the batch, blended into the running
	// accumulators (ratios are scale-free, so raw batch counts suffice).
	m.sviWorkerModelStep(items, omega)
	m.refreshExpectations()
	m.lastBatchDelta = maxDelta
	m.fitted = true
	m.streamFitted = true
	return nil
}

// FinalizeOnline prepares the online-prediction posterior (§4.1): one local
// pass over the stored answers recomputes the responsibilities from the
// final global parameters, then the worker-model/imputation fixed point is
// iterated a few times (each a cheap O(answers) pass — no further global
// training). Safe to call repeatedly; a no-op before any PartialFit.
func (m *Model) FinalizeOnline() {
	if !m.streamFitted {
		return
	}
	m.temp = 1
	m.updateLocal()
	for pass := 0; pass < 3; pass++ {
		m.updateReliability()
		m.imputeTruth(nil)
	}
}

// blendRows overwrites row with the geometric blend row^(1−ω)·fresh^ω
// (normalised), or with fresh directly on first touch.
func blendRows(row, fresh []float64, omega float64, first bool) {
	if first {
		copy(row, fresh)
		return
	}
	for j := range row {
		row[j] = math.Pow(math.Max(row[j], 1e-12), 1-omega) *
			math.Pow(math.Max(fresh[j], 1e-12), omega)
	}
	mathx.NormalizeInPlace(row)
}

// sviGlobalStep forms the intermediate estimates λ̂, ζ̂, ρ̂, υ̂ that the
// batch's sufficient statistics would imply if the whole stream looked like
// this batch (scale factors N/|batch|), then blends them into the current
// parameters with the learning rate: θ ← (1−ω)θ + ω·θ̂. This is the
// canonical SVI step of Hoffman et al. and coincides with the paper's
// natural-gradient Eqs. (9)–(14) aggregated per Eqs. (18)–(19). The
// suffstat and blending kernels are exactly the batch ones (kernels.go)
// with scale ≠ 1 and ω < 1.
func (m *Model) sviGlobalStep(batch []answers.Answer, items, workers []int, omega float64) {
	M, T := m.M, m.T

	// --- λ̂ from the batch answers (Eq. 9 / 18).
	scaleA := float64(m.numAns) / float64(len(batch))
	lhat := m.ws.lambdaSuff
	mat.Fill(lhat, 0)
	var buf []int
	for _, a := range batch {
		xs := a.Labels.AppendTo(buf[:0])
		buf = xs
		m.lambdaAnswerStat(lhat, a.Item, a.Worker, xs)
	}
	applyDirichlet(m.lambda.Data(), lhat, m.cfg.GammaPrior, scaleA, omega)

	// --- ζ̂ from the batch items' (imputed) truth (Eq. 10 / 18).
	scaleI := float64(m.seenItems) / float64(len(items))
	zhat := m.ws.zetaSuff
	mat.Fill(zhat, 0)
	for _, i := range items {
		m.zetaItemStat(zhat, i)
	}
	applyDirichlet(m.zeta.Data(), zhat, m.cfg.EtaPrior, scaleI, omega)

	// --- ρ̂ from the batch workers (Eqs. 11–12 / 19).
	if M > 1 && !m.cfg.DisableCommunities {
		scaleU := float64(m.seenWorkers) / float64(len(workers))
		colSum := m.ws.colSumM
		mat.Fill(colSum, 0)
		m.kappa.ColSumsInto(colSum, workers)
		applySticks(m.rho1, m.rho2, colSum, m.cfg.Alpha, scaleU, omega)
	}

	// --- υ̂ from the batch items (Eqs. 13–14 / 19).
	if T > 1 && !m.cfg.DisableClusters {
		colSum := m.ws.colSumT
		mat.Fill(colSum, 0)
		m.phi.ColSumsInto(colSum, items)
		applySticks(m.ups1, m.ups2, colSum, m.cfg.Epsilon, scaleI, omega)
	}
}

// sviWorkerModelStep updates the community two-coin rates and reliabilities
// from the batch items only, through the same per-item counting kernels as
// the batch pass, blending the batch's community counts into running
// accumulators with weight ω (the rates are ratios, so no population
// scaling is needed). Per-worker raw counts accumulate across the stream —
// each answer contributes once. Agreement is κ-weighted per answer (the
// stream never revisits a worker's history, so per-worker means are
// unavailable; see workerAgreeStats for the batch weighting).
func (m *Model) sviWorkerModelStep(items []int, omega float64) {
	M, C, U := m.M, m.numLabels, m.numWorkers
	if m.runTP == nil {
		m.runTP = make([]float64, M)
		m.runTPD = make([]float64, M)
		m.runFP = make([]float64, M)
		m.runFPD = make([]float64, M)
		m.runAgree = make([]float64, M)
		m.runAgreeD = make([]float64, M)
		m.runPrevN = make([]float64, C)
		m.runPrevD = make([]float64, C)
	}
	m.refreshHardSig(items)
	coins := m.ws.coinStats
	mat.Fill(coins, 0)
	agree := m.ws.agreeStats
	mat.Fill(agree, 0)
	for _, i := range items {
		m.itemCoinStats(i, coins)
		m.itemAgreeStats(i, agree)
	}
	offTP, offTPD, offFP, offFPD, offPrevN, offPrevD, offTPU, offTPDU, offFPU, offFPDU := m.coinOffsets()
	for u := 0; u < U; u++ {
		m.tpNumU[u] += coins[offTPU+u]
		m.tpDenU[u] += coins[offTPDU+u]
		m.fpNumU[u] += coins[offFPU+u]
		m.fpDenU[u] += coins[offFPDU+u]
	}
	for mm := 0; mm < M; mm++ {
		m.runTP[mm] = (1-omega)*m.runTP[mm] + omega*coins[offTP+mm]
		m.runTPD[mm] = (1-omega)*m.runTPD[mm] + omega*coins[offTPD+mm]
		m.runFP[mm] = (1-omega)*m.runFP[mm] + omega*coins[offFP+mm]
		m.runFPD[mm] = (1-omega)*m.runFPD[mm] + omega*coins[offFPD+mm]
		m.runAgree[mm] = (1-omega)*m.runAgree[mm] + omega*agree[mm]
		m.runAgreeD[mm] = (1-omega)*m.runAgreeD[mm] + omega*agree[M+mm]
	}
	for c := 0; c < C; c++ {
		m.runPrevN[c] = (1-omega)*m.runPrevN[c] + omega*coins[offPrevN+c]
		m.runPrevD[c] = (1-omega)*m.runPrevD[c] + omega*coins[offPrevD+c]
		m.labelPrev[c] = (m.runPrevN[c] + 0.5) / (m.runPrevD[c] + 2)
	}
	m.deriveWorkerModel(m.runTP, m.runTPD, m.runFP, m.runFPD, m.runAgree, m.runAgreeD)
}

func sortedKeys[V any](set map[int]V) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sortInts(out)
	return out
}

// sortInts is an insertion sort adequate for the short per-batch key lists;
// it avoids pulling package sort into a hot path with interface conversions.
func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// extendVoted merges newly voted labels of the given items into the
// voted-label lists, preserving existing imputed values.
func (m *Model) extendVoted(items []int) {
	for _, i := range items {
		need := map[int]bool{}
		for _, c := range m.votedList[i] {
			need[c] = false
		}
		m.perItem[i].each(func(ar ansRef) {
			for _, c := range ar.labels {
				if _, ok := need[c]; !ok {
					need[c] = true
				}
			}
		})
		for _, c := range m.revealedTruth[i] {
			if _, ok := need[c]; !ok {
				need[c] = true
			}
		}
		added := false
		for _, isNew := range need {
			if isNew {
				added = true
				break
			}
		}
		if !added {
			continue
		}
		old := m.votedList[i]
		oldVals := m.yhatVals[i]
		merged := make([]int, 0, len(need))
		for c := range need {
			merged = append(merged, c)
		}
		sortInts(merged)
		vals := make([]float64, len(merged))
		for k, c := range merged {
			if j := sort.SearchInts(old, c); j < len(old) && old[j] == c {
				vals[k] = oldVals[j]
			}
		}
		m.votedList[i] = merged
		m.yhatVals[i] = vals
	}
}
