package core

import (
	"fmt"
	"math"

	"cpa/internal/answers"
	"cpa/internal/mat"
	"cpa/internal/mathx"
)

// FitStream trains the model online (paper §4.1, Algorithm 2): the dataset's
// arrival-ordered answers are consumed once, in mini-batches of
// Config.BatchSize, with natural-gradient updates under the learning rate
// ω_b = (1+b)^{-ForgettingRate}. Revealed truths are registered before
// streaming (test questions are known up front in the paper's setting).
//
// After the stream is consumed, the online-prediction posterior of §4.1 is
// prepared: one local pass refreshes the responsibilities and imputations
// from the final global parameters (no additional training epochs — each
// answer still contributes to the globals exactly once).
func (m *Model) FitStream(ds *answers.Dataset) (*TrainStats, error) {
	if ds == nil || ds.NumAnswers() == 0 {
		return nil, fmt.Errorf("%w: empty dataset", ErrConfig)
	}
	if ds.NumItems != m.numItems || ds.NumWorkers != m.numWorkers || ds.NumLabels != m.numLabels {
		return nil, fmt.Errorf("%w: dataset dims %d/%d/%d do not match model %d/%d/%d", ErrConfig,
			ds.NumItems, ds.NumWorkers, ds.NumLabels, m.numItems, m.numWorkers, m.numLabels)
	}
	for i := 0; i < m.numItems; i++ {
		if truth, ok := ds.Revealed(i); ok {
			m.revealedTruth[i] = truth.Slice()
		}
	}
	stats := &TrainStats{}
	for _, b := range ds.Batches(m.cfg.BatchSize) {
		if err := m.PartialFit(b.Answers); err != nil {
			return nil, err
		}
		stats.Iterations++
		stats.Deltas = append(stats.Deltas, m.lastBatchDelta)
	}
	m.FinalizeOnline()
	return stats, nil
}

// batchAns is one validated, ingested answer of the current PartialFit
// round: dense ids plus the interned label set.
type batchAns struct {
	item, worker int
	set          int32
}

// batchGroups buckets a round's answers by key (worker or item) without a
// map: keys are collected and insertion-sorted, offsets built by counting,
// refs placed grouped-contiguously with batch order preserved inside each
// key — exactly the iteration order the per-key map-append used to produce.
// All storage is reused across rounds.
type batchGroups struct {
	keys []int
	off  []int32
	refs []ansRef
}

// group rebuilds the grouping from the round's answers. count must be a
// zeroed array indexable by every key; it is restored to zero before
// returning, touching only the round's keys.
func (g *batchGroups) group(tuples []batchAns, byWorker bool, count []int32) {
	g.keys = g.keys[:0]
	for _, t := range tuples {
		k := t.item
		if byWorker {
			k = t.worker
		}
		if count[k] == 0 {
			g.keys = append(g.keys, k)
		}
		count[k]++
	}
	sortInts(g.keys)
	if cap(g.off) < len(g.keys)+1 {
		g.off = make([]int32, len(g.keys)+1)
	}
	g.off = g.off[:len(g.keys)+1]
	g.off[0] = 0
	for j, k := range g.keys {
		g.off[j+1] = g.off[j] + count[k]
		count[k] = g.off[j] // becomes the write cursor for the placement pass
	}
	if cap(g.refs) < len(tuples) {
		g.refs = make([]ansRef, len(tuples))
	}
	g.refs = g.refs[:len(tuples)]
	for _, t := range tuples {
		k, other := t.item, t.worker
		if byWorker {
			k, other = t.worker, t.item
		}
		g.refs[count[k]] = ansRef{other: other, set: t.set}
		count[k]++
	}
	for _, k := range g.keys {
		count[k] = 0
	}
}

// seg returns the grouped refs of the j-th key.
func (g *batchGroups) seg(j int) []ansRef { return g.refs[g.off[j]:g.off[j+1]] }

// PartialFit performs one stochastic variational inference step on a batch
// of newly arrived answers (paper Algorithm 2). The model accumulates the
// answers (needed for prediction and for scaling the stochastic gradients)
// but every update in this call costs O(batch), not O(data): local
// responsibilities move along batch-only evidence with the canonical
// geometric blend, and global parameters along the scaled natural gradient.
// Every score, suffstat, and blending kernel is shared with the batch path
// (see kernels.go); Algorithm 2 differs from Algorithm 1 only in the answer
// subsets, population scaling, and the learning rate ω. Steady-state rounds
// allocate only for genuine state growth (answer chunks, new label sets):
// grouping, blending, and reduction scratch live in workScratch.
func (m *Model) PartialFit(batch []answers.Answer) error {
	if len(batch) == 0 {
		return nil
	}
	ws := &m.ws
	// Validate and ingest, interning each answer's label set.
	tuples := ws.batchAns[:0]
	for _, a := range batch {
		if a.Item < 0 || a.Item >= m.numItems || a.Worker < 0 || a.Worker >= m.numWorkers {
			return fmt.Errorf("%w: answer (%d,%d) out of range", ErrConfig, a.Item, a.Worker)
		}
		if a.Labels.IsEmpty() {
			return fmt.Errorf("%w: empty answer for item %d worker %d", ErrConfig, a.Item, a.Worker)
		}
		if mx := a.Labels.Max(); mx >= m.numLabels {
			return fmt.Errorf("%w: label %d out of range", ErrConfig, mx)
		}
		id := m.ingest(a)
		tuples = append(tuples, batchAns{item: a.Item, worker: a.Worker, set: id})
	}
	ws.batchAns = tuples
	ws.gWorkers.group(tuples, true, ws.groupCount)
	ws.gItems.group(tuples, false, ws.groupCount)
	workers, items := ws.gWorkers.keys, ws.gItems.keys
	m.extendVoted(&ws.gItems)
	// Record the touched items for the incremental snapshot publisher
	// (publish.go): dirty items accumulate until the next takeDirtySorted.
	for _, i := range items {
		if !m.dirtyFlags[i] {
			m.dirtyFlags[i] = true
			m.dirtyItems = append(m.dirtyItems, i)
		}
	}

	// Learning rate ω_b = (1+b)^{-r}.
	m.batchIndex++
	omega := math.Pow(1+float64(m.batchIndex), -m.cfg.ForgettingRate)

	// Serial sync point: panels for the round's label sets only (O(batch)
	// panel work per round), at the generation the local steps will read.
	m.ensureScorePanelsFor(tuples)

	// Local step, workers: stochastic Eq. 2 from batch evidence, scaled to
	// the worker's full answer volume, geometric blend with weight ω
	// (first-touch rows take the fresh estimate directly). The per-worker
	// and per-item loops run on the Algorithm 3 map shards — each writes
	// only its own responsibility row, blending through its own scratch row.
	sw, si := m.shardCount(len(workers)), m.shardCount(len(items))
	if cap(ws.shardDeltas) < sw+si {
		ws.shardDeltas = make([]float64, sw+si)
	}
	shardDeltas := ws.shardDeltas[:sw+si]
	mat.Fill(shardDeltas, 0)
	if !m.cfg.DisableCommunities {
		mat.ParallelFor(len(workers), sw, func(shard, lo, hi int) {
			fresh := ws.freshK.Row(shard)
			old := ws.oldK.Row(shard)
			maxD := 0.0
			for wi := lo; wi < hi; wi++ {
				u := workers[wi]
				refs := ws.gWorkers.seg(wi)
				scale := float64(m.perWorker[u].Len()) / float64(len(refs))
				m.scoreKappaBatch(refs, scale, fresh)
				mathx.SoftmaxInPlace(fresh)
				row := m.kappa.Row(u)
				copy(old, row)
				first := m.perWorker[u].Len() == len(refs)
				blendRows(row, fresh, omega, first)
				if d := mathx.MaxAbsDiff(old, row); d > maxD {
					maxD = d
				}
			}
			shardDeltas[shard] = maxD
		})
	}
	// Imputed truth for the touched items under the current worker model.
	m.imputeTruth(items)
	// Local step, items: stochastic cluster responsibilities, same blending
	// (the paper's µ-space natural gradient, Eqs. 15–17, 20).
	if !m.cfg.DisableClusters {
		mat.ParallelFor(len(items), si, func(shard, lo, hi int) {
			fresh := ws.freshT.Row(shard)
			old := ws.oldT.Row(shard)
			maxD := 0.0
			for ii := lo; ii < hi; ii++ {
				i := items[ii]
				refs := ws.gItems.seg(ii)
				scale := float64(m.perItem[i].Len()) / float64(len(refs))
				m.scorePhiBatch(i, refs, scale, fresh)
				mathx.SoftmaxInPlace(fresh)
				row := m.phi.Row(i)
				copy(old, row)
				first := m.perItem[i].Len() == len(refs)
				blendRows(row, fresh, omega, first)
				if d := mathx.MaxAbsDiff(old, row); d > maxD {
					maxD = d
				}
			}
			shardDeltas[sw+shard] = maxD
		})
	}
	maxDelta := 0.0
	for _, d := range shardDeltas {
		if d > maxDelta {
			maxDelta = d
		}
	}

	// Global step: natural-gradient targets from the batch scaled to the
	// population seen so far, blended with weight ω (Eqs. 9–14, 18–19).
	m.sviGlobalStep(tuples, items, workers, omega)
	// Worker-model statistics from the batch, blended into the running
	// accumulators (ratios are scale-free, so raw batch counts suffice).
	m.sviWorkerModelStep(items, omega)
	m.refreshExpectations()
	m.lastBatchDelta = maxDelta
	m.fitted = true
	m.streamFitted = true
	m.maybeCompactWindow()
	return nil
}

// FinalizeOnline prepares the online-prediction posterior (§4.1): one local
// pass over the stored answers recomputes the responsibilities from the
// final global parameters, then the worker-model/imputation fixed point is
// iterated a few times (each a cheap O(answers) pass — no further global
// training). Safe to call repeatedly; a no-op before any PartialFit.
func (m *Model) FinalizeOnline() {
	if !m.streamFitted {
		return
	}
	m.temp = 1
	m.updateLocal()
	for pass := 0; pass < 3; pass++ {
		m.updateReliability()
		m.imputeTruth(nil)
	}
}

// blendRows overwrites row with the geometric blend row^(1−ω)·fresh^ω
// (normalised), or with fresh directly on first touch.
func blendRows(row, fresh []float64, omega float64, first bool) {
	if first {
		copy(row, fresh)
		return
	}
	for j := range row {
		row[j] = math.Pow(math.Max(row[j], 1e-12), 1-omega) *
			math.Pow(math.Max(fresh[j], 1e-12), omega)
	}
	mathx.NormalizeInPlace(row)
}

// sviGlobalStep forms the intermediate estimates λ̂, ζ̂, ρ̂, υ̂ that the
// batch's sufficient statistics would imply if the whole stream looked like
// this batch (scale factors N/|batch|), then blends them into the current
// parameters with the learning rate: θ ← (1−ω)θ + ω·θ̂. This is the
// canonical SVI step of Hoffman et al. and coincides with the paper's
// natural-gradient Eqs. (9)–(14) aggregated per Eqs. (18)–(19). The
// suffstat and blending kernels are exactly the batch ones (kernels.go)
// with scale ≠ 1 and ω < 1.
func (m *Model) sviGlobalStep(batch []batchAns, items, workers []int, omega float64) {
	M, T := m.M, m.T

	// --- λ̂ from the batch answers (Eq. 9 / 18), in batch arrival order,
	// reading each answer's canonical interned label slice.
	scaleA := float64(m.numAns) / float64(len(batch))
	lhat := m.ws.lambdaSuff
	mat.Fill(lhat, 0)
	for _, ba := range batch {
		m.lambdaAnswerStat(lhat, ba.item, ba.worker, m.intern.Canon(ba.set))
	}
	applyDirichlet(m.lambda.Data(), lhat, m.cfg.GammaPrior, scaleA, omega)

	// --- ζ̂ from the batch items' (imputed) truth (Eq. 10 / 18).
	scaleI := float64(m.seenItems) / float64(len(items))
	zhat := m.ws.zetaSuff
	mat.Fill(zhat, 0)
	for _, i := range items {
		m.zetaItemStat(zhat, i)
	}
	applyDirichlet(m.zeta.Data(), zhat, m.cfg.EtaPrior, scaleI, omega)

	// --- ρ̂ from the batch workers (Eqs. 11–12 / 19).
	if M > 1 && !m.cfg.DisableCommunities {
		scaleU := float64(m.seenWorkers) / float64(len(workers))
		colSum := m.ws.colSumM
		mat.Fill(colSum, 0)
		m.kappa.ColSumsInto(colSum, workers)
		applySticks(m.rho1, m.rho2, colSum, m.cfg.Alpha, scaleU, omega)
	}

	// --- υ̂ from the batch items (Eqs. 13–14 / 19).
	if T > 1 && !m.cfg.DisableClusters {
		colSum := m.ws.colSumT
		mat.Fill(colSum, 0)
		m.phi.ColSumsInto(colSum, items)
		applySticks(m.ups1, m.ups2, colSum, m.cfg.Epsilon, scaleI, omega)
	}
}

// sviWorkerModelStep updates the community two-coin rates and reliabilities
// from the batch items only, through the same per-item counting kernels as
// the batch pass, blending the batch's community counts into running
// accumulators with weight ω (the rates are ratios, so no population
// scaling is needed). Per-worker raw counts accumulate across the stream —
// each answer contributes once. Agreement is κ-weighted per answer (the
// stream never revisits a worker's history, so per-worker means are
// unavailable; see workerAgreeStats for the batch weighting).
func (m *Model) sviWorkerModelStep(items []int, omega float64) {
	M, C, U := m.M, m.numLabels, m.numWorkers
	if m.runTP == nil {
		m.runTP = make([]float64, M)
		m.runTPD = make([]float64, M)
		m.runFP = make([]float64, M)
		m.runFPD = make([]float64, M)
		m.runAgree = make([]float64, M)
		m.runAgreeD = make([]float64, M)
		m.runPrevN = make([]float64, C)
		m.runPrevD = make([]float64, C)
	}
	m.refreshHardSig(items)
	coins := m.ws.coinStats
	mat.Fill(coins, 0)
	agree := m.ws.agreeStats
	mat.Fill(agree, 0)
	for _, i := range items {
		m.itemCoinStats(i, coins)
		m.itemAgreeStats(i, agree)
	}
	offTP, offTPD, offFP, offFPD, offPrevN, offPrevD, offTPU, offTPDU, offFPU, offFPDU := m.coinOffsets()
	// Exponential reliability discounting (Config.ReliabilityHalfLife): the
	// per-worker coin counts decay by 2^(-1/H) per round before the batch's
	// evidence lands, and the running community statistics — whose natural ω
	// blend weight vanishes as the stream grows — keep a blend weight of at
	// least 1−2^(-1/H). Both give reliability a half-life of H rounds; with
	// H = 0 this block is skipped and the accumulators never forget.
	omegaR := omega
	if h := m.cfg.ReliabilityHalfLife; h > 0 {
		decay := math.Exp2(-1 / h)
		if f := 1 - decay; omegaR < f {
			omegaR = f
		}
		for u := 0; u < U; u++ {
			m.tpNumU[u] *= decay
			m.tpDenU[u] *= decay
			m.fpNumU[u] *= decay
			m.fpDenU[u] *= decay
		}
	}
	for u := 0; u < U; u++ {
		m.tpNumU[u] += coins[offTPU+u]
		m.tpDenU[u] += coins[offTPDU+u]
		m.fpNumU[u] += coins[offFPU+u]
		m.fpDenU[u] += coins[offFPDU+u]
	}
	for mm := 0; mm < M; mm++ {
		m.runTP[mm] = (1-omegaR)*m.runTP[mm] + omegaR*coins[offTP+mm]
		m.runTPD[mm] = (1-omegaR)*m.runTPD[mm] + omegaR*coins[offTPD+mm]
		m.runFP[mm] = (1-omegaR)*m.runFP[mm] + omegaR*coins[offFP+mm]
		m.runFPD[mm] = (1-omegaR)*m.runFPD[mm] + omegaR*coins[offFPD+mm]
		m.runAgree[mm] = (1-omegaR)*m.runAgree[mm] + omegaR*agree[mm]
		m.runAgreeD[mm] = (1-omegaR)*m.runAgreeD[mm] + omegaR*agree[M+mm]
	}
	for c := 0; c < C; c++ {
		m.runPrevN[c] = (1-omegaR)*m.runPrevN[c] + omegaR*coins[offPrevN+c]
		m.runPrevD[c] = (1-omegaR)*m.runPrevD[c] + omegaR*coins[offPrevD+c]
		m.labelPrev[c] = (m.runPrevN[c] + 0.5) / (m.runPrevD[c] + 2)
	}
	m.deriveWorkerModel(m.runTP, m.runTPD, m.runFP, m.runFPD, m.runAgree, m.runAgreeD)
}

// sortInts is an insertion sort adequate for the short per-batch key lists;
// it avoids pulling package sort into a hot path with interface conversions.
func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// extendVoted merges the round's newly voted labels into the touched items'
// voted-label lists, preserving existing imputed values. It relies on the
// voted-list invariant — votedList[i] already contains every label of every
// previously ingested answer on i (rebuildVoted for batch loads, this
// function for every earlier streaming round, persistence for reloads) — so
// only the batch refs and the revealed truth need merging: O(batch labels)
// per round via sorted-slice unions over the interned canonical sets, with
// no per-item map and no walk of the item's answer history.
func (m *Model) extendVoted(g *batchGroups) {
	for j, i := range g.keys {
		m.extendVotedItem(i, g.seg(j))
	}
}

func (m *Model) extendVotedItem(i int, refs []ansRef) {
	cur := m.votedList[i]
	a := append(m.ws.mergeA[:0], cur...)
	b := m.ws.mergeB[:0]
	merge := func(src []int) {
		if len(src) == 0 {
			return
		}
		b = unionSorted(b[:0], a, src)
		if len(b) != len(a) {
			a, b = b, a
		}
	}
	for _, ar := range refs {
		merge(m.intern.Canon(ar.set))
	}
	merge(m.revealedTruth[i])
	m.ws.mergeA, m.ws.mergeB = a[:0], b[:0] // hand the buffers back, grown
	if len(a) == len(cur) {
		return // nothing new voted
	}
	oldVals := m.yhatVals[i]
	merged := append([]int(nil), a...)
	vals := make([]float64, len(merged))
	// Carry existing imputations across: cur ⊆ merged and both are sorted,
	// so one linear sweep aligns them. New labels start at 0, like the map
	// version did.
	k := 0
	for idx, c := range merged {
		if k < len(cur) && cur[k] == c {
			vals[idx] = oldVals[k]
			k++
		}
	}
	// Rebind, never mutate: clones may share the old slices.
	m.votedList[i] = merged
	m.yhatVals[i] = vals
}

// unionSorted appends the sorted-set union of a and b to dst. Both inputs
// must be sorted and duplicate-free; the output is too.
func unionSorted(dst, a, b []int) []int {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}
