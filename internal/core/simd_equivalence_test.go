package core

import (
	"testing"

	"cpa/internal/datasets"
	"cpa/internal/mathx"
)

// The inference-level half of the ISSUE 6 bit-exactness contract: the whole
// variational loop — not just individual kernels — must produce identical
// results for every kernel backend registered on this CPU, on both the batch
// and streaming paths. The kernel-level equivalence suite lives in
// internal/mathx; this test catches anything it can't: call-site mistakes
// (a hot loop bypassing the dispatched kernels with its own accumulation
// order) and interactions between backends and the sharded map-reduce.
//
// Two invariants, deliberately distinct in strength:
//
//  1. Backend invariance (bit-exact): at a FIXED Parallelism, swapping the
//     kernel backend must not move a single bit of phi/kappa/lambda or any
//     prediction. The SIMD kernels implement the same canonical reduction
//     order as the scalar reference, so the fitted parameters are the same
//     float64s no matter which instruction set computed them.
//
//  2. Parallelism invariance (prediction-exact): across Parallelism
//     settings the sharded map-reduce merges per-shard partials in shard
//     order, so raw parameters pick up low-bit differences from the
//     re-associated merge adds — a pre-existing property of the parallel
//     path, identical under every backend. Predictions (and the serve
//     layer's pinned views, covered elsewhere) must still agree exactly.

// fitFingerprint fits a fresh model and returns the flat parameter blocks
// plus predictions. The caller compares fingerprints across backends.
type fitFingerprint struct {
	phi, kappa, lambda []float64
	preds              []string
}

func fingerprint(t *testing.T, backend string, parallelism int, online bool) fitFingerprint {
	t.Helper()
	if err := mathx.ForceBackend(backend); err != nil {
		t.Fatal(err)
	}
	ds, _, err := datasets.Load("movie", 0.15, 11)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 23, Parallelism: parallelism, BatchSize: 64}
	model, err := NewModel(cfg, ds.NumItems, ds.NumWorkers, ds.NumLabels)
	if err != nil {
		t.Fatal(err)
	}
	if online {
		_, err = model.FitStream(ds)
	} else {
		_, err = model.Fit(ds)
	}
	if err != nil {
		t.Fatal(err)
	}
	preds, err := model.Predict()
	if err != nil {
		t.Fatal(err)
	}
	fp := fitFingerprint{
		phi:    append([]float64(nil), model.phi.Data()...),
		kappa:  append([]float64(nil), model.kappa.Data()...),
		lambda: append([]float64(nil), model.lambda.Data()...),
	}
	for _, p := range preds {
		fp.preds = append(fp.preds, p.String())
	}
	return fp
}

func samePreds(t *testing.T, what string, ref, got fitFingerprint) {
	t.Helper()
	if len(ref.preds) != len(got.preds) {
		t.Fatalf("%s: %d vs %d predictions", what, len(ref.preds), len(got.preds))
	}
	for i := range ref.preds {
		if ref.preds[i] != got.preds[i] {
			t.Fatalf("%s: item %d predicted %v vs %v", what, i, got.preds[i], ref.preds[i])
		}
	}
}

func sameFingerprint(t *testing.T, what string, ref, got fitFingerprint) {
	t.Helper()
	cmp := func(block string, a, b []float64) {
		if len(a) != len(b) {
			t.Fatalf("%s %s: %d vs %d entries", what, block, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s %s: entry %d differs: %v vs %v (must be bit-identical)",
					what, block, i, a[i], b[i])
			}
		}
	}
	cmp("phi", ref.phi, got.phi)
	cmp("kappa", ref.kappa, got.kappa)
	cmp("lambda", ref.lambda, got.lambda)
	samePreds(t, what, ref, got)
}

func TestFitEquivalenceAcrossBackends(t *testing.T) {
	restore := mathx.ActiveBackend()
	defer mathx.ForceBackend(restore)
	backends := mathx.Backends()
	if len(backends) == 1 {
		t.Log("scalar-only CPU; cross-backend comparison degenerates to a repeat run")
	}
	for _, online := range []bool{false, true} {
		name := "batch"
		if online {
			name = "stream"
		}
		// predRef pins prediction invariance across every (backend, P) pair.
		predRef := fingerprint(t, "scalar", 1, online)
		for _, par := range []int{1, 4, 8} {
			// Bit-exactness is a backend property at fixed Parallelism:
			// the scalar run at this P is the reference for every backend.
			ref := fingerprint(t, "scalar", par, online)
			samePreds(t, name+"/scalar/P="+itoa(par), predRef, ref)
			for _, backend := range backends {
				if backend == "scalar" {
					continue
				}
				got := fingerprint(t, backend, par, online)
				sameFingerprint(t, name+"/"+backend+"/P="+itoa(par), ref, got)
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
