package core

// ModelStats is a cheap read-only summary of a model's training state, safe
// to copy and publish outside the fitting goroutine. All fields are plain
// values; none alias model storage.
type ModelStats struct {
	Items, Workers, Labels int
	// Answers is the number of answers ingested so far. Monotone: it counts
	// the whole stream even when Config.AnswerWindow trims storage.
	Answers int
	// Retained is the number of answers currently held in storage — equal to
	// Answers unless an AnswerWindow compaction has dropped old arrivals.
	Retained int
	// BatchRounds counts PartialFit calls (0 for batch-only models).
	BatchRounds int
	// LastBatchDelta is the max responsibility change of the latest
	// PartialFit round.
	LastBatchDelta float64
	// EffectiveCommunities/EffectiveClusters count mixture components with
	// expected proportion above 1% — the paper's R4 adaptivity diagnostics.
	EffectiveCommunities int
	EffectiveClusters    int
	Fitted               bool
}

// Stats summarises the model's current training state.
func (m *Model) Stats() ModelStats {
	return ModelStats{
		Items:                m.numItems,
		Workers:              m.numWorkers,
		Labels:               m.numLabels,
		Answers:              m.totalAns,
		Retained:             m.numAns,
		BatchRounds:          m.batchIndex,
		LastBatchDelta:       m.lastBatchDelta,
		EffectiveCommunities: m.EffectiveCommunities(0.01),
		EffectiveClusters:    m.EffectiveClusters(0.01),
		Fitted:               m.fitted,
	}
}

// BatchRounds returns how many SVI mini-batches the model has consumed.
func (m *Model) BatchRounds() int { return m.batchIndex }

// ItemConsensus is the read-only consensus for one item: the instantiated
// label set plus the calibrated inclusion posterior of every voted candidate.
type ItemConsensus struct {
	// Labels is the predicted consensus label set, sorted ascending.
	Labels []int
	// Candidates lists the voted labels (sorted), Confidence the model's
	// imputed truth probability ŷ for each (aligned with Candidates).
	Candidates []int
	Confidence []float64
}

// ConsensusView is an immutable export of the model's full consensus:
// prediction, per-candidate confidences, and training stats. It shares no
// storage with the model, so a fitting loop can build one per round and hand
// it to concurrent readers (cpaserve publishes it behind an atomic pointer)
// while training continues on the live model.
type ConsensusView struct {
	Items []ItemConsensus
	Stats ModelStats
}

// ConsensusView predicts every item and packages the result with fresh
// backing storage. It runs the §3.4 instantiation once (on the Algorithm 3
// shards) and must be called from the goroutine that owns the model; the
// returned view itself is safe to share.
func (m *Model) ConsensusView() (*ConsensusView, error) {
	pred, err := m.Predict()
	if err != nil {
		return nil, err
	}
	view := &ConsensusView{
		Items: make([]ItemConsensus, m.numItems),
		Stats: m.Stats(),
	}
	for i := range view.Items {
		view.Items[i] = ItemConsensus{
			Labels:     pred[i].Slice(),
			Candidates: append([]int(nil), m.votedList[i]...),
			Confidence: append([]float64(nil), m.yhatVals[i]...),
		}
	}
	return view, nil
}

// Config returns the model's effective configuration (defaults filled).
func (m *Model) Config() Config { return m.cfg }
