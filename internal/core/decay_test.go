package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"cpa/internal/datasets"
)

// streamFit feeds the shuffled movie stream through a fresh model in
// BatchSize chunks and returns the model.
func streamFit(t *testing.T, cfg Config, split int) *Model {
	t.Helper()
	base, _, err := datasets.Load("movie", 0.2, 9)
	if err != nil {
		t.Fatal(err)
	}
	ds := base.Shuffled(rand.New(rand.NewSource(11)))
	m, err := NewModel(cfg, ds.NumItems, ds.NumWorkers, ds.NumLabels)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range ds.Batches(cfg.BatchSize)[:split] {
		if err := m.PartialFit(b.Answers); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

// TestDecayGate pins both sides of the ReliabilityHalfLife switch: zero
// leaves the worker-reliability accumulators on the legacy undiscounted
// path (two runs are bit-identical, and a copy of the config with the
// field explicitly zeroed is the same config), while a finite half-life
// actually discounts — no accumulator may exceed its undiscounted
// counterpart, and at least one must fall strictly below it.
func TestDecayGate(t *testing.T) {
	cfg := Config{Seed: 4, BatchSize: 150, Parallelism: 2}
	off := streamFit(t, cfg, 6)
	off2 := streamFit(t, cfg, 6)
	if !reflect.DeepEqual(off.tpDenU, off2.tpDenU) || !reflect.DeepEqual(off.fpDenU, off2.fpDenU) {
		t.Fatal("two decay-off runs diverged: legacy path is not deterministic")
	}

	// Two rounds isolate the discount from posterior feedback: the first
	// round is identical either way (decaying a zero accumulator is a
	// no-op), so the second round's batch evidence matches too and the only
	// difference is the 2^(-1/H) factor on round one's counts — every
	// accumulator must come out no larger, and any worker with first-round
	// evidence strictly smaller.
	off = streamFit(t, cfg, 2)
	cfgOn := cfg
	cfgOn.ReliabilityHalfLife = 4
	on := streamFit(t, cfgOn, 2)
	strictly := 0
	for u := range on.tpDenU {
		if on.tpDenU[u] > off.tpDenU[u]+1e-9 || on.fpDenU[u] > off.fpDenU[u]+1e-9 {
			t.Fatalf("worker %d: decayed accumulators exceed undiscounted ones (tpDen %v > %v or fpDen %v > %v)",
				u, on.tpDenU[u], off.tpDenU[u], on.fpDenU[u], off.fpDenU[u])
		}
		if on.tpDenU[u] < off.tpDenU[u]-1e-9 {
			strictly++
		}
	}
	if strictly == 0 {
		t.Fatal("half-life 4 discounted no accumulator: the decay gate is not wired")
	}
}

// TestDecayStateSurvivesSaveLoad pins the persistence of the discounted
// reliability accumulators: a model saved mid-stream with decay enabled
// and restored must continue bit-for-bit with the uninterrupted one.
func TestDecayStateSurvivesSaveLoad(t *testing.T) {
	base, _, err := datasets.Load("movie", 0.2, 9)
	if err != nil {
		t.Fatal(err)
	}
	ds := base.Shuffled(rand.New(rand.NewSource(9)))
	cfg := Config{Seed: 4, BatchSize: 150, Parallelism: 2, ReliabilityHalfLife: 6}
	m, err := NewModel(cfg, ds.NumItems, ds.NumWorkers, ds.NumLabels)
	if err != nil {
		t.Fatal(err)
	}
	batches := ds.Batches(cfg.BatchSize)
	split := len(batches)/2 + 1
	for _, b := range batches[:split] {
		if err := m.PartialFit(b.Answers); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.tpDenU, restored.tpDenU) || !reflect.DeepEqual(m.tpNumU, restored.tpNumU) {
		t.Fatal("decayed accumulators did not survive the save/load round trip")
	}
	for _, b := range batches[split:] {
		if err := m.PartialFit(b.Answers); err != nil {
			t.Fatal(err)
		}
		if err := restored.PartialFit(b.Answers); err != nil {
			t.Fatal(err)
		}
	}
	want, err := m.ConsensusView()
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.ConsensusView()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Items {
		if !reflect.DeepEqual(want.Items[i], got.Items[i]) {
			t.Fatalf("item %d diverged after save/load resume under decay:\nuninterrupted %+v\nrestored      %+v",
				i, want.Items[i], got.Items[i])
		}
	}
}
