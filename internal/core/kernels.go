package core

import (
	"cpa/internal/labelset"
	"cpa/internal/mat"
	"cpa/internal/mathx"
)

// This file is the shared sufficient-statistics layer of the two inference
// engines. Batch coordinate ascent (Algorithm 1) and stochastic variational
// inference (Algorithm 2) compute the *same* per-row scores and per-answer
// statistics; they differ only in which answers they see (all vs. a
// mini-batch), how the data term is scaled to the population, and how the
// resulting target is blended into the current parameter (ω = 1 recovers
// the exact coordinate-ascent update). Every kernel here is allocation-free
// and safe to run from the Algorithm 3 map shards as long as shards write
// disjoint rows or private buffers.

// respFloor is the responsibility mass below which a mixture component's
// contribution is skipped in the hot loops; weightFloor the same for
// products of responsibilities.
const (
	respFloor   = 1e-8
	weightFloor = 1e-10
)

// scoreKappaList fills dst (length M) with the unnormalised log-posterior
// of Eq. 2 for one worker from its full chunked answer list (the batch
// case, scale 1, or the finalize pass):
//
//	dst_m = E[ln π_m] + scale · Σ_refs Σ_t ϕ_it E[ln p(x_iu | ψ_tm)]
func (m *Model) scoreKappaList(l *ansList, scale float64, dst []float64) {
	copy(dst, m.elogPi)
	for s, n := 0, l.segs(); s < n; s++ {
		m.scoreKappaRefs(l.seg(s), scale, dst)
	}
}

// scoreKappaBatch is the SVI form: the worker's mini-batch answer slice
// with the population scale |answers_u| / |batch_u|.
func (m *Model) scoreKappaBatch(refs []ansRef, scale float64, dst []float64) {
	copy(dst, m.elogPi)
	m.scoreKappaRefs(refs, scale, dst)
}

// scoreKappaRefs accumulates the data term of Eq. 2 for one contiguous
// answer segment into dst (no init — callers seed dst with E[ln π]). With a
// cached score panel the inner loop is one contiguous AXPY per surviving
// cluster row; the scalar fallback (no panel) produces identical bits.
func (m *Model) scoreKappaRefs(refs []ansRef, scale float64, dst []float64) {
	T, M := m.T, m.M
	var scratch *panelScratch
	for _, ar := range refs {
		phiRow := m.phi.Row(ar.other)
		if panel := m.scorePanel(ar.set); panel != nil {
			for t := 0; t < T; t++ {
				pt := phiRow[t]
				if pt < respFloor {
					continue
				}
				mat.Axpy(scale*pt, panel[t*M:t*M+M], dst)
			}
			continue
		}
		xs := m.intern.Canon(ar.set)
		if offs := m.scratchOffs(&scratch, len(xs)); offs != nil {
			// No cached slot: one fused gather-sum pass per surviving
			// cluster straight off the transposed cube — the kernel sums
			// the set's |offs| contiguous psiT runs per community in
			// canonical member order (the panel-fill order) and rounds
			// a·sum once, exactly the scalar fallback's float64(w*s), so
			// the bits match both the panel path and the fallback. No
			// intermediate panel row: a separate fill+add+AXPY sequence
			// measured slower (three memory passes against one).
			psiT := m.panels.psiT
			TM := T * M
			for t := 0; t < T; t++ {
				pt := phiRow[t]
				if pt < respFloor {
					continue
				}
				base := t * M
				for j, c := range xs {
					offs[j] = c*TM + base
				}
				mathx.AxpyGatherSum(scale*pt, psiT, offs, dst)
			}
			continue
		}
		// Scalar fallback: answerScore inlined with the cube base hoisted
		// (identical float-operation order to Axpy over a panel row: the
		// per-set sum matches the panel fill, the product's intermediate
		// rounding is pinned like the kernel's — no FMA contraction).
		psi := m.elogPsi.Data()
		C := m.numLabels
		for t := 0; t < T; t++ {
			pt := phiRow[t]
			if pt < respFloor {
				continue
			}
			w := scale * pt
			base := t * M * C
			for mm := range dst {
				b := base + mm*C
				s := 0.0
				for _, c := range xs {
					s += psi[b+c]
				}
				dst[mm] += float64(w * s)
			}
		}
	}
	m.putScratchPanel(scratch)
}

// scorePhiList fills dst (length T) with the unnormalised log-posterior of
// the item cluster update from the item's full chunked answer list (batch /
// finalize case, scale 1). See scorePhiBase for the term structure.
func (m *Model) scorePhiList(i int, scale float64, dst []float64) {
	m.scorePhiBase(i, dst)
	if !m.cfg.LiteralPhiUpdate {
		l := &m.perItem[i]
		for s, n := 0, l.segs(); s < n; s++ {
			m.scorePhiRefs(l.seg(s), scale, dst)
		}
	}
}

// scorePhiBatch is the SVI form: the item's mini-batch answer slice with
// the population scale |answers_i| / |batch_i|.
func (m *Model) scorePhiBatch(i int, refs []ansRef, scale float64, dst []float64) {
	m.scorePhiBase(i, dst)
	if !m.cfg.LiteralPhiUpdate {
		m.scorePhiRefs(refs, scale, dst)
	}
}

// scorePhiBase seeds dst with the refs-independent terms of the item
// cluster update: the literal Eq. 3 terms (stick prior plus truth-emission
// evidence, never scaled — the item's truth is one observation regardless
// of batching). Unobserved truth contributes through its imputed
// expectation ŷ (DESIGN.md D2).
func (m *Model) scorePhiBase(i int, dst []float64) {
	T := m.T
	copy(dst, m.elogTau)
	if truth := m.revealedTruth[i]; truth != nil {
		elogPhi := m.elogPhi
		for t := 0; t < T; t++ {
			row := elogPhi.Row(t)
			s := 0.0
			for _, c := range truth {
				s += row[c]
			}
			dst[t] += s
		}
	} else if !m.cfg.GroundTruthOnly {
		voted := m.votedList[i]
		vals := m.yhatVals[i]
		for t := 0; t < T; t++ {
			row := m.elogPhi.Row(t)
			s := 0.0
			for k, c := range voted {
				if v := vals[k]; v > respFloor {
					s += v * row[c]
				}
			}
			dst[t] += s
		}
	}
}

// scorePhiRefs accumulates the Appendix C answer-evidence term a_it for one
// contiguous answer segment into dst, scaled like the κ data term
// (DESIGN.md D1). With a cached panel each cluster's community reduction is
// a floored dot over one contiguous panel row, bit-identical to the scalar
// skip-loop fallback.
func (m *Model) scorePhiRefs(refs []ansRef, scale float64, dst []float64) {
	T, M := m.T, m.M
	var scratch *panelScratch
	for _, ar := range refs {
		kappaRow := m.kappa.Row(ar.other)
		// All T cluster reductions share one κ row, so its floor structure
		// is scanned once per answer (FloorGroups) and every reduction
		// visits only the surviving 4-lane groups — bit-neutral by the
		// groups-kernel contract, and the big win on late-fit near-one-hot
		// κ rows, where T full-width floor scans per answer would dwarf
		// the surviving work.
		if panel := m.scorePanel(ar.set); panel != nil {
			for t := 0; t < T; t++ {
				dst[t] += scale * mat.FlooredDot(kappaRow, panel[t*M:t*M+M], respFloor)
			}
			continue
		}
		xs := m.intern.Canon(ar.set)
		offs := m.scratchOffs(&scratch, len(xs))
		if offs == nil {
			m.poolOffs(&scratch, len(xs)) // groups scratch for the scalar path
		}
		scratch.groups = mathx.FloorGroups(kappaRow, respFloor, scratch.groups)
		groups := scratch.groups
		if offs != nil && 16*len(groups) >= 3*M {
			// Dense κ row with the transposed cube current: fused gather
			// floored-dot — the same canonical 4-lane reduction as
			// FlooredDot over a panel row, with the member gather-sum in
			// the panel entry's role, restricted to the surviving groups
			// (bit-neutral omission). The ≥75%-group-coverage gate keeps
			// the vector kernel off scattered-sparse rows, where it pays
			// for all four lanes of every surviving group while the scalar
			// loop below touches only the live entries — measured ~2×
			// slower there despite the vector width.
			psiT := m.panels.psiT
			TM := T * M
			for t := 0; t < T; t++ {
				base := t * M
				for j, c := range xs {
					offs[j] = c*TM + base
				}
				dst[t] += scale * mathx.FlooredDotGatherSumGroups(kappaRow, psiT, offs, groups, respFloor)
			}
			continue
		}
		psi := m.elogPsi.Data()
		C := m.numLabels
		// Sparse rows (and the panels-disabled hook): survivor-local scalar
		// walk over the row-major cube — each live community reads its
		// |set| members from one ψ row, the friendliest layout when
		// survivors are scattered. The loop reproduces FlooredDot's
		// canonical 4-lane-strided reduction order bit-for-bit (mat/mathx
		// contract): four lane accumulators over communities mm ≡ lane
		// (mod 4), floored entries contributing an explicit +0.0, lanes
		// combined (s0+s2)+(s1+s3), remainder folded in sequentially —
		// visiting only the surviving groups, which is bit-neutral by the
		// same omission argument the kernels rely on. setSum(b) plays the
		// panel entry's role, summed in the same canonical member order.
		setSum := func(b int) float64 {
			sc := 0.0
			for _, c := range xs {
				sc += psi[b+c]
			}
			return sc
		}
		for t := 0; t < T; t++ {
			base := t * M * C
			var s0, s1, s2, s3 float64
			for _, g := range groups {
				mm := int(g) * 4
				p0, p1, p2, p3 := 0.0, 0.0, 0.0, 0.0
				b := base + mm*C
				if km := kappaRow[mm]; km >= respFloor {
					p0 = float64(km * setSum(b))
				}
				if km := kappaRow[mm+1]; km >= respFloor {
					p1 = float64(km * setSum(b+C))
				}
				if km := kappaRow[mm+2]; km >= respFloor {
					p2 = float64(km * setSum(b+2*C))
				}
				if km := kappaRow[mm+3]; km >= respFloor {
					p3 = float64(km * setSum(b+3*C))
				}
				s0 += p0
				s1 += p1
				s2 += p2
				s3 += p3
			}
			s := (s0 + s2) + (s1 + s3)
			for mm := M &^ 3; mm < M; mm++ {
				p := 0.0
				if km := kappaRow[mm]; km >= respFloor {
					p = float64(km * setSum(base+mm*C))
				}
				s += p
			}
			dst[t] += scale * s
		}
	}
	m.putScratchPanel(scratch)
}

// lambdaAnswerStat adds one answer's Eq. 6 sufficient statistic into buf
// (layout: flat (T·M)×C, matching Model.lambda):
//
//	buf[(t·M+m)·C + c] += ϕ_it · κ_um   for every c ∈ x_iu.
//
// Batch accumulates it over every answer (sharded by item); SVI over the
// mini-batch only, scaling the reduced total instead.
func (m *Model) lambdaAnswerStat(buf []float64, item, worker int, labels []int) {
	M, T, C := m.M, m.T, m.numLabels
	phiRow := m.phi.Row(item)
	kappaRow := m.kappa.Row(worker)
	for t := 0; t < T; t++ {
		pt := phiRow[t]
		if pt < respFloor {
			continue
		}
		rowBase := t * M * C
		for mm := 0; mm < M; mm++ {
			w := pt * kappaRow[mm]
			if w < weightFloor {
				continue
			}
			base := rowBase + mm*C
			for _, c := range labels {
				buf[base+c] += w
			}
		}
	}
}

// zetaItemStat adds item i's Eq. 7 sufficient statistic into buf (layout:
// flat T×C, matching Model.zeta): ϕ_it·E[y_ic] with the revealed truth
// indicator when available, the imputed expectation otherwise (DESIGN.md
// D2), or nothing at all under GroundTruthOnly.
func (m *Model) zetaItemStat(buf []float64, i int) {
	T, C := m.T, m.numLabels
	truth := m.revealedTruth[i]
	if truth == nil && m.cfg.GroundTruthOnly {
		return
	}
	phiRow := m.phi.Row(i)
	for t := 0; t < T; t++ {
		pt := phiRow[t]
		if pt < respFloor {
			continue
		}
		base := t * C
		if truth != nil {
			for _, c := range truth {
				buf[base+c] += pt
			}
			continue
		}
		voted := m.votedList[i]
		vals := m.yhatVals[i]
		for k, c := range voted {
			if v := vals[k]; v > respFloor {
				buf[base+c] += pt * v
			}
		}
	}
}

// applyDirichlet folds a sufficient-statistics block into a Dirichlet
// parameter block: dst = (1−ω)·dst + ω·(prior + scale·suff). ω = 1,
// scale = 1 is the exact batch coordinate-ascent update (Eqs. 6–7); SVI
// uses the population scale with the learning rate ω (Eqs. 9–10, 18).
func applyDirichlet(dst, suff []float64, prior, scale, omega float64) {
	if omega >= 1 {
		for k, s := range suff {
			dst[k] = prior + scale*s
		}
		return
	}
	for k, s := range suff {
		dst[k] = (1-omega)*dst[k] + omega*(prior+scale*s)
	}
}

// applySticks folds (scaled) responsibility column sums into the truncated
// Beta stick posteriors with blending weight ω: the target of stick j is
// (1 + scale·colSum_j, conc + scale·Σ_{k>j} colSum_k) — Eqs. 4–5 for the
// batch case (ω = 1), Eqs. 11–14/19 for SVI.
func applySticks(a, b, colSum []float64, conc, scale, omega float64) {
	K := len(colSum)
	suffix := 0.0
	for j := K - 1; j >= 0; j-- {
		if j < K-1 {
			t1 := 1 + scale*colSum[j]
			t2 := conc + scale*suffix
			a[j] = (1-omega)*a[j] + omega*t1
			b[j] = (1-omega)*b[j] + omega*t2
		}
		suffix += colSum[j]
	}
}

// ---------------------------------------------------------------------------
// Worker-model statistics: hardened consensus, agreement, two-coin counts
// ---------------------------------------------------------------------------

// refreshHardSig recomputes the hardened consensus signature summaries for
// the listed items (nil = all): per item, the number of voted labels whose
// imputed (or revealed) expectation exceeds ½, the index of the single
// strongest label used as fallback when none does (so every answered item
// has a non-empty signature), and the signature itself as a bitset so the
// agreement kernels can intersect answers against it in O(words).
func (m *Model) refreshHardSig(items []int) {
	if m.ws.sigSet == nil {
		m.ws.sigSet = make([]labelset.Set, m.numItems)
		for i := range m.ws.sigSet {
			m.ws.sigSet[i] = labelset.New(m.numLabels)
		}
	}
	apply := func(i int) {
		vals := m.yhatVals[i]
		voted := m.votedList[i]
		sig := &m.ws.sigSet[i]
		sig.Clear()
		cnt, bestK, bestV := 0, -1, 0.0
		for k, v := range vals {
			if v > 0.5 {
				cnt++
				sig.Add(voted[k])
			}
			if v > bestV {
				bestK, bestV = k, v
			}
		}
		fall := -1
		if cnt == 0 && bestK >= 0 {
			fall = bestK
			cnt = 1
			sig.Add(voted[bestK])
		}
		m.ws.sigFall[i], m.ws.sigLen[i] = fall, cnt
	}
	if items == nil {
		for i := 0; i < m.numItems; i++ {
			apply(i)
		}
		return
	}
	for _, i := range items {
		apply(i)
	}
}

// jaccardWithSig returns the Jaccard agreement between an interned answer
// set and item i's hardened signature (1 when both are empty, the harmless
// convention for unanswerable comparisons). Both sides are bitsets, so the
// intersection is a word-wise popcount instead of a per-label walk.
func (m *Model) jaccardWithSig(set int32, i int) float64 {
	inter := m.intern.At(set).IntersectLen(m.ws.sigSet[i])
	union := len(m.intern.Canon(set)) + m.ws.sigLen[i] - inter
	if union > 0 {
		return float64(inter) / float64(union)
	}
	return 1
}

// Coin-stat buffer layout: four M-length community two-coin accumulators,
// two C-length prevalence accumulators, four U-length per-worker raw-count
// accumulators. One flat buffer so the whole item pass reduces through a
// single sharded accumulator.
func (m *Model) coinLen() int { return 4*m.M + 2*m.numLabels + 4*m.numWorkers }

func (m *Model) coinOffsets() (tp, tpD, fp, fpD, prevN, prevD, tpU, tpDU, fpU, fpDU int) {
	M, C, U := m.M, m.numLabels, m.numWorkers
	tp, tpD, fp, fpD = 0, M, 2*M, 3*M
	prevN, prevD = 4*M, 4*M+C
	tpU, tpDU, fpU, fpDU = 4*M+2*C, 4*M+2*C+U, 4*M+2*C+2*U, 4*M+2*C+3*U
	return
}

// itemCoinStats accumulates, into a coin-stat buffer, the two-coin counts
// of every answer on item i against the hardened consensus (requirement
// R2: per-label validity, pooled by community for sparse-data robustness):
// for each voted label, every answering worker either asserted it (vote)
// or left it out (miss), counted raw per worker and κ-weighted per
// community, plus the per-label prevalence numerators. Identical between
// the batch pass (all items, sharded) and the SVI pass (batch items only).
func (m *Model) itemCoinStats(i int, buf []float64) {
	_, _, _, _, offPrevN, offPrevD, _, _, _, _ := m.coinOffsets()
	voted := m.votedList[i]
	vals := m.yhatVals[i]
	for k, c := range voted {
		buf[offPrevN+c] += vals[k]
		buf[offPrevD+c]++
	}
	l := &m.perItem[i]
	for si, sn := 0, l.segs(); si < sn; si++ {
		m.itemCoinRefs(i, l.seg(si), buf)
	}
}

// itemCoinRefs accumulates the two-coin counts of one contiguous answer
// segment of item i (see itemCoinStats). Bit-exactness note: for a fixed
// answer, each accumulator slot receives some number of additions of the
// same value (kw, or 1 for the raw counts) — the order of *identical*
// addends doesn't change the result, so the loop is free to count the
// (pos, vote) combinations first (via one sorted sweep of the answer's
// canonical labels against the voted list) and then apply each slot's
// additions in a register, as long as the addition *count* per slot matches
// the per-voted-label walk it replaces.
func (m *Model) itemCoinRefs(i int, refs []ansRef, buf []float64) {
	offTP, offTPD, offFP, offFPD, _, _, offTPU, offTPDU, offFPU, offFPDU := m.coinOffsets()
	voted := m.votedList[i]
	vals := m.yhatVals[i]
	fall := m.ws.sigFall[i]
	// Hardened-signature sizes are per-item constants: every answer asserts
	// or misses against the same nPos positive and nNeg negative slots.
	nPos := m.ws.sigLen[i]
	nNeg := len(voted) - nPos
	for _, ar := range refs {
		u := ar.other
		kappaRow := m.kappa.Row(u)
		// Count this answer's votes that land on positive / negative slots.
		nTP, nFP := 0, 0
		k := 0
		for _, c := range m.intern.Canon(ar.set) {
			for k < len(voted) && voted[k] < c {
				k++
			}
			if k < len(voted) && voted[k] == c {
				if vals[k] > 0.5 || k == fall {
					nTP++
				} else {
					nFP++
				}
				k++
			}
		}
		buf[offTPDU+u] += float64(nPos)
		buf[offTPU+u] += float64(nTP)
		buf[offFPDU+u] += float64(nNeg)
		buf[offFPU+u] += float64(nFP)
		for mm, kw := range kappaRow {
			if kw < respFloor {
				continue
			}
			addN(buf, offTPD+mm, kw, nPos)
			addN(buf, offTP+mm, kw, nTP)
			addN(buf, offFPD+mm, kw, nNeg)
			addN(buf, offFP+mm, kw, nFP)
		}
	}
}

// addN adds v to buf[idx] n times through a register — the bit-exact
// replacement for n interleaved in-memory additions of the same value (it
// must stay n additions: v*n would round differently).
func addN(buf []float64, idx int, v float64, n int) {
	s := buf[idx]
	for r := 0; r < n; r++ {
		s += v
	}
	buf[idx] = s
}

// workerAgreeStats adds worker u's κ-weighted mean agreement with the
// hardened consensus into an agreement buffer (layout [num M | den M]) —
// the batch weighting, where every worker contributes equally to its
// community regardless of answer volume (requirement R1).
func (m *Model) workerAgreeStats(u int, buf []float64) {
	M := m.M
	agree := 0.0
	l := &m.perWorker[u]
	for s, sn := 0, l.segs(); s < sn; s++ {
		for _, ar := range l.seg(s) {
			agree += m.jaccardWithSig(ar.set, ar.other)
		}
	}
	n := l.Len()
	if n == 0 {
		return
	}
	a := agree / float64(n)
	kappaRow := m.kappa.Row(u)
	for mm, kw := range kappaRow {
		buf[mm] += kw * a
		buf[M+mm] += kw
	}
}

// itemAgreeStats adds the κ-weighted per-answer agreements of item i into
// an agreement buffer — the SVI weighting, where each streamed answer
// contributes once (the stream never revisits a worker's history).
func (m *Model) itemAgreeStats(i int, buf []float64) {
	M := m.M
	l := &m.perItem[i]
	for s, sn := 0, l.segs(); s < sn; s++ {
		for _, ar := range l.seg(s) {
			a := m.jaccardWithSig(ar.set, i)
			kappaRow := m.kappa.Row(ar.other)
			for mm, kw := range kappaRow {
				if kw < respFloor {
					continue
				}
				buf[mm] += kw * a
				buf[M+mm] += kw
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Algorithm 3 shard plumbing (thin wrappers over internal/mat)
// ---------------------------------------------------------------------------

// shardCount returns the number of map shards for a loop over n elements.
func (m *Model) shardCount(n int) int { return mat.Shards(m.cfg.Parallelism, n) }

// parallelFor splits [0, n) into contiguous shards processed concurrently.
// With Parallelism 1 it runs inline (no goroutine overhead).
func (m *Model) parallelFor(n int, fn func(lo, hi int)) {
	mat.ParallelFor(n, m.shardCount(n), func(_, lo, hi int) { fn(lo, hi) })
}
