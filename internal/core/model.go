// Package core implements the paper's primary contribution: the CPA model
// (Generic Crowdsourcing Consensus with Partial Agreement) — a Bayesian
// nonparametric model for aggregating multi-label crowd answers — together
// with its three inference engines and its prediction procedure:
//
//   - batch variational inference (paper §3.3, Algorithm 1) — Fit;
//   - stochastic variational inference for online/streaming data (paper
//     §4.1, Algorithm 2) — FitStream / PartialFit;
//   - map-reduce style parallelisation of the local updates (paper §4.2,
//     Algorithm 3) — Config.Parallelism;
//   - greedy MAP label-set instantiation (paper §3.4) with an optional
//     exhaustive mode — Predict.
//
// Worker communities and item clusters are both modelled by truncated
// stick-breaking representations of Chinese Restaurant Processes, giving the
// nonparametric adaptivity of requirement R4: unused components decay to
// negligible stick mass, so the effective number of communities/clusters is
// learned from data.
//
// Two documented deviations from the paper's literal equations (DESIGN.md
// D1, D2) close gaps that make the literal model vacuous in the fully
// unsupervised setting used by every headline experiment; both can be
// switched off (Config.LiteralPhiUpdate, Config.GroundTruthOnly) to recover
// the literal equations for ablation.
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"cpa/internal/answers"
	"cpa/internal/labelset"
	"cpa/internal/mat"
	"cpa/internal/mathx"
)

// ErrConfig reports an invalid model configuration.
var ErrConfig = errors.New("core: invalid config")

// ErrState reports a call that is invalid in the model's current state
// (e.g. Predict before Fit).
var ErrState = errors.New("core: invalid state")

// Config collects every tunable of the CPA model. The zero value is not
// valid; use DefaultConfig as a starting point.
type Config struct {
	// MaxCommunities is M, the stick-breaking truncation for worker
	// communities. The paper notes truncations "can safely be set to large
	// values"; the effective number of communities adapts below it.
	MaxCommunities int
	// MaxClusters is T, the truncation for item clusters.
	MaxClusters int

	// Alpha is the CRP concentration for worker communities (prior belief
	// on community fragmentation).
	Alpha float64
	// Epsilon is the CRP concentration for item clusters.
	Epsilon float64
	// GammaPrior is the symmetric Dirichlet pseudo-count for the community
	// confusion vectors ψ_tm.
	GammaPrior float64
	// EtaPrior is the symmetric Dirichlet pseudo-count for the cluster
	// label emissions φ_t.
	EtaPrior float64

	// MaxIter bounds batch VI iterations; Tol is the convergence threshold
	// on the maximum absolute parameter change between iterations (the
	// paper's criterion: "all model parameter differences ... below 1e-3").
	MaxIter int
	Tol     float64

	// Seed drives the deterministic random initialisation.
	Seed int64

	// Parallelism is the number of map shards P for the Algorithm 3
	// map-reduce; 1 runs serially. Results are deterministic and identical
	// for every P (per-shard partial sums are reduced in shard order).
	Parallelism int

	// BatchSize is the number of answers per SVI mini-batch (Algorithm 2).
	BatchSize int
	// ForgettingRate is r in the learning rate ω_b = (1+b)^-r; the paper
	// finds r ∈ [0.85, 0.9] best and any r ∈ (0.5, 1] convergent.
	ForgettingRate float64

	// DisableCommunities is the No-Z ablation (§5.4): every worker becomes
	// a singleton community (κ pinned to the identity).
	DisableCommunities bool
	// DisableClusters is the No-L ablation (§5.4): every item becomes a
	// singleton cluster (ϕ pinned to the identity).
	DisableClusters bool

	// GroundTruthOnly disables the imputed-truth grounding (DESIGN.md D2):
	// the cluster emission update (Eq. 7) then uses revealed truth only,
	// exactly as printed in the paper.
	GroundTruthOnly bool
	// LiteralPhiUpdate disables the answer-evidence term in the item
	// cluster update (DESIGN.md D1), reverting to the literal Eq. 3.
	LiteralPhiUpdate bool

	// ExhaustivePrediction replaces the greedy search of §3.4 with an
	// exhaustive scan over label subsets of the candidate universe, as the
	// paper describes for the No-L discussion. The universe is capped at
	// ExhaustiveCap labels (top candidates by marginal score) to bound the
	// 2^C blow-up the paper itself calls intractable.
	ExhaustivePrediction bool
	ExhaustiveCap        int

	// AnswerWindow bounds the streaming model's answer storage (DESIGN.md
	// §12): when more than 2×AnswerWindow answers are retained, the chunked
	// answer lists, arrival index, and label-set interner are rebuilt from
	// the newest AnswerWindow answers, so a month-long job's memory is
	// O(window) instead of O(stream). The rebuild is a deterministic
	// function of the arrival stream (it mirrors the persistence reload
	// path, so interned ids stay bit-stable across save/load round-trips)
	// and SVI population scaling then measures the window, not the full
	// history. 0 (the default) retains everything. Streaming only; batch
	// Fit ignores it.
	AnswerWindow int
	// ReliabilityHalfLife exponentially discounts the worker-reliability
	// evidence (DESIGN.md §12): each PartialFit round multiplies the
	// per-worker two-coin counts (tp/fp numerators and denominators) by
	// 2^(-1/H) and floors the running community-statistic blend weight at
	// 1−2^(-1/H), so reliability estimates carry a half-life of H rounds.
	// A sleeper worker's stale clean history then decays and the consensus
	// tracks its drift instead of being shielded by it. 0 (the default)
	// never forgets — the exact pre-decay accumulators.
	ReliabilityHalfLife float64
}

// DefaultConfig returns the settings used by the evaluation harness.
func DefaultConfig() Config {
	return Config{
		MaxCommunities: 10,
		MaxClusters:    20,
		Alpha:          1,
		Epsilon:        1,
		GammaPrior:     0.1,
		EtaPrior:       0.1,
		MaxIter:        40,
		Tol:            1e-3,
		Parallelism:    1,
		BatchSize:      256,
		ForgettingRate: 0.875,
		ExhaustiveCap:  12,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.MaxCommunities == 0 {
		c.MaxCommunities = d.MaxCommunities
	}
	if c.MaxClusters == 0 {
		c.MaxClusters = d.MaxClusters
	}
	if c.Alpha == 0 {
		c.Alpha = d.Alpha
	}
	if c.Epsilon == 0 {
		c.Epsilon = d.Epsilon
	}
	if c.GammaPrior == 0 {
		c.GammaPrior = d.GammaPrior
	}
	if c.EtaPrior == 0 {
		c.EtaPrior = d.EtaPrior
	}
	if c.MaxIter == 0 {
		c.MaxIter = d.MaxIter
	}
	if c.Tol == 0 {
		c.Tol = d.Tol
	}
	if c.Parallelism == 0 {
		c.Parallelism = d.Parallelism
	}
	if c.BatchSize == 0 {
		c.BatchSize = d.BatchSize
	}
	if c.ForgettingRate == 0 {
		c.ForgettingRate = d.ForgettingRate
	}
	if c.ExhaustiveCap == 0 {
		c.ExhaustiveCap = d.ExhaustiveCap
	}
}

func (c *Config) validate() error {
	switch {
	case c.MaxCommunities < 1 || c.MaxClusters < 1:
		return fmt.Errorf("%w: truncations M=%d T=%d", ErrConfig, c.MaxCommunities, c.MaxClusters)
	case c.Alpha <= 0 || c.Epsilon <= 0:
		return fmt.Errorf("%w: concentrations alpha=%v epsilon=%v", ErrConfig, c.Alpha, c.Epsilon)
	case c.GammaPrior <= 0 || c.EtaPrior <= 0:
		return fmt.Errorf("%w: Dirichlet priors gamma=%v eta=%v", ErrConfig, c.GammaPrior, c.EtaPrior)
	case c.MaxIter < 1:
		return fmt.Errorf("%w: MaxIter=%d", ErrConfig, c.MaxIter)
	case c.Tol <= 0:
		return fmt.Errorf("%w: Tol=%v", ErrConfig, c.Tol)
	case c.Parallelism < 1:
		return fmt.Errorf("%w: Parallelism=%d", ErrConfig, c.Parallelism)
	case c.BatchSize < 1:
		return fmt.Errorf("%w: BatchSize=%d", ErrConfig, c.BatchSize)
	case c.ForgettingRate <= 0.5 || c.ForgettingRate > 1:
		return fmt.Errorf("%w: ForgettingRate=%v outside (0.5,1]", ErrConfig, c.ForgettingRate)
	case c.ExhaustiveCap < 1 || c.ExhaustiveCap > 24:
		return fmt.Errorf("%w: ExhaustiveCap=%d outside [1,24]", ErrConfig, c.ExhaustiveCap)
	case c.AnswerWindow < 0:
		return fmt.Errorf("%w: AnswerWindow=%d", ErrConfig, c.AnswerWindow)
	case c.AnswerWindow > 0 && c.AnswerWindow < c.BatchSize:
		return fmt.Errorf("%w: AnswerWindow=%d below BatchSize=%d", ErrConfig, c.AnswerWindow, c.BatchSize)
	case c.ReliabilityHalfLife < 0:
		return fmt.Errorf("%w: ReliabilityHalfLife=%v", ErrConfig, c.ReliabilityHalfLife)
	}
	return nil
}

// ansRef is one answer in the model's dense internal form. The label set is
// carried as an id into the model's label-set interner rather than an owned
// slice: partial-agreement crowds reuse a small universe of answer sets, so
// interning halves the reference size and gives every kernel O(1) access to
// both the canonical sorted member slice (intern.Canon) and the bitset
// membership test (intern.Contains), and lets the score-panel cache key
// per-set work by id (panels.go).
type ansRef struct {
	other int   // the item (in perWorker) or the worker (in perItem)
	set   int32 // interned label-set id of x_iu
}

// arrivalRef locates one ingested answer by arrival order: perItem[item][idx].
type arrivalRef struct {
	item, idx int
}

// Model holds the variational posterior of a CPA instance. Create with
// NewModel, train with Fit (batch) or FitStream/PartialFit (online), then
// call Predict.
type Model struct {
	cfg Config

	numItems, numWorkers, numLabels int
	// M, T are the effective truncations after ablation flags (No-Z pins
	// M to numWorkers, No-L pins T to numItems).
	M, T int

	rng *rand.Rand

	// intern is the label-set table every ansRef's set id points into.
	// Append-only: ids are stable, canonical slices immutable, so clones
	// share the table contents (Interner.Clone copies only the id map).
	intern *labelset.Interner
	// expGen counts expectation refreshes; the score-panel cache
	// (panels.go) is valid only for panels built at the current generation.
	expGen uint64
	// panels is the per-set T×M score-panel cache over elogPsi.
	panels panelCache

	// Observed data in dense form (populated by Fit or accumulated by
	// PartialFit), stored as append-only chunked lists so clones share the
	// immutable prefix structurally (see chunks.go).
	perWorker []ansList
	perItem   []ansList
	// arrival records global ingestion order as (item, index-in-perItem)
	// pairs. Persistence flattens answers in this order so a restored
	// model rebuilds perWorker/perItem with identical element order —
	// float reductions over those lists, and therefore continued
	// PartialFit rounds, stay bit-for-bit reproducible after a reload.
	// Append-only: clones share it by capacity-clamped header copy.
	arrival []arrivalRef
	numAns  int
	// totalAns counts every answer ever ingested, monotone across the
	// AnswerWindow compactions that shrink numAns (the retained count).
	// Serving uses it for flow accounting: a checkpoint covers the first
	// totalAns answer lines of the journal regardless of what storage still
	// retains.
	totalAns int
	// dirtyFlags/dirtyItems track items touched by PartialFit since the
	// last snapshot publication (consumed by Publisher.takeDirtySorted).
	dirtyFlags []bool
	dirtyItems []int
	// seenWorkers/seenItems count workers/items with at least one ingested
	// answer (the SVI population-scaling denominators), maintained
	// incrementally by ingest.
	seenWorkers, seenItems int
	// revealedTruth[i] is nil unless item i's truth is visible to the
	// model (test questions).
	revealedTruth [][]int

	// Variational parameters: dense row-major matrices on the internal/mat
	// flat-buffer layer. Stick posteriors are plain vectors.
	kappa  *mat.Dense // U×M responsibilities q(z_u)
	phi    *mat.Dense // I×T responsibilities q(l_i)
	lambda *mat.Dense // (T·M)×C Dirichlet params of q(ψ_tm); row t*M+m
	zeta   *mat.Dense // T×C Dirichlet params of q(φ_t)
	rho1   []float64  // M-1 Beta params of community sticks
	rho2   []float64
	ups1   []float64 // T-1 Beta params of cluster sticks
	ups2   []float64

	// Cached expectations, refreshed from the parameters above at the start
	// of each iteration.
	elogPi  []float64  // M
	elogTau []float64  // T
	elogPsi *mat.Dense // (T·M)×C: ψ(λ_tmc) − ψ(Σ_c λ_tmc)
	elogPhi *mat.Dense // T×C

	// Imputed truth expectations ŷ (DESIGN.md D2) and the community-level
	// two-coin worker model that calibrates them.
	votedList  [][]int // per item: sorted union of voted labels
	yhatVals   [][]float64
	relm       []float64 // M community reliabilities in [0,1] (agreement)
	workerRelW []float64 // U: Σ_m κ_um rel_m
	// Per-community binary rates marginalised from ψ against the hardened
	// consensus: true-positive rate and false-positive rate, plus their
	// per-worker log-odds contributions.
	tprM, fprM []float64 // M
	// Per-worker raw two-coin counts; worker rates are these counts shrunk
	// toward the worker's community rates (hierarchical pooling: the
	// community is the prior, the worker's own record the evidence).
	tpNumU, tpDenU, fpNumU, fpDenU []float64 // U
	voteLW                         []float64 // U: ln(TPR_u/FPR_u)
	missLW                         []float64 // U: ln((1−TPR_u)/(1−FPR_u))
	haveRates                      bool
	streamFitted                   bool
	// labelPrev[c] is the empirical per-label prevalence: among items where
	// c was voted, the mean imputed probability that c is true — the class
	// prior of the calibrated imputation.
	labelPrev []float64
	// Running SVI worker-model accumulators (batch counts blended by ω).
	runTP, runTPD, runFP, runFPD, runAgree, runAgreeD []float64
	runPrevN, runPrevD                                []float64
	// expertCooc is the optional external co-occurrence prior (§6 extension);
	// see SetExpertCooccurrence.
	expertCooc *mat.Dense // C×C, nil when no expert knowledge is installed

	// SVI state.
	batchIndex     int
	lastBatchDelta float64
	fitted         bool

	// temp is the deterministic-annealing temperature applied to the local
	// softmax updates (1 = exact mean-field; >1 keeps responsibilities soft
	// during the first batch-VI iterations so assignments can refine before
	// they harden).
	temp float64

	// Sharded reduction accumulators (Algorithm 3), one per suffstat size
	// class so steady-state iterations reuse their buffers.
	accLambda mat.Sharded
	accZeta   mat.Sharded
	accCoin   mat.Sharded
	accAgree  mat.Sharded
	accLogLik mat.Sharded
	// ws holds the per-iteration working buffers reused across iterations.
	ws workScratch
}

// workScratch bundles the reusable working buffers of the inference loops
// so steady-state iterations allocate nothing. None of it is model state:
// every buffer is recomputed before use.
type workScratch struct {
	lambdaSuff []float64      // (T·M·C) Eq. 6 sufficient statistics
	zetaSuff   []float64      // (T·C) Eq. 7 sufficient statistics
	colSumM    []float64      // M responsibility column sums
	colSumT    []float64      // T
	agreeStats []float64      // 2M community agreement accumulators
	coinStats  []float64      // coin-stat layout, see coinLen
	psiMean    *mat.Dense     // (T·M)×C posterior-mean confusion (dataLogLik)
	phiMean    *mat.Dense     // T×C posterior-mean emissions (imputeTruth)
	nbar       []float64      // T expected cluster truth-set sizes
	sigFall    []int          // per item: fallback index into votedList, or -1
	sigLen     []int          // per item: hardened-signature size
	sigSet     []labelset.Set // per item: the signature as a bitset (lazily allocated)
	prevKappa  *mat.Dense     // convergence snapshots (Fit)
	prevPhi    *mat.Dense

	// prod holds the call-scoped product panels (dataLogLik, Predict).
	prod prodCache

	// PartialFit round scratch: the per-round grouping, blending, and merge
	// buffers that used to be allocated fresh every round (maps, per-shard
	// slices). All are rebuilt from scratch each round; none is model state.
	batchAns    []batchAns
	groupCount  []int32 // max(U, I) counting array, zero outside a group call
	gWorkers    batchGroups
	gItems      batchGroups
	shardDeltas []float64
	freshK      *mat.Dense // Parallelism × M blend rows (one per shard)
	oldK        *mat.Dense
	freshT      *mat.Dense // Parallelism × T
	oldT        *mat.Dense
	mergeA      []int // extendVoted sorted-union double buffers
	mergeB      []int
}

// NewModel allocates a CPA model for the given problem dimensions.
func NewModel(cfg Config, numItems, numWorkers, numLabels int) (*Model, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if numItems <= 0 || numWorkers <= 0 || numLabels <= 0 {
		return nil, fmt.Errorf("%w: dimensions %d/%d/%d", ErrConfig, numItems, numWorkers, numLabels)
	}
	m := &Model{
		cfg:        cfg,
		numItems:   numItems,
		numWorkers: numWorkers,
		numLabels:  numLabels,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		temp:       1,
		intern:     labelset.NewInterner(),
	}
	m.M = cfg.MaxCommunities
	if cfg.DisableCommunities {
		m.M = numWorkers
	}
	m.T = cfg.MaxClusters
	if cfg.DisableClusters {
		m.T = numItems
	}
	if m.M > numWorkers {
		m.M = numWorkers
	}
	if m.T > numItems {
		m.T = numItems
	}
	m.allocate()
	m.initialize()
	return m, nil
}

// Dims returns (items, workers, labels).
func (m *Model) Dims() (int, int, int) { return m.numItems, m.numWorkers, m.numLabels }

// Truncations returns the effective (M, T) truncation levels.
func (m *Model) Truncations() (int, int) { return m.M, m.T }

func (m *Model) allocate() {
	U, I, C, M, T := m.numWorkers, m.numItems, m.numLabels, m.M, m.T
	m.perWorker = make([]ansList, U)
	m.perItem = make([]ansList, I)
	m.dirtyFlags = make([]bool, I)
	m.revealedTruth = make([][]int, I)
	m.kappa = mat.New(U, M)
	m.phi = mat.New(I, T)
	m.lambda = mat.New(T*M, C)
	m.zeta = mat.New(T, C)
	if M > 1 {
		m.rho1 = make([]float64, M-1)
		m.rho2 = make([]float64, M-1)
	}
	if T > 1 {
		m.ups1 = make([]float64, T-1)
		m.ups2 = make([]float64, T-1)
	}
	m.elogPi = make([]float64, M)
	m.elogTau = make([]float64, T)
	m.elogPsi = mat.New(T*M, C)
	m.elogPhi = mat.New(T, C)
	m.ws = m.newWorkScratch()
	m.votedList = make([][]int, I)
	m.yhatVals = make([][]float64, I)
	m.relm = make([]float64, M)
	m.workerRelW = make([]float64, U)
	m.tprM = make([]float64, M)
	m.fprM = make([]float64, M)
	m.tpNumU = make([]float64, U)
	m.tpDenU = make([]float64, U)
	m.fpNumU = make([]float64, U)
	m.fpDenU = make([]float64, U)
	m.voteLW = make([]float64, U)
	m.missLW = make([]float64, U)
	m.labelPrev = make([]float64, C)
	mathx.Fill(m.labelPrev, 0.25)
}

// initialize seeds the responsibilities with jittered-uniform assignments
// (identity for the ablated factors) and the global parameters at their
// priors. Batch fitting replaces the jitter with data-driven seeding
// (DESIGN.md D6) before the first iteration.
func (m *Model) initialize() {
	U, I := m.numWorkers, m.numItems
	for u := 0; u < U; u++ {
		row := m.kappa.Row(u)
		if m.cfg.DisableCommunities {
			mathx.Fill(row, 0)
			row[u] = 1
			continue
		}
		for mm := range row {
			row[mm] = 0.75 + 0.5*m.rng.Float64()
		}
		mathx.NormalizeInPlace(row)
	}
	for i := 0; i < I; i++ {
		row := m.phi.Row(i)
		if m.cfg.DisableClusters {
			mathx.Fill(row, 0)
			row[i] = 1
			continue
		}
		for t := range row {
			row[t] = 0.75 + 0.5*m.rng.Float64()
		}
		mathx.NormalizeInPlace(row)
	}
	m.lambda.Fill(m.cfg.GammaPrior)
	m.zeta.Fill(m.cfg.EtaPrior)
	mathx.Fill(m.rho1, 1)
	mathx.Fill(m.rho2, m.cfg.Alpha)
	mathx.Fill(m.ups1, 1)
	mathx.Fill(m.ups2, m.cfg.Epsilon)
	mathx.Fill(m.relm, 1)
	mathx.Fill(m.workerRelW, 1)
	m.refreshExpectations()
}

// seedFromData replaces the jittered-uniform responsibilities with
// data-driven ones (DESIGN.md D6). Requires imputeTruth to have produced
// vote fractions first. Item clusters: each item is softly assigned to the
// seed item (T spread-out representatives) whose majority-voted label
// signature is most Jaccard-similar. Worker communities: workers are ranked
// by mean agreement of their answers with the majority signature and split
// into M quantile buckets.
func (m *Model) seedFromData() {
	M, T := m.M, m.T
	const soft = 0.2 // mass spread across non-home components

	// Majority signatures per item: voted labels with ŷ > 0.5 (falling back
	// to the top-ŷ label).
	signatures := make([][]int, m.numItems)
	for i := 0; i < m.numItems; i++ {
		voted := m.votedList[i]
		vals := m.yhatVals[i]
		var sig []int
		bestK, bestV := -1, 0.0
		for k, c := range voted {
			if vals[k] > 0.5 {
				sig = append(sig, c)
			}
			if vals[k] > bestV {
				bestK, bestV = k, vals[k]
			}
		}
		if len(sig) == 0 && bestK >= 0 {
			sig = []int{voted[bestK]}
		}
		signatures[i] = sig
	}

	if !m.cfg.DisableClusters {
		seeds := m.rng.Perm(m.numItems)
		if len(seeds) > T {
			seeds = seeds[:T]
		}
		member := make(map[int]bool)
		for i := 0; i < m.numItems; i++ {
			for k := range member {
				delete(member, k)
			}
			for _, c := range signatures[i] {
				member[c] = true
			}
			bestT, bestSim := 0, -1.0
			for t, seed := range seeds {
				inter := 0
				for _, c := range signatures[seed] {
					if member[c] {
						inter++
					}
				}
				union := len(signatures[i]) + len(signatures[seed]) - inter
				sim := 1.0
				if union > 0 {
					sim = float64(inter) / float64(union)
				}
				if sim > bestSim {
					bestT, bestSim = t, sim
				}
			}
			row := m.phi.Row(i)
			mathx.Fill(row, soft/float64(T))
			row[bestT] += 1 - soft
		}
	}

	if !m.cfg.DisableCommunities {
		type wa struct {
			u     int
			agree float64
		}
		order := make([]wa, m.numWorkers)
		member := make(map[int]bool)
		for u := 0; u < m.numWorkers; u++ {
			agree, n := 0.0, 0
			m.perWorker[u].each(func(ar ansRef) {
				for k := range member {
					delete(member, k)
				}
				for _, c := range signatures[ar.other] {
					member[c] = true
				}
				labels := m.intern.Canon(ar.set)
				inter := 0
				for _, c := range labels {
					if member[c] {
						inter++
					}
				}
				union := len(labels) + len(member) - inter
				if union > 0 {
					agree += float64(inter) / float64(union)
				} else {
					agree++
				}
				n++
			})
			score := 0.5
			if n > 0 {
				score = agree / float64(n)
			}
			order[u] = wa{u, score + 1e-9*float64(u%97)}
		}
		sort.Slice(order, func(a, b int) bool { return order[a].agree < order[b].agree })
		for rank, w := range order {
			home := rank * M / len(order)
			row := m.kappa.Row(w.u)
			mathx.Fill(row, soft/float64(M))
			row[home] += 1 - soft
		}
	}
}

// loadDataset ingests a dataset into the dense internal form, replacing any
// previously loaded data.
func (m *Model) loadDataset(ds *answers.Dataset) error {
	if ds.NumItems != m.numItems || ds.NumWorkers != m.numWorkers || ds.NumLabels != m.numLabels {
		return fmt.Errorf("%w: dataset dims %d/%d/%d do not match model %d/%d/%d", ErrConfig,
			ds.NumItems, ds.NumWorkers, ds.NumLabels, m.numItems, m.numWorkers, m.numLabels)
	}
	for u := range m.perWorker {
		m.perWorker[u].reset()
	}
	for i := range m.perItem {
		m.perItem[i].reset()
	}
	// Rebind rather than truncate: clones share the old backing array.
	m.arrival = nil
	m.numAns = 0
	m.totalAns = 0
	m.seenWorkers, m.seenItems = 0, 0
	for _, a := range ds.Answers() {
		m.ingest(a)
	}
	for i := 0; i < m.numItems; i++ {
		if truth, ok := ds.Revealed(i); ok {
			m.revealedTruth[i] = truth.Slice()
		} else {
			m.revealedTruth[i] = nil
		}
	}
	m.rebuildVoted()
	return nil
}

// ingest adds one answer to the dense views, interning its label set and
// maintaining the seen-worker and seen-item counts the SVI scaling depends
// on. It returns the interned set id.
func (m *Model) ingest(a answers.Answer) int32 {
	id := m.intern.Intern(a.Labels)
	if m.perWorker[a.Worker].empty() {
		m.seenWorkers++
	}
	if m.perItem[a.Item].empty() {
		m.seenItems++
	}
	m.perWorker[a.Worker].append(ansRef{other: a.Item, set: id})
	m.perItem[a.Item].append(ansRef{other: a.Worker, set: id})
	m.arrival = append(m.arrival, arrivalRef{item: a.Item, idx: m.perItem[a.Item].Len() - 1})
	m.numAns++
	m.totalAns++
	return id
}

// maybeCompactWindow enforces Config.AnswerWindow: once the retained stream
// exceeds twice the window, every answer-addressed structure — the chunked
// per-worker/per-item lists, the arrival index, the label-set interner, the
// seen-population counts, and the score-panel cache — is rebuilt from the
// newest AnswerWindow answers, re-ingested in arrival order. That is exactly
// the persistence reload path (persist.go re-ingests the flattened arrival
// stream), so a live-compacted model and its save/load round-trip assign
// identical interned ids and iterate answers in identical order: compaction
// never perturbs bit-exact recovery or replay. Amortised O(1) per answer
// (one rebuild per window of arrivals). Voted-label lists and imputations
// are model state, not storage, and survive untouched.
func (m *Model) maybeCompactWindow() {
	w := m.cfg.AnswerWindow
	if w <= 0 || m.numAns <= 2*w {
		return
	}
	keep := m.arrival[len(m.arrival)-w:]
	items := make([]int, len(keep))
	workers := make([]int, len(keep))
	labels := make([][]int, len(keep))
	for k, at := range keep {
		ref := m.perItem[at.item].at(at.idx)
		items[k] = at.item
		workers[k] = ref.other
		labels[k] = m.intern.Canon(ref.set)
	}
	// Rebind, never truncate in place: publisher clones and snapshots may
	// still hold shared views of the old chunks, arrival array, and interner.
	for u := range m.perWorker {
		m.perWorker[u].reset()
	}
	for i := range m.perItem {
		m.perItem[i].reset()
	}
	m.arrival = nil
	m.numAns = 0
	m.seenWorkers, m.seenItems = 0, 0
	m.intern = labelset.NewInterner()
	m.panels = panelCache{disabled: m.panels.disabled}
	// The scratch product-panel cache is keyed by interned set id too; its
	// slot map would index past the rebuilt interner. Keep only the float
	// buffer for reuse.
	m.ws.prod = prodCache{buf: m.ws.prod.buf}
	for k, item := range items {
		id := m.intern.InternSlice(labels[k])
		worker := workers[k]
		if m.perItem[item].empty() {
			m.seenItems++
		}
		if m.perWorker[worker].empty() {
			m.seenWorkers++
		}
		m.perItem[item].append(ansRef{other: worker, set: id})
		m.perWorker[worker].append(ansRef{other: item, set: id})
		m.arrival = append(m.arrival, arrivalRef{item: item, idx: m.perItem[item].Len() - 1})
		m.numAns++
	}
}

// rebuildVoted recomputes, per item, the sorted union of voted labels and
// resets the imputed-truth storage aligned with it.
func (m *Model) rebuildVoted() {
	for i := 0; i < m.numItems; i++ {
		var s labelset.Set
		m.perItem[i].each(func(ar ansRef) {
			for _, c := range m.intern.Canon(ar.set) {
				s.Add(c)
			}
		})
		for _, c := range m.revealedTruth[i] {
			s.Add(c)
		}
		m.votedList[i] = s.Slice()
		m.yhatVals[i] = make([]float64, len(m.votedList[i]))
	}
}

// refreshExpectations recomputes every cached digamma expectation from the
// current variational parameters. The T×M×C λ cube walk runs on the
// Algorithm 3 shards (rows are independent, so results are identical for
// every Parallelism). Bumping expGen invalidates the score-panel cache:
// panels built against the previous expectations are never served again
// (panels.go).
func (m *Model) refreshExpectations() {
	M, T := m.M, m.T
	// Stick expectations E[ln π_m], E[ln τ_t].
	if M > 1 {
		stickELog(m.rho1, m.rho2, m.elogPi)
	} else {
		m.elogPi[0] = 0
	}
	if T > 1 {
		stickELog(m.ups1, m.ups2, m.elogTau)
	} else {
		m.elogTau[0] = 0
	}
	// Dirichlet expectations for ψ and φ.
	m.parallelFor(T*M, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			dirELog(m.lambda.Row(r), m.elogPsi.Row(r))
		}
	})
	for t := 0; t < T; t++ {
		dirELog(m.zeta.Row(t), m.elogPhi.Row(t))
	}
	m.expGen++
}

// stickELog fills dst (length len(a)+1) with E[ln π_k] for the truncated
// stick-breaking posterior given Beta parameters (a, b).
func stickELog(a, b, dst []float64) {
	acc := 0.0
	for j := range a {
		sum := mathx.Digamma(a[j] + b[j])
		dst[j] = acc + mathx.Digamma(a[j]) - sum
		acc += mathx.Digamma(b[j]) - sum
	}
	dst[len(a)] = acc
}

// dirELog fills dst with ψ(α_c) − ψ(Σα) for the Dirichlet parameters alpha,
// through the vectorised digamma walk (bit-identical to the scalar loop).
func dirELog(alpha, dst []float64) {
	mathx.DigammaRow(alpha, dst)
	total := mathx.Digamma(mathx.Sum(alpha))
	for c := range dst {
		dst[c] -= total
	}
}

// CommunityWeights returns the posterior expected community proportions
// E[π], derived from the stick posteriors.
func (m *Model) CommunityWeights() []float64 {
	return stickMeanWeights(m.rho1, m.rho2, m.M)
}

// ClusterWeights returns the posterior expected cluster proportions E[τ].
func (m *Model) ClusterWeights() []float64 {
	return stickMeanWeights(m.ups1, m.ups2, m.T)
}

func stickMeanWeights(a, b []float64, k int) []float64 {
	out := make([]float64, k)
	remaining := 1.0
	for j := 0; j < k-1; j++ {
		v := a[j] / (a[j] + b[j])
		out[j] = v * remaining
		remaining *= 1 - v
	}
	out[k-1] = remaining
	return out
}

// EffectiveCommunities counts communities whose expected proportion exceeds
// threshold — the adaptivity diagnostic of requirement R4. Allocation-free:
// Stats() runs once per published snapshot, so this is on the serving hot
// path.
func (m *Model) EffectiveCommunities(threshold float64) int {
	return stickEffectiveCount(m.rho1, m.rho2, m.M, threshold)
}

// EffectiveClusters counts clusters whose expected proportion exceeds
// threshold.
func (m *Model) EffectiveClusters(threshold float64) int {
	return stickEffectiveCount(m.ups1, m.ups2, m.T, threshold)
}

// stickEffectiveCount counts stick weights above threshold directly from
// the Beta posteriors — the same weights stickMeanWeights materialises,
// without the two allocations.
func stickEffectiveCount(a, b []float64, k int, threshold float64) int {
	n := 0
	remaining := 1.0
	for j := 0; j < k-1; j++ {
		v := a[j] / (a[j] + b[j])
		if v*remaining > threshold {
			n++
		}
		remaining *= 1 - v
	}
	if remaining > threshold {
		n++
	}
	return n
}

// WorkerCommunity returns the MAP community of worker u.
func (m *Model) WorkerCommunity(u int) int {
	if u < 0 || u >= m.numWorkers {
		return -1
	}
	return mathx.ArgMax(m.kappa.Row(u))
}

// ItemCluster returns the MAP cluster of item i.
func (m *Model) ItemCluster(i int) int {
	if i < 0 || i >= m.numItems {
		return -1
	}
	return mathx.ArgMax(m.phi.Row(i))
}

// WorkerReliability returns the model's reliability weight for worker u:
// Σ_m κ_um · rel_m, in [0, 1]. Available after fitting.
func (m *Model) WorkerReliability(u int) float64 {
	if u < 0 || u >= m.numWorkers {
		return 0
	}
	return m.workerRelW[u]
}

// WorkerVoteWeight returns the two-coin log-odds vote weight ln(TPR_u/FPR_u)
// for worker u — the per-worker trust signal the calibrated consensus vote
// uses. Unlike WorkerReliability (a community-level blend), it reflects the
// worker's own shrunk coin counts, so it is the observable through which
// Config.ReliabilityHalfLife acts: under decay, a worker whose behavior
// turns sees this weight track the recent record rather than the lifetime
// average. Zero before the first worker-model pass.
func (m *Model) WorkerVoteWeight(u int) float64 {
	if u < 0 || u >= m.numWorkers || !m.haveRates {
		return 0
	}
	return m.voteLW[u]
}

// CommunityReliability returns rel_m for community m.
func (m *Model) CommunityReliability(mm int) float64 {
	if mm < 0 || mm >= m.M {
		return 0
	}
	return m.relm[mm]
}

// Fitted reports whether the model has been trained.
func (m *Model) Fitted() bool { return m.fitted }

// Retune changes the model's Parallelism and/or mini-batch size between
// rounds (0 keeps a knob unchanged) — the runtime lever of the serve layer's
// auto-tuner (DESIGN.md §13). Both knobs are replay-invisible: fit results
// are bit-identical across Parallelism settings (per-shard partial sums
// reduce in shard order), and PartialFit consumes whatever batch it is
// handed — mini-batch boundaries live in the serving journal's fit markers,
// not in this config. The caller must own the model (the fitter goroutine)
// and must not call this mid-round. The retuned config is validated as a
// whole, so an AnswerWindow < BatchSize combination is rejected rather than
// silently adopted.
func (m *Model) Retune(parallelism, batchSize int) error {
	cfg := m.cfg
	if parallelism > 0 {
		cfg.Parallelism = parallelism
	}
	if batchSize > 0 {
		cfg.BatchSize = batchSize
	}
	if err := cfg.validate(); err != nil {
		return err
	}
	reshard := cfg.Parallelism != m.cfg.Parallelism
	m.cfg = cfg
	if reshard {
		// The per-shard blend rows (freshK/oldK/freshT/oldT) are sized P×·;
		// the sharded accumulators (mat.Sharded) self-resize on first use.
		m.ws = m.newWorkScratch()
	}
	return nil
}

// Clone returns an independent copy of the model: the serving layer
// snapshots online-learning trajectories on clones. Variational parameters
// and per-item mutable state are deep-copied; the ingestion index
// (perWorker/perItem/arrival) is shared structurally with the source under
// the append-only discipline of chunks.go, so cloning costs O(items +
// workers + parameters) — independent of how many answers have streamed in.
func (m *Model) Clone() *Model {
	c := *m
	c.rng = rand.New(rand.NewSource(m.cfg.Seed + int64(m.batchIndex) + 1))
	// The interner's id table is shared history; the clone gets its own id
	// map so both sides can intern new sets independently. The panel cache
	// is private per model (it aliases the model's own elogPsi): start empty.
	c.intern = m.intern.Clone()
	c.panels = panelCache{disabled: m.panels.disabled}
	cpF := func(v []float64) []float64 { return append([]float64(nil), v...) }
	c.kappa = m.kappa.Clone()
	c.phi = m.phi.Clone()
	c.lambda = m.lambda.Clone()
	c.zeta = m.zeta.Clone()
	c.rho1, c.rho2 = cpF(m.rho1), cpF(m.rho2)
	c.ups1, c.ups2 = cpF(m.ups1), cpF(m.ups2)
	c.elogPi, c.elogTau = cpF(m.elogPi), cpF(m.elogTau)
	c.elogPsi, c.elogPhi = m.elogPsi.Clone(), m.elogPhi.Clone()
	c.relm, c.workerRelW = cpF(m.relm), cpF(m.workerRelW)
	c.tprM, c.fprM = cpF(m.tprM), cpF(m.fprM)
	c.tpNumU, c.tpDenU = cpF(m.tpNumU), cpF(m.tpDenU)
	c.fpNumU, c.fpDenU = cpF(m.fpNumU), cpF(m.fpDenU)
	c.voteLW, c.missLW = cpF(m.voteLW), cpF(m.missLW)
	c.labelPrev = cpF(m.labelPrev)
	if m.runTP != nil {
		c.runTP, c.runTPD = cpF(m.runTP), cpF(m.runTPD)
		c.runFP, c.runFPD = cpF(m.runFP), cpF(m.runFPD)
		c.runAgree, c.runAgreeD = cpF(m.runAgree), cpF(m.runAgreeD)
		c.runPrevN, c.runPrevD = cpF(m.runPrevN), cpF(m.runPrevD)
	}
	// Shared-prefix views of the append-only ingestion index: O(lists), not
	// O(answers). Capacity-clamped headers keep both sides' future appends
	// out of each other's storage.
	c.perWorker = make([]ansList, len(m.perWorker))
	for u := range m.perWorker {
		c.perWorker[u] = m.perWorker[u].shareClone()
	}
	c.perItem = make([]ansList, len(m.perItem))
	for i := range m.perItem {
		c.perItem[i] = m.perItem[i].shareClone()
	}
	c.arrival = m.arrival[:len(m.arrival):len(m.arrival)]
	// Inner slices are rebind-only (never mutated in place): share them.
	c.revealedTruth = append([][]int(nil), m.revealedTruth...)
	c.votedList = append([][]int(nil), m.votedList...)
	// yhatVals entries ARE mutated in place by imputeTruth: deep-copy.
	c.yhatVals = make([][]float64, len(m.yhatVals))
	for i := range m.yhatVals {
		c.yhatVals[i] = append([]float64(nil), m.yhatVals[i]...)
	}
	c.dirtyFlags = append([]bool(nil), m.dirtyFlags...)
	c.dirtyItems = append([]int(nil), m.dirtyItems...)
	// Reduction accumulators and working buffers must not be shared between
	// models; reallocate the clone's privately.
	c.accLambda, c.accZeta, c.accCoin, c.accAgree, c.accLogLik =
		mat.Sharded{}, mat.Sharded{}, mat.Sharded{}, mat.Sharded{}, mat.Sharded{}
	c.ws = m.newWorkScratch()
	return &c
}

// newWorkScratch allocates a fresh set of working buffers sized to the
// model's dimensions.
func (m *Model) newWorkScratch() workScratch {
	U, I, C, M, T := m.numWorkers, m.numItems, m.numLabels, m.M, m.T
	P := m.cfg.Parallelism
	countLen := U
	if I > countLen {
		countLen = I
	}
	return workScratch{
		lambdaSuff: make([]float64, T*M*C),
		zetaSuff:   make([]float64, T*C),
		colSumM:    make([]float64, M),
		colSumT:    make([]float64, T),
		agreeStats: make([]float64, 2*M),
		coinStats:  make([]float64, m.coinLen()),
		psiMean:    mat.New(T*M, C),
		phiMean:    mat.New(T, C),
		nbar:       make([]float64, T),
		sigFall:    make([]int, I),
		sigLen:     make([]int, I),
		prevKappa:  mat.New(U, M),
		prevPhi:    mat.New(I, T),
		groupCount: make([]int32, countLen),
		freshK:     mat.New(P, M),
		oldK:       mat.New(P, M),
		freshT:     mat.New(P, T),
		oldT:       mat.New(P, T),
	}
}

// answerScore computes Σ_{c∈xs} elogPsi[t][m][c] for a given (t, m), the
// data term E[ln p(x_iu | ψ_tm)] up to the count-factorial constant that
// cancels in all softmax normalisations. xs must be the canonical sorted
// member slice: the score-panel cache (panels.go) sums in the same order,
// which is what makes cached panels bit-identical to this function.
func (m *Model) answerScore(t, mm int, xs []int) float64 {
	psi := m.elogPsi.Data()
	base := (t*m.M + mm) * m.numLabels
	s := 0.0
	for _, c := range xs {
		s += psi[base+c]
	}
	return s
}

// NumAnswers returns the number of answers the model currently retains in
// storage — the full ingested stream unless Config.AnswerWindow trims it.
func (m *Model) NumAnswers() int { return m.numAns }

// TotalIngested returns the number of answers ever ingested, monotone across
// AnswerWindow compactions. This is the stream-position coordinate the
// serving layer's journal accounting uses: a checkpoint of this model covers
// the first TotalIngested answer lines.
func (m *Model) TotalIngested() int { return m.totalAns }
