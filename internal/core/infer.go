package core

import (
	"fmt"
	"math"
	"sync"

	"cpa/internal/answers"
	"cpa/internal/mathx"
)

// TrainStats reports the trajectory of a Fit or FitStream call.
type TrainStats struct {
	// Iterations actually run (VI) or batches consumed (SVI).
	Iterations int
	// Converged reports whether the parameter-delta criterion fired before
	// MaxIter (always false for SVI, which is single-pass by design).
	Converged bool
	// Deltas holds the max absolute responsibility change per iteration.
	Deltas []float64
	// DataLogLik traces the expected data log likelihood Σ ln p(x_iu) under
	// the mean posterior — a cheap ELBO surrogate used to monitor progress.
	DataLogLik []float64
}

// FinalDelta returns the last recorded delta, or +Inf when none.
func (s *TrainStats) FinalDelta() float64 {
	if len(s.Deltas) == 0 {
		return math.Inf(1)
	}
	return s.Deltas[len(s.Deltas)-1]
}

// Fit runs batch variational inference (paper Algorithm 1) to convergence on
// the dataset. It may be called repeatedly; each call re-loads the data and
// continues from the current posterior.
func (m *Model) Fit(ds *answers.Dataset) (*TrainStats, error) {
	if ds == nil || ds.NumAnswers() == 0 {
		return nil, fmt.Errorf("%w: empty dataset", ErrConfig)
	}
	if err := m.loadDataset(ds); err != nil {
		return nil, err
	}
	stats := &TrainStats{}

	// Bootstrap: impute truth from plain votes (uniform reliability), seed
	// the responsibilities from the data (DESIGN.md D6) on the first fit,
	// then fold them into the globals so the first local update sees a
	// symmetry-broken posterior.
	m.imputeTruth(nil)
	if !m.fitted {
		m.seedFromData()
	}
	m.updateGlobal()
	m.updateReliability()
	m.imputeTruth(nil)
	m.refreshExpectations()

	prevKappa := append([]float64(nil), m.kappa...)
	prevPhi := append([]float64(nil), m.phi...)
	for iter := 0; iter < m.cfg.MaxIter; iter++ {
		// Deterministic annealing: keep the local responsibilities soft for
		// the first iterations so assignments can move off the seed before
		// the posterior hardens (DESIGN.md D6).
		m.temp = math.Max(1, 4*math.Pow(0.5, float64(iter)))
		m.updateLocal()
		m.updateGlobal()
		m.updateReliability()
		m.imputeTruth(nil)
		m.refreshExpectations()

		delta := math.Max(mathx.MaxAbsDiff(m.kappa, prevKappa), mathx.MaxAbsDiff(m.phi, prevPhi))
		stats.Deltas = append(stats.Deltas, delta)
		stats.DataLogLik = append(stats.DataLogLik, m.dataLogLik())
		stats.Iterations = iter + 1
		copy(prevKappa, m.kappa)
		copy(prevPhi, m.phi)
		if delta < m.cfg.Tol && m.temp <= 1 {
			stats.Converged = true
			break
		}
	}
	m.fitted = true
	return stats, nil
}

// updateLocal performs the coordinate-ascent updates of the local variables:
// worker community responsibilities κ (Eq. 2) and item cluster
// responsibilities ϕ (Eq. 3 extended per DESIGN.md D1). With
// Config.Parallelism > 1 the per-worker and per-item updates run on the
// Algorithm 3 map shards.
func (m *Model) updateLocal() {
	if !m.cfg.DisableCommunities {
		m.parallelFor(m.numWorkers, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				m.updateKappaRow(u)
			}
		})
	}
	if !m.cfg.DisableClusters {
		m.parallelFor(m.numItems, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				m.updatePhiRow(i)
			}
		})
	}
}

// updateKappaRow recomputes q(z_u) for one worker (Eq. 2):
//
//	κ_um ∝ exp( Σ_i Σ_t ϕ_it E[ln p(x_iu | ψ_tm)] + E[ln π_m] )
func (m *Model) updateKappaRow(u int) {
	M, T := m.M, m.T
	row := m.kappa[u*M : (u+1)*M]
	copy(row, m.elogPi)
	for _, ar := range m.perWorker[u] {
		phiRow := m.phi[ar.other*T : (ar.other+1)*T]
		for t := 0; t < T; t++ {
			pt := phiRow[t]
			if pt < 1e-8 {
				continue
			}
			for mm := 0; mm < M; mm++ {
				row[mm] += pt * m.answerScore(t, mm, ar.labels)
			}
		}
	}
	if m.temp > 1 {
		mathx.Scale(row, 1/m.temp)
	}
	mathx.SoftmaxInPlace(row)
}

// updatePhiRow recomputes q(l_i) for one item: the literal Eq. 3 terms
// (truth emission + stick prior) plus, unless LiteralPhiUpdate is set, the
// answer-evidence term a_it = Σ_u Σ_m κ_um E[ln p(x_iu | ψ_tm)] that the
// paper's Appendix C uses for the same quantity (DESIGN.md D1). Unobserved
// truth contributes through its imputed expectation ŷ (DESIGN.md D2).
func (m *Model) updatePhiRow(i int) {
	M, T, C := m.M, m.T, m.numLabels
	row := m.phi[i*T : (i+1)*T]
	copy(row, m.elogTau)
	// Truth-emission evidence: Σ_c E[y_ic]·E[ln φ_tc].
	if truth := m.revealedTruth[i]; truth != nil {
		for t := 0; t < T; t++ {
			s := 0.0
			for _, c := range truth {
				s += m.elogPhi[t*C+c]
			}
			row[t] += s
		}
	} else if !m.cfg.GroundTruthOnly {
		voted := m.votedList[i]
		vals := m.yhatVals[i]
		for t := 0; t < T; t++ {
			s := 0.0
			for k, c := range voted {
				if v := vals[k]; v > 1e-8 {
					s += v * m.elogPhi[t*C+c]
				}
			}
			row[t] += s
		}
	}
	// Answer evidence (Appendix C's a_it term).
	if !m.cfg.LiteralPhiUpdate {
		for _, ar := range m.perItem[i] {
			kappaRow := m.kappa[ar.other*M : (ar.other+1)*M]
			for t := 0; t < T; t++ {
				s := 0.0
				for mm := 0; mm < M; mm++ {
					km := kappaRow[mm]
					if km < 1e-8 {
						continue
					}
					s += km * m.answerScore(t, mm, ar.labels)
				}
				row[t] += s
			}
		}
	}
	if m.temp > 1 {
		mathx.Scale(row, 1/m.temp)
	}
	mathx.SoftmaxInPlace(row)
}

// updateGlobal recomputes the global variational parameters: the stick
// posteriors ρ, υ (Eqs. 4–5) and the Dirichlet posteriors λ, ζ (Eqs. 6–7,
// with Eq. 7 extended by imputed truth per DESIGN.md D2).
func (m *Model) updateGlobal() {
	m.updateSticks()
	m.updateLambda()
	m.updateZeta()
}

// updateSticks implements Eqs. (4) and (5).
func (m *Model) updateSticks() {
	M, T := m.M, m.T
	if M > 1 {
		colSum := make([]float64, M)
		for u := 0; u < m.numWorkers; u++ {
			for mm := 0; mm < M; mm++ {
				colSum[mm] += m.kappa[u*M+mm]
			}
		}
		suffix := 0.0
		for mm := M - 1; mm >= 0; mm-- {
			if mm < M-1 {
				m.rho1[mm] = 1 + colSum[mm]
				m.rho2[mm] = m.cfg.Alpha + suffix
			}
			suffix += colSum[mm]
		}
	}
	if T > 1 {
		colSum := make([]float64, T)
		for i := 0; i < m.numItems; i++ {
			for t := 0; t < T; t++ {
				colSum[t] += m.phi[i*T+t]
			}
		}
		suffix := 0.0
		for t := T - 1; t >= 0; t-- {
			if t < T-1 {
				m.ups1[t] = 1 + colSum[t]
				m.ups2[t] = m.cfg.Epsilon + suffix
			}
			suffix += colSum[t]
		}
	}
}

// updateLambda implements Eq. (6): λ_tmc = γ + Σ_i ϕ_it Σ_u κ_um x_iuc.
// Shards accumulate over disjoint item ranges into private buffers that are
// reduced in shard order: results are deterministic for a fixed Parallelism,
// and agree across Parallelism values up to floating-point reduction order.
func (m *Model) updateLambda() {
	M, T, C := m.M, m.T, m.numLabels
	shards := m.shardCount(m.numItems)
	buffers := m.lambdaScratch(shards, T*M*C)
	m.parallelForShards(m.numItems, shards, func(shard, lo, hi int) {
		buf := buffers[shard]
		for k := range buf {
			buf[k] = 0
		}
		for i := lo; i < hi; i++ {
			phiRow := m.phi[i*T : (i+1)*T]
			for _, ar := range m.perItem[i] {
				kappaRow := m.kappa[ar.other*M : (ar.other+1)*M]
				for t := 0; t < T; t++ {
					pt := phiRow[t]
					if pt < 1e-8 {
						continue
					}
					rowBase := (t * M) * C
					for mm := 0; mm < M; mm++ {
						w := pt * kappaRow[mm]
						if w < 1e-10 {
							continue
						}
						base := rowBase + mm*C
						for _, c := range ar.labels {
							buf[base+c] += w
						}
					}
				}
			}
		}
	})
	mathx.Fill(m.lambda, m.cfg.GammaPrior)
	for _, buf := range buffers {
		for k, v := range buf {
			m.lambda[k] += v
		}
	}
}

// updateZeta implements Eq. (7) with imputed truth:
// ζ_tc = η + Σ_i ϕ_it · E[y_ic], where E[y_ic] is the revealed truth
// indicator when available, the reliability-weighted vote otherwise
// (DESIGN.md D2), or absent entirely under GroundTruthOnly.
func (m *Model) updateZeta() {
	T, C := m.T, m.numLabels
	mathx.Fill(m.zeta, m.cfg.EtaPrior)
	for i := 0; i < m.numItems; i++ {
		phiRow := m.phi[i*T : (i+1)*T]
		truth := m.revealedTruth[i]
		if truth == nil && m.cfg.GroundTruthOnly {
			continue
		}
		for t := 0; t < T; t++ {
			pt := phiRow[t]
			if pt < 1e-8 {
				continue
			}
			base := t * C
			if truth != nil {
				for _, c := range truth {
					m.zeta[base+c] += pt
				}
				continue
			}
			voted := m.votedList[i]
			vals := m.yhatVals[i]
			for k, c := range voted {
				if v := vals[k]; v > 1e-8 {
					m.zeta[base+c] += pt * v
				}
			}
		}
	}
}

// updateReliability derives community reliabilities rel_m from the mean
// agreement (Jaccard) between the answers of a community's workers and the
// hardened current consensus ŷ, pooled over the community (requirement R1:
// assessing workers through their community is robust where per-worker data
// is sparse). Reliabilities are min-max normalised and floored, then folded
// into per-worker weights w_u = Σ_m κ_um rel_m (DESIGN.md D2). The mutual
// reinforcement — better consensus → sharper reliabilities → better
// consensus — is the iterative mechanism the paper's §1 describes.
func (m *Model) updateReliability() {
	M := m.M
	// Hardened consensus signature per item: voted labels with ŷ > 0.5,
	// falling back to the single strongest label.
	hard := m.hardConsensus()

	agreeNum := make([]float64, M)
	agreeDen := make([]float64, M)
	member := make(map[int]bool)
	for u := 0; u < m.numWorkers; u++ {
		agree, n := 0.0, 0
		for _, ar := range m.perWorker[u] {
			sig := hard[ar.other]
			for k := range member {
				delete(member, k)
			}
			for _, c := range sig {
				member[c] = true
			}
			inter := 0
			for _, c := range ar.labels {
				if member[c] {
					inter++
				}
			}
			union := len(ar.labels) + len(sig) - inter
			if union > 0 {
				agree += float64(inter) / float64(union)
			} else {
				agree++
			}
			n++
		}
		if n == 0 {
			continue
		}
		a := agree / float64(n)
		for mm := 0; mm < M; mm++ {
			k := m.kappa[u*M+mm]
			agreeNum[mm] += k * a
			agreeDen[mm] += k
		}
	}
	// Community-level two-coin rates against the hardened consensus
	// (requirement R2: worker validity assessed at the level of individual
	// labels, pooled by community for sparse-data robustness). For each
	// voted label of each item, every answering worker either asserted it
	// (vote) or left it out (miss); rates are κ-weighted per community.
	tpNum := make([]float64, M)
	tpDen := make([]float64, M)
	fpNum := make([]float64, M)
	fpDen := make([]float64, M)
	prevNum := make([]float64, m.numLabels)
	prevDen := make([]float64, m.numLabels)
	mathx.Fill(m.tpNumU, 0)
	mathx.Fill(m.tpDenU, 0)
	mathx.Fill(m.fpNumU, 0)
	mathx.Fill(m.fpDenU, 0)
	for i := 0; i < m.numItems; i++ {
		sig := hard[i]
		for k := range member {
			delete(member, k)
		}
		for _, c := range sig {
			member[c] = true
		}
		for k, c := range m.votedList[i] {
			prevNum[c] += m.yhatVals[i][k]
			prevDen[c]++
		}
		for _, ar := range m.perItem[i] {
			u := ar.other
			for _, c := range m.votedList[i] {
				pos := member[c]
				j := searchInts(ar.labels, c)
				vote := j < len(ar.labels) && ar.labels[j] == c
				if pos {
					m.tpDenU[u]++
					if vote {
						m.tpNumU[u]++
					}
				} else {
					m.fpDenU[u]++
					if vote {
						m.fpNumU[u]++
					}
				}
				for mm := 0; mm < M; mm++ {
					k := m.kappa[u*M+mm]
					if k < 1e-8 {
						continue
					}
					if pos {
						tpDen[mm] += k
						if vote {
							tpNum[mm] += k
						}
					} else {
						fpDen[mm] += k
						if vote {
							fpNum[mm] += k
						}
					}
				}
			}
		}
	}
	for c := 0; c < m.numLabels; c++ {
		m.labelPrev[c] = (prevNum[c] + 0.5) / (prevDen[c] + 2)
	}
	m.deriveWorkerModel(tpNum, tpDen, fpNum, fpDen, agreeNum, agreeDen)
}

// deriveWorkerModel turns the accumulated two-coin counts into the worker
// model. Community rates come from the κ-weighted accumulators; each
// worker's rates are its own raw counts shrunk toward its community's rates
// with shrinkageObs pseudo-observations — the community acts as a prior
// (requirement R1: robust for sparse workers) while prolific workers are
// judged mostly on their own record. Per-worker vote/miss log-odds weights
// and min-max-normalised reliabilities follow.
func (m *Model) deriveWorkerModel(tpNum, tpDen, fpNum, fpDen, agreeNum, agreeDen []float64) {
	const shrinkageObs = 8.0
	M := m.M
	for mm := 0; mm < M; mm++ {
		tpr := (tpNum[mm] + 1) / (tpDen[mm] + 2)
		fpr := (fpNum[mm] + 1) / (fpDen[mm] + 2)
		m.tprM[mm] = mathx.Clamp(tpr, 0.05, 0.98)
		m.fprM[mm] = mathx.Clamp(fpr, 0.02, 0.95)
	}
	for u := 0; u < m.numWorkers; u++ {
		commTPR, commFPR := 0.0, 0.0
		for mm := 0; mm < M; mm++ {
			k := m.kappa[u*M+mm]
			if k < 1e-8 {
				continue
			}
			commTPR += k * m.tprM[mm]
			commFPR += k * m.fprM[mm]
		}
		tprU := mathx.Clamp((m.tpNumU[u]+shrinkageObs*commTPR)/(m.tpDenU[u]+shrinkageObs), 0.05, 0.98)
		fprU := mathx.Clamp((m.fpNumU[u]+shrinkageObs*commFPR)/(m.fpDenU[u]+shrinkageObs), 0.02, 0.95)
		m.voteLW[u] = math.Log(tprU / fprU)
		m.missLW[u] = math.Log((1 - tprU) / (1 - fprU))
	}
	minRel, maxRel := math.Inf(1), math.Inf(-1)
	for mm := 0; mm < M; mm++ {
		if agreeDen[mm] > 1e-9 {
			m.relm[mm] = agreeNum[mm] / agreeDen[mm]
		} else {
			m.relm[mm] = math.NaN() // empty community: resolved below
		}
		if !math.IsNaN(m.relm[mm]) {
			if m.relm[mm] < minRel {
				minRel = m.relm[mm]
			}
			if m.relm[mm] > maxRel {
				maxRel = m.relm[mm]
			}
		}
	}
	if !(maxRel > minRel) {
		mathx.Fill(m.relm, 1)
	} else {
		span := maxRel - minRel
		for mm := range m.relm {
			if math.IsNaN(m.relm[mm]) {
				m.relm[mm] = 0.5 // neutral weight for empty communities
				continue
			}
			m.relm[mm] = math.Max(0.05, (m.relm[mm]-minRel)/span)
		}
	}
	for u := 0; u < m.numWorkers; u++ {
		w := 0.0
		for mm := 0; mm < M; mm++ {
			w += m.kappa[u*M+mm] * m.relm[mm]
		}
		m.workerRelW[u] = w
	}
	m.haveRates = true
}

// hardConsensus returns, per item, the sorted labels whose imputed (or
// revealed) expectation exceeds 0.5, falling back to the single strongest
// label so every answered item has a non-empty signature.
func (m *Model) hardConsensus() [][]int {
	out := make([][]int, m.numItems)
	for i := 0; i < m.numItems; i++ {
		voted := m.votedList[i]
		vals := m.yhatVals[i]
		var sig []int
		bestK, bestV := -1, 0.0
		for k, c := range voted {
			if vals[k] > 0.5 {
				sig = append(sig, c)
			}
			if vals[k] > bestV {
				bestK, bestV = k, vals[k]
			}
		}
		if len(sig) == 0 && bestK >= 0 {
			sig = []int{voted[bestK]}
		}
		out[i] = sig
	}
	return out
}

// imputeTruth recomputes the imputed truth expectations ŷ_ic for items
// without revealed truth (DESIGN.md D2). Before the first worker-model pass
// it uses reliability-weighted vote frequencies (bootstrap); afterwards it
// computes a calibrated per-label posterior: a two-coin log-odds vote with
// the per-worker community rates, around a prior drawn from the item's
// cluster emissions — the channel through which label co-occurrence
// dependencies flow into the consensus (requirement R3). When items is nil
// every item is refreshed; otherwise only the listed items are.
func (m *Model) imputeTruth(items []int) {
	var phiMean []float64
	var nbar []float64
	if m.haveRates {
		T, C := m.T, m.numLabels
		phiMean = make([]float64, T*C)
		copy(phiMean, m.zeta)
		for t := 0; t < T; t++ {
			mathx.NormalizeInPlace(phiMean[t*C : (t+1)*C])
		}
		nbar = m.clusterTruthSizes()
	}
	apply := func(i int) {
		voted := m.votedList[i]
		vals := m.yhatVals[i]
		if truth := m.revealedTruth[i]; truth != nil {
			// Revealed items carry exact expectations.
			for k, c := range voted {
				vals[k] = 0
				for _, tc := range truth {
					if tc == c {
						vals[k] = 1
						break
					}
				}
			}
			return
		}
		if m.cfg.GroundTruthOnly {
			// Literal Eq. 7 ablation: unobserved truth contributes nothing
			// anywhere — demonstrating why grounding is required (D2).
			for k := range vals {
				vals[k] = 0
			}
			return
		}
		if !m.haveRates {
			// Bootstrap: reliability-weighted vote share.
			for k := range vals {
				vals[k] = 0
			}
			denom := 0.0
			for _, ar := range m.perItem[i] {
				w := m.workerRelW[ar.other]
				denom += w
				for _, c := range ar.labels {
					vals[searchInts(voted, c)] += w
				}
			}
			if denom > 0 {
				inv := 1 / denom
				for k := range vals {
					vals[k] *= inv
				}
			}
			return
		}
		// Calibrated path: prior log-odds combining the cluster-mixture
		// prior (label co-occurrence, R3) with the per-label empirical
		// prevalence (the class prior): clusters lift co-occurring labels
		// where the clustering is informative, prevalence separates
		// commonly-true labels from incidental votes everywhere else.
		T, C := m.T, m.numLabels
		phiRow := m.phi[i*T : (i+1)*T]
		for k, c := range voted {
			prior := 0.0
			for t := 0; t < T; t++ {
				pt := phiRow[t]
				if pt < 1e-6 {
					continue
				}
				prior += pt * mathx.Clamp(nbar[t]*phiMean[t*C+c], 0.02, 0.90)
			}
			prior = math.Max(prior, m.labelPrev[c])
			if m.expertCooc != nil {
				// §6 extension: expert conditional probabilities floor the
				// prior of labels implied by currently-believed ones.
				prior = math.Max(prior, 0.9*m.expertPriorFloor(i, c))
			}
			prior = mathx.Clamp(prior, 0.05, 0.90)
			logOdds := math.Log(prior) - math.Log1p(-prior)
			for _, ar := range m.perItem[i] {
				j := searchInts(ar.labels, c)
				if j < len(ar.labels) && ar.labels[j] == c {
					logOdds += m.voteLW[ar.other]
				} else {
					logOdds += m.missLW[ar.other]
				}
			}
			vals[k] = 1 / (1 + math.Exp(-mathx.Clamp(logOdds, -30, 30)))
		}
		if m.expertCooc != nil {
			// §6 extension, second stage: propagate belief along expert
			// implications — "include label b whenever label a has been
			// assigned" (the paper's §2.1 motivating rule). One pass over
			// ordered pairs of voted labels.
			for k, a := range voted {
				if vals[k] <= 0.5 {
					continue
				}
				row := m.expertCooc[a]
				for j, b := range voted {
					if implied := row[b] * vals[k]; implied > vals[j] {
						vals[j] = implied
					}
				}
			}
		}
	}
	if items == nil {
		for i := 0; i < m.numItems; i++ {
			apply(i)
		}
		return
	}
	for _, i := range items {
		apply(i)
	}
}

// searchInts is a tiny binary search over a sorted int slice; the slices are
// voted-label lists of a dozen entries, so this beats sort.SearchInts'
// interface overhead in the hot path.
func searchInts(s []int, x int) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// dataLogLik computes the ELBO surrogate Σ_{(i,u)} ln Σ_t ϕ_it Σ_m κ_um
// p(x_iu | ψ̄_tm) under the posterior-mean confusion vectors — cheap,
// monotone-ish during training, used by tests and diagnostics.
func (m *Model) dataLogLik() float64 {
	M, T, C := m.M, m.T, m.numLabels
	psiMean := make([]float64, T*M*C)
	copy(psiMean, m.lambda)
	for t := 0; t < T; t++ {
		for mm := 0; mm < M; mm++ {
			mathx.NormalizeInPlace(psiMean[(t*M+mm)*C : (t*M+mm+1)*C])
		}
	}
	totals := make([]float64, m.shardCount(m.numItems))
	m.parallelForShards(m.numItems, len(totals), func(shard, lo, hi int) {
		sum := 0.0
		for i := lo; i < hi; i++ {
			phiRow := m.phi[i*T : (i+1)*T]
			for _, ar := range m.perItem[i] {
				kappaRow := m.kappa[ar.other*M : (ar.other+1)*M]
				lik := 0.0
				for t := 0; t < T; t++ {
					pt := phiRow[t]
					if pt < 1e-10 {
						continue
					}
					inner := 0.0
					for mm := 0; mm < M; mm++ {
						km := kappaRow[mm]
						if km < 1e-10 {
							continue
						}
						p := 1.0
						base := (t*M + mm) * C
						for _, c := range ar.labels {
							p *= math.Max(psiMean[base+c], 1e-12)
						}
						inner += km * p
					}
					lik += pt * inner
				}
				sum += math.Log(math.Max(lik, 1e-300))
			}
		}
		totals[shard] = sum
	})
	return mathx.Sum(totals)
}

// ---------------------------------------------------------------------------
// Algorithm 3: map-reduce parallelisation
// ---------------------------------------------------------------------------

// shardCount returns the number of map shards for a loop over n elements.
func (m *Model) shardCount(n int) int {
	p := m.cfg.Parallelism
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// parallelFor splits [0, n) into contiguous shards processed concurrently.
// With Parallelism 1 it runs inline (no goroutine overhead).
func (m *Model) parallelFor(n int, fn func(lo, hi int)) {
	shards := m.shardCount(n)
	if shards == 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		lo := s * n / shards
		hi := (s + 1) * n / shards
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// parallelForShards is parallelFor with the shard index exposed, for
// reductions into per-shard buffers.
func (m *Model) parallelForShards(n, shards int, fn func(shard, lo, hi int)) {
	if shards == 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		lo := s * n / shards
		hi := (s + 1) * n / shards
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			fn(s, lo, hi)
		}(s, lo, hi)
	}
	wg.Wait()
}

// lambdaScratch returns per-shard accumulation buffers, reusing prior
// allocations when the shape matches.
func (m *Model) lambdaScratch(shards, size int) [][]float64 {
	if len(m.scratch) != shards || (shards > 0 && len(m.scratch[0]) != size) {
		m.scratch = make([][]float64, shards)
		for s := range m.scratch {
			m.scratch[s] = make([]float64, size)
		}
	}
	return m.scratch
}
