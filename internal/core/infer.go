package core

import (
	"fmt"
	"math"

	"cpa/internal/answers"
	"cpa/internal/mat"
	"cpa/internal/mathx"
)

// TrainStats reports the trajectory of a Fit or FitStream call.
type TrainStats struct {
	// Iterations actually run (VI) or batches consumed (SVI).
	Iterations int
	// Converged reports whether the parameter-delta criterion fired before
	// MaxIter (always false for SVI, which is single-pass by design).
	Converged bool
	// Deltas holds the max absolute responsibility change per iteration.
	Deltas []float64
	// DataLogLik traces the expected data log likelihood Σ ln p(x_iu) under
	// the mean posterior — a cheap ELBO surrogate used to monitor progress.
	DataLogLik []float64
}

// FinalDelta returns the last recorded delta, or +Inf when none.
func (s *TrainStats) FinalDelta() float64 {
	if len(s.Deltas) == 0 {
		return math.Inf(1)
	}
	return s.Deltas[len(s.Deltas)-1]
}

// Fit runs batch variational inference (paper Algorithm 1) to convergence on
// the dataset. It may be called repeatedly; each call re-loads the data and
// continues from the current posterior.
func (m *Model) Fit(ds *answers.Dataset) (*TrainStats, error) {
	if ds == nil || ds.NumAnswers() == 0 {
		return nil, fmt.Errorf("%w: empty dataset", ErrConfig)
	}
	if err := m.loadDataset(ds); err != nil {
		return nil, err
	}
	stats := &TrainStats{}

	// Bootstrap: impute truth from plain votes (uniform reliability), seed
	// the responsibilities from the data (DESIGN.md D6) on the first fit,
	// then fold them into the globals so the first local update sees a
	// symmetry-broken posterior.
	m.imputeTruth(nil)
	if !m.fitted {
		m.seedFromData()
	}
	m.updateGlobal()
	m.updateReliability()
	m.imputeTruth(nil)
	m.refreshExpectations()

	prevKappa, prevPhi := m.ws.prevKappa, m.ws.prevPhi
	prevKappa.CopyFrom(m.kappa)
	prevPhi.CopyFrom(m.phi)
	for iter := 0; iter < m.cfg.MaxIter; iter++ {
		// Deterministic annealing: keep the local responsibilities soft for
		// the first iterations so assignments can move off the seed before
		// the posterior hardens (DESIGN.md D6).
		m.temp = math.Max(1, 4*math.Pow(0.5, float64(iter)))
		m.updateLocal()
		m.updateGlobal()
		m.updateReliability()
		m.imputeTruth(nil)
		m.refreshExpectations()

		delta := math.Max(m.kappa.MaxAbsDiff(prevKappa), m.phi.MaxAbsDiff(prevPhi))
		stats.Deltas = append(stats.Deltas, delta)
		stats.DataLogLik = append(stats.DataLogLik, m.dataLogLik())
		stats.Iterations = iter + 1
		prevKappa.CopyFrom(m.kappa)
		prevPhi.CopyFrom(m.phi)
		if delta < m.cfg.Tol && m.temp <= 1 {
			stats.Converged = true
			break
		}
	}
	m.fitted = true
	return stats, nil
}

// updateLocal performs the coordinate-ascent updates of the local variables:
// worker community responsibilities κ (Eq. 2) and item cluster
// responsibilities ϕ (Eq. 3 extended per DESIGN.md D1). With
// Config.Parallelism > 1 the per-worker and per-item updates run on the
// Algorithm 3 map shards (each shard writes only its own responsibility
// rows).
func (m *Model) updateLocal() {
	// Serial sync point: bring the per-set score panels up to date with the
	// current expectations before the shards start reading them.
	m.ensureScorePanels()
	if !m.cfg.DisableCommunities {
		m.parallelFor(m.numWorkers, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				m.updateKappaRow(u)
			}
		})
	}
	if !m.cfg.DisableClusters {
		m.parallelFor(m.numItems, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				m.updatePhiRow(i)
			}
		})
	}
}

// updateKappaRow recomputes q(z_u) for one worker (Eq. 2) through the
// shared scoring kernel — the batch case is the stochastic update with the
// full answer list and scale 1.
func (m *Model) updateKappaRow(u int) {
	row := m.kappa.Row(u)
	m.scoreKappaList(&m.perWorker[u], 1, row)
	if m.temp > 1 {
		mathx.Scale(row, 1/m.temp)
	}
	mathx.SoftmaxInPlace(row)
}

// updatePhiRow recomputes q(l_i) for one item through the shared scoring
// kernel (Eq. 3 + Appendix C answer evidence, DESIGN.md D1/D2).
func (m *Model) updatePhiRow(i int) {
	row := m.phi.Row(i)
	m.scorePhiList(i, 1, row)
	if m.temp > 1 {
		mathx.Scale(row, 1/m.temp)
	}
	mathx.SoftmaxInPlace(row)
}

// updateGlobal recomputes the global variational parameters: the stick
// posteriors ρ, υ (Eqs. 4–5) and the Dirichlet posteriors λ, ζ (Eqs. 6–7,
// with Eq. 7 extended by imputed truth per DESIGN.md D2). Each is the
// ω = 1, scale = 1 case of the shared blending kernels the SVI path uses.
func (m *Model) updateGlobal() {
	m.updateSticks()
	m.updateLambda()
	m.updateZeta()
}

// updateSticks implements Eqs. (4) and (5).
func (m *Model) updateSticks() {
	if m.M > 1 {
		colSum := m.ws.colSumM
		mat.Fill(colSum, 0)
		m.kappa.ColSumsInto(colSum, nil)
		applySticks(m.rho1, m.rho2, colSum, m.cfg.Alpha, 1, 1)
	}
	if m.T > 1 {
		colSum := m.ws.colSumT
		mat.Fill(colSum, 0)
		m.phi.ColSumsInto(colSum, nil)
		applySticks(m.ups1, m.ups2, colSum, m.cfg.Epsilon, 1, 1)
	}
}

// updateLambda implements Eq. (6): λ_tmc = γ + Σ_i ϕ_it Σ_u κ_um x_iuc.
// Shards accumulate the per-answer suffstats over disjoint item ranges into
// private buffers that are reduced in shard order: results are
// deterministic for a fixed Parallelism, and agree across Parallelism
// values up to floating-point reduction order.
func (m *Model) updateLambda() {
	suff := m.ws.lambdaSuff
	m.accLambda.Accumulate(suff, 0, len(suff), m.numItems, m.shardCount(m.numItems),
		func(buf []float64, lo, hi int) {
			for i := lo; i < hi; i++ {
				l := &m.perItem[i]
				for s, n := 0, l.segs(); s < n; s++ {
					for _, ar := range l.seg(s) {
						m.lambdaAnswerStat(buf, i, ar.other, m.intern.Canon(ar.set))
					}
				}
			}
		})
	applyDirichlet(m.lambda.Data(), suff, m.cfg.GammaPrior, 1, 1)
}

// updateZeta implements Eq. (7) with imputed truth: ζ_tc = η + Σ_i ϕ_it ·
// E[y_ic] (DESIGN.md D2), sharded over items like updateLambda.
func (m *Model) updateZeta() {
	suff := m.ws.zetaSuff
	m.accZeta.Accumulate(suff, 0, len(suff), m.numItems, m.shardCount(m.numItems),
		func(buf []float64, lo, hi int) {
			for i := lo; i < hi; i++ {
				m.zetaItemStat(buf, i)
			}
		})
	applyDirichlet(m.zeta.Data(), suff, m.cfg.EtaPrior, 1, 1)
}

// updateReliability derives community reliabilities rel_m from the mean
// agreement (Jaccard) between the answers of a community's workers and the
// hardened current consensus ŷ, pooled over the community (requirement R1:
// assessing workers through their community is robust where per-worker data
// is sparse), together with the community/worker two-coin rates against the
// same consensus (requirement R2). Both passes run on the Algorithm 3
// shards with deterministic shard-order reduction. Reliabilities are
// min-max normalised and floored, then folded into per-worker weights
// w_u = Σ_m κ_um rel_m (DESIGN.md D2). The mutual reinforcement — better
// consensus → sharper reliabilities → better consensus — is the iterative
// mechanism the paper's §1 describes.
func (m *Model) updateReliability() {
	M, C, U := m.M, m.numLabels, m.numWorkers
	m.refreshHardSig(nil)

	// Community agreement, sharded over workers (each worker contributes
	// its mean agreement once, κ-weighted).
	agree := m.ws.agreeStats
	m.accAgree.Accumulate(agree, 0, 2*M, U, m.shardCount(U),
		func(buf []float64, lo, hi int) {
			for u := lo; u < hi; u++ {
				m.workerAgreeStats(u, buf)
			}
		})

	// Two-coin and prevalence counts, sharded over items.
	coins := m.ws.coinStats
	m.accCoin.Accumulate(coins, 0, m.coinLen(), m.numItems, m.shardCount(m.numItems),
		func(buf []float64, lo, hi int) {
			for i := lo; i < hi; i++ {
				m.itemCoinStats(i, buf)
			}
		})

	// Unpack: the batch pass replaces the per-worker raw counts wholesale.
	offTP, offTPD, offFP, offFPD, offPrevN, offPrevD, offTPU, offTPDU, offFPU, offFPDU := m.coinOffsets()
	copy(m.tpNumU, coins[offTPU:offTPU+U])
	copy(m.tpDenU, coins[offTPDU:offTPDU+U])
	copy(m.fpNumU, coins[offFPU:offFPU+U])
	copy(m.fpDenU, coins[offFPDU:offFPDU+U])
	for c := 0; c < C; c++ {
		m.labelPrev[c] = (coins[offPrevN+c] + 0.5) / (coins[offPrevD+c] + 2)
	}
	m.deriveWorkerModel(coins[offTP:offTP+M], coins[offTPD:offTPD+M],
		coins[offFP:offFP+M], coins[offFPD:offFPD+M], agree[:M], agree[M:])
}

// deriveWorkerModel turns the accumulated two-coin counts into the worker
// model. Community rates come from the κ-weighted accumulators; each
// worker's rates are its own raw counts shrunk toward its community's rates
// with shrinkageObs pseudo-observations — the community acts as a prior
// (requirement R1: robust for sparse workers) while prolific workers are
// judged mostly on their own record. Per-worker vote/miss log-odds weights
// and min-max-normalised reliabilities follow.
func (m *Model) deriveWorkerModel(tpNum, tpDen, fpNum, fpDen, agreeNum, agreeDen []float64) {
	const shrinkageObs = 8.0
	M := m.M
	for mm := 0; mm < M; mm++ {
		tpr := (tpNum[mm] + 1) / (tpDen[mm] + 2)
		fpr := (fpNum[mm] + 1) / (fpDen[mm] + 2)
		m.tprM[mm] = mathx.Clamp(tpr, 0.05, 0.98)
		m.fprM[mm] = mathx.Clamp(fpr, 0.02, 0.95)
	}
	for u := 0; u < m.numWorkers; u++ {
		kappaRow := m.kappa.Row(u)
		commTPR, commFPR := 0.0, 0.0
		for mm, k := range kappaRow {
			if k < respFloor {
				continue
			}
			commTPR += k * m.tprM[mm]
			commFPR += k * m.fprM[mm]
		}
		tprU := mathx.Clamp((m.tpNumU[u]+shrinkageObs*commTPR)/(m.tpDenU[u]+shrinkageObs), 0.05, 0.98)
		fprU := mathx.Clamp((m.fpNumU[u]+shrinkageObs*commFPR)/(m.fpDenU[u]+shrinkageObs), 0.02, 0.95)
		m.voteLW[u] = math.Log(tprU / fprU)
		m.missLW[u] = math.Log((1 - tprU) / (1 - fprU))
	}
	minRel, maxRel := math.Inf(1), math.Inf(-1)
	for mm := 0; mm < M; mm++ {
		if agreeDen[mm] > 1e-9 {
			m.relm[mm] = agreeNum[mm] / agreeDen[mm]
		} else {
			m.relm[mm] = math.NaN() // empty community: resolved below
		}
		if !math.IsNaN(m.relm[mm]) {
			if m.relm[mm] < minRel {
				minRel = m.relm[mm]
			}
			if m.relm[mm] > maxRel {
				maxRel = m.relm[mm]
			}
		}
	}
	if !(maxRel > minRel) {
		mathx.Fill(m.relm, 1)
	} else {
		span := maxRel - minRel
		for mm := range m.relm {
			if math.IsNaN(m.relm[mm]) {
				m.relm[mm] = 0.5 // neutral weight for empty communities
				continue
			}
			m.relm[mm] = math.Max(0.05, (m.relm[mm]-minRel)/span)
		}
	}
	for u := 0; u < m.numWorkers; u++ {
		m.workerRelW[u] = mathx.Dot(m.kappa.Row(u), m.relm)
	}
	m.haveRates = true
}

// imputeTruth recomputes the imputed truth expectations ŷ_ic for items
// without revealed truth (DESIGN.md D2). Before the first worker-model pass
// it uses reliability-weighted vote frequencies (bootstrap); afterwards it
// computes a calibrated per-label posterior: a two-coin log-odds vote with
// the per-worker community rates, around a prior drawn from the item's
// cluster emissions — the channel through which label co-occurrence
// dependencies flow into the consensus (requirement R3). When items is nil
// every item is refreshed on the Algorithm 3 shards (each item's ŷ is
// independent); otherwise only the listed items are, serially.
func (m *Model) imputeTruth(items []int) {
	m.imputePrep()
	if items == nil {
		m.parallelFor(m.numItems, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				m.imputeItem(i)
			}
		})
		return
	}
	for _, i := range items {
		m.imputeItem(i)
	}
}

// imputePrep refreshes the shared imputation inputs (the posterior-mean
// emissions ws.phiMean and the expected cluster truth-set sizes ws.nbar)
// from the current global parameters. Split from imputeTruth so the
// incremental publisher can freeze these inputs against the live ϕ before
// refreshing individual items (publish.go): each imputeItem call is then a
// pure per-item function of the prepared state.
func (m *Model) imputePrep() {
	if !m.haveRates {
		return
	}
	phiMean := m.ws.phiMean
	phiMean.CopyFrom(m.zeta)
	for t := 0; t < m.T; t++ {
		phiMean.NormalizeRow(t)
	}
	m.clusterTruthSizesInto(m.ws.nbar)
}

// imputeItem refreshes one item's ŷ from the inputs prepared by imputePrep.
// It reads only the item's own state (ϕ row, votes, answers) plus shared
// read-only inputs, so calls on distinct items are independent.
func (m *Model) imputeItem(i int) {
	voted := m.votedList[i]
	vals := m.yhatVals[i]
	if truth := m.revealedTruth[i]; truth != nil {
		// Revealed items carry exact expectations.
		for k, c := range voted {
			vals[k] = 0
			for _, tc := range truth {
				if tc == c {
					vals[k] = 1
					break
				}
			}
		}
		return
	}
	if m.cfg.GroundTruthOnly {
		// Literal Eq. 7 ablation: unobserved truth contributes nothing
		// anywhere — demonstrating why grounding is required (D2).
		for k := range vals {
			vals[k] = 0
		}
		return
	}
	l := &m.perItem[i]
	if !m.haveRates {
		// Bootstrap: reliability-weighted vote share.
		for k := range vals {
			vals[k] = 0
		}
		denom := 0.0
		for s, sn := 0, l.segs(); s < sn; s++ {
			for _, ar := range l.seg(s) {
				w := m.workerRelW[ar.other]
				denom += w
				// Both slices are sorted: advance a cursor instead of a
				// binary search per label.
				k := 0
				for _, c := range m.intern.Canon(ar.set) {
					for voted[k] < c {
						k++
					}
					vals[k] += w
				}
			}
		}
		if denom > 0 {
			inv := 1 / denom
			for k := range vals {
				vals[k] *= inv
			}
		}
		return
	}
	// Calibrated path: prior log-odds combining the cluster-mixture
	// prior (label co-occurrence, R3) with the per-label empirical
	// prevalence (the class prior): clusters lift co-occurring labels
	// where the clustering is informative, prevalence separates
	// commonly-true labels from incidental votes everywhere else.
	T := m.T
	phiMean, nbar := m.ws.phiMean, m.ws.nbar
	phiRow := m.phi.Row(i)
	for k, c := range voted {
		prior := 0.0
		for t := 0; t < T; t++ {
			pt := phiRow[t]
			if pt < 1e-6 {
				continue
			}
			prior += pt * mathx.Clamp(nbar[t]*phiMean.At(t, c), 0.02, 0.90)
		}
		if lp := m.labelPrev[c]; prior < lp {
			prior = lp
		}
		if m.expertCooc != nil {
			// §6 extension: expert conditional probabilities floor the
			// prior of labels implied by currently-believed ones.
			prior = math.Max(prior, 0.9*m.expertPriorFloor(i, c))
		}
		prior = mathx.Clamp(prior, 0.05, 0.90)
		logOdds := math.Log(prior) - math.Log1p(-prior)
		for s, sn := 0, l.segs(); s < sn; s++ {
			for _, ar := range l.seg(s) {
				if m.intern.Contains(ar.set, c) {
					logOdds += m.voteLW[ar.other]
				} else {
					logOdds += m.missLW[ar.other]
				}
			}
		}
		vals[k] = 1 / (1 + math.Exp(-mathx.Clamp(logOdds, -30, 30)))
	}
	if m.expertCooc != nil {
		// §6 extension, second stage: propagate belief along expert
		// implications — "include label b whenever label a has been
		// assigned" (the paper's §2.1 motivating rule). One pass over
		// ordered pairs of voted labels.
		for k, a := range voted {
			if vals[k] <= 0.5 {
				continue
			}
			row := m.expertCooc.Row(a)
			for j, b := range voted {
				if implied := row[b] * vals[k]; implied > vals[j] {
					vals[j] = implied
				}
			}
		}
	}
}

// dataLogLik computes the ELBO surrogate Σ_{(i,u)} ln Σ_t ϕ_it Σ_m κ_um
// p(x_iu | ψ̄_tm) under the posterior-mean confusion vectors — cheap,
// monotone-ish during training, used by tests and diagnostics. Reused label
// sets read their likelihood p(x | ψ̄_tm) from a product panel built once
// per call and reduce it with FlooredDot; sets without a panel run the
// fused gather-prod kernel over a transposed copy of the cube. Both paths
// use the canonical 4-lane reduction with the same κ floor and per-factor
// clamp, so panel vs fallback (and panels disabled vs enabled) move zero
// bits, on every backend.
func (m *Model) dataLogLik() float64 {
	M, T, C := m.M, m.T, m.numLabels
	psiMean := m.ws.psiMean
	psiMean.CopyFrom(m.lambda)
	for r := 0; r < T*M; r++ {
		psiMean.NormalizeRow(r)
	}
	psi := psiMean.Data()
	pp := m.buildProductPanels(psi)
	var total [1]float64
	m.accLogLik.Accumulate(total[:], 0, 1, m.numItems, m.shardCount(m.numItems),
		func(buf []float64, lo, hi int) {
			sum := 0.0
			for i := lo; i < hi; i++ {
				phiRow := m.phi.Row(i)
				l := &m.perItem[i]
				for s, sn := 0, l.segs(); s < sn; s++ {
					for _, ar := range l.seg(s) {
						kappaRow := m.kappa.Row(ar.other)
						var panel []float64
						if pp != nil {
							panel = pp.panel(ar.set, T*M)
						}
						lik := 0.0
						if panel != nil {
							for t := 0; t < T; t++ {
								pt := phiRow[t]
								if pt < 1e-10 {
									continue
								}
								row := panel[t*M : t*M+M]
								inner := 0.0
								for mm, km := range kappaRow {
									if km < 1e-10 {
										continue
									}
									inner += km * row[mm]
								}
								lik += pt * inner
							}
						} else {
							xs := m.intern.Canon(ar.set)
							for t := 0; t < T; t++ {
								pt := phiRow[t]
								if pt < 1e-10 {
									continue
								}
								inner := 0.0
								tBase := t * M * C
								for mm := 0; mm < M; mm++ {
									km := kappaRow[mm]
									if km < 1e-10 {
										continue
									}
									p := 1.0
									base := tBase + mm*C
									for _, c := range xs {
										v := psi[base+c]
										if v < 1e-12 {
											v = 1e-12
										}
										p *= v
									}
									inner += km * p
								}
								lik += pt * inner
							}
						}
						if lik < 1e-300 {
							lik = 1e-300
						}
						sum += math.Log(lik)
					}
				}
			}
			buf[0] += sum
		})
	return total[0]
}
