package core

import (
	"math"
	"testing"

	"cpa/internal/answers"
	"cpa/internal/datasets"
	"cpa/internal/labelset"
	"cpa/internal/metrics"
	"cpa/internal/simulate"
)

// table1Dataset is the paper's Table 1 motivating example (0-based labels).
func table1Dataset(t testing.TB) *answers.Dataset {
	t.Helper()
	d, err := answers.NewDataset("table1", 4, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		item, worker int
		labels       []int
	}{
		{0, 0, []int{3, 4}}, {0, 1, []int{3, 4}}, {0, 2, []int{3}}, {0, 3, []int{0}}, {0, 4, []int{4}},
		{1, 0, []int{1, 2}}, {1, 1, []int{0, 3}}, {1, 2, []int{3}}, {1, 3, []int{1}}, {1, 4, []int{2, 3}},
		{2, 0, []int{0, 1}}, {2, 1, []int{3}}, {2, 2, []int{3}}, {2, 3, []int{2}}, {2, 4, []int{3, 4}},
		{3, 0, []int{0, 1}}, {3, 1, []int{1, 2}}, {3, 2, []int{3}}, {3, 3, []int{3}}, {3, 4, []int{0, 1, 2}},
	}
	for _, r := range rows {
		if err := d.Add(r.item, r.worker, labelset.FromSlice(r.labels)); err != nil {
			t.Fatal(err)
		}
	}
	truth := [][]int{{4}, {2, 3}, {3, 4}, {0, 1, 2}}
	for i, tr := range truth {
		if err := d.SetTruth(i, labelset.FromSlice(tr)); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{MaxCommunities: -1},
		{Alpha: -1},
		{GammaPrior: -0.5},
		{Tol: -1},
		{Parallelism: -2},
		{ForgettingRate: 0.3},
		{ForgettingRate: 1.5},
		{ExhaustiveCap: 30},
	}
	for i, cfg := range bad {
		if _, err := NewModel(cfg, 2, 2, 2); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
	if _, err := NewModel(DefaultConfig(), 0, 1, 1); err == nil {
		t.Error("zero items should fail")
	}
}

func TestModelAccessors(t *testing.T) {
	m, err := NewModel(Config{Seed: 1, MaxCommunities: 4, MaxClusters: 6}, 10, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if i, u, c := m.Dims(); i != 10 || u != 8 || c != 5 {
		t.Errorf("Dims = %d/%d/%d", i, u, c)
	}
	if mm, tt := m.Truncations(); mm != 4 || tt != 6 {
		t.Errorf("Truncations = %d/%d", mm, tt)
	}
	if m.Fitted() {
		t.Error("fresh model should not be fitted")
	}
	if m.WorkerCommunity(-1) != -1 || m.ItemCluster(99) != -1 {
		t.Error("out-of-range accessors should return -1")
	}
	if m.WorkerReliability(-1) != 0 || m.CommunityReliability(99) != 0 {
		t.Error("out-of-range reliabilities should be 0")
	}
	if _, err := m.Predict(); err == nil {
		t.Error("Predict before Fit should fail")
	}
	if _, err := m.PredictItem(0); err == nil {
		t.Error("PredictItem before Fit should fail")
	}
}

func TestTruncationsClampToData(t *testing.T) {
	m, err := NewModel(Config{Seed: 1, MaxCommunities: 100, MaxClusters: 100}, 5, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mm, tt := m.Truncations(); mm != 3 || tt != 5 {
		t.Errorf("Truncations should clamp to (3,5), got (%d,%d)", mm, tt)
	}
}

func TestFitValidations(t *testing.T) {
	m, _ := NewModel(Config{Seed: 1}, 4, 5, 5)
	if _, err := m.Fit(nil); err == nil {
		t.Error("nil dataset should fail")
	}
	empty, _ := answers.NewDataset("e", 4, 5, 5)
	if _, err := m.Fit(empty); err == nil {
		t.Error("empty dataset should fail")
	}
	wrong, _ := answers.NewDataset("w", 3, 5, 5)
	if err := wrong.Add(0, 0, labelset.Of(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Fit(wrong); err == nil {
		t.Error("dimension mismatch should fail")
	}
	if _, err := m.FitStream(wrong); err == nil {
		t.Error("FitStream dimension mismatch should fail")
	}
}

func TestTable1MotivatingExample(t *testing.T) {
	// CPA must beat majority voting on the paper's own motivating example:
	// MV gets i1 wrong (adds label 3) and i4 incomplete (misses 0 and 2).
	d := table1Dataset(t)
	agg := NewAggregator(Config{Seed: 3, MaxCommunities: 3, MaxClusters: 4})
	pred, err := agg.Aggregate(d)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := metrics.Evaluate(d, pred)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Table 1 CPA predictions: %v %v %v %v -> %v", pred[0], pred[1], pred[2], pred[3], pr)
	// MV yields P=0.625 R=0.458 on this example. CPA should clearly beat it.
	if pr.Precision <= 0.625 {
		t.Errorf("CPA precision %.3f should beat MV's 0.625", pr.Precision)
	}
	if pr.Recall <= 0.458 {
		t.Errorf("CPA recall %.3f should beat MV's 0.458", pr.Recall)
	}
}

func TestFitConvergesAndTracksStats(t *testing.T) {
	ds, _, err := datasets.Load("image", 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(Config{Seed: 1}, ds.NumItems, ds.NumWorkers, ds.NumLabels)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := m.Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Fitted() {
		t.Error("model should be fitted")
	}
	if stats.Iterations == 0 || len(stats.Deltas) != stats.Iterations {
		t.Errorf("stats inconsistent: %+v", stats)
	}
	if !stats.Converged && stats.Iterations < DefaultConfig().MaxIter {
		t.Error("stopped early without convergence")
	}
	if stats.FinalDelta() > 0.5 {
		t.Errorf("final delta %.4f suspiciously large", stats.FinalDelta())
	}
	// The data log-likelihood surrogate should not degrade materially from
	// start to end (it is a surrogate, not the ELBO, so tiny wobbles from
	// the annealed early iterations are tolerated).
	first := stats.DataLogLik[0]
	last := stats.DataLogLik[len(stats.DataLogLik)-1]
	if last < first-0.001*math.Abs(first) {
		t.Errorf("data log-lik decreased: %.1f -> %.1f", first, last)
	}
	// Posterior sanity: responsibilities on the simplex, Dirichlet params
	// positive.
	for u := 0; u < ds.NumWorkers; u++ {
		sum := 0.0
		for j, v := range m.kappa.Row(u) {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("kappa[%d][%d] = %v", u, j, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("kappa row %d sums to %v", u, sum)
		}
	}
	for i := 0; i < ds.NumItems; i++ {
		sum := 0.0
		for _, v := range m.phi.Row(i) {
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("phi row %d sums to %v", i, sum)
		}
	}
	for k, v := range m.lambda.Data() {
		if v <= 0 || math.IsNaN(v) {
			t.Fatalf("lambda[%d] = %v", k, v)
		}
	}
	for k, v := range m.zeta.Data() {
		if v <= 0 || math.IsNaN(v) {
			t.Fatalf("zeta[%d] = %v", k, v)
		}
	}
}

func TestDeterminismUnderSeed(t *testing.T) {
	ds, _, err := datasets.Load("topic", 0.05, 9)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []labelset.Set {
		agg := NewAggregator(Config{Seed: 11})
		pred, err := agg.Aggregate(ds)
		if err != nil {
			t.Fatal(err)
		}
		return pred
	}
	a, b := run(), run()
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("prediction differs at item %d under same seed", i)
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	ds, _, err := datasets.Load("image", 0.05, 5)
	if err != nil {
		t.Fatal(err)
	}
	predict := func(p int) []labelset.Set {
		agg := NewAggregator(Config{Seed: 2, Parallelism: p})
		pred, err := agg.Aggregate(ds)
		if err != nil {
			t.Fatal(err)
		}
		return pred
	}
	serial := predict(1)
	for _, p := range []int{2, 4, 8} {
		par := predict(p)
		same := 0
		for i := range serial {
			if serial[i].Equal(par[i]) {
				same++
			}
		}
		// Floating-point reduction order may flip borderline labels; demand
		// near-total agreement.
		if frac := float64(same) / float64(len(serial)); frac < 0.98 {
			t.Errorf("Parallelism=%d agrees on only %.1f%% of items", p, 100*frac)
		}
	}
}

func TestCPAOutperformsMajorityVoteOnSimulatedCrowd(t *testing.T) {
	ds, _, err := datasets.Load("image", 0.08, 17)
	if err != nil {
		t.Fatal(err)
	}
	agg := NewAggregator(Config{Seed: 1})
	pred, err := agg.Aggregate(ds)
	if err != nil {
		t.Fatal(err)
	}
	cpa, err := metrics.Evaluate(ds, pred)
	if err != nil {
		t.Fatal(err)
	}
	// Plain MV on the same data (threshold 0.5, argmax fallback).
	mvPred := make([]labelset.Set, ds.NumItems)
	for i := 0; i < ds.NumItems; i++ {
		votes := map[int]int{}
		n := 0
		ds.ForItem(i, func(a answers.Answer) {
			n++
			a.Labels.Range(func(c int) bool {
				votes[c]++
				return true
			})
		})
		s := labelset.New(ds.NumLabels)
		best, bestV := -1, 0
		for c, v := range votes {
			if float64(v) > 0.5*float64(n) {
				s.Add(c)
			}
			if v > bestV {
				best, bestV = c, v
			}
		}
		if s.IsEmpty() && best >= 0 {
			s.Add(best)
		}
		mvPred[i] = s
	}
	mv, err := metrics.Evaluate(ds, mvPred)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("CPA=%v MV=%v", cpa, mv)
	if cpa.F1() <= mv.F1() {
		t.Errorf("CPA F1 %.3f should beat MV %.3f", cpa.F1(), mv.F1())
	}
	if cpa.Recall <= mv.Recall {
		t.Errorf("CPA recall %.3f should beat MV %.3f", cpa.Recall, mv.Recall)
	}
}

func TestSpammerSuppression(t *testing.T) {
	// The model's reliability weights must separate spammers from reliable
	// workers (the mechanism behind Fig. 4's robustness).
	ds, meta, err := datasets.Load("image", 0.08, 23)
	if err != nil {
		t.Fatal(err)
	}
	agg := NewAggregator(Config{Seed: 5})
	if _, err := agg.Aggregate(ds); err != nil {
		t.Fatal(err)
	}
	model := agg.Model()
	var relRel, relSpam []float64
	for u := 0; u < ds.NumWorkers; u++ {
		switch {
		case meta.WorkerTypes[u] == simulate.Reliable:
			relRel = append(relRel, model.WorkerReliability(u))
		case meta.WorkerTypes[u].IsSpammer():
			relSpam = append(relSpam, model.WorkerReliability(u))
		}
	}
	if len(relRel) == 0 || len(relSpam) == 0 {
		t.Skip("sample lacks one of the populations")
	}
	mr := metrics.Summarize(relRel).Mean
	ms := metrics.Summarize(relSpam).Mean
	t.Logf("mean reliability: reliable=%.3f spammers=%.3f", mr, ms)
	if mr <= ms+0.15 {
		t.Errorf("reliable workers (%.3f) should clearly out-rank spammers (%.3f)", mr, ms)
	}
}

func TestNonparametricAdaptivity(t *testing.T) {
	// R4: the effective number of communities/clusters must sit strictly
	// below the truncations (unused sticks decay) yet above 1.
	ds, _, err := datasets.Load("image", 0.08, 31)
	if err != nil {
		t.Fatal(err)
	}
	agg := NewAggregator(Config{Seed: 7, MaxCommunities: 15, MaxClusters: 30})
	if _, err := agg.Aggregate(ds); err != nil {
		t.Fatal(err)
	}
	m := agg.Model()
	ec := m.EffectiveCommunities(0.02)
	et := m.EffectiveClusters(0.02)
	t.Logf("effective communities=%d clusters=%d", ec, et)
	if ec < 1 || et < 1 {
		t.Error("at least one effective component required")
	}
	weights := m.CommunityWeights()
	sum := 0.0
	for _, w := range weights {
		if w < -1e-9 {
			t.Errorf("negative community weight %v", w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("community weights sum to %v", sum)
	}
	cw := m.ClusterWeights()
	sum = 0.0
	for _, w := range cw {
		sum += w
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("cluster weights sum to %v", sum)
	}
}

func TestCloneIndependence(t *testing.T) {
	ds, _, err := datasets.Load("movie", 0.2, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(Config{Seed: 1}, ds.NumItems, ds.NumWorkers, ds.NumLabels)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	clone := m.Clone()
	predA, err := m.Predict()
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the original; the clone must be unaffected.
	if _, err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	predB, err := clone.Predict()
	if err != nil {
		t.Fatal(err)
	}
	for i := range predA {
		if !predA[i].Equal(predB[i]) {
			t.Fatalf("clone prediction diverged at item %d", i)
		}
	}
}

func TestAggregatorNames(t *testing.T) {
	cfg := Config{Seed: 1}
	if NewAggregator(cfg).Name() != "CPA" {
		t.Error("CPA name")
	}
	if NewOnlineAggregator(cfg).Name() != "CPA-online" {
		t.Error("online name")
	}
	if NewNoZAggregator(cfg).Name() != "No Z" {
		t.Error("No Z name")
	}
	if NewNoLAggregator(cfg).Name() != "No L" {
		t.Error("No L name")
	}
}

func TestRevealedTruthImprovesResult(t *testing.T) {
	base, _, err := datasets.Load("topic", 0.06, 41)
	if err != nil {
		t.Fatal(err)
	}
	scorePlain := fitScore(t, base)
	// Reveal a third of the truths as test questions.
	revealed := base.Clone()
	for i := 0; i < revealed.NumItems; i += 3 {
		if err := revealed.Reveal(i); err != nil {
			t.Fatal(err)
		}
	}
	scoreRevealed := fitScore(t, revealed)
	t.Logf("plain=%.3f revealed=%.3f", scorePlain, scoreRevealed)
	if scoreRevealed < scorePlain-0.02 {
		t.Errorf("revealed truth should not hurt: %.3f vs %.3f", scoreRevealed, scorePlain)
	}
}

func fitScore(t *testing.T, ds *answers.Dataset) float64 {
	t.Helper()
	agg := NewAggregator(Config{Seed: 3})
	pred, err := agg.Aggregate(ds)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := metrics.Evaluate(ds, pred)
	if err != nil {
		t.Fatal(err)
	}
	return pr.F1()
}

func TestGroundTruthOnlyAblation(t *testing.T) {
	// Literal Eq. 7 (no imputation) with no revealed truth leaves the
	// emissions at their priors: quality must collapse relative to the full
	// model — the ablation evidence for DESIGN.md D2.
	ds, _, err := datasets.Load("image", 0.05, 13)
	if err != nil {
		t.Fatal(err)
	}
	full := fitScore(t, ds)
	lit := NewAggregator(Config{Seed: 3, GroundTruthOnly: true})
	pred, err := lit.Aggregate(ds)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := metrics.Evaluate(ds, pred)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("full=%.3f literal=%.3f", full, pr.F1())
	if pr.F1() >= full-0.2 {
		t.Errorf("literal Eq. 7 (%.3f) should collapse relative to the grounded model (%.3f)", pr.F1(), full)
	}
}

func TestExhaustivePredictionConsistentWithGreedy(t *testing.T) {
	ds, _, err := datasets.Load("movie", 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	greedy := NewAggregator(Config{Seed: 1})
	gp, err := greedy.Aggregate(ds)
	if err != nil {
		t.Fatal(err)
	}
	exact := NewAggregator(Config{Seed: 1, ExhaustivePrediction: true, ExhaustiveCap: 14})
	ep, err := exact.Aggregate(ds)
	if err != nil {
		t.Fatal(err)
	}
	gPR, _ := metrics.Evaluate(ds, gp)
	ePR, _ := metrics.Evaluate(ds, ep)
	t.Logf("greedy=%v exhaustive=%v", gPR, ePR)
	// The exhaustive argmax can only improve the model's internal score;
	// its F1 should track greedy within a small margin either way.
	if math.Abs(gPR.F1()-ePR.F1()) > 0.1 {
		t.Errorf("greedy %.3f vs exhaustive %.3f diverge", gPR.F1(), ePR.F1())
	}
}

func TestPredictItemMatchesBulk(t *testing.T) {
	ds, _, err := datasets.Load("movie", 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(Config{Seed: 2}, ds.NumItems, ds.NumWorkers, ds.NumLabels)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	bulk, err := m.Predict()
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, ds.NumItems - 1} {
		single, err := m.PredictItem(i)
		if err != nil {
			t.Fatal(err)
		}
		if !single.Equal(bulk[i]) {
			t.Errorf("PredictItem(%d) = %v, bulk = %v", i, single, bulk[i])
		}
	}
	if _, err := m.PredictItem(-1); err == nil {
		t.Error("negative item should fail")
	}
}
