package core

import (
	"math"

	"cpa/internal/mat"
	"cpa/internal/mathx"
)

// ELBO computes the evidence lower bound of the current variational
// posterior (paper §3.3): E_q[ln p(x, z, l, ψ, φ, π', τ')] − E_q[ln q].
// It is the principled convergence diagnostic; Fit's default criterion is
// the cheaper parameter-delta rule the paper reports using, but tests and
// callers can assert ELBO improvement across Fit calls.
//
// Terms follow the factorisation in the paper's Appendix C. The imputed
// truth ŷ (DESIGN.md D2) enters as the expected emission term
// Σ_i Σ_t ϕ_it Σ_c E[y_ic]·E[ln φ_tc], which is exactly the E-step bound of
// the missing-data treatment.
func (m *Model) ELBO() float64 {
	M, T := m.M, m.T
	var elbo float64

	// --- E[ln p(x | z, l, ψ)]: answers under community confusion, read from
	// the per-set score panels where cached (bit-identical to answerScore).
	m.ensureScorePanels()
	for i := 0; i < m.numItems; i++ {
		phiRow := m.phi.Row(i)
		m.perItem[i].each(func(ar ansRef) {
			kappaRow := m.kappa.Row(ar.other)
			panel := m.scorePanel(ar.set)
			var xs []int
			if panel == nil {
				xs = m.intern.Canon(ar.set)
			}
			for t := 0; t < T; t++ {
				pt := phiRow[t]
				if pt < 1e-12 {
					continue
				}
				for mm := 0; mm < M; mm++ {
					km := kappaRow[mm]
					if km < 1e-12 {
						continue
					}
					if panel != nil {
						elbo += pt * km * panel[t*M+mm]
					} else {
						elbo += pt * km * m.answerScore(t, mm, xs)
					}
				}
			}
		})
	}

	// --- E[ln p(y | l, φ)]: revealed or imputed truth under emissions.
	for i := 0; i < m.numItems; i++ {
		phiRow := m.phi.Row(i)
		voted := m.votedList[i]
		vals := m.yhatVals[i]
		for t := 0; t < T; t++ {
			pt := phiRow[t]
			if pt < 1e-12 {
				continue
			}
			elogRow := m.elogPhi.Row(t)
			s := 0.0
			for k, c := range voted {
				if v := vals[k]; v > 1e-12 {
					s += v * elogRow[c]
				}
			}
			elbo += pt * s
		}
	}

	// --- E[ln p(z | π')] − E[ln q(z)] and the community stick terms.
	elbo += mixtureTerms(m.kappa, m.elogPi)
	if M > 1 {
		elbo += stickTerms(m.rho1, m.rho2, m.cfg.Alpha)
	}
	// --- E[ln p(l | τ')] − E[ln q(l)] and the cluster stick terms.
	elbo += mixtureTerms(m.phi, m.elogTau)
	if T > 1 {
		elbo += stickTerms(m.ups1, m.ups2, m.cfg.Epsilon)
	}

	// --- E[ln p(ψ)] − E[ln q(ψ)] and E[ln p(φ)] − E[ln q(φ)]: Dirichlet
	// prior-minus-entropy terms.
	for r := 0; r < T*M; r++ {
		elbo += dirichletTerms(m.lambda.Row(r), m.elogPsi.Row(r), m.cfg.GammaPrior)
	}
	for t := 0; t < T; t++ {
		elbo += dirichletTerms(m.zeta.Row(t), m.elogPhi.Row(t), m.cfg.EtaPrior)
	}
	return elbo
}

// mixtureTerms returns Σ_rows Σ_k resp·(elogWeight_k − ln resp), the
// assignment cross-entropy plus responsibility entropy.
func mixtureTerms(resp *mat.Dense, elogWeight []float64) float64 {
	total := 0.0
	for r := 0; r < resp.Rows(); r++ {
		for j, v := range resp.Row(r) {
			if v < 1e-12 {
				continue
			}
			total += v * (elogWeight[j] - math.Log(v))
		}
	}
	return total
}

// stickTerms returns Σ_j E[ln p(v_j | 1, α)] − E[ln q(v_j)] for the
// truncated Beta stick posteriors.
func stickTerms(a, b []float64, alpha float64) float64 {
	total := 0.0
	for j := range a {
		sum := mathx.Digamma(a[j] + b[j])
		elogV := mathx.Digamma(a[j]) - sum
		elog1mV := mathx.Digamma(b[j]) - sum
		// E[ln p(v)] under Beta(1, alpha): ln α + (α−1)E[ln(1−v)].
		total += math.Log(alpha) + (alpha-1)*elog1mV
		// −E[ln q(v)] = Beta entropy.
		total += mathx.LogBeta(a[j], b[j]) - (a[j]-1)*elogV - (b[j]-1)*elog1mV
	}
	return total
}

// dirichletTerms returns E[ln p(θ)] − E[ln q(θ)] for one Dirichlet factor
// with symmetric prior concentration prior0, reusing the cached E[ln θ].
func dirichletTerms(alpha, elog []float64, prior0 float64) float64 {
	k := float64(len(alpha))
	// E[ln p(θ)] under Dir(prior0,...):
	total := mathx.LogGamma(prior0*k) - k*mathx.LogGamma(prior0)
	for _, e := range elog {
		total += (prior0 - 1) * e
	}
	// −E[ln q(θ)] = entropy of Dir(alpha):
	sum := mathx.Sum(alpha)
	total += -mathx.LogGamma(sum)
	for c, a := range alpha {
		total += mathx.LogGamma(a) - (a-1)*elog[c]
	}
	// Reconcile: entropy uses ψ(a)−ψ(sum) = elog, so the expression above
	// already matches −E[ln q].
	return total
}
