package core

import (
	"math"
	"testing"

	"cpa/internal/answers"
	"cpa/internal/labelset"
	"cpa/internal/mathx"
)

// TestUpdateSticksHandComputed checks Eqs. (4)–(5) against a hand-computed
// two-community example.
func TestUpdateSticksHandComputed(t *testing.T) {
	m, err := NewModel(Config{Seed: 1, MaxCommunities: 3, MaxClusters: 2, Alpha: 2, Epsilon: 1.5}, 2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Pin κ and ϕ to known values (3 workers × 3 communities, 2 items × 2
	// clusters).
	copy(m.kappa.Data(), []float64{
		0.7, 0.2, 0.1,
		0.1, 0.8, 0.1,
		0.3, 0.3, 0.4,
	})
	copy(m.phi.Data(), []float64{
		0.6, 0.4,
		0.2, 0.8,
	})
	m.updateSticks()
	// Column sums: [1.1, 1.3, 0.6].
	// ρ_11 = 1 + 1.1; ρ_12 = α + (1.3+0.6).
	if math.Abs(m.rho1[0]-2.1) > 1e-12 || math.Abs(m.rho2[0]-(2+1.9)) > 1e-12 {
		t.Errorf("rho[0] = (%v,%v), want (2.1,3.9)", m.rho1[0], m.rho2[0])
	}
	// ρ_21 = 1 + 1.3; ρ_22 = α + 0.6.
	if math.Abs(m.rho1[1]-2.3) > 1e-12 || math.Abs(m.rho2[1]-2.6) > 1e-12 {
		t.Errorf("rho[1] = (%v,%v), want (2.3,2.6)", m.rho1[1], m.rho2[1])
	}
	// Cluster sums: [0.8, 1.2]; υ_11 = 1.8, υ_12 = ε + 1.2.
	if math.Abs(m.ups1[0]-1.8) > 1e-12 || math.Abs(m.ups2[0]-2.7) > 1e-12 {
		t.Errorf("ups[0] = (%v,%v), want (1.8,2.7)", m.ups1[0], m.ups2[0])
	}
}

// TestUpdateLambdaHandComputed checks Eq. (6) on a single answer.
func TestUpdateLambdaHandComputed(t *testing.T) {
	m, err := NewModel(Config{Seed: 1, MaxCommunities: 2, MaxClusters: 2, GammaPrior: 0.5}, 1, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// M and T clamp to the data dimensions (1 worker, 1 item).
	M, T := m.Truncations()
	if M != 1 || T != 1 {
		t.Fatalf("expected clamped truncations (1,1), got (%d,%d)", M, T)
	}
	ds, _ := answers.NewDataset("one", 1, 1, 3)
	if err := ds.Add(0, 0, labelset.Of(0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := m.loadDataset(ds); err != nil {
		t.Fatal(err)
	}
	m.kappa.Set(0, 0, 1)
	m.phi.Set(0, 0, 1)
	m.updateLambda()
	// λ_000 = γ + 1, λ_001 = γ, λ_002 = γ + 1.
	want := []float64{1.5, 0.5, 1.5}
	for c, w := range want {
		if math.Abs(m.lambda.Data()[c]-w) > 1e-12 {
			t.Errorf("lambda[%d] = %v, want %v", c, m.lambda.Data()[c], w)
		}
	}
}

// TestBootstrapImputationIsVoteShare verifies the pre-calibration imputation
// equals the plain vote frequency under uniform reliabilities.
func TestBootstrapImputationIsVoteShare(t *testing.T) {
	m, err := NewModel(Config{Seed: 1}, 1, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := answers.NewDataset("v", 1, 4, 3)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(ds.Add(0, 0, labelset.Of(0)))
	must(ds.Add(0, 1, labelset.Of(0, 1)))
	must(ds.Add(0, 2, labelset.Of(0)))
	must(ds.Add(0, 3, labelset.Of(2)))
	must(m.loadDataset(ds))
	m.imputeTruth(nil) // haveRates is false: bootstrap path
	// Votes: label0 3/4, label1 1/4, label2 1/4.
	want := []float64{0.75, 0.25, 0.25}
	for k, w := range want {
		if math.Abs(m.yhatVals[0][k]-w) > 1e-12 {
			t.Errorf("yhat[%d] = %v, want %v", k, m.yhatVals[0][k], w)
		}
	}
}

// TestRevealedTruthPinsImputation verifies revealed items carry exact
// expectations regardless of votes.
func TestRevealedTruthPinsImputation(t *testing.T) {
	m, err := NewModel(Config{Seed: 1}, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := answers.NewDataset("r", 1, 2, 3)
	if err := ds.Add(0, 0, labelset.Of(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := ds.Add(0, 1, labelset.Of(2)); err != nil {
		t.Fatal(err)
	}
	if err := ds.SetTruth(0, labelset.Of(0)); err != nil {
		t.Fatal(err)
	}
	if err := ds.Reveal(0); err != nil {
		t.Fatal(err)
	}
	if err := m.loadDataset(ds); err != nil {
		t.Fatal(err)
	}
	m.imputeTruth(nil)
	// Voted list is {0(truth),1,2}; only the true label carries weight 1.
	for k, c := range m.votedList[0] {
		want := 0.0
		if c == 0 {
			want = 1
		}
		if m.yhatVals[0][k] != want {
			t.Errorf("yhat for label %d = %v, want %v", c, m.yhatVals[0][k], want)
		}
	}
}

// TestStickELogMatchesDistHelper cross-checks the model's stick expectation
// against an independent computation.
func TestStickELogMatchesDistHelper(t *testing.T) {
	a := []float64{2, 3, 1.5}
	b := []float64{4, 1, 2.5}
	dst := make([]float64, 4)
	stickELog(a, b, dst)
	// Independent computation.
	acc := 0.0
	for j := range a {
		sum := mathx.Digamma(a[j] + b[j])
		want := acc + mathx.Digamma(a[j]) - sum
		if math.Abs(dst[j]-want) > 1e-12 {
			t.Errorf("stick %d = %v, want %v", j, dst[j], want)
		}
		acc += mathx.Digamma(b[j]) - sum
	}
	if math.Abs(dst[3]-acc) > 1e-12 {
		t.Errorf("last stick = %v, want %v", dst[3], acc)
	}
	// All weights must be log-probabilities of a sub-normalised mixture:
	// exp sums to <= 1 plus truncation slack.
	total := 0.0
	for _, v := range dst {
		total += math.Exp(v)
	}
	if total > 1.2 {
		t.Errorf("exp(E[ln pi]) sums to %v — expectations inconsistent", total)
	}
}

// TestApplyDirichletBlending checks the shared Dirichlet kernel: ω = 1 is
// the exact coordinate-ascent assignment, ω < 1 the convex SVI blend.
func TestApplyDirichletBlending(t *testing.T) {
	suff := []float64{2, 0, 4}
	dst := []float64{1, 1, 1}
	applyDirichlet(dst, suff, 0.5, 1, 1)
	for k, w := range []float64{2.5, 0.5, 4.5} {
		if math.Abs(dst[k]-w) > 1e-12 {
			t.Errorf("batch dst[%d] = %v, want %v", k, dst[k], w)
		}
	}
	// SVI step: target with scale 3, blended at ω = 0.25.
	applyDirichlet(dst, suff, 0.5, 3, 0.25)
	// target = [6.5, 0.5, 12.5]; dst = 0.75*prev + 0.25*target.
	for k, w := range []float64{0.75*2.5 + 0.25*6.5, 0.5, 0.75*4.5 + 0.25*12.5} {
		if math.Abs(dst[k]-w) > 1e-12 {
			t.Errorf("svi dst[%d] = %v, want %v", k, dst[k], w)
		}
	}
}

// TestApplySticksBlending checks the shared stick kernel against the
// hand-computed Eqs. (4)-(5) targets and their SVI blend.
func TestApplySticksBlending(t *testing.T) {
	colSum := []float64{1.1, 1.3, 0.6}
	a := make([]float64, 2)
	b := make([]float64, 2)
	applySticks(a, b, colSum, 2, 1, 1)
	if math.Abs(a[0]-2.1) > 1e-12 || math.Abs(b[0]-3.9) > 1e-12 {
		t.Errorf("stick 0 = (%v,%v), want (2.1,3.9)", a[0], b[0])
	}
	if math.Abs(a[1]-2.3) > 1e-12 || math.Abs(b[1]-2.6) > 1e-12 {
		t.Errorf("stick 1 = (%v,%v), want (2.3,2.6)", a[1], b[1])
	}
	// ω = 0.5 halfway toward a doubled-scale target.
	a0, b0 := a[0], b[0]
	applySticks(a, b, colSum, 2, 2, 0.5)
	wantA := 0.5*a0 + 0.5*(1+2*1.1)
	wantB := 0.5*b0 + 0.5*(2+2*1.9)
	if math.Abs(a[0]-wantA) > 1e-12 || math.Abs(b[0]-wantB) > 1e-12 {
		t.Errorf("blended stick 0 = (%v,%v), want (%v,%v)", a[0], b[0], wantA, wantB)
	}
}
