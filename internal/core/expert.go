package core

import (
	"fmt"

	"cpa/internal/mat"
)

// SetExpertCooccurrence installs external label-dependency knowledge — the
// extension the paper sketches in §3.2/§6: "prior knowledge could be
// expressed as conditional probabilities, which are then integrated in the
// label selection". cooc[a][b] ∈ [0,1] is the expert belief that label b is
// present given that label a is (rows need not be normalised; zero rows mean
// "no knowledge"). During truth imputation, a label's prior is floored at
// the strongest expert implication from labels currently believed present,
// so domain rules like "superhero ⇒ action" lift under-voted co-occurring
// labels.
//
// The matrix must be C×C. Passing nil removes the prior. This is learned
// co-occurrence's complement: the nonparametric clusters discover
// dependencies from data, the expert matrix injects them a priori. The
// rows are copied into a dense internal matrix at this boundary.
func (m *Model) SetExpertCooccurrence(cooc [][]float64) error {
	if cooc == nil {
		m.expertCooc = nil
		return nil
	}
	if len(cooc) != m.numLabels {
		return fmt.Errorf("%w: co-occurrence matrix has %d rows, want %d", ErrConfig, len(cooc), m.numLabels)
	}
	dense := mat.New(m.numLabels, m.numLabels)
	for a, row := range cooc {
		if len(row) != m.numLabels {
			return fmt.Errorf("%w: co-occurrence row %d has %d entries, want %d", ErrConfig, a, len(row), m.numLabels)
		}
		for b, v := range row {
			if v < 0 || v > 1 {
				return fmt.Errorf("%w: co-occurrence[%d][%d]=%v outside [0,1]", ErrConfig, a, b, v)
			}
		}
		copy(dense.Row(a), row)
	}
	m.expertCooc = dense
	return nil
}

// expertPriorFloor returns the strongest expert implication toward label c
// from the labels currently believed present on the item (imputed
// expectation above ½). Returns 0 when no expert knowledge is installed.
func (m *Model) expertPriorFloor(i, c int) float64 {
	if m.expertCooc == nil {
		return 0
	}
	best := 0.0
	voted := m.votedList[i]
	vals := m.yhatVals[i]
	for k, a := range voted {
		if a == c || vals[k] <= 0.5 {
			continue
		}
		if v := m.expertCooc.At(a, c); v > best {
			best = v
		}
	}
	return best
}
