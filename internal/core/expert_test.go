package core

import (
	"testing"

	"cpa/internal/answers"
	"cpa/internal/labelset"
)

// expertDataset builds a workload where label 1 is always true alongside
// label 0 but systematically under-voted: without external knowledge the
// consensus misses it, with the expert rule "0 ⇒ 1" it is recovered.
func expertDataset(t *testing.T) *answers.Dataset {
	t.Helper()
	const items, workers, labels = 30, 9, 6
	d, err := answers.NewDataset("expert", items, workers, labels)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < items; i++ {
		if err := d.SetTruth(i, labelset.Of(0, 1)); err != nil {
			t.Fatal(err)
		}
		for u := 0; u < workers; u++ {
			ans := labelset.New(labels)
			// Most — not all — workers report label 0; a third report the
			// implied label 1; everyone sprays occasional noise, so misses
			// are only moderate evidence of absence.
			if u != 4 && u != 7 {
				ans.Add(0)
			}
			if u%3 == 0 {
				ans.Add(1)
			}
			if (u+i)%2 == 0 {
				ans.Add(2 + (u+i)%4)
			}
			if ans.IsEmpty() {
				ans.Add(5)
			}
			if err := d.Add(i, u, ans); err != nil {
				t.Fatal(err)
			}
		}
	}
	return d
}

func TestSetExpertCooccurrenceValidation(t *testing.T) {
	m, err := NewModel(Config{Seed: 1}, 4, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetExpertCooccurrence(make([][]float64, 2)); err == nil {
		t.Error("wrong row count should fail")
	}
	bad := [][]float64{{0, 0, 0}, {0, 0}, {0, 0, 0}}
	if err := m.SetExpertCooccurrence(bad); err == nil {
		t.Error("ragged matrix should fail")
	}
	bad2 := [][]float64{{0, 0, 0}, {0, 0, 2}, {0, 0, 0}}
	if err := m.SetExpertCooccurrence(bad2); err == nil {
		t.Error("out-of-range entry should fail")
	}
	ok := [][]float64{{0, 1, 0}, {0, 0, 0}, {0, 0, 0}}
	if err := m.SetExpertCooccurrence(ok); err != nil {
		t.Errorf("valid matrix rejected: %v", err)
	}
	if err := m.SetExpertCooccurrence(nil); err != nil {
		t.Errorf("nil should clear the prior: %v", err)
	}
}

func TestExpertPriorRecoversImpliedLabel(t *testing.T) {
	ds := expertDataset(t)

	run := func(withExpert bool) (missing int) {
		m, err := NewModel(Config{Seed: 2, MaxCommunities: 3, MaxClusters: 3}, ds.NumItems, ds.NumWorkers, ds.NumLabels)
		if err != nil {
			t.Fatal(err)
		}
		if withExpert {
			cooc := make([][]float64, ds.NumLabels)
			for a := range cooc {
				cooc[a] = make([]float64, ds.NumLabels)
			}
			cooc[0][1] = 0.95 // expert: label 0 implies label 1
			if err := m.SetExpertCooccurrence(cooc); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := m.Fit(ds); err != nil {
			t.Fatal(err)
		}
		pred, err := m.Predict()
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pred {
			if !p.Contains(1) {
				missing++
			}
		}
		return missing
	}

	without := run(false)
	with := run(true)
	t.Logf("items missing the implied label: without expert prior %d, with %d", without, with)
	if with >= without && without > 0 {
		t.Errorf("expert prior should recover the implied label: %d -> %d misses", without, with)
	}
	if with > ds.NumItems/4 {
		t.Errorf("with the expert rule, most items should carry label 1; %d/%d still miss it", with, ds.NumItems)
	}
}
