package core

import (
	"fmt"

	"cpa/internal/mathx"
)

// DebugItem prints the prediction internals of one item to stdout. It is a
// development aid, not part of the public surface.
func (m *Model) DebugItem(i int) {
	C := m.numLabels
	phiMAP := m.dirichletModes(m.zeta)
	nbar := m.clusterTruthSizes()
	t := m.ItemCluster(i)
	fmt.Printf("item %d: cluster=%d phi=%.3f nbar[t]=%.2f voted=%v yhat=%.2f\n",
		i, t, m.phi.At(i, t), nbar[t], m.votedList[i], m.yhatVals[i])
	for _, c := range m.votedList[i] {
		fmt.Printf("  label %d: phiMAP=%.4f ntimesphi=%.4f\n", c, phiMAP[t*C+c], nbar[t]*phiMAP[t*C+c])
	}
	fmt.Printf("  relm=%.3f\n", m.relm[:minInt(len(m.relm), 12)])
	sample := make([]float64, 0, 8)
	for u := 0; u < minInt(m.numWorkers, 8); u++ {
		sample = append(sample, m.workerRelW[u])
	}
	fmt.Printf("  workerRelW[:8]=%.3f\n", sample)
	_ = mathx.Sum
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
