package core

import (
	"cpa/internal/answers"
	"cpa/internal/labelset"
)

// Aggregator adapts the CPA model to the repository-wide Aggregator
// interface (fit on a dataset, return one label set per item). Each call
// builds a fresh model so aggregations are independent and deterministic
// under Config.Seed.
type Aggregator struct {
	cfg    Config
	name   string
	online bool
	// last holds the model of the most recent Aggregate call for
	// post-hoc analysis (communities, reliabilities).
	last *Model
}

// NewAggregator returns the batch-VI CPA aggregator ("CPA").
func NewAggregator(cfg Config) *Aggregator {
	return &Aggregator{cfg: cfg, name: "CPA"}
}

// NewOnlineAggregator returns the streaming-SVI CPA aggregator
// ("CPA-online"), which consumes the dataset in arrival order with a single
// pass (paper §4.1).
func NewOnlineAggregator(cfg Config) *Aggregator {
	return &Aggregator{cfg: cfg, name: "CPA-online", online: true}
}

// NewNoZAggregator returns the No-Z ablation of §5.4: community structure
// removed, every worker a singleton community.
func NewNoZAggregator(cfg Config) *Aggregator {
	cfg.DisableCommunities = true
	return &Aggregator{cfg: cfg, name: "No Z"}
}

// NewNoLAggregator returns the No-L ablation of §5.4: item cluster structure
// removed, every item a singleton cluster.
func NewNoLAggregator(cfg Config) *Aggregator {
	cfg.DisableClusters = true
	return &Aggregator{cfg: cfg, name: "No L"}
}

// Name implements the Aggregator interface.
func (a *Aggregator) Name() string { return a.name }

// Aggregate fits a fresh model on ds and predicts every item's label set.
func (a *Aggregator) Aggregate(ds *answers.Dataset) ([]labelset.Set, error) {
	model, err := NewModel(a.cfg, ds.NumItems, ds.NumWorkers, ds.NumLabels)
	if err != nil {
		return nil, err
	}
	if a.online {
		if _, err := model.FitStream(ds); err != nil {
			return nil, err
		}
	} else {
		if _, err := model.Fit(ds); err != nil {
			return nil, err
		}
	}
	a.last = model
	return model.Predict()
}

// Model returns the model of the most recent Aggregate call (nil before the
// first call).
func (a *Aggregator) Model() *Model { return a.last }
