package core

import (
	"testing"

	"cpa/internal/datasets"
)

// TestPartialFitSteadyStateAllocs pins the per-round allocation budget of
// the SVI hot loop. A steady-state round — batch grouping, local blending,
// global step, worker model, expectation refresh — works entirely out of
// workScratch; what remains is genuine state growth (answer-chunk and
// arrival-index appends, occasional new interned label sets or panel-cache
// growth), which amortises to a few dozen allocations per round (~40
// measured on the reference machine, dominated by answer-list growth). The
// bound has headroom over that but fails loudly if per-round maps or
// per-shard slices creep back in (the pre-refactor code allocated several
// hundred per round).
func TestPartialFitSteadyStateAllocs(t *testing.T) {
	ds, _, err := datasets.Load("image", 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(Config{Seed: 1, BatchSize: 128}, ds.NumItems, ds.NumWorkers, ds.NumLabels)
	if err != nil {
		t.Fatal(err)
	}
	// Warm-up: stream the whole dataset once so the interner, voted lists,
	// scratch buffers, and panel caches reach steady state.
	if _, err := m.FitStream(ds); err != nil {
		t.Fatal(err)
	}
	batch := ds.Answers()[:128]
	allocs := testing.AllocsPerRun(40, func() {
		if err := m.PartialFit(batch); err != nil {
			t.Fatal(err)
		}
	})
	const maxAllocs = 64
	if allocs > maxAllocs {
		t.Errorf("steady-state PartialFit allocates %.1f times per round, want <= %d", allocs, maxAllocs)
	}
	t.Logf("steady-state PartialFit: %.1f allocs/round", allocs)
}
