package core

import (
	"testing"

	"cpa/internal/answers"
	"cpa/internal/labelset"
)

// tieDataset builds a dataset engineered for equal-probability prediction
// ties: labels 2 and 3 are perfectly exchangeable (every answer that
// contains one contains the other, on every item, from every worker), so
// their posterior inclusion scores are symmetric and the §3.4 instantiation
// has to break the tie by pure iteration-order convention. Labels 4 and 5
// exist in the vocabulary but are never voted by anyone.
func tieDataset(t testing.TB) *answers.Dataset {
	t.Helper()
	ds, err := answers.NewDataset("ties", 8, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		for u := 0; u < 4; u++ {
			var ans labelset.Set
			if i%2 == 0 {
				ans = labelset.Of(2, 3) // the exchangeable pair
			} else {
				ans = labelset.Of(0)
			}
			// One dissenter keeps the matrix from being fully degenerate
			// without breaking the 2↔3 symmetry (it votes both or neither).
			if u == 3 {
				if i%4 == 0 {
					ans = labelset.Of(1, 2, 3)
				} else {
					ans = labelset.Of(1)
				}
			}
			if err := ds.Add(i, u, ans); err != nil {
				t.Fatal(err)
			}
		}
	}
	return ds
}

// predictAll fits a fresh model at the given parallelism and predicts.
func predictAll(t testing.TB, ds *answers.Dataset, parallelism int, online bool) []labelset.Set {
	t.Helper()
	cfg := Config{Seed: 17, Parallelism: parallelism, BatchSize: 8}
	model, err := NewModel(cfg, ds.NumItems, ds.NumWorkers, ds.NumLabels)
	if err != nil {
		t.Fatal(err)
	}
	if online {
		if _, err := model.FitStream(ds); err != nil {
			t.Fatal(err)
		}
	} else {
		if _, err := model.Fit(ds); err != nil {
			t.Fatal(err)
		}
	}
	pred, err := model.Predict()
	if err != nil {
		t.Fatal(err)
	}
	return pred
}

func samePredictions(t testing.TB, what string, a, b []labelset.Set) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d predictions", what, len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("%s: item %d predicted %v vs %v", what, i, a[i], b[i])
		}
	}
}

// TestTieBreakIdenticalAcrossParallelism pins that equal-probability ties
// break identically for every Parallelism setting, on both inference paths.
// Prediction is per-item work distributed over the Algorithm 3 shards; a
// shard-dependent scratch reuse or ordering bug would surface exactly here,
// where the greedy search's argmax margins are zero.
func TestTieBreakIdenticalAcrossParallelism(t *testing.T) {
	ds := tieDataset(t)
	for _, online := range []bool{false, true} {
		ref := predictAll(t, ds, 1, online)
		// The exchangeable pair must be kept or dropped together: a
		// prediction containing exactly one of {2,3} means the symmetric
		// tie was broken by floating-point noise, not convention.
		for i, p := range ref {
			if p.Contains(2) != p.Contains(3) {
				t.Fatalf("online=%v: item %d split the exchangeable pair: %v", online, i, p)
			}
		}
		for _, par := range []int{2, 4, 8} {
			got := predictAll(t, ds, par, online)
			samePredictions(t, "parallelism", ref, got)
		}
	}
}

// TestPredictRepeatable pins that Predict is a pure read: repeated calls on
// the same fitted model return identical sets (the serving layer predicts
// once per round on clones and depends on this).
func TestPredictRepeatable(t *testing.T) {
	ds := tieDataset(t)
	model, err := NewModel(Config{Seed: 3, Parallelism: 4}, ds.NumItems, ds.NumWorkers, ds.NumLabels)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.Fit(ds); err != nil {
		t.Fatal(err)
	}
	first, err := model.Predict()
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		again, err := model.Predict()
		if err != nil {
			t.Fatal(err)
		}
		samePredictions(t, "repeat", first, again)
	}
	// PredictItem must agree with the bulk path item by item, ties included.
	for i := range first {
		single, err := model.PredictItem(i)
		if err != nil {
			t.Fatal(err)
		}
		if !single.Equal(first[i]) {
			t.Fatalf("PredictItem(%d) = %v, bulk predicted %v", i, single, first[i])
		}
	}
}

// TestUnseenLabelDeterminism pins prediction behaviour for labels nobody
// voted: candidates beyond the voted set enter only through the cluster
// prior (predictCandidates), and whatever enters must do so identically
// across Parallelism settings and repeated runs. With the tie dataset's
// labels 4 and 5 wholly unvoted and evidence-free, they must never be
// asserted into any consensus.
func TestUnseenLabelDeterminism(t *testing.T) {
	ds := tieDataset(t)
	for _, online := range []bool{false, true} {
		ref := predictAll(t, ds, 1, online)
		for i, p := range ref {
			if p.Contains(4) || p.Contains(5) {
				t.Errorf("online=%v: item %d asserts a never-voted label: %v", online, i, p)
			}
		}
		for _, par := range []int{3, 8} {
			samePredictions(t, "unseen-label", ref, predictAll(t, ds, par, online))
		}
	}
}

// TestAggregatorDeterministicAcrossParallelism lifts the same contract to
// the Aggregator facade (what cpacli/cpabench call): one config, any
// parallelism, one answer.
func TestAggregatorDeterministicAcrossParallelism(t *testing.T) {
	ds := tieDataset(t)
	for _, mk := range []struct {
		name string
		make func(Config) *Aggregator
	}{
		{"batch", NewAggregator},
		{"online", NewOnlineAggregator},
	} {
		ref, err := mk.make(Config{Seed: 5, Parallelism: 1, BatchSize: 8}).Aggregate(ds)
		if err != nil {
			t.Fatalf("%s: %v", mk.name, err)
		}
		for _, par := range []int{2, 4} {
			got, err := mk.make(Config{Seed: 5, Parallelism: par, BatchSize: 8}).Aggregate(ds)
			if err != nil {
				t.Fatalf("%s at P=%d: %v", mk.name, par, err)
			}
			samePredictions(t, mk.name, ref, got)
		}
		// Same aggregator, repeated calls: fresh model each time, same answer.
		agg := mk.make(Config{Seed: 5, Parallelism: 2, BatchSize: 8})
		a, err := agg.Aggregate(ds)
		if err != nil {
			t.Fatal(err)
		}
		b, err := agg.Aggregate(ds)
		if err != nil {
			t.Fatal(err)
		}
		samePredictions(t, mk.name+" repeat", a, b)
	}
}
