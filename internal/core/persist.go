package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"

	"cpa/internal/mathx"
)

// modelState is the gob wire form of a trained model: configuration,
// dimensions, the variational posterior, and the ingested answers (which
// prediction's cluster-weight likelihoods and later PartialFit scaling
// depend on). A restored model predicts identically to the original and can
// continue streaming.
type modelState struct {
	Version    int
	Cfg        Config
	Items      int
	Workers    int
	Labels     int
	M, T       int
	Kappa      []float64
	Phi        []float64
	Lambda     []float64
	Zeta       []float64
	Rho1, Rho2 []float64
	Ups1, Ups2 []float64
	VotedList  [][]int
	YhatVals   [][]float64
	Relm       []float64
	WorkerRelW []float64
	TprM, FprM []float64
	VoteLW     []float64
	MissLW     []float64
	LabelPrev  []float64
	HaveRates  bool
	BatchIndex int
	Fitted     bool
	// Per-worker two-coin count accumulators and the ω-blended running SVI
	// worker-model statistics. Both accumulate across PartialFit rounds, so
	// omitting them would make a restored model's subsequent rounds diverge
	// from the original's. Run* slices are nil until the first SVI round.
	TpNumU, TpDenU, FpNumU, FpDenU                    []float64
	RunTP, RunTPD, RunFP, RunFPD, RunAgree, RunAgreeD []float64
	RunPrevN, RunPrevD                                []float64
	// Revealed test-question truths (nil per item when unrevealed): the
	// imputation pins these during every later round, so a mid-stream
	// checkpoint without them would stop honouring test questions.
	Revealed [][]int
	// Ingested answers, flattened in arrival order: Load re-ingests them in
	// sequence, so the restored per-item/per-worker reference lists keep the
	// exact element order of the live model and continued PartialFit rounds
	// reduce floats in the same order (bit-for-bit recovery).
	AnsItems   []int
	AnsWorkers []int
	AnsLabels  [][]int
	// TotalAns is the monotone total-ingested count; with an AnswerWindow it
	// exceeds the retained answer count above. Absent (0) in older files,
	// where the retained count is the total.
	TotalAns int
}

const persistVersion = 1

// Save serialises the trained posterior to w (encoding/gob). See modelState
// for what is and is not persisted. The wire form stores each matrix as its
// flat row-major backing slice, so the format is unchanged by the
// internal/mat storage layer.
func (m *Model) Save(w io.Writer) error {
	st := modelState{
		Version: persistVersion,
		Cfg:     m.cfg,
		Items:   m.numItems, Workers: m.numWorkers, Labels: m.numLabels,
		M: m.M, T: m.T,
		Kappa: m.kappa.Data(), Phi: m.phi.Data(), Lambda: m.lambda.Data(), Zeta: m.zeta.Data(),
		Rho1: m.rho1, Rho2: m.rho2, Ups1: m.ups1, Ups2: m.ups2,
		VotedList: m.votedList, YhatVals: m.yhatVals,
		Relm: m.relm, WorkerRelW: m.workerRelW,
		TprM: m.tprM, FprM: m.fprM, VoteLW: m.voteLW, MissLW: m.missLW,
		LabelPrev: m.labelPrev, HaveRates: m.haveRates,
		BatchIndex: m.batchIndex, Fitted: m.fitted,
		TpNumU: m.tpNumU, TpDenU: m.tpDenU, FpNumU: m.fpNumU, FpDenU: m.fpDenU,
		RunTP: m.runTP, RunTPD: m.runTPD, RunFP: m.runFP, RunFPD: m.runFPD,
		RunAgree: m.runAgree, RunAgreeD: m.runAgreeD,
		RunPrevN: m.runPrevN, RunPrevD: m.runPrevD,
		Revealed: m.revealedTruth,
		TotalAns: m.totalAns,
	}
	for _, at := range m.arrival {
		ref := m.perItem[at.item].at(at.idx)
		st.AnsItems = append(st.AnsItems, at.item)
		st.AnsWorkers = append(st.AnsWorkers, ref.other)
		st.AnsLabels = append(st.AnsLabels, m.intern.Canon(ref.set))
	}
	if err := gob.NewEncoder(w).Encode(&st); err != nil {
		return fmt.Errorf("core: saving model: %w", err)
	}
	return nil
}

// Load restores a model saved with Save.
func Load(r io.Reader) (*Model, error) {
	var st modelState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("core: loading model: %w", err)
	}
	if st.Version != persistVersion {
		return nil, fmt.Errorf("%w: model state version %d (want %d)", ErrConfig, st.Version, persistVersion)
	}
	m, err := NewModel(st.Cfg, st.Items, st.Workers, st.Labels)
	if err != nil {
		return nil, err
	}
	if st.M != m.M || st.T != m.T {
		return nil, fmt.Errorf("%w: truncation mismatch in saved state", ErrConfig)
	}
	copyInto := func(dst, src []float64, what string) error {
		if len(dst) != len(src) {
			return fmt.Errorf("%w: saved %s has %d entries, want %d", ErrConfig, what, len(src), len(dst))
		}
		copy(dst, src)
		return nil
	}
	for _, c := range []struct {
		dst, src []float64
		what     string
	}{
		{m.kappa.Data(), st.Kappa, "kappa"}, {m.phi.Data(), st.Phi, "phi"},
		{m.lambda.Data(), st.Lambda, "lambda"}, {m.zeta.Data(), st.Zeta, "zeta"},
		{m.rho1, st.Rho1, "rho1"}, {m.rho2, st.Rho2, "rho2"},
		{m.ups1, st.Ups1, "ups1"}, {m.ups2, st.Ups2, "ups2"},
		{m.relm, st.Relm, "relm"}, {m.workerRelW, st.WorkerRelW, "workerRelW"},
		{m.tprM, st.TprM, "tprM"}, {m.fprM, st.FprM, "fprM"},
		{m.voteLW, st.VoteLW, "voteLW"}, {m.missLW, st.MissLW, "missLW"},
		{m.labelPrev, st.LabelPrev, "labelPrev"},
	} {
		if err := copyInto(c.dst, c.src, c.what); err != nil {
			return nil, err
		}
	}
	// Optional accumulators (absent in pre-serving save files, where they
	// decode as nil): restore when present, leave zero/nil otherwise.
	for _, c := range []struct {
		dst, src []float64
		what     string
	}{
		{m.tpNumU, st.TpNumU, "tpNumU"}, {m.tpDenU, st.TpDenU, "tpDenU"},
		{m.fpNumU, st.FpNumU, "fpNumU"}, {m.fpDenU, st.FpDenU, "fpDenU"},
	} {
		if c.src == nil {
			continue
		}
		if err := copyInto(c.dst, c.src, c.what); err != nil {
			return nil, err
		}
	}
	if st.RunTP != nil {
		for _, s := range [][]float64{st.RunTP, st.RunTPD, st.RunFP, st.RunFPD, st.RunAgree, st.RunAgreeD} {
			if len(s) != m.M {
				return nil, fmt.Errorf("%w: saved running accumulators have wrong length", ErrConfig)
			}
		}
		for _, s := range [][]float64{st.RunPrevN, st.RunPrevD} {
			if len(s) != m.numLabels {
				return nil, fmt.Errorf("%w: saved running prevalences have wrong length", ErrConfig)
			}
		}
		cpF := func(v []float64) []float64 { return append([]float64(nil), v...) }
		m.runTP, m.runTPD = cpF(st.RunTP), cpF(st.RunTPD)
		m.runFP, m.runFPD = cpF(st.RunFP), cpF(st.RunFPD)
		m.runAgree, m.runAgreeD = cpF(st.RunAgree), cpF(st.RunAgreeD)
		m.runPrevN, m.runPrevD = cpF(st.RunPrevN), cpF(st.RunPrevD)
	}
	if st.Revealed != nil {
		if len(st.Revealed) != m.numItems {
			return nil, fmt.Errorf("%w: saved revealed truths have wrong length", ErrConfig)
		}
		for i, truth := range st.Revealed {
			// Keep unrevealed items nil: gob does not distinguish nil from
			// empty, and the kernels treat non-nil as "truth revealed".
			if len(truth) == 0 {
				continue
			}
			for _, c := range truth {
				if c < 0 || c >= m.numLabels {
					return nil, fmt.Errorf("%w: saved revealed label %d out of range", ErrConfig, c)
				}
			}
			m.revealedTruth[i] = truth
		}
	}
	if len(st.VotedList) != m.numItems || len(st.YhatVals) != m.numItems {
		return nil, fmt.Errorf("%w: saved per-item state has wrong length", ErrConfig)
	}
	for i := range st.VotedList {
		m.votedList[i] = st.VotedList[i]
		m.yhatVals[i] = st.YhatVals[i]
		if len(m.votedList[i]) != len(m.yhatVals[i]) {
			return nil, fmt.Errorf("%w: item %d voted/yhat length mismatch", ErrConfig, i)
		}
	}
	if len(st.AnsItems) != len(st.AnsWorkers) || len(st.AnsItems) != len(st.AnsLabels) {
		return nil, fmt.Errorf("%w: saved answers malformed", ErrConfig)
	}
	for k, item := range st.AnsItems {
		worker := st.AnsWorkers[k]
		if item < 0 || item >= m.numItems || worker < 0 || worker >= m.numWorkers {
			return nil, fmt.Errorf("%w: saved answer (%d,%d) out of range", ErrConfig, item, worker)
		}
		for _, c := range st.AnsLabels[k] {
			if c < 0 || c >= m.numLabels {
				return nil, fmt.Errorf("%w: saved answer label %d out of range", ErrConfig, c)
			}
		}
		// Re-intern the persisted canonical slice: the restored refs carry
		// the same set ids in the same order as a model that ingested the
		// stream live (ids are assigned first-seen, and the wire form
		// preserves arrival order), so every id-keyed read — panels,
		// membership tests — behaves bit-identically after a reload.
		id := m.intern.InternSlice(st.AnsLabels[k])
		if m.perItem[item].empty() {
			m.seenItems++
		}
		if m.perWorker[worker].empty() {
			m.seenWorkers++
		}
		m.perItem[item].append(ansRef{other: worker, set: id})
		m.perWorker[worker].append(ansRef{other: item, set: id})
		m.arrival = append(m.arrival, arrivalRef{item: item, idx: m.perItem[item].Len() - 1})
		m.numAns++
	}
	// Restore the monotone stream total; older files without the field fall
	// back to the retained count, which was the total before windowing.
	m.totalAns = st.TotalAns
	if m.totalAns < m.numAns {
		m.totalAns = m.numAns
	}
	m.haveRates = st.HaveRates
	m.batchIndex = st.BatchIndex
	m.fitted = st.Fitted
	m.streamFitted = st.BatchIndex > 0
	// Reseed the RNG deterministically past the saved progress and refresh
	// the cached expectations from the restored parameters.
	m.rng = rand.New(rand.NewSource(st.Cfg.Seed + int64(st.BatchIndex) + 1))
	m.refreshExpectations()
	// Sanity: parameters must be positive.
	for _, v := range m.lambda.Data() {
		if v <= 0 {
			return nil, fmt.Errorf("%w: non-positive lambda in saved state", ErrConfig)
		}
	}
	_ = mathx.Sum // keep import stable for future validations
	return m, nil
}
