package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"

	"cpa/internal/mathx"
)

// modelState is the gob wire form of a trained model: configuration,
// dimensions, the variational posterior, and the ingested answers (which
// prediction's cluster-weight likelihoods and later PartialFit scaling
// depend on). A restored model predicts identically to the original and can
// continue streaming.
type modelState struct {
	Version    int
	Cfg        Config
	Items      int
	Workers    int
	Labels     int
	M, T       int
	Kappa      []float64
	Phi        []float64
	Lambda     []float64
	Zeta       []float64
	Rho1, Rho2 []float64
	Ups1, Ups2 []float64
	VotedList  [][]int
	YhatVals   [][]float64
	Relm       []float64
	WorkerRelW []float64
	TprM, FprM []float64
	VoteLW     []float64
	MissLW     []float64
	LabelPrev  []float64
	HaveRates  bool
	BatchIndex int
	Fitted     bool
	// Ingested answers, flattened in arrival-independent per-item order.
	AnsItems   []int
	AnsWorkers []int
	AnsLabels  [][]int
}

const persistVersion = 1

// Save serialises the trained posterior to w (encoding/gob). See modelState
// for what is and is not persisted. The wire form stores each matrix as its
// flat row-major backing slice, so the format is unchanged by the
// internal/mat storage layer.
func (m *Model) Save(w io.Writer) error {
	st := modelState{
		Version: persistVersion,
		Cfg:     m.cfg,
		Items:   m.numItems, Workers: m.numWorkers, Labels: m.numLabels,
		M: m.M, T: m.T,
		Kappa: m.kappa.Data(), Phi: m.phi.Data(), Lambda: m.lambda.Data(), Zeta: m.zeta.Data(),
		Rho1: m.rho1, Rho2: m.rho2, Ups1: m.ups1, Ups2: m.ups2,
		VotedList: m.votedList, YhatVals: m.yhatVals,
		Relm: m.relm, WorkerRelW: m.workerRelW,
		TprM: m.tprM, FprM: m.fprM, VoteLW: m.voteLW, MissLW: m.missLW,
		LabelPrev: m.labelPrev, HaveRates: m.haveRates,
		BatchIndex: m.batchIndex, Fitted: m.fitted,
	}
	for i, refs := range m.perItem {
		for _, ar := range refs {
			st.AnsItems = append(st.AnsItems, i)
			st.AnsWorkers = append(st.AnsWorkers, ar.other)
			st.AnsLabels = append(st.AnsLabels, ar.labels)
		}
	}
	if err := gob.NewEncoder(w).Encode(&st); err != nil {
		return fmt.Errorf("core: saving model: %w", err)
	}
	return nil
}

// Load restores a model saved with Save.
func Load(r io.Reader) (*Model, error) {
	var st modelState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("core: loading model: %w", err)
	}
	if st.Version != persistVersion {
		return nil, fmt.Errorf("%w: model state version %d (want %d)", ErrConfig, st.Version, persistVersion)
	}
	m, err := NewModel(st.Cfg, st.Items, st.Workers, st.Labels)
	if err != nil {
		return nil, err
	}
	if st.M != m.M || st.T != m.T {
		return nil, fmt.Errorf("%w: truncation mismatch in saved state", ErrConfig)
	}
	copyInto := func(dst, src []float64, what string) error {
		if len(dst) != len(src) {
			return fmt.Errorf("%w: saved %s has %d entries, want %d", ErrConfig, what, len(src), len(dst))
		}
		copy(dst, src)
		return nil
	}
	for _, c := range []struct {
		dst, src []float64
		what     string
	}{
		{m.kappa.Data(), st.Kappa, "kappa"}, {m.phi.Data(), st.Phi, "phi"},
		{m.lambda.Data(), st.Lambda, "lambda"}, {m.zeta.Data(), st.Zeta, "zeta"},
		{m.rho1, st.Rho1, "rho1"}, {m.rho2, st.Rho2, "rho2"},
		{m.ups1, st.Ups1, "ups1"}, {m.ups2, st.Ups2, "ups2"},
		{m.relm, st.Relm, "relm"}, {m.workerRelW, st.WorkerRelW, "workerRelW"},
		{m.tprM, st.TprM, "tprM"}, {m.fprM, st.FprM, "fprM"},
		{m.voteLW, st.VoteLW, "voteLW"}, {m.missLW, st.MissLW, "missLW"},
		{m.labelPrev, st.LabelPrev, "labelPrev"},
	} {
		if err := copyInto(c.dst, c.src, c.what); err != nil {
			return nil, err
		}
	}
	if len(st.VotedList) != m.numItems || len(st.YhatVals) != m.numItems {
		return nil, fmt.Errorf("%w: saved per-item state has wrong length", ErrConfig)
	}
	for i := range st.VotedList {
		m.votedList[i] = st.VotedList[i]
		m.yhatVals[i] = st.YhatVals[i]
		if len(m.votedList[i]) != len(m.yhatVals[i]) {
			return nil, fmt.Errorf("%w: item %d voted/yhat length mismatch", ErrConfig, i)
		}
	}
	if len(st.AnsItems) != len(st.AnsWorkers) || len(st.AnsItems) != len(st.AnsLabels) {
		return nil, fmt.Errorf("%w: saved answers malformed", ErrConfig)
	}
	for k, item := range st.AnsItems {
		worker := st.AnsWorkers[k]
		if item < 0 || item >= m.numItems || worker < 0 || worker >= m.numWorkers {
			return nil, fmt.Errorf("%w: saved answer (%d,%d) out of range", ErrConfig, item, worker)
		}
		xs := st.AnsLabels[k]
		if len(m.perItem[item]) == 0 {
			m.seenItems++
		}
		if len(m.perWorker[worker]) == 0 {
			m.seenWorkers++
		}
		m.perItem[item] = append(m.perItem[item], ansRef{other: worker, labels: xs})
		m.perWorker[worker] = append(m.perWorker[worker], ansRef{other: item, labels: xs})
		m.numAns++
	}
	m.haveRates = st.HaveRates
	m.batchIndex = st.BatchIndex
	m.fitted = st.Fitted
	m.streamFitted = st.BatchIndex > 0
	// Reseed the RNG deterministically past the saved progress and refresh
	// the cached expectations from the restored parameters.
	m.rng = rand.New(rand.NewSource(st.Cfg.Seed + int64(st.BatchIndex) + 1))
	m.refreshExpectations()
	// Sanity: parameters must be positive.
	for _, v := range m.lambda.Data() {
		if v <= 0 {
			return nil, fmt.Errorf("%w: non-positive lambda in saved state", ErrConfig)
		}
	}
	_ = mathx.Sum // keep import stable for future validations
	return m, nil
}
