package core

import (
	"fmt"
	"math/rand"
	"sort"

	"cpa/internal/labelset"
	"cpa/internal/mat"
)

// Publisher is the snapshot engine behind serve's per-round consensus
// publication (DESIGN.md §8). It owns a reusable finalize-clone of the live
// model — synchronised each round in O(items + workers + parameters), with
// the chunked answer index shared structurally (chunks.go) — and supports
// two publication modes:
//
//   - Full: the complete online-prediction pipeline of §4.1 — FinalizeOnline
//     (global κ/ϕ refresh plus the reliability/imputation fixed point)
//     followed by ConsensusView. Bit-identical to the legacy
//     Clone()+FinalizeOnline()+ConsensusView() path, at a fraction of its
//     allocation cost, but still O(total answers) per round.
//   - Incremental: only items dirtied since the last publication (touched
//     by a PartialFit batch) plus a bounded round-robin sweep are
//     republished, straight from the live model's current state — the ϕ row
//     and calibrated ŷ that PartialFit just refreshed under the current
//     worker model — with only the §3.4 instantiation recomputed
//     (predictItemLocal); every other item carries its previous immutable
//     ItemConsensus entry forward. O(batch + dimensions) per round,
//     independent of stream length — even per refreshed item the cost does
//     not scale with that item's accumulated answer history.
//
// Each incremental refresh is a pure per-item function of the live model
// state: the shared inputs (emission posterior modes, cluster truth sizes)
// are frozen from the live parameters before the per-item loop, so an
// item's refreshed entry does not depend on which other items happen to be
// in the dirty set. That property is what makes the incremental-vs-full-
// rebuild equivalence testable bit-for-bit (publish_test.go) and lets the
// serving journal replay reproduce any published snapshot exactly.
//
// A Publisher must be driven from the goroutine that owns the model (the
// fitter); the views it returns are immutable and safe to share.
type Publisher struct {
	src   *Model
	clone *Model
	view  *ConsensusView

	// cursor is the round-robin sweep position: each incremental round also
	// refreshes up to |dirty| untouched items so consensus staleness from
	// drifting global parameters and worker statistics is bounded by
	// I/|batch| rounds under sustained load. Full publications reset it.
	cursor int

	dirtyBuf []int
	phiMAP   []float64
	nbar     []float64
	preds    []labelset.Set
}

// NewPublisher returns a snapshot engine for the given live model.
func NewPublisher(m *Model) *Publisher { return &Publisher{src: m} }

// View returns the most recently published view (nil before the first
// Publish).
func (p *Publisher) View() *ConsensusView { return p.view }

// Publish builds the next consensus view. With full=true (or on a cold
// publisher) it runs the complete finalize pipeline; otherwise it refreshes
// only the dirty items and returns their sorted ids (nil for a full
// rebuild). The returned dirty slice is valid until the next Publish call.
func (p *Publisher) Publish(full bool) (*ConsensusView, []int, error) {
	if !p.src.fitted {
		return nil, nil, fmt.Errorf("%w: Publish before Fit/FitStream", ErrState)
	}
	dirty := p.src.takeDirtySorted(p.dirtyBuf)
	p.dirtyBuf = dirty
	if full || p.view == nil || len(p.view.Items) != p.src.numItems {
		view, err := p.publishFull()
		return view, nil, err
	}
	dirty = p.addSweep(dirty)
	p.dirtyBuf = dirty
	view, err := p.publishRefresh(dirty)
	return view, dirty, err
}

// takeDirtySorted drains the model's publish-dirty item set (accumulated by
// PartialFit) into dst, sorted ascending.
func (m *Model) takeDirtySorted(dst []int) []int {
	dst = append(dst[:0], m.dirtyItems...)
	for _, i := range m.dirtyItems {
		m.dirtyFlags[i] = false
	}
	m.dirtyItems = m.dirtyItems[:0]
	sort.Ints(dst)
	return dst
}

// addSweep widens a sorted dirty set with up to |dirty| round-robin swept
// items (deduplicated against the batch-dirty prefix), keeping the result
// sorted. The sweep is what refreshes items whose own evidence never
// changes but whose consensus inputs — worker statistics, global
// parameters — drift with every round.
func (p *Publisher) addSweep(dirty []int) []int {
	I := p.src.numItems
	n0 := len(dirty)
	budget := n0
	if budget > I-n0 {
		budget = I - n0
	}
	for scanned := 0; scanned < I && len(dirty)-n0 < budget; scanned++ {
		i := p.cursor
		p.cursor++
		if p.cursor == I {
			p.cursor = 0
		}
		if k := sort.SearchInts(dirty[:n0], i); k < n0 && dirty[k] == i {
			continue
		}
		dirty = append(dirty, i)
	}
	sort.Ints(dirty)
	return dirty
}

// ensureClone lazily allocates the reusable finalize-clone: a model-shaped
// shell whose buffers are refilled by syncPublishState each round.
func (p *Publisher) ensureClone() {
	if p.clone != nil {
		return
	}
	m := p.src
	c := &Model{
		cfg:        m.cfg,
		numItems:   m.numItems,
		numWorkers: m.numWorkers,
		numLabels:  m.numLabels,
		M:          m.M,
		T:          m.T,
		rng:        rand.New(rand.NewSource(m.cfg.Seed)),
		temp:       1,
	}
	c.allocate()
	p.clone = c
}

// syncIntern points the clone at the live model's interner. The table is
// append-only with stable ids and both models are driven from the fitter
// goroutine, so sharing is safe and keeps the clone's shared answer refs
// (whose set ids index the live table) resolvable. A window compaction
// (maybeCompactWindow) replaces the live interner wholesale, renumbering
// every set — when that happens, the clone's id-keyed caches must be
// dropped: their cached ids would index a table they were never built
// against.
func (p *Publisher) syncIntern() {
	if p.clone.intern != p.src.intern {
		p.clone.panels = panelCache{disabled: p.clone.panels.disabled}
		p.clone.ws.prod = prodCache{buf: p.clone.ws.prod.buf}
	}
	p.clone.intern = p.src.intern
	p.clone.panels.disabled = p.src.panels.disabled
}

// syncPublishState refills the clone from the live model: parameters and
// per-item mutable state are copied into the clone's retained buffers, the
// answer index is shared structurally. Cost is O(items + workers +
// parameters) — nothing scales with the number of ingested answers.
func (c *Model) syncPublishState(src *Model) {
	for u := range src.perWorker {
		c.perWorker[u] = src.perWorker[u].shareClone()
	}
	for i := range src.perItem {
		c.perItem[i] = src.perItem[i].shareClone()
	}
	c.arrival = src.arrival[:len(src.arrival):len(src.arrival)]
	c.numAns, c.totalAns = src.numAns, src.totalAns
	c.seenWorkers, c.seenItems = src.seenWorkers, src.seenItems
	copy(c.revealedTruth, src.revealedTruth) // inner slices are rebind-only
	c.kappa.CopyFrom(src.kappa)
	c.phi.CopyFrom(src.phi)
	c.lambda.CopyFrom(src.lambda)
	c.zeta.CopyFrom(src.zeta)
	copy(c.rho1, src.rho1)
	copy(c.rho2, src.rho2)
	copy(c.ups1, src.ups1)
	copy(c.ups2, src.ups2)
	copy(c.elogPi, src.elogPi)
	copy(c.elogTau, src.elogTau)
	c.elogPsi.CopyFrom(src.elogPsi)
	c.elogPhi.CopyFrom(src.elogPhi)
	copy(c.votedList, src.votedList) // inner slices are rebind-only
	for i := range src.yhatVals {
		// ŷ is mutated in place by imputation: copy into retained buffers.
		c.yhatVals[i] = append(c.yhatVals[i][:0], src.yhatVals[i]...)
	}
	copy(c.relm, src.relm)
	copy(c.workerRelW, src.workerRelW)
	copy(c.tprM, src.tprM)
	copy(c.fprM, src.fprM)
	copy(c.tpNumU, src.tpNumU)
	copy(c.tpDenU, src.tpDenU)
	copy(c.fpNumU, src.fpNumU)
	copy(c.fpDenU, src.fpDenU)
	copy(c.voteLW, src.voteLW)
	copy(c.missLW, src.missLW)
	copy(c.labelPrev, src.labelPrev)
	if src.runTP != nil {
		if c.runTP == nil {
			M, C := c.M, c.numLabels
			c.runTP, c.runTPD = make([]float64, M), make([]float64, M)
			c.runFP, c.runFPD = make([]float64, M), make([]float64, M)
			c.runAgree, c.runAgreeD = make([]float64, M), make([]float64, M)
			c.runPrevN, c.runPrevD = make([]float64, C), make([]float64, C)
		}
		copy(c.runTP, src.runTP)
		copy(c.runTPD, src.runTPD)
		copy(c.runFP, src.runFP)
		copy(c.runFPD, src.runFPD)
		copy(c.runAgree, src.runAgree)
		copy(c.runAgreeD, src.runAgreeD)
		copy(c.runPrevN, src.runPrevN)
		copy(c.runPrevD, src.runPrevD)
	}
	// The clone's elogPsi was just replaced wholesale: advance its
	// expectation generation so any score panels built against the previous
	// round's copy are invalidated (the generation guard in scorePanel).
	c.expGen++
	c.expertCooc = src.expertCooc
	c.haveRates = src.haveRates
	c.streamFitted = src.streamFitted
	c.fitted = src.fitted
	c.batchIndex = src.batchIndex
	c.lastBatchDelta = src.lastBatchDelta
	c.temp = src.temp
}

// publishFull syncs the clone and runs the legacy finalize pipeline on it.
func (p *Publisher) publishFull() (*ConsensusView, error) {
	p.ensureClone()
	p.syncIntern()
	p.clone.syncPublishState(p.src)
	p.cursor = 0
	p.clone.FinalizeOnline()
	view, err := p.clone.ConsensusView()
	if err != nil {
		return nil, err
	}
	p.view = view
	return view, nil
}

// publishRefresh re-publishes exactly the given sorted dirty items from the
// live model's current state and carries every other item's previous entry
// forward unchanged. The live model already holds each dirty item's ϕ row
// and calibrated ŷ — PartialFit refreshed them this round under the current
// worker model — so the refresh is the §3.4 instantiation alone, with
// cluster weights read from ϕ (predictItemLocal): O(1) per item regardless
// of how many answers the item has accumulated, and a pure per-item
// function of the live state (the shared inputs below are frozen before the
// per-item loop), independent of the dirty-set choice.
func (p *Publisher) publishRefresh(dirty []int) (*ConsensusView, error) {
	src := p.src
	p.phiMAP = src.dirichletModesInto(src.zeta, p.phiMAP)
	if cap(p.nbar) < src.T {
		p.nbar = make([]float64, src.T)
	}
	nbar := p.nbar[:src.T]
	src.clusterTruthSizesInto(nbar)

	if cap(p.preds) < len(dirty) {
		p.preds = make([]labelset.Set, len(dirty))
	}
	preds := p.preds[:len(dirty)]
	phiMAP := p.phiMAP
	mat.ParallelFor(len(dirty), src.shardCount(len(dirty)), func(_, lo, hi int) {
		sc := newPredictScratch(src)
		for k := lo; k < hi; k++ {
			preds[k] = src.predictItemLocal(dirty[k], phiMAP, nbar, sc)
		}
	})

	// Assemble the view: fresh entries for dirty items, the previous view's
	// immutable entries (shared, never copied) for everything else.
	items := make([]ItemConsensus, len(p.view.Items))
	copy(items, p.view.Items)
	for k, i := range dirty {
		items[i] = ItemConsensus{
			Labels:     preds[k].Slice(),
			Candidates: append([]int(nil), src.votedList[i]...),
			Confidence: append([]float64(nil), src.yhatVals[i]...),
		}
	}
	view := &ConsensusView{Items: items, Stats: src.Stats()}
	p.view = view
	return view, nil
}
