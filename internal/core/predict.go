package core

import (
	"fmt"
	"math"
	"sort"

	"cpa/internal/labelset"
	"cpa/internal/mat"
	"cpa/internal/mathx"
)

// Predict instantiates the deterministic assignment d : items → 2^labels
// (paper §3.4): for every item it maximises p(y_i, x_{U_i} | D, P) over
// label sets, greedily by default or exhaustively over a capped candidate
// universe with Config.ExhaustivePrediction. Prediction is independent per
// item and runs on the Algorithm 3 shards.
func (m *Model) Predict() ([]labelset.Set, error) {
	if !m.fitted {
		return nil, fmt.Errorf("%w: Predict before Fit/FitStream", ErrState)
	}
	pred := make([]labelset.Set, m.numItems)
	// Posterior-mode (MAP) estimates ψ^MAP, φ^MAP of the Dirichlet
	// posteriors, shared read-only across shards, plus the per-set
	// likelihood panels Π_c ψ^MAP (built once per call, read-only in the
	// shards; nil entries fall back to the identical per-answer product).
	psiMAP := m.dirichletModes(m.lambda)
	phiMAP := m.dirichletModes(m.zeta)
	nbar := m.clusterTruthSizes()
	pp := m.buildProductPanels(psiMAP)
	m.parallelFor(m.numItems, func(lo, hi int) {
		sc := newPredictScratch(m)
		for i := lo; i < hi; i++ {
			pred[i] = m.predictItem(i, psiMAP, phiMAP, nbar, pp, sc)
		}
	})
	return pred, nil
}

// PredictItem predicts a single item with fresh scratch. Prefer Predict for
// bulk use.
func (m *Model) PredictItem(i int) (labelset.Set, error) {
	if !m.fitted {
		return labelset.Set{}, fmt.Errorf("%w: PredictItem before Fit/FitStream", ErrState)
	}
	if i < 0 || i >= m.numItems {
		return labelset.Set{}, fmt.Errorf("%w: item %d out of range", ErrConfig, i)
	}
	psiMAP := m.dirichletModes(m.lambda)
	phiMAP := m.dirichletModes(m.zeta)
	nbar := m.clusterTruthSizes()
	// No product panels for a single item: building the full per-set cache
	// would dwarf the one item's work, and the nil path is bit-identical.
	return m.predictItem(i, psiMAP, phiMAP, nbar, nil, newPredictScratch(m)), nil
}

// dirichletModes returns the row-wise MAP points of a matrix of Dirichlet
// posteriors (one C-dimensional factor per row) as a flat row-major slice,
// falling back to the mean when any concentration is below one (no
// interior mode).
func (m *Model) dirichletModes(params *mat.Dense) []float64 {
	return m.dirichletModesInto(params, nil)
}

// dirichletModesInto is the buffer-reusing form (the per-round snapshot
// publisher calls it once per publication).
func (m *Model) dirichletModesInto(params *mat.Dense, out []float64) []float64 {
	C := m.numLabels
	if cap(out) < params.Size() {
		out = make([]float64, params.Size())
	}
	out = out[:params.Size()]
	for r := 0; r < params.Rows(); r++ {
		row := params.Row(r)
		dst := out[r*C : (r+1)*C]
		sum := mathx.Sum(row)
		interior := sum > float64(C)
		if interior {
			for _, a := range row {
				if a < 1 {
					interior = false
					break
				}
			}
		}
		if interior {
			denom := sum - float64(C)
			for c, a := range row {
				dst[c] = (a - 1) / denom
			}
		} else {
			copy(dst, row)
			mathx.NormalizeInPlace(dst)
		}
	}
	return out
}

// clusterTruthSizes estimates n̄_t, the expected true-label-set size of each
// cluster, from the accumulated emission mass: Σ_c (ζ_tc − η) is the
// ϕ-weighted sum of imputed/observed truth masses in cluster t (DESIGN.md
// D3).
func (m *Model) clusterTruthSizes() []float64 {
	out := make([]float64, m.T)
	m.clusterTruthSizesInto(out)
	return out
}

// clusterTruthSizesInto is the allocation-free form used every iteration by
// imputeTruth (dst must have T entries; it doubles as the ϕ column-mass
// accumulator).
func (m *Model) clusterTruthSizesInto(dst []float64) {
	T, C := m.T, m.numLabels
	mat.Fill(dst, 0)
	m.phi.ColSumsInto(dst, nil)
	for t := 0; t < T; t++ {
		acc := m.zeta.RowSum(t) - float64(C)*m.cfg.EtaPrior
		v := 0.0
		if dst[t] > 1e-6 {
			v = acc / dst[t]
		}
		dst[t] = mathx.Clamp(v, 1, float64(C))
	}
}

// predictScratch holds the per-item working buffers of prediction.
type predictScratch struct {
	logW    []float64   // T: ln w_it (cluster posterior incl. answer evidence)
	runLogS []float64   // T: running ln S_t(y) during greedy
	trial   []float64   // T
	wt      []float64   // T: mixture weights in probability space
	delta   [][]float64 // per candidate: T-vector of per-cluster gains
	cand    []int
	yv      []float64    // per candidate: imputed truth expectation (0 for extras)
	used    []bool       // greedy-search committed flags
	seen    labelset.Set // candidate dedup bitset
	extras  []scoredCand // prior-driven candidate buffer
}

type scoredCand struct {
	c int
	p float64
}

func newPredictScratch(m *Model) *predictScratch {
	return &predictScratch{
		logW:    make([]float64, m.T),
		runLogS: make([]float64, m.T),
		trial:   make([]float64, m.T),
		wt:      make([]float64, m.T),
		seen:    labelset.New(m.numLabels),
	}
}

// predictItem implements the §3.4 instantiation for one item (DESIGN.md D3
// documents the multinomial→Bernoulli conversion of the set score). pp, when
// non-nil, supplies per-set likelihood panels over ψ^MAP so the community
// mixture per (answer, cluster) is a contiguous floored dot; answers without
// a panel recompute the product with identical float-operation order.
func (m *Model) predictItem(i int, psiMAP, phiMAP, nbar []float64, pp *prodCache, sc *predictScratch) labelset.Set {
	M, T, C := m.M, m.T, m.numLabels

	// Cluster posterior weights:
	// ln w_it = ln ϕ_it + Σ_{u∈U_i} ln Σ_m κ_um p(x_iu | ψ_tm^MAP).
	ansL := &m.perItem[i]
	for t := 0; t < T; t++ {
		w := math.Log(math.Max(m.phi.At(i, t), 1e-300))
		for s, sn := 0, ansL.segs(); s < sn; s++ {
			for _, ar := range ansL.seg(s) {
				kappaRow := m.kappa.Row(ar.other)
				inner := 0.0
				var panel []float64
				if pp != nil {
					panel = pp.panel(ar.set, T*M)
				}
				if panel != nil {
					row := panel[t*M : t*M+M]
					for mm, km := range kappaRow {
						if km < 1e-10 {
							continue
						}
						inner += km * row[mm]
					}
				} else {
					xs := m.intern.Canon(ar.set)
					tBase := t * M * C
					for mm := 0; mm < M; mm++ {
						km := kappaRow[mm]
						if km < 1e-10 {
							continue
						}
						p := 1.0
						base := tBase + mm*C
						for _, c := range xs {
							v := psiMAP[base+c]
							if v < 1e-12 {
								v = 1e-12
							}
							p *= v
						}
						inner += km * p
					}
				}
				if inner < 1e-300 {
					inner = 1e-300
				}
				w += math.Log(inner)
			}
		}
		sc.logW[t] = w
	}
	// Normalise for stability (constant shift does not change the argmax).
	shift := mathx.LogSumExp(sc.logW)
	for t := range sc.logW {
		sc.logW[t] -= shift
	}
	return m.instantiateItem(i, phiMAP, nbar, sc)
}

// predictItemLocal is the incremental publisher's instantiation: cluster
// posterior weights come straight from the model's current responsibilities
// (ln w_it = ln ϕ_it — ϕ already folds the answer evidence through the D1
// update) instead of re-scoring the item's full answer history against
// ψ^MAP, so the per-item cost is independent of how many answers the item
// has accumulated. Caught-up (full) publications still use predictItem's
// full-evidence weights.
func (m *Model) predictItemLocal(i int, phiMAP, nbar []float64, sc *predictScratch) labelset.Set {
	for t := 0; t < m.T; t++ {
		sc.logW[t] = math.Log(math.Max(m.phi.At(i, t), 1e-300))
	}
	shift := mathx.LogSumExp(sc.logW)
	for t := range sc.logW {
		sc.logW[t] -= shift
	}
	return m.instantiateItem(i, phiMAP, nbar, sc)
}

// instantiateItem runs the shared tail of the §3.4 instantiation from the
// cluster weights prepared in sc.logW: candidate assembly, per-cluster
// inclusion deltas, and the greedy (or capped exhaustive) subset search.
func (m *Model) instantiateItem(i int, phiMAP, nbar []float64, sc *predictScratch) labelset.Set {
	T, C := m.T, m.numLabels

	// Candidate labels: every voted label plus cluster labels with
	// appreciable posterior-weighted inclusion probability (this is where
	// labels nobody proposed can still enter the consensus — R3).
	candidates := m.predictCandidates(i, phiMAP, nbar, sc)

	// Per-cluster per-label inclusion probability with hierarchical
	// shrinkage (DESIGN.md D3): the item's calibrated truth posterior ŷ_ic
	// shrunk toward the cluster prior max(n̄_t·φ_tc, labelPrev_c). ŷ is
	// already prior-informed (imputeTruth), so the blend weight rises
	// quickly with the item's answer count.
	nAns := float64(m.perItem[i].Len())
	voteWeight := (nAns + 1) / (nAns + 3)
	// Candidate k's imputed expectation: predictCandidates places the voted
	// labels first, in voted order, so the alignment is positional; the
	// prior-driven extras carry 0 (nobody voted them), as the old per-item
	// map defaulted.
	voted := m.votedList[i]
	yv := sc.yv[:0]
	for k := range candidates {
		if k < len(voted) {
			yv = append(yv, m.yhatVals[i][k])
		} else {
			yv = append(yv, 0)
		}
	}
	sc.yv = yv
	if cap(sc.delta) < len(candidates) {
		sc.delta = make([][]float64, len(candidates))
		for k := range sc.delta {
			sc.delta[k] = make([]float64, T)
		}
	}
	sc.delta = sc.delta[:len(candidates)]
	for k := range sc.delta {
		if sc.delta[k] == nil {
			sc.delta[k] = make([]float64, T)
		}
	}
	for t := 0; t < T; t++ {
		base := sc.logW[t]
		for k, c := range candidates {
			prior := math.Min(nbar[t]*phiMAP[t*C+c], 0.95)
			if m.labelPrev[c] > prior {
				prior = m.labelPrev[c]
			}
			p := mathx.Clamp(voteWeight*yv[k]+(1-voteWeight)*prior, 1e-6, 0.99)
			base += math.Log1p(-p)
			sc.delta[k][t] = math.Log(p) - math.Log1p(-p)
		}
		sc.runLogS[t] = base
	}

	if m.cfg.ExhaustivePrediction {
		m.trimToCap(candidates, sc)
		return m.exhaustiveSearch(sc.cand, sc)
	}
	return m.greedySearch(candidates, sc)
}

// predictCandidates assembles the candidate label universe for an item:
// voted labels always; plus the labels whose mixture inclusion probability
// Σ_t W_t·φ̃_tc clears a small threshold (capped to keep the search bounded).
func (m *Model) predictCandidates(i int, phiMAP, nbar []float64, sc *predictScratch) []int {
	T, C := m.T, m.numLabels
	const inclusionThreshold = 0.2
	// Prior-driven (non-voted) candidates are capped by the item's evidence
	// volume: with almost no answers the cluster prior itself is built from
	// almost nothing, and flooding the search with speculative labels
	// destroys precision exactly where the paper's Fig. 3 demands
	// robustness.
	maxExtra := 4 * m.perItem[i].Len()
	if maxExtra > 16 {
		maxExtra = 16
	}
	if m.perItem[i].Len() < 2 {
		maxExtra = 0
	}
	sc.cand = sc.cand[:0]
	sc.seen.Clear()
	for _, c := range m.votedList[i] {
		sc.cand = append(sc.cand, c)
		sc.seen.Add(c)
	}
	// Mixture weights in probability space.
	wt := sc.wt
	for t := 0; t < T; t++ {
		wt[t] = math.Exp(sc.logW[t])
	}
	extras := sc.extras[:0]
	for t := 0; t < T; t++ {
		if wt[t] < 0.05 {
			continue
		}
		for c := 0; c < C; c++ {
			if sc.seen.Contains(c) {
				continue
			}
			p := wt[t] * mathx.Clamp(nbar[t]*phiMAP[t*C+c], 0, 0.95)
			if p > inclusionThreshold {
				extras = append(extras, scoredCand{c, p})
				sc.seen.Add(c)
			}
		}
	}
	sc.extras = extras
	sort.Slice(extras, func(a, b int) bool { return extras[a].p > extras[b].p })
	if len(extras) > maxExtra {
		extras = extras[:maxExtra]
	}
	for _, e := range extras {
		sc.cand = append(sc.cand, e.c)
	}
	return sc.cand
}

// greedySearch adds, at each step, the candidate label with the largest
// increase of the mixture score ln Σ_t exp(runLogS_t + δ_tc), stopping when
// no candidate increases it (§3.4's greedy approximation of the NP-hard
// argmax). Because the score is a mixture over clusters, committing to one
// label re-weights the clusters and changes later labels' gains — the label
// co-occurrence mechanism of requirement R3.
func (m *Model) greedySearch(candidates []int, sc *predictScratch) labelset.Set {
	out := labelset.New(m.numLabels)
	if cap(sc.used) < len(candidates) {
		sc.used = make([]bool, len(candidates))
	}
	used := sc.used[:len(candidates)]
	for k := range used {
		used[k] = false
	}
	current := mathx.LogSumExp(sc.runLogS)
	for {
		bestK, bestScore := -1, current
		for k := range candidates {
			if used[k] {
				continue
			}
			for t := range sc.trial {
				sc.trial[t] = sc.runLogS[t] + sc.delta[k][t]
			}
			if s := mathx.LogSumExp(sc.trial); s > bestScore+1e-12 {
				bestK, bestScore = k, s
			}
		}
		if bestK < 0 {
			break
		}
		used[bestK] = true
		out.Add(candidates[bestK])
		for t := range sc.runLogS {
			sc.runLogS[t] += sc.delta[bestK][t]
		}
		current = bestScore
	}
	return out
}

// trimToCap reduces the candidate universe to the ExhaustiveCap labels with
// the highest single-label mixture gain, reordering sc.cand and sc.delta in
// lock-step so exhaustiveSearch sees a consistent view.
func (m *Model) trimToCap(candidates []int, sc *predictScratch) {
	cap := m.cfg.ExhaustiveCap
	if len(candidates) <= cap {
		return
	}
	type ranked struct {
		idx  int
		gain float64
	}
	order := make([]ranked, len(candidates))
	for k := range candidates {
		for t := range sc.trial {
			sc.trial[t] = sc.runLogS[t] + sc.delta[k][t]
		}
		order[k] = ranked{idx: k, gain: mathx.LogSumExp(sc.trial)}
	}
	sort.Slice(order, func(a, b int) bool { return order[a].gain > order[b].gain })
	newCand := make([]int, cap)
	newDelta := make([][]float64, cap)
	for j := 0; j < cap; j++ {
		newCand[j] = candidates[order[j].idx]
		newDelta[j] = sc.delta[order[j].idx]
	}
	sc.cand = newCand
	sc.delta = newDelta
}

// exhaustiveSearch scans all 2^k subsets of the candidate universe — the
// exact argmax the paper calls NP-hard, feasible only for small universes
// (used by the No-L discussion and the greedy-vs-exact ablation bench).
func (m *Model) exhaustiveSearch(candidates []int, sc *predictScratch) labelset.Set {
	k := len(candidates)
	bestMask := 0
	bestScore := math.Inf(-1)
	for mask := 0; mask < 1<<uint(k); mask++ {
		for t := range sc.trial {
			s := sc.runLogS[t]
			for b := 0; b < k; b++ {
				if mask&(1<<uint(b)) != 0 {
					s += sc.delta[b][t]
				}
			}
			sc.trial[t] = s
		}
		if s := mathx.LogSumExp(sc.trial); s > bestScore {
			bestMask, bestScore = mask, s
		}
	}
	out := labelset.New(m.numLabels)
	for b := 0; b < k; b++ {
		if bestMask&(1<<uint(b)) != 0 {
			out.Add(candidates[b])
		}
	}
	return out
}
