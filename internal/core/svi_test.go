package core

import (
	"math"
	"testing"

	"cpa/internal/answers"
	"cpa/internal/datasets"
	"cpa/internal/labelset"
	"cpa/internal/metrics"
)

func TestFitStreamValidations(t *testing.T) {
	m, _ := NewModel(Config{Seed: 1}, 4, 4, 4)
	if _, err := m.FitStream(nil); err == nil {
		t.Error("nil dataset should fail")
	}
	empty, _ := answers.NewDataset("e", 4, 4, 4)
	if _, err := m.FitStream(empty); err == nil {
		t.Error("empty dataset should fail")
	}
}

func TestPartialFitValidations(t *testing.T) {
	m, _ := NewModel(Config{Seed: 1}, 4, 4, 4)
	if err := m.PartialFit(nil); err != nil {
		t.Error("empty batch should be a no-op")
	}
	bad := []answers.Answer{{Item: 9, Worker: 0, Labels: labelset.Of(1)}}
	if err := m.PartialFit(bad); err == nil {
		t.Error("out-of-range item should fail")
	}
	bad = []answers.Answer{{Item: 0, Worker: 0, Labels: labelset.Set{}}}
	if err := m.PartialFit(bad); err == nil {
		t.Error("empty labels should fail")
	}
	bad = []answers.Answer{{Item: 0, Worker: 0, Labels: labelset.Of(9)}}
	if err := m.PartialFit(bad); err == nil {
		t.Error("out-of-range label should fail")
	}
}

func TestOnlineTracksOffline(t *testing.T) {
	// Table 5's comparison: the single-pass online model must land within a
	// modest margin of the batch model.
	for _, name := range []string{"image", "movie"} {
		ds, _, err := datasets.Load(name, 0.08, 19)
		if err != nil {
			t.Fatal(err)
		}
		offline := NewAggregator(Config{Seed: 4})
		op, err := offline.Aggregate(ds)
		if err != nil {
			t.Fatal(err)
		}
		offPR, _ := metrics.Evaluate(ds, op)

		online := NewOnlineAggregator(Config{Seed: 4})
		np, err := online.Aggregate(ds)
		if err != nil {
			t.Fatal(err)
		}
		onPR, _ := metrics.Evaluate(ds, np)
		t.Logf("%s offline=%v online=%v", name, offPR, onPR)
		if onPR.F1() < offPR.F1()-0.12 {
			t.Errorf("%s: online F1 %.3f too far below offline %.3f", name, onPR.F1(), offPR.F1())
		}
	}
}

func TestFitStreamEquivalentToManualPartialFits(t *testing.T) {
	ds, _, err := datasets.Load("movie", 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 6, BatchSize: 100}
	auto, err := NewModel(cfg, ds.NumItems, ds.NumWorkers, ds.NumLabels)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := auto.FitStream(ds); err != nil {
		t.Fatal(err)
	}
	manual, err := NewModel(cfg, ds.NumItems, ds.NumWorkers, ds.NumLabels)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range ds.Batches(100) {
		if err := manual.PartialFit(b.Answers); err != nil {
			t.Fatal(err)
		}
	}
	manual.FinalizeOnline()
	pa, err := auto.Predict()
	if err != nil {
		t.Fatal(err)
	}
	pb, err := manual.Predict()
	if err != nil {
		t.Fatal(err)
	}
	for i := range pa {
		if !pa[i].Equal(pb[i]) {
			t.Fatalf("FitStream and manual PartialFit diverge at item %d", i)
		}
	}
}

func TestFinalizeOnlineIdempotentNoop(t *testing.T) {
	m, _ := NewModel(Config{Seed: 1}, 4, 4, 4)
	m.FinalizeOnline() // must not panic before any PartialFit
	if m.Fitted() {
		t.Error("FinalizeOnline alone must not mark the model fitted")
	}
}

func TestIncrementalQualityImprovesWithArrival(t *testing.T) {
	// Fig. 6's shape: prediction quality at 100% arrival should exceed the
	// quality at 20% arrival.
	ds, _, err := datasets.Load("image", 0.08, 29)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 8, BatchSize: 128}
	m, err := NewModel(cfg, ds.NumItems, ds.NumWorkers, ds.NumLabels)
	if err != nil {
		t.Fatal(err)
	}
	batches := ds.Batches(cfg.BatchSize)
	fifth := len(batches) / 5
	if fifth == 0 {
		fifth = 1
	}
	var early float64
	for bi, b := range batches {
		if err := m.PartialFit(b.Answers); err != nil {
			t.Fatal(err)
		}
		if bi == fifth-1 {
			snap := m.Clone()
			snap.FinalizeOnline()
			pred, err := snap.Predict()
			if err != nil {
				t.Fatal(err)
			}
			pr, _ := metrics.Evaluate(ds, pred)
			early = pr.F1()
		}
	}
	m.FinalizeOnline()
	pred, err := m.Predict()
	if err != nil {
		t.Fatal(err)
	}
	pr, _ := metrics.Evaluate(ds, pred)
	t.Logf("F1 at ~20%% arrival %.3f, at 100%% %.3f", early, pr.F1())
	if pr.F1() <= early {
		t.Errorf("quality should improve with data: %.3f -> %.3f", early, pr.F1())
	}
}

func TestForgettingRateSweepStaysFinite(t *testing.T) {
	ds, _, err := datasets.Load("movie", 0.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []float64{0.6, 0.75, 0.875, 1.0} {
		agg := NewOnlineAggregator(Config{Seed: 2, ForgettingRate: r})
		pred, err := agg.Aggregate(ds)
		if err != nil {
			t.Fatalf("r=%v: %v", r, err)
		}
		pr, err := metrics.Evaluate(ds, pred)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(pr.Precision) || pr.F1() < 0.3 {
			t.Errorf("r=%v gives degenerate quality %v", r, pr)
		}
	}
}

func TestStreamWithRevealedTruth(t *testing.T) {
	ds, _, err := datasets.Load("movie", 0.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	withReveal := ds.Clone()
	for i := 0; i < withReveal.NumItems; i += 4 {
		if err := withReveal.Reveal(i); err != nil {
			t.Fatal(err)
		}
	}
	agg := NewOnlineAggregator(Config{Seed: 2})
	pred, err := agg.Aggregate(withReveal)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := metrics.Evaluate(withReveal, pred)
	if err != nil {
		t.Fatal(err)
	}
	if pr.F1() < 0.4 {
		t.Errorf("online with revealed truth degenerate: %v", pr)
	}
}
