package core

import (
	"math/rand"
	"reflect"
	"testing"

	"cpa/internal/answers"
	"cpa/internal/datasets"
)

// streamInBatches drives PartialFit over the dataset's answers with the
// model's batch size and publishes a snapshot after every round, returning
// the final incremental view (the serving-shaped loop).
func streamInBatches(t *testing.T, m *Model, pub *Publisher, ans []answers.Answer) *ConsensusView {
	t.Helper()
	size := m.Config().BatchSize
	var view *ConsensusView
	for start := 0; start < len(ans); start += size {
		end := start + size
		if end > len(ans) {
			end = len(ans)
		}
		if err := m.PartialFit(ans[start:end]); err != nil {
			t.Fatal(err)
		}
		v, _, err := pub.Publish(false)
		if err != nil {
			t.Fatal(err)
		}
		view = v
	}
	return view
}

func sameMatrix(t *testing.T, what string, a, b [][]float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d rows", what, len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("%s: row %d has %d vs %d entries", what, i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("%s: entry (%d,%d) differs: %v vs %v (must be bit-identical)", what, i, j, a[i][j], b[i][j])
			}
		}
	}
}

func sameViews(t *testing.T, what string, a, b *ConsensusView) {
	t.Helper()
	if len(a.Items) != len(b.Items) {
		t.Fatalf("%s: %d vs %d items", what, len(a.Items), len(b.Items))
	}
	for i := range a.Items {
		if !reflect.DeepEqual(a.Items[i].Labels, b.Items[i].Labels) {
			t.Fatalf("%s: item %d labels %v vs %v", what, i, a.Items[i].Labels, b.Items[i].Labels)
		}
		if !reflect.DeepEqual(a.Items[i].Candidates, b.Items[i].Candidates) {
			t.Fatalf("%s: item %d candidates differ", what, i)
		}
		av, bv := a.Items[i].Confidence, b.Items[i].Confidence
		if len(av) != len(bv) {
			t.Fatalf("%s: item %d confidence lengths differ", what, i)
		}
		for k := range av {
			if av[k] != bv[k] {
				t.Fatalf("%s: item %d confidence[%d] %v vs %v (must be bit-identical)", what, i, k, av[k], bv[k])
			}
		}
	}
}

// TestPanelCacheEquivalence is the tentpole pin: inference with the
// label-set score-panel cache force-disabled must be bit-identical to the
// cached path — same κ/ϕ, same imputed ŷ, same published snapshots — on
// identical shuffled streams, across Parallelism 1/4/8, on both engines.
// The movie profile has a small label vocabulary, so its streams reuse
// label sets heavily and genuinely exercise the cached fast path.
func TestPanelCacheEquivalence(t *testing.T) {
	base, _, err := datasets.Load("movie", 0.25, 3)
	if err != nil {
		t.Fatal(err)
	}
	ds := base.Shuffled(rand.New(rand.NewSource(41)))
	for _, par := range []int{1, 4, 8} {
		newModel := func(disabled bool) *Model {
			m, err := NewModel(Config{Seed: 9, Parallelism: par, BatchSize: 96, MaxIter: 8},
				ds.NumItems, ds.NumWorkers, ds.NumLabels)
			if err != nil {
				t.Fatal(err)
			}
			m.panels.disabled = disabled
			return m
		}

		// Streaming engine, serving-shaped: PartialFit + per-round publish
		// (incremental snapshots), then a final full publication.
		mOn, mOff := newModel(false), newModel(true)
		pubOn, pubOff := NewPublisher(mOn), NewPublisher(mOff)
		viewOn := streamInBatches(t, mOn, pubOn, ds.Answers())
		viewOff := streamInBatches(t, mOff, pubOff, ds.Answers())
		if mOn.panels.slots == 0 {
			t.Fatal("panel cache never admitted a set: the equivalence test is vacuous")
		}
		sameMatrix(t, "stream kappa", [][]float64{mOn.kappa.Data()}, [][]float64{mOff.kappa.Data()})
		sameMatrix(t, "stream phi", [][]float64{mOn.phi.Data()}, [][]float64{mOff.phi.Data()})
		sameMatrix(t, "stream yhat", mOn.yhatVals, mOff.yhatVals)
		sameViews(t, "incremental snapshot", viewOn, viewOff)
		fullOn, _, err := pubOn.Publish(true)
		if err != nil {
			t.Fatal(err)
		}
		fullOff, _, err := pubOff.Publish(true)
		if err != nil {
			t.Fatal(err)
		}
		sameViews(t, "full snapshot", fullOn, fullOff)

		// Batch engine.
		bOn, bOff := newModel(false), newModel(true)
		if _, err := bOn.Fit(ds); err != nil {
			t.Fatal(err)
		}
		if _, err := bOff.Fit(ds); err != nil {
			t.Fatal(err)
		}
		sameMatrix(t, "fit kappa", [][]float64{bOn.kappa.Data()}, [][]float64{bOff.kappa.Data()})
		sameMatrix(t, "fit phi", [][]float64{bOn.phi.Data()}, [][]float64{bOff.phi.Data()})
		sameMatrix(t, "fit lambda", [][]float64{bOn.lambda.Data()}, [][]float64{bOff.lambda.Data()})
		sameMatrix(t, "fit yhat", bOn.yhatVals, bOff.yhatVals)
		predOn, err := bOn.Predict()
		if err != nil {
			t.Fatal(err)
		}
		predOff, err := bOff.Predict()
		if err != nil {
			t.Fatal(err)
		}
		for i := range predOn {
			if !predOn[i].Equal(predOff[i]) {
				t.Fatalf("P=%d: item %d predicted %v with panels, %v without", par, i, predOn[i], predOff[i])
			}
		}
	}
}

// TestScorePanelMatchesAnswerScore pins the bit-exactness contract at the
// unit level: an admitted panel's entries equal answerScore on the same
// canonical slice, bit for bit.
func TestScorePanelMatchesAnswerScore(t *testing.T) {
	ds, _, err := datasets.Load("movie", 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(Config{Seed: 2, BatchSize: 64}, ds.NumItems, ds.NumWorkers, ds.NumLabels)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.FitStream(ds); err != nil {
		t.Fatal(err)
	}
	m.ensureScorePanels()
	checked := 0
	for id := int32(0); int(id) < m.intern.Len(); id++ {
		panel := m.scorePanel(id)
		if panel == nil {
			continue
		}
		canon := m.intern.Canon(id)
		for tt := 0; tt < m.T; tt++ {
			for mm := 0; mm < m.M; mm++ {
				if got, want := panel[tt*m.M+mm], m.answerScore(tt, mm, canon); got != want {
					t.Fatalf("panel[set %d][%d,%d] = %v, answerScore = %v (must be bit-identical)", id, tt, mm, got, want)
				}
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no panels admitted: test is vacuous")
	}
}

// TestScorePanelStaleGenerationNeverServed pins the invalidation protocol:
// after refreshExpectations, a panel built against the previous
// expectations must not be readable until the next ensure pass rebuilds it.
func TestScorePanelStaleGenerationNeverServed(t *testing.T) {
	ds, _, err := datasets.Load("movie", 0.1, 6)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(Config{Seed: 4, BatchSize: 64}, ds.NumItems, ds.NumWorkers, ds.NumLabels)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.FitStream(ds); err != nil {
		t.Fatal(err)
	}
	m.ensureScorePanels()
	var admitted int32 = -1
	for id := int32(0); int(id) < m.intern.Len(); id++ {
		if m.scorePanel(id) != nil {
			admitted = id
			break
		}
	}
	if admitted < 0 {
		t.Fatal("no panels admitted")
	}
	// Move the parameters and refresh: the old panel content is stale.
	m.lambda.Set(0, 0, m.lambda.At(0, 0)*1.5)
	m.refreshExpectations()
	if m.scorePanel(admitted) != nil {
		t.Fatal("stale-generation panel served after refreshExpectations")
	}
	// The ensure pass rebuilds against the new expectations.
	m.ensureScorePanels()
	panel := m.scorePanel(admitted)
	if panel == nil {
		t.Fatal("panel not rebuilt by ensureScorePanels")
	}
	canon := m.intern.Canon(admitted)
	if got, want := panel[0], m.answerScore(0, 0, canon); got != want {
		t.Fatalf("rebuilt panel[0] = %v, want fresh answerScore %v", got, want)
	}
}
