package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"cpa/internal/answers"
	"cpa/internal/datasets"
)

// publishStream loads a shuffled image-profile stream — the serve-shaped
// workload: interleaved items and workers in arrival order.
func publishStream(t testing.TB, seed int64) *answers.Dataset {
	t.Helper()
	ds, _, err := datasets.Load("image", 0.08, seed)
	if err != nil {
		t.Fatal(err)
	}
	return ds.Shuffled(rand.New(rand.NewSource(seed)))
}

// sameView asserts two consensus views are bit-for-bit identical:
// label sets, candidate lists, float confidences, and stats.
func sameView(t testing.TB, round int, want, got *ConsensusView) {
	t.Helper()
	if !reflect.DeepEqual(want.Stats, got.Stats) {
		t.Fatalf("round %d: stats diverged:\nwant %+v\ngot  %+v", round, want.Stats, got.Stats)
	}
	if len(want.Items) != len(got.Items) {
		t.Fatalf("round %d: %d vs %d items", round, len(want.Items), len(got.Items))
	}
	for i := range want.Items {
		sameItemConsensus(t, round, i, want.Items[i], got.Items[i])
	}
}

func sameItemConsensus(t testing.TB, round, i int, want, got ItemConsensus) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round %d item %d diverged:\nwant %+v\ngot  %+v", round, i, want, got)
	}
}

// TestPublishFullMatchesLegacy pins the reusable-clone plumbing: at every
// round of a long shuffled stream, the publisher's full mode — shared-prefix
// chunk storage, retained buffers, no per-round deep copy — must be
// bit-identical to the from-scratch Clone()+FinalizeOnline()+ConsensusView()
// rebuild the serving layer used before, across Parallelism settings.
func TestPublishFullMatchesLegacy(t *testing.T) {
	ds := publishStream(t, 21)
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("P=%d", par), func(t *testing.T) {
			cfg := Config{Seed: 21, BatchSize: 64, Parallelism: par}
			model, err := NewModel(cfg, ds.NumItems, ds.NumWorkers, ds.NumLabels)
			if err != nil {
				t.Fatal(err)
			}
			pub := NewPublisher(model)
			round := 0
			for _, b := range ds.Batches(cfg.BatchSize) {
				if err := model.PartialFit(b.Answers); err != nil {
					t.Fatal(err)
				}
				round++
				got, dirty, err := pub.Publish(true)
				if err != nil {
					t.Fatal(err)
				}
				if dirty != nil {
					t.Fatalf("round %d: full publish reported a dirty set", round)
				}
				legacy := model.Clone()
				legacy.FinalizeOnline()
				want, err := legacy.ConsensusView()
				if err != nil {
					t.Fatal(err)
				}
				sameView(t, round, want, got)
			}
			if round < 10 {
				t.Fatalf("stream too short to exercise publication: %d rounds", round)
			}
		})
	}
}

// TestIncrementalPublishMatchesFullRebuild is the equivalence test of the
// incremental engine: at every round of a long shuffled stream, each entry
// the incremental publisher refreshed must be bit-identical to what a full
// rebuild — the same refresh applied to every item — produces that round,
// and every carried-forward entry must be bit-identical to the previous
// view's. Together the two cover the whole view every round.
func TestIncrementalPublishMatchesFullRebuild(t *testing.T) {
	ds := publishStream(t, 33)
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("P=%d", par), func(t *testing.T) {
			cfg := Config{Seed: 33, BatchSize: 64, Parallelism: par}
			newModel := func() *Model {
				m, err := NewModel(cfg, ds.NumItems, ds.NumWorkers, ds.NumLabels)
				if err != nil {
					t.Fatal(err)
				}
				return m
			}
			// Two identical models advanced in lockstep: inc publishes
			// incrementally, all rebuilds every item with the same refresh.
			incModel, allModel := newModel(), newModel()
			incPub, allPub := NewPublisher(incModel), NewPublisher(allModel)
			allItems := make([]int, ds.NumItems)
			for i := range allItems {
				allItems[i] = i
			}

			round, refreshed := 0, 0
			for _, b := range ds.Batches(cfg.BatchSize) {
				if err := incModel.PartialFit(b.Answers); err != nil {
					t.Fatal(err)
				}
				if err := allModel.PartialFit(b.Answers); err != nil {
					t.Fatal(err)
				}
				round++
				prev := incPub.View()
				incView, dirty, err := incPub.Publish(false)
				if err != nil {
					t.Fatal(err)
				}
				// Full rebuild reference: every item refreshed, same engine.
				allModel.takeDirtySorted(nil)
				var allView *ConsensusView
				if allPub.View() == nil {
					if allView, _, err = allPub.Publish(true); err != nil {
						t.Fatal(err)
					}
				} else if allView, err = allPub.publishRefresh(allItems); err != nil {
					t.Fatal(err)
				}

				if prev == nil {
					// Cold start publishes the full pipeline on both sides.
					if dirty != nil {
						t.Fatalf("round %d: cold publisher reported a dirty set", round)
					}
					sameView(t, round, allView, incView)
					continue
				}
				if len(dirty) == 0 {
					t.Fatalf("round %d: no dirty items after a PartialFit round", round)
				}
				refreshed += len(dirty)
				isDirty := make(map[int]bool, len(dirty))
				for _, i := range dirty {
					isDirty[i] = true
				}
				for i := range incView.Items {
					if isDirty[i] {
						// Refreshed entries ≡ the full rebuild's, bit-for-bit.
						sameItemConsensus(t, round, i, allView.Items[i], incView.Items[i])
					} else {
						// Clean entries carry forward unchanged.
						sameItemConsensus(t, round, i, prev.Items[i], incView.Items[i])
					}
				}
				if !reflect.DeepEqual(allView.Stats, incView.Stats) {
					t.Fatalf("round %d: stats diverged:\nwant %+v\ngot  %+v", round, allView.Stats, incView.Stats)
				}
			}
			if round < 10 {
				t.Fatalf("stream too short: %d rounds", round)
			}
			if refreshed >= round*ds.NumItems {
				t.Fatalf("incremental publisher refreshed everything (%d entries over %d rounds) — not incremental", refreshed, round)
			}
		})
	}
}

// TestCloneSharedStorageIsolation pins the structural-sharing discipline of
// the chunked answer index: after a clone, both the source and the clone
// keep ingesting and fitting independently, and each must end bit-identical
// to a fresh model fed its own full sequence — no cross-talk through the
// shared chunks.
func TestCloneSharedStorageIsolation(t *testing.T) {
	ds := publishStream(t, 7)
	all := ds.Answers()
	if len(all) < 400 {
		t.Fatalf("stream too short: %d answers", len(all))
	}
	cfg := Config{Seed: 7, BatchSize: 64}
	prefix, tailA, tailB := all[:256], all[256:320], all[320:400]

	run := func(batches ...[]answers.Answer) *Model {
		m, err := NewModel(cfg, ds.NumItems, ds.NumWorkers, ds.NumLabels)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range batches {
			if err := m.PartialFit(b); err != nil {
				t.Fatal(err)
			}
		}
		return m
	}

	src := run(prefix)
	clone := src.Clone()
	if err := src.PartialFit(tailA); err != nil {
		t.Fatal(err)
	}
	if err := clone.PartialFit(tailB); err != nil {
		t.Fatal(err)
	}

	refA, refB := run(prefix, tailA), run(prefix, tailB)
	for _, c := range []struct {
		name      string
		got, want *Model
	}{{"source", src, refA}, {"clone", clone, refB}} {
		c.got.FinalizeOnline()
		c.want.FinalizeOnline()
		gotView, err := c.got.ConsensusView()
		if err != nil {
			t.Fatal(err)
		}
		wantView, err := c.want.ConsensusView()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantView, gotView) {
			t.Fatalf("%s diverged from its uninterrupted reference after shared-storage clone", c.name)
		}
	}
}
