package core

import (
	"errors"
	"testing"

	"cpa/internal/answers"
	"cpa/internal/labelset"
)

// streamPredict feeds the dataset through PartialFit in batches of chop
// answers, invoking retune (if non-nil) before the given round, then
// finalizes and predicts. This is the serve-layer shape of training: the
// caller chops the stream, the model never re-chops.
func streamPredict(t testing.TB, ds *answers.Dataset, cfg Config, chop int, retuneRound int, retune func(*Model)) []labelset.Set {
	t.Helper()
	m, err := NewModel(cfg, ds.NumItems, ds.NumWorkers, ds.NumLabels)
	if err != nil {
		t.Fatal(err)
	}
	for round, b := range ds.Batches(chop) {
		if retune != nil && round == retuneRound {
			retune(m)
		}
		if err := m.PartialFit(b.Answers); err != nil {
			t.Fatal(err)
		}
	}
	m.FinalizeOnline()
	pred, err := m.Predict()
	if err != nil {
		t.Fatal(err)
	}
	return pred
}

// TestRetuneParallelismReplayInvisible pins the auto-tuner's core safety
// argument (DESIGN.md §13): changing Parallelism between rounds is invisible
// to the learned posterior. A run that retunes P mid-stream must be
// bit-identical to uninterrupted runs at either endpoint — journal replay at
// any fixed Parallelism then reproduces a tuned job's served history exactly.
func TestRetuneParallelismReplayInvisible(t *testing.T) {
	ds := tieDataset(t)
	cfg := Config{Seed: 17, Parallelism: 1, BatchSize: 8}

	ref := streamPredict(t, ds, cfg, 8, -1, nil)
	tuned := streamPredict(t, ds, cfg, 8, 2, func(m *Model) {
		if err := m.Retune(4, 0); err != nil {
			t.Fatal(err)
		}
		if got := m.Config().Parallelism; got != 4 {
			t.Fatalf("Parallelism after Retune = %d, want 4", got)
		}
	})
	samePredictions(t, "mid-stream P retune vs fixed P=1", ref, tuned)

	cfg4 := cfg
	cfg4.Parallelism = 4
	fixed4 := streamPredict(t, ds, cfg4, 8, -1, nil)
	samePredictions(t, "mid-stream P retune vs fixed P=4", fixed4, tuned)

	// Retuning down mid-stream is equally invisible.
	down := streamPredict(t, ds, cfg4, 8, 1, func(m *Model) {
		if err := m.Retune(1, 0); err != nil {
			t.Fatal(err)
		}
	})
	samePredictions(t, "downward P retune", ref, down)
}

// TestRetuneBatchSizeOnlyChopsFutureBatches pins the other half of the
// safety argument: Config.BatchSize steers how the *caller* chops future
// batches, while PartialFit itself learns from whatever boundaries it is
// handed (they are journaled per round and replayed verbatim). Two models
// with different configured BatchSize fed identical boundaries must agree
// exactly.
func TestRetuneBatchSizeOnlyChopsFutureBatches(t *testing.T) {
	ds := tieDataset(t)
	small := Config{Seed: 17, Parallelism: 2, BatchSize: 4}
	large := Config{Seed: 17, Parallelism: 2, BatchSize: 32}

	a := streamPredict(t, ds, small, 8, -1, nil)
	b := streamPredict(t, ds, large, 8, -1, nil)
	samePredictions(t, "BatchSize config vs fed boundaries", a, b)

	// A mid-stream batch retune changes only what Config reports to the
	// caller; fed the same boundaries the posterior is untouched.
	tuned := streamPredict(t, ds, small, 8, 1, func(m *Model) {
		if err := m.Retune(0, 16); err != nil {
			t.Fatal(err)
		}
		if got := m.Config().BatchSize; got != 16 {
			t.Fatalf("BatchSize after Retune = %d, want 16", got)
		}
		if got := m.Config().Parallelism; got != 2 {
			t.Fatalf("Retune(0, 16) moved Parallelism to %d", got)
		}
	})
	samePredictions(t, "mid-stream batch retune", a, tuned)
}

// TestRetuneValidation pins Retune's contract: 0 keeps a knob, and the
// merged configuration is validated as a whole before anything is applied.
func TestRetuneValidation(t *testing.T) {
	ds := tieDataset(t)
	cfg := Config{Seed: 1, Parallelism: 2, BatchSize: 8, AnswerWindow: 32}
	m, err := NewModel(cfg, ds.NumItems, ds.NumWorkers, ds.NumLabels)
	if err != nil {
		t.Fatal(err)
	}

	// Batch above the retention window would break AnswerWindow's invariant.
	if err := m.Retune(0, 64); !errors.Is(err, ErrConfig) {
		t.Fatalf("Retune(0, 64) with AnswerWindow=32: err = %v, want ErrConfig", err)
	}
	if got := m.Config(); got.BatchSize != 8 || got.Parallelism != 2 {
		t.Fatalf("rejected Retune mutated config: %+v", got)
	}

	// Zero (or negative) means keep: a full no-op must succeed and change
	// nothing.
	if err := m.Retune(0, 0); err != nil {
		t.Fatalf("Retune(0, 0) = %v, want nil", err)
	}
	if err := m.Retune(-3, -1); err != nil {
		t.Fatalf("Retune(-3, -1) = %v, want nil (negative = keep)", err)
	}
	if got := m.Config(); got.BatchSize != 8 || got.Parallelism != 2 {
		t.Fatalf("no-op Retune mutated config: %+v", got)
	}

	// A valid retune inside the window is accepted.
	if err := m.Retune(4, 16); err != nil {
		t.Fatal(err)
	}
	if got := m.Config(); got.BatchSize != 16 || got.Parallelism != 4 {
		t.Fatalf("Retune(4, 16) applied %+v", got)
	}
}
