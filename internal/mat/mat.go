// Package mat is the repository's dense storage layer: a small row-major
// matrix type over a flat []float64 backing, the vector kernels the
// inference hot loops are written in, and a sharded accumulator that
// generalises the paper's Algorithm 3 map-reduce (goroutine shards
// substituting for Spark executors, DESIGN.md D5).
//
// Every parameter block of the CPA model — and of the EM/BCC/cBCC
// baselines — is a Dense: one contiguous allocation, zero-alloc row views,
// cache-friendly sequential access in the update loops. The package has no
// dependencies beyond the standard library and internal/mathx, and all
// row/vector kernels are allocation-free, so they are safe inside the
// map shards.
package mat

import (
	"fmt"

	"cpa/internal/mathx"
)

// Dense is a row-major matrix backed by one flat []float64. The zero value
// is an empty matrix; use New to allocate.
type Dense struct {
	rows, cols int
	data       []float64
}

// New allocates a rows×cols matrix of zeros. It panics on negative
// dimensions (a programming error, not a recoverable condition).
func New(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: New(%d, %d) with negative dimension", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromData adopts the given backing slice as a rows×cols matrix without
// copying. The slice length must be exactly rows*cols.
func FromData(rows, cols int, data []float64) (*Dense, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("mat: FromData(%d, %d) with %d values", rows, cols, len(data))
	}
	return &Dense{rows: rows, cols: cols, data: data}, nil
}

// Rows returns the number of rows.
func (d *Dense) Rows() int { return d.rows }

// Cols returns the number of columns.
func (d *Dense) Cols() int { return d.cols }

// Size returns rows*cols.
func (d *Dense) Size() int { return len(d.data) }

// Data returns the flat row-major backing slice. Mutations through it are
// visible in the matrix; it is the IO boundary for persistence and tests.
func (d *Dense) Data() []float64 { return d.data }

// Row returns a zero-alloc view of row i, valid until the matrix is
// reallocated (which Dense never does after New/FromData).
func (d *Dense) Row(i int) []float64 {
	return d.data[i*d.cols : (i+1)*d.cols]
}

// At returns the element at (i, j).
func (d *Dense) At(i, j int) float64 { return d.data[i*d.cols+j] }

// Set assigns the element at (i, j).
func (d *Dense) Set(i, j int, v float64) { d.data[i*d.cols+j] = v }

// Fill sets every element to x.
func (d *Dense) Fill(x float64) { mathx.Fill(d.data, x) }

// Zero sets every element to 0.
func (d *Dense) Zero() { d.Fill(0) }

// Scale multiplies every element by s in place.
func (d *Dense) Scale(s float64) { mathx.Scale(d.data, s) }

// AXPY computes d += a*x element-wise. It panics on shape mismatch.
func (d *Dense) AXPY(a float64, x *Dense) {
	if d.rows != x.rows || d.cols != x.cols {
		panic("mat: AXPY shape mismatch")
	}
	mathx.AXPY(a, x.data, d.data)
}

// CopyFrom copies src's contents into d. It panics on shape mismatch.
func (d *Dense) CopyFrom(src *Dense) {
	if d.rows != src.rows || d.cols != src.cols {
		panic("mat: CopyFrom shape mismatch")
	}
	copy(d.data, src.data)
}

// SetData copies the flat row-major values into the matrix, validating the
// length — the load-time persistence boundary.
func (d *Dense) SetData(src []float64) error {
	if len(src) != len(d.data) {
		return fmt.Errorf("mat: SetData with %d values, want %d", len(src), len(d.data))
	}
	copy(d.data, src)
	return nil
}

// Clone returns an independent deep copy.
func (d *Dense) Clone() *Dense {
	return &Dense{rows: d.rows, cols: d.cols, data: append([]float64(nil), d.data...)}
}

// MaxAbsDiff returns max |d_ij - o_ij|, the convergence criterion of the
// paper's Algorithm 1. It panics on shape mismatch.
func (d *Dense) MaxAbsDiff(o *Dense) float64 {
	if d.rows != o.rows || d.cols != o.cols {
		panic("mat: MaxAbsDiff shape mismatch")
	}
	return mathx.MaxAbsDiff(d.data, o.data)
}

// ScaleRow multiplies row i by s in place.
func (d *Dense) ScaleRow(i int, s float64) { mathx.Scale(d.Row(i), s) }

// RowSum returns the sum of row i.
func (d *Dense) RowSum(i int) float64 { return mathx.Sum(d.Row(i)) }

// LogSumExpRow returns ln Σ_j exp(d_ij) computed stably.
func (d *Dense) LogSumExpRow(i int) float64 { return mathx.LogSumExp(d.Row(i)) }

// SoftmaxRow exponentiates-and-normalises row i in place (log weights in,
// probability vector out).
func (d *Dense) SoftmaxRow(i int) { mathx.SoftmaxInPlace(d.Row(i)) }

// NormalizeRow scales the non-negative row i to sum to one (uniform on a
// degenerate row), returning the original sum.
func (d *Dense) NormalizeRow(i int) float64 { return mathx.NormalizeInPlace(d.Row(i)) }

// ColSumsInto accumulates the column sums of the listed rows into dst
// (dst[j] += Σ_{i∈rows} d_ij) without allocating; a nil rows slice sums
// every row. dst must have Cols entries and is NOT zeroed first, so callers
// can chain accumulations.
func (d *Dense) ColSumsInto(dst []float64, rows []int) {
	if len(dst) != d.cols {
		panic("mat: ColSumsInto length mismatch")
	}
	// Each row folds in element-wise via the dispatched Axpy kernel with
	// a = 1 (1·v ≡ v bit-for-bit, including NaN and signed zeros), so the
	// row-by-row accumulation order — and hence the result — is unchanged
	// from the scalar loops this replaces.
	if rows == nil {
		for i := 0; i < d.rows; i++ {
			mathx.Axpy(1, d.Row(i), dst)
		}
		return
	}
	for _, i := range rows {
		mathx.Axpy(1, d.Row(i), dst)
	}
}
