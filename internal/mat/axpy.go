package mat

import "cpa/internal/mathx"

// The row/vector kernels the inference hot loops are written in. Since the
// SIMD kernel layer (ISSUE 6) there is exactly one implementation of each
// kernel — the runtime-dispatched entry points in internal/mathx — and
// these wrappers exist so core's call sites keep reading mat.Axpy /
// mat.FlooredDot next to the Dense they operate on. Each wrapper is a
// single call and inlines away.

// Axpy computes y[i] += a*x[i] over the shorter of the two slices. Element-
// wise, hence bit-identical across every kernel backend — the property the
// panel-cached score kernels rely on. The inference hot loops call it with
// equal-length row views.
func Axpy(a float64, x, y []float64) { mathx.Axpy(a, x, y) }

// AddScaled computes y[i] = y[i]*b + a*x[i] element-wise (the fused form of
// the SVI blending updates), equally bit-stable.
func AddScaled(b, a float64, x, y []float64) { mathx.AddScaled(b, a, x, y) }

// FlooredDot returns Σ_i w[i]·x[i] over entries with w[i] >= floor (the
// respFloor-guarded community reductions of the score kernels), accumulated
// in the canonical 4-lane-strided reduction order shared by every backend —
// results are bit-identical across platforms and Parallelism settings.
func FlooredDot(w, x []float64, floor float64) float64 {
	return mathx.FlooredDot(w, x, floor)
}

// Sum returns the sum of v in the canonical kernel reduction order.
func Sum(v []float64) float64 { return mathx.Sum(v) }
