package mat

// Axpy computes y[i] += a*x[i] over the shorter of the two slices, with the
// inner loop unrolled 4-way. Because the update is element-wise (no
// cross-element accumulation) the unrolled form is bit-identical to the
// scalar loop — the property the panel-cached score kernels rely on. The
// inference hot loops call it with equal-length row views.
func Axpy(a float64, x, y []float64) {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] += a * x[i]
		y[i+1] += a * x[i+1]
		y[i+2] += a * x[i+2]
		y[i+3] += a * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += a * x[i]
	}
}

// AddScaled computes y[i] = y[i]*b + a*x[i] element-wise (the fused form of
// the SVI blending updates), unrolled like Axpy and equally bit-stable.
func AddScaled(b, a float64, x, y []float64) {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] = y[i]*b + a*x[i]
		y[i+1] = y[i+1]*b + a*x[i+1]
		y[i+2] = y[i+2]*b + a*x[i+2]
		y[i+3] = y[i+3]*b + a*x[i+3]
	}
	for ; i < n; i++ {
		y[i] = y[i]*b + a*x[i]
	}
}

// FlooredDot returns Σ_i w[i]·x[i] over entries with w[i] >= floor,
// accumulated strictly left to right into a single accumulator so the
// result is bit-identical to the scalar skip-loops it replaces (the
// respFloor-guarded community reductions of the score kernels). It must NOT
// use parallel partial accumulators: float addition is order-sensitive and
// the callers pin bit-exact determinism.
func FlooredDot(w, x []float64, floor float64) float64 {
	n := len(w)
	if len(x) < n {
		n = len(x)
	}
	s := 0.0
	for i := 0; i < n; i++ {
		if wi := w[i]; wi >= floor {
			s += wi * x[i]
		}
	}
	return s
}
