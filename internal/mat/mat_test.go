package mat

import (
	"math"
	"testing"
)

func TestDenseBasics(t *testing.T) {
	d := New(2, 3)
	if d.Rows() != 2 || d.Cols() != 3 || d.Size() != 6 {
		t.Fatalf("dims = (%d,%d,%d)", d.Rows(), d.Cols(), d.Size())
	}
	d.Set(1, 2, 5)
	if d.At(1, 2) != 5 || d.Data()[5] != 5 {
		t.Fatalf("Set/At/Data disagree: %v", d.Data())
	}
	row := d.Row(1)
	row[0] = 7 // views alias the backing store
	if d.At(1, 0) != 7 {
		t.Fatal("Row is not a view")
	}
	d.Fill(2)
	for _, v := range d.Data() {
		if v != 2 {
			t.Fatalf("Fill left %v", d.Data())
		}
	}
	d.Scale(0.5)
	if d.At(0, 0) != 1 {
		t.Fatalf("Scale gave %v", d.At(0, 0))
	}
	d.Zero()
	if d.At(1, 1) != 0 {
		t.Fatal("Zero failed")
	}
}

func TestFromDataAndSetData(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6}
	d, err := FromData(2, 3, vals)
	if err != nil {
		t.Fatal(err)
	}
	if d.At(1, 0) != 4 {
		t.Fatalf("At(1,0) = %v", d.At(1, 0))
	}
	vals[0] = 9 // FromData adopts without copying
	if d.At(0, 0) != 9 {
		t.Fatal("FromData copied")
	}
	if _, err := FromData(2, 3, vals[:5]); err == nil {
		t.Fatal("FromData accepted short slice")
	}
	if err := d.SetData([]float64{6, 5, 4, 3, 2, 1}); err != nil {
		t.Fatal(err)
	}
	if d.At(0, 0) != 6 {
		t.Fatal("SetData did not copy")
	}
	if err := d.SetData(make([]float64, 5)); err == nil {
		t.Fatal("SetData accepted short slice")
	}
}

func TestCloneCopyAXPYDiff(t *testing.T) {
	a := New(2, 2)
	copy(a.Data(), []float64{1, 2, 3, 4})
	b := a.Clone()
	b.Set(0, 0, 10)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares backing")
	}
	if got := a.MaxAbsDiff(b); got != 9 {
		t.Fatalf("MaxAbsDiff = %v", got)
	}
	c := New(2, 2)
	c.CopyFrom(a)
	c.AXPY(2, a) // c = 3a
	if c.At(1, 1) != 12 {
		t.Fatalf("AXPY gave %v", c.Data())
	}
}

func TestRowKernels(t *testing.T) {
	d := New(2, 3)
	copy(d.Row(0), []float64{math.Log(1), math.Log(2), math.Log(5)})
	if got := d.LogSumExpRow(0); math.Abs(got-math.Log(8)) > 1e-12 {
		t.Fatalf("LogSumExpRow = %v", got)
	}
	d.SoftmaxRow(0)
	if math.Abs(d.At(0, 2)-5.0/8) > 1e-12 {
		t.Fatalf("SoftmaxRow = %v", d.Row(0))
	}
	copy(d.Row(1), []float64{2, 2, 4})
	if sum := d.NormalizeRow(1); sum != 8 || math.Abs(d.At(1, 2)-0.5) > 1e-12 {
		t.Fatalf("NormalizeRow: sum=%v row=%v", sum, d.Row(1))
	}
	d.ScaleRow(1, 2)
	if got := d.RowSum(1); math.Abs(got-2) > 1e-12 {
		t.Fatalf("ScaleRow/RowSum = %v", got)
	}
}

func TestColSumsInto(t *testing.T) {
	d := New(3, 2)
	copy(d.Data(), []float64{1, 2, 3, 4, 5, 6})
	dst := make([]float64, 2)
	d.ColSumsInto(dst, nil)
	if dst[0] != 9 || dst[1] != 12 {
		t.Fatalf("ColSumsInto(all) = %v", dst)
	}
	Fill(dst, 0)
	d.ColSumsInto(dst, []int{0, 2})
	if dst[0] != 6 || dst[1] != 8 {
		t.Fatalf("ColSumsInto(subset) = %v", dst)
	}
}

func TestParallelForCoversRangeOnce(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 7, 16} {
		n := 103
		seen := make([]int, n)
		var rows [][2]int
		ParallelFor(n, shards, func(shard, lo, hi int) {
			for i := lo; i < hi; i++ {
				seen[i]++ // shards own disjoint ranges, no race
			}
			_ = rows
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("shards=%d: index %d covered %d times", shards, i, c)
			}
		}
	}
	// Degenerate cases: more shards than elements, zero elements.
	ran := 0
	ParallelFor(0, 4, func(shard, lo, hi int) { ran += hi - lo })
	if ran != 0 {
		t.Fatalf("n=0 processed %d", ran)
	}
}

func TestShards(t *testing.T) {
	if Shards(8, 3) != 3 || Shards(0, 10) != 1 || Shards(4, 10) != 4 {
		t.Fatal("Shards clamping wrong")
	}
}

// TestShardedAccumulateDeterministic verifies the reduce matches a serial
// accumulation exactly for shards=1 and within float tolerance otherwise,
// and that repeated runs with the same shard count are bit-identical.
func TestShardedAccumulateDeterministic(t *testing.T) {
	n, size := 250, 7
	weight := func(i, k int) float64 { return float64(i%13)*0.25 + float64(k)*0.125 }
	serial := make([]float64, size)
	for i := 0; i < n; i++ {
		for k := 0; k < size; k++ {
			serial[k] += weight(i, k)
		}
	}
	var acc Sharded
	for _, shards := range []int{1, 2, 5, 8} {
		got := make([]float64, size)
		acc.Accumulate(got, 1.5, size, n, shards, func(buf []float64, lo, hi int) {
			for i := lo; i < hi; i++ {
				for k := 0; k < size; k++ {
					buf[k] += weight(i, k)
				}
			}
		})
		again := make([]float64, size)
		acc.Accumulate(again, 1.5, size, n, shards, func(buf []float64, lo, hi int) {
			for i := lo; i < hi; i++ {
				for k := 0; k < size; k++ {
					buf[k] += weight(i, k)
				}
			}
		})
		for k := 0; k < size; k++ {
			want := 1.5 + serial[k]
			if math.Abs(got[k]-want) > 1e-9*math.Abs(want) {
				t.Fatalf("shards=%d: dst[%d] = %v, want %v", shards, k, got[k], want)
			}
			if got[k] != again[k] {
				t.Fatalf("shards=%d: non-deterministic reduce at %d", shards, k)
			}
		}
	}
}

// TestShardedBufferReuse checks that steady-state accumulation does not
// reallocate the per-shard buffers.
func TestShardedBufferReuse(t *testing.T) {
	var acc Sharded
	first := acc.Buffers(4, 16)
	second := acc.Buffers(4, 16)
	if &first[0][0] != &second[0][0] {
		t.Fatal("Buffers reallocated on matching shape")
	}
	third := acc.Buffers(2, 16) // fewer shards: prefix reuse
	if &first[0][0] != &third[0][0] {
		t.Fatal("Buffers reallocated on shard shrink")
	}
	fourth := acc.Buffers(4, 8) // size change: must reallocate
	if len(fourth[0]) != 8 {
		t.Fatal("Buffers ignored size change")
	}
}

func TestAxpyMatchesScalarBitExact(t *testing.T) {
	x := []float64{0.1, -2.5, 3.75, 1e-9, 4, 5, 6, 7, 8.125, -9}
	for n := 0; n <= len(x); n++ {
		want := make([]float64, n)
		got := make([]float64, n)
		for i := 0; i < n; i++ {
			want[i] = float64(i) * 0.3
			got[i] = want[i]
		}
		a := 1.7
		for i := 0; i < n; i++ {
			want[i] += a * x[i]
		}
		Axpy(a, x[:n], got)
		for i := 0; i < n; i++ {
			if got[i] != want[i] {
				t.Fatalf("n=%d: Axpy[%d] = %v, want %v (bit-exact)", n, i, got[i], want[i])
			}
		}
	}
}

func TestAddScaledMatchesScalarBitExact(t *testing.T) {
	x := []float64{0.1, -2.5, 3.75, 1e-9, 4, 5, 6}
	for n := 0; n <= len(x); n++ {
		want := make([]float64, n)
		got := make([]float64, n)
		for i := 0; i < n; i++ {
			want[i] = 1.1 * float64(i+1)
			got[i] = want[i]
		}
		b, a := 0.25, -1.5
		for i := 0; i < n; i++ {
			want[i] = want[i]*b + a*x[i]
		}
		AddScaled(b, a, x[:n], got)
		for i := 0; i < n; i++ {
			if got[i] != want[i] {
				t.Fatalf("n=%d: AddScaled[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestFlooredDotMatchesSkipLoop(t *testing.T) {
	w := []float64{0.5, 1e-12, 0.25, 0, 1e-8, 0.125, 0.3}
	x := []float64{2, 3, 4, 5, 6, 7, 8}
	const floor = 1e-8
	want := 0.0
	for i, wi := range w {
		if wi < floor {
			continue
		}
		want += wi * x[i]
	}
	if got := FlooredDot(w, x, floor); got != want {
		t.Errorf("FlooredDot = %v, want %v (bit-exact)", got, want)
	}
	if got := FlooredDot(nil, x, floor); got != 0 {
		t.Errorf("empty FlooredDot = %v, want 0", got)
	}
}
