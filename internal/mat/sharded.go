package mat

import (
	"sync"

	"cpa/internal/mathx"
)

// ParallelFor splits [0, n) into `shards` contiguous ranges processed
// concurrently, passing each worker its shard index for private-buffer
// reductions. With one shard it runs inline (no goroutine overhead). This
// is the paper's Algorithm 3 map step with goroutine shards substituting
// for Spark executors (DESIGN.md D5).
func ParallelFor(n, shards int, fn func(shard, lo, hi int)) {
	if shards > n {
		shards = n
	}
	if shards <= 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(shards)
	for s := 0; s < shards; s++ {
		go func(s int) {
			defer wg.Done()
			fn(s, s*n/shards, (s+1)*n/shards)
		}(s)
	}
	wg.Wait()
}

// Shards clamps the requested parallelism to the loop length, never below
// one — the shard count every ParallelFor caller should use.
func Shards(parallelism, n int) int {
	if parallelism > n {
		parallelism = n
	}
	if parallelism < 1 {
		parallelism = 1
	}
	return parallelism
}

// Sharded is a reusable pool of per-shard accumulation buffers with a
// deterministic reduce: shard s accumulates sufficient statistics over its
// range into a private buffer, and the buffers are summed in shard order,
// so results are identical run-to-run for a fixed shard count (and agree
// across shard counts up to floating-point reduction order). This is the
// Algorithm 3 reduce step. The zero value is ready to use; buffers are
// retained between calls so steady-state accumulation is allocation-free.
type Sharded struct {
	bufs [][]float64
}

// Buffers returns `shards` zeroed buffers of the given size, reusing prior
// allocations when the shape matches.
func (a *Sharded) Buffers(shards, size int) [][]float64 {
	if len(a.bufs) < shards || (len(a.bufs) > 0 && len(a.bufs[0]) != size) {
		a.bufs = make([][]float64, shards)
		for s := range a.bufs {
			a.bufs[s] = make([]float64, size)
		}
	}
	bufs := a.bufs[:shards]
	for _, b := range bufs {
		mathx.Fill(b, 0)
	}
	return bufs
}

// Accumulate runs fn over the sharded ranges of [0, n), each shard
// accumulating into its own zeroed buffer of the given size, then reduces
// the buffers into dst in shard order: dst[k] = init + Σ_s buf_s[k].
// dst may be nil when the caller only wants the per-shard buffers (use
// Buffers directly in that case instead).
func (a *Sharded) Accumulate(dst []float64, init float64, size, n, shards int, fn func(buf []float64, lo, hi int)) {
	shards = Shards(shards, n)
	bufs := a.Buffers(shards, size)
	ParallelFor(n, shards, func(shard, lo, hi int) {
		fn(bufs[shard], lo, hi)
	})
	Fill(dst, init)
	for _, buf := range bufs {
		for k, v := range buf {
			dst[k] += v
		}
	}
}

// Fill sets every element of v to x — re-exported here so accumulator
// callers need only this package for buffer bookkeeping.
func Fill(v []float64, x float64) { mathx.Fill(v, x) }
