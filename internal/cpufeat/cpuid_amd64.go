//go:build amd64 && !purego

package cpufeat

// cpuid executes the CPUID instruction with the given leaf (EAX) and
// sub-leaf (ECX). Implemented in cpuid_amd64.s.
func cpuid(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register XCR0 (OS-enabled processor state
// components). Only meaningful once CPUID reports OSXSAVE.
func xgetbv() (eax, edx uint32)

func init() {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 1 {
		return
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		cpuidFMA     = 1 << 12
		cpuidOSXSAVE = 1 << 27
		cpuidAVX     = 1 << 28
	)
	// AVX requires the CPU flag AND the OS to have enabled XMM+YMM state
	// saving (XCR0 bits 1 and 2) — advertising AVX without the OS half
	// faults on the first VEX-256 instruction.
	osAVX := false
	if ecx1&cpuidOSXSAVE != 0 {
		xcr0, _ := xgetbv()
		osAVX = xcr0&0x6 == 0x6
	}
	X86.HasAVX = osAVX && ecx1&cpuidAVX != 0
	X86.HasFMA = osAVX && ecx1&cpuidFMA != 0
	if maxLeaf >= 7 && X86.HasAVX {
		_, ebx7, _, _ := cpuid(7, 0)
		const cpuidAVX2 = 1 << 5
		X86.HasAVX2 = ebx7&cpuidAVX2 != 0
	}
}
