// Package cpufeat detects, once at init, the CPU vector-instruction
// features the SIMD kernel backends in internal/mathx key their dispatch
// on. It is a hand-rolled, dependency-free stand-in for golang.org/x/sys/cpu
// (the module is std-lib-only by policy): on amd64 it executes CPUID and
// XGETBV directly (cpuid_amd64.s) and requires both the CPU flag and the
// OS-enabled YMM state before advertising AVX; on arm64 ASIMD (NEON) is
// architecturally mandatory, so no probing is needed.
//
// Under the purego build tag every feature reads false, which compiles the
// assembly out of the build entirely and pins every kernel to the portable
// scalar reference path.
package cpufeat

import "strings"

// X86 holds the amd64 feature flags the kernel dispatch consults. All
// fields are false on other architectures and under the purego tag.
var X86 struct {
	HasAVX  bool // AVX with OS-enabled YMM state (XGETBV xcr0[2:1] = 11)
	HasAVX2 bool
	HasFMA  bool
}

// ARM64 holds the arm64 feature flags.
var ARM64 struct {
	HasNEON bool // ASIMD; architecturally guaranteed on arm64
}

// Summary returns a short comma-separated list of the detected features,
// e.g. "avx,avx2,fma" or "neon", or "none" when nothing beyond baseline
// scalar is available (other architectures, purego builds, or old CPUs).
// It is recorded in bench envelopes so perf artifacts are comparable
// across machines.
func Summary() string {
	var fs []string
	if X86.HasAVX {
		fs = append(fs, "avx")
	}
	if X86.HasAVX2 {
		fs = append(fs, "avx2")
	}
	if X86.HasFMA {
		fs = append(fs, "fma")
	}
	if ARM64.HasNEON {
		fs = append(fs, "neon")
	}
	if len(fs) == 0 {
		return "none"
	}
	return strings.Join(fs, ",")
}
