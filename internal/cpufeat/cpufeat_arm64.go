//go:build arm64 && !purego

package cpufeat

func init() {
	// ASIMD (NEON) with double-precision lanes is part of the arm64
	// baseline architecture profile Go targets — no probing required.
	ARM64.HasNEON = true
}
