package capacity

import (
	"math"
	"math/rand"
	"testing"
)

// synth evaluates a ground-truth USL curve at n.
func synth(g, a, b, n float64) float64 {
	return g * n / (1 + a*(n-1) + b*n*(n-1))
}

// observe samples a ground-truth curve at the given concurrencies, with
// optional multiplicative noise.
func observe(g, a, b float64, ns []int, noise float64, seed int64) []Observation {
	rng := rand.New(rand.NewSource(seed))
	obs := make([]Observation, 0, len(ns))
	for _, n := range ns {
		x := synth(g, a, b, float64(n))
		if noise > 0 {
			x *= 1 + noise*(2*rng.Float64()-1)
		}
		obs = append(obs, Observation{N: float64(n), X: x})
	}
	return obs
}

func TestRecoverKnownParameters(t *testing.T) {
	cases := []struct {
		name    string
		g, a, b float64
	}{
		{"classic-knee", 1000, 0.05, 0.002},
		{"high-contention", 800, 0.30, 0.001},
		{"amdahl-only", 1200, 0.15, 0}, // β=0: pure contention, no knee
		{"near-linear", 500, 0.01, 1e-5},
	}
	ns := []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, err := FitUSL(observe(tc.g, tc.a, tc.b, ns, 0, 1), 42)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(f.Gamma-tc.g)/tc.g > 0.02 {
				t.Errorf("gamma = %.4f, want %.4f", f.Gamma, tc.g)
			}
			if math.Abs(f.Alpha-tc.a) > 0.02 {
				t.Errorf("alpha = %.4f, want %.4f", f.Alpha, tc.a)
			}
			if math.Abs(f.Beta-tc.b) > 5e-4 {
				t.Errorf("beta = %.6f, want %.6f", f.Beta, tc.b)
			}
			if f.Residual > 0.02 {
				t.Errorf("noise-free residual = %.4f, want ~0", f.Residual)
			}
			if tc.b > 1e-12 {
				wantKnee := math.Sqrt((1 - tc.a) / tc.b)
				if math.Abs(f.Knee-wantKnee)/wantKnee > 0.15 {
					t.Errorf("knee = %.2f, want %.2f", f.Knee, wantKnee)
				}
				if f.Peak <= 0 {
					t.Errorf("peak = %.2f, want > 0", f.Peak)
				}
			} else if f.Knee > 1000 && f.Knee != 0 {
				// β=0 may fit as a tiny β; the knee must then sit far past
				// the probed range, never inside it.
				t.Logf("amdahl fit placed knee at %.1f (outside probed range, ok)", f.Knee)
			} else if f.Knee != 0 && f.Knee <= float64(ns[len(ns)-1]) {
				t.Errorf("β=0 curve fitted an interior knee at %.2f", f.Knee)
			}
		})
	}
}

func TestRecoverFromNoisySamples(t *testing.T) {
	const g, a, b = 900.0, 0.08, 0.004
	ns := []int{1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 24, 32}
	f, err := FitUSL(observe(g, a, b, ns, 0.05, 7), 42)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Gamma-g)/g > 0.15 {
		t.Errorf("gamma = %.2f, want %.2f ±15%%", f.Gamma, g)
	}
	if math.Abs(f.Alpha-a) > 0.10 {
		t.Errorf("alpha = %.4f, want %.4f ±0.10", f.Alpha, a)
	}
	wantKnee := math.Sqrt((1 - a) / b)
	if f.Knee == 0 || math.Abs(f.Knee-wantKnee)/wantKnee > 0.30 {
		t.Errorf("knee = %.2f, want %.2f ±30%%", f.Knee, wantKnee)
	}
	if f.Residual > 0.10 {
		t.Errorf("residual = %.4f under 5%% noise, want < 0.10", f.Residual)
	}
}

func TestFitDeterministic(t *testing.T) {
	obs := observe(700, 0.1, 0.003, []int{1, 2, 4, 8, 16, 32}, 0.08, 3)
	f1, err := FitUSL(obs, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		f2, err := FitUSL(obs, 99)
		if err != nil {
			t.Fatal(err)
		}
		if f1 != f2 {
			t.Fatalf("fit not deterministic: run %d gave %+v, first run %+v", i+2, f2, f1)
		}
	}
	// A different seed may land in a different basin, but must still fit.
	f3, err := FitUSL(obs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if f3.Residual > 2*f1.Residual+0.05 {
		t.Errorf("seed 100 residual %.4f wildly worse than seed 99's %.4f", f3.Residual, f1.Residual)
	}
}

// TestKneeMaximizesPredictedX is the property test: over the probed range,
// no integer concurrency may out-produce the one BestN reports under the
// fitted curve.
func TestKneeMaximizesPredictedX(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ns := []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}
	for trial := 0; trial < 50; trial++ {
		g := 100 + 2000*rng.Float64()
		a := 0.4 * rng.Float64()
		b := math.Pow(10, -4+2*rng.Float64()) // β ∈ [1e-4, 1e-2]
		f, err := FitUSL(observe(g, a, b, ns, 0.03, int64(trial)), int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := 1, 64
		best := f.BestN(lo, hi)
		bestX := f.X(float64(best))
		for n := lo; n <= hi; n++ {
			if x := f.X(float64(n)); x > bestX+1e-9 {
				t.Fatalf("trial %d: BestN=%d (X=%.3f) but n=%d predicts X=%.3f (fit %+v)",
					trial, best, bestX, n, x, f)
			}
		}
		// With β>0 fitted, the continuous knee must agree with BestN up to
		// integer rounding (or the range clamp).
		if f.Knee > 0 {
			k := f.Knee
			if k < float64(lo) {
				k = float64(lo)
			}
			if k > float64(hi) {
				k = float64(hi)
			}
			if math.Abs(float64(best)-k) > 1.0+1e-9 {
				t.Fatalf("trial %d: BestN=%d disagrees with clamped knee %.2f by more than rounding", trial, best, k)
			}
		}
	}
}

func TestFitRejectsTooFewPoints(t *testing.T) {
	if _, err := FitUSL([]Observation{{N: 1, X: 100}, {N: 2, X: 180}}, 1); err == nil {
		t.Fatal("want error for 2 points")
	}
	// Duplicates collapse: 4 samples at 2 distinct N still fail.
	obs := []Observation{{N: 1, X: 100}, {N: 1, X: 102}, {N: 2, X: 180}, {N: 2, X: 178}}
	if _, err := FitUSL(obs, 1); err == nil {
		t.Fatal("want error for 2 distinct concurrencies")
	}
}

func TestAggregateDropsGarbage(t *testing.T) {
	obs := []Observation{
		{N: 1, X: 100}, {N: 2, X: 150}, {N: 4, X: 200},
		{N: 0.5, X: 50}, {N: 3, X: -1}, {N: 5, X: math.NaN()}, {N: 6, X: math.Inf(1)},
	}
	pts := aggregate(obs)
	if len(pts) != 3 {
		t.Fatalf("aggregate kept %d points, want 3: %+v", len(pts), pts)
	}
}

func TestPlan(t *testing.T) {
	got := Plan(1, 16)
	want := []int{1, 2, 4, 8, 16}
	if len(got) != len(want) {
		t.Fatalf("Plan(1,16) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Plan(1,16) = %v, want %v", got, want)
		}
	}
	// Non-power-of-two max is always included.
	got = Plan(1, 12)
	if got[len(got)-1] != 12 {
		t.Fatalf("Plan(1,12) = %v, want trailing 12", got)
	}
	if got := Plan(4, 4); len(got) != 1 || got[0] != 4 {
		t.Fatalf("Plan(4,4) = %v, want [4]", got)
	}
}

func TestDensify(t *testing.T) {
	probed := []int{1, 2, 4, 8, 16}
	got := Densify(5.3, probed, 1, 16)
	if len(got) == 0 {
		t.Fatal("Densify added nothing around an unprobed knee")
	}
	for _, n := range got {
		if n < 1 || n > 16 {
			t.Fatalf("Densify left the range: %v", got)
		}
		for _, p := range probed {
			if n == p {
				t.Fatalf("Densify re-probed %d", n)
			}
		}
	}
	if got := Densify(0, probed, 1, 16); got != nil {
		t.Fatalf("Densify without a knee = %v, want nil", got)
	}
	// A fully probed neighborhood yields nothing.
	if got := Densify(2.5, []int{1, 2, 3, 4}, 1, 4); got != nil {
		t.Fatalf("Densify over a saturated range = %v, want nil", got)
	}
}
