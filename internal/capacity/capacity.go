// Package capacity fits the Universal Scalability Law to measured
// (concurrency, throughput) observations and plans which concurrencies to
// probe next (DESIGN.md §13).
//
// The USL models throughput at concurrency n as
//
//	X(n) = γ·n / (1 + α·(n−1) + β·n·(n−1))
//
// where γ is the ideal per-unit throughput, α ∈ [0,1] the contention
// (serialization) fraction and β ≥ 0 the coherence (crosstalk) cost. With
// β > 0 the curve has an interior maximum at n* = √((1−α)/β) — the knee
// past which added concurrency costs throughput — which is what both the
// loadgen capacity sweep and the serve auto-tuner steer toward.
//
// Fitting is a linearized least-squares seed polished by a seeded,
// fixed-iteration random-restart descent, so identical observations and
// seed always produce the identical fit (the tests and the journaled
// auto-tune trajectory depend on that). The package is dependency-free.
package capacity

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Observation is one measured throughput sample: X units of work per second
// at concurrency N. N need not be an integer — a mini-batch sweep fits in
// normalized batch units — but must be ≥ 1.
type Observation struct {
	N float64 `json:"n"`
	X float64 `json:"x"`
}

// Fit is a fitted USL curve plus its derived operating points.
type Fit struct {
	// Gamma is γ, the ideal throughput of one unit (X(1) = γ).
	Gamma float64 `json:"gamma"`
	// Alpha is α ∈ [0,1], the contention (serialized fraction) coefficient.
	Alpha float64 `json:"alpha"`
	// Beta is β ≥ 0, the coherence (pairwise crosstalk) coefficient.
	Beta float64 `json:"beta"`
	// Knee is n* = √((1−α)/β), the concurrency maximizing X — 0 when β is
	// (numerically) zero and the fitted curve has no interior maximum.
	Knee float64 `json:"knee"`
	// Peak is X(Knee) (0 when Knee is 0).
	Peak float64 `json:"peak"`
	// Residual is the goodness of fit: the root-mean-square relative error
	// of the fitted curve over the observations (0 = exact).
	Residual float64 `json:"residual"`
	// Points is how many distinct concurrencies the fit saw.
	Points int `json:"points"`
}

// X evaluates the fitted curve at concurrency n.
func (f Fit) X(n float64) float64 {
	return f.Gamma * n / (1 + f.Alpha*(n-1) + f.Beta*n*(n-1))
}

// BestN returns the integer concurrency in [min, max] maximizing the fitted
// X — the knee rounded into the probed range, resolving the floor/ceil tie
// by predicted throughput. Ties prefer the smaller n (same throughput for
// less concurrency).
func (f Fit) BestN(min, max int) int {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	best, bestX := min, f.X(float64(min))
	for n := min + 1; n <= max; n++ {
		if x := f.X(float64(n)); x > bestX {
			best, bestX = n, x
		}
	}
	return best
}

// minPoints is the fewest distinct concurrencies a 3-parameter fit needs.
const minPoints = 3

// Deterministic search budget: restarts × iterations of bounded random
// descent. Small enough to run in microseconds on a handful of points,
// large enough to polish the linearized seed to ~1e-3 relative error.
const (
	fitRestarts = 8
	fitIters    = 4000
)

// FitUSL fits the USL to the observations. Duplicate concurrencies are
// averaged first (repeated windows at one setting collapse into one point).
// The search is deterministic under seed: a linearized least-squares seed
// plus seeded random-restart descent with a fixed iteration budget.
// Requires at least 3 distinct concurrencies with positive throughput.
func FitUSL(obs []Observation, seed int64) (Fit, error) {
	pts := aggregate(obs)
	if len(pts) < minPoints {
		return Fit{}, fmt.Errorf("capacity: need ≥%d distinct concurrencies, have %d", minPoints, len(pts))
	}

	g, a, b := linearSeed(pts)
	g, a, b = clampParams(g, a, b, pts)
	bestG, bestA, bestB, bestErr := descend(pts, g, a, b, rand.New(rand.NewSource(seed)))

	// Restart from jittered seeds: the linearized seed can sit in a shallow
	// local basin when the observations are noisy.
	for r := 1; r < fitRestarts; r++ {
		rng := rand.New(rand.NewSource(seed + int64(r)*7919))
		g2 := bestG * (0.5 + rng.Float64())
		a2 := clamp01(bestA + 0.4*(rng.Float64()-0.5))
		b2 := bestB * (0.25 + 1.5*rng.Float64())
		if b2 == 0 {
			b2 = 1e-4 * rng.Float64()
		}
		g2, a2, b2 = clampParams(g2, a2, b2, pts)
		if g3, a3, b3, e := descend(pts, g2, a2, b2, rng); e < bestErr {
			bestG, bestA, bestB, bestErr = g3, a3, b3, e
		}
	}

	f := Fit{Gamma: bestG, Alpha: bestA, Beta: bestB, Points: len(pts)}
	f.Residual = math.Sqrt(bestErr / float64(len(pts)))
	if f.Beta > 1e-12 && f.Alpha < 1 {
		f.Knee = math.Sqrt((1 - f.Alpha) / f.Beta)
		f.Peak = f.X(f.Knee)
	}
	return f, nil
}

// aggregate averages duplicate concurrencies and drops non-positive points,
// returning distinct observations sorted by N.
func aggregate(obs []Observation) []Observation {
	type acc struct{ sum, n float64 }
	byN := map[float64]*acc{}
	for _, o := range obs {
		if o.N < 1 || o.X <= 0 || math.IsNaN(o.X) || math.IsInf(o.X, 0) {
			continue
		}
		a := byN[o.N]
		if a == nil {
			a = &acc{}
			byN[o.N] = a
		}
		a.sum += o.X
		a.n++
	}
	pts := make([]Observation, 0, len(byN))
	for n, a := range byN {
		pts = append(pts, Observation{N: n, X: a.sum / a.n})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].N < pts[j].N })
	return pts
}

// linearSeed solves the linearization y = n/x = (1/γ)·(1 + α(n−1) + βn(n−1))
// by ordinary least squares over the basis [1, n−1, n(n−1)] — a 3×3 normal
// system solved with Gaussian elimination. The returned parameters may fall
// outside the USL bounds; the caller clamps.
func linearSeed(pts []Observation) (g, a, b float64) {
	var m [3][4]float64
	for _, p := range pts {
		u := [3]float64{1, p.N - 1, p.N * (p.N - 1)}
		y := p.N / p.X
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				m[i][j] += u[i] * u[j]
			}
			m[i][3] += u[i] * y
		}
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < 3; col++ {
		piv := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		m[col], m[piv] = m[piv], m[col]
		if math.Abs(m[col][col]) < 1e-18 {
			// Singular (e.g. only 3 collinear points): fall back to a flat
			// Amdahl-ish seed at the first point's per-unit throughput.
			return pts[0].X / pts[0].N, 0.1, 1e-4
		}
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c < 4; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	c0 := m[0][3] / m[0][0] // 1/γ
	c1 := m[1][3] / m[1][1] // α/γ
	c2 := m[2][3] / m[2][2] // β/γ
	if c0 <= 0 {
		return pts[0].X / pts[0].N, 0.1, 1e-4
	}
	return 1 / c0, c1 / c0, c2 / c0
}

// clampParams forces the parameters into the USL bounds (γ > 0, α ∈ [0,1],
// β ≥ 0), substituting data-derived fallbacks for unusable values.
func clampParams(g, a, b float64, pts []Observation) (float64, float64, float64) {
	if g <= 0 || math.IsNaN(g) || math.IsInf(g, 0) {
		g = pts[0].X / pts[0].N
	}
	if math.IsNaN(a) {
		a = 0
	}
	a = clamp01(a)
	if b < 0 || math.IsNaN(b) || math.IsInf(b, 0) {
		b = 0
	}
	return g, a, b
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// sqErr is the descent objective: the sum of squared relative errors of the
// candidate curve over the points. Relative error keeps the low- and
// high-concurrency ends of the curve equally weighted even when throughput
// spans an order of magnitude across the sweep.
func sqErr(pts []Observation, g, a, b float64) float64 {
	var e float64
	for _, p := range pts {
		pred := g * p.N / (1 + a*(p.N-1) + b*p.N*(p.N-1))
		d := (pred - p.X) / p.X
		e += d * d
	}
	return e
}

// descend runs the bounded random descent of SNIPPETS' USL fitter family: a
// fixed number of proposal steps scaled by the current error, accepting only
// improvements and keeping every parameter inside its bound. Deterministic
// for a given rng state.
func descend(pts []Observation, g, a, b float64, rng *rand.Rand) (float64, float64, float64, float64) {
	err := sqErr(pts, g, a, b)
	for i := 0; i < fitIters; i++ {
		// Step scale shrinks with the error so the walk anneals itself;
		// the floor keeps it exploring when the seed is already good.
		s := 0.25 * err
		if s < 1e-4 {
			s = 1e-4
		}
		g2 := g * (1 + s*(rng.Float64()-0.5))
		a2 := clamp01(a + s*(rng.Float64()-0.5))
		b2 := b + s*1e-2*(rng.Float64()-0.5)
		if b2 < 0 {
			b2 = 0
		}
		if g2 <= 0 {
			continue
		}
		if e2 := sqErr(pts, g2, a2, b2); e2 < err {
			g, a, b, err = g2, a2, b2, e2
		}
	}
	return g, a, b, err
}

// ---------------------------------------------------------------------------
// Sweep planning
// ---------------------------------------------------------------------------

// Plan returns log-spaced probe concurrencies covering [min, max]: powers of
// two from min, always including max. This is the initial ladder of a
// capacity sweep — wide coverage with few rungs, so the fitter can place the
// knee before Densify spends rungs around it.
func Plan(min, max int) []int {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	var rungs []int
	for n := min; n < max; n *= 2 {
		rungs = append(rungs, n)
	}
	return append(rungs, max)
}

// Densify returns up to two additional probe points bracketing the emerging
// knee — the unprobed integers nearest to knee within [min, max]. Probing
// densest where the curve bends is what pins α against β: the log ladder
// alone can stride straight over the maximum.
func Densify(knee float64, probed []int, min, max int) []int {
	if knee <= 0 {
		return nil
	}
	seen := make(map[int]bool, len(probed))
	for _, p := range probed {
		seen[p] = true
	}
	var out []int
	for _, cand := range []int{int(math.Floor(knee)), int(math.Ceil(knee)), int(math.Round(knee)) - 1, int(math.Round(knee)) + 1} {
		if cand < min || cand > max || seen[cand] {
			continue
		}
		seen[cand] = true
		out = append(out, cand)
		if len(out) == 2 {
			break
		}
	}
	sort.Ints(out)
	return out
}
