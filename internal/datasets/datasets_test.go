package datasets

import (
	"math"
	"testing"
)

func TestNamesStable(t *testing.T) {
	want := []string{"aspect", "entity", "image", "movie", "topic"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names = %v, want %v", got, want)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Error("unknown profile should fail")
	}
}

func TestProfilesMatchTable3(t *testing.T) {
	// The published Table 3 quantities the profiles must carry verbatim.
	table3 := map[string][4]int{ // questions, workers, labels, answers
		"image":  {2000, 416, 81, 22920},
		"topic":  {2000, 313, 49, 15080},
		"aspect": {3710, 482, 262, 19780},
		"entity": {2400, 517, 1450, 15510},
		"movie":  {500, 936, 22, 14430},
	}
	for name, want := range table3 {
		p, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Questions != want[0] || p.Workers != want[1] || p.Labels != want[2] || p.Answers != want[3] {
			t.Errorf("%s profile = %d/%d/%d/%d, want %v", name, p.Questions, p.Workers, p.Labels, p.Answers, want)
		}
	}
}

func TestAnswersPerItem(t *testing.T) {
	p, _ := Get("movie")
	if got := p.AnswersPerItem(); got != 29 {
		t.Errorf("movie answers/item = %d, want 29", got)
	}
	p, _ = Get("image")
	if got := p.AnswersPerItem(); got != 11 {
		t.Errorf("image answers/item = %d, want 11", got)
	}
}

func TestConfigScaleValidation(t *testing.T) {
	p, _ := Get("image")
	if _, err := p.Config(0, 1); err == nil {
		t.Error("scale 0 should fail")
	}
	if _, err := p.Config(1.5, 1); err == nil {
		t.Error("scale > 1 should fail")
	}
}

func TestLoadScaledShape(t *testing.T) {
	ds, meta, err := Load("image", 0.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumItems != 200 {
		t.Errorf("scaled items = %d, want 200", ds.NumItems)
	}
	if math.Abs(float64(ds.NumWorkers)-41.6) > 1 {
		t.Errorf("scaled workers = %d, want about 42", ds.NumWorkers)
	}
	if ds.NumLabels != 81 {
		t.Errorf("labels = %d, want 81 (never scaled)", ds.NumLabels)
	}
	wantAnswers := 200 * 11
	if got := ds.NumAnswers(); got < wantAnswers*9/10 || got > wantAnswers {
		t.Errorf("answers = %d, want about %d", got, wantAnswers)
	}
	if len(meta.WorkerTypes) != ds.NumWorkers {
		t.Error("metadata mismatch")
	}
}

func TestLoadDeterministic(t *testing.T) {
	a, _, err := Load("movie", 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Load("movie", 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumAnswers() != b.NumAnswers() {
		t.Fatal("not deterministic")
	}
	for i := range a.Answers() {
		if !a.Answer(i).Labels.Equal(b.Answer(i).Labels) {
			t.Fatal("answers differ under same seed")
		}
	}
}

func TestLoadAll(t *testing.T) {
	all, err := LoadAll(0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 5 {
		t.Fatalf("LoadAll returned %d datasets", len(all))
	}
	for name, ds := range all {
		if ds.NumAnswers() == 0 {
			t.Errorf("%s has no answers", name)
		}
		if ds.TruthCount() != ds.NumItems {
			t.Errorf("%s truth incomplete", name)
		}
	}
}

func TestTruthSizesRespectProfileBounds(t *testing.T) {
	ds, _, err := Load("topic", 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := Get("topic")
	for i := 0; i < ds.NumItems; i++ {
		truth, ok := ds.Truth(i)
		if !ok {
			t.Fatalf("item %d lacks truth", i)
		}
		if truth.Len() < 1 || truth.Len() > p.TruthMax {
			t.Fatalf("item %d truth size %d outside [1,%d]", i, truth.Len(), p.TruthMax)
		}
	}
}
