// Package datasets defines simulation profiles for the five evaluation
// corpora of the paper's Table 3. The real corpora (NUS-WIDE images, TREC
// 2011 tweets, restaurant reviews, T-NER tweets, IMDB movies) and their
// CrowdFlower answer logs are not redistributable, so each profile drives
// the crowd simulator with that dataset's published shape: question/worker/
// label/answer counts, truth-set bounds, candidate-list size from the task
// design, label-correlation strength, and worker-participation skew
// (DESIGN.md, substitution D4).
package datasets

import (
	"fmt"
	"math"
	"sort"

	"cpa/internal/answers"
	"cpa/internal/simulate"
)

// Profile describes one evaluation dataset's shape (Table 3 plus the §5.1
// qualitative notes).
type Profile struct {
	Name        string
	Description string

	// Table 3 quantities. Questions is the number of crowdsourced items
	// (the paper's "# Questions" row; "# Items" counts the full corpora the
	// samples were drawn from and is irrelevant for aggregation).
	Questions int
	Workers   int
	Labels    int
	Answers   int

	// Truth-set characteristics ("up to 10 tags", "up to five topics", ...).
	TruthMax  int
	TruthMean float64

	// Correlation strength of labels per §5.2's discussion: strong for
	// image/topic/entity, little for aspect/movie.
	Correlation   float64
	LabelClusters int

	// Candidates reflects the §5.1 task design (e.g. 30 of 81 labels shown
	// per image, 20 of 262 per review).
	Candidates int

	// WorkerSkew reflects §5.1: answer distribution skewed for image and
	// movie, normal for aspect.
	WorkerSkew float64
}

// AnswersPerItem returns the average answers per question from Table 3,
// which the simulator uses as the per-item worker count.
func (p Profile) AnswersPerItem() int {
	return int(math.Round(float64(p.Answers) / float64(p.Questions)))
}

// profiles holds the five Table 3 entries.
var profiles = map[string]Profile{
	"image": {
		Name:        "image",
		Description: "NUS-WIDE image tagging (strong label correlation, skewed workers)",
		Questions:   2000, Workers: 416, Labels: 81, Answers: 22920,
		TruthMax: 10, TruthMean: 4,
		Correlation: 0.90, LabelClusters: 8,
		Candidates: 30, WorkerSkew: 0.8,
	},
	"topic": {
		Name:        "topic",
		Description: "TREC-2011 microblog topic annotation (strong correlation, text tasks)",
		Questions:   2000, Workers: 313, Labels: 49, Answers: 15080,
		TruthMax: 5, TruthMean: 2.5,
		Correlation: 0.85, LabelClusters: 7,
		Candidates: 15, WorkerSkew: 0.3,
	},
	"aspect": {
		Name:        "aspect",
		Description: "restaurant-review aspect extraction (little correlation, normal workers)",
		Questions:   3710, Workers: 482, Labels: 262, Answers: 19780,
		TruthMax: 5, TruthMean: 2.5,
		Correlation: 0.30, LabelClusters: 26,
		Candidates: 20, WorkerSkew: 0,
	},
	"entity": {
		Name:        "entity",
		Description: "T-NER tweet entity extraction (strongest correlation, huge vocabulary)",
		Questions:   2400, Workers: 517, Labels: 1450, Answers: 15510,
		TruthMax: 5, TruthMean: 3,
		Correlation: 0.90, LabelClusters: 10,
		Candidates: 25, WorkerSkew: 0.3,
	},
	"movie": {
		Name:        "movie",
		Description: "IMDB movie genre tagging (little correlation, skewed workers)",
		Questions:   500, Workers: 936, Labels: 22, Answers: 14430,
		TruthMax: 5, TruthMean: 2.5,
		Correlation: 0.25, LabelClusters: 5,
		Candidates: 22, WorkerSkew: 0.8,
	},
}

// Names returns the profile names in a stable order.
func Names() []string {
	out := make([]string, 0, len(profiles))
	for name := range profiles {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Get returns the profile with the given name.
func Get(name string) (Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("datasets: unknown profile %q (have %v)", name, Names())
	}
	return p, nil
}

// Config converts the profile into a simulator configuration at the given
// scale. scale=1 reproduces the Table 3 sizes; smaller scales shrink items
// and workers proportionally (keeping answers/item constant) so tests and
// benches stay fast. The seed feeds the simulator.
func (p Profile) Config(scale float64, seed int64) (simulate.Config, error) {
	if scale <= 0 || scale > 1 {
		return simulate.Config{}, fmt.Errorf("datasets: scale %v out of (0,1]", scale)
	}
	items := int(math.Max(20, math.Round(float64(p.Questions)*scale)))
	workers := int(math.Max(20, math.Round(float64(p.Workers)*scale)))
	api := p.AnswersPerItem()
	if api > workers {
		api = workers
	}
	return simulate.Config{
		Name:           p.Name,
		Items:          items,
		Workers:        workers,
		Labels:         p.Labels,
		AnswersPerItem: api,
		LabelClusters:  p.LabelClusters,
		Correlation:    p.Correlation,
		TruthMean:      p.TruthMean,
		TruthMax:       p.TruthMax,
		Candidates:     p.Candidates,
		WorkerSkew:     p.WorkerSkew,
		Mix:            simulate.DefaultMix(),
		Seed:           seed,
	}, nil
}

// Load generates the profile's dataset at the given scale and seed.
func Load(name string, scale float64, seed int64) (*answers.Dataset, *simulate.Metadata, error) {
	p, err := Get(name)
	if err != nil {
		return nil, nil, err
	}
	cfg, err := p.Config(scale, seed)
	if err != nil {
		return nil, nil, err
	}
	return simulate.Generate(cfg)
}

// LoadAll generates all five profiles at the given scale, in Names() order.
func LoadAll(scale float64, seed int64) (map[string]*answers.Dataset, error) {
	out := make(map[string]*answers.Dataset, len(profiles))
	for _, name := range Names() {
		ds, _, err := Load(name, scale, seed)
		if err != nil {
			return nil, fmt.Errorf("datasets: loading %s: %w", name, err)
		}
		out[name] = ds
	}
	return out, nil
}
