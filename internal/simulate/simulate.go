// Package simulate generates synthetic crowdsourcing datasets that stand in
// for the paper's five CrowdFlower-collected corpora (DESIGN.md, substitution
// D4). The generator reproduces the structural properties each experiment in
// the paper's §5 probes:
//
//   - a worker population mixed from the five types of §2.1 / Appendix A
//     (reliable, normal, sloppy, uniform spammer, random spammer), each with
//     two-coin sensitivity/specificity behaviour;
//   - label co-occurrence structure: labels are grouped into latent clusters
//     and items draw their true label sets mostly from one home cluster
//     (archetype), yielding the co-occurrence dependencies of Fig. 1;
//   - task design per §5.1: workers see a bounded candidate list (the true
//     labels padded with co-occurring distractors), answer in batches, and
//     participation across workers can be skewed;
//   - the paper's intervention experiments: answer removal (Fig. 3 sparsity),
//     spammer injection (Fig. 4), and label-dependency injection (Fig. 5).
//
// All generation is deterministic under Config.Seed.
package simulate

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"cpa/internal/answers"
	"cpa/internal/dist"
	"cpa/internal/labelset"
)

// ErrConfig reports an invalid generator configuration.
var ErrConfig = errors.New("simulate: invalid config")

// WorkerType enumerates the paper's five worker archetypes (§2.1).
type WorkerType int

const (
	Reliable WorkerType = iota
	Normal
	Sloppy
	UniformSpammer
	RandomSpammer
	numWorkerTypes
)

// String returns the archetype name.
func (w WorkerType) String() string {
	switch w {
	case Reliable:
		return "reliable"
	case Normal:
		return "normal"
	case Sloppy:
		return "sloppy"
	case UniformSpammer:
		return "uniform-spammer"
	case RandomSpammer:
		return "random-spammer"
	default:
		return fmt.Sprintf("WorkerType(%d)", int(w))
	}
}

// IsSpammer reports whether the type is one of the two spammer archetypes.
func (w WorkerType) IsSpammer() bool {
	return w == UniformSpammer || w == RandomSpammer
}

// qualityRange bounds the two-coin parameters per archetype, following the
// characterisation in the paper's Appendix A (Fig. 10).
type qualityRange struct {
	sensLo, sensHi float64
	specLo, specHi float64
}

var typeQuality = map[WorkerType]qualityRange{
	Reliable: {0.70, 0.90, 0.92, 0.99},
	Normal:   {0.45, 0.70, 0.85, 0.96},
	Sloppy:   {0.25, 0.50, 0.70, 0.90},
}

// trapRate is the probability that an honest worker of each type falls for a
// trap label — a plausible-but-wrong distractor from the item's home
// co-occurrence cluster. Traps model the correlated mistakes of real crowds
// (different workers agreeing on the same wrong label), which is what makes
// the paper's real datasets hard for naive vote counting.
var trapRate = map[WorkerType]float64{
	Reliable: 0.25,
	Normal:   0.45,
	Sloppy:   0.65,
}

// Mix gives the worker population proportions. Entries need not sum to one;
// they are normalised. The zero value is invalid — use DefaultMix or
// PaperSimulationMix.
type Mix struct {
	Reliable       float64
	Normal         float64
	Sloppy         float64
	UniformSpammer float64
	RandomSpammer  float64
}

// DefaultMix is the population used for the five dataset profiles: a quarter
// spammers (the paper's §5.1 simulation default γ=25, within Vuurens et
// al.'s "up to 40%" bound) with the honest remainder split across reliable,
// normal and sloppy workers.
func DefaultMix() Mix {
	return Mix{Reliable: 0.30, Normal: 0.25, Sloppy: 0.20, UniformSpammer: 0.125, RandomSpammer: 0.125}
}

// AppendixAMix follows the real-world population reported in the paper's
// Appendix A (27% reliable, 16% normal, 18% sloppy, 38% spammers split
// evenly) — the most hostile documented population, used by stress tests.
func AppendixAMix() Mix {
	return Mix{Reliable: 0.27, Normal: 0.16, Sloppy: 0.18, UniformSpammer: 0.19, RandomSpammer: 0.19}
}

// PaperSimulationMix follows §5.1's large-scale simulation defaults:
// α=43% reliable, β=32% sloppy, γ=25% spammers (γ/2 each kind). The paper's
// simulation setup does not use a separate "normal" share.
func PaperSimulationMix() Mix {
	return Mix{Reliable: 0.43, Sloppy: 0.32, UniformSpammer: 0.125, RandomSpammer: 0.125}
}

func (m Mix) total() float64 {
	return m.Reliable + m.Normal + m.Sloppy + m.UniformSpammer + m.RandomSpammer
}

func (m Mix) weights() []float64 {
	return []float64{m.Reliable, m.Normal, m.Sloppy, m.UniformSpammer, m.RandomSpammer}
}

// Config parameterises dataset generation. Mandatory fields: Items, Workers,
// Labels, AnswersPerItem, Mix. Zero values elsewhere select sensible
// defaults (documented per field).
type Config struct {
	Name    string
	Items   int
	Workers int
	Labels  int

	// AnswersPerItem is the number of distinct workers answering each item
	// (Table 3's #Answers / #Questions).
	AnswersPerItem int

	// LabelClusters is the number of latent co-occurrence groups the label
	// vocabulary is partitioned into. Default: max(2, Labels/10).
	LabelClusters int

	// Correlation in [0,1] is the probability that each true label of an
	// item is drawn from the item's home cluster rather than uniformly.
	// High values give the strong co-occurrence of the image/topic/entity
	// datasets; low values the weak correlation of aspect/movie. Default 0.8.
	Correlation float64

	// TruthMean is the mean true-label-set size (≥1). Default 3.
	TruthMean float64
	// TruthMax caps the true-label-set size (Table 3: "up to 10 tags",
	// "up to five topics", ...). Default 2*TruthMean.
	TruthMax int

	// Candidates is the size of the label list shown to a worker per item
	// (§5.1 task design: 30 of 81 for image, 20 of 262 for aspect, ...).
	// False positives are drawn from this list only. Default min(Labels, 20).
	Candidates int

	// WorkerSkew ≥ 0 skews participation across workers with Zipf-like
	// weights rank^(-WorkerSkew). 0 means uniform participation. The image
	// and movie datasets are skewed per §5.1.
	WorkerSkew float64

	// Mix is the worker-type population. Required (use DefaultMix()).
	Mix Mix

	// RevealFraction of items have their ground truth revealed to the model
	// as test questions. Default 0.
	RevealFraction float64

	Seed int64
}

func (c *Config) fillDefaults() {
	if c.LabelClusters == 0 {
		c.LabelClusters = c.Labels / 10
		if c.LabelClusters < 2 {
			c.LabelClusters = 2
		}
	}
	if c.Correlation == 0 {
		c.Correlation = 0.8
	}
	if c.TruthMean == 0 {
		c.TruthMean = 3
	}
	if c.TruthMax == 0 {
		c.TruthMax = int(2 * c.TruthMean)
	}
	if c.Candidates == 0 {
		c.Candidates = 20
		if c.Labels < c.Candidates {
			c.Candidates = c.Labels
		}
	}
}

func (c *Config) validate() error {
	switch {
	case c.Items <= 0 || c.Workers <= 0 || c.Labels <= 0:
		return fmt.Errorf("%w: dimensions %d/%d/%d", ErrConfig, c.Items, c.Workers, c.Labels)
	case c.AnswersPerItem <= 0:
		return fmt.Errorf("%w: AnswersPerItem=%d", ErrConfig, c.AnswersPerItem)
	case c.AnswersPerItem > c.Workers:
		return fmt.Errorf("%w: AnswersPerItem=%d exceeds Workers=%d", ErrConfig, c.AnswersPerItem, c.Workers)
	case c.Mix.total() <= 0:
		return fmt.Errorf("%w: empty worker mix", ErrConfig)
	case c.Correlation < 0 || c.Correlation > 1:
		return fmt.Errorf("%w: Correlation=%v", ErrConfig, c.Correlation)
	case c.TruthMean < 1:
		return fmt.Errorf("%w: TruthMean=%v", ErrConfig, c.TruthMean)
	case c.LabelClusters > c.Labels:
		return fmt.Errorf("%w: LabelClusters=%d exceeds Labels=%d", ErrConfig, c.LabelClusters, c.Labels)
	case c.RevealFraction < 0 || c.RevealFraction > 1:
		return fmt.Errorf("%w: RevealFraction=%v", ErrConfig, c.RevealFraction)
	}
	return nil
}

// Metadata records the latent generation state for analysis and assertions:
// which archetype each worker belongs to, the label clustering, and each
// item's home cluster.
type Metadata struct {
	Config         Config
	WorkerTypes    []WorkerType
	Sensitivity    []float64 // per worker; spammers hold NaN
	Specificity    []float64
	UniformSpamSet []labelset.Set // non-empty only for uniform spammers
	LabelCluster   []int          // cluster id per label
	ClusterLabels  [][]int        // member labels per cluster
	ItemCluster    []int          // home cluster per item
	ItemTraps      []labelset.Set // per item: plausible-but-wrong trap labels
}

// TypeCount returns how many workers have the given archetype.
func (m *Metadata) TypeCount(t WorkerType) int {
	n := 0
	for _, wt := range m.WorkerTypes {
		if wt == t {
			n++
		}
	}
	return n
}

// Generate builds a dataset and its generation metadata from cfg.
func Generate(cfg Config) (*answers.Dataset, *Metadata, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	meta := &Metadata{Config: cfg}
	assignLabelClusters(cfg, rng, meta)
	assignWorkerTypes(cfg, rng, meta)

	ds, err := answers.NewDataset(cfg.Name, cfg.Items, cfg.Workers, cfg.Labels)
	if err != nil {
		return nil, nil, err
	}

	// Participation weights (Zipf-like over a random worker permutation so
	// archetypes are not confounded with participation volume).
	weights := make([]float64, cfg.Workers)
	perm := rng.Perm(cfg.Workers)
	for rank, u := range perm {
		if cfg.WorkerSkew > 0 {
			weights[u] = math.Pow(float64(rank+1), -cfg.WorkerSkew)
		} else {
			weights[u] = 1
		}
	}

	meta.ItemCluster = make([]int, cfg.Items)
	meta.ItemTraps = make([]labelset.Set, cfg.Items)
	scratch := &genScratch{
		keys:       make([]wkey, cfg.Workers),
		candidates: make([]int, 0, cfg.Candidates),
		member:     make([]bool, cfg.Labels),
	}
	for i := 0; i < cfg.Items; i++ {
		home := rng.Intn(cfg.LabelClusters)
		meta.ItemCluster[i] = home
		truth := sampleTruth(cfg, rng, meta, home)
		if err := ds.SetTruth(i, truth); err != nil {
			return nil, nil, err
		}
		if cfg.RevealFraction > 0 && rng.Float64() < cfg.RevealFraction {
			if err := ds.Reveal(i); err != nil {
				return nil, nil, err
			}
		}
		traps := sampleTraps(cfg, rng, meta, home, truth)
		meta.ItemTraps[i] = traps
		candidates := buildCandidates(cfg, rng, meta, home, truth, traps, scratch)
		for _, u := range pickWorkers(rng, weights, cfg.WorkerSkew == 0, cfg.AnswersPerItem, scratch) {
			ans := answerFor(cfg, rng, meta, u, truth, traps, candidates)
			if ans.IsEmpty() {
				continue // worker skipped the task
			}
			if err := ds.Add(i, u, ans); err != nil {
				return nil, nil, err
			}
		}
	}
	return ds, meta, nil
}

// assignLabelClusters partitions the vocabulary into contiguous clusters of
// near-equal size after a random shuffle, so cluster membership is random
// but exhaustive.
func assignLabelClusters(cfg Config, rng *rand.Rand, meta *Metadata) {
	meta.LabelCluster = make([]int, cfg.Labels)
	meta.ClusterLabels = make([][]int, cfg.LabelClusters)
	perm := rng.Perm(cfg.Labels)
	for idx, c := range perm {
		k := idx % cfg.LabelClusters
		meta.LabelCluster[c] = k
		meta.ClusterLabels[k] = append(meta.ClusterLabels[k], c)
	}
	for k := range meta.ClusterLabels {
		sort.Ints(meta.ClusterLabels[k])
	}
}

// assignWorkerTypes draws each worker's archetype from the mix and samples
// its two-coin parameters.
func assignWorkerTypes(cfg Config, rng *rand.Rand, meta *Metadata) {
	meta.WorkerTypes = make([]WorkerType, cfg.Workers)
	meta.Sensitivity = make([]float64, cfg.Workers)
	meta.Specificity = make([]float64, cfg.Workers)
	meta.UniformSpamSet = make([]labelset.Set, cfg.Workers)
	mixWeights := cfg.Mix.weights()
	for u := 0; u < cfg.Workers; u++ {
		wt := WorkerType(dist.SampleCategorical(rng, mixWeights))
		meta.WorkerTypes[u] = wt
		switch wt {
		case UniformSpammer:
			// A fixed set of 1–2 labels pasted onto every task (§2.1's u3).
			spam := labelset.Of(rng.Intn(cfg.Labels))
			if rng.Float64() < 0.5 && cfg.Labels > 1 {
				spam.Add(rng.Intn(cfg.Labels))
			}
			meta.UniformSpamSet[u] = spam
			meta.Sensitivity[u] = math.NaN()
			meta.Specificity[u] = math.NaN()
		case RandomSpammer:
			meta.Sensitivity[u] = math.NaN()
			meta.Specificity[u] = math.NaN()
		default:
			q := typeQuality[wt]
			meta.Sensitivity[u] = q.sensLo + rng.Float64()*(q.sensHi-q.sensLo)
			meta.Specificity[u] = q.specLo + rng.Float64()*(q.specHi-q.specLo)
		}
	}
}

// sampleTruth draws an item's true label set: size 1 + Poisson(TruthMean-1)
// capped at TruthMax, each label from the home cluster with probability
// Correlation, otherwise uniform over the vocabulary.
func sampleTruth(cfg Config, rng *rand.Rand, meta *Metadata, home int) labelset.Set {
	size := 1 + dist.Poisson(rng, cfg.TruthMean-1)
	if size > cfg.TruthMax {
		size = cfg.TruthMax
	}
	if size > cfg.Labels {
		size = cfg.Labels
	}
	truth := labelset.New(cfg.Labels)
	homeLabels := meta.ClusterLabels[home]
	for attempts := 0; truth.Len() < size && attempts < 50*size; attempts++ {
		var c int
		if rng.Float64() < cfg.Correlation {
			c = homeLabels[rng.Intn(len(homeLabels))]
		} else {
			c = rng.Intn(cfg.Labels)
		}
		truth.Add(c)
	}
	return truth
}

type wkey struct {
	worker int
	key    float64
}

type genScratch struct {
	keys       []wkey
	pool       []int // partial Fisher–Yates pool for the unweighted path
	picked     []int
	candidates []int
	member     []bool
}

// pickWorkers selects k distinct workers with probability proportional to
// their weights. Uniform weights take a partial Fisher–Yates shuffle (O(k)
// per item — required for the Fig. 7 large-scale generation); skewed weights
// use Efraimidis–Spirakis reservoir keys (O(U log U), fine for the profile
// sizes that use skew).
func pickWorkers(rng *rand.Rand, weights []float64, uniform bool, k int, s *genScratch) []int {
	if s.picked == nil {
		s.picked = make([]int, 0, k)
	}
	s.picked = s.picked[:0]
	if uniform {
		if s.pool == nil {
			s.pool = make([]int, len(weights))
			for u := range s.pool {
				s.pool[u] = u
			}
		}
		n := len(s.pool)
		for j := 0; j < k; j++ {
			r := j + rng.Intn(n-j)
			s.pool[j], s.pool[r] = s.pool[r], s.pool[j]
			s.picked = append(s.picked, s.pool[j])
		}
		return s.picked
	}
	for u, w := range weights {
		u64 := rng.Float64()
		for u64 == 0 {
			u64 = rng.Float64()
		}
		s.keys[u] = wkey{worker: u, key: math.Pow(u64, 1/w)}
	}
	sort.Slice(s.keys, func(a, b int) bool { return s.keys[a].key > s.keys[b].key })
	for j := 0; j < k; j++ {
		s.picked = append(s.picked, s.keys[j].worker)
	}
	return s.picked
}

// sampleTraps picks up to two plausible-but-wrong labels from the item's
// home cluster. All workers see the same traps, producing the correlated
// errors observed in real crowds.
func sampleTraps(cfg Config, rng *rand.Rand, meta *Metadata, home int, truth labelset.Set) labelset.Set {
	traps := labelset.New(cfg.Labels)
	homeLabels := meta.ClusterLabels[home]
	want := 2
	if len(homeLabels) <= truth.Len()+1 {
		want = 1
	}
	for attempts := 0; traps.Len() < want && attempts < 20; attempts++ {
		c := homeLabels[rng.Intn(len(homeLabels))]
		if !truth.Contains(c) {
			traps.Add(c)
		}
	}
	return traps
}

// buildCandidates assembles the label list shown to workers for an item: the
// true labels first, then the traps, padded with distractors biased toward
// the item's home cluster (the paper pads with the highest-co-occurrence
// labels).
func buildCandidates(cfg Config, rng *rand.Rand, meta *Metadata, home int, truth, traps labelset.Set, s *genScratch) []int {
	s.candidates = s.candidates[:0]
	for i := range s.member {
		s.member[i] = false
	}
	truth.Range(func(c int) bool {
		s.candidates = append(s.candidates, c)
		s.member[c] = true
		return true
	})
	traps.Range(func(c int) bool {
		if !s.member[c] {
			s.candidates = append(s.candidates, c)
			s.member[c] = true
		}
		return true
	})
	homeLabels := meta.ClusterLabels[home]
	for attempts := 0; len(s.candidates) < cfg.Candidates && attempts < 50*cfg.Candidates; attempts++ {
		var c int
		if rng.Float64() < 0.6 {
			c = homeLabels[rng.Intn(len(homeLabels))]
		} else {
			c = rng.Intn(cfg.Labels)
		}
		if !s.member[c] {
			s.member[c] = true
			s.candidates = append(s.candidates, c)
		}
	}
	return s.candidates
}

// answerFor produces worker u's label set for an item with true set truth,
// trap set traps, and candidate list candidates.
func answerFor(cfg Config, rng *rand.Rand, meta *Metadata, u int, truth, traps labelset.Set, candidates []int) labelset.Set {
	switch meta.WorkerTypes[u] {
	case UniformSpammer:
		return meta.UniformSpamSet[u].Clone()
	case RandomSpammer:
		// A random subset of the candidate list, sized like a typical truth
		// set, occasionally wandering outside the candidates entirely.
		size := 1 + rng.Intn(int(math.Max(1, cfg.TruthMean*1.5)))
		out := labelset.New(cfg.Labels)
		for j := 0; j < size; j++ {
			if rng.Float64() < 0.8 {
				out.Add(candidates[rng.Intn(len(candidates))])
			} else {
				out.Add(rng.Intn(cfg.Labels))
			}
		}
		return out
	}
	sens, spec := meta.Sensitivity[u], meta.Specificity[u]
	trap := trapRate[meta.WorkerTypes[u]]
	out := labelset.New(cfg.Labels)
	for _, c := range candidates {
		switch {
		case truth.Contains(c):
			if rng.Float64() < sens {
				out.Add(c)
			}
		case traps.Contains(c):
			if rng.Float64() < trap {
				out.Add(c)
			}
		default:
			if rng.Float64() > spec {
				out.Add(c)
			}
		}
	}
	// Honest workers do not submit empty answers; they pick their best guess.
	if out.IsEmpty() {
		out.Add(candidates[rng.Intn(len(candidates))])
	}
	return out
}

// ---------------------------------------------------------------------------
// Intervention operators for the robustness experiments
// ---------------------------------------------------------------------------

// Sparsify returns a copy of ds with the given fraction of answers removed
// uniformly at random (Fig. 3: "randomly removing a certain share of the
// answers"). fraction is clamped to [0, 1].
func Sparsify(ds *answers.Dataset, fraction float64, rng *rand.Rand) *answers.Dataset {
	if fraction <= 0 {
		return ds.Clone()
	}
	if fraction > 1 {
		fraction = 1
	}
	n := ds.NumAnswers()
	remove := int(math.Round(fraction * float64(n)))
	drop := make(map[int]bool, remove)
	for _, idx := range rng.Perm(n)[:remove] {
		drop[idx] = true
	}
	kept := 0
	out := ds.Filter(func(answers.Answer) bool {
		keep := !drop[kept]
		kept++
		return keep
	})
	return out
}

// InjectSpammers returns a copy of ds extended with fresh spammer workers
// whose answers make up the given ratio of the resulting dataset (Fig. 4:
// "adding answers of spammers ... such that they account for 20% or 40% of
// the data"). Spammers are split evenly between uniform and random kinds.
// The returned worker count grows accordingly.
func InjectSpammers(ds *answers.Dataset, ratio float64, rng *rand.Rand) (*answers.Dataset, error) {
	if ratio <= 0 {
		return ds.Clone(), nil
	}
	if ratio >= 1 {
		return nil, fmt.Errorf("%w: spam ratio %v must be < 1", ErrConfig, ratio)
	}
	n := ds.NumAnswers()
	spamAnswers := int(math.Round(ratio / (1 - ratio) * float64(n)))
	// Give each spammer about the mean per-worker volume of the base data.
	perSpammer := int(math.Max(1, float64(n)/float64(ds.NumWorkers)))
	numSpammers := (spamAnswers + perSpammer - 1) / perSpammer

	out, err := answers.NewDataset(ds.Name, ds.NumItems, ds.NumWorkers+numSpammers, ds.NumLabels)
	if err != nil {
		return nil, err
	}
	out.LabelNames = ds.LabelNames
	for _, a := range ds.Answers() {
		if err := out.Add(a.Item, a.Worker, a.Labels.Clone()); err != nil {
			return nil, err
		}
	}
	for i := 0; i < ds.NumItems; i++ {
		if truth, ok := ds.Truth(i); ok {
			if err := out.SetTruth(i, truth.Clone()); err != nil {
				return nil, err
			}
			if _, revealed := ds.Revealed(i); revealed {
				if err := out.Reveal(i); err != nil {
					return nil, err
				}
			}
		}
	}

	added := 0
	for s := 0; s < numSpammers && added < spamAnswers; s++ {
		u := ds.NumWorkers + s
		uniform := s%2 == 0
		var spamSet labelset.Set
		if uniform {
			spamSet = labelset.Of(rng.Intn(ds.NumLabels))
			if rng.Float64() < 0.5 && ds.NumLabels > 1 {
				spamSet.Add(rng.Intn(ds.NumLabels))
			}
		}
		budget := perSpammer
		if spamAnswers-added < budget {
			budget = spamAnswers - added
		}
		for _, item := range rng.Perm(ds.NumItems) {
			if budget == 0 {
				break
			}
			var ans labelset.Set
			if uniform {
				ans = spamSet.Clone()
			} else {
				size := 1 + rng.Intn(3)
				ans = labelset.New(ds.NumLabels)
				for j := 0; j < size; j++ {
					ans.Add(rng.Intn(ds.NumLabels))
				}
			}
			if err := out.Add(item, u, ans); err != nil {
				return nil, err
			}
			budget--
			added++
		}
	}
	return out, nil
}

// InjectDependency returns a copy of ds in which the given fraction of the
// "missing correct labels" (truth labels absent from answers that contain at
// least one correct label) are added back into those answers (Fig. 5's
// label-dependency simulation).
func InjectDependency(ds *answers.Dataset, fraction float64, rng *rand.Rand) (*answers.Dataset, error) {
	if fraction < 0 || fraction > 1 {
		return nil, fmt.Errorf("%w: dependency fraction %v", ErrConfig, fraction)
	}
	type slot struct {
		answer int // index in arrival order
		label  int
	}
	var missing []slot
	all := ds.Answers()
	for idx, a := range all {
		truth, ok := ds.Truth(a.Item)
		if !ok || truth.IntersectLen(a.Labels) == 0 {
			continue
		}
		for _, c := range truth.Minus(a.Labels).Slice() {
			missing = append(missing, slot{answer: idx, label: c})
		}
	}
	add := int(math.Round(fraction * float64(len(missing))))
	chosen := rng.Perm(len(missing))[:add]

	extra := make(map[int][]int) // answer index -> labels to add
	for _, mi := range chosen {
		s := missing[mi]
		extra[s.answer] = append(extra[s.answer], s.label)
	}
	out, err := answers.NewDataset(ds.Name, ds.NumItems, ds.NumWorkers, ds.NumLabels)
	if err != nil {
		return nil, err
	}
	out.LabelNames = ds.LabelNames
	for idx, a := range all {
		ls := a.Labels.Clone()
		for _, c := range extra[idx] {
			ls.Add(c)
		}
		if err := out.Add(a.Item, a.Worker, ls); err != nil {
			return nil, err
		}
	}
	for i := 0; i < ds.NumItems; i++ {
		if truth, ok := ds.Truth(i); ok {
			if err := out.SetTruth(i, truth.Clone()); err != nil {
				return nil, err
			}
			if _, revealed := ds.Revealed(i); revealed {
				if err := out.Reveal(i); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}
