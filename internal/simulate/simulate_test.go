package simulate

import (
	"math"
	"math/rand"
	"testing"

	"cpa/internal/answers"
	"cpa/internal/labelset"
	"cpa/internal/metrics"
)

func baseConfig() Config {
	return Config{
		Name:           "sim",
		Items:          200,
		Workers:        60,
		Labels:         30,
		AnswersPerItem: 8,
		LabelClusters:  5,
		Correlation:    0.9,
		TruthMean:      3,
		TruthMax:       6,
		Candidates:     15,
		Mix:            DefaultMix(),
		Seed:           11,
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := baseConfig()
	ds, meta, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumItems != cfg.Items || ds.NumWorkers != cfg.Workers || ds.NumLabels != cfg.Labels {
		t.Fatalf("dimensions wrong: %d/%d/%d", ds.NumItems, ds.NumWorkers, ds.NumLabels)
	}
	// Every item has truth and close to AnswersPerItem answers (honest
	// workers always answer; only degenerate candidate draws could skip).
	if ds.TruthCount() != cfg.Items {
		t.Errorf("TruthCount = %d, want %d", ds.TruthCount(), cfg.Items)
	}
	if got := ds.NumAnswers(); got < cfg.Items*cfg.AnswersPerItem*9/10 {
		t.Errorf("NumAnswers = %d, want about %d", got, cfg.Items*cfg.AnswersPerItem)
	}
	for i := 0; i < ds.NumItems; i++ {
		truth, ok := ds.Truth(i)
		if !ok || truth.IsEmpty() {
			t.Fatalf("item %d lacks truth", i)
		}
		if truth.Len() > cfg.TruthMax {
			t.Fatalf("item %d truth size %d exceeds max %d", i, truth.Len(), cfg.TruthMax)
		}
	}
	if len(meta.WorkerTypes) != cfg.Workers || len(meta.ItemCluster) != cfg.Items {
		t.Error("metadata sizes wrong")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := baseConfig()
	a, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumAnswers() != b.NumAnswers() {
		t.Fatal("different answer counts for same seed")
	}
	for i := range a.Answers() {
		x, y := a.Answer(i), b.Answer(i)
		if x.Item != y.Item || x.Worker != y.Worker || !x.Labels.Equal(y.Labels) {
			t.Fatalf("answer %d differs under same seed", i)
		}
	}
	cfg.Seed = 12
	c, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < a.NumAnswers() && i < c.NumAnswers(); i++ {
		if !a.Answer(i).Labels.Equal(c.Answer(i).Labels) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should give different data")
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Items = 0 },
		func(c *Config) { c.AnswersPerItem = 0 },
		func(c *Config) { c.AnswersPerItem = c.Workers + 1 },
		func(c *Config) { c.Mix = Mix{} },
		func(c *Config) { c.Correlation = 1.5 },
		func(c *Config) { c.TruthMean = 0.5 },
		func(c *Config) { c.LabelClusters = c.Labels + 1 },
		func(c *Config) { c.RevealFraction = 2 },
	}
	for i, mutate := range bad {
		cfg := baseConfig()
		mutate(&cfg)
		if _, _, err := Generate(cfg); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestWorkerMixProportions(t *testing.T) {
	cfg := baseConfig()
	cfg.Workers = 2000
	cfg.Items = 10
	cfg.AnswersPerItem = 5
	_, meta, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mix := DefaultMix()
	wantShares := map[WorkerType]float64{
		Reliable:       mix.Reliable,
		Normal:         mix.Normal,
		Sloppy:         mix.Sloppy,
		UniformSpammer: mix.UniformSpammer,
		RandomSpammer:  mix.RandomSpammer,
	}
	for wt, want := range wantShares {
		got := float64(meta.TypeCount(wt)) / float64(cfg.Workers)
		if math.Abs(got-want) > 0.05 {
			t.Errorf("%v share = %.3f, want about %.3f", wt, got, want)
		}
	}
}

func TestWorkerTypeBehaviours(t *testing.T) {
	cfg := baseConfig()
	cfg.Items = 400
	ds, meta, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform spammers give identical answers everywhere.
	for u, wt := range meta.WorkerTypes {
		if wt != UniformSpammer {
			continue
		}
		var first labelset.Set
		seen := false
		ds.ForWorker(u, func(a answers.Answer) {
			if !seen {
				first = a.Labels
				seen = true
				return
			}
			if !a.Labels.Equal(first) {
				t.Errorf("uniform spammer %d varies answers", u)
			}
		})
	}
	// Reliable workers should beat sloppy workers on measured quality.
	quality := metrics.OverallWorkerQuality(ds)
	var relSens, slopSens []float64
	for _, q := range quality {
		switch meta.WorkerTypes[q.Worker] {
		case Reliable:
			relSens = append(relSens, q.Sensitivity)
		case Sloppy:
			slopSens = append(slopSens, q.Sensitivity)
		}
	}
	if len(relSens) == 0 || len(slopSens) == 0 {
		t.Fatal("need both reliable and sloppy workers in sample")
	}
	relMean := metrics.Summarize(relSens).Mean
	slopMean := metrics.Summarize(slopSens).Mean
	if relMean <= slopMean+0.1 {
		t.Errorf("reliable sensitivity %.3f should clearly exceed sloppy %.3f", relMean, slopMean)
	}
}

func TestLabelCorrelationStructure(t *testing.T) {
	cfg := baseConfig()
	cfg.Correlation = 0.95
	ds, meta, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Most truth labels should come from the item's home cluster.
	inHome, total := 0, 0
	for i := 0; i < ds.NumItems; i++ {
		truth, _ := ds.Truth(i)
		home := meta.ItemCluster[i]
		truth.Range(func(c int) bool {
			if meta.LabelCluster[c] == home {
				inHome++
			}
			total++
			return true
		})
	}
	if frac := float64(inHome) / float64(total); frac < 0.8 {
		t.Errorf("home-cluster truth fraction %.3f, want > 0.8 at correlation 0.95", frac)
	}
	// Clusters partition the vocabulary.
	count := 0
	for _, members := range meta.ClusterLabels {
		count += len(members)
	}
	if count != cfg.Labels {
		t.Errorf("cluster members cover %d labels, want %d", count, cfg.Labels)
	}
}

func TestWorkerSkewConcentratesParticipation(t *testing.T) {
	cfg := baseConfig()
	cfg.WorkerSkew = 1.2
	ds, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, ds.NumWorkers)
	for u := range counts {
		counts[u] = ds.WorkerAnswerCount(u)
	}
	max, sum := 0, 0
	for _, c := range counts {
		if c > max {
			max = c
		}
		sum += c
	}
	mean := float64(sum) / float64(len(counts))
	if float64(max) < 3*mean {
		t.Errorf("skewed participation should be heavy-tailed: max %d vs mean %.1f", max, mean)
	}
	// Uniform case: far flatter.
	cfg.WorkerSkew = 0
	ds2, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	max2, sum2 := 0, 0
	for u := 0; u < ds2.NumWorkers; u++ {
		c := ds2.WorkerAnswerCount(u)
		if c > max2 {
			max2 = c
		}
		sum2 += c
	}
	mean2 := float64(sum2) / float64(ds2.NumWorkers)
	if float64(max2) > 2.5*mean2 {
		t.Errorf("uniform participation too skewed: max %d vs mean %.1f", max2, mean2)
	}
}

func TestRevealFraction(t *testing.T) {
	cfg := baseConfig()
	cfg.RevealFraction = 0.3
	ds, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	revealed := 0
	for i := 0; i < ds.NumItems; i++ {
		if _, ok := ds.Revealed(i); ok {
			revealed++
		}
	}
	frac := float64(revealed) / float64(ds.NumItems)
	if math.Abs(frac-0.3) > 0.1 {
		t.Errorf("revealed fraction %.3f, want about 0.3", frac)
	}
}

func TestSparsify(t *testing.T) {
	ds, _, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	half := Sparsify(ds, 0.5, rng)
	want := int(math.Round(0.5 * float64(ds.NumAnswers())))
	if got := ds.NumAnswers() - half.NumAnswers(); got != want {
		t.Errorf("Sparsify removed %d, want %d", got, want)
	}
	if half.TruthCount() != ds.TruthCount() {
		t.Error("Sparsify must keep truth")
	}
	if full := Sparsify(ds, 0, rng); full.NumAnswers() != ds.NumAnswers() {
		t.Error("Sparsify(0) should keep everything")
	}
	if none := Sparsify(ds, 1.5, rng); none.NumAnswers() != 0 {
		t.Error("Sparsify(>1) should remove everything")
	}
}

func TestInjectSpammers(t *testing.T) {
	ds, _, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	out, err := InjectSpammers(ds, 0.4, rng)
	if err != nil {
		t.Fatal(err)
	}
	added := out.NumAnswers() - ds.NumAnswers()
	gotRatio := float64(added) / float64(out.NumAnswers())
	if math.Abs(gotRatio-0.4) > 0.05 {
		t.Errorf("spam ratio %.3f, want about 0.4", gotRatio)
	}
	if out.NumWorkers <= ds.NumWorkers {
		t.Error("spammer injection must add workers")
	}
	// Original answers intact.
	for i := 0; i < ds.NumAnswers(); i++ {
		if !out.Answer(i).Labels.Equal(ds.Answer(i).Labels) {
			t.Fatal("original answers mutated")
		}
	}
	if same, err := InjectSpammers(ds, 0, rng); err != nil || same.NumAnswers() != ds.NumAnswers() {
		t.Error("ratio 0 should be identity")
	}
	if _, err := InjectSpammers(ds, 1, rng); err == nil {
		t.Error("ratio 1 should fail")
	}
}

func TestInjectDependency(t *testing.T) {
	ds, _, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	out, err := InjectDependency(ds, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumAnswers() != ds.NumAnswers() {
		t.Fatal("dependency injection must not change answer count")
	}
	// Injection only adds labels, and only truth labels, and recall of
	// answers against truth must improve.
	addedTotal := 0
	for i := range ds.Answers() {
		before, after := ds.Answer(i), out.Answer(i)
		if !before.Labels.SubsetOf(after.Labels) {
			t.Fatal("injection removed labels")
		}
		truth, _ := ds.Truth(before.Item)
		extra := after.Labels.Minus(before.Labels)
		if !extra.SubsetOf(truth) {
			t.Fatal("injected non-truth label")
		}
		addedTotal += extra.Len()
	}
	if addedTotal == 0 {
		t.Error("expected some labels injected at fraction 0.3")
	}
	if _, err := InjectDependency(ds, -0.1, rng); err == nil {
		t.Error("negative fraction should fail")
	}
	zero, err := InjectDependency(ds, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Answers() {
		if !zero.Answer(i).Labels.Equal(ds.Answer(i).Labels) {
			t.Fatal("fraction 0 should be identity")
		}
	}
}

func TestMajorityVoteSanityOnSimulatedData(t *testing.T) {
	// Built-in sanity check of the whole generator: simple per-label
	// majority voting over simulated answers must beat random guessing by a
	// wide margin, otherwise the signal the aggregators exploit is absent.
	cfg := baseConfig()
	cfg.Items = 300
	ds, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pred := make([]labelset.Set, ds.NumItems)
	for i := 0; i < ds.NumItems; i++ {
		votes := make([]int, ds.NumLabels)
		n := 0
		ds.ForItem(i, func(a answers.Answer) {
			n++
			a.Labels.Range(func(c int) bool {
				votes[c]++
				return true
			})
		})
		s := labelset.New(ds.NumLabels)
		best, bestVotes := -1, 0
		for c, v := range votes {
			if n > 0 && float64(v) > 0.5*float64(n) {
				s.Add(c)
			}
			if v > bestVotes {
				best, bestVotes = c, v
			}
		}
		if s.IsEmpty() && best >= 0 {
			s.Add(best) // argmax fallback, as in the MV baseline
		}
		pred[i] = s
	}
	pr, err := metrics.Evaluate(ds, pred)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Precision < 0.5 {
		t.Errorf("MV precision %.3f too low — generator signal broken", pr.Precision)
	}
	t.Logf("sanity MV on simulated data: %v", pr)
}

func TestWorkerTypeString(t *testing.T) {
	names := map[WorkerType]string{
		Reliable:       "reliable",
		Normal:         "normal",
		Sloppy:         "sloppy",
		UniformSpammer: "uniform-spammer",
		RandomSpammer:  "random-spammer",
		WorkerType(99): "WorkerType(99)",
	}
	for wt, want := range names {
		if wt.String() != want {
			t.Errorf("String(%d) = %q", int(wt), wt.String())
		}
	}
	if !UniformSpammer.IsSpammer() || Reliable.IsSpammer() {
		t.Error("IsSpammer misclassifies")
	}
}
