package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func tiny() Settings { return Settings{DataScale: 0.05, Runs: 1, Seed: 1} }

func TestIDsAndGet(t *testing.T) {
	ids := IDs()
	if len(ids) != 12 {
		t.Fatalf("IDs = %v", ids)
	}
	for _, id := range ids {
		if _, err := Get(id); err != nil {
			t.Errorf("Get(%q): %v", id, err)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Error("unknown id should fail")
	}
}

func TestPresets(t *testing.T) {
	if q := Quick(); q.DataScale <= 0 || q.Runs < 1 {
		t.Errorf("Quick = %+v", q)
	}
	if p := Paper(); p.DataScale != 1 || p.Runs != 10 {
		t.Errorf("Paper = %+v", p)
	}
	if s := Standard(); s.DataScale <= 0 || s.DataScale > 1 {
		t.Errorf("Standard = %+v", s)
	}
}

func TestRunTable1(t *testing.T) {
	r, err := RunTable1Motivating(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "table1" || len(r.Rows) != 5 {
		t.Fatalf("result = %+v", r)
	}
	// The MV column must reproduce the paper's published majority answers.
	wantMV := []string{"{3,4}", "{3}", "{3}", "{1}"}
	for i, want := range wantMV {
		if r.Rows[i][2] != want {
			t.Errorf("row %d MV = %s, want %s", i, r.Rows[i][2], want)
		}
	}
	ascii := r.RenderASCII()
	if !strings.Contains(ascii, "majority") || !strings.Contains(ascii, "CPA") {
		t.Error("ASCII render missing headers")
	}
	md := r.RenderMarkdown()
	if !strings.Contains(md, "### table1") || !strings.Contains(md, "| item |") {
		t.Error("Markdown render malformed")
	}
}

func TestRunTable3(t *testing.T) {
	r, err := RunTable3DatasetStats(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// 8 paper rows plus the distinct-answer-sets reuse diagnostic.
	if len(r.Rows) != 9 || len(r.Headers) != 6 {
		t.Fatalf("table3 shape: %d rows, %d headers", len(r.Rows), len(r.Headers))
	}
	// Labels row must carry the paper's vocabulary sizes regardless of scale.
	labelsRow := r.Rows[1]
	want := []string{"81", "49", "262", "1450", "22"}
	for i, w := range want {
		if labelsRow[i+1] != w {
			t.Errorf("labels[%s] = %s, want %s", r.Headers[i+1], labelsRow[i+1], w)
		}
	}
}

func TestRunTable4QualityOrdering(t *testing.T) {
	r, err := RunTable4OverallAccuracy(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("table4 rows = %d", len(r.Rows))
	}
	// Across the five datasets CPA's F1 (computed from the table cells) must
	// beat MV's on the majority of datasets.
	wins := 0
	for _, row := range r.Rows {
		mvP, _ := strconv.ParseFloat(row[1], 64)
		cpaP, _ := strconv.ParseFloat(row[4], 64)
		mvR, _ := strconv.ParseFloat(row[5], 64)
		cpaR, _ := strconv.ParseFloat(row[8], 64)
		if f1(cpaP, cpaR) > f1(mvP, mvR) {
			wins++
		}
	}
	if wins < 4 {
		t.Errorf("CPA beats MV on only %d/5 datasets:\n%s", wins, r.RenderASCII())
	}
}

func f1(p, r float64) float64 {
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func TestRunFig3SparsityShape(t *testing.T) {
	r, err := RunFig3Sparsity(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 8 {
		t.Fatalf("fig3 rows = %d", len(r.Rows))
	}
	// Quality at sparsity 0 must exceed quality at sparsity 90 for CPA.
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	p0, _ := strconv.ParseFloat(first[4], 64)
	r0, _ := strconv.ParseFloat(first[8], 64)
	p9, _ := strconv.ParseFloat(last[4], 64)
	r9, _ := strconv.ParseFloat(last[8], 64)
	if f1(p9, r9) >= f1(p0, r0) {
		t.Errorf("CPA F1 should degrade with sparsity: %.3f -> %.3f", f1(p0, r0), f1(p9, r9))
	}
}

func TestRunFig6Shape(t *testing.T) {
	r, err := RunFig6DataArrival(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 10 {
		t.Fatalf("fig6 rows = %d, want 10 arrival steps", len(r.Rows))
	}
	if r.Rows[0][0] != "10" || r.Rows[9][0] != "100" {
		t.Errorf("arrival steps malformed: %v ... %v", r.Rows[0], r.Rows[9])
	}
}

func TestRunFig8AndFig10(t *testing.T) {
	r8, err := RunFig8Ablation(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r8.Rows) != 5 {
		t.Fatalf("fig8 rows = %d", len(r8.Rows))
	}
	r10, err := RunFig10WorkerTypes(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r10.Rows) < 3 {
		t.Fatalf("fig10 rows = %d", len(r10.Rows))
	}
	if r10.Extra == "" {
		t.Error("fig10 should include a scatter rendering")
	}
	// Reliable workers must dominate spammers in measured sensitivity.
	var relSens, spamSens float64
	for _, row := range r10.Rows {
		switch row[0] {
		case "reliable":
			relSens, _ = strconv.ParseFloat(row[2], 64)
		case "random-spammer":
			spamSens, _ = strconv.ParseFloat(row[2], 64)
		}
	}
	if relSens != 0 && spamSens != 0 && relSens <= spamSens {
		t.Errorf("reliable sensitivity %.3f should exceed random spammer %.3f", relSens, spamSens)
	}
}

func TestRunFig9Communities(t *testing.T) {
	r, err := RunFig9Communities(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("fig9 rows = %d, want 2 datasets × 2 labels", len(r.Rows))
	}
	for _, row := range r.Rows {
		k, _ := strconv.Atoi(row[3])
		if k < 2 || k > 5 {
			t.Errorf("detected communities %s outside sweep", row[3])
		}
	}
}
