package experiments

import (
	"fmt"

	"cpa/internal/answers"
	"cpa/internal/baselines"
	"cpa/internal/core"
	"cpa/internal/datasets"
	"cpa/internal/labelset"
	"cpa/internal/metrics"
)

// Table1Dataset builds the paper's Table 1 motivating example: five workers
// label four pictures with subsets of {sky, plane, sun, water, tree}
// (0-based here). Exported so examples and benches can reuse it.
func Table1Dataset() (*answers.Dataset, error) {
	d, err := answers.NewDataset("table1", 4, 5, 5)
	if err != nil {
		return nil, err
	}
	d.LabelNames = []string{"sky", "plane", "sun", "water", "tree"}
	rows := []struct {
		item, worker int
		labels       []int
	}{
		{0, 0, []int{3, 4}}, {0, 1, []int{3, 4}}, {0, 2, []int{3}}, {0, 3, []int{0}}, {0, 4, []int{4}},
		{1, 0, []int{1, 2}}, {1, 1, []int{0, 3}}, {1, 2, []int{3}}, {1, 3, []int{1}}, {1, 4, []int{2, 3}},
		{2, 0, []int{0, 1}}, {2, 1, []int{3}}, {2, 2, []int{3}}, {2, 3, []int{2}}, {2, 4, []int{3, 4}},
		{3, 0, []int{0, 1}}, {3, 1, []int{1, 2}}, {3, 2, []int{3}}, {3, 3, []int{3}}, {3, 4, []int{0, 1, 2}},
	}
	for _, r := range rows {
		if err := d.Add(r.item, r.worker, labelset.FromSlice(r.labels)); err != nil {
			return nil, err
		}
	}
	truth := [][]int{{4}, {2, 3}, {3, 4}, {0, 1, 2}}
	for i, tr := range truth {
		if err := d.SetTruth(i, labelset.FromSlice(tr)); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// RunTable1Motivating reproduces Table 1: the fixed 5-worker × 4-picture
// answer matrix, the correct assignment, the per-label majority vote, and
// CPA's consensus.
func RunTable1Motivating(s Settings) (*Result, error) {
	ds, err := Table1Dataset()
	if err != nil {
		return nil, err
	}
	mvPred, err := baselines.NewMajorityVote().Aggregate(ds)
	if err != nil {
		return nil, err
	}
	cpaPred, err := core.NewAggregator(core.Config{Seed: 3, MaxCommunities: 3, MaxClusters: 4}).Aggregate(ds)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:      "table1",
		Title:   "Motivating example (paper Table 1; labels 0-based)",
		Headers: []string{"item", "correct", "majority", "CPA"},
		Notes:   "paper's majority column: {3,4},{3},{3},{1}; CPA should fix i1's spurious 3 and i4's missing labels",
	}
	for i := 0; i < ds.NumItems; i++ {
		truth, _ := ds.Truth(i)
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("i%d", i+1), truth.String(), mvPred[i].String(), cpaPred[i].String(),
		})
	}
	mvPR, err := metrics.Evaluate(ds, mvPred)
	if err != nil {
		return nil, err
	}
	cpaPR, err := metrics.Evaluate(ds, cpaPred)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, []string{"P/R", "1.000/1.000",
		f3(mvPR.Precision) + "/" + f3(mvPR.Recall), f3(cpaPR.Precision) + "/" + f3(cpaPR.Recall)})
	return res, nil
}

// RunTable3DatasetStats reproduces Table 3: the shape statistics of the five
// (simulated) evaluation datasets at the current scale.
func RunTable3DatasetStats(s Settings) (*Result, error) {
	res := &Result{
		ID:      "table3",
		Title:   fmt.Sprintf("Dataset statistics (paper Table 3; simulated at scale %.2f)", s.DataScale),
		Headers: []string{"quantity", "image", "topic", "aspect", "entity", "movie"},
		Notes:   "datasets are simulated per DESIGN.md D4; #items/#workers scale with DataScale, labels and answers/item match the paper",
	}
	names := []string{"image", "topic", "aspect", "entity", "movie"}
	stats := make([]answers.Stats, len(names))
	for i, name := range names {
		ds, err := profileDataset(name, s, s.Seed)
		if err != nil {
			return nil, err
		}
		stats[i] = ds.ComputeStats()
	}
	row := func(label string, get func(st answers.Stats) string) {
		cells := []string{label}
		for _, st := range stats {
			cells = append(cells, get(st))
		}
		res.Rows = append(res.Rows, cells)
	}
	row("# Questions", func(st answers.Stats) string { return fmt.Sprintf("%d", st.Items) })
	row("# Labels", func(st answers.Stats) string { return fmt.Sprintf("%d", st.Labels) })
	row("# Workers", func(st answers.Stats) string { return fmt.Sprintf("%d", st.Workers) })
	row("# Answers", func(st answers.Stats) string { return fmt.Sprintf("%d", st.Answers) })
	row("answers/item", func(st answers.Stats) string { return fmt.Sprintf("%.1f", st.MeanAnswersPerItem) })
	row("mean answer size", func(st answers.Stats) string { return fmt.Sprintf("%.1f", st.MeanAnswerSize) })
	row("mean truth size", func(st answers.Stats) string { return fmt.Sprintf("%.1f", st.MeanTruthSize) })
	row("density", func(st answers.Stats) string { return fmt.Sprintf("%.3f", st.Density) })
	row("distinct answer sets", func(st answers.Stats) string { return fmt.Sprintf("%d", st.DistinctLabelSets) })
	return res, nil
}

// RunTable4OverallAccuracy reproduces Table 4: precision and recall of MV,
// EM, cBCC and CPA on the five datasets, without any revealed truth.
func RunTable4OverallAccuracy(s Settings) (*Result, error) {
	res := &Result{
		ID:      "table4",
		Title:   "Overall accuracy (paper Table 4)",
		Headers: []string{"dataset", "MV P", "EM P", "cBCC P", "CPA P", "MV R", "EM R", "cBCC R", "CPA R"},
		Notes:   fmt.Sprintf("averaged over %d run(s) at scale %.2f; expected ordering MV ≤ EM ≤ cBCC < CPA", s.Runs, s.DataScale),
	}
	for _, name := range datasets.Names() {
		prs := make([]metrics.PR, 4)
		for ai := range prs {
			ai := ai
			avg, _, _, err := averagePR(s, func(seed int64) (metrics.PR, error) {
				ds, err := profileDataset(name, s, seed)
				if err != nil {
					return metrics.PR{}, err
				}
				return evaluate(standardAggregators(seed)[ai], ds)
			})
			if err != nil {
				return nil, err
			}
			prs[ai] = avg
		}
		res.Rows = append(res.Rows, []string{
			name,
			f3(prs[0].Precision), f3(prs[1].Precision), f3(prs[2].Precision), f3(prs[3].Precision),
			f3(prs[0].Recall), f3(prs[1].Recall), f3(prs[2].Recall), f3(prs[3].Recall),
		})
	}
	return res, nil
}

// RunTable5OnlineAccuracy reproduces Table 5: precision/recall of the
// offline (batch VI) and online (SVI) CPA variants after all answers have
// arrived, with ± deviations over shuffled runs.
func RunTable5OnlineAccuracy(s Settings) (*Result, error) {
	res := &Result{
		ID:      "table5",
		Title:   "Effects of data arrival at 100% (paper Table 5)",
		Headers: []string{"dataset", "online P", "offline P", "online R", "offline R"},
		Notes:   "online = single-pass stochastic VI over shuffled arrival order; offline = batch VI; ± is the std over runs",
	}
	for _, name := range datasets.Names() {
		var onP, onR, offP, offR []float64
		for run := 0; run < s.Runs; run++ {
			seed := s.Seed + int64(run)*101
			ds, err := profileDataset(name, s, seed)
			if err != nil {
				return nil, err
			}
			shuffled := ds.Shuffled(newRand(seed))
			on, err := evaluate(core.NewOnlineAggregator(cpaConfig(seed)), shuffled)
			if err != nil {
				return nil, err
			}
			off, err := evaluate(core.NewAggregator(cpaConfig(seed)), ds)
			if err != nil {
				return nil, err
			}
			onP = append(onP, on.Precision)
			onR = append(onR, on.Recall)
			offP = append(offP, off.Precision)
			offR = append(offR, off.Recall)
		}
		res.Rows = append(res.Rows, []string{
			name,
			metrics.Summarize(onP).String(), f3(metrics.Summarize(offP).Mean),
			metrics.Summarize(onR).String(), f3(metrics.Summarize(offR).Mean),
		})
	}
	return res, nil
}
