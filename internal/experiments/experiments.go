// Package experiments regenerates every table and figure of the paper's
// evaluation section (§5) on the simulated crowd substrate. Each experiment
// is a named Runner producing a structured Result that renders as an ASCII
// table (for the cpabench CLI) or as Markdown (for EXPERIMENTS.md).
//
// The experiment ↔ paper mapping lives in DESIGN.md §4; every runner's doc
// comment restates the workload it reproduces.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"cpa/internal/answers"
	"cpa/internal/baselines"
	"cpa/internal/core"
	"cpa/internal/datasets"
	"cpa/internal/metrics"
)

// Settings scales an experiment run. DataScale shrinks the Table 3 dataset
// sizes (1 = paper scale); Runs averages stochastic experiments over several
// seeds; Seed is the base seed.
type Settings struct {
	DataScale float64
	Runs      int
	Seed      int64
}

// Quick returns the settings used by unit tests and smoke benches.
func Quick() Settings { return Settings{DataScale: 0.08, Runs: 1, Seed: 1} }

// Standard returns the settings used by the cpabench CLI by default.
func Standard() Settings { return Settings{DataScale: 0.15, Runs: 3, Seed: 1} }

// Paper returns full Table 3 sizes with the paper's 10-run averaging.
func Paper() Settings { return Settings{DataScale: 1, Runs: 10, Seed: 1} }

// Result is one regenerated table or figure.
type Result struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	// Notes records reproduction caveats (substitutions, scale).
	Notes string
	// Extra carries free-form renderings (e.g. ASCII scatter plots).
	Extra string
}

// Runner regenerates one experiment.
type Runner func(s Settings) (*Result, error)

// registry maps experiment ids to runners, with ids ordered as in the paper.
var registry = map[string]Runner{
	"table1": RunTable1Motivating,
	"table3": RunTable3DatasetStats,
	"table4": RunTable4OverallAccuracy,
	"fig3":   RunFig3Sparsity,
	"fig4":   RunFig4Spammers,
	"fig5":   RunFig5LabelDependency,
	"fig6":   RunFig6DataArrival,
	"table5": RunTable5OnlineAccuracy,
	"fig7":   RunFig7Runtime,
	"fig8":   RunFig8Ablation,
	"fig9":   RunFig9Communities,
	"fig10":  RunFig10WorkerTypes,
}

// order lists experiment ids in presentation order.
var order = []string{
	"table1", "table3", "table4", "fig3", "fig4", "fig5",
	"fig6", "table5", "fig7", "fig8", "fig9", "fig10",
}

// IDs returns the experiment identifiers in presentation order.
func IDs() []string { return append([]string(nil), order...) }

// Get returns the runner for an experiment id.
func Get(id string) (Runner, error) {
	r, ok := registry[id]
	if !ok {
		known := IDs()
		sort.Strings(known)
		return nil, fmt.Errorf("experiments: unknown id %q (known: %s)", id, strings.Join(known, ", "))
	}
	return r, nil
}

// RunAll executes every experiment in order, collecting results. Failures
// abort with the offending experiment named.
func RunAll(s Settings) ([]*Result, error) {
	out := make([]*Result, 0, len(order))
	for _, id := range order {
		r, err := registry[id](s)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

// RenderASCII formats the result as a boxed text table.
func (r *Result) RenderASCII() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s\n", r.ID, r.Title)
	if len(r.Headers) > 0 {
		widths := make([]int, len(r.Headers))
		for c, h := range r.Headers {
			widths[c] = len(h)
		}
		for _, row := range r.Rows {
			for c, cell := range row {
				if c < len(widths) && len(cell) > widths[c] {
					widths[c] = len(cell)
				}
			}
		}
		writeRow := func(cells []string) {
			for c, cell := range cells {
				if c >= len(widths) {
					break
				}
				fmt.Fprintf(&b, "| %-*s ", widths[c], cell)
			}
			b.WriteString("|\n")
		}
		writeRow(r.Headers)
		for c, w := range widths {
			if c == 0 {
				b.WriteString("|")
			}
			b.WriteString(strings.Repeat("-", w+2))
			b.WriteString("|")
		}
		b.WriteString("\n")
		for _, row := range r.Rows {
			writeRow(row)
		}
	}
	if r.Extra != "" {
		b.WriteString(r.Extra)
		if !strings.HasSuffix(r.Extra, "\n") {
			b.WriteString("\n")
		}
	}
	if r.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", r.Notes)
	}
	return b.String()
}

// RenderMarkdown formats the result as a Markdown section.
func (r *Result) RenderMarkdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", r.ID, r.Title)
	if len(r.Headers) > 0 {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(r.Headers, " | "))
		seps := make([]string, len(r.Headers))
		for i := range seps {
			seps[i] = "---"
		}
		fmt.Fprintf(&b, "| %s |\n", strings.Join(seps, " | "))
		for _, row := range r.Rows {
			fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
		}
		b.WriteString("\n")
	}
	if r.Extra != "" {
		b.WriteString("```\n")
		b.WriteString(r.Extra)
		if !strings.HasSuffix(r.Extra, "\n") {
			b.WriteString("\n")
		}
		b.WriteString("```\n\n")
	}
	if r.Notes != "" {
		fmt.Fprintf(&b, "_Note: %s_\n\n", r.Notes)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

func f3(x float64) string { return fmt.Sprintf("%.3f", x) }

func cpaConfig(seed int64) core.Config {
	return core.Config{Seed: seed}
}

// evaluate fits the aggregator and scores it against the dataset's truth.
func evaluate(agg baselines.Aggregator, ds *answers.Dataset) (metrics.PR, error) {
	pred, err := agg.Aggregate(ds)
	if err != nil {
		return metrics.PR{}, fmt.Errorf("%s on %s: %w", agg.Name(), ds.Name, err)
	}
	return metrics.Evaluate(ds, pred)
}

// timedEvaluate additionally reports the aggregation wall time.
func timedEvaluate(agg baselines.Aggregator, ds *answers.Dataset) (metrics.PR, time.Duration, error) {
	start := time.Now()
	pred, err := agg.Aggregate(ds)
	elapsed := time.Since(start)
	if err != nil {
		return metrics.PR{}, elapsed, err
	}
	pr, err := metrics.Evaluate(ds, pred)
	return pr, elapsed, err
}

// averagePR runs fn over Runs seeds and averages precision/recall.
func averagePR(s Settings, fn func(seed int64) (metrics.PR, error)) (metrics.PR, metrics.MeanStd, metrics.MeanStd, error) {
	var ps, rs []float64
	for run := 0; run < s.Runs; run++ {
		pr, err := fn(s.Seed + int64(run)*101)
		if err != nil {
			return metrics.PR{}, metrics.MeanStd{}, metrics.MeanStd{}, err
		}
		ps = append(ps, pr.Precision)
		rs = append(rs, pr.Recall)
	}
	mp := metrics.Summarize(ps)
	mr := metrics.Summarize(rs)
	return metrics.PR{Precision: mp.Mean, Recall: mr.Mean, Items: s.Runs}, mp, mr, nil
}

// profileDataset loads one Table 3 profile at the experiment scale.
func profileDataset(name string, s Settings, seed int64) (*answers.Dataset, error) {
	ds, _, err := datasets.Load(name, s.DataScale, seed)
	return ds, err
}

// standardAggregators returns the Table 4 method set in paper order.
func standardAggregators(seed int64) []baselines.Aggregator {
	return []baselines.Aggregator{
		baselines.NewMajorityVote(),
		baselines.NewDawidSkene(),
		baselines.NewCBCC(),
		core.NewAggregator(cpaConfig(seed)),
	}
}
