package experiments

import (
	"fmt"
	"math/rand"

	"cpa/internal/answers"
	"cpa/internal/baselines"
	"cpa/internal/community"
	"cpa/internal/core"
	"cpa/internal/datasets"
	"cpa/internal/metrics"
	"cpa/internal/simulate"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// RunFig3Sparsity reproduces Fig. 3: precision/recall on the image dataset
// as answers are removed (sparsity 0%–90%), for MV, EM, cBCC and CPA.
func RunFig3Sparsity(s Settings) (*Result, error) {
	res := &Result{
		ID:      "fig3",
		Title:   "Effects of sparsity on the image dataset (paper Fig. 3)",
		Headers: []string{"sparsity %", "MV P", "EM P", "cBCC P", "CPA P", "MV R", "EM R", "cBCC R", "CPA R"},
		Notes:   "CPA should degrade the slowest as answers are removed",
	}
	base, err := profileDataset("image", s, s.Seed)
	if err != nil {
		return nil, err
	}
	for _, sparsity := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		ds := simulate.Sparsify(base, sparsity, newRand(s.Seed+int64(sparsity*100)))
		if ds.NumAnswers() == 0 {
			continue
		}
		var ps, rs []string
		for _, agg := range standardAggregators(s.Seed) {
			pr, err := evaluate(agg, ds)
			if err != nil {
				return nil, err
			}
			ps = append(ps, f3(pr.Precision))
			rs = append(rs, f3(pr.Recall))
		}
		row := append([]string{fmt.Sprintf("%.0f", sparsity*100)}, append(ps, rs...)...)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// RunFig4Spammers reproduces Fig. 4: injected spammer answers at 20% and 40%
// of the data; ΔPrecision/ΔRecall (ratio versus the method's own performance
// at 0% spam) for the best baseline (cBCC) and CPA on all five datasets.
func RunFig4Spammers(s Settings) (*Result, error) {
	res := &Result{
		ID:      "fig4",
		Title:   "Effects of spammers (paper Fig. 4)",
		Headers: []string{"dataset", "spam %", "cBCC ΔP", "CPA ΔP", "cBCC ΔR", "CPA ΔR"},
		Notes:   "Δ = metric with spam / metric without; CPA should stay closer to 1.0",
	}
	for _, name := range datasets.Names() {
		base, err := profileDataset(name, s, s.Seed)
		if err != nil {
			return nil, err
		}
		cbcc0, err := evaluate(baselines.NewCBCC(), base)
		if err != nil {
			return nil, err
		}
		cpa0, err := evaluate(core.NewAggregator(cpaConfig(s.Seed)), base)
		if err != nil {
			return nil, err
		}
		for _, ratio := range []float64{0.2, 0.4} {
			spammed, err := simulate.InjectSpammers(base, ratio, newRand(s.Seed+int64(ratio*100)))
			if err != nil {
				return nil, err
			}
			cbccS, err := evaluate(baselines.NewCBCC(), spammed)
			if err != nil {
				return nil, err
			}
			cpaS, err := evaluate(core.NewAggregator(cpaConfig(s.Seed)), spammed)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, []string{
				name, fmt.Sprintf("%.0f", ratio*100),
				f3(ratio2(cbccS.Precision, cbcc0.Precision)), f3(ratio2(cpaS.Precision, cpa0.Precision)),
				f3(ratio2(cbccS.Recall, cbcc0.Recall)), f3(ratio2(cpaS.Recall, cpa0.Recall)),
			})
		}
	}
	return res, nil
}

func ratio2(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// RunFig5LabelDependency reproduces Fig. 5: on the entity dataset, missing
// correct labels are injected back into worker answers (10%–30% of all
// missing pairs); Δ = metric(original) / metric(injected) measures how much
// of the dependency information each method had already recovered — the
// paper's "reverse ratio".
func RunFig5LabelDependency(s Settings) (*Result, error) {
	res := &Result{
		ID:      "fig5",
		Title:   "Effects of label dependencies on the entity dataset (paper Fig. 5)",
		Headers: []string{"dependency %", "cBCC ΔP", "CPA ΔP", "cBCC ΔR", "CPA ΔR"},
		Notes:   "Δ = metric(original)/metric(with injected labels); lower = more information was lost by ignoring dependencies; CPA should stay closer to 1.0",
	}
	base, err := profileDataset("entity", s, s.Seed)
	if err != nil {
		return nil, err
	}
	cbcc0, err := evaluate(baselines.NewCBCC(), base)
	if err != nil {
		return nil, err
	}
	cpa0, err := evaluate(core.NewAggregator(cpaConfig(s.Seed)), base)
	if err != nil {
		return nil, err
	}
	for _, dep := range []float64{0.10, 0.15, 0.20, 0.25, 0.30} {
		injected, err := simulate.InjectDependency(base, dep, newRand(s.Seed+int64(dep*1000)))
		if err != nil {
			return nil, err
		}
		cbccI, err := evaluate(baselines.NewCBCC(), injected)
		if err != nil {
			return nil, err
		}
		cpaI, err := evaluate(core.NewAggregator(cpaConfig(s.Seed)), injected)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%.0f", dep*100),
			f3(ratio2(cbcc0.Precision, cbccI.Precision)), f3(ratio2(cpa0.Precision, cpaI.Precision)),
			f3(ratio2(cbcc0.Recall, cbccI.Recall)), f3(ratio2(cpa0.Recall, cpaI.Recall)),
		})
	}
	return res, nil
}

// RunFig6DataArrival reproduces Fig. 6: precision/recall on the image
// dataset as data arrives in 10% steps — the online model evolves
// incrementally (snapshots of one SVI stream), the offline model is refit
// from scratch on each prefix.
func RunFig6DataArrival(s Settings) (*Result, error) {
	res := &Result{
		ID:      "fig6",
		Title:   "Effects of data arrival on the image dataset (paper Fig. 6)",
		Headers: []string{"arrival %", "online P", "offline P", "online R", "offline R"},
		Notes:   "online snapshots one evolving SVI model; offline refits batch VI per prefix",
	}
	base, err := profileDataset("image", s, s.Seed)
	if err != nil {
		return nil, err
	}
	ds := base.Shuffled(newRand(s.Seed))
	n := ds.NumAnswers()
	cfg := cpaConfig(s.Seed)
	cfg.BatchSize = maxInt(32, n/40)
	online, err := core.NewModel(cfg, ds.NumItems, ds.NumWorkers, ds.NumLabels)
	if err != nil {
		return nil, err
	}
	consumed := 0
	step := 0
	for _, b := range ds.Batches(cfg.BatchSize) {
		if err := online.PartialFit(b.Answers); err != nil {
			return nil, err
		}
		consumed += len(b.Answers)
		for step < 10 && consumed >= (step+1)*n/10 {
			step++
			arrival := step * 10
			snap := online.Clone()
			snap.FinalizeOnline()
			onPred, err := snap.Predict()
			if err != nil {
				return nil, err
			}
			onPR, err := metrics.Evaluate(ds, onPred)
			if err != nil {
				return nil, err
			}
			prefix := ds.Prefix(consumed)
			offPR, err := evaluate(core.NewAggregator(cpaConfig(s.Seed)), prefix)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, []string{
				fmt.Sprintf("%d", arrival),
				f3(onPR.Precision), f3(offPR.Precision),
				f3(onPR.Recall), f3(offPR.Recall),
			})
		}
	}
	return res, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RunFig7Runtime reproduces Fig. 7: inference+prediction wall time versus
// the number of answers for offline VI, online SVI (1, 4 and 16 shards),
// and the MV/EM/cBCC baselines, on the §5.1 large-scale synthetic workload
// (10 labels, paper: 10⁴ items × 10⁴ workers, 100K–1M answers; sizes scale
// with DataScale).
func RunFig7Runtime(s Settings) (*Result, error) {
	res := &Result{
		ID:      "fig7",
		Title:   "Runtime of inference and prediction (paper Fig. 7)",
		Headers: []string{"answers", "MV", "EM", "cBCC", "offline", "online", "online-4", "online-16"},
		Notes:   "seconds; online uses batches of 100 answers as in the paper; goroutine shards substitute for Spark executors (DESIGN.md D5)",
	}
	items := maxInt(200, int(10000*s.DataScale))
	workers := maxInt(200, int(10000*s.DataScale))
	answersTargets := []int{
		maxInt(2000, int(100000*s.DataScale)),
		maxInt(4000, int(250000*s.DataScale)),
		maxInt(8000, int(500000*s.DataScale)),
		maxInt(16000, int(1000000*s.DataScale)),
	}
	for _, target := range answersTargets {
		perItem := maxInt(2, target/items)
		if perItem > workers {
			perItem = workers
		}
		cfg := simulate.Config{
			Name: "fig7", Items: items, Workers: workers, Labels: 10,
			AnswersPerItem: perItem, LabelClusters: 3, Correlation: 0.8,
			TruthMean: 3, TruthMax: 6, Candidates: 10,
			Mix:  simulate.PaperSimulationMix(),
			Seed: s.Seed,
		}
		ds, _, err := simulate.Generate(cfg)
		if err != nil {
			return nil, err
		}
		mkCPA := func(parallelism int, online bool) baselines.Aggregator {
			c := core.Config{Seed: s.Seed, MaxCommunities: 5, MaxClusters: 10,
				BatchSize: 100, Parallelism: parallelism, MaxIter: 20}
			if online {
				return core.NewOnlineAggregator(c)
			}
			return core.NewAggregator(c)
		}
		methods := []baselines.Aggregator{
			baselines.NewMajorityVote(),
			baselines.NewDawidSkene(),
			baselines.NewCBCC(),
			mkCPA(1, false),
			mkCPA(1, true),
			mkCPA(4, true),
			mkCPA(16, true),
		}
		row := []string{fmt.Sprintf("%d", ds.NumAnswers())}
		for _, agg := range methods {
			_, elapsed, err := timedEvaluate(agg, ds)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.3f", elapsed.Seconds()))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// RunFig8Ablation reproduces Fig. 8: CPA against its No-Z (no worker
// communities) and No-L (no item clusters) ablations on all five datasets.
// Following the paper, No-L uses the exhaustive subset search where the
// label space permits (movie) and is otherwise approximated greedily.
func RunFig8Ablation(s Settings) (*Result, error) {
	res := &Result{
		ID:      "fig8",
		Title:   "Effects of model aspects (paper Fig. 8)",
		Headers: []string{"dataset", "CPA P", "No Z P", "No L P", "CPA R", "No Z R", "No L R"},
		Notes:   "paper expects CPA ≥ both ablations; in our hierarchical worker model communities act as priors over per-worker evidence, so with rich per-worker data the three variants converge (see BenchmarkAblationSparsity for the sparse regime, where every CPA variant beats cBCC)",
	}
	for _, name := range datasets.Names() {
		ds, err := profileDataset(name, s, s.Seed)
		if err != nil {
			return nil, err
		}
		noL := cpaConfig(s.Seed)
		if name == "movie" {
			noL.ExhaustivePrediction = true
		}
		aggs := []baselines.Aggregator{
			core.NewAggregator(cpaConfig(s.Seed)),
			core.NewNoZAggregator(cpaConfig(s.Seed)),
			core.NewNoLAggregator(noL),
		}
		prs := make([]metrics.PR, len(aggs))
		for i, agg := range aggs {
			pr, err := evaluate(agg, ds)
			if err != nil {
				return nil, err
			}
			prs[i] = pr
		}
		res.Rows = append(res.Rows, []string{
			name,
			f3(prs[0].Precision), f3(prs[1].Precision), f3(prs[2].Precision),
			f3(prs[0].Recall), f3(prs[1].Recall), f3(prs[2].Recall),
		})
	}
	return res, nil
}

// RunFig9Communities reproduces Fig. 9: per-label worker communities in the
// image and entity datasets — each worker a (specificity, sensitivity)
// point, clustered with silhouette-selected k-means.
func RunFig9Communities(s Settings) (*Result, error) {
	res := &Result{
		ID:      "fig9",
		Title:   "Worker communities per label (paper Fig. 9)",
		Headers: []string{"dataset", "label", "workers", "communities", "silhouette"},
		Notes:   "the paper's #sky/#birds and #product/#facility become the two most frequent truth labels of each simulated dataset",
	}
	var scatters string
	for _, name := range []string{"image", "entity"} {
		ds, err := profileDataset(name, s, s.Seed)
		if err != nil {
			return nil, err
		}
		for _, label := range topTruthLabels(ds, 2) {
			lc, err := community.DetectForLabel(ds, label, 2, 5, s.Seed)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, []string{
				name, fmt.Sprintf("%d", label), fmt.Sprintf("%d", len(lc.Points)),
				fmt.Sprintf("%d", lc.Communities), fmt.Sprintf("%.2f", lc.Silhouette),
			})
			scatters += fmt.Sprintf("[%s]\n%s", name, community.RenderScatter(lc, 48, 12))
		}
	}
	res.Extra = scatters
	return res, nil
}

// topTruthLabels returns the n most frequent ground-truth labels.
func topTruthLabels(ds *answers.Dataset, n int) []int {
	counts := make([]int, ds.NumLabels)
	for i := 0; i < ds.NumItems; i++ {
		if truth, ok := ds.Truth(i); ok {
			truth.Range(func(c int) bool {
				counts[c]++
				return true
			})
		}
	}
	out := make([]int, 0, n)
	for len(out) < n {
		best, bestN := -1, 0
		for c, v := range counts {
			if v > bestN {
				best, bestN = c, v
			}
		}
		if best < 0 {
			break
		}
		out = append(out, best)
		counts[best] = 0
	}
	return out
}

// RunFig10WorkerTypes reproduces Appendix A's Fig. 10: the simulated worker
// population in the (specificity, sensitivity) plane, summarised per
// archetype.
func RunFig10WorkerTypes(s Settings) (*Result, error) {
	res := &Result{
		ID:      "fig10",
		Title:   "Characterisation of worker types (paper Fig. 10, Appendix A)",
		Headers: []string{"type", "workers", "mean sensitivity", "mean specificity"},
	}
	ds, meta, err := datasets.Load("image", s.DataScale, s.Seed)
	if err != nil {
		return nil, err
	}
	quality := metrics.OverallWorkerQuality(ds)
	bySens := map[simulate.WorkerType][]float64{}
	bySpec := map[simulate.WorkerType][]float64{}
	for _, q := range quality {
		wt := meta.WorkerTypes[q.Worker]
		bySens[wt] = append(bySens[wt], q.Sensitivity)
		bySpec[wt] = append(bySpec[wt], q.Specificity)
	}
	for _, wt := range []simulate.WorkerType{simulate.Reliable, simulate.Normal, simulate.Sloppy,
		simulate.UniformSpammer, simulate.RandomSpammer} {
		if len(bySens[wt]) == 0 {
			continue
		}
		res.Rows = append(res.Rows, []string{
			wt.String(), fmt.Sprintf("%d", len(bySens[wt])),
			f3(metrics.Summarize(bySens[wt]).Mean), f3(metrics.Summarize(bySpec[wt]).Mean),
		})
	}
	lc, err := community.DetectOverall(ds, 2, 6, s.Seed)
	if err != nil {
		return nil, err
	}
	res.Extra = community.RenderScatter(lc, 48, 12)
	res.Notes = "scatter digits are detected communities, not archetypes; archetype means above verify the two-coin separation"
	return res, nil
}
