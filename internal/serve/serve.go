// Package serve is the consensus-serving subsystem behind cmd/cpaserve: a
// long-running, multi-tenant service that ingests crowd answer streams and
// serves always-fresh consensus queries concurrently.
//
// Architecture (DESIGN.md §6):
//
//   - Registry: one CPA job per dataset/tenant, each owning a core.Model.
//   - Ingestion: answers POSTed to a job are validated, appended to an
//     append-only JSONL journal, and pushed onto a bounded in-memory queue.
//     A per-job background fitter drains the queue into mini-batches and
//     advances the model with the single-pass SVI PartialFit (paper
//     Algorithm 2) — the model is only ever touched by its fitter goroutine.
//   - Read path: after every fit round the fitter publishes an immutable
//     consensus Snapshot behind an atomic pointer. Reads never contend with
//     fitting: GET /consensus is a pointer load plus JSON encoding.
//   - Crash recovery: the journal records every ingested answer and a fit
//     marker per mini-batch; the model posterior is checkpointed to gob
//     (core.Model.Save) every few rounds. On restart the checkpoint is
//     loaded and the journal suffix replayed with the original batch
//     boundaries, reproducing the pre-crash posterior bit-for-bit up to the
//     last flushed marker.
package serve

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"cpa/internal/core"
)

// Errors reported by the registry and jobs. HTTP handlers map them to
// status codes (ErrNotFound → 404, ErrExists → 409, ErrQueueFull → 429,
// ErrClosed → 503, ErrTooLarge → 413, validation → 400).
var (
	ErrNotFound  = errors.New("serve: job not found")
	ErrExists    = errors.New("serve: job already exists")
	ErrQueueFull = errors.New("serve: ingestion queue full")
	ErrClosed    = errors.New("serve: job closed")
	ErrInvalid   = errors.New("serve: invalid request")
	ErrTooLarge  = errors.New("serve: request body too large")
	// ErrTruncated means a requested journal offset predates the truncated
	// prefix (HTTP 410): the reader must re-handshake from the base — fetch
	// the base checkpoint, then tail from the base offset.
	ErrTruncated = errors.New("serve: offset predates truncated journal prefix")
)

// Config tunes the serving subsystem. The zero value is usable: an
// ephemeral (journal-less, non-recoverable) in-memory service with default
// queue and checkpoint settings.
type Config struct {
	// Dir is the data directory (one subdirectory per job under Dir/jobs).
	// Empty disables persistence: no journal, no checkpoints, no recovery.
	Dir string

	// QueueLimit bounds the per-job in-memory answer queue; ingestion
	// beyond it is rejected with ErrQueueFull (backpressure). Default 65536.
	QueueLimit int

	// SaveEvery checkpoints the model posterior to gob every N fit rounds
	// (plus once on clean shutdown). Default 16.
	SaveEvery int

	// BatchWait is how long the fitter waits for a mini-batch to fill to
	// the model's BatchSize before fitting a partial batch. Default 100ms.
	BatchWait time.Duration

	// SyncJournal fsyncs the journal after every ingested batch. Appends
	// are always flushed to the OS (surviving process death); Sync
	// additionally survives power loss at a latency cost. Default false.
	SyncJournal bool

	// TruncateJournal enables checkpoint-anchored journal truncation
	// (DESIGN.md §12): after a checkpoint written at a caught-up (full)
	// publication, the journal prefix the checkpoint covers is dropped
	// behind a base header and the anchoring checkpoint is retained as
	// base.gob, bounding the journal at roughly the bytes ingested between
	// checkpoints. Recovery, replay, and replication coordinates are
	// unchanged (global offsets stay continuous); followers of a truncated
	// source re-handshake from the base. Default false: append-only forever.
	TruncateJournal bool

	// TruncateMin is the minimum droppable prefix, in bytes, before a
	// truncation rewrite is worth its copy cost. Default 64KiB (with
	// TruncateJournal set).
	TruncateMin int64

	// AutoTune enables the per-job USL capacity tuner (DESIGN.md §13): the
	// fitter samples its own round throughput, fits X(n) = γn/(1+α(n−1)+βn(n−1))
	// per knob, and steers the job's Parallelism and mini-batch size toward
	// the measured knee — one ladder rung per adjustment, between rounds
	// only, journaled as a replay-inert annotation. Default false.
	AutoTune bool

	// AutoTuneWindow is how many fit rounds one tuner measurement window
	// spans (throughput is averaged across the window before it becomes an
	// observation). Default 8.
	AutoTuneWindow int

	// AutoTuneMaxParallelism caps the tuner's Parallelism ladder. Default
	// runtime.GOMAXPROCS(0) — steering past the core count only ever adds
	// coherence cost.
	AutoTuneMaxParallelism int
}

func (c Config) withDefaults() Config {
	if c.QueueLimit == 0 {
		c.QueueLimit = 65536
	}
	if c.SaveEvery == 0 {
		c.SaveEvery = 16
	}
	if c.BatchWait == 0 {
		c.BatchWait = 100 * time.Millisecond
	}
	if c.TruncateJournal && c.TruncateMin == 0 {
		c.TruncateMin = 64 << 10
	}
	if c.AutoTuneWindow == 0 {
		c.AutoTuneWindow = 8
	}
	if c.AutoTuneMaxParallelism == 0 {
		c.AutoTuneMaxParallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// JobSpec declares one consensus job: its identity, problem dimensions, and
// model configuration. It is persisted as job.json in the job's directory.
type JobSpec struct {
	ID      string      `json:"id"`
	Items   int         `json:"items"`
	Workers int         `json:"workers"`
	Labels  int         `json:"labels"`
	Model   core.Config `json:"model"`
}

func (s JobSpec) validate() error {
	if err := validateJobID(s.ID); err != nil {
		return err
	}
	if s.Items <= 0 || s.Workers <= 0 || s.Labels <= 0 {
		return fmt.Errorf("%w: job dimensions %d/%d/%d", ErrInvalid, s.Items, s.Workers, s.Labels)
	}
	return nil
}

// validateJobID checks a job id in isolation. The character set doubles as
// path-safety: every id maps to a directory name with no separators or dot
// segments, so id-addressed disk operations (recovery, purge) cannot escape
// the jobs directory.
func validateJobID(id string) error {
	if id == "" || len(id) > 128 {
		return fmt.Errorf("%w: job id must be 1-128 characters", ErrInvalid)
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("%w: job id %q may only contain [A-Za-z0-9._-]", ErrInvalid, id)
		}
	}
	if id == "." || id == ".." {
		return fmt.Errorf("%w: job id %q is reserved", ErrInvalid, id)
	}
	return nil
}
