package serve

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"cpa/internal/answers"
	"cpa/internal/core"
)

// Applier is the follower half of journal-shipping replication: it applies
// a primary's journal record by record — answers buffer as pending, fit
// markers advance the model with the recorded mini-batch boundary and
// publish with the recorded mode, restart re-anchors republish full — which
// is exactly the computation the primary's fitter performed. A follower
// that has applied the same journal prefix therefore holds bit-identical
// model state and a bit-identical snapshot chain (modulo CreatedAt
// timestamps), so consensus reads can be served from any caught-up replica.
//
// Apply is single-goroutine (the tail loop); Snapshot and the counters are
// safe for concurrent readers.
type Applier struct {
	spec    JobSpec
	model   *core.Model
	pub     *core.Publisher
	pending []answers.Answer

	snap     atomic.Pointer[Snapshot]
	ingested atomic.Int64 // answer records applied
	fitted   atomic.Int64 // answers consumed by fit markers
	rounds   atomic.Int64 // fit markers applied
}

// NewApplier builds a cold applier for a job spec (as served by
// GET /v1/jobs/{id}/spec — the effective, defaults-filled form, so the
// follower's model is configured exactly like the primary's).
func NewApplier(spec JobSpec) (*Applier, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	model, err := core.NewModel(spec.Model, spec.Items, spec.Workers, spec.Labels)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	spec.Model = model.Config()
	ap := &Applier{spec: spec, model: model, pub: core.NewPublisher(model)}
	ap.snap.Store(emptySnapshot(spec, time.Now()))
	return ap, nil
}

// NewApplierFrom builds an applier seeded from a model checkpoint — the
// follower half of the truncation handshake. When a primary answers a tail
// request with 410 Gone (the requested prefix was compacted away), the
// follower fetches the base checkpoint (/checkpoint?base=1) and rebuilds its
// applier from it; replaying the retained journal suffix on top then yields
// exactly the state a from-zero replay of the untruncated journal would
// have, because the checkpoint is the primary's own model at the truncation
// boundary. The progress counters are seeded from the checkpoint so the
// follower's stats stay continuous in global (never-truncated) coordinates.
func NewApplierFrom(spec JobSpec, checkpoint io.Reader) (*Applier, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	model, err := core.Load(checkpoint)
	if err != nil {
		return nil, fmt.Errorf("%w: loading seed checkpoint: %v", ErrInvalid, err)
	}
	st := model.Stats()
	if st.Items != spec.Items || st.Workers != spec.Workers || st.Labels != spec.Labels {
		return nil, fmt.Errorf("%w: seed checkpoint dimensions (%d items, %d workers, %d labels) do not match spec (%d, %d, %d)",
			ErrInvalid, st.Items, st.Workers, st.Labels, spec.Items, spec.Workers, spec.Labels)
	}
	spec.Model = model.Config()
	ap := &Applier{spec: spec, model: model, pub: core.NewPublisher(model)}
	ap.ingested.Store(int64(model.TotalIngested()))
	ap.fitted.Store(int64(model.TotalIngested()))
	ap.rounds.Store(int64(model.BatchRounds()))
	ap.snap.Store(emptySnapshot(spec, time.Now()))
	if model.Fitted() {
		// Anchor the publisher with a full publication, exactly as the
		// primary's own recovery does: every later incremental round refreshes
		// against a complete view.
		if err := ap.publish(true); err != nil {
			return nil, err
		}
	}
	return ap, nil
}

// Spec returns the applier's effective job spec.
func (ap *Applier) Spec() JobSpec { return ap.spec }

// Apply consumes one decoded journal record in order.
func (ap *Applier) Apply(e JournalEntry) error {
	switch {
	case e.Answer != nil:
		if err := ap.spec.validateAnswer(*e.Answer); err != nil {
			return err
		}
		ap.pending = append(ap.pending, *e.Answer)
		ap.ingested.Add(1)
	case e.FitN > 0:
		if e.FitN > len(ap.pending) {
			return fmt.Errorf("%w: fit marker n=%d with %d pending answers", ErrInvalid, e.FitN, len(ap.pending))
		}
		if err := ap.model.PartialFit(ap.pending[:e.FitN]); err != nil {
			return err
		}
		ap.pending = ap.pending[e.FitN:]
		ap.fitted.Add(int64(e.FitN))
		ap.rounds.Add(1)
		return ap.publish(e.FitFull)
	case e.Restart:
		// The primary recovered and re-anchored its cold publisher with a
		// full publication; mirror it so the incremental chain stays in
		// lockstep.
		if ap.model.Fitted() {
			return ap.publish(true)
		}
	case e.Base != nil:
		// The base header of a truncated journal, served ahead of the
		// retained suffix on a ?base=1 handshake. It carries no state of its
		// own — the seed checkpoint already holds everything the dropped
		// prefix contributed — but it must agree with that checkpoint:
		// applying a suffix on top of the wrong seed would silently diverge.
		if got, want := int64(ap.model.TotalIngested()), e.Base.Ans; got != want {
			return fmt.Errorf("%w: journal base covers %d answers but seed checkpoint holds %d", ErrInvalid, want, got)
		}
		if got, want := int64(ap.model.BatchRounds()), e.Base.Fits; got != want {
			return fmt.Errorf("%w: journal base covers %d fit rounds but seed checkpoint holds %d", ErrInvalid, want, got)
		}
	}
	return nil
}

func (ap *Applier) publish(full bool) error {
	view, dirty, err := ap.pub.Publish(full)
	if err != nil {
		return fmt.Errorf("serve: follower publishing snapshot: %w", err)
	}
	ap.snap.Store(nextSnapshot(ap.spec.ID, ap.snap.Load(), view, dirty, time.Now()))
	return nil
}

// Snapshot returns the follower's latest replicated consensus snapshot.
func (ap *Applier) Snapshot() *Snapshot { return ap.snap.Load() }

// Counters reports the applier's replication progress: answer records
// applied, answers consumed by fit markers, and fit rounds replayed.
func (ap *Applier) Counters() (ingested, fitted, rounds int64) {
	return ap.ingested.Load(), ap.fitted.Load(), ap.rounds.Load()
}
