package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"cpa/internal/answers"
	"cpa/internal/core"
)

// Registry is the multi-tenant job table: one CPA job per dataset/tenant.
// With a persistent Config.Dir, Open recovers every job found on disk
// (checkpoint load + journal replay) before returning.
type Registry struct {
	cfg Config

	mu   sync.RWMutex
	jobs map[string]*Job
}

// Open creates a registry and recovers any jobs persisted under
// cfg.Dir/jobs. With an empty Dir the registry is fully in-memory.
func Open(cfg Config) (*Registry, error) {
	cfg = cfg.withDefaults()
	r := &Registry{cfg: cfg, jobs: make(map[string]*Job)}
	if cfg.Dir == "" {
		return r, nil
	}
	jobsDir := filepath.Join(cfg.Dir, "jobs")
	if err := os.MkdirAll(jobsDir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: creating data dir: %w", err)
	}
	entries, err := os.ReadDir(jobsDir)
	if err != nil {
		return nil, fmt.Errorf("serve: scanning data dir: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		// A directory without a spec is an aborted Create (the journal is
		// only opened after job.json lands, so no durable data can exist);
		// skip it rather than poisoning recovery of every healthy tenant.
		if _, err := os.Stat(filepath.Join(jobsDir, e.Name(), specFile)); os.IsNotExist(err) {
			continue
		}
		j, err := openExistingJob(filepath.Join(jobsDir, e.Name()), cfg)
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("serve: recovering job %q: %w", e.Name(), err)
		}
		r.jobs[j.ID()] = j
	}
	return r, nil
}

// Create registers a new job and starts its fitter. The spec's model config
// is validated by core and persisted in its effective (defaults-filled)
// form, so a recovered job always rebuilds the exact same model.
func (r *Registry) Create(spec JobSpec) (*Job, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	model, err := core.NewModel(spec.Model, spec.Items, spec.Workers, spec.Labels)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	spec.Model = model.Config()

	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.jobs[spec.ID]; ok {
		return nil, fmt.Errorf("%w: %q", ErrExists, spec.ID)
	}
	dir := ""
	var jr *journal
	if r.cfg.Dir != "" {
		dir = filepath.Join(r.cfg.Dir, "jobs", spec.ID)
		// Refuse to adopt a directory with prior durable state (spec,
		// journal or checkpoint): appending a new job's answers to a
		// retained journal would fold the old tenant's data into the new
		// consensus on the next recovery. Deleted jobs keep their state on
		// disk by contract — restart recovers them; remove the directory
		// to truly discard one. A bare directory (an aborted Create) holds
		// nothing durable and is adopted.
		if retained, err := hasJobState(dir); err != nil {
			return nil, fmt.Errorf("serve: probing job dir: %w", err)
		} else if retained {
			return nil, fmt.Errorf("%w: %q has retained on-disk state at %s (restart recovers it; remove the directory to discard)",
				ErrExists, spec.ID, dir)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: creating job dir: %w", err)
		}
		// Any failure past this point removes the directory again: a
		// half-created job must not 409 future Creates or trip recovery.
		raw, err := json.MarshalIndent(spec, "", "  ")
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		if err := writeFileAtomic(filepath.Join(dir, specFile), raw); err != nil {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("serve: writing job spec: %w", err)
		}
		if jr, err = openJournal(filepath.Join(dir, journalFile), r.cfg.SyncJournal, 0, JournalBase{}, 0); err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
	}
	j := newJob(spec, model, dir, r.cfg)
	j.journal = jr
	if jr != nil {
		jr.stats = &j.ingestHist
	}
	j.start()
	r.jobs[spec.ID] = j
	return j, nil
}

// AdoptJob opens a job whose directory was materialised out of band — a
// cluster follower promoting its shipped journal (plus spec and optional
// checkpoint) into a live, fitting job. It runs the standard recovery path
// (checkpoint load + journal suffix replay, torn tail truncated), so the
// adopted job's state is bit-for-bit what replaying the shipped journal
// yields. Requires a persistent registry and an unregistered id.
func (r *Registry) AdoptJob(id string) (*Job, error) {
	if r.cfg.Dir == "" {
		return nil, fmt.Errorf("%w: adopting a job requires a persistent registry", ErrInvalid)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.jobs[id]; ok {
		return nil, fmt.Errorf("%w: %q", ErrExists, id)
	}
	j, err := openExistingJob(filepath.Join(r.cfg.Dir, "jobs", id), r.cfg)
	if err != nil {
		return nil, fmt.Errorf("serve: adopting job %q: %w", id, err)
	}
	r.jobs[id] = j
	return j, nil
}

// Get returns a job by id.
func (r *Registry) Get(id string) (*Job, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	j, ok := r.jobs[id]
	return j, ok
}

// Jobs returns every registered job, ordered by id.
func (r *Registry) Jobs() []*Job {
	r.mu.RLock()
	out := make([]*Job, 0, len(r.jobs))
	for _, j := range r.jobs {
		out = append(out, j)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(a, b int) bool { return out[a].ID() < out[b].ID() })
	return out
}

// Delete closes a job (draining its queue and checkpointing) and removes it
// from the registry. Its on-disk state is retained — restart recovers it;
// Purge discards it.
func (r *Registry) Delete(id string) error {
	r.mu.Lock()
	j, ok := r.jobs[id]
	if ok {
		delete(r.jobs, id)
	}
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return j.Close()
}

// Purge is Delete plus storage GC: it closes the job (if registered) and
// removes its directory — journal, checkpoints, spec, epoch record — so the
// id is immediately reusable and the tenant's disk is reclaimed. It also
// purges the retained state of an already-deleted job (the state that
// otherwise 409s a Create reusing the id). Irreversible.
func (r *Registry) Purge(id string) error {
	if err := validateJobID(id); err != nil {
		return err
	}
	r.mu.Lock()
	j, ok := r.jobs[id]
	if ok {
		delete(r.jobs, id)
	}
	r.mu.Unlock()
	var err error
	if ok {
		err = j.Close()
	}
	if r.cfg.Dir == "" {
		if !ok {
			return fmt.Errorf("%w: %q", ErrNotFound, id)
		}
		return err
	}
	dir := filepath.Join(r.cfg.Dir, "jobs", id)
	if !ok {
		retained, serr := hasJobState(dir)
		if serr != nil {
			return serr
		}
		if !retained {
			return fmt.Errorf("%w: %q", ErrNotFound, id)
		}
	}
	if rerr := os.RemoveAll(dir); err == nil {
		err = rerr
	}
	return err
}

// Close shuts every job down cleanly (drain, checkpoint, close journal).
func (r *Registry) Close() error {
	r.mu.Lock()
	jobs := make([]*Job, 0, len(r.jobs))
	for _, j := range r.jobs {
		jobs = append(jobs, j)
	}
	r.jobs = make(map[string]*Job)
	r.mu.Unlock()
	var first error
	for _, j := range jobs {
		if err := j.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// CrashAll simulates a hard kill (kill -9) of every job: fitters stop
// without draining their queues, no final checkpoint is written, and
// journals are dropped without a clean close (appends are already flushed
// per batch, exactly as they would be in a real crash). The registry is
// unusable afterwards; Open the same data directory to recover. Exported
// for the loadgen chaos harness and the recovery tests.
func (r *Registry) CrashAll() {
	for _, j := range r.Jobs() {
		j.crash()
	}
}

// hasJobState reports whether a job directory holds durable state (spec,
// journal or checkpoint). A missing directory, or a bare one left by an
// aborted Create, has none.
func hasJobState(dir string) (bool, error) {
	for _, name := range []string{specFile, journalFile, modelFile, baseFile} {
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			return true, nil
		} else if !os.IsNotExist(err) {
			return false, err
		}
	}
	return false, nil
}

// writeFileAtomic lands a file via tmp + rename so a crash mid-write never
// leaves a torn spec for recovery to trip over.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// openExistingJob recovers one job from its directory: load the spec,
// restore the latest checkpoint (or a fresh model), replay the journal
// suffix with the original mini-batch boundaries, requeue any answers that
// were journaled but never fitted, and start the fitter.
func openExistingJob(dir string, cfg Config) (*Job, error) {
	raw, err := os.ReadFile(filepath.Join(dir, specFile))
	if err != nil {
		return nil, fmt.Errorf("reading spec: %w", err)
	}
	var spec JobSpec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return nil, fmt.Errorf("decoding spec: %w", err)
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}

	// Restore the newest checkpoint: model.gob when present, else the
	// truncation anchor base.gob (a follower of a truncated source stages
	// only the latter), else a fresh model. A truncated journal with no
	// checkpoint at or past its base is unrecoverable — the skip arithmetic
	// below rejects it, since the dropped prefix cannot be replayed.
	var model *core.Model
	loaded := false
	for _, name := range []string{modelFile, baseFile} {
		f, err := os.Open(filepath.Join(dir, name))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("opening checkpoint: %w", err)
		}
		model, err = core.Load(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("loading checkpoint %s: %w", name, err)
		}
		loaded = true
		break
	}
	if !loaded {
		if model, err = core.NewModel(spec.Model, spec.Items, spec.Workers, spec.Labels); err != nil {
			return nil, err
		}
	}

	j := newJob(spec, model, dir, cfg)
	// A deposed primary that crashes and recovers must stay deposed: the
	// cluster has moved ownership on, and un-fencing on restart would let it
	// ack writes behind the new owner's back.
	if j.epoch, err = loadEpochState(dir); err != nil {
		return nil, err
	}

	// Replay the journal suffix. In global coordinates the checkpoint covers
	// the first TotalIngested() answer lines and the first BatchRounds() fit
	// markers; a truncated journal's base header states how many of each its
	// dropped prefix held, so the file-local skip counts are the difference.
	// Everything after is replayed with the recorded batch boundaries so the
	// recovered posterior matches the pre-crash one exactly. This works for
	// any checkpoint at or past the base — including the window where a kill
	// landed after base.gob was copied but before the journal rewrite
	// committed (untruncated journal, checkpoint ahead of a stale base.gob).
	checkpointAns := int64(model.TotalIngested())
	skipAns, skipFit := checkpointAns, int64(model.BatchRounds())
	coveredBySkipped := int64(0)
	var pending []answers.Answer
	var base JournalBase
	var hdrLen int64
	firstLine := true
	journalPath := filepath.Join(dir, journalFile)
	// A kill between a truncation's temp-file write and its rename can leave
	// the temp file behind; it was never the journal, so drop it.
	os.Remove(journalPath + ".tmp")
	durableOff, durableRecs, err := replayJournal(journalPath, func(line journalLine, size int64) error {
		isFirst := firstLine
		firstLine = false
		switch line.Op {
		case opAnswer:
			if line.Ans == nil {
				return fmt.Errorf("%w: answer line without payload", ErrInvalid)
			}
			if skipAns > 0 {
				skipAns--
				return nil
			}
			a := line.Ans.Answer()
			if err := j.validate(a); err != nil {
				return err
			}
			pending = append(pending, a)
		case opFit:
			if skipFit > 0 {
				skipFit--
				coveredBySkipped += int64(line.N)
				return nil
			}
			if line.N <= 0 || line.N > len(pending) {
				return fmt.Errorf("%w: fit marker n=%d with %d pending answers", ErrInvalid, line.N, len(pending))
			}
			if err := model.PartialFit(pending[:line.N]); err != nil {
				return err
			}
			pending = pending[line.N:]
		case opRestart:
			// A previous recovery's re-anchor: only the snapshot publisher
			// cares (replay mirrors it); the model replay is unaffected.
		case opTune:
			// An auto-tune annotation. Deliberately not re-applied: the
			// settings it records changed only which batch boundaries later
			// fit markers laid down, and those markers are replayed verbatim.
			// A recovered job resumes at its checkpoint's (tuned) settings
			// and the tuner, if enabled, re-learns from there.
		case opBase:
			if line.Base == nil {
				return fmt.Errorf("%w: base line without payload", ErrInvalid)
			}
			if !isFirst {
				return fmt.Errorf("%w: base record past the journal header", ErrInvalid)
			}
			base, hdrLen = *line.Base, size
			skipAns -= base.Ans
			skipFit -= base.Fits
			coveredBySkipped += base.Covered
			if skipAns < 0 || skipFit < 0 {
				return fmt.Errorf("%w: checkpoint (%d answers, %d markers) behind journal base (%d, %d): truncated prefix is unreplayable",
					ErrInvalid, checkpointAns, model.BatchRounds(), base.Ans, base.Fits)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if skipAns > 0 || skipFit > 0 || coveredBySkipped != checkpointAns {
		return nil, fmt.Errorf("%w: journal shorter than checkpoint (missing %d answers, %d markers; markers covered %d of %d)",
			ErrInvalid, skipAns, skipFit, coveredBySkipped, checkpointAns)
	}

	j.ingested.Store(int64(model.TotalIngested()) + int64(len(pending)))
	j.fitted.Store(int64(model.TotalIngested()))
	j.rounds.Store(int64(model.BatchRounds()))
	// Truncate any torn tail (a crash mid-append, or a shipped journal whose
	// stream died mid-record) back to the durable offset before reopening
	// for append: a new record must never concatenate onto a half-written
	// one, which the next recovery would reject as mid-file corruption.
	if st, serr := os.Stat(journalPath); serr == nil && st.Size() > durableOff {
		if terr := os.Truncate(journalPath, durableOff); terr != nil {
			return nil, fmt.Errorf("truncating torn journal tail: %w", terr)
		}
	}
	recs := durableRecs
	if hdrLen != 0 {
		recs-- // the base header line is not a journal record
	}
	if j.journal, err = openJournal(journalPath, cfg.SyncJournal, recs, base, hdrLen); err != nil {
		return nil, err
	}
	j.journal.stats = &j.ingestHist
	if model.Fitted() {
		// Re-anchor: the recovered publisher starts cold, so the first
		// publication is a full one. The restart marker records that for
		// replay — without it, an offline replay would carry incremental
		// snapshot state across the crash that the server no longer has.
		if err := j.journal.appendRestart(); err != nil {
			j.journal.Close()
			return nil, err
		}
		if err := j.publish(true); err != nil {
			j.journal.Close()
			return nil, err
		}
	}
	j.enqueueRecovered(pending)
	j.start()
	return j, nil
}
