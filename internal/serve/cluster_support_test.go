package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"cpa/internal/core"
)

// TestJournalOffsetsInStats pins the satellite contract: Job.Stats exposes
// the durable journal (byte, record) position, and both match the on-disk
// file exactly — offsets are the replication coordinates, so "durable"
// must mean "bytes any reader of the file can already see".
func TestJournalOffsetsInStats(t *testing.T) {
	dir := t.TempDir()
	ds := testStream(t, 0.02, 7)
	reg := mustOpen(t, Config{Dir: dir, BatchWait: time.Millisecond})
	defer reg.Close()
	job, err := reg.Create(JobSpec{
		ID: "off", Items: ds.NumItems, Workers: ds.NumWorkers, Labels: ds.NumLabels,
		Model: core.Config{Seed: 7, BatchSize: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	all := ds.Answers()
	ingestAll(t, job, all, 32)
	waitSnapshot(t, job, len(all))

	st := job.Stats()
	if st.JournalBytes == 0 || st.JournalRecords == 0 {
		t.Fatalf("expected nonzero journal offsets, got bytes=%d recs=%d", st.JournalBytes, st.JournalRecords)
	}
	raw, err := os.ReadFile(JournalPath(dir, "off"))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(raw)) != st.JournalBytes {
		t.Fatalf("stats journal_bytes=%d, file has %d", st.JournalBytes, len(raw))
	}
	if lines := int64(bytes.Count(raw, []byte("\n"))); lines != st.JournalRecords {
		t.Fatalf("stats journal_records=%d, file has %d lines", st.JournalRecords, lines)
	}
	// Record count = answers + fit markers (no restart: never recovered).
	if want := int64(len(all)) + st.FitRounds; st.JournalRecords != want {
		t.Fatalf("journal_records=%d, want answers+rounds=%d", st.JournalRecords, want)
	}
}

// TestEpochFencing covers the ownership-epoch state machine: a deposed job
// rejects all ingestion (stamped or not) with ErrFenced, mismatched stamps
// are fenced even on a live primary, epochs never regress, and the fence
// survives crash recovery — a deposed primary that restarts stays deposed.
func TestEpochFencing(t *testing.T) {
	dir := t.TempDir()
	ds := testStream(t, 0.02, 3)
	reg := mustOpen(t, Config{Dir: dir, BatchWait: time.Millisecond})
	job, err := reg.Create(JobSpec{
		ID: "ep", Items: ds.NumItems, Workers: ds.NumWorkers, Labels: ds.NumLabels,
		Model: core.Config{Seed: 3, BatchSize: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	all := ds.Answers()
	if err := job.IngestAt(all[:8], 0); err != nil {
		t.Fatalf("stamped ingest at current epoch: %v", err)
	}
	if err := job.IngestAt(all[8:16], 3); !errors.Is(err, ErrFenced) {
		t.Fatalf("mismatched stamp: got %v, want ErrFenced", err)
	}
	if err := job.Fence(2); err != nil {
		t.Fatal(err)
	}
	if err := job.Ingest(all[8:16]); !errors.Is(err, ErrFenced) {
		t.Fatalf("unstamped ingest on deposed job: got %v, want ErrFenced", err)
	}
	if err := job.IngestAt(all[8:16], 2); !errors.Is(err, ErrFenced) {
		t.Fatalf("stamped ingest on deposed job: got %v, want ErrFenced", err)
	}
	if err := job.Promote(1); !errors.Is(err, ErrFenced) {
		t.Fatalf("epoch regression: got %v, want ErrFenced", err)
	}
	if err := job.Promote(2); err != nil {
		t.Fatal(err)
	}
	if err := job.IngestAt(all[8:16], 2); err != nil {
		t.Fatalf("ingest after promote: %v", err)
	}
	waitFitted(t, job, 16)

	// Depose again and crash: the fence must be durable.
	if err := job.Fence(5); err != nil {
		t.Fatal(err)
	}
	reg.CrashAll()
	reg2 := mustOpen(t, Config{Dir: dir, BatchWait: time.Millisecond})
	defer reg2.Close()
	job2, ok := reg2.Get("ep")
	if !ok {
		t.Fatal("job not recovered")
	}
	if !job2.Deposed() || job2.Epoch() != 5 {
		t.Fatalf("recovered epoch state = (%d, deposed=%v), want (5, true)", job2.Epoch(), job2.Deposed())
	}
	if err := job2.Ingest(all[16:24]); !errors.Is(err, ErrFenced) {
		t.Fatalf("recovered deposed job accepted ingest: %v", err)
	}
	if st := job2.Stats(); st.Epoch != 5 || !st.Deposed {
		t.Fatalf("stats epoch=(%d,%v), want (5,true)", st.Epoch, st.Deposed)
	}
}

// TestHTTPEpochFencing drives the fence through the HTTP surface: fence and
// promote endpoints, the X-CPA-Epoch ingest stamp, and the 409 mapping a
// deposed primary must answer with.
func TestHTTPEpochFencing(t *testing.T) {
	dir := t.TempDir()
	ds := testStream(t, 0.02, 9)
	reg := mustOpen(t, Config{Dir: dir, BatchWait: time.Millisecond})
	defer reg.Close()
	ts := httptest.NewServer(NewServer(reg))
	defer ts.Close()
	client := ts.Client()
	createJobHTTP(t, client, ts.URL, CreateJobRequest{
		ID: "hep", Items: ds.NumItems, Workers: ds.NumWorkers, Labels: ds.NumLabels,
		Model: core.Config{Seed: 9, BatchSize: 32},
	})
	all := ds.Answers()
	postNDJSON(t, client, ts.URL+"/v1/jobs/hep/answers", all[:8])

	postEpoch := func(action string, epoch int64, wantStatus int) {
		t.Helper()
		resp, err := client.Post(ts.URL+"/v1/jobs/hep/"+action, "application/json",
			bytes.NewReader([]byte(fmt.Sprintf(`{"epoch":%d}`, epoch))))
		if err != nil {
			t.Fatalf("POST %s: %v", action, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("POST %s epoch=%d: status %d, want %d", action, epoch, resp.StatusCode, wantStatus)
		}
	}
	postEpoch("fence", 2, http.StatusOK)

	// Deposed: plain ingestion 409s.
	var body bytes.Buffer
	body.WriteString(`{"answers":[{"i":0,"u":0,"x":[0]}]}`)
	resp, err := client.Post(ts.URL+"/v1/jobs/hep/answers", "application/json", &body)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("ingest on deposed job: status %d, want 409", resp.StatusCode)
	}

	postEpoch("promote", 1, http.StatusConflict) // regression refused
	postEpoch("promote", 2, http.StatusOK)

	// Stale epoch stamp 409s even on the live primary.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs/hep/answers",
		bytes.NewReader([]byte(`{"answers":[{"i":0,"u":0,"x":[0]}]}`)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-CPA-Epoch", "1")
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale-epoch ingest: status %d, want 409", resp.StatusCode)
	}

	// Matching stamp lands, and the ack carries the durable journal length.
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs/hep/answers",
		bytes.NewReader([]byte(`{"answers":[{"i":0,"u":0,"x":[0]}]}`)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-CPA-Epoch", "2")
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("stamped ingest: status %d, want 202", resp.StatusCode)
	}
	var ack IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.JournalBytes == 0 {
		t.Fatal("ingest ack missing journal_bytes")
	}
}

// TestJournalTailEndpoint exercises the shipping endpoint: a full fetch is
// byte-identical to the on-disk journal, offsets page through chunks, a
// request at the tail long-polls until new bytes land, and a from beyond
// the durable length is rejected.
func TestJournalTailEndpoint(t *testing.T) {
	dir := t.TempDir()
	ds := testStream(t, 0.02, 11)
	reg := mustOpen(t, Config{Dir: dir, BatchWait: time.Millisecond})
	defer reg.Close()
	ts := httptest.NewServer(NewServer(reg))
	defer ts.Close()
	client := ts.Client()
	createJobHTTP(t, client, ts.URL, CreateJobRequest{
		ID: "tail", Items: ds.NumItems, Workers: ds.NumWorkers, Labels: ds.NumLabels,
		Model: core.Config{Seed: 11, BatchSize: 32},
	})
	all := ds.Answers()
	postNDJSON(t, client, ts.URL+"/v1/jobs/tail/answers", all[:64])
	job, _ := reg.Get("tail")
	waitFitted(t, job, 64)
	waitSnapshot(t, job, 64)
	durable, _ := job.JournalOffsets()

	fetch := func(from int64, waitMS int) ([]byte, int64, int64) {
		t.Helper()
		resp, err := client.Get(fmt.Sprintf("%s/v1/jobs/tail/journal?from=%d&wait_ms=%d", ts.URL, from, waitMS))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tail from=%d: status %d", from, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		off, _ := strconv.ParseInt(resp.Header.Get("X-CPA-Journal-Off"), 10, 64)
		dur, _ := strconv.ParseInt(resp.Header.Get("X-CPA-Journal-Durable"), 10, 64)
		return body, off, dur
	}

	body, off, dur := fetch(0, 0)
	if off != durable || dur < durable {
		t.Fatalf("tail headers off=%d dur=%d, want off=%d", off, dur, durable)
	}
	raw, err := os.ReadFile(JournalPath(dir, "tail"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, raw[:durable]) {
		t.Fatalf("shipped bytes differ from journal file (%d vs %d bytes)", len(body), durable)
	}
	// Paging: a fetch from a mid-file offset returns exactly the suffix, so
	// chunked shipping reassembles the identical byte stream.
	half := durable / 2
	p2, _, _ := fetch(half, 0)
	if !bytes.Equal(p2, body[half:]) {
		t.Fatal("paged fetch does not reassemble the journal")
	}

	// Beyond-durable is a client error.
	resp, err := client.Get(fmt.Sprintf("%s/v1/jobs/tail/journal?from=%d", ts.URL, durable+999))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("from beyond durable: status %d, want 400", resp.StatusCode)
	}

	// Long-poll: a request parked at the tail returns once new bytes land.
	type tailResult struct {
		body []byte
		off  int64
	}
	got := make(chan tailResult, 1)
	go func() {
		b, o, _ := fetch(durable, 5000)
		got <- tailResult{b, o}
	}()
	time.Sleep(20 * time.Millisecond) // let the poller park
	postNDJSON(t, client, ts.URL+"/v1/jobs/tail/answers", all[64:96])
	select {
	case res := <-got:
		if len(res.body) == 0 || res.off <= durable {
			t.Fatalf("long-poll returned %d bytes, off %d (was %d)", len(res.body), res.off, durable)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("long-poll never returned after new ingestion")
	}
}

// TestTornTailEveryByteBoundary is the satellite test for follower-side
// torn tails: a shipped journal stream can end at ANY byte of the final
// record when the primary dies mid-send. For every truncation boundary
// inside the final record, recovery over the truncated file must succeed,
// treat the partial record as never-written, truncate the file back to the
// durable prefix, and converge to exactly the state a clean recovery over
// the durable prefix reaches.
func TestTornTailEveryByteBoundary(t *testing.T) {
	srcDir := t.TempDir()
	ds := testStream(t, 0.02, 13)
	reg := mustOpen(t, Config{Dir: srcDir, SaveEvery: 1 << 30, BatchWait: time.Millisecond})
	spec := JobSpec{
		ID: "torn", Items: ds.NumItems, Workers: ds.NumWorkers, Labels: ds.NumLabels,
		Model: core.Config{Seed: 13, BatchSize: 64},
	}
	if _, err := reg.Create(spec); err != nil {
		t.Fatal(err)
	}
	job, _ := reg.Get("torn")
	all := ds.Answers()
	ingestAll(t, job, all[:128], 64)
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(JournalPath(srcDir, "torn"))
	if err != nil {
		t.Fatal(err)
	}
	specRaw, err := os.ReadFile(filepath.Join(srcDir, "jobs", "torn", specFile))
	if err != nil {
		t.Fatal(err)
	}
	if raw[len(raw)-1] != '\n' {
		t.Fatal("journal does not end in a complete line")
	}
	lastStart := bytes.LastIndexByte(raw[:len(raw)-1], '\n') + 1 // 0 if single line
	durable := int64(lastStart)

	// stage builds a journal-only job dir truncated at cut and recovers it,
	// returning the quiesced snapshot.
	stage := func(t *testing.T, cut int64) *Snapshot {
		t.Helper()
		dir := t.TempDir()
		jobDir := filepath.Join(dir, "jobs", "torn")
		if err := os.MkdirAll(jobDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(jobDir, specFile), specRaw, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(jobDir, journalFile), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r := mustOpen(t, Config{Dir: dir, SaveEvery: 1 << 30, BatchWait: time.Millisecond})
		defer r.Close()
		j, ok := r.Get("torn")
		if !ok {
			t.Fatalf("cut=%d: job not recovered", cut)
		}
		// Quiesce: a cut fit marker leaves its answers pending; the
		// recovered fitter refits them (deterministically — they fit as one
		// mini-batch) before the state is comparable.
		waitFitted(t, j, j.ingested.Load())
		snap := waitSnapshot(t, j, int(j.ingested.Load()))
		// The torn fragment must be physically gone: recovery truncates to
		// the durable offset before reopening for append, then appends its
		// restart re-anchor — so the bytes at the durable offset must be
		// that fresh marker, never the partial record it would otherwise
		// have concatenated onto.
		after, err := os.ReadFile(filepath.Join(jobDir, journalFile))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(after[:durable], raw[:durable]) {
			t.Fatalf("cut=%d: durable prefix modified by recovery", cut)
		}
		if !bytes.HasPrefix(after[durable:], []byte(`{"op":"restart"}`)) {
			t.Fatalf("cut=%d: torn tail not truncated; journal continues %q", cut, after[durable:min(durable+40, int64(len(after)))])
		}
		return snap
	}

	want := stage(t, durable) // clean recovery over the durable prefix
	for cut := durable; cut < int64(len(raw)); cut++ {
		sameConsensus(t, want, stage(t, cut))
	}
}

// TestApplierMatchesPrimary pins the replication acceptance criterion at
// the unit level: feeding a primary's journal through a serve.Applier —
// exactly what a cluster follower does — reproduces the primary's
// published snapshot bit for bit at quiesce.
func TestApplierMatchesPrimary(t *testing.T) {
	dir := t.TempDir()
	ds := testStream(t, 0.04, 17)
	reg := mustOpen(t, Config{Dir: dir, BatchWait: time.Millisecond})
	defer reg.Close()
	spec := JobSpec{
		ID: "appl", Items: ds.NumItems, Workers: ds.NumWorkers, Labels: ds.NumLabels,
		Model: core.Config{Seed: 17, BatchSize: 64},
	}
	job, err := reg.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	all := ds.Answers()
	ingestAll(t, job, all, 48) // 48-chunks force interim (incremental) rounds
	primary := waitSnapshot(t, job, len(all))

	ap, err := NewApplier(job.Spec())
	if err != nil {
		t.Fatal(err)
	}
	if err := ReadJournal(JournalPath(dir, "appl"), ap.Apply); err != nil {
		t.Fatal(err)
	}
	sameConsensus(t, primary, ap.Snapshot())
	ingested, fitted, _ := ap.Counters()
	if ingested != int64(len(all)) || fitted != int64(len(all)) {
		t.Fatalf("applier counters ingested=%d fitted=%d, want %d", ingested, fitted, len(all))
	}
}
