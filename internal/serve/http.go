package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"cpa/internal/answers"
	"cpa/internal/core"
	"cpa/internal/labelset"
)

// Server exposes a Registry over HTTP.
//
//	POST   /v1/jobs                    create a job
//	GET    /v1/jobs                    list jobs (stats)
//	GET    /v1/jobs/{id}               one job's stats
//	DELETE /v1/jobs/{id}               close and unregister a job (?purge=1 also deletes its storage)
//	POST   /v1/jobs/{id}/answers      ingest answers (JSON body or NDJSON stream)
//	GET    /v1/jobs/{id}/consensus    latest consensus snapshot
//	GET    /v1/jobs/{id}/items/{item} one item's consensus
//	GET    /healthz                    liveness
//	GET    /statsz                     queue depths, fit rounds, snapshot ages,
//	                                   auto-tune fits (?workers=1 adds per-worker
//	                                   reliability trajectories; also on GET /v1/jobs/{id})
//
// Cluster-facing endpoints (consumed by internal/cluster, harmless to
// expose on a single node):
//
//	GET    /v1/jobs/{id}/journal      tail the journal from ?from=N (long-poll ?wait_ms=M)
//	GET    /v1/jobs/{id}/checkpoint   latest model checkpoint (gob)
//	GET    /v1/jobs/{id}/spec         effective job spec (defaults filled)
//	POST   /v1/jobs/{id}/fence        depose the job at {"epoch":N}
//	POST   /v1/jobs/{id}/promote      (re-)establish ownership at {"epoch":N}
type Server struct {
	reg   *Registry
	mux   *http.ServeMux
	start time.Time
}

// NewServer wraps a registry in an http.Handler.
func NewServer(reg *Registry) *Server {
	s := &Server{reg: reg, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("POST /v1/jobs", s.handleCreateJob)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStats)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleDeleteJob)
	s.mux.HandleFunc("POST /v1/jobs/{id}/answers", s.handleIngest)
	s.mux.HandleFunc("GET /v1/jobs/{id}/consensus", s.handleConsensus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/items/{item}", s.handleItem)
	s.mux.HandleFunc("GET /v1/jobs/{id}/journal", s.handleJournalTail)
	s.mux.HandleFunc("GET /v1/jobs/{id}/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("GET /v1/jobs/{id}/spec", s.handleJobSpec)
	s.mux.HandleFunc("POST /v1/jobs/{id}/fence", s.handleFence)
	s.mux.HandleFunc("POST /v1/jobs/{id}/promote", s.handlePromote)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// ---------------------------------------------------------------------------
// Wire types
// ---------------------------------------------------------------------------

// CreateJobRequest is the POST /v1/jobs body. Model is optional; omitted
// fields take the core defaults.
type CreateJobRequest struct {
	ID      string      `json:"id"`
	Items   int         `json:"items"`
	Workers int         `json:"workers"`
	Labels  int         `json:"labels"`
	Model   core.Config `json:"model,omitempty"`
}

// IngestRequest is the JSON form of the answers endpoint body; NDJSON
// bodies (Content-Type application/x-ndjson) carry bare answer lines
// instead.
type IngestRequest struct {
	Answers []answers.JSONAnswer `json:"answers"`
}

// IngestResponse reports how much was accepted and the current backlog.
// JournalBytes is the durable journal length after the batch landed — the
// router's replication ack barrier compares it against follower shipped
// offsets so a client ack implies the batch is replicated, not merely
// journaled on one node. 0 for ephemeral (journal-less) jobs.
type IngestResponse struct {
	Accepted     int   `json:"accepted"`
	QueueDepth   int   `json:"queue_depth"`
	JournalBytes int64 `json:"journal_bytes"`
}

// ServerStats is the /statsz shape.
type ServerStats struct {
	UptimeSec float64    `json:"uptime_seconds"`
	NumJobs   int        `json:"num_jobs"`
	Jobs      []JobStats `json:"jobs"`
}

// ---------------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------------

func (s *Server) handleCreateJob(w http.ResponseWriter, r *http.Request) {
	var req CreateJobRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxCreateBytes)
	dec := json.NewDecoder(r.Body)
	// Strict field checking: a typoed field (e.g. "modle" or a misspelled
	// core.Config key) would otherwise be dropped silently and the job
	// created with default settings.
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, fmt.Errorf("%w: decoding body: %v", bodyErrKind(err), err))
		return
	}
	job, err := s.reg.Create(JobSpec{
		ID: req.ID, Items: req.Items, Workers: req.Workers, Labels: req.Labels,
		Model: req.Model,
	})
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, job.Stats())
}

func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	jobs := s.reg.Jobs()
	stats := make([]JobStats, len(jobs))
	for i, j := range jobs {
		stats[i] = j.Stats()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": stats})
}

func (s *Server) handleJobStats(w http.ResponseWriter, r *http.Request) {
	job, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		httpError(w, fmt.Errorf("%w: %q", ErrNotFound, r.PathValue("id")))
		return
	}
	st := job.Stats()
	if r.URL.Query().Get("workers") == "1" {
		st.WorkerTraj = job.WorkerTrajectories()
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleDeleteJob(w http.ResponseWriter, r *http.Request) {
	// Plain DELETE unregisters but keeps the on-disk state (journal,
	// checkpoints) for a later reopen; ?purge=1 also removes the job
	// directory so storage for finished jobs is actually reclaimed.
	del := s.reg.Delete
	if r.URL.Query().Get("purge") == "1" {
		del = s.reg.Purge
	}
	if err := del(r.PathValue("id")); err != nil {
		httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	job, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		httpError(w, fmt.Errorf("%w: %q", ErrNotFound, r.PathValue("id")))
		return
	}
	// The whole request is decoded before Job.Ingest applies queue
	// backpressure, so the body itself must be bounded or one oversized
	// POST exhausts memory before the 429 path can fire. Chunk large
	// streams into multiple requests.
	r.Body = http.MaxBytesReader(w, r.Body, maxIngestBytes)
	var batch []answers.Answer
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/x-ndjson") || strings.HasPrefix(ct, "application/jsonl") {
		// Zero-alloc steady state: the body buffer and batch slice recycle
		// through a pool, lines split on bytes.IndexByte, and each record
		// decodes through the hand codec (jcodec.go). Only the label-set
		// words allocate — from a per-request arena, because the queue
		// retains them until the answers are fitted; the arena is never
		// pooled, it is reclaimed by the GC together with its sets.
		sc := ingestScratchPool.Get().(*ingestScratch)
		defer func() {
			clear(sc.batch)
			sc.batch = sc.batch[:0]
			if cap(sc.body) > maxPooledBodyBytes {
				// A rare oversized POST must not pin its grown buffer (up to
				// maxIngestBytes) in the pool until the next GC: a burst of
				// large bodies would park tens of MiB there. Steady-state
				// bodies stay under the cap and keep recycling.
				return
			}
			ingestScratchPool.Put(sc)
		}()
		var err error
		if sc.body, err = readBody(r.Body, sc.body); err != nil {
			httpError(w, fmt.Errorf("%w: reading body: %v", bodyErrKind(err), err))
			return
		}
		var arena labelset.Arena
		if err := DecodeNDJSON(sc.body, &arena, func(a answers.Answer) error {
			sc.batch = append(sc.batch, a)
			return nil
		}); err != nil {
			httpError(w, fmt.Errorf("%w: %v", bodyErrKind(err), err))
			return
		}
		batch = sc.batch
	} else {
		var req IngestRequest
		dec := json.NewDecoder(r.Body)
		// Strict field checking: an NDJSON stream posted with a JSON
		// content type would otherwise decode as an IngestRequest with no
		// answers and be acked as an empty batch, silently dropping
		// everything the client sent.
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			httpError(w, fmt.Errorf("%w: decoding body: %v", bodyErrKind(err), err))
			return
		}
		batch = make([]answers.Answer, len(req.Answers))
		for i, ja := range req.Answers {
			batch[i] = ja.Answer()
		}
	}
	// X-CPA-Epoch stamps the write with the ownership epoch the sender
	// believes is current (the router sets it on every proxied write); a
	// mismatch or a deposed replica fences the batch with 409. Unstamped
	// writes (single-node clients) skip the equality check.
	epoch := int64(-1)
	if h := r.Header.Get(epochHeader); h != "" {
		v, err := strconv.ParseInt(h, 10, 64)
		if err != nil || v < 0 {
			httpError(w, fmt.Errorf("%w: bad %s header %q", ErrInvalid, epochHeader, h))
			return
		}
		epoch = v
	}
	if err := job.IngestAt(batch, epoch); err != nil {
		httpError(w, err)
		return
	}
	// The offsets are read after the ack, so they are ≥ the batch's end
	// offset even if a concurrent ingest landed in between — conservative,
	// which is the safe direction for the router's replication barrier.
	jb, _ := job.JournalOffsets()
	writeJSON(w, http.StatusAccepted, IngestResponse{
		Accepted:     len(batch),
		QueueDepth:   job.Stats().QueueDepth,
		JournalBytes: jb,
	})
}

func (s *Server) handleConsensus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		httpError(w, fmt.Errorf("%w: %q", ErrNotFound, r.PathValue("id")))
		return
	}
	// The snapshot caches its encoding: concurrent readers of the same
	// publication share one marshal instead of re-encoding O(items) each.
	body, err := job.Snapshot().encodedBody()
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

func (s *Server) handleItem(w http.ResponseWriter, r *http.Request) {
	job, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		httpError(w, fmt.Errorf("%w: %q", ErrNotFound, r.PathValue("id")))
		return
	}
	item, err := strconv.Atoi(r.PathValue("item"))
	if err != nil || item < 0 || item >= job.Spec().Items {
		httpError(w, fmt.Errorf("%w: item %q out of range [0,%d)", ErrNotFound, r.PathValue("item"), job.Spec().Items))
		return
	}
	snap := job.Snapshot()
	if item >= len(snap.Consensus) {
		// No fit round yet: an empty consensus for a valid item.
		writeJSON(w, http.StatusOK, map[string]any{"round": snap.Round, "item": ItemSnapshot{Item: item}})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"round": snap.Round, "item": snap.Consensus[item]})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "num_jobs": len(s.reg.Jobs())})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	jobs := s.reg.Jobs()
	stats := ServerStats{
		UptimeSec: time.Since(s.start).Seconds(),
		NumJobs:   len(jobs),
		Jobs:      make([]JobStats, len(jobs)),
	}
	// ?workers=1 opts into the per-worker reliability trajectory rings — an
	// O(workers × ring) payload per job, far too heavy for routine polls.
	withWorkers := r.URL.Query().Get("workers") == "1"
	for i, j := range jobs {
		stats.Jobs[i] = j.Stats()
		if withWorkers {
			stats.Jobs[i].WorkerTraj = j.WorkerTrajectories()
		}
	}
	writeJSON(w, http.StatusOK, stats)
}

// ---------------------------------------------------------------------------
// Cluster-facing handlers
// ---------------------------------------------------------------------------

// Replication wire headers.
const (
	// epochHeader stamps a write (or reports, on reads) the ownership epoch.
	epochHeader = "X-CPA-Epoch"
	// journalOffHeader is the byte offset just past the served chunk — the
	// next request's ?from.
	journalOffHeader = "X-CPA-Journal-Off"
	// journalDurableHeader is the primary's durable journal length at serve
	// time (≥ the off header; the chunk cap can leave a remainder).
	journalDurableHeader = "X-CPA-Journal-Durable"
	// deposedHeader is "1" when the serving replica is fenced out of the
	// write path. Tailing a deposed primary stays legal — failover drains
	// the shipped suffix from exactly such a node — but the router must not
	// route client reads to it.
	deposedHeader = "X-CPA-Deposed"
	// journalBaseHeader reports the journal's truncation base offset. On a
	// 410 (the requested ?from predates the truncated prefix) it tells the
	// reader where the retained journal begins: fetch the base checkpoint
	// (/checkpoint?base=1), then re-request ?from=<base>&base=1.
	journalBaseHeader = "X-CPA-Journal-Base"
	// journalBaseLenHeader is set on ?base=1 responses: the byte length of
	// the base header line included at the start of the chunk. Header bytes
	// are file-local framing, not journal stream bytes — the reader excludes
	// them when advancing its global offset.
	journalBaseLenHeader = "X-CPA-Journal-Base-Len"
)

// maxShipChunk caps one journal-tail response. A follower bootstrapping
// from offset 0 against a long-lived journal pages through it instead of
// buffering the whole file server-side.
const maxShipChunk = 8 << 20

// maxTailWait caps the ?wait_ms long-poll parameter.
const maxTailWait = 30 * time.Second

// handleJournalTail serves raw journal bytes [from, durable) in global
// (never-truncated) coordinates — at most maxShipChunk per response, only
// ever complete flushed lines, because the durable offset by construction
// covers nothing else. With ?wait_ms=M a request at the current tail parks
// until new bytes land (or the wait elapses), so followers ship with one
// cheap long-poll loop instead of hammering. The response is bit-identical
// journal content: a follower that concatenates chunks in order holds
// byte-for-byte the stream the primary journaled.
//
// Truncation handshake: a ?from below the journal's base offset gets 410
// Gone with the base offset in X-CPA-Journal-Base — the prefix no longer
// exists on disk. The reader then fetches the base checkpoint
// (/checkpoint?base=1) and re-requests ?from=<base>&base=1, which serves the
// physical file from byte 0 so the base header line travels ahead of the
// retained suffix (its length reported in X-CPA-Journal-Base-Len, excluded
// from global offsets).
func (s *Server) handleJournalTail(w http.ResponseWriter, r *http.Request) {
	job, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		httpError(w, fmt.Errorf("%w: %q", ErrNotFound, r.PathValue("id")))
		return
	}
	if job.dir == "" {
		httpError(w, fmt.Errorf("%w: job %q is ephemeral (no journal to ship)", ErrInvalid, job.ID()))
		return
	}
	q := r.URL.Query()
	from := int64(0)
	if v := q.Get("from"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			httpError(w, fmt.Errorf("%w: bad from %q", ErrInvalid, v))
			return
		}
		from = n
	}
	includeBase := q.Get("base") == "1"
	var wait time.Duration
	if v := q.Get("wait_ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms < 0 {
			httpError(w, fmt.Errorf("%w: bad wait_ms %q", ErrInvalid, v))
			return
		}
		if wait = time.Duration(ms) * time.Millisecond; wait > maxTailWait {
			wait = maxTailWait
		}
	}

	// Long-poll by polling the durable offset: appends are frequent under
	// load (the poll rarely spins) and absent under idle (the client asked
	// to park). A 5ms period bounds added shipping latency well below any
	// fit round. A base-handshake request never parks: the base header line
	// itself is servable even when the retained suffix is empty.
	durable, _ := job.JournalOffsets()
	deadline := time.Now().Add(wait)
	for durable <= from && !includeBase && wait > 0 && time.Now().Before(deadline) {
		select {
		case <-r.Context().Done():
			return
		case <-time.After(5 * time.Millisecond):
		}
		durable, _ = job.JournalOffsets()
	}
	if durable < from {
		httpError(w, fmt.Errorf("%w: from %d beyond durable offset %d", ErrInvalid, from, durable))
		return
	}

	// The section resolves [from, end) to the current file under the job
	// mutex and opens its own handle: a truncation renaming a compacted file
	// over the path mid-copy cannot disturb the pinned inode, and the bytes
	// below the durable offset are immutable (rollback and torn-tail
	// truncation only ever cut above it), so the read races nothing.
	sec, err := job.openJournalSection(from, maxShipChunk, includeBase)
	if err != nil {
		if errors.Is(err, ErrTruncated) {
			w.Header().Set(journalBaseHeader, strconv.FormatInt(job.journalBase().Bytes, 10))
		}
		httpError(w, err)
		return
	}
	defer sec.Close()
	globalEnd := from + sec.n
	if includeBase {
		globalEnd -= sec.hdrLen
		w.Header().Set(journalBaseLenHeader, strconv.FormatInt(sec.hdrLen, 10))
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set(journalOffHeader, strconv.FormatInt(globalEnd, 10))
	w.Header().Set(journalDurableHeader, strconv.FormatInt(sec.durable, 10))
	w.Header().Set(epochHeader, strconv.FormatInt(job.Epoch(), 10))
	if job.Deposed() {
		w.Header().Set(deposedHeader, "1")
	}
	w.WriteHeader(http.StatusOK)
	if sec.n > 0 {
		_, _ = io.Copy(w, io.NewSectionReader(sec.f, sec.start, sec.n))
	}
}

// handleCheckpoint serves the job's latest model checkpoint (the gob the
// fitter saves every SaveEvery rounds). 404 until the first save. The file
// lands by rename, so an open handle always reads one consistent
// checkpoint. With ?base=1 it serves the base checkpoint instead — the
// snapshot anchored at the journal's truncation base, which a reader must
// seed from before replaying a truncated journal's retained suffix.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	job, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		httpError(w, fmt.Errorf("%w: %q", ErrNotFound, r.PathValue("id")))
		return
	}
	if job.dir == "" {
		httpError(w, fmt.Errorf("%w: job %q is ephemeral (no checkpoint)", ErrInvalid, job.ID()))
		return
	}
	name := modelFile
	if r.URL.Query().Get("base") == "1" {
		name = baseFile
	}
	f, err := os.Open(filepath.Join(job.dir, name))
	if os.IsNotExist(err) {
		httpError(w, fmt.Errorf("%w: job %q has no %s checkpoint yet", ErrNotFound, job.ID(), name))
		return
	}
	if err != nil {
		httpError(w, fmt.Errorf("serve: opening checkpoint: %w", err))
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = io.Copy(w, f)
}

// handleJobSpec returns the effective (defaults-filled) JobSpec — what a
// follower must persist as job.json so its recovered model is built with
// exactly the primary's configuration.
func (s *Server) handleJobSpec(w http.ResponseWriter, r *http.Request) {
	job, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		httpError(w, fmt.Errorf("%w: %q", ErrNotFound, r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, job.Spec())
}

// epochRequest is the body of the fence/promote endpoints.
type epochRequest struct {
	Epoch int64 `json:"epoch"`
}

func (s *Server) handleFence(w http.ResponseWriter, r *http.Request) {
	s.handleEpochChange(w, r, (*Job).Fence)
}

func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	s.handleEpochChange(w, r, (*Job).Promote)
}

func (s *Server) handleEpochChange(w http.ResponseWriter, r *http.Request, apply func(*Job, int64) error) {
	job, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		httpError(w, fmt.Errorf("%w: %q", ErrNotFound, r.PathValue("id")))
		return
	}
	var req epochRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxCreateBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, fmt.Errorf("%w: decoding body: %v", bodyErrKind(err), err))
		return
	}
	if req.Epoch < 0 {
		httpError(w, fmt.Errorf("%w: negative epoch %d", ErrInvalid, req.Epoch))
		return
	}
	if err := apply(job, req.Epoch); err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, job.Stats())
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

// Request body caps. Ingestion is designed around chunked streams — the
// queue's 429 backpressure bounds memory per job, so one request must not
// be allowed to dwarf the queue itself. Create bodies are tiny by nature.
const (
	maxIngestBytes = 32 << 20
	maxCreateBytes = 1 << 20
	// maxPooledBodyBytes caps what an ingestScratch may retain between
	// requests; bigger body buffers are dropped for the GC instead of
	// pooled.
	maxPooledBodyBytes = 1 << 20
)

// ingestScratch recycles the NDJSON ingest buffers across requests: the raw
// body bytes and the decoded batch slice (entry values only — the queue
// copies them on admission; the label-set words they reference live in a
// per-request arena that is never pooled).
type ingestScratch struct {
	body  []byte
	batch []answers.Answer
}

var ingestScratchPool = sync.Pool{New: func() any {
	return &ingestScratch{body: make([]byte, 0, 64<<10)}
}}

// readBody reads r to EOF into buf, reusing its capacity — io.ReadAll with
// a recycled buffer.
func readBody(r io.Reader, buf []byte) ([]byte, error) {
	buf = buf[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// bodyErrKind classifies a request-body decode failure: an overrun of the
// MaxBytesReader cap maps to 413, everything else to 400.
func bodyErrKind(err error) error {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return ErrTooLarge
	}
	return ErrInvalid
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrExists), errors.Is(err, ErrFenced):
		status = http.StatusConflict
	case errors.Is(err, ErrQueueFull):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrTruncated):
		status = http.StatusGone
	case errors.Is(err, ErrTooLarge):
		status = http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrInvalid):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
