package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"cpa/internal/answers"
	"cpa/internal/core"
)

// Server exposes a Registry over HTTP.
//
//	POST   /v1/jobs                    create a job
//	GET    /v1/jobs                    list jobs (stats)
//	GET    /v1/jobs/{id}               one job's stats
//	DELETE /v1/jobs/{id}               close and unregister a job
//	POST   /v1/jobs/{id}/answers      ingest answers (JSON body or NDJSON stream)
//	GET    /v1/jobs/{id}/consensus    latest consensus snapshot
//	GET    /v1/jobs/{id}/items/{item} one item's consensus
//	GET    /healthz                    liveness
//	GET    /statsz                     queue depths, fit rounds, snapshot ages
type Server struct {
	reg   *Registry
	mux   *http.ServeMux
	start time.Time
}

// NewServer wraps a registry in an http.Handler.
func NewServer(reg *Registry) *Server {
	s := &Server{reg: reg, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("POST /v1/jobs", s.handleCreateJob)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStats)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleDeleteJob)
	s.mux.HandleFunc("POST /v1/jobs/{id}/answers", s.handleIngest)
	s.mux.HandleFunc("GET /v1/jobs/{id}/consensus", s.handleConsensus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/items/{item}", s.handleItem)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// ---------------------------------------------------------------------------
// Wire types
// ---------------------------------------------------------------------------

// CreateJobRequest is the POST /v1/jobs body. Model is optional; omitted
// fields take the core defaults.
type CreateJobRequest struct {
	ID      string      `json:"id"`
	Items   int         `json:"items"`
	Workers int         `json:"workers"`
	Labels  int         `json:"labels"`
	Model   core.Config `json:"model,omitempty"`
}

// IngestRequest is the JSON form of the answers endpoint body; NDJSON
// bodies (Content-Type application/x-ndjson) carry bare answer lines
// instead.
type IngestRequest struct {
	Answers []answers.JSONAnswer `json:"answers"`
}

// IngestResponse reports how much was accepted and the current backlog.
type IngestResponse struct {
	Accepted   int `json:"accepted"`
	QueueDepth int `json:"queue_depth"`
}

// ServerStats is the /statsz shape.
type ServerStats struct {
	UptimeSec float64    `json:"uptime_seconds"`
	NumJobs   int        `json:"num_jobs"`
	Jobs      []JobStats `json:"jobs"`
}

// ---------------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------------

func (s *Server) handleCreateJob(w http.ResponseWriter, r *http.Request) {
	var req CreateJobRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxCreateBytes)
	dec := json.NewDecoder(r.Body)
	// Strict field checking: a typoed field (e.g. "modle" or a misspelled
	// core.Config key) would otherwise be dropped silently and the job
	// created with default settings.
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, fmt.Errorf("%w: decoding body: %v", bodyErrKind(err), err))
		return
	}
	job, err := s.reg.Create(JobSpec{
		ID: req.ID, Items: req.Items, Workers: req.Workers, Labels: req.Labels,
		Model: req.Model,
	})
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, job.Stats())
}

func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	jobs := s.reg.Jobs()
	stats := make([]JobStats, len(jobs))
	for i, j := range jobs {
		stats[i] = j.Stats()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": stats})
}

func (s *Server) handleJobStats(w http.ResponseWriter, r *http.Request) {
	job, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		httpError(w, fmt.Errorf("%w: %q", ErrNotFound, r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, job.Stats())
}

func (s *Server) handleDeleteJob(w http.ResponseWriter, r *http.Request) {
	if err := s.reg.Delete(r.PathValue("id")); err != nil {
		httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	job, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		httpError(w, fmt.Errorf("%w: %q", ErrNotFound, r.PathValue("id")))
		return
	}
	// The whole request is decoded before Job.Ingest applies queue
	// backpressure, so the body itself must be bounded or one oversized
	// POST exhausts memory before the 429 path can fire. Chunk large
	// streams into multiple requests.
	r.Body = http.MaxBytesReader(w, r.Body, maxIngestBytes)
	var batch []answers.Answer
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/x-ndjson") || strings.HasPrefix(ct, "application/jsonl") {
		err := answers.DecodeJSONL(r.Body, func(a answers.Answer) error {
			batch = append(batch, a)
			return nil
		})
		if err != nil {
			httpError(w, fmt.Errorf("%w: %v", bodyErrKind(err), err))
			return
		}
	} else {
		var req IngestRequest
		dec := json.NewDecoder(r.Body)
		// Strict field checking: an NDJSON stream posted with a JSON
		// content type would otherwise decode as an IngestRequest with no
		// answers and be acked as an empty batch, silently dropping
		// everything the client sent.
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			httpError(w, fmt.Errorf("%w: decoding body: %v", bodyErrKind(err), err))
			return
		}
		batch = make([]answers.Answer, len(req.Answers))
		for i, ja := range req.Answers {
			batch[i] = ja.Answer()
		}
	}
	if err := job.Ingest(batch); err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, IngestResponse{
		Accepted:   len(batch),
		QueueDepth: job.Stats().QueueDepth,
	})
}

func (s *Server) handleConsensus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		httpError(w, fmt.Errorf("%w: %q", ErrNotFound, r.PathValue("id")))
		return
	}
	// The snapshot caches its encoding: concurrent readers of the same
	// publication share one marshal instead of re-encoding O(items) each.
	body, err := job.Snapshot().encodedBody()
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

func (s *Server) handleItem(w http.ResponseWriter, r *http.Request) {
	job, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		httpError(w, fmt.Errorf("%w: %q", ErrNotFound, r.PathValue("id")))
		return
	}
	item, err := strconv.Atoi(r.PathValue("item"))
	if err != nil || item < 0 || item >= job.Spec().Items {
		httpError(w, fmt.Errorf("%w: item %q out of range [0,%d)", ErrNotFound, r.PathValue("item"), job.Spec().Items))
		return
	}
	snap := job.Snapshot()
	if item >= len(snap.Consensus) {
		// No fit round yet: an empty consensus for a valid item.
		writeJSON(w, http.StatusOK, map[string]any{"round": snap.Round, "item": ItemSnapshot{Item: item}})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"round": snap.Round, "item": snap.Consensus[item]})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "num_jobs": len(s.reg.Jobs())})
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	jobs := s.reg.Jobs()
	stats := ServerStats{
		UptimeSec: time.Since(s.start).Seconds(),
		NumJobs:   len(jobs),
		Jobs:      make([]JobStats, len(jobs)),
	}
	for i, j := range jobs {
		stats.Jobs[i] = j.Stats()
	}
	writeJSON(w, http.StatusOK, stats)
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

// Request body caps. Ingestion is designed around chunked streams — the
// queue's 429 backpressure bounds memory per job, so one request must not
// be allowed to dwarf the queue itself. Create bodies are tiny by nature.
const (
	maxIngestBytes = 32 << 20
	maxCreateBytes = 1 << 20
)

// bodyErrKind classifies a request-body decode failure: an overrun of the
// MaxBytesReader cap maps to 413, everything else to 400.
func bodyErrKind(err error) error {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return ErrTooLarge
	}
	return ErrInvalid
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrExists):
		status = http.StatusConflict
	case errors.Is(err, ErrQueueFull):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrTooLarge):
		status = http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrInvalid):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
