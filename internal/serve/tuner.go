package serve

import (
	"sort"
	"sync"
	"time"

	"cpa/internal/capacity"
	"cpa/internal/core"
)

// tuner is the per-job capacity controller (DESIGN.md §13). The fitter
// goroutine feeds it one (batch size, round duration) sample per fit round;
// every AutoTuneWindow rounds the accumulated throughput becomes one USL
// observation for the knob under measurement, and the tuner may emit a
// bounded adjustment for the job to apply via core.Model.Retune.
//
// The two knobs — Parallelism and mini-batch size — are tuned by coordinate
// descent in focused episodes: one knob walks its ladder while the other is
// frozen, and focus switches only once the walking knob has held its setting
// for consecutive windows. Switching focus discards the newly focused knob's
// observations — they were measured under the sibling's old setting and a
// throughput sample is only attributable to one rung when the rest of the
// regime stood still. (An earlier design alternated the knobs every window;
// parallelism medians taken at batch 16 then testified against rungs long
// after the batch knob had climbed to 512, stranding the walk.) Each knob
// walks a fixed ladder (powers of two); a move is always a single rung,
// never mid-round, and only after the fitted curve (or, on short ladders,
// the raw per-rung averages) predicts a gain past the hysteresis margin.
// Mini-batch observations are normalized to units of the ladder base so the
// USL's n stays a small concurrency-like quantity.
//
// Safety: Parallelism is replay-invisible (sharded reductions are
// bit-identical across shard counts) and batch boundaries are journaled per
// fit marker, so steering either knob changes which work future rounds do,
// never what any journaled round means. The tune journal annotation exists
// for operators and followers to see the trajectory; no consumer replays it.
//
// Concurrency: all measurement and decision state is touched only by the
// fitter goroutine. The mutex guards the stats snapshot /statsz readers
// copy.
type tuner struct {
	seed   int64
	window int

	parLadder   []int
	batchLadder []int

	dim        int // knob under focus: 0 Parallelism, 1 batch size
	holds      int // consecutive hold decisions in the current episode
	episodes   int // completed focus episodes across both knobs
	winRounds  int
	winAnswers int64
	winDur     time.Duration

	obs [2][]capacity.Observation

	mu    sync.Mutex
	stats AutoTuneStats
}

const (
	// tuneObsCap bounds the per-knob observation ring: old windows age out
	// so the fit tracks the workload, not the job's whole history.
	tuneObsCap = 64
	// tuneBatchBase is the batch ladder's base rung and the normalization
	// unit for batch-dimension USL observations.
	tuneBatchBase = 16
	// tuneMaxBatch caps the batch ladder (further capped by AnswerWindow).
	tuneMaxBatch = 1024
	// tuneHysteresis is the predicted relative gain a move must clear. Moves
	// with less predicted benefit than 5% are noise, and flapping between
	// adjacent rungs costs workScratch reallocations.
	tuneHysteresis = 1.05
	// tuneMinSamples is how many windows the highest probed rung needs
	// before its average may testify that the curve has turned over. A
	// single descheduled window must not strand the tuner below the knee —
	// the frontier is re-probed until the verdict rests on a real average.
	tuneMinSamples = 3
	// tuneSettleHolds consecutive hold decisions end a focus episode and
	// hand the ladder walk to the other knob.
	tuneSettleHolds = 2
	// tuneSteadyHolds replaces tuneSettleHolds once both knobs have settled
	// twice: refocusing re-probes neighbor rungs to track workload drift,
	// which is worth paying rarely, not every other window.
	tuneSteadyHolds = 8
	// tuneSettledEpisodes is the episode count past which the tuner is
	// considered converged and switches to the slow refocus cadence.
	tuneSettledEpisodes = 4
)

// AutoTuneStats is the /statsz view of a job's capacity tuner.
type AutoTuneStats struct {
	Parallelism TuneDimStats `json:"parallelism"`
	BatchSize   TuneDimStats `json:"batch_size"`
}

// TuneDimStats is one knob's tuner state: the live setting, the setting the
// last decision steered toward, how many measurement windows have completed,
// and the latest USL fit (absent until enough distinct rungs are probed).
// For the batch knob the fit is in ladder-base units (Unit answers per n).
type TuneDimStats struct {
	Current int `json:"current"`
	Target  int `json:"target,omitempty"`
	Windows int `json:"windows"`
	// Unit is the observation unit: 1 for Parallelism, the ladder base for
	// batch size (Fit.Knee is in these units).
	Unit int           `json:"unit"`
	Fit  *capacity.Fit `json:"fit,omitempty"`
}

// newTuner builds a tuner for a job whose model starts at cfg's settings.
func newTuner(cfg Config, model core.Config) *tuner {
	maxBatch := tuneMaxBatch
	if model.AnswerWindow > 0 && model.AnswerWindow < maxBatch {
		// The ladder must stay inside the retention window or Retune would
		// reject every upward batch move.
		maxBatch = model.AnswerWindow
	}
	if model.BatchSize > maxBatch {
		maxBatch = model.BatchSize
	}
	t := &tuner{
		seed:        model.Seed,
		window:      cfg.AutoTuneWindow,
		parLadder:   capacity.Plan(1, cfg.AutoTuneMaxParallelism),
		batchLadder: capacity.Plan(tuneBatchBase, maxBatch),
	}
	t.stats.Parallelism = TuneDimStats{Current: model.Parallelism, Unit: 1}
	t.stats.BatchSize = TuneDimStats{Current: model.BatchSize, Unit: tuneBatchBase}
	return t
}

// observeRound accumulates one fit round into the current window. Fitter
// goroutine only.
func (t *tuner) observeRound(n int, d time.Duration) {
	t.winRounds++
	t.winAnswers += int64(n)
	t.winDur += d
}

// maybeTune closes the measurement window if it is complete and returns the
// adjustment to apply as Retune arguments (0, 0 when the window is still
// open or the decision is to hold). Fitter goroutine only; cur is the
// model's live configuration.
func (t *tuner) maybeTune(cur core.Config) (parallelism, batchSize int) {
	if t.winRounds < t.window {
		return 0, 0
	}
	dim := t.dim
	rounds, ans, dur := t.winRounds, t.winAnswers, t.winDur
	t.winRounds, t.winAnswers, t.winDur = 0, 0, 0
	if rounds == 0 || ans == 0 || dur <= 0 {
		return 0, 0
	}

	x := float64(ans) / dur.Seconds()
	ladder, unit, curSet := t.parLadder, 1, cur.Parallelism
	if dim == 1 {
		ladder, unit, curSet = t.batchLadder, tuneBatchBase, cur.BatchSize
	}
	t.obs[dim] = append(t.obs[dim], capacity.Observation{N: float64(curSet) / float64(unit), X: x})
	if len(t.obs[dim]) > tuneObsCap {
		t.obs[dim] = t.obs[dim][len(t.obs[dim])-tuneObsCap:]
	}

	target, fit := t.decide(dim, ladder, unit, curSet)
	next := stepToward(ladder, curSet, target)

	// Episode bookkeeping: a settled walk hands focus to the other knob,
	// whose stale-regime observations are discarded — its next window
	// re-measures its current rung under the sibling's new setting.
	if next == curSet {
		t.holds++
	} else {
		t.holds = 0
	}
	settle := tuneSettleHolds
	if t.episodes >= tuneSettledEpisodes {
		settle = tuneSteadyHolds
	}
	if t.holds >= settle {
		t.episodes++
		t.holds = 0
		t.dim = 1 - t.dim
		t.obs[t.dim] = t.obs[t.dim][:0]
	}

	t.mu.Lock()
	ds := &t.stats.Parallelism
	if dim == 1 {
		ds = &t.stats.BatchSize
	}
	ds.Windows++
	ds.Target = target
	ds.Current = next
	if fit != nil {
		// Keep the last real fit through exploration phases, where decide
		// has fewer than three rungs and returns none.
		ds.Fit = fit
	}
	t.mu.Unlock()

	if next == curSet {
		return 0, 0
	}
	if dim == 0 {
		return next, 0
	}
	return 0, next
}

// decide picks the setting the knob should steer toward: explore unprobed
// ladder rungs until a USL fit is possible, then the fitted curve's best
// integer setting gated by hysteresis. Ladders too short to ever fit three
// distinct points fall back to the argmax of the measured per-rung averages.
//
// An interior knee is only trusted once the measured curve has turned over —
// some rung averaging worse than a lower one. A 3-parameter fit through
// exactly 3 rising points interpolates them exactly (residual 0) and can
// hallucinate a maximum just past the data; without the turnover guard the
// tuner would park there and never collect the corrective point above.
func (t *tuner) decide(dim int, ladder []int, unit, curSet int) (int, *capacity.Fit) {
	avg, cnt, order := medianBySetting(t.obs[dim], unit)
	if len(order) < 3 {
		probed := map[int]bool{}
		for _, s := range order {
			probed[s] = true
		}
		if next := nextUnprobed(ladder, curSet, probed); next != 0 {
			return next, nil
		}
		// Every rung probed but fewer than 3 exist: steer by raw averages.
		return argmaxObserved(t.obs[dim], unit, curSet), nil
	}
	var fitp *capacity.Fit
	if fit, err := capacity.FitUSL(t.obs[dim], t.seed); err == nil {
		fitp = &fit
	}
	top := order[len(order)-1]
	bestSet, bestX := 0, 0.0
	for _, s := range order {
		if x := avg[s]; x > bestX {
			bestSet, bestX = s, x
		}
	}
	if cnt[top] < tuneMinSamples && bestSet != top {
		// The frontier looks worse but on too few windows to judge: sit on
		// it until its average is real before retreating or advancing.
		return top, fitp
	}
	if bestSet == top || avg[top]*tuneHysteresis >= bestX {
		// Still rising (or flat within the hysteresis margin) at the top of
		// the probed range: keep exploring before trusting any fitted
		// interior maximum. One noisy window must not fake a turnover — the
		// top rung has to trail the best by a decisive margin first.
		for _, r := range ladder {
			if r > top {
				return r, fitp
			}
		}
	}
	if fitp == nil {
		return curSet, nil
	}
	best := fitp.BestN(ladder[0]/unit, ladder[len(ladder)-1]/unit)
	target := snapToLadder(ladder, best*unit)
	// Hysteresis: hold unless the curve predicts a clear gain over here.
	if fitp.X(float64(target)/float64(unit)) < tuneHysteresis*fitp.X(float64(curSet)/float64(unit)) {
		target = curSet
	}
	return target, fitp
}

// medianBySetting reduces the observations to a per-setting median,
// returning the medians, the per-setting sample counts, and the settings in
// ascending order. The median, not the mean, is what steering decisions
// read: a descheduled window measures several times slower than its
// neighbors and would drag a mean far below the rung's real throughput.
func medianBySetting(obs []capacity.Observation, unit int) (map[int]float64, map[int]int, []int) {
	byS := map[int][]float64{}
	for _, o := range obs {
		s := int(o.N*float64(unit) + 0.5)
		byS[s] = append(byS[s], o.X)
	}
	med := map[int]float64{}
	cnt := map[int]int{}
	order := make([]int, 0, len(byS))
	for s, xs := range byS {
		sort.Float64s(xs)
		m := xs[len(xs)/2]
		if len(xs)%2 == 0 {
			m = (m + xs[len(xs)/2-1]) / 2
		}
		med[s], cnt[s] = m, len(xs)
		order = append(order, s)
	}
	sort.Ints(order)
	return med, cnt, order
}

// nextUnprobed returns the nearest unprobed ladder rung — preferring upward,
// where the knee usually hides — or 0 when every rung has an observation.
func nextUnprobed(ladder []int, cur int, probed map[int]bool) int {
	for _, r := range ladder {
		if r > cur && !probed[r] {
			return r
		}
	}
	for i := len(ladder) - 1; i >= 0; i-- {
		if ladder[i] < cur && !probed[ladder[i]] {
			return ladder[i]
		}
	}
	if !probed[cur] {
		return cur
	}
	return 0
}

// argmaxObserved averages the observations per setting and returns the best
// setting, with the hysteresis margin applied against the current one.
func argmaxObserved(obs []capacity.Observation, unit, curSet int) int {
	sum := map[int]float64{}
	cnt := map[int]float64{}
	for _, o := range obs {
		s := int(o.N*float64(unit) + 0.5)
		sum[s] += o.X
		cnt[s]++
	}
	best, bestX := curSet, 0.0
	if cnt[curSet] > 0 {
		bestX = tuneHysteresis * sum[curSet] / cnt[curSet]
	}
	for s, c := range cnt {
		if x := sum[s] / c; x > bestX {
			best, bestX = s, x
		}
	}
	return best
}

// snapToLadder returns the ladder rung nearest to v (ties prefer the smaller
// rung: same predicted throughput for less batching or concurrency).
func snapToLadder(ladder []int, v int) int {
	best := ladder[0]
	for _, r := range ladder[1:] {
		db, dr := best-v, r-v
		if db < 0 {
			db = -db
		}
		if dr < 0 {
			dr = -dr
		}
		if dr < db {
			best = r
		}
	}
	return best
}

// stepToward bounds an adjustment to a single ladder rung in the target's
// direction: the smallest rung above cur (moving up) or the largest below
// (moving down). A cur off the ladder snaps to the first rung passed.
func stepToward(ladder []int, cur, target int) int {
	if target == cur {
		return cur
	}
	if target > cur {
		for _, r := range ladder {
			if r > cur {
				if r > target {
					return cur
				}
				return r
			}
		}
		return cur
	}
	for i := len(ladder) - 1; i >= 0; i-- {
		if ladder[i] < cur {
			if ladder[i] < target {
				return cur
			}
			return ladder[i]
		}
	}
	return cur
}

// snapshot returns the stats copy /statsz serves.
func (t *tuner) snapshot() *AutoTuneStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.stats
	if t.stats.Parallelism.Fit != nil {
		f := *t.stats.Parallelism.Fit
		s.Parallelism.Fit = &f
	}
	if t.stats.BatchSize.Fit != nil {
		f := *t.stats.BatchSize.Fit
		s.BatchSize.Fit = &f
	}
	return &s
}
