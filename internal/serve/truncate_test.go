package serve

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

import "cpa/internal/core"

// truncCfg is a registry config aggressive enough that a modest stream
// truncates several times: checkpoint every 2 rounds, drop any prefix over
// 2KiB.
func truncCfg(dir string) Config {
	return Config{Dir: dir, SaveEvery: 2, BatchWait: 5 * time.Millisecond,
		TruncateJournal: true, TruncateMin: 2 << 10}
}

// TestTruncationBoundsJournalAndRecoversExactly is the retention half of
// the crash-recovery contract: with truncation on, the on-disk journal file
// stays a fraction of the global journal length, the dropped prefix is
// anchored by base.gob, and a kill -9 after several truncations still
// recovers the bit-identical consensus and keeps serving.
func TestTruncationBoundsJournalAndRecoversExactly(t *testing.T) {
	dir := t.TempDir()
	ds := shuffledStream(t, 0.08, 7)
	spec := JobSpec{
		ID: "trunc", Items: ds.NumItems, Workers: ds.NumWorkers, Labels: ds.NumLabels,
		Model: core.Config{Seed: 7, BatchSize: 64, Parallelism: 2},
	}
	reg := mustOpen(t, truncCfg(dir))
	job, err := reg.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	all := ds.Answers()
	holdBack := 100
	ingestAll(t, job, all[:len(all)-holdBack], 64)
	waitSnapshot(t, job, len(all)-holdBack)
	stats := job.Stats() // the journal handle closes with the crash below
	reg.CrashAll()
	before := job.Snapshot()

	if stats.JournalBytes == 0 {
		t.Fatal("no journal bytes recorded")
	}
	if stats.JournalFileBytes >= stats.JournalBytes {
		t.Fatalf("journal never truncated: file %d bytes of %d global", stats.JournalFileBytes, stats.JournalBytes)
	}
	if stats.JournalFileBytes > stats.JournalBytes/2 {
		t.Fatalf("journal file not bounded: %d of %d global bytes", stats.JournalFileBytes, stats.JournalBytes)
	}
	if _, err := os.Stat(filepath.Join(dir, "jobs", "trunc", baseFile)); err != nil {
		t.Fatalf("truncated journal has no base checkpoint anchor: %v", err)
	}

	reg2 := mustOpen(t, truncCfg(dir))
	defer reg2.Close()
	job2, ok := reg2.Get("trunc")
	if !ok {
		t.Fatal("job not recovered")
	}
	sameConsensus(t, before, job2.Snapshot())
	// Recovery journals a restart re-anchor, so the global coordinate may
	// advance by that one record — but it must never regress below the
	// pre-crash durable position (a regression means the truncated prefix
	// was dropped from the coordinate space).
	if got := job2.Stats(); got.JournalBytes < stats.JournalBytes {
		t.Fatalf("global journal coordinate regressed across recovery: %d, want >= %d", got.JournalBytes, stats.JournalBytes)
	}

	// The recovered job keeps truncating as it serves the held-back tail.
	ingestAll(t, job2, all[len(all)-holdBack:], 64)
	after := waitSnapshot(t, job2, len(all))
	if after.Round <= before.Round {
		t.Fatalf("recovered job did not resume fitting: round %d (pre-crash %d)", after.Round, before.Round)
	}
}

// TestTruncationKillWindowRecovers pins the crash protocol's vulnerable
// window: base.gob has been refreshed but the journal rewrite never
// committed (stale journal.jsonl.tmp left behind, untruncated journal on
// disk). Recovery must ignore the newer base.gob in favor of model.gob,
// discard the temp file, and reproduce the pre-crash consensus.
func TestTruncationKillWindowRecovers(t *testing.T) {
	dir := t.TempDir()
	ds := shuffledStream(t, 0.08, 13)
	spec := JobSpec{
		ID: "window", Items: ds.NumItems, Workers: ds.NumWorkers, Labels: ds.NumLabels,
		Model: core.Config{Seed: 13, BatchSize: 64, Parallelism: 2},
	}
	reg := mustOpen(t, truncCfg(dir))
	job, err := reg.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, job, ds.Answers(), 64)
	waitSnapshot(t, job, len(ds.Answers()))
	reg.CrashAll()
	before := job.Snapshot()

	// Re-create the mid-truncation disk state on top of the crashed job:
	// base.gob freshly copied from the final checkpoint (the copy step
	// completed) and the journal rewrite torn — its temp file written but
	// never renamed over journal.jsonl.
	jobDir := filepath.Join(dir, "jobs", "window")
	if _, err := os.Stat(filepath.Join(jobDir, modelFile)); err != nil {
		t.Fatalf("no final checkpoint to anchor the simulated window: %v", err)
	}
	if err := copyFileAtomic(filepath.Join(jobDir, modelFile), filepath.Join(jobDir, baseFile)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(jobDir, journalFile+".tmp"), []byte("torn rewrite\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	reg2 := mustOpen(t, truncCfg(dir))
	defer reg2.Close()
	job2, ok := reg2.Get("window")
	if !ok {
		t.Fatal("job not recovered from the truncation kill window")
	}
	sameConsensus(t, before, job2.Snapshot())
	if _, err := os.Stat(filepath.Join(jobDir, journalFile+".tmp")); !os.IsNotExist(err) {
		t.Fatalf("stale journal temp file survived recovery: %v", err)
	}
}
