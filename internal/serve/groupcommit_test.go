package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cpa/internal/answers"
	"cpa/internal/core"
	"cpa/internal/labelset"
)

// TestJournalByteIdentityWithStdlib pins the new writer to the old one: a
// stream of answers, fit markers, a restart re-anchor and a tune annotation
// appended through the group-commit pipeline must leave on disk exactly the
// json.Marshal-composed bytes the pre-group-commit writer produced, with
// offsets matching the file.
func TestJournalByteIdentityWithStdlib(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	jr, err := openJournal(path, true, 0, JournalBase{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	batch := []answers.Answer{
		{Item: 0, Worker: 3, Labels: labelset.Of(1, 4, 5)},
		{Item: 9, Worker: 0, Labels: labelset.Of(0)},
		{Item: 511, Worker: 63, Labels: labelset.Of(2, 64, 1000)},
	}

	var want []byte
	appendStd := func(line journalLine) {
		raw, err := json.Marshal(line)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, raw...)
		want = append(want, '\n')
	}

	req := getCommitReq()
	req.buf = EncodeAnswerLines(req.buf[:0], batch)
	req.nrecs = int64(len(batch))
	if err := jr.reserve(req); err != nil {
		t.Fatal(err)
	}
	if err := jr.await(req); err != nil {
		t.Fatal(err)
	}
	for _, a := range batch {
		ja := answers.ToJSON(a)
		appendStd(journalLine{Op: opAnswer, Ans: &ja})
	}

	for _, line := range []journalLine{
		fitLine(2, true),
		fitLine(1, false),
		{Op: opTune, Par: 2, Batch: 64},
	} {
		r, err := jr.reserveLine(line)
		if err != nil {
			t.Fatal(err)
		}
		if err := jr.await(r); err != nil {
			t.Fatal(err)
		}
		appendStd(line)
	}
	if err := jr.appendRestart(); err != nil {
		t.Fatal(err)
	}
	appendStd(journalLine{Op: opRestart})

	off, recs := jr.offsets()
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("journal bytes diverge from the stdlib writer:\n got: %q\nwant: %q", got, want)
	}
	if off != int64(len(got)) {
		t.Fatalf("durable offset %d, file has %d bytes", off, len(got))
	}
	if wantRecs := int64(len(batch) + 4); recs != wantRecs {
		t.Fatalf("durable records %d, want %d", recs, wantRecs)
	}
}

// TestGroupCommitCoalesces drives the cohort mechanics deterministically: a
// group reserved while no leader runs is committed together with everything
// else sequenced before the first await — one flush, one cohort observation,
// file bytes in reservation order.
func TestGroupCommitCoalesces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	jr, err := openJournal(path, false, 0, JournalBase{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var hist ingestHist
	jr.stats = &hist

	var reqs []*commitReq
	var want []byte
	for i := 0; i < 3; i++ {
		batch := []answers.Answer{
			{Item: i, Worker: 2 * i, Labels: labelset.Of(i)},
			{Item: i + 10, Worker: 2*i + 1, Labels: labelset.Of(i, i+1)},
		}
		req := getCommitReq()
		req.buf = EncodeAnswerLines(req.buf[:0], batch)
		req.nrecs = int64(len(batch))
		want = append(want, req.buf...)
		if err := jr.reserve(req); err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, req)
	}
	// First await becomes the commit leader and drains all three groups as
	// one cohort; the remaining awaits find their buffered results.
	for _, req := range reqs {
		if err := jr.await(req); err != nil {
			t.Fatal(err)
		}
	}
	st := hist.summary()
	if st.Cohorts != 1 {
		t.Fatalf("expected one coalesced cohort, got %d", st.Cohorts)
	}
	if st.CohortRecords != 6 || st.MaxCohortRecords != 6 {
		t.Fatalf("cohort carried %d records (max %d), want 6", st.CohortRecords, st.MaxCohortRecords)
	}
	if st.Appends.Count != 3 {
		t.Fatalf("append latency histogram saw %d groups, want 3", st.Appends.Count)
	}
	// Bucket 3 covers (4, 8] records — a 6-record cohort.
	if st.CohortLog2Buckets[3] != 1 {
		t.Fatalf("cohort size histogram: %v, want one entry in bucket 3", st.CohortLog2Buckets)
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("cohort bytes out of reservation order:\n got: %q\nwant: %q", got, want)
	}
}

// TestJournalFailedAppendAfterClose pins the single-durable-path contract:
// Close drains and closes once, and a late append fails loudly instead of
// writing to a closed descriptor.
func TestJournalFailedAppendAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	jr, err := openJournal(path, false, 0, JournalBase{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := jr.reserveLine(journalLine{Op: opRestart})
	if err != nil {
		t.Fatal(err)
	}
	if err := jr.await(r); err != nil {
		t.Fatal(err)
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := jr.reserveLine(journalLine{Op: opRestart}); err == nil {
		t.Fatal("append after Close did not fail")
	}
}

// TestConcurrentIngestJournalConsistent hammers one persistent job from
// many goroutines and checks the group-committed journal is exactly the
// accepted stream: every line parses, the answer count matches, the durable
// offset equals the file size, and the ingest histograms account for every
// record.
func TestConcurrentIngestJournalConsistent(t *testing.T) {
	dir := t.TempDir()
	reg := mustOpen(t, Config{Dir: dir, BatchWait: time.Millisecond})
	spec := JobSpec{
		ID: "conc", Items: 256, Workers: 64, Labels: 16,
		Model: core.Config{Seed: 1, BatchSize: 64, Parallelism: 1},
	}
	job, err := reg.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 8
		batches = 40
		perB    = 5
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				batch := make([]answers.Answer, perB)
				for i := range batch {
					batch[i] = answers.Answer{
						Item:   (w*batches*perB + b*perB + i) % spec.Items,
						Worker: w * writers,
						Labels: labelset.Of((b + i) % spec.Labels),
					}
				}
				if err := job.Ingest(batch); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	total := int64(writers * batches * perB)
	if got := job.ingested.Load(); got != total {
		t.Fatalf("ingested %d answers, want %d", got, total)
	}
	waitFitted(t, job, total)
	st := job.Stats()
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	// Every acked answer must be durable, and the journal must be nothing
	// but complete well-formed lines adding up to the durable offset.
	var ans, fits int64
	err = ReadJournal(JournalPath(dir, "conc"), func(e JournalEntry) error {
		switch {
		case e.Answer != nil:
			ans++
		case e.FitN > 0:
			fits += int64(e.FitN)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ans != total {
		t.Fatalf("journal holds %d answers, want %d", ans, total)
	}
	if fits != total {
		t.Fatalf("fit markers cover %d answers, want %d", fits, total)
	}
	fi, err := os.Stat(JournalPath(dir, "conc"))
	if err != nil {
		t.Fatal(err)
	}
	if st.JournalBytes != fi.Size() {
		t.Fatalf("durable offset %d, file %d bytes", st.JournalBytes, fi.Size())
	}
	if st.Ingest.Appends.Count == 0 || st.Ingest.Cohorts == 0 {
		t.Fatalf("ingest histograms empty: %+v", st.Ingest)
	}
	// Cohort records count answers and control lines alike; at minimum every
	// answer rode some cohort.
	if st.Ingest.CohortRecords < total {
		t.Fatalf("cohorts carried %d records, want >= %d", st.Ingest.CohortRecords, total)
	}
	var sum int64
	for _, c := range st.Ingest.CohortLog2Buckets {
		sum += c
	}
	if sum != st.Ingest.Cohorts {
		t.Fatalf("cohort buckets sum to %d, want %d", sum, st.Ingest.Cohorts)
	}
}

// TestGroupCommitTruncationRecoversBitExact is the retention-smoke half of
// the group-commit contract: concurrent ingest over a truncating journal,
// then a hard kill — recovery must reproduce the bit-identical consensus
// from the base checkpoint plus the retained suffix, exactly as with the
// serial writer.
func TestGroupCommitTruncationRecoversBitExact(t *testing.T) {
	dir := t.TempDir()
	ds := shuffledStream(t, 0.08, 21)
	spec := JobSpec{
		ID: "gctrunc", Items: ds.NumItems, Workers: ds.NumWorkers, Labels: ds.NumLabels,
		Model: core.Config{Seed: 21, BatchSize: 64, Parallelism: 2},
	}
	reg := mustOpen(t, truncCfg(dir))
	job, err := reg.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	all := ds.Answers()
	const writers = 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w * 16; i < len(all); i += writers * 16 {
				end := i + 16
				if end > len(all) {
					end = len(all)
				}
				for {
					err := job.Ingest(all[i:end])
					if err == nil {
						break
					}
					if !errors.Is(err, ErrQueueFull) {
						t.Errorf("writer %d: %v", w, err)
						return
					}
					time.Sleep(200 * time.Microsecond)
				}
			}
		}(w)
	}
	wg.Wait()
	waitFitted(t, job, int64(len(all)))
	stats := job.Stats()
	reg.CrashAll()
	before := job.Snapshot()

	if stats.JournalFileBytes >= stats.JournalBytes {
		t.Fatalf("journal never truncated under group commit: file %d of %d global bytes",
			stats.JournalFileBytes, stats.JournalBytes)
	}

	reg2 := mustOpen(t, truncCfg(dir))
	defer reg2.Close()
	job2, ok := reg2.Get("gctrunc")
	if !ok {
		t.Fatal("job not recovered")
	}
	sameConsensus(t, before, job2.Snapshot())
}


// TestGroupCommitQueueMatchesJournalOrder pins the replay invariant the
// release chain exists for: with many writers racing through a chain of
// commit leaders, the fitter queue must receive batches in exactly journal
// order — a single leader handoff that released a later cohort first would
// let recovery rebuild a different model than the live one.
func TestGroupCommitQueueMatchesJournalOrder(t *testing.T) {
	dir := t.TempDir()
	// A parked fitter (huge mini-batch, hour-long wait) keeps every admitted
	// answer in the queue so its order can be read back verbatim.
	reg := mustOpen(t, Config{Dir: dir, QueueLimit: 1 << 20, BatchWait: time.Hour})
	defer reg.Close()
	spec := JobSpec{
		ID: "order", Items: 4096, Workers: 64, Labels: 8,
		Model: core.Config{Seed: 1, BatchSize: 1 << 19, Parallelism: 1},
	}
	job, err := reg.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 8
		batches = 50
		perB    = 4
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				batch := make([]answers.Answer, perB)
				for i := range batch {
					// The item index is a globally unique id: the journal and
					// the queue must list them in the same sequence.
					id := w*batches*perB + b*perB + i
					batch[i] = answers.Answer{Item: id, Worker: id % 64, Labels: labelset.Of(id % 8)}
				}
				if err := job.Ingest(batch); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Every cohort was flushed before its ack, so the on-disk journal is
	// complete the moment the last Ingest returns.
	var jorder []int
	err = ReadJournal(JournalPath(dir, "order"), func(e JournalEntry) error {
		if e.Answer != nil {
			jorder = append(jorder, e.Answer.Item)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	job.mu.Lock()
	qorder := make([]int, 0, len(job.queue)-job.head)
	for _, a := range job.queue[job.head:] {
		qorder = append(qorder, a.Item)
	}
	job.mu.Unlock()

	if len(jorder) != writers*batches*perB || len(qorder) != len(jorder) {
		t.Fatalf("journal holds %d answers, queue %d, want %d", len(jorder), len(qorder), writers*batches*perB)
	}
	for i := range jorder {
		if jorder[i] != qorder[i] {
			t.Fatalf("queue diverges from journal at position %d: journal item %d, queue item %d",
				i, jorder[i], qorder[i])
		}
	}
}

// TestTruncateDuringGroupCommitDoesNotDeadlock hammers journal truncation
// (which holds the job mutex and drains the commit pipeline) against a
// saturated group-commit pipeline. The old leader released cohorts inline
// while still owning the pipeline; its commitDurable call then blocked on
// the job mutex the draining truncate held, wedging the job permanently.
// The release chain keeps commitDurable off the write path, so the drain
// always completes; the watchdog is the assertion.
func TestTruncateDuringGroupCommitDoesNotDeadlock(t *testing.T) {
	dir := t.TempDir()
	reg := mustOpen(t, Config{Dir: dir, QueueLimit: 1 << 20, BatchWait: time.Hour})
	spec := JobSpec{
		ID: "dlock", Items: 512, Workers: 64, Labels: 8,
		Model: core.Config{Seed: 1, BatchSize: 1 << 19, Parallelism: 1},
	}
	job, err := reg.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for b := 0; ; b++ {
					select {
					case <-stop:
						return
					default:
					}
					batch := make([]answers.Answer, 4)
					for i := range batch {
						batch[i] = answers.Answer{Item: (w*1000 + b + i) % 512, Worker: w, Labels: labelset.Of(i)}
					}
					if err := job.Ingest(batch); err != nil {
						if !errors.Is(err, ErrQueueFull) {
							t.Errorf("writer %d: %v", w, err)
						}
						return
					}
				}
			}(w)
		}
		// Zero-coverage truncations drop nothing but exercise the full
		// drain-and-swap under the job mutex, exactly like the production
		// truncateJournal locking shape.
		for i := 0; i < 100; i++ {
			job.mu.Lock()
			_, terr := job.journal.truncate(JournalPath(dir, "dlock"), 0, 0, 0)
			job.mu.Unlock()
			if terr != nil {
				t.Errorf("truncate %d: %v", i, terr)
				break
			}
		}
		close(stop)
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		// Deliberately leak the wedged registry: closing it would hang too.
		t.Fatal("truncate wedged against the group-commit pipeline")
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestIngestSteadyStateAllocs pins the zero-alloc claim end to end: a
// steady-state NDJSON POST through ServeHTTP — decode, admission, journal
// group commit, queue — must cost a small fixed number of allocations per
// request (harness, response encoding, the per-request label arena),
// amortised ~0 per record. The budget is fixed + records/8; the old
// stdlib-codec path cost ~6 allocations per record and fails this by 40×.
func TestIngestSteadyStateAllocs(t *testing.T) {
	dir := t.TempDir()
	// A huge mini-batch and a parked fitter keep the fit path out of the
	// measurement; the queue limit admits every record of the run.
	reg := mustOpen(t, Config{Dir: dir, QueueLimit: 1 << 20, BatchWait: time.Hour})
	defer reg.Close()
	spec := JobSpec{
		ID: "alloc", Items: 512, Workers: 64, Labels: 32,
		Model: core.Config{Seed: 1, BatchSize: 1 << 19, Parallelism: 1},
	}
	if _, err := reg.Create(spec); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg)

	const records = 256
	var body bytes.Buffer
	for i := 0; i < records; i++ {
		fmt.Fprintf(&body, "{\"i\":%d,\"u\":%d,\"x\":[%d,%d]}\n", i%512, i%64, i%32, (i+7)%32)
	}
	payload := body.Bytes()
	run := func() {
		req := httptest.NewRequest("POST", "/v1/jobs/alloc/answers", bytes.NewReader(payload))
		req.Header.Set("Content-Type", "application/x-ndjson")
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusAccepted {
			t.Fatalf("POST status %d: %s", rec.Code, rec.Body.String())
		}
	}
	// Warm the pools (scratch buffers, commit requests, http internals).
	for i := 0; i < 4; i++ {
		run()
	}
	avg := testing.AllocsPerRun(50, run)
	budget := float64(96 + records/8)
	if avg > budget {
		t.Fatalf("ingest path allocates %.1f per request (%d records), budget %.0f", avg, records, budget)
	}
}
