package serve

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"cpa/internal/answers"
	"cpa/internal/core"
)

// Job is one tenant's consensus computation: a core.Model advanced by a
// dedicated background fitter goroutine, fed through a bounded queue, and
// read through atomically published snapshots. The model is owned by the
// fitter; nothing else may touch it while the job is running.
type Job struct {
	spec JobSpec
	dir  string // job directory, "" when the registry is ephemeral

	// Ingestion state, guarded by mu. Journal appends are *sequenced* under
	// mu (reserved into the commit pipeline, keeping on-disk order identical
	// to queue order) but awaited outside it, so concurrent ingesters
	// coalesce under a group-commit leader instead of serialising a flush
	// each behind the mutex. The queue is a head-indexed ring: dequeue
	// advances head (amortised O(1)) instead of memmoving the tail, which
	// would be O(depth) per mini-batch and quadratic under a deep backlog.
	mu      sync.Mutex
	queue   []answers.Answer
	head    int
	// reserved counts answers sequenced into the commit pipeline but not yet
	// durable (they join queue in commitDurable). Backpressure counts them:
	// they are admitted load.
	reserved int
	closed   bool
	crashed  bool // test hook: stop without draining or checkpointing
	journal  *journal
	// epoch is the cluster-ownership record (epoch.go). Zero value — primary
	// at epoch 0 — for single-node jobs that never see a Fence/Promote.
	epoch epochState

	wake chan struct{} // 1-buffered ingest/close signal to the fitter

	model *core.Model // fitter-owned while running
	// pub is the reusable snapshot engine (core.Publisher): caught-up
	// rounds publish the full finalize pipeline, backlogged rounds refresh
	// only the batch-dirty items (O(batch), not O(stream)). Fitter-owned.
	pub *core.Publisher

	snap     atomic.Pointer[Snapshot]
	snapTime atomic.Int64 // unixnano of the last publication
	pubHist  publishHist  // publish-latency histogram (log₂ buckets)
	// ingestHist aggregates group-commit observability (cohort sizes,
	// append→durable latency); the journal's commit leader feeds it.
	ingestHist ingestHist
	// tuner is the optional USL capacity controller (tuner.go); traj the
	// optional per-worker reliability trajectory sampler. Both fitter-fed.
	tuner *tuner
	traj  *workerTraj

	ingested atomic.Int64 // answers accepted (journaled + queued)
	fitted   atomic.Int64 // answers consumed by PartialFit
	rounds   atomic.Int64 // PartialFit calls
	failure  atomic.Pointer[string]

	queueLimit  int
	saveEvery   int
	batchWait   time.Duration
	truncate    bool
	truncateMin int64

	wg sync.WaitGroup
}

// newJob wires a job around an existing model (fresh or recovered) without
// starting the fitter. The flow counters seed from the model's total
// ingested count (not the retained count, which an answer window trims).
func newJob(spec JobSpec, model *core.Model, dir string, cfg Config) *Job {
	j := &Job{
		spec:        spec,
		dir:         dir,
		model:       model,
		pub:         core.NewPublisher(model),
		wake:        make(chan struct{}, 1),
		queueLimit:  cfg.QueueLimit,
		saveEvery:   cfg.SaveEvery,
		batchWait:   cfg.BatchWait,
		truncate:    cfg.TruncateJournal,
		truncateMin: cfg.TruncateMin,
	}
	if cfg.AutoTune {
		j.tuner = newTuner(cfg, model.Config())
	}
	if spec.Workers <= trajMaxWorkers {
		j.traj = newWorkerTraj(spec.Workers)
	}
	j.snap.Store(emptySnapshot(spec, time.Now()))
	j.snapTime.Store(time.Now().UnixNano())
	j.ingested.Store(int64(model.TotalIngested()))
	j.fitted.Store(int64(model.TotalIngested()))
	j.rounds.Store(int64(model.BatchRounds()))
	return j
}

func (j *Job) start() {
	j.wg.Add(1)
	go j.run()
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.spec.ID }

// Spec returns the job's specification (with the effective model config).
func (j *Job) Spec() JobSpec { return j.spec }

// Snapshot returns the latest published consensus snapshot. It never
// blocks on fitting: the returned value is immutable and shared.
func (j *Job) Snapshot() *Snapshot { return j.snap.Load() }

// Ingest validates and accepts a batch of answers: journals them (when
// persistent) and queues them for the background fitter. It applies
// backpressure via ErrQueueFull and never blocks on fitting. The batch
// carries no ownership stamp: it is rejected only if the job is deposed.
func (j *Job) Ingest(batch []answers.Answer) error {
	return j.IngestAt(batch, -1)
}

// IngestAt is Ingest with a cluster-ownership stamp: the write is rejected
// with ErrFenced unless epoch matches the job's current ownership epoch
// (epoch < 0 skips the equality check but still rejects a deposed job).
// The router stamps every proxied write so a deposed primary can never ack
// an answer behind a newer owner's back.
func (j *Job) IngestAt(batch []answers.Answer, epoch int64) error {
	if len(batch) == 0 {
		return nil
	}
	for _, a := range batch {
		if err := j.validate(a); err != nil {
			return err
		}
	}
	// Encode the journal lines before taking the mutex: the bytes are a pure
	// function of the batch, and the mutex hold should cover only admission
	// and sequencing. Persistent jobs always have a journal; j.dir is an
	// immutable proxy for that, readable without the lock.
	var req *commitReq
	if j.dir != "" {
		req = getCommitReq()
		req.buf = EncodeAnswerLines(req.buf[:0], batch)
		req.nrecs = int64(len(batch))
	}
	j.mu.Lock()
	if err := j.admitLocked(epoch, len(batch)); err != nil {
		j.mu.Unlock()
		if req != nil {
			putCommitReq(req)
		}
		return err
	}
	jr := j.journal
	if jr == nil {
		// Ephemeral job: no durability to wait for, queue directly.
		j.queue = append(j.queue, batch...)
		j.mu.Unlock()
		if req != nil {
			putCommitReq(req)
		}
		j.ingested.Add(int64(len(batch)))
		j.signal()
		return nil
	}
	req.job, req.batch = j, batch
	if err := jr.reserve(req); err != nil {
		j.mu.Unlock()
		req.job, req.batch = nil, nil
		putCommitReq(req)
		return fmt.Errorf("serve: journaling batch: %w", err)
	}
	j.reserved += len(batch)
	j.mu.Unlock()
	// Wait for durability outside the mutex; the release chain has already
	// queued the batch (commitDurable) by the time the wait returns.
	if err := jr.await(req); err != nil {
		return fmt.Errorf("serve: journaling batch: %w", err)
	}
	j.ingested.Add(int64(len(batch)))
	return nil
}

// admitLocked runs the ingest admission checks under j.mu: ownership epoch,
// liveness, and queue backpressure (counting pipeline-reserved answers as
// admitted load).
func (j *Job) admitLocked(epoch int64, n int) error {
	if err := j.checkEpochLocked(epoch); err != nil {
		return err
	}
	if j.closed {
		return ErrClosed
	}
	if msg := j.failure.Load(); msg != nil {
		return fmt.Errorf("%w: job failed: %s", ErrClosed, *msg)
	}
	if depth := len(j.queue) - j.head + j.reserved; depth+n > j.queueLimit {
		return fmt.Errorf("%w: %d queued + %d incoming > limit %d",
			ErrQueueFull, depth, n, j.queueLimit)
	}
	return nil
}

// commitDurable is the group-commit release chain's post-durability hook,
// called once per reserved batch in pipeline (= journal) order before the
// waiter is released. On success the batch moves from reserved to queued, so queue
// order stays identical to journal order — the invariant fit-marker replay
// depends on. On failure the reservation is released and the batch never
// queued, preserving the old failed-append-is-never-fitted semantics.
func (j *Job) commitDurable(batch []answers.Answer, err error) {
	j.mu.Lock()
	j.reserved -= len(batch)
	if err == nil {
		j.queue = append(j.queue, batch...)
	}
	j.mu.Unlock()
	if err == nil {
		j.signal()
	}
}

func (j *Job) validate(a answers.Answer) error { return j.spec.validateAnswer(a) }

// validateAnswer checks one answer against the spec's dimensions. Shared by
// the live ingest path and the cluster follower's journal applier.
func (s JobSpec) validateAnswer(a answers.Answer) error {
	if a.Item < 0 || a.Item >= s.Items {
		return fmt.Errorf("%w: item %d out of range [0,%d)", ErrInvalid, a.Item, s.Items)
	}
	if a.Worker < 0 || a.Worker >= s.Workers {
		return fmt.Errorf("%w: worker %d out of range [0,%d)", ErrInvalid, a.Worker, s.Workers)
	}
	if a.Labels.IsEmpty() {
		return fmt.Errorf("%w: empty answer for item %d worker %d", ErrInvalid, a.Item, a.Worker)
	}
	if mx := a.Labels.Max(); mx >= s.Labels {
		return fmt.Errorf("%w: label %d out of range [0,%d)", ErrInvalid, mx, s.Labels)
	}
	return nil
}

// enqueueRecovered requeues journal answers that had not been fitted before
// a crash. They are already in the journal and must not be re-journaled.
func (j *Job) enqueueRecovered(pending []answers.Answer) {
	if len(pending) == 0 {
		return
	}
	j.mu.Lock()
	j.queue = append(j.queue, pending...)
	j.mu.Unlock()
	j.signal()
}

func (j *Job) signal() {
	select {
	case j.wake <- struct{}{}:
	default:
	}
}

// Stats summarises the job's live serving state. The adaptivity diagnostics
// (effective communities/clusters) are read from the published snapshot —
// they were computed once at publication; a /statsz hit must not touch the
// model or recompute anything per request.
func (j *Job) Stats() JobStats {
	j.mu.Lock()
	depth := len(j.queue) - j.head + j.reserved
	var jb, jr, jfb int64
	if j.journal != nil {
		jb, jr = j.journal.globalOffsets()
		jfb, _ = j.journal.offsets()
	}
	epoch := j.epoch
	j.mu.Unlock()
	snap := j.snap.Load()
	st := JobStats{
		ID:                   j.spec.ID,
		Items:                j.spec.Items,
		Workers:              j.spec.Workers,
		Labels:               j.spec.Labels,
		IngestedAnswers:      j.ingested.Load(),
		FittedAnswers:        j.fitted.Load(),
		QueueDepth:           depth,
		FitRounds:            j.rounds.Load(),
		SnapshotRound:        snap.Round,
		SnapshotAgeSec:       time.Since(time.Unix(0, j.snapTime.Load())).Seconds(),
		EffectiveCommunities: snap.EffectiveCommunities,
		EffectiveClusters:    snap.EffectiveClusters,
		Publish:              j.pubHist.summary(),
		Ingest:               j.ingestHist.summary(),
		JournalBytes:         jb,
		JournalRecords:       jr,
		JournalFileBytes:     jfb,
		Epoch:                epoch.Epoch,
		Deposed:              epoch.Deposed,
	}
	if j.tuner != nil {
		st.AutoTune = j.tuner.snapshot()
	}
	if msg := j.failure.Load(); msg != nil {
		st.Error = *msg
	}
	return st
}

// WorkerTrajectories returns the recent per-worker reliability samples the
// publisher recorded (nil when the job's worker count exceeds the sampling
// cap). Only workers with at least one sample appear. Exposed on /statsz
// behind ?workers=1: the payload is O(workers × ring), far too heavy to ship
// on every stats poll.
func (j *Job) WorkerTrajectories() []WorkerTrajectory {
	if j.traj == nil {
		return nil
	}
	return j.traj.trajectories()
}

// JournalOffsets returns the durable (byte, record) position of the job's
// journal in global (never-truncated) coordinates — the replication
// coordinates the cluster layer ships and compares. Both are 0 for
// ephemeral (journal-less) jobs.
func (j *Job) JournalOffsets() (bytes, recs int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.journal == nil {
		return 0, 0
	}
	return j.journal.globalOffsets()
}

// journalSection is an openable byte range of the journal file, resolved
// from global coordinates under the job mutex so a concurrent truncation
// cannot shift the mapping between the offset check and the open. The file
// handle pins the inode: a truncation that renames a compacted file over
// the path while a reader drains the section does not disturb it.
type journalSection struct {
	f *os.File
	// start/n are the file-local byte range to serve.
	start, n int64
	// durable is the global durable offset at open time; served bytes end at
	// min(from+max, durable) in global coordinates.
	durable int64
	// base/hdrLen describe the file's truncation header. When the section
	// includes the header (a base handshake), start is 0 and n counts the
	// header line; the reader must subtract hdrLen when advancing its global
	// offset.
	base   JournalBase
	hdrLen int64
}

func (s *journalSection) Close() error { return s.f.Close() }

// openJournalSection maps the global byte range [from, from+max) onto the
// current journal file and opens it for reading. A from below the base
// offset fails with ErrTruncated — the prefix no longer exists on disk and
// the reader must re-handshake from the base (fetch the base checkpoint,
// then request from == base.Bytes with includeBase set, which serves the
// physical file from byte 0 so the base header travels with the suffix).
func (j *Job) openJournalSection(from, max int64, includeBase bool) (*journalSection, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.journal == nil {
		return nil, fmt.Errorf("%w: job has no journal", ErrInvalid)
	}
	durable, base, hdr := j.journal.view()
	if from < base.Bytes {
		return nil, fmt.Errorf("%w (requested %d, base %d)", ErrTruncated, from, base.Bytes)
	}
	if from > durable {
		return nil, fmt.Errorf("%w: offset %d beyond durable %d", ErrInvalid, from, durable)
	}
	if includeBase && from != base.Bytes {
		return nil, fmt.Errorf("%w: base handshake must start at the base offset %d, got %d",
			ErrInvalid, base.Bytes, from)
	}
	end := durable
	if max > 0 && from+max < end {
		end = from + max
	}
	// File-local mapping of a global offset: hdr + (global − base.Bytes).
	start := hdr + (from - base.Bytes)
	n := (end - from)
	if includeBase {
		start, n = 0, n+hdr
	}
	f, err := os.Open(filepath.Join(j.dir, journalFile))
	if err != nil {
		return nil, fmt.Errorf("serve: opening journal for tail: %w", err)
	}
	return &journalSection{f: f, start: start, n: n, durable: durable, base: base, hdrLen: hdr}, nil
}

// journalBase returns the journal's truncation base (zero for an untruncated
// or ephemeral job).
func (j *Job) journalBase() JournalBase {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.journal == nil {
		return JournalBase{}
	}
	_, base, _ := j.journal.view()
	return base
}

// JobStats is the JSON-ready serving state of one job (the /statsz shape).
type JobStats struct {
	ID              string  `json:"id"`
	Items           int     `json:"items"`
	Workers         int     `json:"workers"`
	Labels          int     `json:"labels"`
	IngestedAnswers int64   `json:"ingested_answers"`
	FittedAnswers   int64   `json:"fitted_answers"`
	QueueDepth      int     `json:"queue_depth"`
	FitRounds       int64   `json:"fit_rounds"`
	SnapshotRound   int     `json:"snapshot_round"`
	SnapshotAgeSec  float64 `json:"snapshot_age_seconds"`
	// EffectiveCommunities/EffectiveClusters mirror the published snapshot's
	// adaptivity diagnostics (computed at publication, never per request).
	EffectiveCommunities int `json:"effective_communities"`
	EffectiveClusters    int `json:"effective_clusters"`
	// Publish is the job's cumulative snapshot-publication latency
	// histogram.
	Publish PublishStats `json:"publish"`
	// Ingest is the journal group-commit observability: append→durable
	// latency and cohort-size histograms (zeroed for ephemeral jobs).
	Ingest IngestStats `json:"ingest"`
	// JournalBytes/JournalRecords are the durable journal position in global
	// (never-truncated) coordinates: the byte length and record count covered
	// by fully flushed, complete lines, continuous and monotone across journal
	// truncations. They are the replication coordinates of the cluster layer —
	// a follower whose applied byte offset equals the primary's journal_bytes
	// has replayed the same records — and 0/0 for ephemeral (journal-less)
	// jobs. JournalFileBytes is the on-disk size of the current journal file;
	// with truncation enabled it stays bounded while JournalBytes grows.
	JournalBytes     int64 `json:"journal_bytes"`
	JournalRecords   int64 `json:"journal_records"`
	JournalFileBytes int64 `json:"journal_file_bytes"`
	// Epoch/Deposed expose the cluster-ownership record: writes are fenced
	// (409) on a deposed replica or under a mismatched epoch stamp.
	Epoch   int64 `json:"epoch"`
	Deposed bool  `json:"deposed,omitempty"`
	// AutoTune is the live capacity-tuner state (per-knob USL fit, knee, and
	// current setting), present only when the job runs with Config.AutoTune.
	AutoTune *AutoTuneStats `json:"auto_tune,omitempty"`
	// WorkerTraj carries per-worker reliability trajectories; populated only
	// on explicit request (/statsz?workers=1), never on plain stats polls.
	WorkerTraj []WorkerTrajectory `json:"worker_trajectories,omitempty"`
	Error      string             `json:"error,omitempty"`
}

// publishBuckets is the log₂ bucket count of the publish-latency histogram;
// publishBase the upper bound of the first bucket. The family matches
// loadgen's latency histograms (50µs base, doubling), so soak reports can
// diff the exported counters phase over phase.
const (
	publishBuckets = 32
	publishBase    = 50 * time.Microsecond
)

// PublishStats is the JSON-ready cumulative publish-latency histogram.
type PublishStats struct {
	Count int64 `json:"count"`
	SumNs int64 `json:"sum_ns"`
	MaxNs int64 `json:"max_ns"`
	// Log2Buckets counts publications per latency bucket: bucket b covers
	// (50µs·2^(b-1), 50µs·2^b], with bucket 0 covering (0, 50µs].
	Log2Buckets []int64 `json:"log2_buckets"`
}

// publishHist accumulates publish latencies. The fitter is the only writer;
// Stats readers are concurrent, so a small mutex guards the counters (one
// lock per round and per /statsz hit — nowhere near a hot path).
type publishHist struct {
	mu     sync.Mutex
	counts [publishBuckets]int64
	n      int64
	sumNs  int64
	maxNs  int64
}

func (h *publishHist) observe(d time.Duration) {
	b := 0
	for bound := publishBase; b < publishBuckets-1 && d > bound; bound *= 2 {
		b++
	}
	h.mu.Lock()
	h.counts[b]++
	h.n++
	h.sumNs += int64(d)
	if int64(d) > h.maxNs {
		h.maxNs = int64(d)
	}
	h.mu.Unlock()
}

func (h *publishHist) summary() PublishStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return PublishStats{
		Count:       h.n,
		SumNs:       h.sumNs,
		MaxNs:       h.maxNs,
		Log2Buckets: append([]int64(nil), h.counts[:]...),
	}
}

// cohortBuckets is the log₂ bucket count of the cohort-size histogram;
// 2^15 records in one commit is far past any realistic coalescing run.
const cohortBuckets = 16

// IngestStats is the JSON-ready group-commit observability of one job:
// whether appends coalesce (cohort sizes) and what durability costs each
// caller (append→durable latency, same 50µs log₂ family as PublishStats,
// so soak reports can diff them phase over phase).
type IngestStats struct {
	// Appends is the append→durable commit latency histogram: one sample
	// per reserved record group, measured from sequencing to release.
	Appends PublishStats `json:"appends"`
	// Cohorts counts group commits (flush rounds); CohortRecords the records
	// they carried. CohortRecords/Cohorts is the coalescing factor — 1.0
	// means no coalescing, the old one-flush-per-append behaviour.
	Cohorts          int64 `json:"cohorts"`
	CohortRecords    int64 `json:"cohort_records"`
	MaxCohortRecords int64 `json:"max_cohort_records"`
	// CohortLog2Buckets counts cohorts by record count: bucket 0 is a lone
	// record (no coalescing), bucket b counts cohorts of (2^(b-1), 2^b].
	CohortLog2Buckets []int64 `json:"cohort_log2_buckets"`
}

// ingestHist accumulates group-commit statistics. The journal's commit
// leader is the only writer and observes once per cohort, outside every
// journal and job lock; /statsz readers are concurrent.
type ingestHist struct {
	mu      sync.Mutex
	appends [publishBuckets]int64
	n       int64
	sumNs   int64
	maxNs   int64
	cohorts [cohortBuckets]int64
	ncoh    int64
	recs    int64
	maxRecs int64
}

// observe records one committed cohort: its total record count and, per
// reserved group in it, the sequencing→durable latency.
func (h *ingestHist) observe(cohort []*commitReq, nrecs int64) {
	now := time.Now()
	cb := 0
	for cb < cohortBuckets-1 && nrecs > int64(1)<<uint(cb) {
		cb++
	}
	h.mu.Lock()
	h.cohorts[cb]++
	h.ncoh++
	h.recs += nrecs
	if nrecs > h.maxRecs {
		h.maxRecs = nrecs
	}
	for _, r := range cohort {
		d := now.Sub(r.t0)
		b := 0
		for bound := publishBase; b < publishBuckets-1 && d > bound; bound *= 2 {
			b++
		}
		h.appends[b]++
		h.n++
		h.sumNs += int64(d)
		if int64(d) > h.maxNs {
			h.maxNs = int64(d)
		}
	}
	h.mu.Unlock()
}

func (h *ingestHist) summary() IngestStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return IngestStats{
		Appends: PublishStats{
			Count:       h.n,
			SumNs:       h.sumNs,
			MaxNs:       h.maxNs,
			Log2Buckets: append([]int64(nil), h.appends[:]...),
		},
		Cohorts:           h.ncoh,
		CohortRecords:     h.recs,
		MaxCohortRecords:  h.maxRecs,
		CohortLog2Buckets: append([]int64(nil), h.cohorts[:]...),
	}
}

// Close stops ingestion, lets the fitter drain the queue, checkpoints the
// model (persistent jobs), and closes the journal. Idempotent.
func (j *Job) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		j.wg.Wait()
		return nil
	}
	j.closed = true
	j.mu.Unlock()
	j.signal()
	j.wg.Wait()

	var err error
	if j.dir != "" && j.failure.Load() == nil {
		err = j.saveModel()
		if err == nil && j.truncate {
			// A clean close drained the queue, so the final fit round (if
			// any) published full and the checkpoint just written covers the
			// whole journal: truncate now instead of carrying one extra
			// journal window across a graceful restart.
			err = j.truncateJournal()
		}
	}
	if j.journal != nil {
		if cerr := j.journal.Close(); err == nil {
			err = cerr
		}
		j.journal = nil
	}
	return err
}

// crash simulates a hard kill for recovery tests: the fitter stops without
// draining the queue, and no final checkpoint or journal close runs (journal
// appends are already flushed per batch, as they would be in a real crash).
func (j *Job) crash() {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return
	}
	j.closed = true
	j.crashed = true
	j.mu.Unlock()
	j.signal()
	j.wg.Wait()
	if j.journal != nil {
		j.journal.closeCrash()
		j.journal = nil
	}
}

// ---------------------------------------------------------------------------
// Background fitter
// ---------------------------------------------------------------------------

// batchPool recycles mini-batch slices across fit rounds (and across jobs):
// a fresh []answers.Answer per round was one allocation per round forever.
var batchPool = sync.Pool{New: func() any { return new([]answers.Answer) }}

func (j *Job) run() {
	defer j.wg.Done()
	roundsSinceSave := 0
	for {
		bp, ok := j.nextBatch()
		if !ok {
			return
		}
		n := len(*bp)
		start := time.Now()
		err := j.fitBatch(*bp, &roundsSinceSave)
		dur := time.Since(start)
		// PartialFit copies what it keeps (label sets are flattened into the
		// model's own storage), so the batch recycles as soon as the round
		// is done. Clear the entries so pooled memory doesn't pin label
		// sets.
		clear(*bp)
		*bp = (*bp)[:0]
		batchPool.Put(bp)
		if err != nil {
			msg := err.Error()
			j.failure.Store(&msg)
			return
		}
		if j.tuner != nil {
			j.tuner.observeRound(n, dur)
			j.applyTune()
		}
	}
}

// applyTune lets the tuner close a measurement window and applies any
// adjustment between rounds — the only place the model's knobs ever move.
// The move lands in the journal as a tune annotation: replay-inert
// (Parallelism is bit-invisible and batch boundaries are journaled per fit
// marker), it exists so operators and followers can see the trajectory. A
// failed annotation append is ignored — a broken journal already fails the
// job loudly on its next ingest or fit marker.
func (j *Job) applyTune() {
	par, batch := j.tuner.maybeTune(j.model.Config())
	if par == 0 && batch == 0 {
		return
	}
	if err := j.model.Retune(par, batch); err != nil {
		return
	}
	cfg := j.model.Config()
	j.mu.Lock()
	jr := j.journal
	var req *commitReq
	if jr != nil {
		req, _ = jr.reserveLine(journalLine{Op: opTune, Par: cfg.Parallelism, Batch: cfg.BatchSize})
	}
	j.mu.Unlock()
	if req != nil {
		_ = jr.await(req)
	}
}

// nextBatch blocks until a mini-batch is available: a full BatchSize, or
// whatever is queued once BatchWait has elapsed since data appeared (bounded
// consensus staleness under trickle load), or the remainder at close. It
// returns ok=false when the job is done. The returned slice comes from
// batchPool; the caller returns it after the round.
func (j *Job) nextBatch() (*[]answers.Answer, bool) {
	batchSize := j.model.Config().BatchSize
	var deadline time.Time
	for {
		j.mu.Lock()
		n := len(j.queue) - j.head
		done := j.crashed || (j.closed && n == 0)
		ripe := n >= batchSize ||
			(n > 0 && j.closed) ||
			(n > 0 && !deadline.IsZero() && !time.Now().Before(deadline))
		if done {
			j.mu.Unlock()
			return nil, false
		}
		if ripe {
			take := n
			if take > batchSize {
				take = batchSize
			}
			bp := batchPool.Get().(*[]answers.Answer)
			*bp = append((*bp)[:0], j.queue[j.head:j.head+take]...)
			j.head += take
			if j.head == len(j.queue) {
				j.queue = j.queue[:0]
				j.head = 0
			} else if j.head >= 1024 && j.head*2 >= len(j.queue) {
				// Compact once the dead prefix dominates, so a long-lived
				// backlog doesn't pin memory for answers already fitted.
				rest := copy(j.queue, j.queue[j.head:])
				j.queue = j.queue[:rest]
				j.head = 0
			}
			j.mu.Unlock()
			return bp, true
		}
		if n > 0 && deadline.IsZero() {
			deadline = time.Now().Add(j.batchWait)
		}
		j.mu.Unlock()
		if deadline.IsZero() {
			<-j.wake
		} else {
			select {
			case <-j.wake:
			case <-time.After(time.Until(deadline)):
			}
		}
	}
}

// fitBatch advances the model one SVI round, journals the fit marker (with
// the round's publish mode), publishes a snapshot, and periodically
// checkpoints. The mode is chosen by backlog: a caught-up round publishes
// the full finalize pipeline — so every quiesced snapshot is bit-identical
// to the offline FitStream+FinalizeOnline computation — while a backlogged
// round publishes incrementally, refreshing only the items this batch
// touched (plus a bounded sweep) in O(batch) instead of O(stream). Because
// the mode lands in the journal before the publication, any published
// snapshot — including a mid-backlog one a crash pins — is reproducible by
// replay.
func (j *Job) fitBatch(batch []answers.Answer, roundsSinceSave *int) error {
	if err := j.model.PartialFit(batch); err != nil {
		return err
	}
	j.fitted.Add(int64(len(batch)))
	j.rounds.Add(1)
	j.mu.Lock()
	full := len(j.queue)-j.head == 0
	if j.truncate && j.dir != "" && *roundsSinceSave+1 >= j.saveEvery {
		// This round's checkpoint may anchor a truncation, and only a
		// full-published round can (the retained suffix must replay from a
		// full posterior). Force the full pipeline — the mode is journaled
		// before the publication, so replay and followers mirror it exactly.
		full = true
	}
	var jerr error
	var req *commitReq
	jr := j.journal
	if jr != nil {
		req, jerr = jr.reserveLine(fitLine(len(batch), full))
	}
	j.mu.Unlock()
	if jerr != nil {
		return fmt.Errorf("serve: journaling fit marker: %w", jerr)
	}
	if req != nil {
		// The marker must be durable before the publication it describes:
		// a snapshot must never be observable without its journal record,
		// or replay could fall one publication behind a served state.
		if err := jr.await(req); err != nil {
			return fmt.Errorf("serve: journaling fit marker: %w", err)
		}
	}
	if err := j.publish(full); err != nil {
		return err
	}
	if j.dir != "" {
		*roundsSinceSave++
		if *roundsSinceSave >= j.saveEvery {
			*roundsSinceSave = 0
			if err := j.saveModel(); err != nil {
				return err
			}
			if full && j.truncate {
				if err := j.truncateJournal(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// truncateJournal drops the journal prefix the checkpoint just written
// covers (DESIGN.md §12). Only checkpoints taken at a full publication
// anchor a truncation: incremental snapshot chains reference publisher
// history back to the last full round, so replay of the retained suffix
// must start from a full-published posterior. The ordering is the crash
// protocol: base.gob (a copy of the anchoring checkpoint) reaches disk
// before the journal rewrite commits, so a journal with a base header
// always has its anchor; a kill after base.gob but before the rename
// leaves an untruncated journal plus a newer base.gob, which recovery
// ignores in favor of model.gob.
func (j *Job) truncateJournal() error {
	coveredAns := int64(j.model.TotalIngested())
	coveredFits := int64(j.model.BatchRounds())
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.journal == nil || j.journal.fileLen() < j.truncateMin {
		return nil
	}
	if err := copyFileAtomic(filepath.Join(j.dir, modelFile), filepath.Join(j.dir, baseFile)); err != nil {
		return fmt.Errorf("serve: anchoring base checkpoint: %w", err)
	}
	_, err := j.journal.truncate(filepath.Join(j.dir, journalFile), coveredAns, coveredFits, j.truncateMin)
	if err != nil {
		return fmt.Errorf("serve: truncating journal: %w", err)
	}
	return nil
}

// publish builds and atomically swaps in a fresh consensus snapshot through
// the reusable core.Publisher. The live model keeps streaming untouched:
// finalize runs on the publisher's shared-prefix clone, so a caught-up
// (full) publication and the offline FitStream path produce identical
// posteriors for identical batch sequences. Incremental publications share
// the untouched items' snapshot entries with the previous publication.
func (j *Job) publish(full bool) error {
	start := time.Now()
	view, dirty, err := j.pub.Publish(full)
	if err != nil {
		return fmt.Errorf("serve: building snapshot: %w", err)
	}
	now := time.Now()
	j.snap.Store(nextSnapshot(j.spec.ID, j.snap.Load(), view, dirty, now))
	j.snapTime.Store(now.UnixNano())
	j.pubHist.observe(time.Since(start))
	if j.traj != nil {
		j.traj.maybeRecord(j.rounds.Load(), j.model)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

const (
	specFile    = "job.json"
	journalFile = "journal.jsonl"
	modelFile   = "model.gob"
	baseFile    = "base.gob"
)

// Canonical job-directory file names, exported for the cluster layer: a
// follower stages a shipped journal (plus the spec and, on planned handoff,
// the primary's checkpoint) under these names so Registry.AdoptJob can run
// the standard recovery path over the staged directory. BaseCheckpointFileName
// is the truncation anchor: the checkpoint copy a truncated journal's base
// header refers to, staged by followers of a truncated source.
const (
	SpecFileName           = specFile
	JournalFileName        = journalFile
	CheckpointFileName     = modelFile
	BaseCheckpointFileName = baseFile
)

// JournalPath returns the path of a job's ingestion journal under a
// registry data directory — the file ReadJournal consumes. The on-disk
// layout is private to this package; external replay tooling (loadgen's
// invariant checker) must resolve paths through this helper rather than
// hardcoding it.
func JournalPath(dataDir, jobID string) string {
	return filepath.Join(dataDir, "jobs", jobID, journalFile)
}

// saveModel checkpoints the live posterior atomically (tmp + rename). Only
// the fitter goroutine (or Close, after the fitter exited) calls this.
func (j *Job) saveModel() error {
	tmp := filepath.Join(j.dir, modelFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("serve: checkpointing model: %w", err)
	}
	if err := j.model.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("serve: checkpointing model: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: checkpointing model: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(j.dir, modelFile)); err != nil {
		return fmt.Errorf("serve: checkpointing model: %w", err)
	}
	return nil
}

// copyFileAtomic copies src to dst through a temp file, fsyncing before the
// rename so a crash can never leave a torn dst.
func copyFileAtomic(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	tmp := dst + ".tmp"
	out, err := os.Create(tmp)
	if err != nil {
		return err
	}
	_, err = io.Copy(out, in)
	if err == nil {
		err = out.Sync()
	}
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, dst)
}
