package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"unicode/utf8"

	"cpa/internal/answers"
	"cpa/internal/labelset"
)

// Zero-allocation journal and NDJSON codec.
//
// The journal's byte format is frozen: replication ships raw byte ranges,
// truncation headers record global byte coordinates, and crash recovery
// truncates torn tails at byte offsets — every one of those addresses the
// exact bytes encoding/json produced since the first release. This file
// removes encoding/json from the ingest hot path without moving a single
// byte: the encoder below is hand-rolled but produces output byte-for-byte
// equal to json.Marshal for journalLine and the NDJSON answer records
// (pinned by the equivalence fuzz suite in jcodec_test.go), and the decoder
// is a strict fast-path parser that only accepts the canonical form — any
// input it cannot prove canonical falls back to encoding/json, so decode
// behaviour (including every error) is equivalent by construction.

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

const hexDigits = "0123456789abcdef"

// appendJSONString appends the JSON encoding of s, quotes included,
// replicating encoding/json's default string encoder exactly: the HTML
// characters <, > and & are \u00XX-escaped, control characters use the
// short forms where the stdlib does, invalid UTF-8 becomes U+FFFD, and the
// JS line separators U+2028/U+2029 are escaped.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, `\ufffd`...)
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// appendInt appends the decimal encoding of v (what encoding/json emits for
// an int field).
func appendInt(dst []byte, v int64) []byte {
	if v == 0 {
		return append(dst, '0')
	}
	if v < 0 {
		dst = append(dst, '-')
		if v == math.MinInt64 {
			return append(dst, "9223372036854775808"...)
		}
		v = -v
	}
	var tmp [19]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(dst, tmp[i:]...)
}

// appendAnswerObj appends the canonical answers.JSONAnswer object:
// {"i":item,"u":worker,"x":[labels...]}.
func appendAnswerObj(dst []byte, item, worker int, labels labelset.Set) []byte {
	dst = append(dst, `{"i":`...)
	dst = appendInt(dst, int64(item))
	dst = append(dst, `,"u":`...)
	dst = appendInt(dst, int64(worker))
	dst = append(dst, `,"x":`...)
	dst = labels.AppendJSON(dst)
	return append(dst, '}')
}

// appendJournalLine appends the wire form of one journal record — exactly
// the bytes json.Marshal(line) produces, including field order and
// omitempty semantics (ints omitted when 0, strings when empty, pointers
// when nil; JournalBase fields carry no omitempty and always emit all
// five).
func appendJournalLine(dst []byte, line journalLine) []byte {
	dst = append(dst, `{"op":`...)
	dst = appendJSONString(dst, line.Op)
	if line.Ans != nil {
		dst = append(dst, `,"a":`...)
		dst = appendAnswerObj(dst, line.Ans.Item, line.Ans.Worker, line.Ans.Labels)
	}
	if line.N != 0 {
		dst = append(dst, `,"n":`...)
		dst = appendInt(dst, int64(line.N))
	}
	if line.Mode != "" {
		dst = append(dst, `,"pub":`...)
		dst = appendJSONString(dst, line.Mode)
	}
	if line.Base != nil {
		dst = append(dst, `,"base":{"b":`...)
		dst = appendInt(dst, line.Base.Bytes)
		dst = append(dst, `,"r":`...)
		dst = appendInt(dst, line.Base.Recs)
		dst = append(dst, `,"a":`...)
		dst = appendInt(dst, line.Base.Ans)
		dst = append(dst, `,"f":`...)
		dst = appendInt(dst, line.Base.Fits)
		dst = append(dst, `,"c":`...)
		dst = appendInt(dst, line.Base.Covered)
		dst = append(dst, '}')
	}
	if line.Par != 0 {
		dst = append(dst, `,"par":`...)
		dst = appendInt(dst, int64(line.Par))
	}
	if line.Batch != 0 {
		dst = append(dst, `,"bs":`...)
		dst = appendInt(dst, int64(line.Batch))
	}
	return append(dst, '}')
}

// appendAnswerLine appends one journal answer record with its newline:
// {"op":"ans","a":{...}}\n.
func appendAnswerLine(dst []byte, a answers.Answer) []byte {
	dst = append(dst, `{"op":"ans","a":`...)
	dst = appendAnswerObj(dst, a.Item, a.Worker, a.Labels)
	return append(dst, '}', '\n')
}

// EncodeAnswerLines appends the journal wire form of a batch — one answer
// record per line, newline-terminated — and returns the extended slice. It
// is the exact byte stream the journal commits for the batch; exported for
// the cpabench ingest micro-rows.
func EncodeAnswerLines(dst []byte, batch []answers.Answer) []byte {
	for _, a := range batch {
		dst = appendAnswerLine(dst, a)
	}
	return dst
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

// jparseInt parses a canonical JSON integer at raw[i]: optional minus (not
// on zero), no leading zeros, no fraction or exponent. Anything else —
// including values that would overflow int64 — reports ok=false and sends
// the caller to the encoding/json fallback, which reproduces the stdlib's
// exact acceptance and errors.
func jparseInt(raw []byte, i int) (v int64, next int, ok bool) {
	j := i
	neg := false
	if j < len(raw) && raw[j] == '-' {
		neg = true
		j++
	}
	if j >= len(raw) || raw[j] < '0' || raw[j] > '9' {
		return 0, i, false
	}
	if raw[j] == '0' {
		if neg || (j+1 < len(raw) && raw[j+1] >= '0' && raw[j+1] <= '9') {
			return 0, i, false
		}
		return 0, j + 1, true
	}
	for j < len(raw) && raw[j] >= '0' && raw[j] <= '9' {
		d := int64(raw[j] - '0')
		if v > (math.MaxInt64-d)/10 {
			return 0, i, false
		}
		v = v*10 + d
		j++
	}
	if neg {
		v = -v
	}
	return v, j, true
}

// jhasPrefix reports whether raw[i:] starts with lit and returns the index
// past it.
func jhasPrefix(raw []byte, i int, lit string) (int, bool) {
	if len(raw)-i < len(lit) {
		return i, false
	}
	for k := 0; k < len(lit); k++ {
		if raw[i+k] != lit[k] {
			return i, false
		}
	}
	return i + len(lit), true
}

// maxFastLabelWords bounds the label-set width the fast decoder handles on
// its stack scratch: labels < 64*maxFastLabelWords. Wider sets (beyond any
// configured vocabulary in practice) fall back to encoding/json.
const maxFastLabelWords = 16

// decodeLabelsFast parses a canonical JSON array of non-negative integers
// at raw[i] into a label set. When arena is non-nil the set's words are
// bump-allocated from it; otherwise they are heap-copied. Negative members,
// non-canonical numbers and labels ≥ 64*maxFastLabelWords report ok=false.
func decodeLabelsFast(raw []byte, i int, arena *labelset.Arena) (ls labelset.Set, next int, ok bool) {
	if i >= len(raw) || raw[i] != '[' {
		return ls, i, false
	}
	i++
	var words [maxFastLabelWords]uint64
	n := 0 // words used
	if i < len(raw) && raw[i] == ']' {
		return ls, i + 1, true
	}
	for {
		v, j, vok := jparseInt(raw, i)
		if !vok || v < 0 || v >= 64*maxFastLabelWords {
			return ls, i, false
		}
		w := int(v / 64)
		words[w] |= 1 << uint(v%64)
		if w+1 > n {
			n = w + 1
		}
		i = j
		if i >= len(raw) {
			return ls, i, false
		}
		switch raw[i] {
		case ',':
			i++
		case ']':
			if arena == nil {
				heap := make([]uint64, n)
				copy(heap, words[:n])
				return labelset.FromWords(heap), i + 1, true
			}
			return arena.Make(words[:n]), i + 1, true
		default:
			return ls, i, false
		}
	}
}

// decodeAnswerObjFast parses a canonical {"i":I,"u":U,"x":[...]} object at
// raw[i]. Field order, spacing and number forms must be exactly what the
// encoder emits; anything else reports ok=false for the stdlib fallback.
func decodeAnswerObjFast(raw []byte, i int, arena *labelset.Arena) (a answers.Answer, next int, ok bool) {
	i, ok = jhasPrefix(raw, i, `{"i":`)
	if !ok {
		return a, i, false
	}
	item, i, ok := jparseInt(raw, i)
	if !ok {
		return a, i, false
	}
	i, ok = jhasPrefix(raw, i, `,"u":`)
	if !ok {
		return a, i, false
	}
	worker, i, ok := jparseInt(raw, i)
	if !ok {
		return a, i, false
	}
	i, ok = jhasPrefix(raw, i, `,"x":`)
	if !ok {
		return a, i, false
	}
	labels, i, ok := decodeLabelsFast(raw, i, arena)
	if !ok {
		return a, i, false
	}
	if i >= len(raw) || raw[i] != '}' {
		return a, i, false
	}
	return answers.Answer{Item: int(item), Worker: int(worker), Labels: labels}, i + 1, true
}

// DecodeAnswerLine decodes one NDJSON answer record. Canonical lines take
// the allocation-free fast path (label words from arena when non-nil);
// everything else — reordered fields, whitespace, floats, escapes — falls
// back to answers.UnmarshalAnswerJSON, so acceptance and errors match the
// stdlib exactly. Exported for the cpabench ingest micro-rows.
func DecodeAnswerLine(raw []byte, arena *labelset.Arena) (answers.Answer, error) {
	if a, next, ok := decodeAnswerObjFast(raw, 0, arena); ok && next == len(raw) {
		return a, nil
	}
	return answers.UnmarshalAnswerJSON(raw)
}

// DecodeNDJSON splits body into newline-separated answer records and calls
// fn for each in order, mirroring answers.DecodeJSONL's semantics exactly:
// blank lines are skipped (but counted), a trailing \r is stripped from
// each line, decoding stops at the first malformed line with a
// "line %d:"-prefixed error, and fn errors abort the scan unchanged.
// Canonical records decode allocation-free through the fast path.
func DecodeNDJSON(body []byte, arena *labelset.Arena, fn func(answers.Answer) error) error {
	line := 0
	for len(body) > 0 {
		raw := body
		if nl := bytes.IndexByte(body, '\n'); nl >= 0 {
			raw, body = body[:nl], body[nl+1:]
		} else {
			body = nil
		}
		line++
		if n := len(raw); n > 0 && raw[n-1] == '\r' {
			raw = raw[:n-1]
		}
		if len(raw) == 0 {
			continue
		}
		a, err := DecodeAnswerLine(raw, arena)
		if err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		if err := fn(a); err != nil {
			return err
		}
	}
	return nil
}

// decodeJournalLineFast parses one complete canonical journal line (no
// trailing newline). It accepts exactly the forms the journal writer emits;
// ok=false sends the caller to the encoding/json fallback. A non-nil arena
// supplies the label-set words for answer lines (bulk replay amortises the
// per-line heap object through it).
func decodeJournalLineFast(raw []byte, arena *labelset.Arena) (journalLine, bool) {
	i, ok := jhasPrefix(raw, 0, `{"op":"`)
	if !ok {
		return journalLine{}, false
	}
	// The op string must be plain ASCII without escapes; anything else is
	// non-canonical (our writers only emit the fixed op constants).
	opStart := i
	for i < len(raw) && raw[i] != '"' {
		b := raw[i]
		if b < 0x20 || b == '\\' || b >= utf8.RuneSelf {
			return journalLine{}, false
		}
		i++
	}
	if i >= len(raw) {
		return journalLine{}, false
	}
	op := string(raw[opStart:i])
	i++
	if i >= len(raw) {
		return journalLine{}, false
	}
	if raw[i] == '}' {
		if i+1 != len(raw) {
			return journalLine{}, false
		}
		return journalLine{Op: op}, true
	}
	if raw[i] != ',' {
		return journalLine{}, false
	}
	switch op {
	case opAnswer:
		i, ok = jhasPrefix(raw, i, `,"a":`)
		if !ok {
			return journalLine{}, false
		}
		a, i, ok := decodeAnswerObjFast(raw, i, arena)
		if !ok || i+1 != len(raw) || raw[i] != '}' {
			return journalLine{}, false
		}
		ja := answers.ToJSON(a)
		return journalLine{Op: op, Ans: &ja}, true
	case opFit:
		i, ok = jhasPrefix(raw, i, `,"n":`)
		if !ok {
			return journalLine{}, false
		}
		n, i, ok := jparseInt(raw, i)
		if !ok || n == 0 {
			return journalLine{}, false
		}
		if i < len(raw) && raw[i] == '}' {
			if i+1 != len(raw) {
				return journalLine{}, false
			}
			return journalLine{Op: op, N: int(n)}, true
		}
		i, ok = jhasPrefix(raw, i, `,"pub":"`)
		if !ok {
			return journalLine{}, false
		}
		var mode string
		switch {
		case jhasPrefixOK(raw, i, `full"}`):
			mode, i = pubModeFull, i+6
		case jhasPrefixOK(raw, i, `inc"}`):
			mode, i = pubModeInc, i+5
		default:
			return journalLine{}, false
		}
		if i != len(raw) {
			return journalLine{}, false
		}
		return journalLine{Op: op, N: int(n), Mode: mode}, true
	case opBase:
		i, ok = jhasPrefix(raw, i, `,"base":{"b":`)
		if !ok {
			return journalLine{}, false
		}
		var b JournalBase
		if b.Bytes, i, ok = jparseInt(raw, i); !ok {
			return journalLine{}, false
		}
		if i, ok = jhasPrefix(raw, i, `,"r":`); !ok {
			return journalLine{}, false
		}
		if b.Recs, i, ok = jparseInt(raw, i); !ok {
			return journalLine{}, false
		}
		if i, ok = jhasPrefix(raw, i, `,"a":`); !ok {
			return journalLine{}, false
		}
		if b.Ans, i, ok = jparseInt(raw, i); !ok {
			return journalLine{}, false
		}
		if i, ok = jhasPrefix(raw, i, `,"f":`); !ok {
			return journalLine{}, false
		}
		if b.Fits, i, ok = jparseInt(raw, i); !ok {
			return journalLine{}, false
		}
		if i, ok = jhasPrefix(raw, i, `,"c":`); !ok {
			return journalLine{}, false
		}
		if b.Covered, i, ok = jparseInt(raw, i); !ok {
			return journalLine{}, false
		}
		if i, ok = jhasPrefix(raw, i, `}}`); !ok || i != len(raw) {
			return journalLine{}, false
		}
		return journalLine{Op: op, Base: &b}, true
	case opTune:
		i, ok = jhasPrefix(raw, i, `,"par":`)
		if !ok {
			return journalLine{}, false
		}
		par, i, ok := jparseInt(raw, i)
		if !ok || par == 0 {
			return journalLine{}, false
		}
		i, ok = jhasPrefix(raw, i, `,"bs":`)
		if !ok {
			return journalLine{}, false
		}
		bs, i, ok := jparseInt(raw, i)
		if !ok || bs == 0 || i+1 != len(raw) || raw[i] != '}' {
			return journalLine{}, false
		}
		return journalLine{Op: op, Par: int(par), Batch: int(bs)}, true
	}
	return journalLine{}, false
}

func jhasPrefixOK(raw []byte, i int, lit string) bool {
	_, ok := jhasPrefix(raw, i, lit)
	return ok
}

// decodeJournalLine decodes one complete journal line: the canonical fast
// path when it matches, encoding/json otherwise — so any well-formed line
// decodes exactly as json.Unmarshal would, and any malformed one fails with
// the stdlib's error.
func decodeJournalLine(raw []byte, arena *labelset.Arena) (journalLine, error) {
	if line, ok := decodeJournalLineFast(raw, arena); ok {
		return line, nil
	}
	var line journalLine
	if err := json.Unmarshal(raw, &line); err != nil {
		return journalLine{}, err
	}
	return line, nil
}
