package serve

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"cpa/internal/answers"
	"cpa/internal/core"
	"cpa/internal/labelset"
)

// shuffledStream loads a profile and shuffles its arrival order, as a live
// crowdsourcing platform would interleave items and workers. Recovery must
// be exact for arbitrary arrival orders, not just the simulator's
// item-major generation order (which once masked a checkpoint-order bug).
func shuffledStream(t testing.TB, scale float64, seed int64) *answers.Dataset {
	t.Helper()
	return testStream(t, scale, seed).Shuffled(rand.New(rand.NewSource(seed)))
}

// ingestAll pushes the whole stream through the job in fixed chunks and
// waits for the fitter to consume everything.
func ingestAll(t testing.TB, j *Job, all []answers.Answer, chunk int) {
	t.Helper()
	for start := 0; start < len(all); start += chunk {
		end := start + chunk
		if end > len(all) {
			end = len(all)
		}
		if err := j.Ingest(all[start:end]); err != nil {
			t.Fatalf("ingest [%d:%d): %v", start, end, err)
		}
	}
	waitFitted(t, j, j.ingested.Load())
}

// waitSnapshot polls until the published snapshot covers at least the given
// answer count (publication trails the fitted counter by one publish call).
func waitSnapshot(t testing.TB, j *Job, answers int) *Snapshot {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		if snap := j.Snapshot(); snap.Answers >= answers {
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for a snapshot covering %d answers (have %d)", answers, j.Snapshot().Answers)
		}
		time.Sleep(time.Millisecond)
	}
}

// sameConsensus asserts two snapshots carry the identical published
// consensus: same round/answer counts and bit-identical per-item label sets
// and candidate confidences (recovery replays the exact same deterministic
// computation, so nothing weaker than equality is expected).
func sameConsensus(t testing.TB, want, got *Snapshot) {
	t.Helper()
	if got.Round != want.Round || got.Answers != want.Answers {
		t.Fatalf("recovered snapshot at round=%d answers=%d, want round=%d answers=%d",
			got.Round, got.Answers, want.Round, want.Answers)
	}
	if !reflect.DeepEqual(got.Consensus, want.Consensus) {
		for i := range want.Consensus {
			if !reflect.DeepEqual(got.Consensus[i], want.Consensus[i]) {
				t.Fatalf("item %d consensus diverged after recovery:\nwant %+v\ngot  %+v",
					i, want.Consensus[i], got.Consensus[i])
			}
		}
		t.Fatalf("consensus diverged after recovery")
	}
}

// TestCrashRecoveryReplaysJournal is the acceptance-criteria test: hard-kill
// a job mid-service and verify the restarted registry replays the journal
// (with the original mini-batch boundaries) into the same consensus
// snapshot, then keeps serving new ingestion.
func TestCrashRecoveryReplaysJournal(t *testing.T) {
	dir := t.TempDir()
	ds := shuffledStream(t, 0.08, 5)
	spec := JobSpec{
		ID: "rec", Items: ds.NumItems, Workers: ds.NumWorkers, Labels: ds.NumLabels,
		Model: core.Config{Seed: 5, BatchSize: 64, Parallelism: 2},
	}

	// SaveEvery larger than the round count: recovery must work from the
	// journal alone, with no checkpoint to lean on.
	reg := mustOpen(t, Config{Dir: dir, SaveEvery: 1 << 30, BatchWait: 5 * time.Millisecond})
	job, err := reg.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	all := ds.Answers()
	holdBack := 100 // keep a tail to ingest after recovery
	ingestAll(t, job, all[:len(all)-holdBack], 64)
	reg.CrashAll() // kill -9: no drain, no final checkpoint, no journal close
	// crashAll waited for the fitter's in-flight batch, so the snapshot
	// pointer now holds the job's final pre-crash publication.
	before := job.Snapshot()
	if before.Round == 0 {
		t.Fatal("no fit rounds before crash")
	}

	if _, err := os.Stat(filepath.Join(dir, "jobs", "rec", modelFile)); !os.IsNotExist(err) {
		t.Fatalf("expected no checkpoint (journal-only recovery), stat err=%v", err)
	}

	reg2 := mustOpen(t, Config{Dir: dir, SaveEvery: 1 << 30, BatchWait: 5 * time.Millisecond})
	defer reg2.Close()
	job2, ok := reg2.Get("rec")
	if !ok {
		t.Fatalf("job not recovered; have %d jobs", len(reg2.Jobs()))
	}
	if job2.Spec().Model.BatchSize != 64 {
		t.Fatalf("recovered spec lost model config: %+v", job2.Spec().Model)
	}
	sameConsensus(t, before, job2.Snapshot())

	// The recovered job is live: the held-back tail streams in and advances
	// the consensus past the pre-crash round.
	ingestAll(t, job2, all[len(all)-holdBack:], 64)
	after := waitSnapshot(t, job2, len(all))
	if after.Round <= before.Round {
		t.Fatalf("recovered job did not resume fitting: round %d (pre-crash %d)", after.Round, before.Round)
	}
}

// TestCrashRecoveryFromCheckpoint crashes a job that has been checkpointing
// frequently, so recovery exercises the checkpoint-load + journal-suffix
// path rather than a full replay.
func TestCrashRecoveryFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ds := shuffledStream(t, 0.08, 9)
	spec := JobSpec{
		ID: "ckpt", Items: ds.NumItems, Workers: ds.NumWorkers, Labels: ds.NumLabels,
		Model: core.Config{Seed: 9, BatchSize: 64, Parallelism: 2},
	}
	reg := mustOpen(t, Config{Dir: dir, SaveEvery: 3, BatchWait: 5 * time.Millisecond})
	job, err := reg.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, job, ds.Answers(), 64)
	// Force a non-empty journal suffix past the last checkpoint: with
	// SaveEvery=3, checkpoints land on rounds divisible by 3, so add
	// single-answer rounds until the round count is not. A crash exactly on
	// a checkpoint would make recovery trivially exact and mask any
	// streaming state the checkpoint fails to carry (which once hid the
	// missing SVI accumulators).
	extra := ds.Answers()[:8]
	for i := 0; job.rounds.Load()%3 == 0; i++ {
		if err := job.Ingest(extra[i : i+1]); err != nil {
			t.Fatal(err)
		}
		// Wait for the publication, not just the fitted counter: publish
		// runs after the round counter advances, so the counter is fresh.
		waitSnapshot(t, job, int(job.ingested.Load()))
	}
	reg.CrashAll()
	before := job.Snapshot()

	if _, err := os.Stat(filepath.Join(dir, "jobs", "ckpt", modelFile)); err != nil {
		t.Fatalf("expected a checkpoint after %d rounds with SaveEvery=3: %v", before.Round, err)
	}

	reg2 := mustOpen(t, Config{Dir: dir, SaveEvery: 3, BatchWait: 5 * time.Millisecond})
	defer reg2.Close()
	job2, ok := reg2.Get("ckpt")
	if !ok {
		t.Fatal("job not recovered")
	}
	sameConsensus(t, before, job2.Snapshot())
}

// TestCrashRecoveryRequeuesPending crashes with answers journaled but never
// fitted (the fitter was stalled); recovery must requeue exactly that suffix
// and fit it, converging on fitted == ingested.
func TestCrashRecoveryRequeuesPending(t *testing.T) {
	dir := t.TempDir()
	// BatchWait effectively infinite and BatchSize huge: nothing ever fits.
	reg := mustOpen(t, Config{Dir: dir, BatchWait: time.Hour})
	job, err := reg.Create(JobSpec{
		ID: "pend", Items: 50, Workers: 10, Labels: 8,
		Model: core.Config{Seed: 2, BatchSize: 1 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]answers.Answer, 40)
	for i := range batch {
		batch[i] = answers.Answer{Item: i % 50, Worker: i % 10, Labels: labelset.Of(i % 8)}
	}
	if err := job.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	if got := job.fitted.Load(); got != 0 {
		t.Fatalf("fitter consumed %d answers despite stall config", got)
	}
	reg.CrashAll()

	// Reopen with a fittable configuration override? The model config is
	// persisted in the spec, so the batch size stays 1<<20 — but closing the
	// registry drains the queue as a final partial batch.
	reg2 := mustOpen(t, Config{Dir: dir, BatchWait: time.Hour})
	job2, ok := reg2.Get("pend")
	if !ok {
		t.Fatal("job not recovered")
	}
	if got := job2.ingested.Load(); got != int64(len(batch)) {
		t.Fatalf("recovered %d ingested answers, want %d", got, len(batch))
	}
	if err := reg2.Close(); err != nil { // drain: fits the requeued suffix
		t.Fatal(err)
	}
	if got := job2.fitted.Load(); got != int64(len(batch)) {
		t.Fatalf("drained %d answers, want %d", got, len(batch))
	}
	if snap := job2.Snapshot(); snap.Round != 1 || snap.Answers != len(batch) {
		t.Fatalf("post-drain snapshot round=%d answers=%d, want 1/%d", snap.Round, snap.Answers, len(batch))
	}
}

// TestRecoveryToleratesTornTail simulates a crash mid-append: a truncated
// final journal line must be skipped, while garbage in the middle of the
// journal is rejected as corruption.
func TestRecoveryToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	reg := mustOpen(t, Config{Dir: dir, BatchWait: 5 * time.Millisecond})
	job, err := reg.Create(JobSpec{
		ID: "torn", Items: 10, Workers: 4, Labels: 3,
		Model: core.Config{Seed: 1, BatchSize: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]answers.Answer, 8)
	for i := range batch {
		batch[i] = answers.Answer{Item: i, Worker: i % 4, Labels: labelset.Of(i % 3)}
	}
	if err := job.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	waitFitted(t, job, 8)
	reg.CrashAll()
	before := job.Snapshot()

	journalPath := filepath.Join(dir, "jobs", "torn", journalFile)
	f, err := os.OpenFile(journalPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"ans","a":{"i":3,"u"`); err != nil { // torn write, no newline
		t.Fatal(err)
	}
	f.Close()

	reg2 := mustOpen(t, Config{Dir: dir, BatchWait: 5 * time.Millisecond})
	job2, ok := reg2.Get("torn")
	if !ok {
		t.Fatal("job not recovered despite torn tail")
	}
	sameConsensus(t, before, job2.Snapshot())
	if err := reg2.Close(); err != nil {
		t.Fatal(err)
	}

	// Same garbage followed by a valid line is corruption, not a torn tail.
	f, err = os.OpenFile(journalPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("\ngarbage not json\n" + `{"op":"fit","n":1}` + "\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Open(Config{Dir: dir}); err == nil {
		t.Fatal("expected mid-journal corruption to fail recovery")
	}
}

// TestAbortedCreateDoesNotPoisonRecovery pins that a job directory without
// a spec — what an aborted Create leaves behind — neither fails registry
// recovery for every healthy tenant nor blocks the id from being created.
func TestAbortedCreateDoesNotPoisonRecovery(t *testing.T) {
	dir := t.TempDir()
	reg := mustOpen(t, Config{Dir: dir, BatchWait: 5 * time.Millisecond})
	spec := JobSpec{ID: "healthy", Items: 10, Workers: 4, Labels: 3, Model: core.Config{Seed: 1, BatchSize: 4}}
	if _, err := reg.Create(spec); err != nil {
		t.Fatal(err)
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a Create that died between MkdirAll and the spec write.
	if err := os.MkdirAll(filepath.Join(dir, "jobs", "aborted"), 0o755); err != nil {
		t.Fatal(err)
	}

	reg2 := mustOpen(t, Config{Dir: dir, BatchWait: 5 * time.Millisecond})
	defer reg2.Close()
	if _, ok := reg2.Get("healthy"); !ok {
		t.Fatal("healthy job not recovered alongside an aborted directory")
	}
	if _, ok := reg2.Get("aborted"); ok {
		t.Fatal("specless directory recovered as a job")
	}
	// The bare directory holds no durable state; the id is free to use.
	abortedSpec := JobSpec{ID: "aborted", Items: 10, Workers: 4, Labels: 3, Model: core.Config{Seed: 1, BatchSize: 4}}
	if _, err := reg2.Create(abortedSpec); err != nil {
		t.Fatalf("creating over an aborted directory: %v", err)
	}
}

// TestCreateRefusesRetainedState pins the delete/recreate hazard: a job id
// whose directory still holds a retained journal or checkpoint must not be
// reused — appending a new tenant's answers to the old journal would fold
// the deleted job's data into the recreated job on the next recovery.
func TestCreateRefusesRetainedState(t *testing.T) {
	dir := t.TempDir()
	reg := mustOpen(t, Config{Dir: dir, BatchWait: 5 * time.Millisecond})
	defer reg.Close()
	spec := JobSpec{ID: "reuse", Items: 10, Workers: 4, Labels: 3, Model: core.Config{Seed: 1, BatchSize: 4}}
	job, err := reg.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Ingest([]answers.Answer{{Item: 0, Worker: 0, Labels: labelset.Of(1)}}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Delete("reuse"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create(spec); !errorsIs(err, ErrExists) {
		t.Fatalf("recreating a job with retained on-disk state: want ErrExists, got %v", err)
	}
	// Removing the directory truly discards the job; the id is free again.
	if err := os.RemoveAll(filepath.Join(dir, "jobs", "reuse")); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create(spec); err != nil {
		t.Fatalf("creating after discarding on-disk state: %v", err)
	}
}
