package serve

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cpa/internal/core"
)

func TestTunerLadderHelpers(t *testing.T) {
	ladder := []int{1, 2, 4, 8, 16}
	cases := []struct{ cur, target, want int }{
		{2, 16, 4},   // one rung up toward a far target
		{16, 2, 8},   // one rung down
		{4, 4, 4},    // hold
		{3, 16, 4},   // off-ladder snaps to the first rung passed
		{3, 1, 2},    // off-ladder moving down
		{1, 16, 2},   // from the bottom
		{16, 32, 16}, // target past the top rung: nothing above cur ≤ target
	}
	for _, tc := range cases {
		if got := stepToward(ladder, tc.cur, tc.target); got != tc.want {
			t.Errorf("stepToward(%d → %d) = %d, want %d", tc.cur, tc.target, got, tc.want)
		}
	}
	if got := snapToLadder(ladder, 6); got != 4 && got != 8 {
		t.Errorf("snapToLadder(6) = %d", got)
	}
	if got := snapToLadder(ladder, 6); got != 4 {
		t.Errorf("snapToLadder tie must prefer the smaller rung, got %d", got)
	}
	if got := nextUnprobed(ladder, 2, map[int]bool{1: true, 2: true}); got != 4 {
		t.Errorf("nextUnprobed prefers upward, got %d", got)
	}
	if got := nextUnprobed(ladder, 16, map[int]bool{2: true, 4: true, 8: true, 16: true}); got != 1 {
		t.Errorf("nextUnprobed falls back downward, got %d", got)
	}
	if got := nextUnprobed(ladder, 4, map[int]bool{1: true, 2: true, 4: true, 8: true, 16: true}); got != 0 {
		t.Errorf("nextUnprobed on a saturated ladder = %d, want 0", got)
	}
}

// TestTunerWalksTowardMeasuredKnee drives the tuner with synthetic round
// timings shaped like a USL curve peaking at Parallelism 4 and checks the
// controller explores the ladder and settles at (or adjacent to) the knee —
// the control loop in isolation, no real fitting.
func TestTunerWalksTowardMeasuredKnee(t *testing.T) {
	cfg := Config{AutoTuneWindow: 1, AutoTuneMaxParallelism: 8}.withDefaults()
	model := core.Config{Seed: 3, Parallelism: 1, BatchSize: 64}
	tn := newTuner(cfg, model)

	// Per-answer cost at parallelism p for a curve with γ=1000/s, α=0.1,
	// β=0.03 (knee ≈ √(0.9/0.03) ≈ 5.4; ladder best is 4).
	cost := func(p int) time.Duration {
		fp := float64(p)
		x := 1000 * fp / (1 + 0.1*(fp-1) + 0.03*fp*(fp-1))
		return time.Duration(float64(time.Second) / x)
	}

	cur := model
	for i := 0; i < 40; i++ {
		tn.observeRound(64, 64*cost(cur.Parallelism))
		par, batch := tn.maybeTune(cur)
		if par > 8 || batch > tuneMaxBatch {
			t.Fatalf("tuner left its ladder: par=%d batch=%d", par, batch)
		}
		if par != 0 {
			cur.Parallelism = par
		}
		if batch != 0 {
			cur.BatchSize = batch
		}
	}
	if cur.Parallelism < 2 || cur.Parallelism > 8 {
		t.Fatalf("tuner settled at Parallelism %d, want near the knee (4)", cur.Parallelism)
	}
	st := tn.snapshot()
	if st.Parallelism.Windows == 0 || st.BatchSize.Windows == 0 {
		t.Fatalf("tuner recorded no windows: %+v", st)
	}
	if st.Parallelism.Fit == nil {
		t.Fatal("no USL fit after exploring the parallelism ladder")
	}
	if k := st.Parallelism.Fit.Knee; k < 2 || k > 10 {
		t.Errorf("fitted knee %.2f, want near 5.4", k)
	}
	if st.Parallelism.Current != cur.Parallelism {
		t.Errorf("stats report Parallelism %d, applied %d", st.Parallelism.Current, cur.Parallelism)
	}
}

// TestAutoTuneJournalInertAndRecovers is the replay-safety acceptance test:
// a job serving with AutoTune on journals tune annotations, and a hard kill
// still recovers the bit-identical consensus — the annotations are skipped,
// the recorded batch boundaries alone reproduce the posterior. The recovered
// registry runs with AutoTune off, doubling as the downgrade-tolerance
// check (an untuned consumer reading a tuned journal).
func TestAutoTuneJournalInertAndRecovers(t *testing.T) {
	dir := t.TempDir()
	ds := shuffledStream(t, 0.08, 21)
	spec := JobSpec{
		ID: "tuned", Items: ds.NumItems, Workers: ds.NumWorkers, Labels: ds.NumLabels,
		Model: core.Config{Seed: 21, BatchSize: 16, Parallelism: 1},
	}
	cfg := Config{Dir: dir, BatchWait: time.Millisecond,
		AutoTune: true, AutoTuneWindow: 1, AutoTuneMaxParallelism: 4}
	reg := mustOpen(t, cfg)
	job, err := reg.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, job, ds.Answers(), 48)
	waitSnapshot(t, job, len(ds.Answers()))
	st := job.Stats()
	if st.AutoTune == nil {
		t.Fatal("AutoTune stats missing on a tuned job")
	}
	if st.AutoTune.Parallelism.Windows == 0 && st.AutoTune.BatchSize.Windows == 0 {
		t.Fatal("tuner closed no measurement windows")
	}
	reg.CrashAll()
	before := job.Snapshot()

	raw, err := os.ReadFile(filepath.Join(dir, "jobs", "tuned", journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"op":"tune"`)) {
		t.Fatal("tuned job journaled no tune annotations")
	}

	reg2 := mustOpen(t, Config{Dir: dir, BatchWait: time.Millisecond})
	defer reg2.Close()
	job2, ok := reg2.Get("tuned")
	if !ok {
		t.Fatal("tuned job not recovered")
	}
	sameConsensus(t, before, job2.Snapshot())
}

// TestCleanCloseTruncatesJournal pins the graceful-restart retention fix: a
// clean Close checkpoints the drained model and then truncates the journal
// it covers, so a graceful restart does not carry one extra journal window.
// The truncated job must still reopen to the identical consensus and keep
// serving.
func TestCleanCloseTruncatesJournal(t *testing.T) {
	dir := t.TempDir()
	ds := shuffledStream(t, 0.08, 9)
	spec := JobSpec{
		ID: "clean", Items: ds.NumItems, Workers: ds.NumWorkers, Labels: ds.NumLabels,
		Model: core.Config{Seed: 9, BatchSize: 64, Parallelism: 2},
	}
	// SaveEvery is huge: no mid-stream checkpoint fires, so any truncation
	// observed must come from the Close path alone.
	cfg := Config{Dir: dir, SaveEvery: 1 << 20, BatchWait: time.Millisecond,
		TruncateJournal: true, TruncateMin: 1 << 10}
	reg := mustOpen(t, cfg)
	job, err := reg.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	all := ds.Answers()
	ingestAll(t, job, all, 64)
	waitSnapshot(t, job, len(all))
	before := job.Snapshot()
	preClose := job.Stats()
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	jobDir := filepath.Join(dir, "jobs", "clean")
	st, err := os.Stat(filepath.Join(jobDir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() >= preClose.JournalFileBytes {
		t.Fatalf("clean close did not truncate: %d bytes on disk, %d before close",
			st.Size(), preClose.JournalFileBytes)
	}
	if _, err := os.Stat(filepath.Join(jobDir, baseFile)); err != nil {
		t.Fatalf("clean-close truncation left no base anchor: %v", err)
	}

	reg2 := mustOpen(t, cfg)
	defer reg2.Close()
	job2, ok := reg2.Get("clean")
	if !ok {
		t.Fatal("job not recovered after clean close")
	}
	sameConsensus(t, before, job2.Snapshot())
	if got := job2.Stats(); got.JournalBytes < preClose.JournalBytes {
		t.Fatalf("global journal coordinate regressed: %d, want >= %d", got.JournalBytes, preClose.JournalBytes)
	}
}

// TestWorkerTrajectories pins the sampling contract: a served job records
// bounded per-worker reliability rings, plain Stats omits them, and the
// explicit accessor returns monotone rounds capped at the ring length.
func TestWorkerTrajectories(t *testing.T) {
	ds := shuffledStream(t, 0.08, 5)
	spec := JobSpec{
		ID: "traj", Items: ds.NumItems, Workers: ds.NumWorkers, Labels: ds.NumLabels,
		Model: core.Config{Seed: 5, BatchSize: 16, Parallelism: 2},
	}
	reg := mustOpen(t, Config{BatchWait: time.Millisecond})
	defer reg.Close()
	job, err := reg.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, job, ds.Answers(), 32)
	waitSnapshot(t, job, len(ds.Answers()))

	if st := job.Stats(); st.WorkerTraj != nil {
		t.Fatal("plain Stats must not carry worker trajectories")
	}
	trajs := job.WorkerTrajectories()
	if len(trajs) == 0 {
		t.Fatal("no worker trajectories recorded")
	}
	for _, tr := range trajs {
		if len(tr.Points) == 0 || len(tr.Points) > trajLen {
			t.Fatalf("worker %d ring has %d points, want 1..%d", tr.Worker, len(tr.Points), trajLen)
		}
		for i := 1; i < len(tr.Points); i++ {
			if tr.Points[i].Round <= tr.Points[i-1].Round {
				t.Fatalf("worker %d rounds not increasing: %+v", tr.Worker, tr.Points)
			}
		}
		for _, p := range tr.Points {
			if p.Reliability < 0 || p.Reliability > 1 {
				t.Fatalf("worker %d reliability %f outside [0,1]", tr.Worker, p.Reliability)
			}
		}
	}
}
