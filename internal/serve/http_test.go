package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cpa/internal/answers"
	"cpa/internal/core"
	"cpa/internal/labelset"
)

// httpHarness starts an httptest server over a fresh registry.
func httpHarness(t *testing.T, cfg Config) (*Registry, *httptest.Server) {
	t.Helper()
	reg := mustOpen(t, cfg)
	ts := httptest.NewServer(NewServer(reg))
	t.Cleanup(func() { ts.Close(); reg.Close() })
	return reg, ts
}

// decodeError decodes the {"error": "..."} body every non-2xx handler
// response carries.
func decodeError(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("error response is not the JSON error shape: %v", err)
	}
	if body["error"] == "" {
		t.Fatal("error response carries no error message")
	}
	return body["error"]
}

// TestHandlerBackpressure429 exercises the HTTP 429 path end to end: an
// NDJSON batch that does not fit the queue must be rejected atomically with
// a JSON error body, without journaling or queueing any of its answers, and
// a batch that fits must still be accepted afterwards.
func TestHandlerBackpressure429(t *testing.T) {
	reg, ts := httpHarness(t, Config{QueueLimit: 8, BatchWait: time.Hour})
	if _, err := reg.Create(JobSpec{
		ID: "bp", Items: 64, Workers: 8, Labels: 4,
		Model: core.Config{Seed: 1, BatchSize: 1 << 20},
	}); err != nil {
		t.Fatal(err)
	}

	ndjson := func(n, base int) *bytes.Buffer {
		var body bytes.Buffer
		for i := 0; i < n; i++ {
			line, _ := answers.MarshalAnswerJSON(answers.Answer{
				Item: base + i, Worker: (base + i) % 8, Labels: labelset.Of((base + i) % 4),
			})
			body.Write(line)
			body.WriteByte('\n')
		}
		return &body
	}
	url := ts.URL + "/v1/jobs/bp/answers"

	resp, err := ts.Client().Post(url, "application/x-ndjson", ndjson(9, 0))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("oversized batch: status %d, want 429", resp.StatusCode)
	}
	if msg := decodeError(t, resp); !strings.Contains(msg, "queue") {
		t.Errorf("429 body %q does not mention the queue", msg)
	}
	job, _ := reg.Get("bp")
	if st := job.Stats(); st.IngestedAnswers != 0 || st.QueueDepth != 0 {
		t.Fatalf("rejected batch left state behind: %+v", st)
	}

	resp, err = ts.Client().Post(url, "application/x-ndjson", ndjson(8, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fitting batch after a 429: status %d, want 202", resp.StatusCode)
	}
	var ir IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	if ir.Accepted != 8 || ir.QueueDepth != 8 {
		t.Fatalf("accept response %+v, want 8 accepted at depth 8", ir)
	}

	// The queue is now exactly full: one more answer must 429 again.
	resp, err = ts.Client().Post(url, "application/x-ndjson", ndjson(1, 32))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d, want 429", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestHandlerMalformedNDJSON pins the malformed-line contract: decoding
// stops at the first bad line with a 400, and the whole request is rejected
// atomically — valid lines preceding the bad one must not be ingested.
func TestHandlerMalformedNDJSON(t *testing.T) {
	reg, ts := httpHarness(t, Config{})
	if _, err := reg.Create(JobSpec{ID: "nd", Items: 10, Workers: 4, Labels: 3, Model: core.Config{Seed: 1}}); err != nil {
		t.Fatal(err)
	}
	url := ts.URL + "/v1/jobs/nd/answers"
	valid, _ := answers.MarshalAnswerJSON(answers.Answer{Item: 0, Worker: 1, Labels: labelset.Of(2)})

	cases := []struct {
		name, body string
	}{
		{"bare garbage", "not json at all\n"},
		{"truncated object", `{"i":0,"u":1,"x":[`},
		{"valid then invalid", string(valid) + "\n{broken\n"},
		{"valid then invalid labels", string(valid) + "\n" + `{"i":0,"u":2,"x":"nope"}` + "\n"},
		{"negative label", `{"i":0,"u":1,"x":[-1]}` + "\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, err := ts.Client().Post(url, "application/x-ndjson", strings.NewReader(c.body))
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			decodeError(t, resp)
			job, _ := reg.Get("nd")
			if st := job.Stats(); st.IngestedAnswers != 0 {
				t.Fatalf("partially ingested a malformed request: %+v", st)
			}
		})
	}

	// Blank lines are skipped, not errors; an all-blank body accepts zero.
	resp, err := ts.Client().Post(url, "application/x-ndjson", strings.NewReader("\n\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blank-line body: status %d, want 202", resp.StatusCode)
	}
	var ir IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	if ir.Accepted != 0 {
		t.Fatalf("blank-line body accepted %d answers", ir.Accepted)
	}
}

// TestHandlerUnknownJob404 sweeps every {id} route with a job that does not
// exist; each must answer 404 with the JSON error shape naming the job.
func TestHandlerUnknownJob404(t *testing.T) {
	_, ts := httpHarness(t, Config{})
	client := ts.Client()

	requests := []struct {
		method, path, body string
	}{
		{http.MethodGet, "/v1/jobs/ghost", ""},
		{http.MethodGet, "/v1/jobs/ghost/consensus", ""},
		{http.MethodGet, "/v1/jobs/ghost/items/0", ""},
		{http.MethodPost, "/v1/jobs/ghost/answers", `{"answers":[{"i":0,"u":0,"x":[0]}]}`},
		{http.MethodDelete, "/v1/jobs/ghost", ""},
	}
	for _, rq := range requests {
		t.Run(rq.method+" "+rq.path, func(t *testing.T) {
			req, err := http.NewRequest(rq.method, ts.URL+rq.path, strings.NewReader(rq.body))
			if err != nil {
				t.Fatal(err)
			}
			if rq.body != "" {
				req.Header.Set("Content-Type", "application/json")
			}
			resp, err := client.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusNotFound {
				t.Fatalf("status %d, want 404", resp.StatusCode)
			}
			if msg := decodeError(t, resp); !strings.Contains(msg, "ghost") {
				t.Errorf("404 body %q does not name the missing job", msg)
			}
		})
	}
}

// TestHandlerItemPathValidation pins the /items/{item} parameter handling:
// non-numeric and out-of-range items are 404s, valid items answer 200 even
// before any fit round.
func TestHandlerItemPathValidation(t *testing.T) {
	reg, ts := httpHarness(t, Config{})
	if _, err := reg.Create(JobSpec{ID: "it", Items: 5, Workers: 2, Labels: 2, Model: core.Config{Seed: 1}}); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"x", "-1", "5", "2.5", ""} {
		resp, err := ts.Client().Get(ts.URL + "/v1/jobs/it/items/" + bad)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("item %q: status %d, want 404", bad, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/it/items/4")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid unfitted item: status %d, want 200", resp.StatusCode)
	}
	var out struct {
		Round int          `json:"round"`
		Item  ItemSnapshot `json:"item"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Round != 0 || out.Item.Item != 4 || len(out.Item.Labels) != 0 {
		t.Fatalf("unfitted item response %+v, want empty round-0 consensus for item 4", out)
	}
}

// TestHandlerCreateValidation covers the create-job error surface at the
// HTTP layer, including the 409 for ids with retained on-disk state.
func TestHandlerCreateValidation(t *testing.T) {
	dir := t.TempDir()
	_, ts := httpHarness(t, Config{Dir: dir, BatchWait: 5 * time.Millisecond})
	post := func(body string) *http.Response {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := post(`{"id":"keep","items":10,"workers":4,"labels":3}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	for _, c := range []struct {
		body string
		want int
	}{
		{`{"id":"keep","items":10,"workers":4,"labels":3}`, http.StatusConflict},
		{`{"id":"bad/slash","items":10,"workers":4,"labels":3}`, http.StatusBadRequest},
		{`{"id":"` + strings.Repeat("x", 129) + `","items":10,"workers":4,"labels":3}`, http.StatusBadRequest},
		{`{"id":"neg","items":-1,"workers":4,"labels":3}`, http.StatusBadRequest},
		{`{"id":"badmodel","items":10,"workers":4,"labels":3,"model":{"ForgettingRate":2}}`, http.StatusBadRequest},
		{`{"id":"typo","items":10,"workers":4,"labels":3,"modle":{}}`, http.StatusBadRequest},
		{`{broken`, http.StatusBadRequest},
	} {
		resp := post(c.body)
		if resp.StatusCode != c.want {
			t.Fatalf("create %q: status %d, want %d", c.body, resp.StatusCode, c.want)
		}
		decodeError(t, resp)
	}

	// Delete retains on-disk state; recreating over it must 409 through the
	// HTTP layer too.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/keep", nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	resp = post(`{"id":"keep","items":10,"workers":4,"labels":3}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("recreate over retained state: status %d, want 409", resp.StatusCode)
	}
	if msg := decodeError(t, resp); !strings.Contains(msg, "retained") {
		t.Errorf("409 body %q does not explain the retained state", msg)
	}
}

// TestHandlerContentTypeDispatch pins that the answers endpoint selects the
// codec by Content-Type: a JSON-array body posted as NDJSON is a 400 (it is
// not one answer per line), and NDJSON lines posted as JSON are a 400 too.
func TestHandlerContentTypeDispatch(t *testing.T) {
	reg, ts := httpHarness(t, Config{})
	if _, err := reg.Create(JobSpec{ID: "ct", Items: 4, Workers: 2, Labels: 2, Model: core.Config{Seed: 1}}); err != nil {
		t.Fatal(err)
	}
	url := ts.URL + "/v1/jobs/ct/answers"
	jsonBody := `{"answers":[{"i":0,"u":0,"x":[0]}]}`
	ndjsonBody := `{"i":0,"u":0,"x":[0]}` + "\n" + `{"i":1,"u":1,"x":[1]}` + "\n"

	for _, c := range []struct {
		ct, body string
		want     int
	}{
		{"application/json", jsonBody, http.StatusAccepted},
		{"application/x-ndjson", ndjsonBody, http.StatusAccepted},
		{"application/jsonl", ndjsonBody, http.StatusAccepted},
		{"application/x-ndjson", jsonBody, http.StatusBadRequest},
		{"application/json", ndjsonBody, http.StatusBadRequest},
	} {
		resp, err := ts.Client().Post(url, c.ct, strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != c.want {
			t.Fatalf("%s body as %s: status %d, want %d", c.body[:12], c.ct, resp.StatusCode, c.want)
		}
		resp.Body.Close()
	}
}

// TestHandlerBodyTooLarge pins the request-body caps: one oversized POST
// must be rejected with 413 before it can balloon memory, for both the
// ingest and create endpoints, and must leave no partial state behind.
func TestHandlerBodyTooLarge(t *testing.T) {
	reg, ts := httpHarness(t, Config{})
	if _, err := reg.Create(JobSpec{ID: "big", Items: 4, Workers: 2, Labels: 2, Model: core.Config{Seed: 1}}); err != nil {
		t.Fatal(err)
	}
	// Newline filler: every byte passes the NDJSON blank-line filter, so
	// the only thing that can stop the read is the MaxBytesReader cap.
	huge := bytes.Repeat([]byte{'\n'}, maxIngestBytes+2)
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs/big/answers", "application/x-ndjson", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ingest: status %d, want 413", resp.StatusCode)
	}
	resp.Body.Close()
	job, _ := reg.Get("big")
	if st := job.Stats(); st.IngestedAnswers != 0 {
		t.Fatalf("oversized request ingested answers: %+v", st)
	}

	bigCreate := []byte(`{"id":"pad","items":1,"workers":1,"labels":1,"model":{}` + strings.Repeat(" ", maxCreateBytes) + `}`)
	resp, err = ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(bigCreate))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized create: status %d, want 413", resp.StatusCode)
	}
}

// TestHandlerStatszShape smoke-checks the observability endpoints' JSON.
func TestHandlerStatszShape(t *testing.T) {
	reg, ts := httpHarness(t, Config{})
	for i := 0; i < 3; i++ {
		if _, err := reg.Create(JobSpec{
			ID: fmt.Sprintf("job%d", i), Items: 4, Workers: 2, Labels: 2, Model: core.Config{Seed: 1},
		}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.NumJobs != 3 || len(stats.Jobs) != 3 {
		t.Fatalf("statsz %+v, want 3 jobs", stats)
	}
	for i, js := range stats.Jobs {
		if want := fmt.Sprintf("job%d", i); js.ID != want {
			t.Errorf("statsz job %d is %q, want %q (ordered by id)", i, js.ID, want)
		}
	}
}
