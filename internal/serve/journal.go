package serve

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"cpa/internal/answers"
	"cpa/internal/labelset"
)

// Journal line operations.
const (
	opAnswer  = "ans"     // one ingested answer
	opFit     = "fit"     // the fitter consumed the next N pending answers
	opRestart = "restart" // the job was recovered and republished from cold
	opBase    = "base"    // truncation header: the dropped prefix's coordinates
	// opTune annotates an auto-tune adjustment: the settings the capacity
	// tuner steered the job to between two fit rounds. It is replay-inert by
	// construction — Parallelism is bit-invisible to the posterior and batch
	// boundaries are recorded per fit marker — so every consumer (recovery,
	// offline replay, followers) skips it like any unknown op; it exists so
	// the tuning trajectory is observable in the durable record.
	opTune = "tune"
)

// Fit-marker publish modes. Snapshot publication is part of the journaled
// computation: an interim round under backlog publishes incrementally
// (refreshing only the batch-dirty items), a caught-up round publishes the
// full finalize pipeline. Recording the mode per marker — and a restart
// line when recovery re-anchors a cold publisher — makes every published
// snapshot, not just quiesced ones, a deterministic function of the journal
// (the loadgen served-equals-replay invariant mirrors the modes on replay).
const (
	pubModeFull = "full"
	pubModeInc  = "inc"
)

// journalLine is the wire form of one journal record. Answer lines reuse
// the canonical answers.JSONAnswer codec, so a journal is also a valid
// answer stream for any JSONL consumer (modulo the envelope). Fit lines
// written before publish modes existed carry no "pub" field and replay as
// full publications, which is exactly what that code did.
//
// The byte encoding of this struct is frozen (DESIGN.md §14): it is
// produced by the hand codec in jcodec.go, byte-for-byte what
// encoding/json emitted since the first release, because replication
// offsets, truncation coordinates and torn-tail recovery all address raw
// journal bytes.
type journalLine struct {
	Op   string              `json:"op"`
	Ans  *answers.JSONAnswer `json:"a,omitempty"`
	N    int                 `json:"n,omitempty"`
	Mode string              `json:"pub,omitempty"`
	Base *JournalBase        `json:"base,omitempty"`
	// Par/Batch carry a tune annotation's new settings (op "tune" only).
	Par   int `json:"par,omitempty"`
	Batch int `json:"bs,omitempty"`
}

// fitLine builds a fit marker with its publish mode.
func fitLine(n int, full bool) journalLine {
	mode := pubModeInc
	if full {
		mode = pubModeFull
	}
	return journalLine{Op: opFit, N: n, Mode: mode}
}

// JournalBase describes the journal prefix a truncation dropped. It is
// persisted as the first line of a truncated journal (op "base") so the
// file stays self-describing: every coordinate a reader needs to place the
// retained suffix in the job's global (never-truncated) journal is in the
// header. Pre-truncation readers ignore the unknown op.
//
// Bytes/Recs are the global byte and record counts of the dropped prefix
// (base lines themselves never count: global coordinates are what the
// journal would measure had it never been truncated, which is what keeps
// /statsz and the replication ack barrier continuous across truncations).
// Ans and Fits count the dropped answer lines and fit markers; Covered is
// the total answers the dropped fit markers consumed. Every dropped record
// is covered by the base checkpoint (base.gob), so recovery and replay seed
// from that checkpoint and skip exactly the (Ans, Fits) still present in a
// longer checkpoint's coverage.
type JournalBase struct {
	Bytes   int64 `json:"b"`
	Recs    int64 `json:"r"`
	Ans     int64 `json:"a"`
	Fits    int64 `json:"f"`
	Covered int64 `json:"c"`
}

var errJournalFailed = errors.New("serve: journal in failed state")

// commitReq is one sequenced record group riding the commit pipeline: the
// encoded newline-terminated bytes, their record count, and the completion
// channel the release chain releases the waiter through. When job is
// non-nil the releaser calls job.commitDurable(batch, err) before the
// release — the hook that appends the batch to the fitter queue in exactly
// pipeline (= journal) order without holding the job mutex across the
// write. Requests recycle through commitReqPool; the done channel is
// buffered and sees exactly one send per reservation.
type commitReq struct {
	buf   []byte
	nrecs int64
	job   *Job
	batch []answers.Answer
	t0    time.Time
	done  chan error
}

var commitReqPool = sync.Pool{New: func() any {
	return &commitReq{done: make(chan error, 1)}
}}

func getCommitReq() *commitReq { return commitReqPool.Get().(*commitReq) }

func putCommitReq(r *commitReq) {
	r.buf = r.buf[:0]
	r.nrecs = 0
	r.job, r.batch = nil, nil
	commitReqPool.Put(r)
}

// journal is a job's append-only JSONL log with a group-commit pipeline.
// Appenders sequence encoded record groups into the pipeline under their
// job mutex (lock order: job mutex → journal mutex, never the reverse) and
// wait for durability outside both; a commit leader drains the pipeline in
// cohorts — one buffered write and one flush (plus fsync when SyncJournal)
// for every group queued at that moment — so N concurrent appends cost ~1
// syscall round instead of N. Every append is flushed to the OS before its
// waiter is released, so the log survives a process kill; SyncJournal
// additionally fsyncs for power-loss durability.
type journal struct {
	f    *os.File
	w    *bufio.Writer
	sync bool

	// mu guards everything below. idle signals pipeline drain (no leader
	// writing, nothing pending); truncate and Close wait on it for exclusive
	// use of f and w.
	mu   sync.Mutex
	idle sync.Cond
	// pending holds sequenced-but-unwritten record groups; writing is true
	// while a commit leader owns the file. spare recycles the cohort slice.
	pending []*commitReq
	spare   []*commitReq
	writing bool
	// relTail is the tail of the release ticket chain: the channel the most
	// recently committed cohort's releaser closes when its waiters are all
	// released. Each cohort captures the current tail as its turn and
	// installs a fresh tail, both under mu in commit order, so releases run
	// in journal order even across commit-leader handoffs. Releases happen
	// on a per-cohort goroutine, never on the leader: the commitDurable
	// hook takes the job mutex, which a drain waiter (truncate) may hold
	// while waiting for the leader to go idle — a leader that released
	// inline would deadlock against it.
	relTail chan struct{}

	// off is the durable length: the file size after the last fully
	// flushed cohort. A failed cohort is rolled back by truncating to off,
	// so a partially-flushed group (the bufio buffer spills mid-cohort
	// before a later write fails) can never desynchronise the journal
	// from the in-memory queue — orphaned answer lines would make fit
	// markers consume the wrong answers on replay.
	off int64
	// recs counts durable records (answer lines + fit markers + restart
	// re-anchors). Together with off it is the replication position the
	// cluster layer ships and compares: a follower whose shipped byte
	// offset equals the primary's off holds a bit-identical journal.
	recs   int64
	broken bool
	// base and hdr carry the truncation state: base is the dropped prefix's
	// global coordinates (zero for a never-truncated journal) and hdr the
	// byte length of the base header line at the start of the file (0 when
	// absent). off and recs stay file-local — globalOffsets maps them.
	base JournalBase
	hdr  int64
	// stats, when set, receives group-commit observability (cohort sizes,
	// per-append commit latency) from the leader.
	stats *ingestHist
}

// openJournal opens a journal for appending. recs is the number of durable
// records already in the file excluding a base header line (0 for a fresh
// journal; recovery counts them during replay), and base/hdr the truncation
// state recovery read from the file's first line. The file must already be
// truncated to its durable length — recovery truncates a torn tail before
// reopening for append, so a new record can never concatenate onto a
// half-written one.
func openJournal(path string, sync bool, recs int64, base JournalBase, hdr int64) (*journal, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: opening journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("serve: opening journal: %w", err)
	}
	j := &journal{f: f, w: bufio.NewWriter(f), sync: sync, off: st.Size(), recs: recs, base: base, hdr: hdr}
	j.idle.L = &j.mu
	// Seed the release chain with an already-completed turn so the first
	// cohort's releaser starts immediately.
	j.relTail = make(chan struct{})
	close(j.relTail)
	return j, nil
}

// reserve sequences req into the commit pipeline. The caller must hold the
// job mutex (or otherwise serialise against all other appenders) so that
// pipeline order equals queue order, then release it and call await. On
// error the request was not sequenced and must not be awaited.
func (j *journal) reserve(req *commitReq) error {
	j.mu.Lock()
	if j.broken {
		j.mu.Unlock()
		return errJournalFailed
	}
	req.t0 = time.Now()
	j.pending = append(j.pending, req)
	j.mu.Unlock()
	return nil
}

// reserveLine encodes one control record (fit marker, restart re-anchor,
// tune annotation, truncation header test lines, …) into a pooled request
// and sequences it.
func (j *journal) reserveLine(line journalLine) (*commitReq, error) {
	req := getCommitReq()
	req.buf = append(appendJournalLine(req.buf[:0], line), '\n')
	req.nrecs = 1
	if err := j.reserve(req); err != nil {
		putCommitReq(req)
		return nil, err
	}
	return req, nil
}

// await blocks until req's record group is durable and returns the commit
// outcome. The first waiter to find the pipeline unled becomes the commit
// leader and writes cohorts until the pipeline drains — group commit
// without a dedicated writer goroutine: under contention one caller pays
// the syscall round for everyone queued behind it, while an uncontended
// caller writes its own batch immediately, exactly like the old
// one-flush-per-append path.
func (j *journal) await(req *commitReq) error {
	for {
		select {
		case err := <-req.done:
			putCommitReq(req)
			return err
		default:
		}
		j.mu.Lock()
		if j.writing || len(j.pending) == 0 {
			// A leader owns the pipeline (its releaser will complete us), or
			// our group was already committed (the buffered send is in flight
			// or landed): either way, park on the channel.
			j.mu.Unlock()
			err := <-req.done
			putCommitReq(req)
			return err
		}
		j.writing = true
		j.lead()
	}
}

// lead writes cohorts until the pipeline drains. Called with j.mu held and
// writing freshly set; returns with j.mu released. All durable-offset
// advancement happens here, after the cohort's flush — the single
// durability path of the journal.
//
// The leader only writes; it never releases. Each committed cohort is
// handed to a releaseCohort goroutine, sequenced by the ticket chain, so
// the write path can never block on the job mutex: commitDurable takes it,
// and a drain waiter (truncate, Close on the job side) holds it while
// waiting for the leader to go idle — a leader that ran release callbacks
// itself would deadlock the job the moment a truncation raced a busy
// pipeline. Decoupling also keeps releases in journal order across leader
// handoffs: ticket capture happens under j.mu in commit order, while the
// old step-down-then-release dance let a successor leader release a later
// cohort first, reordering the fitter queue against the journal.
func (j *journal) lead() {
	for {
		cohort := j.pending
		if len(cohort) == 0 {
			j.writing = false
			j.idle.Broadcast()
			j.mu.Unlock()
			return
		}
		if j.spare != nil {
			j.pending = j.spare[:0]
			j.spare = nil
		} else {
			j.pending = nil
		}
		broken := j.broken
		j.mu.Unlock()

		var nbytes, nrecs int64
		var err error
		if broken {
			err = errJournalFailed
		}
		for _, r := range cohort {
			if err != nil {
				break
			}
			if _, werr := j.w.Write(r.buf); werr != nil {
				err = werr
				break
			}
			nbytes += int64(len(r.buf))
			nrecs += r.nrecs
		}
		if err == nil {
			err = j.flush()
		}

		j.mu.Lock()
		if err == nil {
			j.off += nbytes
			j.recs += nrecs
		} else if !broken {
			err = j.rollbackLocked(err)
		}
		st := j.stats
		// Take the cohort's release turn while still holding j.mu: tickets
		// are chained in commit order, and a successor leader can only claim
		// the pipeline after this critical section, so its cohorts' turns
		// come later in the chain.
		turn := j.relTail
		next := make(chan struct{})
		j.relTail = next
		j.mu.Unlock()

		// Latencies are measured at durability, before the cohort is handed
		// off — the releaser owns the requests from the go statement on.
		if st != nil && err == nil {
			st.observe(cohort, nrecs)
		}
		go j.releaseCohort(cohort, err, turn, next)

		j.mu.Lock()
	}
}

// releaseCohort releases one committed cohort's waiters in reservation
// order: first the commitDurable hook (which may block on the job mutex —
// this is why release runs off the write path), then the done send. turn
// gates the start on the previous cohort's release completing and next is
// closed when this one is done, so the fitter queue receives batches in
// exactly journal order across the whole journal lifetime.
func (j *journal) releaseCohort(cohort []*commitReq, err error, turn, next chan struct{}) {
	<-turn
	for _, r := range cohort {
		if r.job != nil {
			job, batch := r.job, r.batch
			r.job, r.batch = nil, nil
			job.commitDurable(batch, err)
		}
		// After this send the waiter may recycle r: no further access.
		r.done <- err
	}
	close(next)
	clear(cohort)
	j.mu.Lock()
	if j.spare == nil {
		j.spare = cohort[:0]
	}
	j.mu.Unlock()
}

// rollbackLocked discards a failed cohort: drops whatever is still buffered
// and truncates the file back to the last durable length. If the truncate
// itself fails the journal is marked broken and every later append errors,
// failing the job loudly rather than recovering from a corrupt log.
func (j *journal) rollbackLocked(cause error) error {
	j.w.Reset(j.f)
	if err := j.f.Truncate(j.off); err != nil {
		j.broken = true
		return fmt.Errorf("serve: journal append failed (%v), rollback failed, journal disabled: %w", cause, err)
	}
	return cause
}

// drainLocked blocks until the commit pipeline is empty and no leader owns
// the file, giving the caller exclusive use of f and w. The caller holds
// j.mu and must have stopped new reservations (truncate runs under the job
// mutex; Close runs after ingestion is fenced off). Releases of already
// committed cohorts may still be in flight when drain returns — they only
// touch the job queue and waiter channels, never f or w, which is what
// lets a truncate holding the job mutex drain safely while a releaser
// blocks on that same mutex.
func (j *journal) drainLocked() {
	for j.writing || len(j.pending) > 0 {
		j.idle.Wait()
	}
}

// offsets reports the durable file-local (byte, record) position —
// everything at or below it is fully flushed, complete lines. The byte
// count includes the base header line when present.
func (j *journal) offsets() (bytes, recs int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.off, j.recs
}

// globalOffsets reports the durable position in global coordinates: the
// (byte, record) offsets the journal would have had it never been
// truncated. These are the replication and /statsz coordinates — they are
// continuous and monotone across truncations, so a follower's shipped
// offset and the ingest-ack durability barrier never move backwards.
func (j *journal) globalOffsets() (bytes, recs int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.base.Bytes + (j.off - j.hdr), j.base.Recs + j.recs
}

// view returns a consistent snapshot of the journal's coordinates: the
// durable global offset, the truncation base, and the base header length.
// fileForGlobal-style mapping is then base-relative arithmetic on the
// snapshot (hdr + (global - base.Bytes)).
func (j *journal) view() (durable int64, base JournalBase, hdr int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.base.Bytes + (j.off - j.hdr), j.base, j.hdr
}

// fileLen returns the durable file-local byte length past the base header —
// what the truncation threshold compares against.
func (j *journal) fileLen() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.off - j.hdr
}

// truncate drops the journal prefix covered by the current checkpoint
// behind a fresh base header: the longest prefix containing at most
// coveredAns answer lines and coveredFits fit markers, stopping at the
// first answer line or fit marker beyond that coverage (restart re-anchors
// inside the covered prefix are dropped too — the base checkpoint was
// written at a full publication, which supersedes them as the replay
// anchor). The rewrite is crash-safe: the retained suffix and new base
// header are written to a temp file, fsynced, and renamed over the journal
// in one atomic commit; a kill before the rename leaves the old journal
// (and a possibly newer base.gob, which recovery and replay tolerate —
// their skip arithmetic works from any checkpoint at or past the base).
// Concurrent tail readers holding the old inode keep reading it unchanged.
//
// Returns the number of bytes dropped (0 if the droppable prefix was
// shorter than minDrop). The caller holds the job mutex — no new append can
// be sequenced — and truncate drains the commit pipeline before touching
// the file, so no in-flight cohort can interleave with the swap.
func (j *journal) truncate(path string, coveredAns, coveredFits, minDrop int64) (int64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.drainLocked()
	if j.broken {
		return 0, errJournalFailed
	}
	// Every committed cohort already flushed, and the drained pipeline left
	// nothing buffered: the file holds exactly off durable bytes.
	limA := coveredAns - j.base.Ans
	limF := coveredFits - j.base.Fits
	if limA < 0 || limF < 0 {
		return 0, fmt.Errorf("serve: truncate: checkpoint (%d ans, %d fits) behind journal base (%d, %d)",
			coveredAns, coveredFits, j.base.Ans, j.base.Fits)
	}

	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("serve: truncate: %w", err)
	}
	defer f.Close()
	if _, err := f.Seek(j.hdr, io.SeekStart); err != nil {
		return 0, fmt.Errorf("serve: truncate: %w", err)
	}
	rd := bufio.NewReaderSize(io.LimitReader(f, j.off-j.hdr), 64*1024)
	var cut, dropRecs, dropAns, dropFits, dropCovered int64
scan:
	for {
		raw, err := rd.ReadBytes('\n')
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, fmt.Errorf("serve: truncate: scanning journal: %w", err)
		}
		line, err := decodeJournalLine(raw[:len(raw)-1], nil)
		if err != nil {
			return 0, fmt.Errorf("serve: truncate: corrupt durable line: %w", err)
		}
		switch line.Op {
		case opAnswer:
			if dropAns == limA {
				break scan
			}
			dropAns++
		case opFit:
			if dropFits == limF {
				break scan
			}
			dropFits++
			dropCovered += int64(line.N)
		case opBase:
			return 0, fmt.Errorf("serve: truncate: base record past the journal header")
		}
		cut += int64(len(raw))
		dropRecs++
	}
	if cut < minDrop {
		return 0, nil
	}

	newBase := JournalBase{
		Bytes:   j.base.Bytes + cut,
		Recs:    j.base.Recs + dropRecs,
		Ans:     j.base.Ans + dropAns,
		Fits:    j.base.Fits + dropFits,
		Covered: j.base.Covered + dropCovered,
	}
	hdrRaw := append(appendJournalLine(nil, journalLine{Op: opBase, Base: &newBase}), '\n')

	tmpPath := path + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("serve: truncate: %w", err)
	}
	keep := j.off - j.hdr - cut
	_, err = tmp.Write(hdrRaw)
	if err == nil {
		_, err = io.Copy(tmp, io.NewSectionReader(f, j.hdr+cut, keep))
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpPath)
		return 0, fmt.Errorf("serve: truncate: writing compacted journal: %w", err)
	}
	if err := os.Rename(tmpPath, path); err != nil {
		os.Remove(tmpPath)
		return 0, fmt.Errorf("serve: truncate: %w", err)
	}

	newF, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		// The rename committed but the append handle is gone: the journal
		// on disk is valid, this process just cannot write it any more.
		j.broken = true
		return 0, fmt.Errorf("serve: truncate: reopening journal: %w", err)
	}
	j.f.Close()
	j.f = newF
	j.w.Reset(newF)
	j.base = newBase
	j.hdr = int64(len(hdrRaw))
	j.off = j.hdr + keep
	j.recs -= dropRecs
	return cut, nil
}

// appendRestart journals a recovery re-anchor: the job was reopened, its
// publisher restarted cold, and a full snapshot republished at the current
// round. Replay resets its mirrored publisher at this point. Recovery calls
// this single-threaded, before the fitter starts, so sequencing needs no
// job mutex.
func (j *journal) appendRestart() error {
	req, err := j.reserveLine(journalLine{Op: opRestart})
	if err != nil {
		return err
	}
	return j.await(req)
}

func (j *journal) flush() error {
	if err := j.w.Flush(); err != nil {
		return err
	}
	if j.sync {
		return j.f.Sync()
	}
	return nil
}

// Close drains the commit pipeline and closes the journal file. The
// per-cohort flush in the commit leader is the journal's only durability
// path — a drained pipeline has nothing buffered — so Close does not flush
// again. (It used to: flush() on the last append and then a bare w.Flush()
// here, a second flush through a path that skipped the sync-mode fsync.)
func (j *journal) Close() error {
	j.mu.Lock()
	j.drainLocked()
	// Any append sequenced after Close fails loudly instead of writing to a
	// closed descriptor.
	j.broken = true
	j.mu.Unlock()
	return j.f.Close()
}

// closeCrash simulates a hard kill for recovery tests: mark the journal
// failed and close the descriptor without draining — an in-flight cohort
// fails its waiters exactly like a real torn write would, and everything
// already flushed stays durable.
func (j *journal) closeCrash() {
	j.mu.Lock()
	j.broken = true
	j.mu.Unlock()
	j.f.Close()
}

// JournalEntry is one decoded record of a job's ingestion journal, exposed
// for external replay (the loadgen invariant checker rebuilds a job's
// consensus from its journal and compares it with the served snapshot).
// Exactly one of Answer, FitN and Restart is meaningful per entry.
type JournalEntry struct {
	// Answer is non-nil for an ingested-answer record.
	Answer *answers.Answer
	// FitN is > 0 for a fit marker: the fitter consumed the next FitN
	// pending answers as one mini-batch.
	FitN int
	// FitFull reports the publish mode of a fit marker: true when the
	// round's snapshot ran the full finalize pipeline (caught-up round, and
	// every marker written before modes were recorded), false when it
	// refreshed only the batch-dirty items (backlogged round).
	FitFull bool
	// Restart marks a recovery re-anchor: the job's publisher restarted
	// cold and republished a full snapshot at the round reached so far.
	Restart bool
	// Base is non-nil for a truncation header (always the first record of a
	// truncated journal): the stream resumes mid-job, and the consumer must
	// seed from the base checkpoint and skip the records a newer checkpoint
	// already covers.
	Base *JournalBase
}

// DecodeJournalLine decodes one complete journal line (newline stripped or
// not) into its entry form. It is the incremental counterpart of
// ReadJournal, used by the cluster layer to apply a shipped journal stream
// record by record. Unknown ops decode to a zero JournalEntry (forward
// compatibility — replay ignores them too). Canonical lines take the
// allocation-lean fast path; everything else decodes through encoding/json
// with identical acceptance and errors.
func DecodeJournalLine(raw []byte) (JournalEntry, error) {
	line, err := decodeJournalLine(raw, nil)
	if err != nil {
		return JournalEntry{}, fmt.Errorf("serve: decoding journal line: %w", err)
	}
	return line.entry()
}

// entry converts a wire-form line to its exported JournalEntry.
func (line journalLine) entry() (JournalEntry, error) {
	switch line.Op {
	case opAnswer:
		if line.Ans == nil {
			return JournalEntry{}, fmt.Errorf("%w: answer line without payload", ErrInvalid)
		}
		a := line.Ans.Answer()
		return JournalEntry{Answer: &a}, nil
	case opFit:
		return JournalEntry{FitN: line.N, FitFull: line.Mode != pubModeInc}, nil
	case opRestart:
		return JournalEntry{Restart: true}, nil
	case opBase:
		if line.Base == nil {
			return JournalEntry{}, fmt.Errorf("%w: base line without payload", ErrInvalid)
		}
		b := *line.Base
		return JournalEntry{Base: &b}, nil
	case opTune:
		// Auto-tune annotation: replay-inert by design, skipped like an
		// unknown op so journals written by tuned jobs replay identically on
		// consumers that predate (or ignore) tuning.
		return JournalEntry{}, nil
	}
	return JournalEntry{}, nil
}

// ReadJournal streams a job journal through fn in recorded order, with the
// same tolerance rules as recovery: a torn final line is skipped, malformed
// lines elsewhere are an error. A missing file yields no entries. A
// truncated journal's base header is delivered as its first entry.
func ReadJournal(path string, fn func(JournalEntry) error) error {
	_, err := ReadJournalInfo(path, fn)
	return err
}

// JournalInfo summarises a journal file's coordinates as read from disk.
type JournalInfo struct {
	// Base is the truncation header (zero unless HasBase).
	Base    JournalBase
	HasBase bool
	// BaseLineLen is the byte length of the base header line (0 without one).
	BaseLineLen int64
	// FileBytes/FileRecords are the durable file-local position: FileBytes
	// includes the base header line, FileRecords does not count it.
	FileBytes   int64
	FileRecords int64
}

// GlobalBytes returns the durable offset in global (never-truncated)
// journal coordinates.
func (ji JournalInfo) GlobalBytes() int64 {
	return ji.Base.Bytes + (ji.FileBytes - ji.BaseLineLen)
}

// GlobalRecords returns the durable record count in global coordinates.
func (ji JournalInfo) GlobalRecords() int64 { return ji.Base.Recs + ji.FileRecords }

// ReadJournalInfo streams a journal like ReadJournal and additionally
// returns the file's truncation state and durable offsets — what a
// checkpoint-anchored replayer or a resuming follower needs to place the
// file in global coordinates.
func ReadJournalInfo(path string, fn func(JournalEntry) error) (JournalInfo, error) {
	var info JournalInfo
	first := true
	bytes, _, err := replayJournal(path, func(line journalLine, size int64) error {
		isFirst := first
		first = false
		e, err := line.entry()
		if err != nil {
			return err
		}
		if e.Base != nil {
			if !isFirst {
				return fmt.Errorf("%w: base record past the journal header", ErrInvalid)
			}
			info.Base, info.HasBase, info.BaseLineLen = *e.Base, true, size
		} else {
			info.FileRecords++
		}
		if e.Answer == nil && e.FitN == 0 && !e.Restart && e.Base == nil {
			return nil // unknown op
		}
		return fn(e)
	})
	info.FileBytes = bytes
	return info, err
}

// replayJournal streams a journal file through fn in order (each line with
// its on-disk byte length, newline included) and returns the durable
// (byte, record) position: the offset just past the last complete,
// well-formed line. A torn final line — unterminated, or malformed with
// nothing after it — is tolerated, skipped, and excluded from the durable
// offset (a crash can tear a record mid-write; it was never acked, and a
// shipped stream can end mid-record when the primary dies mid-send). A
// malformed line in the middle of the file is an error. A missing file
// yields no entries at offset 0. Label sets decoded on the fast path are
// bump-allocated from one arena for the whole replay.
func replayJournal(path string, fn func(journalLine, int64) error) (int64, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, 0, nil
		}
		return 0, 0, fmt.Errorf("serve: opening journal: %w", err)
	}
	defer f.Close()
	rd := bufio.NewReaderSize(f, 64*1024)
	var arena labelset.Arena
	var off, recs int64
	var pendingErr error
	lineNo := 0
	for {
		raw, err := rd.ReadBytes('\n')
		if err == io.EOF {
			// Any unterminated trailing bytes are a torn tail: the final
			// newline never reached the disk (or the shipped stream), so the
			// record was never durable — even if the fragment happens to
			// parse as JSON, recovery must not apply it, or a deposed
			// primary's replay could run one round ahead of every ack.
			break
		}
		if err != nil {
			return off, recs, fmt.Errorf("serve: reading journal: %w", err)
		}
		lineNo++
		if pendingErr != nil {
			// The malformed line was not the last one: real corruption.
			return off, recs, pendingErr
		}
		trimmed := raw[:len(raw)-1]
		if len(trimmed) == 0 {
			off += int64(len(raw))
			continue
		}
		line, err := decodeJournalLine(trimmed, &arena)
		if err != nil {
			pendingErr = fmt.Errorf("serve: journal line %d: %w", lineNo, err)
			continue
		}
		if err := fn(line, int64(len(raw))); err != nil {
			return off, recs, err
		}
		off += int64(len(raw))
		recs++
	}
	return off, recs, nil
}
