package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"cpa/internal/answers"
)

// Journal line operations.
const (
	opAnswer  = "ans"     // one ingested answer
	opFit     = "fit"     // the fitter consumed the next N pending answers
	opRestart = "restart" // the job was recovered and republished from cold
)

// Fit-marker publish modes. Snapshot publication is part of the journaled
// computation: an interim round under backlog publishes incrementally
// (refreshing only the batch-dirty items), a caught-up round publishes the
// full finalize pipeline. Recording the mode per marker — and a restart
// line when recovery re-anchors a cold publisher — makes every published
// snapshot, not just quiesced ones, a deterministic function of the journal
// (the loadgen served-equals-replay invariant mirrors the modes on replay).
const (
	pubModeFull = "full"
	pubModeInc  = "inc"
)

// journalLine is the wire form of one journal record. Answer lines reuse
// the canonical answers.JSONAnswer codec, so a journal is also a valid
// answer stream for any JSONL consumer (modulo the envelope). Fit lines
// written before publish modes existed carry no "pub" field and replay as
// full publications, which is exactly what that code did.
type journalLine struct {
	Op   string              `json:"op"`
	Ans  *answers.JSONAnswer `json:"a,omitempty"`
	N    int                 `json:"n,omitempty"`
	Mode string              `json:"pub,omitempty"`
}

// journal is a job's append-only JSONL log. Every append is flushed to the
// OS before returning, so the log survives a process kill; SyncJournal
// additionally fsyncs for power-loss durability. The caller serialises
// access (jobs append under their ingest mutex).
type journal struct {
	f    *os.File
	w    *bufio.Writer
	sync bool
	// off is the durable length: the file size after the last fully
	// flushed append. A failed append is rolled back by truncating to off,
	// so a partially-flushed batch (the bufio buffer spills mid-batch
	// before a later write fails) can never desynchronise the journal
	// from the in-memory queue — orphaned answer lines would make fit
	// markers consume the wrong answers on replay.
	off int64
	// recs counts durable records (answer lines + fit markers + restart
	// re-anchors). Together with off it is the replication position the
	// cluster layer ships and compares: a follower whose shipped byte
	// offset equals the primary's off holds a bit-identical journal.
	recs   int64
	broken bool
}

// openJournal opens a journal for appending. recs is the number of durable
// records already in the file (0 for a fresh journal; recovery counts them
// during replay). The file must already be truncated to its durable length
// — recovery truncates a torn tail before reopening for append, so a new
// record can never concatenate onto a half-written one.
func openJournal(path string, sync bool, recs int64) (*journal, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: opening journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("serve: opening journal: %w", err)
	}
	return &journal{f: f, w: bufio.NewWriter(f), sync: sync, off: st.Size(), recs: recs}, nil
}

func (j *journal) appendLine(line journalLine) (int, error) {
	raw, err := json.Marshal(line)
	if err != nil {
		return 0, err
	}
	if _, err := j.w.Write(raw); err != nil {
		return 0, err
	}
	return len(raw) + 1, j.w.WriteByte('\n')
}

// rollback discards a failed append: drops whatever is still buffered and
// truncates the file back to the last durable length. If the truncate
// itself fails the journal is marked broken and every later append errors,
// failing the job loudly rather than recovering from a corrupt log.
func (j *journal) rollback(cause error) error {
	j.w.Reset(j.f)
	if err := j.f.Truncate(j.off); err != nil {
		j.broken = true
		return fmt.Errorf("serve: journal append failed (%v), rollback failed, journal disabled: %w", cause, err)
	}
	return cause
}

// commit is the single durability protocol every append goes through:
// refuse a broken journal, write the lines, flush, and only then advance
// the durable offset — rolling the whole group back on any failure so the
// file never holds a partial record group.
func (j *journal) commit(lines []journalLine) error {
	if j.broken {
		return fmt.Errorf("serve: journal in failed state")
	}
	var n int64
	for _, line := range lines {
		m, err := j.appendLine(line)
		if err != nil {
			return j.rollback(err)
		}
		n += int64(m)
	}
	if err := j.flush(); err != nil {
		return j.rollback(err)
	}
	j.off += n
	j.recs += int64(len(lines))
	return nil
}

// offsets reports the durable (byte, record) position — everything at or
// below it is fully flushed, complete lines.
func (j *journal) offsets() (bytes, recs int64) { return j.off, j.recs }

// appendAnswers journals a batch of accepted answers and flushes. On error
// the batch is rolled back in full; the file never holds a partial batch.
func (j *journal) appendAnswers(batch []answers.Answer) error {
	lines := make([]journalLine, len(batch))
	jas := make([]answers.JSONAnswer, len(batch))
	for i, a := range batch {
		jas[i] = answers.ToJSON(a)
		lines[i] = journalLine{Op: opAnswer, Ans: &jas[i]}
	}
	return j.commit(lines)
}

// appendFit journals a fit marker: the fitter has consumed the next n
// pending (journaled-but-unfitted) answers as one mini-batch, and the
// round's snapshot was published full (caught up) or incrementally
// (backlogged).
func (j *journal) appendFit(n int, full bool) error {
	mode := pubModeInc
	if full {
		mode = pubModeFull
	}
	return j.commit([]journalLine{{Op: opFit, N: n, Mode: mode}})
}

// appendRestart journals a recovery re-anchor: the job was reopened, its
// publisher restarted cold, and a full snapshot republished at the current
// round. Replay resets its mirrored publisher at this point.
func (j *journal) appendRestart() error {
	return j.commit([]journalLine{{Op: opRestart}})
}

func (j *journal) flush() error {
	if err := j.w.Flush(); err != nil {
		return err
	}
	if j.sync {
		return j.f.Sync()
	}
	return nil
}

func (j *journal) Close() error {
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// JournalEntry is one decoded record of a job's ingestion journal, exposed
// for external replay (the loadgen invariant checker rebuilds a job's
// consensus from its journal and compares it with the served snapshot).
// Exactly one of Answer, FitN and Restart is meaningful per entry.
type JournalEntry struct {
	// Answer is non-nil for an ingested-answer record.
	Answer *answers.Answer
	// FitN is > 0 for a fit marker: the fitter consumed the next FitN
	// pending answers as one mini-batch.
	FitN int
	// FitFull reports the publish mode of a fit marker: true when the
	// round's snapshot ran the full finalize pipeline (caught-up round, and
	// every marker written before modes were recorded), false when it
	// refreshed only the batch-dirty items (backlogged round).
	FitFull bool
	// Restart marks a recovery re-anchor: the job's publisher restarted
	// cold and republished a full snapshot at the round reached so far.
	Restart bool
}

// DecodeJournalLine decodes one complete journal line (newline stripped or
// not) into its entry form. It is the incremental counterpart of
// ReadJournal, used by the cluster layer to apply a shipped journal stream
// record by record. Unknown ops decode to a zero JournalEntry (forward
// compatibility — replay ignores them too).
func DecodeJournalLine(raw []byte) (JournalEntry, error) {
	var line journalLine
	if err := json.Unmarshal(raw, &line); err != nil {
		return JournalEntry{}, fmt.Errorf("serve: decoding journal line: %w", err)
	}
	return line.entry()
}

// entry converts a wire-form line to its exported JournalEntry.
func (line journalLine) entry() (JournalEntry, error) {
	switch line.Op {
	case opAnswer:
		if line.Ans == nil {
			return JournalEntry{}, fmt.Errorf("%w: answer line without payload", ErrInvalid)
		}
		a := line.Ans.Answer()
		return JournalEntry{Answer: &a}, nil
	case opFit:
		return JournalEntry{FitN: line.N, FitFull: line.Mode != pubModeInc}, nil
	case opRestart:
		return JournalEntry{Restart: true}, nil
	}
	return JournalEntry{}, nil
}

// ReadJournal streams a job journal through fn in recorded order, with the
// same tolerance rules as recovery: a torn final line is skipped, malformed
// lines elsewhere are an error. A missing file yields no entries.
func ReadJournal(path string, fn func(JournalEntry) error) error {
	_, _, err := replayJournal(path, func(line journalLine) error {
		e, err := line.entry()
		if err != nil {
			return err
		}
		if e.Answer == nil && e.FitN == 0 && !e.Restart {
			return nil // unknown op
		}
		return fn(e)
	})
	return err
}

// replayJournal streams a journal file through fn in order and returns the
// durable (byte, record) position: the offset just past the last complete,
// well-formed line. A torn final line — unterminated, or malformed with
// nothing after it — is tolerated, skipped, and excluded from the durable
// offset (a crash can tear a record mid-write; it was never acked, and a
// shipped stream can end mid-record when the primary dies mid-send). A
// malformed line in the middle of the file is an error. A missing file
// yields no entries at offset 0.
func replayJournal(path string, fn func(journalLine) error) (int64, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, 0, nil
		}
		return 0, 0, fmt.Errorf("serve: opening journal: %w", err)
	}
	defer f.Close()
	rd := bufio.NewReaderSize(f, 64*1024)
	var off, recs int64
	var pendingErr error
	lineNo := 0
	for {
		raw, err := rd.ReadBytes('\n')
		if err == io.EOF {
			// Any unterminated trailing bytes are a torn tail: the final
			// newline never reached the disk (or the shipped stream), so the
			// record was never durable — even if the fragment happens to
			// parse as JSON, recovery must not apply it, or a deposed
			// primary's replay could run one round ahead of every ack.
			break
		}
		if err != nil {
			return off, recs, fmt.Errorf("serve: reading journal: %w", err)
		}
		lineNo++
		if pendingErr != nil {
			// The malformed line was not the last one: real corruption.
			return off, recs, pendingErr
		}
		trimmed := raw[:len(raw)-1]
		if len(trimmed) == 0 {
			off += int64(len(raw))
			continue
		}
		var line journalLine
		if err := json.Unmarshal(trimmed, &line); err != nil {
			pendingErr = fmt.Errorf("serve: journal line %d: %w", lineNo, err)
			continue
		}
		if err := fn(line); err != nil {
			return off, recs, err
		}
		off += int64(len(raw))
		recs++
	}
	return off, recs, nil
}
