package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"

	"cpa/internal/answers"
)

// Journal line operations.
const (
	opAnswer  = "ans"     // one ingested answer
	opFit     = "fit"     // the fitter consumed the next N pending answers
	opRestart = "restart" // the job was recovered and republished from cold
)

// Fit-marker publish modes. Snapshot publication is part of the journaled
// computation: an interim round under backlog publishes incrementally
// (refreshing only the batch-dirty items), a caught-up round publishes the
// full finalize pipeline. Recording the mode per marker — and a restart
// line when recovery re-anchors a cold publisher — makes every published
// snapshot, not just quiesced ones, a deterministic function of the journal
// (the loadgen served-equals-replay invariant mirrors the modes on replay).
const (
	pubModeFull = "full"
	pubModeInc  = "inc"
)

// journalLine is the wire form of one journal record. Answer lines reuse
// the canonical answers.JSONAnswer codec, so a journal is also a valid
// answer stream for any JSONL consumer (modulo the envelope). Fit lines
// written before publish modes existed carry no "pub" field and replay as
// full publications, which is exactly what that code did.
type journalLine struct {
	Op   string              `json:"op"`
	Ans  *answers.JSONAnswer `json:"a,omitempty"`
	N    int                 `json:"n,omitempty"`
	Mode string              `json:"pub,omitempty"`
}

// journal is a job's append-only JSONL log. Every append is flushed to the
// OS before returning, so the log survives a process kill; SyncJournal
// additionally fsyncs for power-loss durability. The caller serialises
// access (jobs append under their ingest mutex).
type journal struct {
	f    *os.File
	w    *bufio.Writer
	sync bool
	// off is the durable length: the file size after the last fully
	// flushed append. A failed append is rolled back by truncating to off,
	// so a partially-flushed batch (the bufio buffer spills mid-batch
	// before a later write fails) can never desynchronise the journal
	// from the in-memory queue — orphaned answer lines would make fit
	// markers consume the wrong answers on replay.
	off    int64
	broken bool
}

func openJournal(path string, sync bool) (*journal, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: opening journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("serve: opening journal: %w", err)
	}
	return &journal{f: f, w: bufio.NewWriter(f), sync: sync, off: st.Size()}, nil
}

func (j *journal) appendLine(line journalLine) (int, error) {
	raw, err := json.Marshal(line)
	if err != nil {
		return 0, err
	}
	if _, err := j.w.Write(raw); err != nil {
		return 0, err
	}
	return len(raw) + 1, j.w.WriteByte('\n')
}

// rollback discards a failed append: drops whatever is still buffered and
// truncates the file back to the last durable length. If the truncate
// itself fails the journal is marked broken and every later append errors,
// failing the job loudly rather than recovering from a corrupt log.
func (j *journal) rollback(cause error) error {
	j.w.Reset(j.f)
	if err := j.f.Truncate(j.off); err != nil {
		j.broken = true
		return fmt.Errorf("serve: journal append failed (%v), rollback failed, journal disabled: %w", cause, err)
	}
	return cause
}

// commit is the single durability protocol every append goes through:
// refuse a broken journal, write the lines, flush, and only then advance
// the durable offset — rolling the whole group back on any failure so the
// file never holds a partial record group.
func (j *journal) commit(lines []journalLine) error {
	if j.broken {
		return fmt.Errorf("serve: journal in failed state")
	}
	var n int64
	for _, line := range lines {
		m, err := j.appendLine(line)
		if err != nil {
			return j.rollback(err)
		}
		n += int64(m)
	}
	if err := j.flush(); err != nil {
		return j.rollback(err)
	}
	j.off += n
	return nil
}

// appendAnswers journals a batch of accepted answers and flushes. On error
// the batch is rolled back in full; the file never holds a partial batch.
func (j *journal) appendAnswers(batch []answers.Answer) error {
	lines := make([]journalLine, len(batch))
	jas := make([]answers.JSONAnswer, len(batch))
	for i, a := range batch {
		jas[i] = answers.ToJSON(a)
		lines[i] = journalLine{Op: opAnswer, Ans: &jas[i]}
	}
	return j.commit(lines)
}

// appendFit journals a fit marker: the fitter has consumed the next n
// pending (journaled-but-unfitted) answers as one mini-batch, and the
// round's snapshot was published full (caught up) or incrementally
// (backlogged).
func (j *journal) appendFit(n int, full bool) error {
	mode := pubModeInc
	if full {
		mode = pubModeFull
	}
	return j.commit([]journalLine{{Op: opFit, N: n, Mode: mode}})
}

// appendRestart journals a recovery re-anchor: the job was reopened, its
// publisher restarted cold, and a full snapshot republished at the current
// round. Replay resets its mirrored publisher at this point.
func (j *journal) appendRestart() error {
	return j.commit([]journalLine{{Op: opRestart}})
}

func (j *journal) flush() error {
	if err := j.w.Flush(); err != nil {
		return err
	}
	if j.sync {
		return j.f.Sync()
	}
	return nil
}

func (j *journal) Close() error {
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// JournalEntry is one decoded record of a job's ingestion journal, exposed
// for external replay (the loadgen invariant checker rebuilds a job's
// consensus from its journal and compares it with the served snapshot).
// Exactly one of Answer, FitN and Restart is meaningful per entry.
type JournalEntry struct {
	// Answer is non-nil for an ingested-answer record.
	Answer *answers.Answer
	// FitN is > 0 for a fit marker: the fitter consumed the next FitN
	// pending answers as one mini-batch.
	FitN int
	// FitFull reports the publish mode of a fit marker: true when the
	// round's snapshot ran the full finalize pipeline (caught-up round, and
	// every marker written before modes were recorded), false when it
	// refreshed only the batch-dirty items (backlogged round).
	FitFull bool
	// Restart marks a recovery re-anchor: the job's publisher restarted
	// cold and republished a full snapshot at the round reached so far.
	Restart bool
}

// ReadJournal streams a job journal through fn in recorded order, with the
// same tolerance rules as recovery: a torn final line is skipped, malformed
// lines elsewhere are an error. A missing file yields no entries.
func ReadJournal(path string, fn func(JournalEntry) error) error {
	return replayJournal(path, func(line journalLine) error {
		switch line.Op {
		case opAnswer:
			if line.Ans == nil {
				return fmt.Errorf("%w: answer line without payload", ErrInvalid)
			}
			a := line.Ans.Answer()
			return fn(JournalEntry{Answer: &a})
		case opFit:
			return fn(JournalEntry{FitN: line.N, FitFull: line.Mode != pubModeInc})
		case opRestart:
			return fn(JournalEntry{Restart: true})
		}
		return nil
	})
}

// replayJournal streams a journal file through fn in order. A torn final
// line (crash mid-write) is tolerated and skipped; a malformed line in the
// middle of the file is an error.
func replayJournal(path string, fn func(journalLine) error) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("serve: opening journal: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var pendingErr error
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if pendingErr != nil {
			// The malformed line was not the last one: real corruption.
			return pendingErr
		}
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var line journalLine
		if err := json.Unmarshal(raw, &line); err != nil {
			pendingErr = fmt.Errorf("serve: journal line %d: %w", lineNo, err)
			continue
		}
		if err := fn(line); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("serve: reading journal: %w", err)
	}
	return nil
}
