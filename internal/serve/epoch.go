package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Ownership epochs (DESIGN.md §11). In a clustered deployment exactly one
// replica owns a job's write path at any time; ownership is versioned by a
// monotonically increasing epoch. The router stamps every proxied write
// with the epoch it believes is current, and a job rejects writes whose
// epoch does not match — so a deposed primary (fenced at a higher epoch
// after a failover or handoff) can never ack an answer the cluster no
// longer considers durable, and a stale router can never write through a
// promoted replica's back. The epoch state is persisted (atomically, next
// to the spec) so a deposed primary that crashes and recovers stays
// deposed.
//
// Single-node deployments never touch any of this: jobs start as primary
// at epoch 0, unstamped writes skip the equality check, and no epoch file
// is written until the first Fence/Promote.

// ErrFenced rejects a write from a deposed primary or a stale epoch. HTTP
// handlers map it to 409 Conflict.
var ErrFenced = fmt.Errorf("serve: fenced")

const epochFile = "epoch.json"

// epochState is the persisted ownership record.
type epochState struct {
	Epoch int64 `json:"epoch"`
	// Deposed marks a replica that lost ownership: every write is rejected
	// regardless of stamp until a Promote re-establishes it.
	Deposed bool `json:"deposed"`
}

// Epoch returns the job's current ownership epoch.
func (j *Job) Epoch() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.epoch.Epoch
}

// Deposed reports whether the job has been fenced out of the write path.
func (j *Job) Deposed() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.epoch.Deposed
}

// Fence deposes the job at the given epoch: ingestion is rejected with
// ErrFenced until a Promote. The epoch must not regress. Fencing an
// already-deposed job at a higher epoch is allowed (repeated failovers).
func (j *Job) Fence(epoch int64) error {
	return j.setEpoch(epochState{Epoch: epoch, Deposed: true})
}

// Promote (re-)establishes the job as the primary at the given epoch. The
// epoch must not regress; promoting at the current epoch is idempotent.
func (j *Job) Promote(epoch int64) error {
	return j.setEpoch(epochState{Epoch: epoch, Deposed: false})
}

func (j *Job) setEpoch(next epochState) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if next.Epoch < j.epoch.Epoch {
		return fmt.Errorf("%w: epoch %d behind current %d", ErrFenced, next.Epoch, j.epoch.Epoch)
	}
	prev := j.epoch
	j.epoch = next
	if j.dir != "" {
		raw, err := json.Marshal(next)
		if err != nil {
			j.epoch = prev
			return err
		}
		if err := writeFileAtomic(filepath.Join(j.dir, epochFile), raw); err != nil {
			j.epoch = prev
			return fmt.Errorf("serve: persisting epoch: %w", err)
		}
	}
	return nil
}

// checkEpochLocked gates one write attempt. stamp < 0 means the write
// carries no epoch (single-node clients); it still must not land on a
// deposed replica. Called with j.mu held.
func (j *Job) checkEpochLocked(stamp int64) error {
	if j.epoch.Deposed {
		return fmt.Errorf("%w: job %q deposed at epoch %d", ErrFenced, j.spec.ID, j.epoch.Epoch)
	}
	if stamp >= 0 && stamp != j.epoch.Epoch {
		return fmt.Errorf("%w: write stamped epoch %d, job at %d", ErrFenced, stamp, j.epoch.Epoch)
	}
	return nil
}

// WriteEpochState persists an ownership record into a job directory that is
// being materialised out of band — a cluster follower staging its shipped
// journal for adoption writes the promotion epoch before handing the
// directory to Registry.AdoptJob, so the adopted job comes up owning the
// write path at the right epoch (or stays deposed if the promotion never
// completes).
func WriteEpochState(dir string, epoch int64, deposed bool) error {
	raw, err := json.Marshal(epochState{Epoch: epoch, Deposed: deposed})
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(dir, epochFile), raw)
}

// loadEpochState reads a job directory's persisted epoch record. A missing
// file is the zero state (primary at epoch 0).
func loadEpochState(dir string) (epochState, error) {
	raw, err := os.ReadFile(filepath.Join(dir, epochFile))
	if os.IsNotExist(err) {
		return epochState{}, nil
	}
	if err != nil {
		return epochState{}, fmt.Errorf("reading epoch state: %w", err)
	}
	var st epochState
	if err := json.Unmarshal(raw, &st); err != nil {
		return epochState{}, fmt.Errorf("decoding epoch state: %w", err)
	}
	return st, nil
}
