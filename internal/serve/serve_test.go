package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cpa/internal/answers"
	"cpa/internal/core"
	"cpa/internal/datasets"
	"cpa/internal/labelset"
	"cpa/internal/metrics"
)

// testStream loads a small Table 3 profile for serving tests.
func testStream(t testing.TB, scale float64, seed int64) *answers.Dataset {
	t.Helper()
	ds, _, err := datasets.Load("image", scale, seed)
	if err != nil {
		t.Fatalf("loading profile: %v", err)
	}
	return ds
}

func mustOpen(t testing.TB, cfg Config) *Registry {
	t.Helper()
	reg, err := Open(cfg)
	if err != nil {
		t.Fatalf("opening registry: %v", err)
	}
	return reg
}

// postNDJSON ingests a chunk of answers over HTTP as an NDJSON stream.
func postNDJSON(t testing.TB, client *http.Client, url string, batch []answers.Answer) {
	t.Helper()
	var body bytes.Buffer
	for _, a := range batch {
		line, err := answers.MarshalAnswerJSON(a)
		if err != nil {
			t.Fatalf("marshal answer: %v", err)
		}
		body.Write(line)
		body.WriteByte('\n')
	}
	resp, err := client.Post(url, "application/x-ndjson", &body)
	if err != nil {
		t.Fatalf("POST answers: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST answers: status %d", resp.StatusCode)
	}
}

func createJobHTTP(t testing.TB, client *http.Client, base string, req CreateJobRequest) {
	t.Helper()
	raw, _ := json.Marshal(req)
	resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/jobs: status %d", resp.StatusCode)
	}
}

func getSnapshot(t testing.TB, client *http.Client, base, id string) *Snapshot {
	t.Helper()
	resp, err := client.Get(base + "/v1/jobs/" + id + "/consensus")
	if err != nil {
		t.Fatalf("GET consensus: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET consensus: status %d", resp.StatusCode)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding snapshot: %v", err)
	}
	return &snap
}

func waitFitted(t testing.TB, j *Job, want int64) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for j.fitted.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d fitted answers (have %d)", want, j.fitted.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServeMatchesOffline is the end-to-end acceptance test: a LoadProfile
// answer stream ingested over HTTP must yield the same consensus quality as
// the offline cpa-online path (FitStream) on the same answers. With the
// same mini-batch boundaries the two are the same deterministic
// computation, so the tolerance check should pass with margin to spare.
func TestServeMatchesOffline(t *testing.T) {
	ds := testStream(t, 0.08, 7)
	cfg := core.Config{Seed: 7, BatchSize: 64, Parallelism: 2}

	// Offline reference: single-pass SVI over the same arrival order.
	offline, err := core.NewModel(cfg, ds.NumItems, ds.NumWorkers, ds.NumLabels)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := offline.FitStream(ds); err != nil {
		t.Fatal(err)
	}
	offPred, err := offline.Predict()
	if err != nil {
		t.Fatal(err)
	}
	offPR, err := metrics.Evaluate(ds, offPred)
	if err != nil {
		t.Fatal(err)
	}

	// Served: same answers, chunked to the model's batch size, over HTTP.
	reg := mustOpen(t, Config{BatchWait: 20 * time.Millisecond})
	defer reg.Close()
	ts := httptest.NewServer(NewServer(reg))
	defer ts.Close()
	client := ts.Client()

	createJobHTTP(t, client, ts.URL, CreateJobRequest{
		ID: "image", Items: ds.NumItems, Workers: ds.NumWorkers, Labels: ds.NumLabels, Model: cfg,
	})
	job, ok := reg.Get("image")
	if !ok {
		t.Fatal("job not registered")
	}
	all := ds.Answers()
	ingestURL := ts.URL + "/v1/jobs/image/answers"
	for start := 0; start < len(all); start += cfg.BatchSize {
		end := start + cfg.BatchSize
		if end > len(all) {
			end = len(all)
		}
		postNDJSON(t, client, ingestURL, all[start:end])
		// Wait for the fitter to consume the chunk so the server's batch
		// partition matches ds.Batches(BatchSize) exactly.
		waitFitted(t, job, int64(end))
	}

	// The snapshot publication trails the fitted counter by one publish
	// call; wait for the final round's snapshot before comparing.
	waitSnapshot(t, job, len(all))
	snap := getSnapshot(t, client, ts.URL, "image")
	if snap.Round != offline.BatchRounds() {
		t.Errorf("served %d fit rounds, offline %d", snap.Round, offline.BatchRounds())
	}
	if snap.Answers != ds.NumAnswers() {
		t.Errorf("snapshot covers %d answers, want %d", snap.Answers, ds.NumAnswers())
	}
	pred := make([]labelset.Set, ds.NumItems)
	for _, item := range snap.Consensus {
		pred[item.Item] = labelset.FromSlice(item.Labels)
	}
	servePR, err := metrics.Evaluate(ds, pred)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("offline P=%.4f R=%.4f; served P=%.4f R=%.4f", offPR.Precision, offPR.Recall, servePR.Precision, servePR.Recall)
	if d := math.Abs(servePR.Precision - offPR.Precision); d > 0.02 {
		t.Errorf("precision drift %.4f exceeds 2%%", d)
	}
	if d := math.Abs(servePR.Recall - offPR.Recall); d > 0.02 {
		t.Errorf("recall drift %.4f exceeds 2%%", d)
	}
}

// TestConcurrentReadsDuringFit hammers the read path from many goroutines
// while ingestion and fitting run; under -race this verifies the lock-free
// snapshot publication, and the monotone-round check verifies readers never
// observe regressing consensus.
func TestConcurrentReadsDuringFit(t *testing.T) {
	ds := testStream(t, 0.08, 3)
	reg := mustOpen(t, Config{BatchWait: 5 * time.Millisecond})
	defer reg.Close()
	ts := httptest.NewServer(NewServer(reg))
	defer ts.Close()

	job, err := reg.Create(JobSpec{
		ID: "hot", Items: ds.NumItems, Workers: ds.NumWorkers, Labels: ds.NumLabels,
		Model: core.Config{Seed: 3, BatchSize: 128, Parallelism: 2},
	})
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastRound := -1
			for !stop.Load() {
				snap := job.Snapshot()
				if snap.Round < lastRound {
					t.Errorf("snapshot round regressed: %d after %d", snap.Round, lastRound)
					return
				}
				lastRound = snap.Round
				_ = job.Stats()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		client := ts.Client()
		for !stop.Load() {
			resp, err := client.Get(ts.URL + "/v1/jobs/hot/consensus")
			if err == nil {
				resp.Body.Close()
			}
		}
	}()

	all := ds.Answers()
	for start := 0; start < len(all); start += 200 {
		end := start + 200
		if end > len(all) {
			end = len(all)
		}
		if err := job.Ingest(all[start:end]); err != nil {
			t.Fatal(err)
		}
	}
	waitFitted(t, job, int64(len(all)))
	stop.Store(true)
	wg.Wait()

	if snap := job.Snapshot(); snap.Round == 0 || len(snap.Consensus) != ds.NumItems {
		t.Fatalf("expected a full consensus snapshot, got round=%d items=%d", snap.Round, len(snap.Consensus))
	}
}

// TestConcurrentCachedBodyReads hammers the cached-encoding read path while
// the fitter publishes round after round: direct encodedBody() readers and
// HTTP /consensus readers race the publisher's snapshot swaps. Under -race
// this pins that the lazily-cached body is safe to fill from many readers
// at once; the content checks pin that every reader sees a complete,
// self-consistent encoding of whatever snapshot it loaded.
func TestConcurrentCachedBodyReads(t *testing.T) {
	ds := testStream(t, 0.08, 19)
	reg := mustOpen(t, Config{BatchWait: 2 * time.Millisecond})
	defer reg.Close()
	ts := httptest.NewServer(NewServer(reg))
	defer ts.Close()

	job, err := reg.Create(JobSpec{
		ID: "cached", Items: ds.NumItems, Workers: ds.NumWorkers, Labels: ds.NumLabels,
		Model: core.Config{Seed: 19, BatchSize: 64, Parallelism: 2},
	})
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastRound := -1
			for !stop.Load() {
				snap := job.Snapshot()
				body, err := snap.encodedBody()
				if err != nil {
					t.Errorf("encodedBody: %v", err)
					return
				}
				var decoded Snapshot
				if err := json.Unmarshal(body, &decoded); err != nil {
					t.Errorf("cached body is not valid JSON: %v", err)
					return
				}
				if decoded.Round != snap.Round || len(decoded.Consensus) != len(snap.Consensus) {
					t.Errorf("cached body decodes to round=%d items=%d, snapshot says round=%d items=%d",
						decoded.Round, len(decoded.Consensus), snap.Round, len(snap.Consensus))
					return
				}
				if snap.Round < lastRound {
					t.Errorf("snapshot round regressed: %d after %d", snap.Round, lastRound)
					return
				}
				lastRound = snap.Round
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		client := ts.Client()
		for !stop.Load() {
			resp, err := client.Get(ts.URL + "/v1/jobs/cached/consensus")
			if err != nil {
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	all := ds.Answers()
	for start := 0; start < len(all); start += 100 {
		end := start + 100
		if end > len(all) {
			end = len(all)
		}
		if err := job.Ingest(all[start:end]); err != nil {
			t.Fatal(err)
		}
	}
	waitFitted(t, job, int64(len(all)))
	waitSnapshot(t, job, len(all))
	stop.Store(true)
	wg.Wait()

	// Cached and freshly marshaled bytes must agree for the final snapshot.
	snap := job.Snapshot()
	cached, err := snap.encodedBody()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if string(cached) != string(fresh)+"\n" {
		t.Fatal("cached body differs from a fresh marshal of the same snapshot")
	}
	if st := job.Stats(); st.Publish.Count == 0 || st.SnapshotRound == 0 ||
		st.EffectiveCommunities == 0 || st.EffectiveClusters == 0 {
		t.Fatalf("stats missing publish/adaptivity fields: %+v", st)
	}
}

func TestHTTPAPISurface(t *testing.T) {
	reg := mustOpen(t, Config{})
	defer reg.Close()
	ts := httptest.NewServer(NewServer(reg))
	defer ts.Close()
	client := ts.Client()

	post := func(path, body string) *http.Response {
		t.Helper()
		resp, err := client.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		return resp
	}
	expect := func(resp *http.Response, want int) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("status %d, want %d", resp.StatusCode, want)
		}
	}

	expect(post("/v1/jobs", `{"id":"a","items":10,"workers":5,"labels":4}`), http.StatusCreated)
	expect(post("/v1/jobs", `{"id":"a","items":10,"workers":5,"labels":4}`), http.StatusConflict)
	expect(post("/v1/jobs", `{"id":"","items":10,"workers":5,"labels":4}`), http.StatusBadRequest)
	expect(post("/v1/jobs", `{"id":"bad dims","items":0,"workers":5,"labels":4}`), http.StatusBadRequest)
	expect(post("/v1/jobs", `not json`), http.StatusBadRequest)

	// JSON-array ingestion form.
	expect(post("/v1/jobs/a/answers", `{"answers":[{"i":0,"u":1,"x":[0,2]},{"i":1,"u":2,"x":[1]}]}`), http.StatusAccepted)
	// Validation failures: out-of-range item / label, empty labels.
	expect(post("/v1/jobs/a/answers", `{"answers":[{"i":99,"u":1,"x":[0]}]}`), http.StatusBadRequest)
	expect(post("/v1/jobs/a/answers", `{"answers":[{"i":0,"u":1,"x":[99]}]}`), http.StatusBadRequest)
	expect(post("/v1/jobs/a/answers", `{"answers":[{"i":0,"u":1,"x":[]}]}`), http.StatusBadRequest)
	expect(post("/v1/jobs/nope/answers", `{"answers":[]}`), http.StatusNotFound)

	for _, path := range []string{"/healthz", "/statsz", "/v1/jobs", "/v1/jobs/a", "/v1/jobs/a/consensus", "/v1/jobs/a/items/0"} {
		resp, err := client.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		expect(resp, http.StatusOK)
	}
	resp, err := client.Get(ts.URL + "/v1/jobs/a/items/12345")
	if err != nil {
		t.Fatal(err)
	}
	expect(resp, http.StatusNotFound)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/a", nil)
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	expect(resp, http.StatusNoContent)
	resp, err = client.Get(ts.URL + "/v1/jobs/a")
	if err != nil {
		t.Fatal(err)
	}
	expect(resp, http.StatusNotFound)
}

func TestQueueBackpressure(t *testing.T) {
	reg := mustOpen(t, Config{QueueLimit: 8, BatchWait: time.Hour})
	defer reg.Close()
	job, err := reg.Create(JobSpec{
		ID: "tiny", Items: 100, Workers: 10, Labels: 5,
		Model: core.Config{Seed: 1, BatchSize: 512},
	})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]answers.Answer, 16)
	for i := range batch {
		batch[i] = answers.Answer{Item: i, Worker: i % 10, Labels: labelset.Of(i % 5)}
	}
	// With BatchSize 512 and a huge BatchWait the fitter never drains the
	// 8-slot queue, so an oversized batch must be rejected atomically.
	if err := job.Ingest(batch); !errorsIs(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if err := job.Ingest(batch[:8]); err != nil {
		t.Fatalf("batch within limit rejected: %v", err)
	}
	if err := job.Ingest(batch[8:]); !errorsIs(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull on full queue, got %v", err)
	}
	if got := job.Stats().QueueDepth; got != 8 {
		t.Fatalf("queue depth %d, want 8", got)
	}

	// The HTTP layer maps backpressure to 429.
	ts := httptest.NewServer(NewServer(reg))
	defer ts.Close()
	var body bytes.Buffer
	for _, a := range batch {
		line, _ := answers.MarshalAnswerJSON(a)
		body.Write(line)
		body.WriteByte('\n')
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs/tiny/answers", "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
}

func TestIngestAfterClose(t *testing.T) {
	reg := mustOpen(t, Config{})
	job, err := reg.Create(JobSpec{ID: "x", Items: 4, Workers: 2, Labels: 2, Model: core.Config{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	err = job.Ingest([]answers.Answer{{Item: 0, Worker: 0, Labels: labelset.Of(0)}})
	if !errorsIs(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func errorsIs(err, target error) bool { return errors.Is(err, target) }

// BenchmarkConsensusRead measures the GET /consensus read path with an idle
// fitter; BenchmarkConsensusReadDuringFit measures the same read while the
// fitter is continuously mid-round. The read path is a lock-free pointer
// load, so with a core to spare the two are within noise of each other.
// (On a single-CPU host the during-fit number instead measures scheduler
// contention with the fitter's compute — lock-freedom itself is what
// TestConcurrentReadsDuringFit verifies under -race.)
func BenchmarkConsensusRead(b *testing.B)          { benchConsensusRead(b, false) }
func BenchmarkConsensusReadDuringFit(b *testing.B) { benchConsensusRead(b, true) }

func benchConsensusRead(b *testing.B, fitting bool) {
	ds := testStream(b, 0.08, 11)
	reg := mustOpen(b, Config{QueueLimit: 1 << 20, BatchWait: time.Millisecond})
	defer reg.Close()
	ts := httptest.NewServer(NewServer(reg))
	defer ts.Close()

	job, err := reg.Create(JobSpec{
		ID: "bench", Items: ds.NumItems, Workers: ds.NumWorkers, Labels: ds.NumLabels,
		Model: core.Config{Seed: 11, BatchSize: 128},
	})
	if err != nil {
		b.Fatal(err)
	}
	all := ds.Answers()
	if err := job.Ingest(all); err != nil {
		b.Fatal(err)
	}
	waitFitted(b, job, int64(len(all)))

	var stop atomic.Bool
	var wg sync.WaitGroup
	if fitting {
		// Keep the fitter permanently mid-round by recycling the stream,
		// paced by queue depth: an unbounded backlog would grow the model
		// (and each round's cost) without limit during long measurements.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				for start := 0; start < len(all) && !stop.Load(); start += 128 {
					end := start + 128
					if end > len(all) {
						end = len(all)
					}
					for job.Stats().QueueDepth > 512 && !stop.Load() {
						time.Sleep(time.Millisecond)
					}
					if err := job.Ingest(all[start:end]); err != nil {
						time.Sleep(time.Millisecond)
					}
				}
			}
		}()
	}

	client := ts.Client()
	url := ts.URL + "/v1/jobs/bench/consensus"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
	b.StopTimer()
	stop.Store(true)
	wg.Wait()
}
