package serve

import (
	"sync"

	"cpa/internal/core"
)

// Worker-trajectory sampling bounds. A ring of trajLen samples per worker,
// recorded every trajEvery publications, lets an operator see a sleeper
// worker turn — the two-coin reliability and blended vote weight drifting —
// rather than only the consensus absorbing it. Jobs beyond trajMaxWorkers
// skip sampling entirely: the point of the cap is that the O(workers) sweep
// and the retained rings stay trivial next to the model itself.
const (
	trajLen        = 16
	trajEvery      = 4
	trajMaxWorkers = 4096
)

// TrajPoint is one sampled view of a worker's trust at a fit round.
type TrajPoint struct {
	Round int64 `json:"round"`
	// VoteWeight is the blended per-label vote weight the consensus search
	// uses (0 until rates exist); Reliability the two-coin posterior mean.
	VoteWeight  float64 `json:"vote_weight"`
	Reliability float64 `json:"reliability"`
}

// WorkerTrajectory is one worker's recent trust samples, oldest first.
type WorkerTrajectory struct {
	Worker int         `json:"worker"`
	Points []TrajPoint `json:"points"`
}

// workerTraj accumulates the rings. The fitter records (it owns the model at
// publication time); /statsz readers copy under the mutex.
type workerTraj struct {
	mu    sync.Mutex
	rings [][]TrajPoint
}

func newWorkerTraj(workers int) *workerTraj {
	return &workerTraj{rings: make([][]TrajPoint, workers)}
}

// maybeRecord samples every worker's reliability at the given round if the
// sampling cadence is due. Fitter goroutine only (reads the live model).
func (w *workerTraj) maybeRecord(round int64, m *core.Model) {
	if round%trajEvery != 0 {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for u := range w.rings {
		p := TrajPoint{Round: round, VoteWeight: m.WorkerVoteWeight(u), Reliability: m.WorkerReliability(u)}
		if n := len(w.rings[u]); n > 0 && w.rings[u][n-1].Round == round {
			continue // recovery republish at an already-sampled round
		}
		if len(w.rings[u]) == trajLen {
			copy(w.rings[u], w.rings[u][1:])
			w.rings[u][trajLen-1] = p
		} else {
			w.rings[u] = append(w.rings[u], p)
		}
	}
}

// trajectories copies out the non-empty rings.
func (w *workerTraj) trajectories() []WorkerTrajectory {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]WorkerTrajectory, 0, len(w.rings))
	for u, ring := range w.rings {
		if len(ring) == 0 {
			continue
		}
		out = append(out, WorkerTrajectory{Worker: u, Points: append([]TrajPoint(nil), ring...)})
	}
	return out
}
