package serve

import (
	"encoding/json"
	"sync/atomic"
	"time"

	"cpa/internal/core"
)

// Snapshot is one immutable, JSON-ready consensus publication. The fitter
// builds a fresh Snapshot after each round and swaps it behind the job's
// atomic pointer; readers share the value without copying, so nothing in a
// published Snapshot may ever be mutated. Across incremental rounds,
// ItemSnapshot entries for untouched items are shared with the previous
// Snapshot (nextSnapshot) — the same immutability contract, extended
// backwards in time.
type Snapshot struct {
	JobID   string `json:"job_id"`
	Round   int    `json:"round"`   // fit rounds behind this snapshot
	Answers int    `json:"answers"` // answers the model had ingested
	Items   int    `json:"items"`
	Workers int    `json:"workers"`
	Labels  int    `json:"labels"`

	EffectiveCommunities int `json:"effective_communities"`
	EffectiveClusters    int `json:"effective_clusters"`

	CreatedAt time.Time `json:"created_at"`

	// Consensus holds one entry per item (index == item id).
	Consensus []ItemSnapshot `json:"consensus"`

	// enc caches the encoded JSON of this snapshot so concurrent
	// GET /consensus readers marshal O(items) once per publication, not
	// once per request. Held by pointer so Snapshot values stay copyable;
	// copies share the cache, which is safe because published snapshots
	// are immutable. Nil on snapshots not built by this package (e.g.
	// client-side decodes): those marshal per call.
	enc *snapshotEnc
}

// snapshotEnc is the lazily filled encoding cache. A racing double-encode
// is benign (identical bytes, last store wins).
type snapshotEnc struct {
	body atomic.Pointer[[]byte]
}

// encodedBody returns the snapshot's JSON encoding (newline-terminated,
// matching json.Encoder output), computing and caching it on first use.
func (s *Snapshot) encodedBody() ([]byte, error) {
	if s.enc != nil {
		if b := s.enc.body.Load(); b != nil {
			return *b, nil
		}
	}
	raw, err := json.Marshal(s)
	if err != nil {
		return nil, err
	}
	raw = append(raw, '\n')
	if s.enc != nil {
		s.enc.body.Store(&raw)
	}
	return raw, nil
}

// ItemSnapshot is one item's published consensus.
type ItemSnapshot struct {
	Item int `json:"item"`
	// Labels is the instantiated consensus label set (paper §3.4).
	Labels []int `json:"labels"`
	// Candidates lists every voted label with the model's calibrated
	// inclusion posterior, so clients can apply their own thresholds.
	Candidates []CandidateSnapshot `json:"candidates,omitempty"`
}

// CandidateSnapshot is one voted label and its inclusion confidence.
type CandidateSnapshot struct {
	Label      int     `json:"label"`
	Confidence float64 `json:"confidence"`
}

// emptySnapshot is published at job start so readers always see a snapshot
// (round 0, no consensus) rather than a 404.
func emptySnapshot(spec JobSpec, now time.Time) *Snapshot {
	return &Snapshot{
		JobID:     spec.ID,
		Items:     spec.Items,
		Workers:   spec.Workers,
		Labels:    spec.Labels,
		CreatedAt: now,
		Consensus: []ItemSnapshot{},
		enc:       &snapshotEnc{},
	}
}

// itemSnapshot packages one item's consensus entry.
func itemSnapshot(i int, item core.ItemConsensus) ItemSnapshot {
	is := ItemSnapshot{Item: i, Labels: item.Labels}
	if len(item.Candidates) > 0 {
		is.Candidates = make([]CandidateSnapshot, len(item.Candidates))
		for k, c := range item.Candidates {
			is.Candidates[k] = CandidateSnapshot{Label: c, Confidence: item.Confidence[k]}
		}
	}
	return is
}

// nextSnapshot packages a consensus view for publication. With a non-nil
// dirty set (incremental round) it rebuilds only the refreshed items'
// entries and shares every other ItemSnapshot — including its Candidates
// backing — with the previous publication; a nil dirty set rebuilds
// everything.
func nextSnapshot(jobID string, prev *Snapshot, view *core.ConsensusView, dirty []int, now time.Time) *Snapshot {
	s := &Snapshot{
		JobID:                jobID,
		Round:                view.Stats.BatchRounds,
		Answers:              view.Stats.Answers,
		Items:                view.Stats.Items,
		Workers:              view.Stats.Workers,
		Labels:               view.Stats.Labels,
		EffectiveCommunities: view.Stats.EffectiveCommunities,
		EffectiveClusters:    view.Stats.EffectiveClusters,
		CreatedAt:            now,
		Consensus:            make([]ItemSnapshot, len(view.Items)),
		enc:                  &snapshotEnc{},
	}
	if dirty != nil && prev != nil && len(prev.Consensus) == len(view.Items) {
		copy(s.Consensus, prev.Consensus)
		for _, i := range dirty {
			s.Consensus[i] = itemSnapshot(i, view.Items[i])
		}
		return s
	}
	for i, item := range view.Items {
		s.Consensus[i] = itemSnapshot(i, item)
	}
	return s
}
