package serve

import (
	"time"

	"cpa/internal/core"
)

// Snapshot is one immutable, JSON-ready consensus publication. The fitter
// builds a fresh Snapshot after each round and swaps it behind the job's
// atomic pointer; readers share the value without copying, so nothing in a
// published Snapshot may ever be mutated.
type Snapshot struct {
	JobID   string `json:"job_id"`
	Round   int    `json:"round"`   // fit rounds behind this snapshot
	Answers int    `json:"answers"` // answers the model had ingested
	Items   int    `json:"items"`
	Workers int    `json:"workers"`
	Labels  int    `json:"labels"`

	EffectiveCommunities int `json:"effective_communities"`
	EffectiveClusters    int `json:"effective_clusters"`

	CreatedAt time.Time `json:"created_at"`

	// Consensus holds one entry per item (index == item id).
	Consensus []ItemSnapshot `json:"consensus"`
}

// ItemSnapshot is one item's published consensus.
type ItemSnapshot struct {
	Item int `json:"item"`
	// Labels is the instantiated consensus label set (paper §3.4).
	Labels []int `json:"labels"`
	// Candidates lists every voted label with the model's calibrated
	// inclusion posterior, so clients can apply their own thresholds.
	Candidates []CandidateSnapshot `json:"candidates,omitempty"`
}

// CandidateSnapshot is one voted label and its inclusion confidence.
type CandidateSnapshot struct {
	Label      int     `json:"label"`
	Confidence float64 `json:"confidence"`
}

// emptySnapshot is published at job start so readers always see a snapshot
// (round 0, no consensus) rather than a 404.
func emptySnapshot(spec JobSpec, now time.Time) *Snapshot {
	return &Snapshot{
		JobID:     spec.ID,
		Items:     spec.Items,
		Workers:   spec.Workers,
		Labels:    spec.Labels,
		CreatedAt: now,
		Consensus: []ItemSnapshot{},
	}
}

// newSnapshot packages a core consensus view for publication.
func newSnapshot(jobID string, view *core.ConsensusView, now time.Time) *Snapshot {
	s := &Snapshot{
		JobID:                jobID,
		Round:                view.Stats.BatchRounds,
		Answers:              view.Stats.Answers,
		Items:                view.Stats.Items,
		Workers:              view.Stats.Workers,
		Labels:               view.Stats.Labels,
		EffectiveCommunities: view.Stats.EffectiveCommunities,
		EffectiveClusters:    view.Stats.EffectiveClusters,
		CreatedAt:            now,
		Consensus:            make([]ItemSnapshot, len(view.Items)),
	}
	for i, item := range view.Items {
		is := ItemSnapshot{Item: i, Labels: item.Labels}
		if len(item.Candidates) > 0 {
			is.Candidates = make([]CandidateSnapshot, len(item.Candidates))
			for k, c := range item.Candidates {
				is.Candidates[k] = CandidateSnapshot{Label: c, Confidence: item.Confidence[k]}
			}
		}
		s.Consensus[i] = is
	}
	return s
}
