package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"cpa/internal/answers"
	"cpa/internal/labelset"
)

// jsonAnswerPtr builds a *answers.JSONAnswer for a journal answer line.
func jsonAnswerPtr(item, worker int, labels ...int) *answers.JSONAnswer {
	ja := answers.ToJSON(answers.Answer{Item: item, Worker: worker, Labels: labelset.Of(labels...)})
	return &ja
}

// codecLines enumerates journal lines across every op, the omitempty edges,
// integer extremes, and op strings that exercise each escaping branch of the
// string encoder. The writer never emits most of these — the point is that
// the hand encoder must equal json.Marshal on the whole struct domain, not
// just the happy path, so the frozen-format claim has no untested corner.
func codecLines() []journalLine {
	denseLabels := make([]int, 0, 1000)
	for c := 0; c < 1000; c++ {
		denseLabels = append(denseLabels, c)
	}
	return []journalLine{
		{Op: opRestart},
		{Op: opAnswer, Ans: jsonAnswerPtr(0, 0, 0)},
		{Op: opAnswer, Ans: jsonAnswerPtr(7, 3, 1, 4, 5)},
		{Op: opAnswer, Ans: jsonAnswerPtr(math.MaxInt32, math.MaxInt32, 1023)},
		{Op: opAnswer, Ans: jsonAnswerPtr(1, 2, denseLabels...)},
		{Op: opAnswer, Ans: jsonAnswerPtr(-4, -9, 63, 64, 65)},
		{Op: opAnswer, Ans: &answers.JSONAnswer{Item: 1, Worker: 2}}, // empty label set
		{Op: opFit, N: 1, Mode: pubModeFull},
		{Op: opFit, N: 512, Mode: pubModeInc},
		{Op: opFit, N: 3},  // legacy marker: no pub field
		{Op: opFit, N: -8}, // never written; format must still round-trip
		{Op: opFit, N: math.MaxInt64, Mode: pubModeFull},
		{Op: opFit, N: math.MinInt64, Mode: pubModeInc},
		{Op: opBase, Base: &JournalBase{}},
		{Op: opBase, Base: &JournalBase{Bytes: 1 << 40, Recs: 12345, Ans: 12000, Fits: 345, Covered: 11990}},
		{Op: opBase, Base: &JournalBase{Bytes: -1, Recs: math.MinInt64, Ans: math.MaxInt64, Fits: -7, Covered: 0}},
		{Op: opTune, Par: 4, Batch: 512},
		{Op: opTune, Par: -1, Batch: math.MaxInt64},
		{Op: ""},
		{Op: "with\"quote\\and\\backslash"},
		{Op: "html<>&chars"},
		{Op: "ctrl\n\r\t\x00\x1f"},
		{Op: "unicode é ☃ 🚀"},
		{Op: "seps\u2028and\u2029"},
		{Op: "torn\xffutf8\xc3"},
		{Op: "mix<\u2028\"\xff>\t&"},
		// Cross-field combinations json.Marshal happily emits even though the
		// journal writer never does.
		{Op: opFit, N: 2, Mode: pubModeFull, Par: 8, Batch: 256},
		{Op: "all", Ans: jsonAnswerPtr(1, 2, 3), N: 4, Mode: "x", Base: &JournalBase{Bytes: 5}, Par: 6, Batch: 7},
	}
}

func journalLinesEqual(a, b journalLine) bool {
	if a.Op != b.Op || a.N != b.N || a.Mode != b.Mode || a.Par != b.Par || a.Batch != b.Batch {
		return false
	}
	if (a.Ans == nil) != (b.Ans == nil) {
		return false
	}
	if a.Ans != nil {
		if a.Ans.Item != b.Ans.Item || a.Ans.Worker != b.Ans.Worker || !a.Ans.Labels.Equal(b.Ans.Labels) {
			return false
		}
	}
	if (a.Base == nil) != (b.Base == nil) {
		return false
	}
	if a.Base != nil && *a.Base != *b.Base {
		return false
	}
	return true
}

// TestJournalLineEncodeEquivalence pins the frozen byte format: the hand
// encoder must produce exactly json.Marshal's bytes for every line shape.
func TestJournalLineEncodeEquivalence(t *testing.T) {
	for _, line := range codecLines() {
		want, err := json.Marshal(line)
		if err != nil {
			t.Fatalf("json.Marshal(%+v): %v", line, err)
		}
		got := appendJournalLine(nil, line)
		if !bytes.Equal(got, want) {
			t.Errorf("encode mismatch for %+v:\n hand: %s\n json: %s", line, got, want)
		}
	}
}

// TestAnswerLineEncodeEquivalence pins the per-answer journal record (the
// EncodeAnswerLines building block) against the json.Marshal composition the
// old writer used.
func TestAnswerLineEncodeEquivalence(t *testing.T) {
	batch := []answers.Answer{
		{Item: 0, Worker: 0, Labels: labelset.Of(0)},
		{Item: 12, Worker: 99, Labels: labelset.Of(2, 64, 700)},
		{Item: math.MaxInt32, Worker: 1, Labels: labelset.Of(1023)},
	}
	var want []byte
	for _, a := range batch {
		ja := answers.ToJSON(a)
		raw, err := json.Marshal(journalLine{Op: opAnswer, Ans: &ja})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, raw...)
		want = append(want, '\n')
	}
	got := EncodeAnswerLines(nil, batch)
	if !bytes.Equal(got, want) {
		t.Errorf("batch encode mismatch:\n hand: %s\n json: %s", got, want)
	}
}

// decodeEquivalent asserts the hand decoder and json.Unmarshal agree on raw:
// same accept/reject verdict and, on accept, the same decoded line.
func decodeEquivalent(t *testing.T, raw []byte) {
	t.Helper()
	var want journalLine
	werr := json.Unmarshal(raw, &want)
	got, gerr := decodeJournalLine(raw, nil)
	if (werr == nil) != (gerr == nil) {
		t.Fatalf("decode verdict mismatch on %q: hand err=%v, json err=%v", raw, gerr, werr)
	}
	if werr == nil && !journalLinesEqual(got, want) {
		t.Fatalf("decode value mismatch on %q:\n hand: %+v\n json: %+v", raw, got, want)
	}
}

// TestJournalLineDecodeEquivalence covers canonical bytes (which must take
// the fast path and agree), non-canonical-but-valid JSON (whitespace,
// reordered fields, floats, escapes — must fall back and agree), and
// malformed inputs (must fail on both paths).
func TestJournalLineDecodeEquivalence(t *testing.T) {
	var raws [][]byte
	for _, line := range codecLines() {
		raw, err := json.Marshal(line)
		if err != nil {
			t.Fatal(err)
		}
		raws = append(raws, raw)
	}
	for _, s := range []string{
		// Valid JSON the writer never emits.
		`{"op":"fit","pub":"full","n":3}`,
		`{ "op" : "ans" , "a" : { "i" : 1 , "u" : 2 , "x" : [ 3 ] } }`,
		`{"op":"fit","n":3.0}`,
		`{"op":"fit","n":1e2}`,
		`{"op":"\u0061ns","a":{"i":1,"u":2,"x":[0]}}`,
		`{"op":"ans","a":{"i":1,"u":2,"x":null}}`,
		`{"op":"ans","a":null}`,
		`{"op":"tune","par":0,"bs":0}`,
		`{"op":"fit","n":0}`,
		`{"op":"fit","n":-1}`,
		`{"op":"fit","n":1,"n":2}`,
		`{"OP":"fit","N":3}`, // stdlib matches field names case-insensitively
		`{"op":"restart","unknown_field":1}`,
		`{"op":"restart"} `,
		` {"op":"restart"}`,
		`{}`,
		`null`,
		`{"op":"ans","a":{"i":1,"u":2,"x":[99999]}}`, // past the fast path's word cap
		// Malformed.
		`{"op":"fit","n":007}`,
		`{"op":"fit"`,
		`{"op":"ans","a":{"i":1,"u":2,"x":[18446744073709551616]}}`,
		`{"op":"ans","a":{"i":1,"u":2,"x":[-3]}}`,
		`[]`,
		``,
		`{"op":fit}`,
		"{\"op\":\"a\nb\"}",
	} {
		raws = append(raws, []byte(s))
	}
	for _, raw := range raws {
		decodeEquivalent(t, raw)
	}
}

// TestJournalLineTornPrefixParity feeds every byte-prefix of canonical lines
// through both decoders: torn-tail handling (recovery, shipped-stream ends)
// classifies records by decode success, so the fast path must reject exactly
// the prefixes json.Unmarshal rejects.
func TestJournalLineTornPrefixParity(t *testing.T) {
	for _, line := range codecLines() {
		raw, err := json.Marshal(line)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(raw); cut++ {
			decodeEquivalent(t, raw[:cut])
		}
	}
}

// TestDecodeNDJSONEquivalence pins the fast NDJSON splitter against
// answers.DecodeJSONL: same answers in the same order, same error (string
// included — the "line %d:" prefix is part of the HTTP contract).
func TestDecodeNDJSONEquivalence(t *testing.T) {
	bodies := []string{
		"",
		"\n",
		"\r\n",
		`{"i":1,"u":2,"x":[3]}` + "\n",
		`{"i":1,"u":2,"x":[3]}`, // no trailing newline
		"{\"i\":1,\"u\":2,\"x\":[3]}\r\n{\"i\":4,\"u\":5,\"x\":[6,7]}\n",
		"\n\n{\"i\":1,\"u\":2,\"x\":[]}\n\n",
		"junk\n",
		`{"i":1,"u":2,"x":[3]}` + "\njunk\n",
		`{"u":2,"i":1,"x":[3]}` + "\n", // reordered: fallback, still one answer
		`{"i":1.5,"u":2,"x":[3]}` + "\n",
		`{"i":1,"u":2,"x":[3],"extra":9}` + "\n",
		"{\"i\":1,\"u\":2,\"x\":[3]}\r\n",
	}
	for _, body := range bodies {
		var got, want []answers.Answer
		gerr := DecodeNDJSON([]byte(body), &labelset.Arena{}, func(a answers.Answer) error {
			got = append(got, a)
			return nil
		})
		werr := answers.DecodeJSONL(strings.NewReader(body), func(a answers.Answer) error {
			want = append(want, a)
			return nil
		})
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("verdict mismatch on %q: fast err=%v, scanner err=%v", body, gerr, werr)
		}
		if gerr != nil && gerr.Error() != werr.Error() {
			t.Fatalf("error text mismatch on %q:\n fast:    %v\n scanner: %v", body, gerr, werr)
		}
		if len(got) != len(want) {
			t.Fatalf("answer count mismatch on %q: fast %d, scanner %d", body, len(got), len(want))
		}
		for i := range got {
			if got[i].Item != want[i].Item || got[i].Worker != want[i].Worker || !got[i].Labels.Equal(want[i].Labels) {
				t.Fatalf("answer %d mismatch on %q: fast %+v, scanner %+v", i, body, got[i], want[i])
			}
		}
	}
}

// FuzzJournalLineCodec is the equivalence referee for the frozen format:
// for arbitrary bytes the hand decoder must agree with encoding/json on
// accept/reject and value, and for every accepted value the hand encoder
// must re-emit exactly json.Marshal's bytes.
func FuzzJournalLineCodec(f *testing.F) {
	for _, line := range codecLines() {
		raw, err := json.Marshal(line)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	f.Add([]byte(`{"op":"fit","n":3,"pub":"inc"}`))
	f.Add([]byte(`{"op":"ans","a":{"i":1,"u":2,"x":[0,64,128]}}`))
	f.Add([]byte(`{"op":"base","base":{"b":1,"r":2,"a":3,"f":4,"c":5}}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		var want journalLine
		werr := json.Unmarshal(raw, &want)
		got, gerr := decodeJournalLine(raw, nil)
		if werr != nil {
			if gerr == nil {
				t.Fatalf("hand decoder accepted %q, stdlib rejected: %v", raw, werr)
			}
			return
		}
		if gerr != nil {
			t.Fatalf("hand decoder rejected %q, stdlib accepted: %v", raw, gerr)
		}
		if !journalLinesEqual(got, want) {
			t.Fatalf("decode value mismatch on %q:\n hand: %+v\n json: %+v", raw, got, want)
		}
		enc := appendJournalLine(nil, got)
		std, err := json.Marshal(want)
		if err != nil {
			return // unencodable value (cannot originate from our writer)
		}
		if !bytes.Equal(enc, std) {
			t.Fatalf("re-encode mismatch for %q:\n hand: %s\n json: %s", raw, enc, std)
		}
	})
}
