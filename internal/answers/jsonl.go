package answers

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"cpa/internal/labelset"
)

// JSONAnswer is the canonical one-line JSON wire form of an Answer:
// {"i": item, "u": worker, "x": [labels...]}. It is shared by the dataset
// JSON codec, the JSONL stream codec below, and the cpaserve ingestion
// journal, so an answer serialised anywhere in the system round-trips
// everywhere else.
type JSONAnswer struct {
	Item   int          `json:"i"`
	Worker int          `json:"u"`
	Labels labelset.Set `json:"x"`
}

// ToJSON converts an Answer to its wire form.
func ToJSON(a Answer) JSONAnswer {
	return JSONAnswer{Item: a.Item, Worker: a.Worker, Labels: a.Labels}
}

// Answer converts the wire form back to an Answer.
func (ja JSONAnswer) Answer() Answer {
	return Answer{Item: ja.Item, Worker: ja.Worker, Labels: ja.Labels}
}

// MarshalAnswerJSON encodes one answer as a single JSON line (no trailing
// newline).
func MarshalAnswerJSON(a Answer) ([]byte, error) {
	return json.Marshal(ToJSON(a))
}

// UnmarshalAnswerJSON decodes a single JSON answer line.
func UnmarshalAnswerJSON(data []byte) (Answer, error) {
	var ja JSONAnswer
	if err := json.Unmarshal(data, &ja); err != nil {
		return Answer{}, fmt.Errorf("%w: answer line %q: %v", ErrInvalid, data, err)
	}
	return ja.Answer(), nil
}

// WriteJSONL streams the dataset's answers in arrival order, one JSON object
// per line. Unlike WriteJSON it carries no dimensions or truth — it is the
// pure answer-stream form used for incremental ingestion (cpaserve's
// /answers endpoint and journal).
func (d *Dataset) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, a := range d.answers {
		line, err := MarshalAnswerJSON(a)
		if err != nil {
			return err
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeJSONL reads a stream of one-answer-per-line JSON records, calling fn
// for each in order. Blank lines are skipped. Decoding stops at the first
// malformed line with an error; fn errors abort the scan unchanged.
func DecodeJSONL(r io.Reader, fn func(Answer) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		a, err := UnmarshalAnswerJSON(raw)
		if err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		if err := fn(a); err != nil {
			return err
		}
	}
	return sc.Err()
}
