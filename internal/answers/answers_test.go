package answers

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"cpa/internal/labelset"
)

func mustDataset(t *testing.T) *Dataset {
	t.Helper()
	d, err := NewDataset("test", 4, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDatasetValidation(t *testing.T) {
	for _, c := range [][3]int{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-1, 2, 2}} {
		if _, err := NewDataset("bad", c[0], c[1], c[2]); err == nil {
			t.Errorf("dimensions %v should fail", c)
		}
	}
}

func TestAddValidation(t *testing.T) {
	d := mustDataset(t)
	if err := d.Add(0, 0, labelset.Of(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(4, 0, labelset.Of(1)); err == nil {
		t.Error("item out of range should fail")
	}
	if err := d.Add(0, 5, labelset.Of(1)); err == nil {
		t.Error("worker out of range should fail")
	}
	if err := d.Add(0, 1, labelset.Set{}); err == nil {
		t.Error("empty answer should fail")
	}
	if err := d.Add(0, 1, labelset.Of(6)); err == nil {
		t.Error("label out of range should fail")
	}
	if err := d.Add(0, 0, labelset.Of(3)); err == nil {
		t.Error("duplicate (item,worker) should fail")
	}
}

func TestViewsAndCounts(t *testing.T) {
	d := mustDataset(t)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(d.Add(0, 0, labelset.Of(1)))
	must(d.Add(0, 1, labelset.Of(2)))
	must(d.Add(1, 0, labelset.Of(3)))
	if d.NumAnswers() != 3 {
		t.Fatalf("NumAnswers = %d", d.NumAnswers())
	}
	if d.ItemAnswerCount(0) != 2 || d.ItemAnswerCount(1) != 1 || d.ItemAnswerCount(2) != 0 {
		t.Error("ItemAnswerCount wrong")
	}
	if d.WorkerAnswerCount(0) != 2 || d.WorkerAnswerCount(1) != 1 || d.WorkerAnswerCount(4) != 0 {
		t.Error("WorkerAnswerCount wrong")
	}
	var items []int
	d.ForWorker(0, func(a Answer) { items = append(items, a.Item) })
	if len(items) != 2 || items[0] != 0 || items[1] != 1 {
		t.Errorf("ForWorker items = %v", items)
	}
	var workers []int
	d.ForItem(0, func(a Answer) { workers = append(workers, a.Worker) })
	if len(workers) != 2 || workers[0] != 0 || workers[1] != 1 {
		t.Errorf("ForItem workers = %v", workers)
	}
	wantDensity := 3.0 / 20
	if d.Density() != wantDensity {
		t.Errorf("Density = %g, want %g", d.Density(), wantDensity)
	}
}

func TestTruthAndReveal(t *testing.T) {
	d := mustDataset(t)
	if _, ok := d.Truth(0); ok {
		t.Error("no truth should be set initially")
	}
	if err := d.SetTruth(0, labelset.Of(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := d.SetTruth(0, labelset.Of(6)); err == nil {
		t.Error("truth label out of range should fail")
	}
	got, ok := d.Truth(0)
	if !ok || !got.Equal(labelset.Of(1, 2)) {
		t.Error("Truth round trip failed")
	}
	if _, ok := d.Revealed(0); ok {
		t.Error("truth must not be revealed before Reveal")
	}
	if err := d.Reveal(1); err == nil {
		t.Error("revealing item without truth should fail")
	}
	if err := d.Reveal(0); err != nil {
		t.Fatal(err)
	}
	rv, ok := d.Revealed(0)
	if !ok || !rv.Equal(labelset.Of(1, 2)) {
		t.Error("Revealed round trip failed")
	}
	if d.TruthCount() != 1 {
		t.Errorf("TruthCount = %d", d.TruthCount())
	}
}

func buildRichDataset(t *testing.T) *Dataset {
	t.Helper()
	d, err := NewDataset("rich", 10, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		for u := 0; u < 6; u++ {
			if rng.Float64() < 0.5 {
				continue
			}
			s := labelset.Set{}
			for c := 0; c < 8; c++ {
				if rng.Float64() < 0.3 {
					s.Add(c)
				}
			}
			if s.IsEmpty() {
				s.Add(rng.Intn(8))
			}
			if err := d.Add(i, u, s); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.SetTruth(i, labelset.Of(i%8)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Reveal(3); err != nil {
		t.Fatal(err)
	}
	return d
}

func datasetsEqual(a, b *Dataset) bool {
	if a.NumItems != b.NumItems || a.NumWorkers != b.NumWorkers ||
		a.NumLabels != b.NumLabels || a.NumAnswers() != b.NumAnswers() {
		return false
	}
	// Compare answers as (item, worker) -> labels independent of order.
	type key struct{ i, u int }
	am := map[key]labelset.Set{}
	for _, ans := range a.Answers() {
		am[key{ans.Item, ans.Worker}] = ans.Labels
	}
	for _, ans := range b.Answers() {
		if !am[key{ans.Item, ans.Worker}].Equal(ans.Labels) {
			return false
		}
	}
	for i := 0; i < a.NumItems; i++ {
		ta, oka := a.Truth(i)
		tb, okb := b.Truth(i)
		if oka != okb || !ta.Equal(tb) {
			return false
		}
		ra, oka := a.Revealed(i)
		rb, okb := b.Revealed(i)
		if oka != okb || !ra.Equal(rb) {
			return false
		}
	}
	return true
}

func TestJSONRoundTrip(t *testing.T) {
	d := buildRichDataset(t)
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !datasetsEqual(d, got) {
		t.Error("JSON round trip lost data")
	}
}

func TestJSONDecodingErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage JSON should fail")
	}
	if _, err := ReadJSON(strings.NewReader(`{"items":0,"workers":1,"labels":1}`)); err == nil {
		t.Error("invalid dimensions should fail")
	}
	bad := `{"name":"x","items":1,"workers":1,"labels":1,"answers":[{"i":0,"u":0,"x":[5]}]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Error("out-of-range label should fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := buildRichDataset(t)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("rich", &buf)
	if err != nil {
		t.Fatal(err)
	}
	// CSV infers dimensions from data, so compare answer content only.
	if got.NumAnswers() != d.NumAnswers() {
		t.Fatalf("answers %d vs %d", got.NumAnswers(), d.NumAnswers())
	}
	if got.TruthCount() != d.TruthCount() {
		t.Fatalf("truth %d vs %d", got.TruthCount(), d.TruthCount())
	}
	if _, ok := got.Revealed(3); !ok {
		t.Error("revealed flag lost in CSV round trip")
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"item,worker,labels\nx,0,1",
		"item,worker,labels\n0,y,1",
		"item,worker,labels\n0,0,z",
		"item,worker,labels\n0,0",
	}
	for _, c := range cases {
		if _, err := ReadCSV("bad", strings.NewReader(c)); err == nil {
			t.Errorf("CSV %q should fail", c)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := buildRichDataset(t)
	c := d.Clone()
	if !datasetsEqual(d, c) {
		t.Fatal("clone differs")
	}
	// Mutating the clone must not affect the original.
	c.answers[0].Labels.Add(7)
	orig := d.answers[0].Labels
	if orig.Contains(7) && !buildRichDataset(t).answers[0].Labels.Contains(7) {
		t.Error("Clone shares label storage with original")
	}
}

func TestFilter(t *testing.T) {
	d := buildRichDataset(t)
	onlyWorkerZero := d.Filter(func(a Answer) bool { return a.Worker == 0 })
	if onlyWorkerZero.NumAnswers() != d.WorkerAnswerCount(0) {
		t.Errorf("Filter kept %d answers, want %d", onlyWorkerZero.NumAnswers(), d.WorkerAnswerCount(0))
	}
	if onlyWorkerZero.TruthCount() != d.TruthCount() {
		t.Error("Filter must preserve truth")
	}
}

func TestShuffledPreservesContent(t *testing.T) {
	d := buildRichDataset(t)
	s := d.Shuffled(rand.New(rand.NewSource(3)))
	if !datasetsEqual(d, s) {
		t.Error("Shuffled changed content")
	}
	// Same seed gives same order.
	s2 := d.Shuffled(rand.New(rand.NewSource(3)))
	for i := range s.Answers() {
		if s.Answer(i).Item != s2.Answer(i).Item || s.Answer(i).Worker != s2.Answer(i).Worker {
			t.Fatal("Shuffled not deterministic under seed")
		}
	}
}

func TestPrefixAndBatches(t *testing.T) {
	d := buildRichDataset(t)
	half := d.Prefix(d.NumAnswers() / 2)
	if half.NumAnswers() != d.NumAnswers()/2 {
		t.Errorf("Prefix kept %d", half.NumAnswers())
	}
	over := d.Prefix(d.NumAnswers() * 10)
	if over.NumAnswers() != d.NumAnswers() {
		t.Error("Prefix should clamp")
	}
	batches := d.Batches(7)
	total := 0
	for bi, b := range batches {
		if b.Index != bi {
			t.Errorf("batch index %d, want %d", b.Index, bi)
		}
		if bi < len(batches)-1 && len(b.Answers) != 7 {
			t.Errorf("batch %d size %d", bi, len(b.Answers))
		}
		total += len(b.Answers)
	}
	if total != d.NumAnswers() {
		t.Errorf("batches cover %d answers, want %d", total, d.NumAnswers())
	}
	if got := d.Batches(0); len(got) != d.NumAnswers() {
		t.Error("batchSize<=0 should degrade to size 1")
	}
}

func TestComputeStats(t *testing.T) {
	d := mustDataset(t)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(d.Add(0, 0, labelset.Of(1, 2)))
	must(d.Add(0, 1, labelset.Of(3)))
	must(d.Add(1, 0, labelset.Of(4, 5, 0)))
	must(d.SetTruth(0, labelset.Of(1, 2)))
	s := d.ComputeStats()
	if s.Answers != 3 || s.Items != 4 || s.Workers != 5 || s.Labels != 6 {
		t.Errorf("stats dims wrong: %+v", s)
	}
	if s.MeanAnswerSize != 2 {
		t.Errorf("MeanAnswerSize = %g", s.MeanAnswerSize)
	}
	if s.MeanTruthSize != 2 || s.TruthItems != 1 {
		t.Errorf("truth stats wrong: %+v", s)
	}
	if s.MaxAnswersPerWorker != 2 {
		t.Errorf("MaxAnswersPerWorker = %d", s.MaxAnswersPerWorker)
	}
}

func TestSortAnswersForDeterminism(t *testing.T) {
	d := mustDataset(t)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(d.Add(2, 1, labelset.Of(1)))
	must(d.Add(0, 3, labelset.Of(2)))
	must(d.Add(0, 1, labelset.Of(3)))
	d.SortAnswersForDeterminism()
	order := []struct{ i, u int }{{0, 1}, {0, 3}, {2, 1}}
	for k, want := range order {
		if a := d.Answer(k); a.Item != want.i || a.Worker != want.u {
			t.Fatalf("answer %d = (%d,%d), want (%d,%d)", k, a.Item, a.Worker, want.i, want.u)
		}
	}
	// Views must be rebuilt consistently.
	if d.ItemAnswerCount(0) != 2 || d.WorkerAnswerCount(1) != 2 {
		t.Error("views not rebuilt after sort")
	}
}
