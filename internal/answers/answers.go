// Package answers models the input of partial-agreement answer aggregation:
// the sparse I×U answer matrix M of the paper's Problem 1, the ground-truth
// label assignment used for evaluation, and the subset of truth revealed to
// the model as test questions. It also provides JSON and CSV codecs so the
// CLIs can exchange datasets with the outside world.
//
// The representation is deliberately sparse. Crowdsourcing matrices are
// mostly empty (each worker sees a small fraction of items), so answers are
// stored once in arrival order with by-item and by-worker index views built
// on top. Arrival order doubles as the stream order for the online (SVI)
// inference path.
package answers

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"cpa/internal/labelset"
)

// ErrInvalid reports a malformed dataset or answer.
var ErrInvalid = errors.New("answers: invalid")

// Answer is one worker's label set for one item.
type Answer struct {
	Item   int
	Worker int
	Labels labelset.Set
}

// Dataset is an immutable-after-build collection of answers plus evaluation
// truth. Construct with NewDataset and Add, or decode with ReadJSON/ReadCSV.
type Dataset struct {
	Name       string
	NumItems   int
	NumWorkers int
	NumLabels  int
	LabelNames []string // optional, len NumLabels when present

	answers  []Answer
	byItem   [][]int // answer indices per item
	byWorker [][]int // answer indices per worker

	truth    []labelset.Set // ground truth per item (evaluation)
	hasTruth []bool         // truth known for evaluation
	revealed []bool         // truth revealed to the model (test questions)
}

// NewDataset allocates an empty dataset with the given dimensions.
func NewDataset(name string, numItems, numWorkers, numLabels int) (*Dataset, error) {
	if numItems <= 0 || numWorkers <= 0 || numLabels <= 0 {
		return nil, fmt.Errorf("%w: dimensions (%d items, %d workers, %d labels)",
			ErrInvalid, numItems, numWorkers, numLabels)
	}
	return &Dataset{
		Name:       name,
		NumItems:   numItems,
		NumWorkers: numWorkers,
		NumLabels:  numLabels,
		byItem:     make([][]int, numItems),
		byWorker:   make([][]int, numWorkers),
		truth:      make([]labelset.Set, numItems),
		hasTruth:   make([]bool, numItems),
		revealed:   make([]bool, numItems),
	}, nil
}

// Add appends one answer. Empty label sets are rejected: per the problem
// statement an empty x_iu means "no answer", which is represented by
// absence. A worker may answer the same item at most once.
func (d *Dataset) Add(item, worker int, labels labelset.Set) error {
	if item < 0 || item >= d.NumItems {
		return fmt.Errorf("%w: item %d out of range [0,%d)", ErrInvalid, item, d.NumItems)
	}
	if worker < 0 || worker >= d.NumWorkers {
		return fmt.Errorf("%w: worker %d out of range [0,%d)", ErrInvalid, worker, d.NumWorkers)
	}
	if labels.IsEmpty() {
		return fmt.Errorf("%w: empty answer for item %d worker %d", ErrInvalid, item, worker)
	}
	if m := labels.Max(); m >= d.NumLabels {
		return fmt.Errorf("%w: label %d out of range [0,%d)", ErrInvalid, m, d.NumLabels)
	}
	for _, ai := range d.byItem[item] {
		if d.answers[ai].Worker == worker {
			return fmt.Errorf("%w: duplicate answer for item %d worker %d", ErrInvalid, item, worker)
		}
	}
	idx := len(d.answers)
	d.answers = append(d.answers, Answer{Item: item, Worker: worker, Labels: labels})
	d.byItem[item] = append(d.byItem[item], idx)
	d.byWorker[worker] = append(d.byWorker[worker], idx)
	return nil
}

// SetTruth records the evaluation ground truth for an item.
func (d *Dataset) SetTruth(item int, labels labelset.Set) error {
	if item < 0 || item >= d.NumItems {
		return fmt.Errorf("%w: item %d out of range", ErrInvalid, item)
	}
	if m := labels.Max(); m >= d.NumLabels {
		return fmt.Errorf("%w: truth label %d out of range", ErrInvalid, m)
	}
	d.truth[item] = labels
	d.hasTruth[item] = true
	return nil
}

// Reveal marks an item's truth as visible to the model (a test question,
// paper §3.1). The item must have truth set.
func (d *Dataset) Reveal(item int) error {
	if item < 0 || item >= d.NumItems || !d.hasTruth[item] {
		return fmt.Errorf("%w: cannot reveal item %d without truth", ErrInvalid, item)
	}
	d.revealed[item] = true
	return nil
}

// NumAnswers returns the total number of non-empty answers.
func (d *Dataset) NumAnswers() int { return len(d.answers) }

// Answer returns the i-th answer in arrival order.
func (d *Dataset) Answer(i int) Answer { return d.answers[i] }

// Answers returns all answers in arrival order. The slice is shared; callers
// must not mutate it.
func (d *Dataset) Answers() []Answer { return d.answers }

// ForItem calls fn for every answer on the given item.
func (d *Dataset) ForItem(item int, fn func(a Answer)) {
	for _, ai := range d.byItem[item] {
		fn(d.answers[ai])
	}
}

// ForWorker calls fn for every answer by the given worker.
func (d *Dataset) ForWorker(worker int, fn func(a Answer)) {
	for _, ai := range d.byWorker[worker] {
		fn(d.answers[ai])
	}
}

// ItemAnswerCount returns how many workers answered the item.
func (d *Dataset) ItemAnswerCount(item int) int { return len(d.byItem[item]) }

// WorkerAnswerCount returns how many items the worker answered.
func (d *Dataset) WorkerAnswerCount(worker int) int { return len(d.byWorker[worker]) }

// Truth returns the ground truth for item and whether it is known.
func (d *Dataset) Truth(item int) (labelset.Set, bool) {
	return d.truth[item], d.hasTruth[item]
}

// Revealed reports whether the item's truth is visible to the model, and
// returns it. Models must consult this, never Truth, during inference.
func (d *Dataset) Revealed(item int) (labelset.Set, bool) {
	if !d.revealed[item] {
		return labelset.Set{}, false
	}
	return d.truth[item], true
}

// TruthCount returns the number of items with known evaluation truth.
func (d *Dataset) TruthCount() int {
	n := 0
	for _, h := range d.hasTruth {
		if h {
			n++
		}
	}
	return n
}

// Density returns NumAnswers / (NumItems × NumWorkers), the fill ratio of
// the answer matrix.
func (d *Dataset) Density() float64 {
	return float64(len(d.answers)) / (float64(d.NumItems) * float64(d.NumWorkers))
}

// Clone returns a deep copy sharing no mutable state with the receiver.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{
		Name:       d.Name,
		NumItems:   d.NumItems,
		NumWorkers: d.NumWorkers,
		NumLabels:  d.NumLabels,
		answers:    make([]Answer, len(d.answers)),
		byItem:     make([][]int, d.NumItems),
		byWorker:   make([][]int, d.NumWorkers),
		truth:      make([]labelset.Set, d.NumItems),
		hasTruth:   append([]bool(nil), d.hasTruth...),
		revealed:   append([]bool(nil), d.revealed...),
	}
	if d.LabelNames != nil {
		out.LabelNames = append([]string(nil), d.LabelNames...)
	}
	for i, a := range d.answers {
		out.answers[i] = Answer{Item: a.Item, Worker: a.Worker, Labels: a.Labels.Clone()}
	}
	for i, idxs := range d.byItem {
		out.byItem[i] = append([]int(nil), idxs...)
	}
	for u, idxs := range d.byWorker {
		out.byWorker[u] = append([]int(nil), idxs...)
	}
	for i, s := range d.truth {
		out.truth[i] = s.Clone()
	}
	return out
}

// Filter returns a new dataset containing only the answers for which keep
// returns true. Dimensions, truth and reveal flags are preserved.
func (d *Dataset) Filter(keep func(a Answer) bool) *Dataset {
	out, err := NewDataset(d.Name, d.NumItems, d.NumWorkers, d.NumLabels)
	if err != nil {
		panic(err) // dimensions were already validated
	}
	out.LabelNames = d.LabelNames
	for _, a := range d.answers {
		if keep(a) {
			if err := out.Add(a.Item, a.Worker, a.Labels.Clone()); err != nil {
				panic(err) // re-adding validated answers cannot fail
			}
		}
	}
	copy(out.truth, d.truth)
	copy(out.hasTruth, d.hasTruth)
	copy(out.revealed, d.revealed)
	return out
}

// Shuffled returns a copy whose arrival order is a seed-determined random
// permutation. Used by the online experiments ("the dataset is shuffled
// randomly", paper §5.1).
func (d *Dataset) Shuffled(rng *rand.Rand) *Dataset {
	perm := rng.Perm(len(d.answers))
	out, err := NewDataset(d.Name, d.NumItems, d.NumWorkers, d.NumLabels)
	if err != nil {
		panic(err)
	}
	out.LabelNames = d.LabelNames
	for _, pi := range perm {
		a := d.answers[pi]
		if err := out.Add(a.Item, a.Worker, a.Labels.Clone()); err != nil {
			panic(err)
		}
	}
	copy(out.truth, d.truth)
	copy(out.hasTruth, d.hasTruth)
	copy(out.revealed, d.revealed)
	return out
}

// Prefix returns a copy containing only the first n answers in arrival
// order — the "data arrival" views of Fig. 6. n is clamped to the answer
// count.
func (d *Dataset) Prefix(n int) *Dataset {
	if n > len(d.answers) {
		n = len(d.answers)
	}
	out, err := NewDataset(d.Name, d.NumItems, d.NumWorkers, d.NumLabels)
	if err != nil {
		panic(err)
	}
	out.LabelNames = d.LabelNames
	for _, a := range d.answers[:n] {
		if err := out.Add(a.Item, a.Worker, a.Labels.Clone()); err != nil {
			panic(err)
		}
	}
	copy(out.truth, d.truth)
	copy(out.hasTruth, d.hasTruth)
	copy(out.revealed, d.revealed)
	return out
}

// Batch is a contiguous chunk of the answer stream handed to online
// inference (paper §4.1: "data is received as a series of batches").
type Batch struct {
	Index   int
	Answers []Answer
}

// Batches splits the arrival-ordered answers into chunks of size batchSize
// (the last one may be smaller).
func (d *Dataset) Batches(batchSize int) []Batch {
	if batchSize <= 0 {
		batchSize = 1
	}
	var out []Batch
	for start, idx := 0, 0; start < len(d.answers); start, idx = start+batchSize, idx+1 {
		end := start + batchSize
		if end > len(d.answers) {
			end = len(d.answers)
		}
		out = append(out, Batch{Index: idx, Answers: d.answers[start:end]})
	}
	return out
}

// Stats summarises the shape of a dataset, mirroring the quantities of the
// paper's Table 3 plus answer-distribution diagnostics.
type Stats struct {
	Items, Workers, Labels, Answers int
	Density                         float64
	MeanAnswersPerItem              float64
	MeanAnswersPerWorker            float64
	MaxAnswersPerWorker             int
	MeanAnswerSize                  float64
	MeanTruthSize                   float64
	TruthItems                      int
	// DistinctLabelSets counts the distinct answer label sets — the reuse
	// diagnostic behind the inference engines' interned score panels: the
	// lower this is relative to Answers, the more per-set caching pays.
	DistinctLabelSets int
}

// ComputeStats scans the dataset once and returns its Stats.
func (d *Dataset) ComputeStats() Stats {
	s := Stats{
		Items:   d.NumItems,
		Workers: d.NumWorkers,
		Labels:  d.NumLabels,
		Answers: len(d.answers),
		Density: d.Density(),
	}
	if d.NumItems > 0 {
		s.MeanAnswersPerItem = float64(len(d.answers)) / float64(d.NumItems)
	}
	if d.NumWorkers > 0 {
		s.MeanAnswersPerWorker = float64(len(d.answers)) / float64(d.NumWorkers)
	}
	for u := range d.byWorker {
		if n := len(d.byWorker[u]); n > s.MaxAnswersPerWorker {
			s.MaxAnswersPerWorker = n
		}
	}
	sizeSum := 0
	intern := labelset.NewInterner()
	for _, a := range d.answers {
		sizeSum += a.Labels.Len()
		intern.Intern(a.Labels)
	}
	s.DistinctLabelSets = intern.Len()
	if len(d.answers) > 0 {
		s.MeanAnswerSize = float64(sizeSum) / float64(len(d.answers))
	}
	truthSum, truthN := 0, 0
	for i, h := range d.hasTruth {
		if h {
			truthSum += d.truth[i].Len()
			truthN++
		}
	}
	s.TruthItems = truthN
	if truthN > 0 {
		s.MeanTruthSize = float64(truthSum) / float64(truthN)
	}
	return s
}

// ---------------------------------------------------------------------------
// Codecs
// ---------------------------------------------------------------------------

// jsonDataset is the wire form of a Dataset.
type jsonDataset struct {
	Name       string       `json:"name"`
	Items      int          `json:"items"`
	Workers    int          `json:"workers"`
	Labels     int          `json:"labels"`
	LabelNames []string     `json:"label_names,omitempty"`
	Answers    []JSONAnswer `json:"answers"`
	Truth      []jsonTruth  `json:"truth,omitempty"`
}

type jsonTruth struct {
	Item     int          `json:"i"`
	Labels   labelset.Set `json:"y"`
	Revealed bool         `json:"revealed,omitempty"`
}

// WriteJSON encodes the dataset to w.
func (d *Dataset) WriteJSON(w io.Writer) error {
	jd := jsonDataset{
		Name:       d.Name,
		Items:      d.NumItems,
		Workers:    d.NumWorkers,
		Labels:     d.NumLabels,
		LabelNames: d.LabelNames,
	}
	for _, a := range d.answers {
		jd.Answers = append(jd.Answers, ToJSON(a))
	}
	for i, h := range d.hasTruth {
		if h {
			jd.Truth = append(jd.Truth, jsonTruth{Item: i, Labels: d.truth[i], Revealed: d.revealed[i]})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(jd)
}

// ReadJSON decodes a dataset produced by WriteJSON.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var jd jsonDataset
	dec := json.NewDecoder(r)
	if err := dec.Decode(&jd); err != nil {
		return nil, fmt.Errorf("answers: decoding JSON: %w", err)
	}
	d, err := NewDataset(jd.Name, jd.Items, jd.Workers, jd.Labels)
	if err != nil {
		return nil, err
	}
	d.LabelNames = jd.LabelNames
	for _, a := range jd.Answers {
		if err := d.Add(a.Item, a.Worker, a.Labels); err != nil {
			return nil, err
		}
	}
	for _, tr := range jd.Truth {
		if err := d.SetTruth(tr.Item, tr.Labels); err != nil {
			return nil, err
		}
		if tr.Revealed {
			if err := d.Reveal(tr.Item); err != nil {
				return nil, err
			}
		}
	}
	return d, nil
}

// WriteCSV encodes the answers as rows `item,worker,"c1;c2;..."` with a
// header. Truth rows use worker = -1 (revealed truth: worker = -2).
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"item", "worker", "labels"}); err != nil {
		return err
	}
	encodeSet := func(s labelset.Set) string {
		parts := s.Slice()
		strs := make([]string, len(parts))
		for i, c := range parts {
			strs[i] = strconv.Itoa(c)
		}
		return strings.Join(strs, ";")
	}
	for _, a := range d.answers {
		if err := cw.Write([]string{strconv.Itoa(a.Item), strconv.Itoa(a.Worker), encodeSet(a.Labels)}); err != nil {
			return err
		}
	}
	for i, h := range d.hasTruth {
		if !h {
			continue
		}
		marker := "-1"
		if d.revealed[i] {
			marker = "-2"
		}
		if err := cw.Write([]string{strconv.Itoa(i), marker, encodeSet(d.truth[i])}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes the CSV form written by WriteCSV. Dimensions are inferred
// from the data (max index + 1).
func ReadCSV(name string, r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("answers: reading CSV: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("%w: empty CSV", ErrInvalid)
	}
	start := 0
	if records[0][0] == "item" {
		start = 1
	}
	type row struct {
		item, worker int
		labels       labelset.Set
	}
	rows := make([]row, 0, len(records)-start)
	maxItem, maxWorker, maxLabel := -1, -1, -1
	for ln, rec := range records[start:] {
		if len(rec) != 3 {
			return nil, fmt.Errorf("%w: CSV line %d has %d fields", ErrInvalid, ln+start+1, len(rec))
		}
		item, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("%w: CSV line %d item: %v", ErrInvalid, ln+start+1, err)
		}
		worker, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("%w: CSV line %d worker: %v", ErrInvalid, ln+start+1, err)
		}
		var ls labelset.Set
		if rec[2] != "" {
			for _, p := range strings.Split(rec[2], ";") {
				c, err := strconv.Atoi(p)
				if err != nil || c < 0 {
					return nil, fmt.Errorf("%w: CSV line %d label %q", ErrInvalid, ln+start+1, p)
				}
				ls.Add(c)
			}
		}
		rows = append(rows, row{item, worker, ls})
		if item > maxItem {
			maxItem = item
		}
		if worker > maxWorker {
			maxWorker = worker
		}
		if m := ls.Max(); m > maxLabel {
			maxLabel = m
		}
	}
	if maxItem < 0 || maxLabel < 0 {
		return nil, fmt.Errorf("%w: CSV contains no usable rows", ErrInvalid)
	}
	if maxWorker < 0 {
		maxWorker = 0 // truth-only file still needs one worker slot
	}
	d, err := NewDataset(name, maxItem+1, maxWorker+1, maxLabel+1)
	if err != nil {
		return nil, err
	}
	for _, rw := range rows {
		switch {
		case rw.worker >= 0:
			if err := d.Add(rw.item, rw.worker, rw.labels); err != nil {
				return nil, err
			}
		default:
			if err := d.SetTruth(rw.item, rw.labels); err != nil {
				return nil, err
			}
			if rw.worker == -2 {
				if err := d.Reveal(rw.item); err != nil {
					return nil, err
				}
			}
		}
	}
	return d, nil
}

// SortAnswersForDeterminism re-orders the arrival sequence by (item, worker).
// Generators use it to guarantee identical arrival order regardless of the
// map-iteration quirks of their internals.
func (d *Dataset) SortAnswersForDeterminism() {
	sort.SliceStable(d.answers, func(a, b int) bool {
		if d.answers[a].Item != d.answers[b].Item {
			return d.answers[a].Item < d.answers[b].Item
		}
		return d.answers[a].Worker < d.answers[b].Worker
	})
	for i := range d.byItem {
		d.byItem[i] = d.byItem[i][:0]
	}
	for u := range d.byWorker {
		d.byWorker[u] = d.byWorker[u][:0]
	}
	for idx, a := range d.answers {
		d.byItem[a.Item] = append(d.byItem[a.Item], idx)
		d.byWorker[a.Worker] = append(d.byWorker[a.Worker], idx)
	}
}
