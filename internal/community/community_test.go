package community

import (
	"strings"
	"testing"

	"cpa/internal/answers"
	"cpa/internal/datasets"
	"cpa/internal/labelset"
)

func TestKMeansSeparatesObviousClusters(t *testing.T) {
	// Two tight blobs: k-means with k=2 must split them exactly.
	coords := [][2]float64{
		{0.1, 0.1}, {0.12, 0.08}, {0.09, 0.12}, {0.11, 0.11},
		{0.9, 0.9}, {0.88, 0.92}, {0.91, 0.89}, {0.9, 0.91},
	}
	assign := kmeans(coords, 2, 1)
	for i := 1; i < 4; i++ {
		if assign[i] != assign[0] {
			t.Fatalf("low blob split: %v", assign)
		}
	}
	for i := 5; i < 8; i++ {
		if assign[i] != assign[4] {
			t.Fatalf("high blob split: %v", assign)
		}
	}
	if assign[0] == assign[4] {
		t.Fatal("blobs merged")
	}
}

func TestSelectKPrefersTrueK(t *testing.T) {
	coords := [][2]float64{
		{0.1, 0.1}, {0.12, 0.08}, {0.09, 0.12}, {0.11, 0.11}, {0.1, 0.09},
		{0.9, 0.9}, {0.88, 0.92}, {0.91, 0.89}, {0.9, 0.91}, {0.92, 0.9},
	}
	k, _, sil := selectK(coords, 2, 5, 3)
	if k != 2 {
		t.Errorf("selectK = %d (silhouette %.2f), want 2", k, sil)
	}
	if sil < 0.8 {
		t.Errorf("silhouette %.2f too low for clean blobs", sil)
	}
}

func TestSelectKDegenerate(t *testing.T) {
	coords := [][2]float64{{0.5, 0.5}, {0.5, 0.5}}
	k, assign, _ := selectK(coords, 1, 4, 1)
	if k < 1 || len(assign) != 2 {
		t.Errorf("degenerate selectK k=%d assign=%v", k, assign)
	}
}

func TestDetectForLabelOnSimulatedData(t *testing.T) {
	ds, _, err := datasets.Load("image", 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Find a reasonably common label to analyse.
	counts := make([]int, ds.NumLabels)
	for i := 0; i < ds.NumItems; i++ {
		truth, _ := ds.Truth(i)
		truth.Range(func(c int) bool {
			counts[c]++
			return true
		})
	}
	best := 0
	for c, n := range counts {
		if n > counts[best] {
			best = c
		}
	}
	lc, err := DetectForLabel(ds, best, 2, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(lc.Points) == 0 {
		t.Fatal("no points")
	}
	if lc.Communities < 2 || lc.Communities > 5 {
		t.Errorf("communities = %d outside sweep range", lc.Communities)
	}
	for _, p := range lc.Points {
		if p.Sensitivity < 0 || p.Sensitivity > 1 || p.Specificity < 0 || p.Specificity > 1 {
			t.Fatalf("point out of unit square: %+v", p)
		}
	}
	sizes := lc.CommunitySizes()
	totalSize := 0
	for _, s := range sizes {
		totalSize += s
	}
	if totalSize != len(lc.Points) {
		t.Errorf("community sizes %v do not cover %d points", sizes, len(lc.Points))
	}
}

func TestDetectOverall(t *testing.T) {
	ds, _, err := datasets.Load("movie", 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	lc, err := DetectOverall(ds, 2, 6, 11)
	if err != nil {
		t.Fatal(err)
	}
	if lc.Label != -1 {
		t.Errorf("overall analysis should have label -1, got %d", lc.Label)
	}
	if len(lc.Points) == 0 {
		t.Fatal("no points")
	}
}

func TestDetectErrorsWithoutTruth(t *testing.T) {
	ds, _ := answers.NewDataset("nt", 2, 2, 2)
	if err := ds.Add(0, 0, labelset.Of(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := DetectForLabel(ds, 0, 2, 3, 1); err == nil {
		t.Error("no-truth dataset should fail")
	}
	if _, err := DetectOverall(ds, 2, 3, 1); err == nil {
		t.Error("no-truth dataset should fail")
	}
}

func TestRenderScatter(t *testing.T) {
	lc := &LabelCommunities{
		Label:       7,
		Communities: 2,
		Points: []Point{
			{Worker: 0, Specificity: 0.1, Sensitivity: 0.9, Community: 0},
			{Worker: 1, Specificity: 0.95, Sensitivity: 0.05, Community: 1},
		},
	}
	out := RenderScatter(lc, 20, 8)
	if !strings.Contains(out, "label=7") || !strings.Contains(out, "communities=2") {
		t.Errorf("missing header: %s", out)
	}
	if !strings.Contains(out, "0") || !strings.Contains(out, "1") {
		t.Errorf("missing community marks: %s", out)
	}
	// Degenerate sizes fall back to defaults without panicking.
	_ = RenderScatter(lc, 1, 1)
}
