// Package community implements the worker-community analyses of the paper's
// §5.5 and Appendix A: per-label sensitivity/specificity scatter plots of
// the worker population (Fig. 9), the pooled worker-type characterisation
// (Fig. 10), and a small deterministic k-means with silhouette-based model
// selection used to count the communities that emerge per label.
package community

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"cpa/internal/answers"
	"cpa/internal/metrics"
)

// Point is one worker's position in the (specificity, sensitivity) plane —
// the axes of the paper's Fig. 9/10 — plus its assigned community.
type Point struct {
	Worker      int
	Specificity float64
	Sensitivity float64
	Community   int
}

// LabelCommunities is the Fig. 9 analysis result for one label.
type LabelCommunities struct {
	Label       int
	Points      []Point
	Communities int
	Silhouette  float64
}

// DetectForLabel computes each worker's sensitivity/specificity for a label
// (against ground truth) and clusters the population with k-means, selecting
// k ∈ [kMin, kMax] by mean silhouette. Workers without measurable quality
// are skipped.
func DetectForLabel(ds *answers.Dataset, label int, kMin, kMax int, seed int64) (*LabelCommunities, error) {
	quality := metrics.WorkerQuality(ds, label)
	if len(quality) == 0 {
		return nil, fmt.Errorf("community: no measurable workers for label %d", label)
	}
	pts := make([]Point, len(quality))
	coords := make([][2]float64, len(quality))
	for i, q := range quality {
		pts[i] = Point{Worker: q.Worker, Specificity: q.Specificity, Sensitivity: q.Sensitivity}
		coords[i] = [2]float64{q.Specificity, q.Sensitivity}
	}
	k, assign, sil := selectK(coords, kMin, kMax, seed)
	for i := range pts {
		pts[i].Community = assign[i]
	}
	return &LabelCommunities{Label: label, Points: pts, Communities: k, Silhouette: sil}, nil
}

// DetectOverall runs the same analysis on the pooled (all-label) quality of
// each worker — the Fig. 10 worker-type characterisation.
func DetectOverall(ds *answers.Dataset, kMin, kMax int, seed int64) (*LabelCommunities, error) {
	quality := metrics.OverallWorkerQuality(ds)
	if len(quality) == 0 {
		return nil, fmt.Errorf("community: no measurable workers")
	}
	pts := make([]Point, len(quality))
	coords := make([][2]float64, len(quality))
	for i, q := range quality {
		pts[i] = Point{Worker: q.Worker, Specificity: q.Specificity, Sensitivity: q.Sensitivity}
		coords[i] = [2]float64{q.Specificity, q.Sensitivity}
	}
	k, assign, sil := selectK(coords, kMin, kMax, seed)
	for i := range pts {
		pts[i].Community = assign[i]
	}
	return &LabelCommunities{Label: -1, Points: pts, Communities: k, Silhouette: sil}, nil
}

// selectK sweeps k and returns the assignment with the best mean silhouette
// (k=1 when the population is too small or degenerate).
func selectK(coords [][2]float64, kMin, kMax int, seed int64) (int, []int, float64) {
	n := len(coords)
	if kMin < 1 {
		kMin = 1
	}
	if kMax < kMin {
		kMax = kMin
	}
	if kMax > n {
		kMax = n
	}
	bestK := 1
	bestSil := math.Inf(-1)
	bestAssign := make([]int, n)
	for k := kMin; k <= kMax; k++ {
		assign := kmeans(coords, k, seed)
		sil := meanSilhouette(coords, assign, k)
		if sil > bestSil {
			bestK, bestSil = k, sil
			copy(bestAssign, assign)
		}
	}
	if math.IsInf(bestSil, -1) {
		bestSil = 0
	}
	return bestK, bestAssign, bestSil
}

// kmeans is a plain Lloyd's iteration with k-means++-style seeding, fixed
// iteration budget and deterministic behaviour under seed.
func kmeans(coords [][2]float64, k int, seed int64) []int {
	n := len(coords)
	assign := make([]int, n)
	if k <= 1 {
		return assign
	}
	rng := rand.New(rand.NewSource(seed))
	centers := make([][2]float64, 0, k)
	centers = append(centers, coords[rng.Intn(n)])
	for len(centers) < k {
		// k-means++: pick the next center proportional to squared distance.
		dists := make([]float64, n)
		total := 0.0
		for i, c := range coords {
			d := math.Inf(1)
			for _, ctr := range centers {
				d = math.Min(d, sqDist(c, ctr))
			}
			dists[i] = d
			total += d
		}
		if total == 0 {
			centers = append(centers, coords[rng.Intn(n)])
			continue
		}
		u := rng.Float64() * total
		picked := n - 1
		for i, d := range dists {
			u -= d
			if u <= 0 {
				picked = i
				break
			}
		}
		centers = append(centers, coords[picked])
	}
	for iter := 0; iter < 50; iter++ {
		changed := false
		for i, c := range coords {
			best, bestD := 0, math.Inf(1)
			for j, ctr := range centers {
				if d := sqDist(c, ctr); d < bestD {
					best, bestD = j, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		var sums [][2]float64 = make([][2]float64, k)
		counts := make([]int, k)
		for i, c := range coords {
			sums[assign[i]][0] += c[0]
			sums[assign[i]][1] += c[1]
			counts[assign[i]]++
		}
		for j := range centers {
			if counts[j] > 0 {
				centers[j][0] = sums[j][0] / float64(counts[j])
				centers[j][1] = sums[j][1] / float64(counts[j])
			}
		}
	}
	return assign
}

func sqDist(a, b [2]float64) float64 {
	dx := a[0] - b[0]
	dy := a[1] - b[1]
	return dx*dx + dy*dy
}

// meanSilhouette computes the average silhouette coefficient of the
// clustering; -1 when any cluster is empty or k does not partition the data
// meaningfully.
func meanSilhouette(coords [][2]float64, assign []int, k int) float64 {
	n := len(coords)
	if k < 2 || n <= k {
		return -1
	}
	counts := make([]int, k)
	for _, a := range assign {
		counts[a]++
	}
	for _, c := range counts {
		if c == 0 {
			return -1
		}
	}
	total := 0.0
	for i := range coords {
		var intra float64
		inter := make([]float64, k)
		interN := make([]int, k)
		for j := range coords {
			if i == j {
				continue
			}
			d := math.Sqrt(sqDist(coords[i], coords[j]))
			inter[assign[j]] += d
			interN[assign[j]]++
		}
		own := assign[i]
		if interN[own] == 0 {
			continue // singleton cluster: silhouette 0 contribution
		}
		intra = inter[own] / float64(interN[own])
		nearest := math.Inf(1)
		for j := 0; j < k; j++ {
			if j == own || interN[j] == 0 {
				continue
			}
			nearest = math.Min(nearest, inter[j]/float64(interN[j]))
		}
		if math.IsInf(nearest, 1) {
			continue
		}
		den := math.Max(intra, nearest)
		if den > 0 {
			total += (nearest - intra) / den
		}
	}
	return total / float64(n)
}

// RenderScatter draws an ASCII scatter of the points (specificity on x,
// sensitivity on y), marking each worker with its community digit — a
// terminal rendition of Fig. 9/10.
func RenderScatter(lc *LabelCommunities, width, height int) string {
	if width < 10 {
		width = 40
	}
	if height < 5 {
		height = 16
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = make([]byte, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for _, p := range lc.Points {
		x := int(p.Specificity * float64(width-1))
		y := int((1 - p.Sensitivity) * float64(height-1))
		if x < 0 {
			x = 0
		}
		if x >= width {
			x = width - 1
		}
		if y < 0 {
			y = 0
		}
		if y >= height {
			y = height - 1
		}
		grid[y][x] = byte('0' + p.Community%10)
	}
	out := fmt.Sprintf("label=%d communities=%d silhouette=%.2f (x: specificity, y: sensitivity)\n",
		lc.Label, lc.Communities, lc.Silhouette)
	for _, row := range grid {
		out += "|" + string(row) + "|\n"
	}
	return out
}

// CommunitySizes returns the population of each community, largest first.
func (lc *LabelCommunities) CommunitySizes() []int {
	counts := make(map[int]int)
	for _, p := range lc.Points {
		counts[p.Community]++
	}
	out := make([]int, 0, len(counts))
	for _, v := range counts {
		out = append(out, v)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}
