package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"time"

	"cpa/internal/answers"
	"cpa/internal/cluster"
	"cpa/internal/serve"
)

// Cluster scenarios drive a sharded cpaserve deployment (internal/cluster:
// one router, one shard with a primary and two journal-shipping followers)
// through an ownership change mid-stream and verify the cluster-level
// invariants:
//
//   - acked-answers-durable: every answer the router acked survives the
//     ownership change, in ack order, on the final owner's journal — the
//     replication ack barrier plus most-caught-up promotion must make the
//     change lossless;
//   - served-equals-replay: the consensus served through the router after
//     the change is bit-for-bit the offline replay of the owner's journal
//     (restart re-anchors included);
//   - follower-bit-identical: at quiesce every live follower serves, through
//     the router's verified ?replica= path, exactly the owner's snapshot;
//   - deposed-primary-fenced (handoff): the ex-primary 409s direct
//     ingestion after the transfer.
//
// cluster-failover hard-kills the primary between two ingestion requests;
// the router promotes the most-caught-up follower and the driver retries
// the failed request against the new owner (the router deliberately never
// retries ingestion itself — see DESIGN.md §11). cluster-handoff runs a
// planned, zero-downtime transfer concurrently with live ingestion: every
// request is parked by the routing gate and acked, none are lost or retried.
const (
	ClusterFailoverScenario = "cluster-failover"
	ClusterHandoffScenario  = "cluster-handoff"
)

// ClusterScenarioNames lists the cluster scenario library.
func ClusterScenarioNames() []string {
	return []string{ClusterFailoverScenario, ClusterHandoffScenario}
}

// ClusterConfig parameterises one cluster scenario run.
type ClusterConfig struct {
	// Scenario is ClusterFailoverScenario or ClusterHandoffScenario.
	Scenario string
	// Scale shrinks the dataset profile as in datasets.Load. Default 0.04.
	Scale float64
	// Seed drives workload construction and the ownership-change point.
	// Default 1.
	Seed int64
	// Clock paces arrivals; nil uses a VirtualClock.
	Clock Clock
	// Logf receives progress lines (t.Logf-compatible). Nil is silent.
	Logf func(format string, args ...any)
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.Scale == 0 {
		c.Scale = 0.04
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Clock == nil {
		c.Clock = NewVirtualClock()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// ClusterEvent records the ownership change a cluster scenario injected.
type ClusterEvent struct {
	Kind       string `json:"kind"` // "failover" or "handoff"
	AtAnswers  int    `json:"at_answers"`
	OldPrimary string `json:"old_primary"`
	NewPrimary string `json:"new_primary"`
	Epoch      int64  `json:"epoch"`
}

// ClusterReport is the machine-readable outcome of one cluster scenario.
type ClusterReport struct {
	Scenario     string            `json:"scenario"`
	Scale        float64           `json:"scale"`
	Seed         int64             `json:"seed"`
	TotalAnswers int               `json:"total_answers"`
	Requests     int64             `json:"requests"`
	Retried      int64             `json:"retried_requests"`
	Event        ClusterEvent      `json:"event"`
	Invariants   []InvariantResult `json:"invariants"`
	DurationSec  float64           `json:"duration_seconds"`
}

// Failed returns the invariants that did not hold.
func (r *ClusterReport) Failed() []InvariantResult {
	var out []InvariantResult
	for _, iv := range r.Invariants {
		if iv.Status == StatusFail {
			out = append(out, iv)
		}
	}
	return out
}

// Summary renders a one-paragraph human summary.
func (r *ClusterReport) Summary() string {
	verdict := "all invariants held"
	if n := len(r.Failed()); n > 0 {
		verdict = fmt.Sprintf("%d INVARIANT FAILURES", n)
	}
	return fmt.Sprintf("%s: %d answers, %s %s→%s at %d acked (epoch %d), %d requests (%d retried), %.2fs — %s",
		r.Scenario, r.TotalAnswers, r.Event.Kind, r.Event.OldPrimary, r.Event.NewPrimary,
		r.Event.AtAnswers, r.Event.Epoch, r.Requests, r.Retried, r.DurationSec, verdict)
}

// clusterRunner is the transient state of one RunCluster execution.
type clusterRunner struct {
	cfg    ClusterConfig
	report *ClusterReport
	client *http.Client

	nodes   map[string]*clusterNode
	router  *cluster.Router
	routerS *httptest.Server

	jobID string
	spec  serve.JobSpec
	acked []answers.Answer
}

type clusterNode struct {
	node *cluster.Node
	ts   *httptest.Server
	dir  string
}

// RunCluster executes one cluster scenario and returns its report. Invariant
// failures are data (Report.Failed()); an error means the harness itself
// could not complete.
func RunCluster(cfg ClusterConfig) (*ClusterReport, error) {
	cfg = cfg.withDefaults()
	if cfg.Scenario != ClusterFailoverScenario && cfg.Scenario != ClusterHandoffScenario {
		return nil, fmt.Errorf("loadgen: unknown cluster scenario %q (have %v)", cfg.Scenario, ClusterScenarioNames())
	}

	// Reuse the single-node workload machinery for the crowd and stream.
	sc := Scenario{
		Name: cfg.Scenario, Profile: "topic", shape: shapeShuffle,
		Arrival: ArrivalSteady, Phases: []string{"pre", "post"},
	}
	tp, err := buildTenant(sc, cfg.Scale, cfg.Seed, 0, 1)
	if err != nil {
		return nil, fmt.Errorf("loadgen: building cluster tenant: %w", err)
	}

	r := &clusterRunner{
		cfg:    cfg,
		client: &http.Client{Timeout: 60 * time.Second},
		nodes:  map[string]*clusterNode{},
		jobID:  tp.id,
		spec:   tp.spec,
		report: &ClusterReport{
			Scenario: cfg.Scenario, Scale: cfg.Scale, Seed: cfg.Seed,
			TotalAnswers: len(tp.stream),
		},
	}
	defer r.closeCluster()
	if err := r.openCluster(); err != nil {
		return nil, err
	}
	start := time.Now()
	if err := r.run(tp, sc); err != nil {
		return nil, err
	}
	r.finalInvariants()
	r.report.DurationSec = time.Since(start).Seconds()
	return r.report, nil
}

// openCluster builds one shard — primary "a", followers "b" and "c" — and a
// router in front, all in-process.
func (r *clusterRunner) openCluster() error {
	spec := cluster.MapSpec{
		Nodes:  map[string]string{},
		Shards: []cluster.ShardSpec{{Primary: "a", Followers: []string{"b", "c"}}},
	}
	for _, name := range []string{"a", "b", "c"} {
		dir, err := os.MkdirTemp("", "cpaload-cluster-*")
		if err != nil {
			return err
		}
		n, err := cluster.NewNode(name, dir, serve.Config{BatchWait: time.Millisecond, SaveEvery: 4})
		if err != nil {
			os.RemoveAll(dir)
			return fmt.Errorf("loadgen: node %s: %w", name, err)
		}
		ts := httptest.NewServer(n)
		r.nodes[name] = &clusterNode{node: n, ts: ts, dir: dir}
		spec.Nodes[name] = ts.URL
	}
	rt, err := cluster.NewRouter(spec)
	if err != nil {
		return err
	}
	r.router = rt
	r.routerS = httptest.NewServer(rt)
	return nil
}

func (r *clusterRunner) closeCluster() {
	if r.routerS != nil {
		r.routerS.Close()
	}
	for _, cn := range r.nodes {
		cn.ts.Close()
		cn.node.Close()
		os.RemoveAll(cn.dir)
	}
}

// run streams the tenant through the router, injecting the scenario's
// ownership change at a seed-determined point mid-stream.
func (r *clusterRunner) run(tp *tenantPlan, sc Scenario) error {
	body, err := json.Marshal(serve.CreateJobRequest{
		ID: tp.id, Items: tp.spec.Items, Workers: tp.spec.Workers, Labels: tp.spec.Labels,
		Model: tp.spec.Model,
	})
	if err != nil {
		return err
	}
	resp, err := r.client.Post(r.routerS.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("loadgen: creating cluster job: status %d", resp.StatusCode)
	}
	r.cfg.Logf("cluster job %s created (%d answers planned)", tp.id, len(tp.stream))

	rng := rand.New(rand.NewSource(r.cfg.Seed + 104729))
	eventAt := int(float64(len(tp.stream)) * (0.35 + 0.30*rng.Float64()))
	traffic := newTrafficModel(sc, r.cfg.Seed+7919)
	handoffDone := make(chan error, 1)
	fired := false

	for len(r.acked) < len(tp.stream) {
		if !fired && len(r.acked) >= eventAt {
			fired = true
			switch r.cfg.Scenario {
			case ClusterFailoverScenario:
				r.cfg.Logf("chaos: kill -9 primary a at %d acked answers", len(r.acked))
				cn := r.nodes["a"]
				cn.node.Crash()
				cn.ts.CloseClientConnections()
				cn.ts.Close()
				r.report.Event = ClusterEvent{Kind: "failover", AtAnswers: len(r.acked), OldPrimary: "a"}
			case ClusterHandoffScenario:
				r.cfg.Logf("handoff: transferring %s a→b at %d acked answers (live traffic)", tp.id, len(r.acked))
				r.report.Event = ClusterEvent{Kind: "handoff", AtAnswers: len(r.acked), OldPrimary: "a"}
				go func() { handoffDone <- r.router.Handoff(tp.id, "b") }()
			}
		}
		n := min(sc.chunk(), len(tp.stream)-len(r.acked))
		chunk := tp.stream[len(r.acked) : len(r.acked)+n]
		if err := r.sendChunk(chunk); err != nil {
			return err
		}
		r.acked = append(r.acked, chunk...)
		r.cfg.Clock.Sleep(traffic.gap())
	}
	if r.cfg.Scenario == ClusterHandoffScenario {
		if err := <-handoffDone; err != nil {
			return fmt.Errorf("loadgen: handoff: %w", err)
		}
	}
	info := r.router.Info()
	job := info.Jobs[r.jobID]
	r.report.Event.NewPrimary = job.Primary
	r.report.Event.Epoch = job.Epoch
	return r.quiesce()
}

// sendChunk posts one NDJSON request through the router, retrying 429
// backpressure and the router's documented 502 failed-over-please-retry
// answer (the router never retries ingestion itself; the client owns the
// retry, and only the accepted attempt acks the chunk).
func (r *clusterRunner) sendChunk(chunk []answers.Answer) error {
	var body bytes.Buffer
	for _, a := range chunk {
		line, err := answers.MarshalAnswerJSON(a)
		if err != nil {
			return err
		}
		body.Write(line)
		body.WriteByte('\n')
	}
	payload := body.Bytes()
	url := r.routerS.URL + "/v1/jobs/" + r.jobID + "/answers"
	deadline := time.Now().Add(quiesceTimeout)
	first := true
	for {
		if !first {
			r.report.Retried++
		}
		first = false
		resp, err := r.client.Post(url, "application/x-ndjson", bytes.NewReader(payload))
		status := 0
		if err == nil {
			status = resp.StatusCode
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		r.report.Requests++
		switch status {
		case http.StatusAccepted:
			return nil
		case http.StatusTooManyRequests, http.StatusBadGateway, http.StatusGatewayTimeout, 0:
			if time.Now().After(deadline) {
				return fmt.Errorf("loadgen: ingestion never recovered (last status %d, err %v)", status, err)
			}
			time.Sleep(2 * time.Millisecond) // real: the cluster needs wall time
		default:
			return fmt.Errorf("loadgen: ingesting: status %d", status)
		}
	}
}

// quiesce waits until the owner has fitted and published everything acked
// and every live follower has applied the owner's full durable journal.
func (r *clusterRunner) quiesce() error {
	deadline := time.Now().Add(quiesceTimeout)
	for {
		var st serve.JobStats
		err := r.routerGet("/v1/jobs/"+r.jobID, &st)
		if err == nil && st.Error == "" &&
			st.IngestedAnswers == int64(len(r.acked)) &&
			st.FittedAnswers == int64(len(r.acked)) &&
			st.SnapshotRound == int(st.FitRounds) &&
			r.followersCaughtUp(st.JournalBytes) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("loadgen: cluster job never quiesced (stats %+v, err %v)", st, err)
		}
		time.Sleep(time.Millisecond)
	}
}

func (r *clusterRunner) followersCaughtUp(target int64) bool {
	job, ok := r.router.Info().Jobs[r.jobID]
	if !ok {
		return false
	}
	for _, f := range job.Followers {
		var st cluster.ReplicaStats
		if err := r.nodeGet(f, "/v1/replicate/"+r.jobID, &st); err != nil || st.AppliedBytes < target {
			return false
		}
	}
	return true
}

func (r *clusterRunner) routerGet(path string, v any) error {
	resp, err := r.client.Get(r.routerS.URL + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func (r *clusterRunner) nodeGet(name, path string, v any) error {
	cn, ok := r.nodes[name]
	if !ok {
		return fmt.Errorf("unknown node %q", name)
	}
	resp, err := r.client.Get(cn.ts.URL + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("GET %s%s: status %d", name, path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func (r *clusterRunner) addInvariant(name string, err error, passDetail string) {
	iv := InvariantResult{Name: name, Job: r.jobID, Status: StatusPass, Detail: passDetail}
	if err != nil {
		iv.Status = StatusFail
		iv.Detail = err.Error()
	}
	r.report.Invariants = append(r.report.Invariants, iv)
	if err != nil {
		r.cfg.Logf("INVARIANT FAIL %s[%s]: %v", name, r.jobID, err)
	}
}

func (r *clusterRunner) skipInvariant(name, why string) {
	r.report.Invariants = append(r.report.Invariants, InvariantResult{
		Name: name, Job: r.jobID, Status: StatusSkipped, Detail: why,
	})
}

// finalInvariants evaluates the cluster invariants at quiesce.
func (r *clusterRunner) finalInvariants() {
	info := r.router.Info()
	job := info.Jobs[r.jobID]
	owner := r.nodes[job.Primary]

	// ownership-transferred: the scenario's whole point happened.
	var ownErr error
	if job.Primary == "a" || job.Epoch == 0 {
		ownErr = fmt.Errorf("route still primary=%s epoch=%d after %s", job.Primary, job.Epoch, r.report.Event.Kind)
	}
	r.addInvariant("ownership-transferred", ownErr,
		fmt.Sprintf("%s a→%s at epoch %d", r.report.Event.Kind, job.Primary, job.Epoch))

	// acked-answers-durable: the final owner's journal holds every acked
	// answer, in ack order. The driver changes ownership between requests,
	// so the sequences must match exactly — nothing lost, nothing doubled.
	journalPath := owner.node.JournalPath(r.jobID)
	var journaled []answers.Answer
	var base serve.JournalBase
	err := serve.ReadJournal(journalPath, func(e serve.JournalEntry) error {
		if e.Answer != nil {
			journaled = append(journaled, *e.Answer)
		}
		if e.Base != nil {
			base = *e.Base
		}
		return nil
	})
	if err == nil {
		err = checkAckedDurable(journaled, r.acked, base.Ans)
	}
	r.addInvariant("acked-answers-durable", err,
		fmt.Sprintf("%d acked answers durable in order on %s across the %s",
			len(r.acked), job.Primary, r.report.Event.Kind))

	// served-equals-replay: the routed consensus is the offline replay of
	// the owner's journal, restart re-anchors and recorded publish modes
	// included.
	var snap serve.Snapshot
	if err := r.routerGet("/v1/jobs/"+r.jobID+"/consensus", &snap); err != nil {
		r.addInvariant("served-equals-replay", err, "")
	} else {
		r.addInvariant("served-equals-replay", CheckReplay(journalPath, r.spec, &snap),
			fmt.Sprintf("%d rounds bit-for-bit on promoted owner", snap.Round))
	}

	// follower-bit-identical: every live follower serves the owner's exact
	// snapshot through the router's verified ?replica= path.
	for _, f := range job.Followers {
		var fsnap serve.Snapshot
		err := r.routerGet("/v1/jobs/"+r.jobID+"/consensus?replica="+f, &fsnap)
		if err == nil {
			err = sameServedSnapshot(&snap, &fsnap)
		}
		r.addInvariant("follower-bit-identical", err,
			fmt.Sprintf("replica %s serves the owner snapshot exactly", f))
	}

	// deposed-primary-fenced: after a handoff the old primary must 409
	// direct ingestion. After a failover the old primary is dead.
	if r.cfg.Scenario == ClusterHandoffScenario {
		resp, err := r.client.Post(r.nodes["a"].ts.URL+"/v1/jobs/"+r.jobID+"/answers",
			"application/json", bytes.NewReader([]byte(`{"answers":[{"i":0,"u":0,"x":[0]}]}`)))
		var fenceErr error
		if err != nil {
			fenceErr = err
		} else {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusConflict {
				fenceErr = fmt.Errorf("deposed primary answered direct ingestion with status %d, want 409", resp.StatusCode)
			}
		}
		r.addInvariant("deposed-primary-fenced", fenceErr, "ex-primary 409s direct writes")
	} else {
		r.skipInvariant("deposed-primary-fenced", "failover scenario: the old primary is dead, not deposed")
	}
}

// sameServedSnapshot compares two served snapshots bit-for-bit, CreatedAt
// excluded (it is stamped per process).
func sameServedSnapshot(want, got *serve.Snapshot) error {
	if got.Round != want.Round || got.Answers != want.Answers {
		return fmt.Errorf("snapshot at round=%d answers=%d, want round=%d answers=%d",
			got.Round, got.Answers, want.Round, want.Answers)
	}
	if !reflect.DeepEqual(got.Consensus, want.Consensus) {
		return fmt.Errorf("consensus diverged from the owner's snapshot")
	}
	return nil
}
