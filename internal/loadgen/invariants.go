package loadgen

import (
	"fmt"
	"slices"

	"cpa/internal/answers"
	"cpa/internal/core"
	"cpa/internal/serve"
)

// replayJournal rebuilds the consensus a job's journal encodes: a fresh
// model advanced by PartialFit with the recorded mini-batch boundaries —
// exactly the FitStream computation the daemon performed, in the arrival
// order the journal persisted — and a mirrored core.Publisher driven by the
// recorded publish modes, so incremental publications (which carry
// untouched items' entries forward across rounds) reproduce bit-for-bit
// too. It returns the post-replay consensus view (nil when no fit marker
// was recorded yet), the full acked answer sequence, and the answers
// journaled but not covered by any fit marker.
func replayJournal(path string, spec serve.JobSpec) (*core.ConsensusView, []answers.Answer, []answers.Answer, error) {
	model, err := core.NewModel(spec.Model, spec.Items, spec.Workers, spec.Labels)
	if err != nil {
		return nil, nil, nil, err
	}
	var entries []serve.JournalEntry
	if err := serve.ReadJournal(path, func(e serve.JournalEntry) error {
		entries = append(entries, e)
		return nil
	}); err != nil {
		return nil, nil, nil, err
	}

	// Every full publication (and every restart re-anchor, and the very
	// first round, which a cold publisher always publishes full) rebuilds
	// the whole view from the model state of its round, superseding all
	// earlier snapshot history. The mirrored publisher therefore only needs
	// to publish from the last such anchor onward; fit rounds before it
	// replay the model alone.
	lastAnchor := -1
	for k, e := range entries {
		if e.FitN > 0 && lastAnchor == -1 {
			lastAnchor = k // first round: published full by the cold publisher
		}
		if (e.FitN > 0 && e.FitFull) || e.Restart {
			lastAnchor = k
		}
	}

	pub := core.NewPublisher(model)
	var view *core.ConsensusView
	var acked, pending []answers.Answer
	for k, e := range entries {
		switch {
		case e.Answer != nil:
			acked = append(acked, *e.Answer)
			pending = append(pending, *e.Answer)
		case e.Restart:
			if k == lastAnchor && model.Fitted() {
				if view, _, err = pub.Publish(true); err != nil {
					return nil, nil, nil, err
				}
			}
		default: // fit marker
			if e.FitN <= 0 || e.FitN > len(pending) {
				return nil, nil, nil, fmt.Errorf("fit marker n=%d with %d pending answers", e.FitN, len(pending))
			}
			if err := model.PartialFit(pending[:e.FitN]); err != nil {
				return nil, nil, nil, err
			}
			pending = pending[e.FitN:]
			if k == lastAnchor {
				view, _, err = pub.Publish(true)
			} else if k > lastAnchor {
				view, _, err = pub.Publish(false)
			} else {
				continue
			}
			if err != nil {
				return nil, nil, nil, err
			}
		}
	}
	if !model.Fitted() {
		return nil, acked, pending, nil
	}
	return view, acked, pending, nil
}

// CheckReplay verifies the served-equals-replay invariant: the snapshot a
// server published for a job must be bit-for-bit reproducible by an offline
// replay of that job's journal (same arrival order, same recorded
// mini-batch boundaries, same model config). A nil error means the served
// consensus is exactly the deterministic function of the durable state —
// the property that makes crash recovery exact and that the PR 2 class of
// arrival-order persistence bugs violates.
func CheckReplay(journalPath string, spec serve.JobSpec, snap *serve.Snapshot) error {
	if snap == nil {
		return fmt.Errorf("no served snapshot to check against")
	}
	view, _, _, err := replayJournal(journalPath, spec)
	if err != nil {
		return fmt.Errorf("replaying journal: %w", err)
	}
	if view == nil {
		if snap.Round != 0 {
			return fmt.Errorf("served round %d but journal has no fit markers", snap.Round)
		}
		return nil
	}
	return diffSnapshot(snap, view)
}

// diffSnapshot compares a served snapshot with a replayed consensus view,
// element by element and bit for bit (float confidences included — Go's
// JSON encoding round-trips float64 exactly, and the replay is the same
// deterministic computation the server ran).
func diffSnapshot(snap *serve.Snapshot, view *core.ConsensusView) error {
	if snap.Round != view.Stats.BatchRounds {
		return fmt.Errorf("served round %d, replay %d", snap.Round, view.Stats.BatchRounds)
	}
	if snap.Answers != view.Stats.Answers {
		return fmt.Errorf("served snapshot covers %d answers, replay %d", snap.Answers, view.Stats.Answers)
	}
	if len(snap.Consensus) != len(view.Items) {
		return fmt.Errorf("served %d items, replay %d", len(snap.Consensus), len(view.Items))
	}
	for i, item := range view.Items {
		got := snap.Consensus[i]
		if got.Item != i {
			return fmt.Errorf("item %d: served snapshot indexes it as %d", i, got.Item)
		}
		if !slices.Equal(got.Labels, item.Labels) {
			return fmt.Errorf("item %d: served labels %v, replay %v", i, got.Labels, item.Labels)
		}
		if len(got.Candidates) != len(item.Candidates) {
			return fmt.Errorf("item %d: served %d candidates, replay %d", i, len(got.Candidates), len(item.Candidates))
		}
		for k, c := range item.Candidates {
			if got.Candidates[k].Label != c {
				return fmt.Errorf("item %d candidate %d: served label %d, replay %d", i, k, got.Candidates[k].Label, c)
			}
			if got.Candidates[k].Confidence != item.Confidence[k] {
				return fmt.Errorf("item %d candidate %d (label %d): served confidence %v, replay %v",
					i, k, c, got.Candidates[k].Confidence, item.Confidence[k])
			}
		}
	}
	return nil
}

// checkAckedDurable verifies the backpressure invariant: the journal's
// answer sequence equals the client-side acked sequence exactly — same
// answers, same order, nothing lost to a 429/retry cycle, nothing
// duplicated by one.
func checkAckedDurable(journaled, acked []answers.Answer) error {
	if len(journaled) != len(acked) {
		return fmt.Errorf("journal holds %d answers, client acked %d", len(journaled), len(acked))
	}
	for i := range acked {
		j, a := journaled[i], acked[i]
		if j.Item != a.Item || j.Worker != a.Worker || !j.Labels.Equal(a.Labels) {
			return fmt.Errorf("position %d: journal has (item %d, worker %d, %v), client acked (item %d, worker %d, %v)",
				i, j.Item, j.Worker, j.Labels, a.Item, a.Worker, a.Labels)
		}
	}
	return nil
}
