package loadgen

import (
	"fmt"
	"os"
	"path/filepath"
	"slices"

	"cpa/internal/answers"
	"cpa/internal/core"
	"cpa/internal/serve"
)

// replayJournal rebuilds the consensus a job's journal encodes: a model
// advanced by PartialFit with the recorded mini-batch boundaries — exactly
// the FitStream computation the daemon performed, in the arrival order the
// journal persisted — and a mirrored core.Publisher driven by the recorded
// publish modes, so incremental publications (which carry untouched items'
// entries forward across rounds) reproduce bit-for-bit too.
//
// A truncated journal (one opening with a base header) is checkpoint-
// anchored: the model is seeded from the base checkpoint next to the
// journal — the daemon's own model at the truncation boundary — and the
// retained suffix replays on top, which by construction equals the
// from-zero replay of the untruncated journal. The returned base is the
// zero value for an untruncated journal.
//
// Returns the post-replay consensus view (nil when no fit marker is
// covered), the suffix's journaled answer sequence, the answers journaled
// but not covered by any fit marker, and the base.
func replayJournal(path string, spec serve.JobSpec) (*core.ConsensusView, []answers.Answer, []answers.Answer, serve.JournalBase, error) {
	var base serve.JournalBase
	fail := func(err error) (*core.ConsensusView, []answers.Answer, []answers.Answer, serve.JournalBase, error) {
		return nil, nil, nil, base, err
	}
	var entries []serve.JournalEntry
	if err := serve.ReadJournal(path, func(e serve.JournalEntry) error {
		entries = append(entries, e)
		return nil
	}); err != nil {
		return fail(err)
	}
	var model *core.Model
	seeded := false
	if len(entries) > 0 && entries[0].Base != nil {
		base = *entries[0].Base
		entries = entries[1:]
		f, err := os.Open(filepath.Join(filepath.Dir(path), serve.BaseCheckpointFileName))
		if err != nil {
			return fail(fmt.Errorf("journal has a base header but its checkpoint is unreadable: %w", err))
		}
		model, err = core.Load(f)
		f.Close()
		if err != nil {
			return fail(err)
		}
		if int64(model.TotalIngested()) != base.Ans || int64(model.BatchRounds()) != base.Fits {
			return fail(fmt.Errorf("base checkpoint covers %d answers / %d fits, journal base says %d / %d",
				model.TotalIngested(), model.BatchRounds(), base.Ans, base.Fits))
		}
		seeded = true
	} else {
		var err error
		if model, err = core.NewModel(spec.Model, spec.Items, spec.Workers, spec.Labels); err != nil {
			return fail(err)
		}
	}

	// Every full publication (and every restart re-anchor, and the very
	// first round, which a cold publisher always publishes full) rebuilds
	// the whole view from the model state of its round, superseding all
	// earlier snapshot history. The mirrored publisher therefore only needs
	// to publish from the last such anchor onward; fit rounds before it
	// replay the model alone. A checkpoint seed is itself an anchor
	// (lastAnchor -1): truncation only ever fires at full-published rounds,
	// so the daemon's live chain was re-anchored full at the base too.
	lastAnchor := -1
	if !seeded {
		lastAnchor = -2
		for k, e := range entries {
			if e.FitN > 0 && lastAnchor == -2 {
				lastAnchor = k // first round: published full by the cold publisher
			}
		}
	}
	for k, e := range entries {
		if (e.FitN > 0 && e.FitFull) || e.Restart {
			lastAnchor = k
		}
	}

	pub := core.NewPublisher(model)
	var view *core.ConsensusView
	var err error
	if seeded && lastAnchor == -1 && model.Fitted() {
		if view, _, err = pub.Publish(true); err != nil {
			return fail(err)
		}
	}
	var acked, pending []answers.Answer
	for k, e := range entries {
		switch {
		case e.Answer != nil:
			acked = append(acked, *e.Answer)
			pending = append(pending, *e.Answer)
		case e.Restart:
			if k == lastAnchor && model.Fitted() {
				if view, _, err = pub.Publish(true); err != nil {
					return fail(err)
				}
			}
		case e.Base != nil:
			return fail(fmt.Errorf("journal base header past the first record"))
		default: // fit marker
			if e.FitN <= 0 || e.FitN > len(pending) {
				return fail(fmt.Errorf("fit marker n=%d with %d pending answers", e.FitN, len(pending)))
			}
			if err := model.PartialFit(pending[:e.FitN]); err != nil {
				return fail(err)
			}
			pending = pending[e.FitN:]
			if k == lastAnchor {
				view, _, err = pub.Publish(true)
			} else if k > lastAnchor {
				view, _, err = pub.Publish(false)
			} else {
				continue
			}
			if err != nil {
				return fail(err)
			}
		}
	}
	if !model.Fitted() {
		return nil, acked, pending, base, nil
	}
	if view == nil {
		// Seeded, fitted, but no anchor or fit marker replayed (an empty
		// retained suffix): the checkpoint state is the served state.
		if view, _, err = pub.Publish(true); err != nil {
			return fail(err)
		}
	}
	return view, acked, pending, base, nil
}

// CheckReplay verifies the served-equals-replay invariant: the snapshot a
// server published for a job must be bit-for-bit reproducible by an offline
// replay of that job's journal (same arrival order, same recorded
// mini-batch boundaries, same model config). A nil error means the served
// consensus is exactly the deterministic function of the durable state —
// the property that makes crash recovery exact and that the PR 2 class of
// arrival-order persistence bugs violates.
func CheckReplay(journalPath string, spec serve.JobSpec, snap *serve.Snapshot) error {
	if snap == nil {
		return fmt.Errorf("no served snapshot to check against")
	}
	view, _, _, _, err := replayJournal(journalPath, spec)
	if err != nil {
		return fmt.Errorf("replaying journal: %w", err)
	}
	if view == nil {
		if snap.Round != 0 {
			return fmt.Errorf("served round %d but journal has no fit markers", snap.Round)
		}
		return nil
	}
	return diffSnapshot(snap, view)
}

// diffSnapshot compares a served snapshot with a replayed consensus view,
// element by element and bit for bit (float confidences included — Go's
// JSON encoding round-trips float64 exactly, and the replay is the same
// deterministic computation the server ran).
func diffSnapshot(snap *serve.Snapshot, view *core.ConsensusView) error {
	if snap.Round != view.Stats.BatchRounds {
		return fmt.Errorf("served round %d, replay %d", snap.Round, view.Stats.BatchRounds)
	}
	if snap.Answers != view.Stats.Answers {
		return fmt.Errorf("served snapshot covers %d answers, replay %d", snap.Answers, view.Stats.Answers)
	}
	if len(snap.Consensus) != len(view.Items) {
		return fmt.Errorf("served %d items, replay %d", len(snap.Consensus), len(view.Items))
	}
	for i, item := range view.Items {
		got := snap.Consensus[i]
		if got.Item != i {
			return fmt.Errorf("item %d: served snapshot indexes it as %d", i, got.Item)
		}
		if !slices.Equal(got.Labels, item.Labels) {
			return fmt.Errorf("item %d: served labels %v, replay %v", i, got.Labels, item.Labels)
		}
		if len(got.Candidates) != len(item.Candidates) {
			return fmt.Errorf("item %d: served %d candidates, replay %d", i, len(got.Candidates), len(item.Candidates))
		}
		for k, c := range item.Candidates {
			if got.Candidates[k].Label != c {
				return fmt.Errorf("item %d candidate %d: served label %d, replay %d", i, k, got.Candidates[k].Label, c)
			}
			if got.Candidates[k].Confidence != item.Confidence[k] {
				return fmt.Errorf("item %d candidate %d (label %d): served confidence %v, replay %v",
					i, k, c, got.Candidates[k].Confidence, item.Confidence[k])
			}
		}
	}
	return nil
}

// checkAckedDurable verifies the backpressure invariant: the journal's
// answer sequence equals the client-side acked sequence exactly — same
// answers, same order, nothing lost to a 429/retry cycle, nothing
// duplicated by one. skipped is the acked prefix a journal truncation
// compacted behind the base checkpoint (0 for an untruncated journal): the
// journal then holds exactly the acked suffix past it.
func checkAckedDurable(journaled, acked []answers.Answer, skipped int64) error {
	if skipped < 0 || skipped > int64(len(acked)) {
		return fmt.Errorf("journal base covers %d answers but the client acked only %d", skipped, len(acked))
	}
	acked = acked[skipped:]
	if len(journaled) != len(acked) {
		return fmt.Errorf("journal holds %d answers, client acked %d past the base", len(journaled), len(acked))
	}
	for i := range acked {
		j, a := journaled[i], acked[i]
		if j.Item != a.Item || j.Worker != a.Worker || !j.Labels.Equal(a.Labels) {
			return fmt.Errorf("position %d: journal has (item %d, worker %d, %v), client acked (item %d, worker %d, %v)",
				i, j.Item, j.Worker, j.Labels, a.Item, a.Worker, a.Labels)
		}
	}
	return nil
}
