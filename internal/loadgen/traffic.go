package loadgen

import (
	"math"
	"math/rand"
	"time"
)

// trafficModel produces the inter-request gaps of a scenario's arrival
// schedule. Gaps are deterministic under the plan seed and are slept
// through the run's Clock — a VirtualClock makes the schedule shape the
// request sequence (burst sizes, idle windows) at zero wall cost, a
// RealClock paces real load.
type trafficModel struct {
	kind  ArrivalKind
	rng   *rand.Rand
	chunk int     // answers per request
	rate  float64 // answers per second

	// bursty state: requests remaining in the current burst.
	burstLeft int
}

func newTrafficModel(sc Scenario, seed int64) *trafficModel {
	return &trafficModel{
		kind:  sc.Arrival,
		rng:   rand.New(rand.NewSource(seed)),
		chunk: sc.chunk(),
		rate:  sc.rate(),
	}
}

// burstSize is the number of back-to-back requests per bursty-mode burst.
const burstSize = 12

// gap returns the pause to insert after one ingestion request.
func (t *trafficModel) gap() time.Duration {
	mean := float64(t.chunk) / t.rate // seconds per request at the mean rate
	switch t.kind {
	case ArrivalPoisson:
		u := t.rng.Float64()
		for u == 0 {
			u = t.rng.Float64()
		}
		return secs(-math.Log(u) * mean)
	case ArrivalBursty:
		if t.burstLeft <= 0 {
			t.burstLeft = burstSize
		}
		t.burstLeft--
		if t.burstLeft > 0 {
			return 0 // within a burst: back-to-back
		}
		// Idle long enough that the mean rate still averages out.
		return secs(mean * burstSize * (1 + t.rng.Float64()))
	case ArrivalTrickle:
		// Deliberately slower than the mean rate so queues stay shallow and
		// the fitter's BatchWait path fires.
		return secs(4 * mean)
	default: // ArrivalSteady
		return secs(mean)
	}
}

func secs(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
