package loadgen

import "testing"

// TestClusterScenarios runs the cluster scenario library — a sharded
// deployment (router + primary + two journal-shipping followers) driven
// through a mid-stream ownership change — on the virtual clock, as plain
// test cases. Every cluster invariant must hold.
func TestClusterScenarios(t *testing.T) {
	for _, name := range ClusterScenarioNames() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			rep, err := RunCluster(ClusterConfig{Scenario: name, Scale: 0.04, Seed: 5, Logf: t.Logf})
			if err != nil {
				t.Fatalf("running %s: %v", name, err)
			}
			for _, iv := range rep.Failed() {
				t.Errorf("invariant %s[%s] failed: %s", iv.Name, iv.Job, iv.Detail)
			}
			if rep.TotalAnswers == 0 {
				t.Fatal("scenario planned no answers")
			}
			if rep.Event.Kind == "" || rep.Event.NewPrimary == "a" || rep.Event.Epoch == 0 {
				t.Fatalf("ownership change did not happen: %+v", rep.Event)
			}
			if name == ClusterHandoffScenario && rep.Retried != 0 {
				t.Errorf("handoff retried %d requests; a planned transfer must park writes, not fail them", rep.Retried)
			}
			t.Log(rep.Summary())
		})
	}
}

// TestRunClusterRejectsUnknownScenario pins the dispatch error path.
func TestRunClusterRejectsUnknownScenario(t *testing.T) {
	if _, err := RunCluster(ClusterConfig{Scenario: "no-such-cluster"}); err == nil {
		t.Fatal("RunCluster accepted an unknown scenario")
	}
}
