package loadgen

import (
	"encoding/json"
	"math"
	"testing"
)

// TestCapacitySweepReport runs a cheap single-scenario sweep end to end and
// pins the report contract: every dimension measured with positive
// throughput, a USL fit with a sane residual where the ladder has enough
// rungs, an auto-tune A/B with final settings inside the swept ranges, and
// the replay/recovery invariants green under auto-tuning. The ≥0.9 A/B
// ratio is deliberately NOT asserted here — wall-clock throughput ratios
// belong to the CI capacity-smoke artifact check, not to -race unit runs on
// loaded machines.
func TestCapacitySweepReport(t *testing.T) {
	if testing.Short() {
		t.Skip("capacity sweep re-runs the stream dozens of times")
	}
	cfg := CapacityConfig{
		Scenarios:      []string{"uniform"},
		Scale:          0.05,
		Seed:           3,
		MaxParallelism: 4,
		MaxBatch:       64,
		MaxClients:     4,
		Warmup:         -1,
		Logf:           t.Logf,
	}
	rep, err := RunCapacity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != CapacitySweepScenario {
		t.Errorf("report kind %q, want %q", rep.Kind, CapacitySweepScenario)
	}
	if len(rep.Scenarios) != 1 {
		t.Fatalf("swept %d scenarios, want 1", len(rep.Scenarios))
	}
	sc := rep.Scenarios[0]
	if sc.StreamAnswers == 0 {
		t.Fatal("empty stream")
	}
	if len(sc.Dimensions) != 3 {
		t.Fatalf("swept %d dimensions, want 3", len(sc.Dimensions))
	}
	for _, d := range sc.Dimensions {
		if len(d.Rungs) < 3 {
			t.Errorf("dimension %s has %d rungs, want >= 3", d.Name, len(d.Rungs))
		}
		for _, rg := range d.Rungs {
			if rg.AnswersPerSec <= 0 || rg.DurationSec <= 0 {
				t.Errorf("dimension %s rung %d: non-positive measurement %+v", d.Name, rg.Setting, rg)
			}
			if rg.Ingest.Count == 0 {
				t.Errorf("dimension %s rung %d: no ingest latency samples", d.Name, rg.Setting)
			}
		}
		if d.BestSetting == 0 || d.BestAnswersPerSec <= 0 {
			t.Errorf("dimension %s reports no best rung", d.Name)
		}
		if d.Fit == nil {
			t.Errorf("dimension %s has no USL fit: %s", d.Name, d.FitError)
			continue
		}
		if d.Fit.Gamma <= 0 || d.Fit.Alpha < 0 || d.Fit.Alpha > 1 || d.Fit.Beta < 0 {
			t.Errorf("dimension %s fit outside USL bounds: %+v", d.Name, d.Fit)
		}
		if math.IsNaN(d.Fit.Residual) || d.Fit.Residual < 0 {
			t.Errorf("dimension %s residual %v", d.Name, d.Fit.Residual)
		}
	}

	ab := sc.AutoTune
	if ab == nil {
		t.Fatal("no auto-tune A/B in the report")
	}
	if ab.BestAnswersPerSec <= 0 || ab.TunedAnswersPerSec <= 0 || ab.Ratio <= 0 {
		t.Fatalf("A/B not measured: %+v", ab)
	}
	if ab.FinalParallelism < 1 || ab.FinalParallelism > cfg.MaxParallelism {
		t.Errorf("tuned Parallelism %d outside [1,%d]", ab.FinalParallelism, cfg.MaxParallelism)
	}
	if ab.FinalBatch < 1 {
		t.Errorf("tuned batch %d", ab.FinalBatch)
	}
	if ab.Tuner == nil {
		t.Error("A/B carries no tuner state")
	}

	if len(sc.Invariants) < 2 {
		t.Fatalf("tuned arm checked %d invariants, want served-equals-replay and crash-recovery-exact", len(sc.Invariants))
	}
	for _, iv := range sc.Invariants {
		if iv.Status != StatusPass {
			t.Errorf("invariant %s[%s]: %s (%s)", iv.Name, iv.Job, iv.Status, iv.Detail)
		}
	}
	if fails := rep.Failed(); len(fails) != 0 {
		t.Errorf("Failed() reports %d failures", len(fails))
	}

	// The report must round-trip as JSON (it rides the cpaload -json array).
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back["kind"] != CapacitySweepScenario {
		t.Errorf("marshalled kind %v", back["kind"])
	}
	t.Logf("\n%s", rep.Summary())
}
