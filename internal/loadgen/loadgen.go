// Package loadgen is the scenario-diverse load and chaos harness for the
// cpaserve consensus daemon (DESIGN.md §7). It composes a crowd model from
// internal/simulate with an arrival/traffic model into named workload
// scenarios (spammer floods, sleeper workers turning adversarial
// mid-stream, bursty arrivals, multi-tenant churn, straggler reconnects,
// random kill -9 chaos points, ...), drives a server closed-loop over HTTP
// with NDJSON ingestion, and — the point of the exercise — verifies
// behavioural invariants rather than just measuring throughput:
//
//   - served-equals-replay: the served consensus must be bit-for-bit
//     reproducible by an offline FitStream-style replay of the journal
//     (arrival order + recorded mini-batch boundaries);
//   - acked-answers-durable: every answer the server acked, and nothing
//     else, appears in the journal in ack order — backpressure may 429 but
//     must never lose or reorder acked data;
//   - crash-recovery-exact: at every chaos kill point the pre-crash
//     snapshot equals the journal replay, and the restarted server carries
//     the stream forward to the same final state;
//   - snapshot-monotonic: concurrent readers never observe a consensus
//     round or answer count regressing, across restarts included;
//   - staleness-bounded: the published snapshot trails the fitter by a
//     bounded number of rounds, and catches up exactly at quiesce.
//
// The harness is importable: Run takes a t-friendly Config, defaults to an
// in-process httptest server with a virtual clock for arrival pacing, and
// returns a machine-readable Report, so every scenario doubles as a
// `go test ./internal/loadgen` integration case and cmd/cpaload can emit
// the same JSON schema family as cpabench for the perf trajectory.
//
// Workload construction is deterministic under Config.Seed. Server timing
// (which answers share a mini-batch under free-running traffic) is not —
// the invariants are chosen to hold for every legal timing.
package loadgen

import (
	"sync"
	"time"
)

// Clock paces the arrival schedule. The runner only ever sleeps through it;
// latencies are always measured in real time.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// RealClock paces arrivals in wall-clock time (cpaload -rate).
type RealClock struct{}

// Now returns the wall-clock time.
func (RealClock) Now() time.Time { return time.Now() }

// Sleep blocks for d.
func (RealClock) Sleep(d time.Duration) { time.Sleep(d) }

// VirtualClock advances instantly on Sleep, so a scenario's arrival
// schedule (gaps, bursts, idle periods) shapes the request sequence without
// costing wall-clock time — this is what makes every scenario a fast
// `go test` case.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtualClock starts a virtual clock at a fixed epoch so schedules are
// reproducible run to run.
func NewVirtualClock() *VirtualClock {
	return &VirtualClock{now: time.Unix(1_700_000_000, 0)}
}

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances the virtual time by d without blocking.
func (c *VirtualClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Config parameterises one harness run. The zero value is not usable: at
// minimum Scenario must name an entry of Scenarios().
type Config struct {
	// Scenario is the name of the workload to run (see Scenarios()).
	Scenario string

	// Scale shrinks the scenario's dataset profile as in datasets.Load.
	// Default 0.06 — small enough for CI, large enough for meaningful P/R.
	Scale float64

	// Seed drives workload construction (crowd, arrival order, kill
	// points) deterministically. Default 1.
	Seed int64

	// BaseURL points the harness at an external cpaserve instance. Empty
	// runs an in-process httptest server. Chaos scenarios and the
	// journal-replay invariants require the in-process mode (the harness
	// needs to kill the server and read its journals); against an external
	// target those invariants are reported as skipped.
	BaseURL string

	// DataDir is the in-process server's data directory. Empty uses a
	// temporary directory removed after the run; a caller-provided
	// directory is kept (tests hand in t.TempDir() to inspect journals).
	DataDir string

	// Clock paces the arrival schedule. Nil uses a VirtualClock (arrival
	// gaps shape the schedule but cost no wall time); cpaload installs
	// RealClock when a real-time rate is requested.
	Clock Clock

	// Readers is the number of background goroutines polling the primary
	// tenant's consensus throughout the run (monotonicity witnesses and
	// read-latency samples). Default 2; negative disables.
	Readers int

	// Logf receives progress lines (t.Logf-compatible). Nil is silent.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 0.06
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Clock == nil {
		c.Clock = NewVirtualClock()
	}
	if c.Readers == 0 {
		c.Readers = 2
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}
