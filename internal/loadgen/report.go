package loadgen

import (
	"fmt"
	"strings"

	"cpa/internal/serve"
)

// Invariant statuses.
const (
	StatusPass    = "pass"
	StatusFail    = "fail"
	StatusSkipped = "skipped"
)

// InvariantResult is one behavioural check's outcome.
type InvariantResult struct {
	// Name identifies the invariant class: served-equals-replay,
	// acked-answers-durable, crash-recovery-exact, snapshot-monotonic,
	// staleness-bounded, no-job-failure.
	Name   string `json:"name"`
	Job    string `json:"job,omitempty"`
	Status string `json:"status"`
	Detail string `json:"detail,omitempty"`
}

// TenantPhasePR is one tenant's consensus quality at a phase boundary.
type TenantPhasePR struct {
	Job       string  `json:"job"`
	Round     int     `json:"round"`
	Answers   int     `json:"answers"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
	// DriftItems counts items whose served label set changed since the
	// previous phase boundary.
	DriftItems int `json:"drift_items"`
}

// PhaseStats aggregates one phase of the run.
type PhaseStats struct {
	Name          string      `json:"name"`
	Answers       int         `json:"answers"`
	Requests      int64       `json:"requests"`
	DurationSec   float64     `json:"duration_seconds"`
	AnswersPerSec float64     `json:"answers_per_second"`
	Ingest        HistSummary `json:"ingest_latency"`
	Reads         HistSummary `json:"read_latency"`
	// Publish summarises the server-side snapshot-publication latencies of
	// the phase, diffed from the cumulative per-job log₂ bucket counters the
	// serve layer exports — the behavioural witness that publish cost stays
	// O(batch) as streams grow (a linear-cost regression shows up here as
	// bucket drift across phases). MaxMs is the run-wide maximum observed so
	// far, not a per-phase value (the exported counters are cumulative).
	Publish HistSummary     `json:"publish_latency"`
	PR      []TenantPhasePR `json:"pr"`
}

// KillEvent records one chaos kill point.
type KillEvent struct {
	AtAnswers int    `json:"at_answers"`
	Phase     string `json:"phase"`
	// RecoveredJobs is how many jobs the restarted registry recovered.
	RecoveredJobs int `json:"recovered_jobs"`
}

// TenantReport describes one job of the run.
type TenantReport struct {
	ID      string `json:"id"`
	Profile string `json:"profile"`
	Items   int    `json:"items"`
	Workers int    `json:"workers"`
	Labels  int    `json:"labels"`
	Answers int    `json:"answers"`
	Deleted bool   `json:"deleted,omitempty"`

	// Spec and JournalPath expose the replay inputs to callers (tests);
	// they are not part of the JSON schema.
	Spec        serve.JobSpec `json:"-"`
	JournalPath string        `json:"-"`
}

// Report is the machine-readable outcome of one scenario run — the
// cpaload -json row family, sharing the envelope conventions of
// cpabench -json (generated_at / seed / go_version / gomaxprocs) so both
// artifacts live side by side in CI.
//
// A cpaload -json array can mix three row shapes: these scenario rows,
// ClusterReport rows (cluster-* scenarios), and CapacityReport rows
// (capacity-sweep), the latter discriminated by "kind": "capacity-sweep".
// The latency-histogram fields are one family across all of them: the
// per-phase ingest_latency / read_latency / publish_latency summaries here
// and the per-rung ingest_latency of a capacity row are the same
// HistSummary shape, and a capacity row's usl_fit (gamma / alpha / beta /
// knee / residual per swept dimension) plus its auto_tune A/B block are
// the capacity-side additions to the schema — see CapacityReport.
type Report struct {
	GeneratedAt string  `json:"generated_at"`
	Scenario    string  `json:"scenario"`
	Description string  `json:"description"`
	Scale       float64 `json:"scale"`
	Seed        int64   `json:"seed"`
	GoVersion   string  `json:"go_version"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	// Target is "in-process" or the external base URL.
	Target string `json:"target"`

	Tenants    []TenantReport    `json:"tenants"`
	Phases     []PhaseStats      `json:"phases"`
	Kills      []KillEvent       `json:"kills,omitempty"`
	Invariants []InvariantResult `json:"invariants"`

	TotalAnswers int     `json:"total_answers"`
	Requests     int64   `json:"requests"`
	Rejected429  int64   `json:"rejected_429"`
	ReadErrors   int64   `json:"read_errors"`
	MaxStaleness int     `json:"max_staleness_rounds"`
	DurationSec  float64 `json:"duration_seconds"`

	// FinalSnapshots holds each surviving (or pre-delete) tenant's last
	// served snapshot, for callers that re-check invariants; not part of
	// the JSON schema.
	FinalSnapshots map[string]*serve.Snapshot `json:"-"`
	// DataDir is the server data directory the run used (in-process mode).
	DataDir string `json:"-"`
}

// Failed returns the invariants that failed.
func (r *Report) Failed() []InvariantResult {
	var out []InvariantResult
	for _, iv := range r.Invariants {
		if iv.Status == StatusFail {
			out = append(out, iv)
		}
	}
	return out
}

// Summary renders a short human-readable digest for CLI output.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %-14s %6d answers  %5d req  %4d×429  %.1fs",
		r.Scenario, r.TotalAnswers, r.Requests, r.Rejected429, r.DurationSec)
	if len(r.Kills) > 0 {
		fmt.Fprintf(&b, "  kills=%d", len(r.Kills))
	}
	pass, fail, skip := 0, 0, 0
	for _, iv := range r.Invariants {
		switch iv.Status {
		case StatusPass:
			pass++
		case StatusFail:
			fail++
		default:
			skip++
		}
	}
	fmt.Fprintf(&b, "  invariants: %d pass", pass)
	if skip > 0 {
		fmt.Fprintf(&b, ", %d skipped", skip)
	}
	if fail > 0 {
		fmt.Fprintf(&b, ", %d FAIL", fail)
	}
	for _, p := range r.Phases {
		for _, pr := range p.PR {
			fmt.Fprintf(&b, "\n  phase %-12s %-16s round %4d  P=%.3f R=%.3f F1=%.3f drift=%d  p50=%.2fms p99=%.2fms pub50=%.2fms",
				p.Name, pr.Job, pr.Round, pr.Precision, pr.Recall, pr.F1, pr.DriftItems,
				p.Ingest.P50Ms, p.Ingest.P99Ms, p.Publish.P50Ms)
		}
	}
	for _, iv := range r.Failed() {
		fmt.Fprintf(&b, "\n  FAIL %s[%s]: %s", iv.Name, iv.Job, iv.Detail)
	}
	return b.String()
}
