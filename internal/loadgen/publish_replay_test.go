package loadgen

import (
	"math/rand"
	"testing"
	"time"

	"cpa/internal/answers"
	"cpa/internal/core"
	"cpa/internal/labelset"
	"cpa/internal/serve"
)

// TestReplayMirrorsIncrementalPublishes pins the journal-replay contract of
// the incremental snapshot engine: a fitter that is backlogged publishes
// incremental snapshots (mode recorded per fit marker), a crash pins one of
// them, and CheckReplay must still reproduce it bit-for-bit from the
// journal alone — including across a recovery, whose restart marker resets
// the mirrored publisher exactly like the server's cold re-anchor.
func TestReplayMirrorsIncrementalPublishes(t *testing.T) {
	dir := t.TempDir()
	spec := serve.JobSpec{
		ID: "mirror", Items: 60, Workers: 12, Labels: 6,
		Model: core.Config{Seed: 3, BatchSize: 32},
	}
	rng := rand.New(rand.NewSource(11))
	stream := make([]answers.Answer, 1500)
	for k := range stream {
		var ls labelset.Set
		ls.Add(rng.Intn(spec.Labels))
		if rng.Intn(2) == 0 {
			ls.Add(rng.Intn(spec.Labels))
		}
		stream[k] = answers.Answer{Item: rng.Intn(spec.Items), Worker: rng.Intn(spec.Workers), Labels: ls}
	}
	journalPath := serve.JournalPath(dir, spec.ID)

	waitFitted := func(job *serve.Job, want int64) {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for job.Stats().FittedAnswers < want {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %d fitted answers (have %d)", want, job.Stats().FittedAnswers)
			}
			time.Sleep(time.Millisecond)
		}
	}
	quiesce := func(job *serve.Job) {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for {
			st := job.Stats()
			if st.Error != "" {
				t.Fatalf("job failed: %s", st.Error)
			}
			if st.FittedAnswers == int64(len(stream)) && st.SnapshotRound == int(st.FitRounds) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("job did not quiesce: %+v", st)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Phase 1: ingest the whole stream at once so the fitter runs deep in
	// backlog, then crash mid-drain: the pinned snapshot is an incremental
	// publication.
	reg, err := serve.Open(serve.Config{Dir: dir, SaveEvery: 1 << 30, BatchWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	job, err := reg.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Ingest(stream); err != nil {
		t.Fatal(err)
	}
	waitFitted(job, 600)
	reg.CrashAll()
	pre := job.Snapshot()
	if pre.Round == 0 {
		t.Fatal("no rounds before crash")
	}

	incMarkers, fullMarkers := 0, 0
	if err := serve.ReadJournal(journalPath, func(e serve.JournalEntry) error {
		if e.FitN > 0 {
			if e.FitFull {
				fullMarkers++
			} else {
				incMarkers++
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if incMarkers == 0 {
		t.Fatalf("expected incremental publish markers under backlog (got %d inc / %d full)", incMarkers, fullMarkers)
	}
	if err := CheckReplay(journalPath, spec, pre); err != nil {
		t.Fatalf("mid-backlog incremental snapshot not reproducible from journal: %v", err)
	}

	// Phase 2: recover (restart marker + full re-anchor), let the fitter
	// work through more of the requeued backlog, and crash again: the
	// pinned snapshot now sits past a restart marker, so replay must
	// mirror the cold re-anchor and the incremental publishes after it.
	// (CheckReplay is only meaningful against a frozen journal — after a
	// crash or at quiesce — so the re-anchor itself is verified through
	// this second crash, not by sampling a live fitter.)
	reg2, err := serve.Open(serve.Config{Dir: dir, SaveEvery: 1 << 30, BatchWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	job2, ok := reg2.Get(spec.ID)
	if !ok {
		t.Fatal("job not recovered")
	}
	waitFitted(job2, 1000)
	reg2.CrashAll()
	if err := CheckReplay(journalPath, spec, job2.Snapshot()); err != nil {
		t.Fatalf("snapshot after recovery+backlog not reproducible: %v", err)
	}

	// Phase 3: recover once more and drain fully; the quiesced snapshot is
	// a caught-up full publication and must replay too.
	reg3, err := serve.Open(serve.Config{Dir: dir, SaveEvery: 1 << 30, BatchWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer reg3.Close()
	job3, ok := reg3.Get(spec.ID)
	if !ok {
		t.Fatal("job not recovered after second crash")
	}
	quiesce(job3)
	if err := CheckReplay(journalPath, spec, job3.Snapshot()); err != nil {
		t.Fatalf("quiesced snapshot not reproducible: %v", err)
	}
}
