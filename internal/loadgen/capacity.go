package loadgen

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cpa/internal/answers"
	"cpa/internal/capacity"
	"cpa/internal/core"
	"cpa/internal/serve"
)

// CapacitySweepScenario is the cpaload -scenario name that dispatches
// RunCapacity instead of the closed-loop harness. It is not part of
// "-scenario all": a sweep re-runs its scenarios dozens of times.
const CapacitySweepScenario = "capacity-sweep"

// abMeasuredPasses / abWarmupPasses fix the A/B measurement protocol: both
// arms ingest the stream abWarmupPasses times unmeasured (the auto-tuned arm
// spends this converging from its deliberately bad start; the static arm
// gets the identical allowance), then abMeasuredPasses times on the clock.
const (
	abWarmupPasses   = 3
	abMeasuredPasses = 2
)

// tuneUnit is the answers-per-load-unit normalization of the mini-batch
// dimension, matching the serve tuner's ladder base so the sweep's fitted
// knee and the auto-tuner's speak the same units.
const tuneUnit = 16

// CapacityConfig parameterises one capacity sweep (RunCapacity).
type CapacityConfig struct {
	// Scenarios names the workload scenarios to sweep. Default
	// {"uniform", "partial-heavy"} — two profiles with different
	// per-answer fit cost.
	Scenarios []string

	// Scale / Seed are as in Config. Defaults 0.05 / 1.
	Scale float64
	Seed  int64

	// MaxParallelism caps the Parallelism ladder. Default
	// max(4, GOMAXPROCS) — at least three rungs so the USL fit is
	// determined even on two-core CI machines, and deliberately allowed
	// past the core count (the retrograde region is data, not waste).
	MaxParallelism int

	// MaxBatch caps the mini-batch ladder in answers. Default 256.
	MaxBatch int

	// MaxClients caps the offered-concurrency ladder (concurrent ingestion
	// clients). Default 8.
	MaxClients int

	// Warmup is how many unmeasured passes of the stream precede each
	// measured rung. Default 1; negative disables (tests).
	Warmup int

	// DataDir roots the per-rung server directories. Empty uses a
	// temporary directory removed after the run.
	DataDir string

	// Logf receives progress lines. Nil is silent.
	Logf func(format string, args ...any)
}

func (c CapacityConfig) withDefaults() CapacityConfig {
	if len(c.Scenarios) == 0 {
		c.Scenarios = []string{"uniform", "partial-heavy"}
	}
	if c.Scale == 0 {
		c.Scale = 0.12
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxParallelism == 0 {
		c.MaxParallelism = max(4, runtime.GOMAXPROCS(0))
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 256
	}
	if c.MaxClients == 0 {
		c.MaxClients = 8
	}
	if c.Warmup == 0 {
		c.Warmup = 1
	} else if c.Warmup < 0 {
		c.Warmup = 0
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// CapacityRung is one measured (setting, steady-state throughput) sample.
type CapacityRung struct {
	// Setting is the knob value in its natural units (goroutines, answers
	// per mini-batch, concurrent clients); N is the same point in the
	// dimension's USL load units (Setting / Unit).
	Setting       int         `json:"setting"`
	N             float64     `json:"n"`
	Answers       int         `json:"answers"`
	DurationSec   float64     `json:"duration_seconds"`
	AnswersPerSec float64     `json:"answers_per_second"`
	Ingest        HistSummary `json:"ingest_latency"`
}

// CapacityDimension is one swept knob: its measured ladder and the USL
// curve fitted over it.
type CapacityDimension struct {
	// Name is "parallelism", "batch", or "concurrency".
	Name string `json:"name"`
	// Unit is the answers-per-load-unit normalization (tuneUnit for the
	// batch dimension, 1 otherwise).
	Unit  int            `json:"unit"`
	Rungs []CapacityRung `json:"rungs"`
	// Fit is the USL curve over (N, AnswersPerSec); FitError explains its
	// absence (too few rungs survived).
	Fit      *capacity.Fit `json:"usl_fit,omitempty"`
	FitError string        `json:"fit_error,omitempty"`
	// BestSetting / BestAnswersPerSec name the best *measured* rung — the
	// hand-swept optimum the auto-tune A/B is judged against.
	BestSetting       int     `json:"best_setting"`
	BestAnswersPerSec float64 `json:"best_answers_per_second"`
}

// AutoTuneAB is the measured claim of the capacity work: a job started at
// deliberately bad settings with AutoTune on, run under the identical
// measurement protocol as a job pinned at the best hand-swept settings.
type AutoTuneAB struct {
	StartParallelism int `json:"start_parallelism"`
	StartBatch       int `json:"start_batch"`
	FinalParallelism int `json:"final_parallelism"`
	FinalBatch       int `json:"final_batch"`
	BestParallelism  int `json:"best_parallelism"`
	BestBatch        int `json:"best_batch"`
	BestClients      int `json:"best_clients"`

	BestAnswersPerSec  float64 `json:"best_answers_per_second"`
	TunedAnswersPerSec float64 `json:"auto_tune_answers_per_second"`
	// Ratio is tuned/best steady-state throughput; CI asserts ≥ 0.9.
	Ratio float64 `json:"ratio"`

	// Tuner is the auto-tuned job's final live fit state (/statsz view).
	Tuner *serve.AutoTuneStats `json:"tuner,omitempty"`
}

// CapacityScenarioReport is one scenario's sweep: the three dimensions,
// the A/B, and the behavioural invariants re-checked under auto-tuning.
type CapacityScenarioReport struct {
	Scenario      string              `json:"scenario"`
	Profile       string              `json:"profile"`
	StreamAnswers int                 `json:"stream_answers"`
	Dimensions    []CapacityDimension `json:"dimensions"`
	AutoTune      *AutoTuneAB         `json:"auto_tune"`
	Invariants    []InvariantResult   `json:"invariants"`
}

// CapacityReport is the cpaload -json row a capacity sweep emits. It shares
// the envelope conventions of the scenario Report (generated_at / seed /
// go_version / gomaxprocs) and carries kind "capacity-sweep" so mixed report
// arrays stay machine-separable.
type CapacityReport struct {
	GeneratedAt string  `json:"generated_at"`
	Kind        string  `json:"kind"`
	Scenario    string  `json:"scenario"`
	Scale       float64 `json:"scale"`
	Seed        int64   `json:"seed"`
	GoVersion   string  `json:"go_version"`
	GOMAXPROCS  int     `json:"gomaxprocs"`

	Scenarios []CapacityScenarioReport `json:"scenarios"`

	DurationSec float64 `json:"duration_seconds"`
}

// Failed returns the invariants that failed, across all swept scenarios.
func (r *CapacityReport) Failed() []InvariantResult {
	var out []InvariantResult
	for _, sc := range r.Scenarios {
		for _, iv := range sc.Invariants {
			if iv.Status == StatusFail {
				out = append(out, iv)
			}
		}
	}
	return out
}

// Summary renders a short human-readable digest for CLI output.
func (r *CapacityReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "capacity-sweep  %d scenarios  %.1fs", len(r.Scenarios), r.DurationSec)
	for _, sc := range r.Scenarios {
		fmt.Fprintf(&b, "\n  %s (%d answers/pass)", sc.Scenario, sc.StreamAnswers)
		for _, d := range sc.Dimensions {
			if d.Fit != nil {
				fmt.Fprintf(&b, "\n    %-12s best %d @ %.0f ans/s   γ=%.1f α=%.3f β=%.5f knee=%.1f resid=%.3f",
					d.Name, d.BestSetting, d.BestAnswersPerSec,
					d.Fit.Gamma, d.Fit.Alpha, d.Fit.Beta, d.Fit.Knee, d.Fit.Residual)
			} else {
				fmt.Fprintf(&b, "\n    %-12s best %d @ %.0f ans/s   (no fit: %s)",
					d.Name, d.BestSetting, d.BestAnswersPerSec, d.FitError)
			}
		}
		if ab := sc.AutoTune; ab != nil {
			fmt.Fprintf(&b, "\n    auto-tune    P=%d bs=%d → P=%d bs=%d   %.0f vs best %.0f ans/s   ratio=%.3f",
				ab.StartParallelism, ab.StartBatch, ab.FinalParallelism, ab.FinalBatch,
				ab.TunedAnswersPerSec, ab.BestAnswersPerSec, ab.Ratio)
		}
		for _, iv := range sc.Invariants {
			if iv.Status == StatusFail {
				fmt.Fprintf(&b, "\n    FAIL %s[%s]: %s", iv.Name, iv.Job, iv.Detail)
			}
		}
	}
	return b.String()
}

// RunCapacity sweeps each scenario's deterministic answer stream across
// ladders of Parallelism, mini-batch size and offered ingestion concurrency,
// measures per-rung steady-state throughput and ingest latency, fits the USL
// per dimension (densifying around the emerging knee), and runs the
// auto-tune A/B. Invariant failures are data (Report.Failed()); an error
// return means the sweep itself could not complete.
//
// The sweep drives the serving core directly (journal, queue, fitter) rather
// than over HTTP: capacity here is the fitter's, and the closed-loop HTTP
// surface is what Run already exercises.
func RunCapacity(cfg CapacityConfig) (*CapacityReport, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	r := &capRunner{cfg: cfg, logf: cfg.Logf}
	if r.dir = cfg.DataDir; r.dir == "" {
		dir, err := os.MkdirTemp("", "cpacap-*")
		if err != nil {
			return nil, err
		}
		r.dir, r.own = dir, true
	}
	defer func() {
		if r.own {
			os.RemoveAll(r.dir)
		}
	}()

	rep := &CapacityReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Kind:        CapacitySweepScenario,
		Scenario:    CapacitySweepScenario,
		Scale:       cfg.Scale,
		Seed:        cfg.Seed,
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	for _, name := range cfg.Scenarios {
		scr, err := r.sweepScenario(name)
		if err != nil {
			return nil, fmt.Errorf("loadgen: capacity sweep %q: %w", name, err)
		}
		rep.Scenarios = append(rep.Scenarios, *scr)
	}
	rep.DurationSec = time.Since(start).Seconds()
	return rep, nil
}

type capRunner struct {
	cfg  CapacityConfig
	dir  string
	own  bool
	logf func(string, ...any)
	rung int // monotone counter naming per-rung directories
	// tunedInvs holds the invariant results of the latest tuned A/B arm,
	// filled by the checkTunedArm hook.
	tunedInvs []InvariantResult
}

// capDim describes one sweep dimension: how a setting (in load units) maps
// onto the job's model config and the drive protocol.
type capDim struct {
	name    string
	unit    int
	maxUnit int
	apply   func(m *core.Config, clients *int, units int)
}

func (r *capRunner) dims() []capDim {
	return []capDim{
		{
			name: "parallelism", unit: 1, maxUnit: r.cfg.MaxParallelism,
			apply: func(m *core.Config, _ *int, u int) { m.Parallelism = u },
		},
		{
			name: "batch", unit: tuneUnit, maxUnit: max(1, r.cfg.MaxBatch/tuneUnit),
			apply: func(m *core.Config, _ *int, u int) { m.BatchSize = u * tuneUnit },
		},
		{
			name: "concurrency", unit: 1, maxUnit: r.cfg.MaxClients,
			apply: func(_ *core.Config, clients *int, u int) { *clients = u },
		},
	}
}

func (r *capRunner) sweepScenario(name string) (*CapacityScenarioReport, error) {
	sc, err := GetScenario(name)
	if err != nil {
		return nil, err
	}
	pl, err := buildPlan(sc, r.cfg.Scale, r.cfg.Seed)
	if err != nil {
		return nil, err
	}
	tp := pl.tenants[0]
	scr := &CapacityScenarioReport{
		Scenario: name, Profile: tp.profile, StreamAnswers: len(tp.stream),
	}
	for _, d := range r.dims() {
		dim, err := r.sweepDimension(sc, tp, d)
		if err != nil {
			return nil, err
		}
		scr.Dimensions = append(scr.Dimensions, *dim)
	}
	ab, invs, err := r.runAB(sc, tp, scr.Dimensions)
	if err != nil {
		return nil, err
	}
	scr.AutoTune = ab
	scr.Invariants = invs
	return scr, nil
}

// sweepDimension probes the dimension's log ladder, fits, then densifies
// around the fitted knee and refits.
func (r *capRunner) sweepDimension(sc Scenario, tp *tenantPlan, d capDim) (*CapacityDimension, error) {
	dim := &CapacityDimension{Name: d.name, Unit: d.unit}
	ladder := capacity.Plan(1, d.maxUnit)
	var obs []capacity.Observation
	probe := func(units int) error {
		model, clients := tp.spec.Model, 1
		d.apply(&model, &clients, units)
		if model.AnswerWindow > 0 && model.BatchSize > model.AnswerWindow {
			return nil // core rejects a batch wider than the answer window
		}
		res, err := r.runSetting(sc, tp, model, clients, serve.Config{}, r.cfg.Warmup, 1,
			fmt.Sprintf("%s-%s-%d", sc.Name, d.name, units*d.unit))
		if err != nil {
			return err
		}
		x := float64(res.answers) / res.dur.Seconds()
		r.logf("capacity: %s %s=%d: %.0f answers/s", sc.Name, d.name, units*d.unit, x)
		dim.Rungs = append(dim.Rungs, CapacityRung{
			Setting: units * d.unit, N: float64(units),
			Answers: res.answers, DurationSec: res.dur.Seconds(),
			AnswersPerSec: x, Ingest: res.ingest,
		})
		obs = append(obs, capacity.Observation{N: float64(units), X: x})
		return nil
	}
	for _, u := range ladder {
		if err := probe(u); err != nil {
			return nil, err
		}
	}
	fit, err := capacity.FitUSL(obs, r.cfg.Seed)
	if err == nil {
		probed := make([]int, 0, len(dim.Rungs))
		for _, rg := range dim.Rungs {
			probed = append(probed, int(rg.N))
		}
		for _, u := range capacity.Densify(fit.Knee, probed, 1, d.maxUnit) {
			if perr := probe(u); perr != nil {
				return nil, perr
			}
		}
		fit, err = capacity.FitUSL(obs, r.cfg.Seed)
	}
	if err != nil {
		dim.FitError = err.Error()
	} else {
		dim.Fit = &fit
	}
	for _, rg := range dim.Rungs {
		if rg.AnswersPerSec > dim.BestAnswersPerSec {
			dim.BestSetting, dim.BestAnswersPerSec = rg.Setting, rg.AnswersPerSec
		}
	}
	return dim, nil
}

// runAB measures the auto-tune A/B: a job pinned at the best hand-swept
// settings versus a job started at the worst reasonable settings with the
// tuner on, under the identical warmup + measured-passes protocol. The
// tuned arm is then crash-checked: served≡replay from its journal (tune
// annotations included) and bit-exact recovery by an AutoTune-off registry.
func (r *capRunner) runAB(sc Scenario, tp *tenantPlan, dims []CapacityDimension) (*AutoTuneAB, []InvariantResult, error) {
	ab := &AutoTuneAB{
		StartParallelism: 1, StartBatch: tuneUnit,
		BestParallelism: tp.spec.Model.Parallelism, BestBatch: tp.spec.Model.BatchSize, BestClients: 1,
	}
	for _, d := range dims {
		if d.BestSetting == 0 {
			continue
		}
		switch d.Name {
		case "parallelism":
			ab.BestParallelism = d.BestSetting
		case "batch":
			ab.BestBatch = d.BestSetting
		case "concurrency":
			ab.BestClients = d.BestSetting
		}
	}

	// Arm A: pinned at the best hand-swept rung of every dimension.
	best := tp.spec.Model
	best.Parallelism, best.BatchSize = ab.BestParallelism, ab.BestBatch
	bestRes, err := r.runSetting(sc, tp, best, ab.BestClients, serve.Config{},
		abWarmupPasses, abMeasuredPasses, sc.Name+"-ab-best")
	if err != nil {
		return nil, nil, err
	}
	ab.BestAnswersPerSec = float64(bestRes.answers) / bestRes.dur.Seconds()

	// Arm B: bad start, tuner on, window 1 for the fastest adaptation.
	tuned := tp.spec.Model
	tuned.Parallelism, tuned.BatchSize = ab.StartParallelism, ab.StartBatch
	scfg := serve.Config{AutoTune: true, AutoTuneWindow: 1, AutoTuneMaxParallelism: r.cfg.MaxParallelism}
	dir := filepath.Join(r.dir, fmt.Sprintf("r%d-%s-ab-tuned", r.rung, sc.Name))
	r.rung++
	tunedRes, err := r.runSettingAt(sc, tp, tuned, ab.BestClients, scfg, abWarmupPasses, abMeasuredPasses, dir, r.checkTunedArm(tp, tuned, ab))
	if err != nil {
		return nil, nil, err
	}
	ab.TunedAnswersPerSec = float64(tunedRes.answers) / tunedRes.dur.Seconds()
	if ab.BestAnswersPerSec > 0 {
		ab.Ratio = ab.TunedAnswersPerSec / ab.BestAnswersPerSec
	}
	r.logf("capacity: %s auto-tune A/B: %.0f vs %.0f answers/s (ratio %.3f)",
		sc.Name, ab.TunedAnswersPerSec, ab.BestAnswersPerSec, ab.Ratio)
	return ab, r.tunedInvs, nil
}

// checkTunedArm returns the post-measurement hook run on the tuned arm's
// live registry: capture tuner state, hard-kill, replay-check, recover.
func (r *capRunner) checkTunedArm(tp *tenantPlan, startModel core.Config, ab *AutoTuneAB) func(reg *serve.Registry, job *serve.Job, dir string) error {
	return func(reg *serve.Registry, job *serve.Job, dir string) error {
		st := job.Stats()
		if st.AutoTune == nil {
			return fmt.Errorf("auto-tuned job reports no tuner state")
		}
		ab.Tuner = st.AutoTune
		ab.FinalParallelism = st.AutoTune.Parallelism.Current
		ab.FinalBatch = st.AutoTune.BatchSize.Current

		pre := job.Snapshot()
		reg.CrashAll()

		spec := tp.spec
		spec.Model = startModel
		r.tunedInvs = r.tunedInvs[:0]
		add := func(name string, err error) {
			iv := InvariantResult{Name: name, Job: spec.ID, Status: StatusPass}
			if err != nil {
				iv.Status, iv.Detail = StatusFail, err.Error()
			}
			r.tunedInvs = append(r.tunedInvs, iv)
		}
		add("served-equals-replay", CheckReplay(serve.JournalPath(dir, spec.ID), spec, pre))

		// Recovery by an AutoTune-off registry doubles as the downgrade-
		// tolerance check: tune annotations must be inert to consumers that
		// have never heard of them.
		reg2, err := serve.Open(serve.Config{Dir: dir, BatchWait: 2 * time.Millisecond})
		if err != nil {
			return fmt.Errorf("reopening tuned arm: %w", err)
		}
		defer reg2.Close()
		job2, ok := reg2.Get(spec.ID)
		if !ok {
			add("crash-recovery-exact", fmt.Errorf("job %s not recovered", spec.ID))
			return nil
		}
		add("crash-recovery-exact", sameSnapshot(pre, job2.Snapshot()))
		return nil
	}
}

// sameSnapshot compares two served snapshots bit for bit.
func sameSnapshot(want, got *serve.Snapshot) error {
	if want == nil || got == nil {
		return fmt.Errorf("missing snapshot (pre=%v post=%v)", want != nil, got != nil)
	}
	if want.Round != got.Round || want.Answers != got.Answers {
		return fmt.Errorf("recovered round %d/%d answers, want %d/%d",
			got.Round, got.Answers, want.Round, want.Answers)
	}
	if !reflect.DeepEqual(want.Consensus, got.Consensus) {
		return fmt.Errorf("recovered consensus differs from pre-crash snapshot")
	}
	return nil
}

type rungResult struct {
	answers int
	dur     time.Duration
	ingest  HistSummary
}

// runSetting measures one rung in a fresh per-rung directory, removed after.
func (r *capRunner) runSetting(sc Scenario, tp *tenantPlan, model core.Config, clients int, scfg serve.Config, warmup, measured int, tag string) (*rungResult, error) {
	dir := filepath.Join(r.dir, fmt.Sprintf("r%d-%s", r.rung, tag))
	r.rung++
	return r.runSettingAt(sc, tp, model, clients, scfg, warmup, measured, dir, nil)
}

// runSettingAt is runSetting with an explicit directory and an optional
// post-measurement hook that receives the still-open registry (the tuned
// arm's crash and replay checks). The directory is removed on return.
func (r *capRunner) runSettingAt(sc Scenario, tp *tenantPlan, model core.Config, clients int, scfg serve.Config, warmup, measured int, dir string, after func(*serve.Registry, *serve.Job, string) error) (*rungResult, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	scfg.Dir = dir
	if scfg.BatchWait == 0 {
		scfg.BatchWait = 2 * time.Millisecond
	}
	if scfg.SaveEvery == 0 {
		// No mid-run checkpoints: rung cost is ingest + fit + journal, and
		// the tuned arm's recovery check replays its journal from scratch.
		scfg.SaveEvery = 1 << 20
	}
	reg, err := serve.Open(scfg)
	if err != nil {
		return nil, err
	}
	closed := false
	defer func() {
		if !closed {
			reg.Close()
		}
	}()
	spec := tp.spec
	spec.Model = model
	job, err := reg.Create(spec)
	if err != nil {
		return nil, err
	}

	var done int64
	pass := func(h *hist) error {
		if err := ingestPass(job, tp.stream, sc.chunk(), clients, h); err != nil {
			return err
		}
		done += int64(len(tp.stream))
		return quiesceJob(job, done)
	}
	for p := 0; p < warmup; p++ {
		if err := pass(nil); err != nil {
			return nil, err
		}
	}
	h := &hist{}
	start := time.Now()
	for p := 0; p < measured; p++ {
		if err := pass(h); err != nil {
			return nil, err
		}
	}
	res := &rungResult{
		answers: measured * len(tp.stream),
		dur:     time.Since(start),
		ingest:  h.summary(),
	}
	if res.dur <= 0 {
		res.dur = time.Nanosecond
	}
	if after != nil {
		if err := after(reg, job, dir); err != nil {
			return nil, err
		}
		closed = true // after crashed/closed the registry itself
		return res, nil
	}
	if err := reg.Close(); err != nil {
		return nil, err
	}
	closed = true
	return res, nil
}

// ingestPass pushes the whole stream through Job.Ingest from `clients`
// concurrent goroutines, chunked as the scenario would, retrying queue-full
// backpressure. Chunks are claimed off a shared counter, so higher client
// counts interleave the arrival order — legal by construction (the journal
// records whatever order was acked, and every invariant holds for every
// legal order).
func ingestPass(job *serve.Job, stream []answers.Answer, chunk, clients int, h *hist) error {
	if clients < 1 {
		clients = 1
	}
	nChunks := (len(stream) + chunk - 1) / chunk
	var next atomic.Int64
	errc := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= nChunks {
					return
				}
				lo := k * chunk
				hi := min(lo+chunk, len(stream))
				for {
					t0 := time.Now()
					err := job.Ingest(stream[lo:hi])
					if h != nil {
						h.observe(time.Since(t0))
					}
					if err == nil {
						break
					}
					if errors.Is(err, serve.ErrQueueFull) {
						time.Sleep(200 * time.Microsecond)
						continue
					}
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errc:
		return err
	default:
		return nil
	}
}

// quiesceJob waits until the job has fitted and published everything
// ingested so far.
func quiesceJob(job *serve.Job, want int64) error {
	deadline := time.Now().Add(quiesceTimeout)
	for {
		st := job.Stats()
		if st.Error != "" {
			return fmt.Errorf("job %s failed: %s", st.ID, st.Error)
		}
		if st.IngestedAnswers == want && st.FittedAnswers == want &&
			st.QueueDepth == 0 && int64(st.SnapshotRound) == st.FitRounds {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("quiesce timeout: ingested=%d fitted=%d want=%d round=%d/%d",
				st.IngestedAnswers, st.FittedAnswers, want, st.SnapshotRound, st.FitRounds)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
