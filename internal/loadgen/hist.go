package loadgen

import (
	"sync"
	"time"
)

// histBase is the upper bound of the first latency bucket; each subsequent
// bucket doubles it, so 32 buckets span 50µs … ~30h.
const (
	histBase    = 50 * time.Microsecond
	histBuckets = 32
)

// hist is a log₂-bucketed latency histogram. Safe for concurrent use (the
// background readers record into one while the sender records into another,
// but sharing is allowed).
type hist struct {
	mu     sync.Mutex
	counts [histBuckets]int64
	n      int64
	sum    time.Duration
	max    time.Duration
}

func (h *hist) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	b := 0
	for bound := histBase; b < histBuckets-1 && d > bound; bound *= 2 {
		b++
	}
	h.mu.Lock()
	h.counts[b]++
	h.n++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// quantileLocked returns an estimate of the q-quantile (0 < q < 1) by
// locating the covering bucket and taking its geometric interior point.
// Callers hold h.mu.
func (h *hist) quantileLocked(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	target := int64(q * float64(h.n))
	if target >= h.n {
		target = h.n - 1
	}
	var seen int64
	for b := 0; b < histBuckets; b++ {
		seen += h.counts[b]
		if seen > target {
			upper := histBase << uint(b)
			if upper > h.max {
				upper = h.max
			}
			lower := time.Duration(0)
			if b > 0 {
				lower = histBase << uint(b-1)
			}
			return lower + (upper-lower)/2
		}
	}
	return h.max
}

// HistSummary is the JSON-ready digest of a latency histogram.
type HistSummary struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

func (h *hist) summary() HistSummary {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.summaryLocked()
}

func (h *hist) summaryLocked() HistSummary {
	s := HistSummary{Count: h.n, MaxMs: ms(h.max)}
	if h.n > 0 {
		s.MeanMs = ms(h.sum / time.Duration(h.n))
		s.P50Ms = ms(h.quantileLocked(0.50))
		s.P90Ms = ms(h.quantileLocked(0.90))
		s.P99Ms = ms(h.quantileLocked(0.99))
	}
	return s
}

// resetSummary clears the histogram (phase boundaries) and returns the
// summary of what it held, under one critical section so a concurrent
// observe lands wholly in one phase or the next, never in neither.
func (h *hist) resetSummary() HistSummary {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.summaryLocked()
	h.counts = [histBuckets]int64{}
	h.n, h.sum, h.max = 0, 0, 0
	return s
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// summaryFromCounts digests externally collected log₂ bucket counters into
// a HistSummary. The serve layer exports its publish-latency histogram in
// the same bucket family (50µs base, doubling — serve.PublishStats), so a
// phase report can diff the cumulative counters at the phase boundaries and
// summarise the difference here. Buckets beyond histBuckets fold into the
// last bucket; max is whatever the caller can attribute to the window.
func summaryFromCounts(counts []int64, n int64, sum, max time.Duration) HistSummary {
	h := hist{n: n, sum: sum, max: max}
	for b, c := range counts {
		if c < 0 {
			c = 0 // counter reset (chaos restart) mid-window
		}
		if b >= histBuckets {
			b = histBuckets - 1
		}
		h.counts[b] += c
	}
	return h.summaryLocked()
}
