package loadgen

import (
	"reflect"
	"testing"

	"cpa/internal/core"
	"cpa/internal/metrics"
)

// sleeperDecayScenario returns the library's sleeper-decay scenario.
func sleeperDecayScenario(t *testing.T) Scenario {
	t.Helper()
	for _, sc := range Scenarios() {
		if sc.Name == "sleeper-decay" {
			return sc
		}
	}
	t.Fatal("sleeper-decay scenario missing from the library")
	return Scenario{}
}

// f1Trajectory streams the plan's single tenant through a fresh core model
// batch by batch and evaluates consensus F1 against the dataset truth after
// every round. It returns the index of the first round that includes
// post-turn answers and the per-round F1 series.
func f1Trajectory(t *testing.T, sc Scenario, scale float64, seed int64) (turnRound int, f1 []float64) {
	t.Helper()
	p, err := buildPlan(sc, scale, seed)
	if err != nil {
		t.Fatal(err)
	}
	tp := p.tenants[0]
	if len(tp.turned) == 0 {
		t.Fatal("sleeper plan turned no workers")
	}
	model, err := core.NewModel(tp.spec.Model, tp.spec.Items, tp.spec.Workers, tp.spec.Labels)
	if err != nil {
		t.Fatal(err)
	}
	bs := tp.spec.Model.BatchSize
	boundary := tp.cuts[0] // honest answers end here; the turn follows
	turnRound = -1
	for off := 0; off < len(tp.stream); off += bs {
		end := off + bs
		if end > len(tp.stream) {
			end = len(tp.stream)
		}
		if err := model.PartialFit(tp.stream[off:end]); err != nil {
			t.Fatal(err)
		}
		c := model.Clone()
		c.FinalizeOnline()
		preds, err := c.Predict()
		if err != nil {
			t.Fatal(err)
		}
		pr, err := metrics.Evaluate(tp.ds, preds)
		if err != nil {
			t.Fatal(err)
		}
		f1 = append(f1, pr.F1())
		if turnRound < 0 && end > boundary {
			turnRound = len(f1) - 1
		}
	}
	if turnRound < 0 || turnRound >= len(f1)-2 {
		t.Fatalf("degenerate phase layout: turn at round %d of %d", turnRound, len(f1))
	}
	return
}

// TestSleeperDecayDetection is the sleeper-turn detection bound: when a
// quarter of the workforce flips to random spam mid-stream, a model with
// time-decayed reliability (the sleeper-decay scenario's half-life) must
// out-track the undecayed model on consensus F1 within a bounded number of
// virtual days of the turn, and keep the advantage through the end of the
// stream — on every probe seed. With decay off the knob must change
// nothing: the workload plan is identical and inference follows the legacy
// path (pinned bit-exactly in core's TestDecayGate).
func TestSleeperDecayDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("streams several full sleeper workloads")
	}
	scOn := sleeperDecayScenario(t)
	scOff := scOn
	scOff.ReliabilityHalfLife = 0

	// Detection deadline: the decayed model must dominate from the second
	// full post-turn round onward (the round containing the turn itself is
	// mixed-phase and excluded). At the scenario's virtual arrival rate
	// that is a bound in days, not rounds — computed and asserted per seed.
	const detectRounds = 2
	const maxDetectDays = 30.0

	for _, seed := range []int64{3, 7, 11, 19} {
		// The decay knob is inference-only: both plans must carry the
		// identical answer stream, or the comparison below is meaningless.
		pOn, err := buildPlan(scOn, 0.06, seed)
		if err != nil {
			t.Fatal(err)
		}
		pOff, err := buildPlan(scOff, 0.06, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pOn.tenants[0].stream, pOff.tenants[0].stream) {
			t.Fatalf("seed %d: decay knob changed the workload plan", seed)
		}

		turnOn, fOn := f1Trajectory(t, scOn, 0.06, seed)
		turnOff, fOff := f1Trajectory(t, scOff, 0.06, seed)
		if turnOn != turnOff || len(fOn) != len(fOff) {
			t.Fatalf("seed %d: trajectory shapes diverged", seed)
		}

		bs := float64(scOn.batchSize())
		days := float64(detectRounds+1) * bs / scOn.rate() / 86400
		if days > maxDetectDays {
			t.Fatalf("seed %d: detection deadline is %.1f virtual days, want <= %.0f", seed, days, maxDetectDays)
		}
		for r := turnOn + detectRounds; r < len(fOn); r++ {
			if fOn[r] < fOff[r]-1e-12 {
				t.Errorf("seed %d: round %d (%.1f virtual days after the turn): decayed F1 %.4f below undecayed %.4f",
					seed, r, float64(r-turnOn+1)*bs/scOn.rate()/86400, fOn[r], fOff[r])
			}
		}
		last := len(fOn) - 1
		if fOn[last] <= fOff[last] {
			t.Errorf("seed %d: decay gave no final advantage (%.4f vs %.4f)", seed, fOn[last], fOff[last])
		}
		// The honest phase must not be wrecked by discounting: allow only a
		// small dip against the undecayed model before the turn.
		if fOn[turnOn-1] < fOff[turnOn-1]-0.05 {
			t.Errorf("seed %d: honest-phase F1 degraded by decay (%.4f vs %.4f)", seed, fOn[turnOn-1], fOff[turnOn-1])
		}
		t.Logf("seed %d: turn at round %d/%d, final F1 %.4f (decay) vs %.4f (legacy), detect deadline %.1f virtual days",
			seed, turnOn, len(fOn), fOn[last], fOff[last], days)
	}
}
