package loadgen

import (
	"bufio"
	"encoding/json"
	"os"
	"reflect"
	"sort"
	"testing"
	"time"

	"cpa/internal/answers"
	"cpa/internal/serve"
)

// TestScenarios runs every scenario of the library in-process at a small
// scale — the repo's serving-layer integration suite. Each subtest drives
// the full closed loop (HTTP NDJSON ingestion, background readers, phase
// quiesces, chaos kills where configured) and requires every invariant to
// hold.
func TestScenarios(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			rep, err := Run(Config{Scenario: sc.Name, Scale: 0.04, Seed: 3, Logf: t.Logf})
			if err != nil {
				t.Fatalf("running %s: %v", sc.Name, err)
			}
			for _, iv := range rep.Failed() {
				t.Errorf("invariant %s[%s] failed: %s", iv.Name, iv.Job, iv.Detail)
			}
			if rep.TotalAnswers == 0 {
				t.Fatal("scenario planned no answers")
			}
			if len(rep.Phases) != len(sc.Phases) {
				t.Fatalf("recorded %d phases, scenario declares %d", len(rep.Phases), len(sc.Phases))
			}
			for _, ph := range rep.Phases {
				if len(ph.PR) == 0 {
					t.Errorf("phase %q recorded no per-tenant P/R", ph.Name)
				}
			}
			if sc.ChaosKills > 0 {
				if len(rep.Kills) != sc.ChaosKills {
					t.Errorf("expected %d chaos kills, got %d", sc.ChaosKills, len(rep.Kills))
				}
				exact := 0
				for _, iv := range rep.Invariants {
					if iv.Name == "crash-recovery-exact" && iv.Status == StatusPass {
						exact++
					}
				}
				if exact < sc.ChaosKills {
					t.Errorf("only %d crash-recovery-exact passes for %d kills", exact, sc.ChaosKills)
				}
			}
			if sc.Churn {
				deleted := 0
				for _, tr := range rep.Tenants {
					if tr.Deleted {
						deleted++
					}
				}
				if deleted == 0 {
					t.Error("churn scenario deleted no tenant")
				}
			}
			t.Log(rep.Summary())
		})
	}
}

// TestScenarioLibraryComplete pins the acceptance floor: at least 10 named
// scenarios, unique names, all resolvable via GetScenario.
func TestScenarioLibraryComplete(t *testing.T) {
	names := ScenarioNames()
	if len(names) < 10 {
		t.Fatalf("scenario library has %d entries, want >= 10", len(names))
	}
	seen := map[string]bool{}
	for _, name := range names {
		if seen[name] {
			t.Errorf("duplicate scenario name %q", name)
		}
		seen[name] = true
		sc, err := GetScenario(name)
		if err != nil {
			t.Fatalf("GetScenario(%q): %v", name, err)
		}
		if sc.Description == "" || len(sc.Phases) == 0 {
			t.Errorf("scenario %q lacks description or phases", name)
		}
	}
	if _, err := GetScenario("no-such-scenario"); err == nil {
		t.Error("GetScenario accepted an unknown name")
	}
}

// TestBuildPlanDeterministic pins that workload construction is a pure
// function of (scenario, scale, seed): streams, phase cuts and chaos kill
// points must be identical across builds.
func TestBuildPlanDeterministic(t *testing.T) {
	for _, name := range []string{"uniform", "chaos-kill", "churn", "straggler"} {
		sc, err := GetScenario(name)
		if err != nil {
			t.Fatal(err)
		}
		a, err := buildPlan(sc, 0.04, 9)
		if err != nil {
			t.Fatal(err)
		}
		b, err := buildPlan(sc, 0.04, 9)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.kills, b.kills) {
			t.Errorf("%s: kill points differ: %v vs %v", name, a.kills, b.kills)
		}
		if len(a.tenants) != len(b.tenants) {
			t.Fatalf("%s: tenant counts differ", name)
		}
		for ti := range a.tenants {
			ta, tb := a.tenants[ti], b.tenants[ti]
			if !reflect.DeepEqual(ta.cuts, tb.cuts) {
				t.Errorf("%s tenant %d: cuts differ", name, ti)
			}
			if len(ta.stream) != len(tb.stream) {
				t.Fatalf("%s tenant %d: stream lengths differ", name, ti)
			}
			for i := range ta.stream {
				x, y := ta.stream[i], tb.stream[i]
				if x.Item != y.Item || x.Worker != y.Worker || !x.Labels.Equal(y.Labels) {
					t.Fatalf("%s tenant %d: stream diverges at %d", name, ti, i)
				}
			}
		}
	}
}

// journalLine mirrors serve's journal wire form for the bug-injection test.
type journalLine struct {
	Op string              `json:"op"`
	A  *answers.JSONAnswer `json:"a,omitempty"`
	N  int                 `json:"n,omitempty"`
}

// TestInvariantCheckerCatchesArrivalOrderBug is the regression test for the
// PR 2 class of failure: persistence that silently re-orders answers
// (the old code rebuilt per-worker lists item-major, changing float
// reduction order after reload). It runs a scenario, confirms the checker
// passes on the honest journal, then rewrites the journal with its answers
// re-grouped item-major — exactly the old bug's on-disk effect — and
// requires the served-equals-replay checker to flag the divergence.
func TestInvariantCheckerCatchesArrivalOrderBug(t *testing.T) {
	dir := t.TempDir()
	rep, err := Run(Config{Scenario: "uniform", Scale: 0.04, Seed: 11, DataDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if fails := rep.Failed(); len(fails) > 0 {
		t.Fatalf("clean run failed invariants: %+v", fails)
	}
	ten := rep.Tenants[0]
	snap := rep.FinalSnapshots[ten.ID]
	if snap == nil || snap.Round == 0 {
		t.Fatal("no final snapshot to check against")
	}
	if err := CheckReplay(ten.JournalPath, ten.Spec, snap); err != nil {
		t.Fatalf("checker rejected the honest journal: %v", err)
	}

	if err := rewriteJournalItemMajor(ten.JournalPath); err != nil {
		t.Fatal(err)
	}
	err = CheckReplay(ten.JournalPath, ten.Spec, snap)
	if err == nil {
		t.Fatal("invariant checker missed the injected arrival-order persistence bug")
	}
	t.Logf("checker caught the injected bug: %v", err)
}

// rewriteJournalItemMajor re-groups a journal's answer lines item-major
// (stable by item, then worker) while keeping every fit marker's position
// and count intact — the durable-state signature of the pre-fix PR 2 bug.
func rewriteJournalItemMajor(path string) error {
	var lines []journalLine
	var ans []answers.Answer
	err := serve.ReadJournal(path, func(e serve.JournalEntry) error {
		if e.Answer != nil {
			ans = append(ans, *e.Answer)
			lines = append(lines, journalLine{Op: "ans"})
		} else {
			lines = append(lines, journalLine{Op: "fit", N: e.FitN})
		}
		return nil
	})
	if err != nil {
		return err
	}
	sort.SliceStable(ans, func(a, b int) bool {
		if ans[a].Item != ans[b].Item {
			return ans[a].Item < ans[b].Item
		}
		return ans[a].Worker < ans[b].Worker
	})
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	next := 0
	for _, line := range lines {
		if line.Op == "ans" {
			ja := answers.ToJSON(ans[next])
			next++
			line.A = &ja
		}
		raw, err := json.Marshal(line)
		if err != nil {
			f.Close()
			return err
		}
		w.Write(raw)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// TestCheckReplayDetectsTamperedSnapshot covers the other direction: a
// served snapshot that disagrees with the journal in a single label or
// confidence must be rejected.
func TestCheckReplayDetectsTamperedSnapshot(t *testing.T) {
	dir := t.TempDir()
	rep, err := Run(Config{Scenario: "trickle", Scale: 0.04, Seed: 5, DataDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ten := rep.Tenants[0]
	snap := rep.FinalSnapshots[ten.ID]
	if err := CheckReplay(ten.JournalPath, ten.Spec, snap); err != nil {
		t.Fatalf("checker rejected the honest snapshot: %v", err)
	}

	tampered := *snap
	tampered.Consensus = append([]serve.ItemSnapshot(nil), snap.Consensus...)
	found := false
	for i, item := range tampered.Consensus {
		if len(item.Labels) > 0 {
			mod := item
			mod.Labels = append([]int(nil), item.Labels...)
			mod.Labels[0]++
			tampered.Consensus[i] = mod
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no non-empty consensus item to tamper with")
	}
	if err := CheckReplay(ten.JournalPath, ten.Spec, &tampered); err == nil {
		t.Fatal("checker accepted a tampered snapshot")
	}

	shifted := *snap
	shifted.Round++
	if err := CheckReplay(ten.JournalPath, ten.Spec, &shifted); err == nil {
		t.Fatal("checker accepted a snapshot with a shifted round count")
	}
}

// TestHistQuantiles sanity-checks the latency histogram digest.
func TestHistQuantiles(t *testing.T) {
	var h hist
	for i := 1; i <= 1000; i++ {
		h.observe(time.Duration(i) * time.Millisecond)
	}
	s := h.summary()
	if s.Count != 1000 {
		t.Fatalf("count %d", s.Count)
	}
	if s.MaxMs != 1000 {
		t.Fatalf("max %.1fms, want 1000", s.MaxMs)
	}
	if s.P50Ms <= 100 || s.P50Ms > 1000 {
		t.Errorf("p50 %.1fms implausible for a uniform 1..1000ms stream", s.P50Ms)
	}
	if s.P99Ms < s.P90Ms || s.P90Ms < s.P50Ms {
		t.Errorf("quantiles not monotone: p50=%.1f p90=%.1f p99=%.1f", s.P50Ms, s.P90Ms, s.P99Ms)
	}
	if s.MeanMs < 400 || s.MeanMs > 600 {
		t.Errorf("mean %.1fms, want ~500", s.MeanMs)
	}
	if got := h.resetSummary(); got.Count != 1000 {
		t.Errorf("resetSummary returned count %d", got.Count)
	}
	if after := h.summary(); after.Count != 0 || after.MaxMs != 0 {
		t.Errorf("histogram not cleared: %+v", after)
	}
}

// TestTrafficModels pins that the arrival models are deterministic under a
// seed and have their declared shapes.
func TestTrafficModels(t *testing.T) {
	gaps := func(kind ArrivalKind, n int) []time.Duration {
		sc := Scenario{Arrival: kind, Chunk: 64, Rate: 1000}
		tm := newTrafficModel(sc, 42)
		out := make([]time.Duration, n)
		for i := range out {
			out[i] = tm.gap()
		}
		return out
	}
	if !reflect.DeepEqual(gaps(ArrivalPoisson, 50), gaps(ArrivalPoisson, 50)) {
		t.Error("poisson gaps not deterministic under a seed")
	}
	steady := gaps(ArrivalSteady, 5)
	for _, g := range steady {
		if g != 64*time.Millisecond {
			t.Fatalf("steady gap %v, want 64ms at 1000/s with chunk 64", g)
		}
	}
	bursty := gaps(ArrivalBursty, burstSize)
	for i := 0; i < burstSize-1; i++ {
		if bursty[i] != 0 {
			t.Fatalf("gap %d within a burst is %v, want 0", i, bursty[i])
		}
	}
	if bursty[burstSize-1] <= 0 {
		t.Fatal("no idle gap between bursts")
	}
	trickle := gaps(ArrivalTrickle, 1)[0]
	if trickle <= steady[0] {
		t.Errorf("trickle gap %v not slower than steady %v", trickle, steady[0])
	}
}

// TestVirtualClock pins that virtual sleeps advance time instantly.
func TestVirtualClock(t *testing.T) {
	c := NewVirtualClock()
	t0 := c.Now()
	start := time.Now()
	c.Sleep(10 * time.Hour)
	if wall := time.Since(start); wall > time.Second {
		t.Fatalf("virtual sleep blocked for %v", wall)
	}
	if got := c.Now().Sub(t0); got != 10*time.Hour {
		t.Fatalf("virtual clock advanced %v, want 10h", got)
	}
	c.Sleep(-time.Hour)
	if got := c.Now().Sub(t0); got != 10*time.Hour {
		t.Fatalf("negative sleep moved the clock: %v", got)
	}
}

// TestEvenCuts covers the churn phase-layout helper.
func TestEvenCuts(t *testing.T) {
	cases := []struct {
		n, createAt, deleteAt, phases int
		want                          []int
	}{
		{100, 0, -1, 2, []int{50, 100}},
		{90, 0, -1, 3, []int{30, 60, 90}},
		{100, 0, 1, 3, []int{50, 100, 100}}, // deleted after phase 1
		{100, 2, -1, 3, []int{0, 0, 100}},   // created at phase 2
	}
	for _, c := range cases {
		got := evenCuts(c.n, c.createAt, c.deleteAt, c.phases)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("evenCuts(%d,%d,%d,%d) = %v, want %v", c.n, c.createAt, c.deleteAt, c.phases, got, c.want)
		}
	}
}
